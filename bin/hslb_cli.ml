(* hslb — command-line front end.

   Subcommands:
     fit        fit the performance model T(n) = a/n^c + b·n + d to
                (nodes, seconds) observations from a CSV file
     solve      solve the allocation MINLP for fitted classes read from
                a CSV file (name,count,a,b,c,d)
     fmo        run the simulated FMO comparison (dynamic / even / HSLB)
     layouts    solve a component-layout model (CESM-style extension)
     audit      fault-injection stress sweep over the MINLP solvers with
                independent certificate checking (the CI soundness gate)
     obs        validate observability artifacts (Chrome traces,
                Prometheus expositions) — the CI artifact gate
     arena      race the scheduler families over the workload-scenario
                zoo and print the regret-vs-dynamic matrix (E13)
     experiment regenerate one or all of the paper's tables/figures
     list       list available experiments

   Shared flags (--report, --strategy, --audit, budget knobs) live in
   Cli_common so they parse identically here and in bench/main.exe. *)

open Cmdliner

(* ---------- shared helpers ---------- *)

let read_csv_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc else go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let split_csv line = List.map String.trim (String.split_on_char ',' line)

(* ---------- fit ---------- *)

let fit_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CSV" ~doc:"Observations file: one \"nodes,seconds\" pair per line.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed for multi-start.") in
  let starts =
    Arg.(value & opt int 12 & info [ "starts" ] ~doc:"Number of multi-start attempts.")
  in
  let save_class =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-class" ] ~docv:"FILE:NAME:COUNT"
          ~doc:
            "Append the fitted model as a class line (name,count,a,b,c,d) to FILE, creating \
             it if needed — the input format of the solve subcommand.")
  in
  let run file seed starts save_class =
    let obs =
      List.map
        (fun line ->
          match split_csv line with
          | [ n; t ] -> (float_of_string n, float_of_string t)
          | _ -> failwith ("bad observation line: " ^ line))
        (read_csv_lines file)
    in
    let rng = Numerics.Rng.create seed in
    let fit = Hslb.Fitting.fit_observations ~starts ~rng (Array.of_list obs) in
    Format.printf "T(n) = %a@." Scaling_law.pp fit.Hslb.Fitting.law;
    Format.printf "R2 = %.6f, RMSE = %.6g over %d observations@." fit.Hslb.Fitting.r2
      fit.Hslb.Fitting.rmse (List.length obs);
    match save_class with
    | None -> ()
    | Some spec -> (
      match String.split_on_char ':' spec with
      | [ path; name; count ] ->
        let law = fit.Hslb.Fitting.law in
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        Printf.fprintf oc "%s,%s,%.17g,%.17g,%.17g,%.17g\n"
          (Hslb.Model_store.csv_name name)
          count law.Scaling_law.a law.Scaling_law.b law.Scaling_law.c law.Scaling_law.d;
        close_out oc;
        Format.printf "appended class %s (count %s) to %s@." name count path
      | _ -> failwith "--save-class expects FILE:NAME:COUNT")
  in
  Cmd.v
    (Cmd.info "fit" ~doc:"Fit the HSLB performance model to benchmark observations.")
    Term.(const run $ file $ seed $ starts $ save_class)

(* ---------- solve ---------- *)

(* converters and budget/report/audit flags shared with bench/main.exe *)
let objective_conv = Cli_common.objective_conv
let solver_conv = Cli_common.solver_conv
let deadline_ms_arg = Cli_common.deadline_ms_arg
let max_nodes_arg = Cli_common.max_nodes_arg
let report_arg = Cli_common.report_arg
let audit_arg = Cli_common.audit_arg
let arm_budget = Cli_common.arm_budget

let solve_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CSV" ~doc:"Classes file: \"name,count,a,b,c,d\" per line.")
  in
  let nodes =
    Arg.(required & opt (some int) None & info [ "nodes"; "n" ] ~doc:"Total node budget.")
  in
  let objective =
    Arg.(
      value
      & opt objective_conv Hslb.Objective.Min_max
      & info [ "objective" ] ~doc:"min-max | max-min | min-sum.")
  in
  let solver =
    Arg.(
      value
      & opt solver_conv Engine.Solver_choice.Oa
      & info [ "solver" ] ~doc:"oa (default) | bnb | oa-multi.")
  in
  let strategy = Cli_common.strategy_arg in
  let repeat =
    Arg.(
      value
      & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Solve the same instance N times through a shared solve cache (a \
             service-traffic demo: the first solve is computed, later ones are memoized \
             when the result is proven optimal).")
  in
  let run file nodes objective solver strategy repeat deadline_ms max_nodes report audit =
    let specs =
      Hslb.Model_store.specs_of_csv
        (String.concat "\n" (read_csv_lines file))
    in
    let repeat = Stdlib.max 1 repeat in
    let cache = Runtime.Cache.create () in
    let race_report = ref None in
    let tally = Engine.Telemetry.create () in
    let last = ref None in
    for i = 1 to repeat do
      let budget = arm_budget deadline_ms max_nodes in
      let hits0 = Runtime.Cache.hits cache in
      let result =
        Hslb.Alloc_model.solve ~strategy ~solver ~objective ~budget ~trace:tally ~cache
          ~race_report ~n_total:nodes specs
      in
      let wall_s = Engine.Budget.elapsed_s budget in
      let cache_hit = Runtime.Cache.hits cache > hits0 in
      if repeat > 1 then
        Format.printf "solve %d/%d: %.2f ms%s@." i repeat (wall_s *. 1000.)
          (if cache_hit then " (cache hit)" else "");
      last := Some (result, wall_s, cache_hit)
    done;
    let result, wall_s, cache_hit =
      match !last with Some v -> v | None -> assert false
    in
    let status =
      match result with
      | Ok alloc -> alloc.Hslb.Alloc_model.status
      | Error st -> st
    in
    let solver_label =
      match strategy with
      | `Auto -> Engine.Solver_choice.to_string solver
      | (`Portfolio | `Single _) as s -> Runtime.Portfolio.strategy_to_string s
    in
    (match !race_report with
    | None -> ()
    | Some race ->
      Format.printf "portfolio race won by %s in %.2f ms@." race.Engine.Run_report.winner
        (race.Engine.Run_report.race_wall_s *. 1000.);
      List.iter
        (fun (l : Engine.Run_report.lane) ->
          Format.printf "  lane %-10s %-22s %8.2f ms  %d nodes, %d LPs@."
            l.Engine.Run_report.lane_solver l.Engine.Run_report.lane_status
            (l.Engine.Run_report.lane_wall_s *. 1000.)
            l.Engine.Run_report.lane_nodes_expanded l.Engine.Run_report.lane_lp_solves)
        race.Engine.Run_report.lanes);
    (* independent re-verification of the certificate the solve carried.
       The exact customized paths (bisection, greedy) certify in the
       nodes-per-class space, so only the Min_max MINLP path has a raw
       model to re-check against. *)
    let audit_verdict =
      if not audit then None
      else
        Some
          (match result with
          | Error st ->
            Error ("audit: nothing to audit: " ^ Minlp.Solution.status_to_string st)
          | Ok alloc -> (
            match objective with
            | Hslb.Objective.Min_max ->
              let problem, _, _ =
                Hslb.Alloc_model.build_minlp ~objective ~n_total:nodes specs
              in
              Cli_common.audit_minlp problem alloc.Hslb.Alloc_model.certificate
            | Hslb.Objective.Max_min | Hslb.Objective.Min_sum -> (
              match alloc.Hslb.Alloc_model.certificate with
              | Some c ->
                Ok
                  (Printf.sprintf
                     "audit: exact-method certificate (%s) — no MINLP to re-check"
                     c.Engine.Certificate.producer)
              | None -> Error "audit: no certificate emitted")))
    in
    (match report with
    | None -> ()
    | Some path ->
      let objective_value =
        match result with
        | Ok alloc -> Some alloc.Hslb.Alloc_model.predicted_makespan
        | Error _ -> None
      in
      let certificate =
        match result with
        | Ok alloc -> alloc.Hslb.Alloc_model.certificate
        | Error _ -> None
      in
      Engine.Run_report.write_json path
        (Engine.Run_report.make ~solver:solver_label
           ~status:(Minlp.Solution.status_to_string status)
           ?objective:objective_value ~cache_hit ?race:!race_report ?certificate
           ?audit:(Option.map Cli_common.audit_outcome_string audit_verdict)
           ~wall_s tally);
      Format.printf "run report written to %s@." path);
    let finish () =
      match audit_verdict with
      | None | Some (Ok _) ->
        (match audit_verdict with
        | Some (Ok line) -> Format.printf "%s@." line
        | None | Some (Error _) -> ())
      | Some (Error line) ->
        Format.eprintf "%s@." line;
        exit 1
    in
    match result with
    | Ok alloc ->
      (match status with
      | Minlp.Solution.Optimal -> ()
      | st ->
        Format.printf "status: %s — best incumbent shown@."
          (Minlp.Solution.status_to_string st));
      Format.printf "predicted makespan: %.4f s@." alloc.Hslb.Alloc_model.predicted_makespan;
      List.iteri
        (fun i spec ->
          Format.printf "  %-20s count=%-4d nodes/task=%-6d predicted=%.4f s@."
            spec.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.name
            spec.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.count
            alloc.Hslb.Alloc_model.nodes_per_task.(i)
            alloc.Hslb.Alloc_model.predicted_times.(i))
        specs;
      finish ()
    | Error st ->
      Format.printf "no allocation: %s@." (Minlp.Solution.status_to_string st);
      exit 1
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve the allocation MINLP for fitted task classes.")
    Term.(
      const run $ file $ nodes $ objective $ solver $ strategy $ repeat $ deadline_ms_arg
      $ max_nodes_arg $ report_arg $ audit_arg)

(* ---------- fmo ---------- *)

let fmo_cmd =
  let molecules =
    Arg.(value & opt int 32 & info [ "molecules"; "m" ] ~doc:"Water molecules in the cluster.")
  in
  let residues =
    Arg.(
      value
      & opt (some int) None
      & info [ "peptide" ] ~doc:"Use a random peptide with this many residues instead.")
  in
  let nodes = Arg.(value & opt int 512 & info [ "nodes"; "n" ] ~doc:"Total node budget.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Simulation seed.") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:"Write Gantt CSVs of the HSLB run: PREFIX-sweep0.csv and PREFIX-dimer.csv.")
  in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Print ASCII Gantt charts.") in
  let run molecules residues nodes seed trace gantt =
    let machine = Machine.make ~name:"intrepid-slice" ~num_nodes:nodes () in
    let plan =
      match residues with
      | Some r ->
        Fmo.Task.fmo2_plan
          (Fmo.Fragment.fragment
             (Fmo.Molecule.random_peptide ~rng:(Numerics.Rng.create 2) r)
             Fmo.Basis.B6_31gd)
      | None ->
        Fmo.Task.fmo2_plan
          (Fmo.Fragment.fragment
             (Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 1) molecules)
             Fmo.Basis.B6_31gd)
    in
    Format.printf "%d fragments, %d SCF dimers, %d ES dimers@."
      (Array.length plan.Fmo.Task.fragments)
      (Array.length plan.Fmo.Task.scf_dimers)
      (Array.length plan.Fmo.Task.es_dimers);
    let dyn = Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create seed) machine plan ~n_total:nodes () in
    let even =
      Hslb.Fmo_app.run_static_even ~rng:(Numerics.Rng.create seed) machine plan ~n_total:nodes ()
    in
    let hp, hslb =
      Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create seed) machine plan ~n_total:nodes
        Hslb.Fmo_app.default_config
    in
    let report label (r : Fmo.Fmo_run.result) =
      Format.printf "%-14s total %8.2f s (monomer %8.2f, dimer %8.2f, utilization %5.1f%%)@."
        label r.Fmo.Fmo_run.total_time r.Fmo.Fmo_run.monomer_time r.Fmo.Fmo_run.dimer_time
        (100. *. r.Fmo.Fmo_run.utilization)
    in
    report "dynamic" dyn;
    report "even-static" even;
    report "HSLB" hslb;
    Format.printf "HSLB predicted %.2f s; speedup over dynamic %.2fx@."
      hp.Hslb.Fmo_app.predicted_total
      (dyn.Fmo.Fmo_run.total_time /. hslb.Fmo.Fmo_run.total_time);
    (match trace with
    | None -> ()
    | Some prefix ->
      Gddi.Trace.write_csv (prefix ^ "-sweep0.csv") (List.hd hslb.Fmo.Fmo_run.sweeps);
      Gddi.Trace.write_csv (prefix ^ "-dimer.csv") hslb.Fmo.Fmo_run.dimer;
      Format.printf "traces written to %s-sweep0.csv and %s-dimer.csv@." prefix prefix);
    if gantt then begin
      Format.printf "@.HSLB monomer sweep 0:@.";
      Gddi.Trace.pp_gantt Format.std_formatter ~width:72 hp.Hslb.Fmo_app.partition
        (List.hd hslb.Fmo.Fmo_run.sweeps);
      Format.printf "@.HSLB dimer phase:@.";
      Gddi.Trace.pp_gantt Format.std_formatter ~width:72 hp.Hslb.Fmo_app.dimer_partition
        hslb.Fmo.Fmo_run.dimer
    end
  in
  Cmd.v
    (Cmd.info "fmo" ~doc:"Run the simulated FMO scheduler comparison.")
    Term.(const run $ molecules $ residues $ nodes $ seed $ trace $ gantt)

(* ---------- layouts ---------- *)

let layouts_cmd =
  let nodes = Arg.(value & opt int 128 & info [ "nodes"; "n" ] ~doc:"Total node budget.") in
  let resolution =
    let res_conv =
      Arg.conv
        ( (function
          | "1" -> Ok Layouts.Cesm_data.Deg1
          | "1/8" -> Ok Layouts.Cesm_data.Deg1_8
          | s -> Error (`Msg ("unknown resolution: " ^ s))),
          fun fmt r ->
            Format.pp_print_string fmt
              (match r with Layouts.Cesm_data.Deg1 -> "1" | Layouts.Cesm_data.Deg1_8 -> "1/8")
        )
    in
    Arg.(value & opt res_conv Layouts.Cesm_data.Deg1 & info [ "resolution" ] ~doc:"1 or 1/8.")
  in
  let layout =
    let layout_conv =
      Arg.conv
        ( (function
          | "1" -> Ok Layouts.Layout_model.Hybrid
          | "2" -> Ok Layouts.Layout_model.Sequential_group
          | "3" -> Ok Layouts.Layout_model.Fully_sequential
          | s -> Error (`Msg ("unknown layout: " ^ s))),
          fun fmt l -> Format.pp_print_string fmt (Layouts.Layout_model.layout_name l) )
    in
    Arg.(value & opt layout_conv Layouts.Layout_model.Hybrid & info [ "layout" ] ~doc:"1, 2 or 3.")
  in
  let free_ocean =
    Arg.(value & flag & info [ "free-ocean" ] ~doc:"Lift the ocean sweet-spot restriction.")
  in
  let run nodes resolution layout free_ocean =
    let rng = Numerics.Rng.create 77 in
    let classes = Layouts.Cesm_data.benchmark_classes ~rng resolution in
    let n_max = Stdlib.max 512 nodes in
    let fits =
      Hslb.Classes.gather_and_fit ~rng
        ~sizes:(Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max ~points:6)
        ~reps:2 classes
    in
    let comp name =
      Layouts.Component.of_fit ~name
        (List.find
           (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
           fits)
          .Hslb.Classes.fit
    in
    let inputs =
      { Layouts.Layout_model.ice = comp "ice"; lnd = comp "lnd"; atm = comp "atm"; ocn = comp "ocn" }
    in
    let config =
      {
        (Layouts.Layout_model.default_config ~n_total:nodes) with
        Layouts.Layout_model.ocn_allowed =
          (if free_ocean then None else Some (Layouts.Cesm_data.ocean_sweet_spots resolution));
      }
    in
    let a =
      match Layouts.Layout_model.solve layout config inputs with
      | Ok a -> a
      | Error st ->
        Format.eprintf "layout solve failed: %s@." (Minlp.Solution.status_to_string st);
        exit 1
    in
    Format.printf "layout %s on %d nodes: predicted total %.2f s (status: %s)@."
      (Layouts.Layout_model.layout_name layout) nodes a.Layouts.Layout_model.total
      (Minlp.Solution.status_to_string a.Layouts.Layout_model.status);
    List.iter
      (fun (name, n) ->
        Format.printf "  %-4s %6d nodes  %10.2f s@." name n
          (List.assoc name a.Layouts.Layout_model.times))
      a.Layouts.Layout_model.nodes
  in
  Cmd.v
    (Cmd.info "layouts" ~doc:"Solve a coupled-component layout model (extension).")
    Term.(const run $ nodes $ resolution $ layout $ free_ocean)

(* ---------- minlp: solve a model file ---------- *)

let minlp_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MODEL" ~doc:"Model file in the AMPL-like language (see Minlp.Model_text).")
  in
  let solver =
    Arg.(
      value
      & opt solver_conv Engine.Solver_choice.Oa
      & info [ "solver" ] ~doc:"oa (default) | bnb | oa-multi (alias: multi).")
  in
  let run file solver deadline_ms max_nodes report audit =
    let p = Minlp.Model_text.parse_file file in
    let budget = arm_budget deadline_ms max_nodes in
    let tally = Engine.Telemetry.create () in
    let sol =
      match solver with
      | Engine.Solver_choice.Oa -> Minlp.Oa.run ~budget ~tally p
      | Engine.Solver_choice.Oa_multi ->
        (Minlp.Oa_multi.run ~budget ~tally p).Minlp.Oa_multi.solution
      | Engine.Solver_choice.Bnb -> Minlp.Bnb.run ~budget ~tally p
    in
    let wall_s = Engine.Budget.elapsed_s budget in
    let certificate =
      Minlp.Solution.certify
        ~producer:(Engine.Solver_choice.to_string solver)
        ~budget ~minimize:p.Minlp.Problem.minimize
        ~pruned:tally.Engine.Telemetry.nodes_pruned sol
    in
    let audit_verdict =
      if audit then Some (Cli_common.audit_minlp p (Some certificate)) else None
    in
    (match report with
    | None -> ()
    | Some path ->
      Engine.Run_report.write_json path
        (Engine.Run_report.make
           ~solver:(Engine.Solver_choice.to_string solver)
           ~status:(Minlp.Solution.status_to_string sol.Minlp.Solution.status)
           ~objective:sol.Minlp.Solution.obj ~bound:sol.Minlp.Solution.bound ~certificate
           ?audit:(Option.map Cli_common.audit_outcome_string audit_verdict)
           ~wall_s tally);
      Format.printf "run report written to %s@." path);
    Format.printf "status: %s@." (Minlp.Solution.status_to_string sol.Minlp.Solution.status);
    if Minlp.Solution.has_incumbent sol then begin
      Format.printf "objective: %.6g (bound %.6g)@." sol.Minlp.Solution.obj
        sol.Minlp.Solution.bound;
      Array.iteri
        (fun j v -> Format.printf "  %-16s = %.6g@." p.Minlp.Problem.names.(j) v)
        sol.Minlp.Solution.x
    end;
    Format.printf "stats: %d nodes, %d LPs, %d NLPs, %d cuts@."
      sol.Minlp.Solution.stats.Minlp.Solution.nodes sol.Minlp.Solution.stats.Minlp.Solution.lp_solves
      sol.Minlp.Solution.stats.Minlp.Solution.nlp_solves sol.Minlp.Solution.stats.Minlp.Solution.cuts;
    match audit_verdict with
    | None | Some (Ok _) ->
      (match audit_verdict with
      | Some (Ok line) -> Format.printf "%s@." line
      | None | Some (Error _) -> ())
    | Some (Error line) ->
      Format.eprintf "%s@." line;
      exit 1
  in
  Cmd.v
    (Cmd.info "minlp" ~doc:"Solve a convex MINLP written in the AMPL-like model language.")
    Term.(
      const run $ file $ solver $ deadline_ms_arg $ max_nodes_arg $ report_arg $ audit_arg)

(* ---------- serve: long-lived NDJSON solve service ---------- *)

(* shared with route/loadgen via Cli_common so the flags parse
   identically across the three commands *)
let listen_arg =
  Arg.(
    value
    & opt (some Cli_common.addr_conv) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve over a socket instead of stdin/stdout: $(b,unix:PATH) or \
           $(b,tcp:HOST:PORT) (port 0 picks a free port; the bound address is \
           announced with a $(i,listening) event line on stdout). Many concurrent \
           connections, same NDJSON framing per connection.")

let serve_cmd =
  let jobs = Cli_common.jobs_arg in
  let queue_limit = Cli_common.queue_limit_arg in
  let cache_capacity = Cli_common.cache_capacity_arg in
  let drain_grace_ms = Cli_common.drain_grace_ms_arg in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per finished request (queue wait, solve wall, cache \
             hit, dedup, lane winner) to FILE — a replayable request trace.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Periodically rewrite FILE with a Prometheus text exposition of the \
             server's metrics (queue-wait and solve-latency histograms plus the \
             process-wide registry); written atomically via rename, with a final \
             flush after drain.")
  in
  let metrics_interval_ms =
    Arg.(
      value
      & opt float 1000.
      & info [ "metrics-interval-ms" ] ~docv:"MS"
          ~doc:"Flush period for $(b,--metrics-out) (must be positive).")
  in
  let no_audit =
    Arg.(
      value
      & flag
      & info [ "no-audit" ]
          ~doc:
            "Skip the independent certificate re-verification that is otherwise run on \
             every solve before its envelope is returned.")
  in
  let solver =
    Arg.(
      value
      & opt solver_conv Engine.Solver_choice.Oa
      & info [ "solver" ] ~doc:"Default solver for requests that don't name one.")
  in
  let strategy = Cli_common.strategy_arg in
  let policy_from =
    Arg.(
      value
      & opt (some string) None
      & info [ "policy-from" ] ~docv:"FILE"
          ~doc:
            "Load the scenario-class → scheduler table answered for $(i,policy) hints \
             from a BENCH_arena.json artifact (as written by $(b,hslb arena --out) or \
             $(b,bench --arena)) instead of the built-in table.")
  in
  let run jobs queue_limit cache_capacity drain_grace_ms telemetry metrics_out
      metrics_interval_ms no_audit solver strategy policy_from listen report =
    (match jobs with Some j -> Runtime.Config.set_jobs j | None -> ());
    if metrics_interval_ms <= 0. then begin
      Format.eprintf "hslb serve: --metrics-interval-ms must be positive@.";
      exit 2
    end;
    let policy =
      match policy_from with
      | None -> Arena.Policy.builtin
      | Some path -> (
        match Arena.Policy.of_bench_file path with
        | Ok p -> p
        | Error msg ->
          Format.eprintf "hslb serve: --policy-from: %s@." msg;
          exit 2)
    in
    let cfg =
      {
        Serve.Server.jobs = Runtime.Config.jobs ();
        queue_limit;
        cache_capacity;
        drain_grace_s = drain_grace_ms /. 1000.;
        default_solver = solver;
        default_strategy = strategy;
        audit = not no_audit;
        policy;
      }
    in
    match listen with
    | None ->
      Serve.Transport_stdio.run ?telemetry_path:telemetry ?report_path:report
        ?metrics_out
        ~metrics_interval_s:(metrics_interval_ms /. 1000.)
        cfg
    | Some addr ->
      let telemetry_oc =
        Option.map
          (fun p -> open_out_gen [ Open_append; Open_creat ] 0o644 p)
          telemetry
      in
      let telemetry =
        Option.map
          (fun oc line ->
            output_string oc line;
            output_char oc '\n';
            flush oc)
          telemetry_oc
      in
      let events line =
        print_string line;
        print_newline ();
        flush stdout
      in
      let server = Serve.Server.create ?telemetry cfg ~emit:events in
      (match
         Serve.Service.run ?report_path:report ?metrics_out
           ~metrics_interval_s:(metrics_interval_ms /. 1000.)
           ~events
           (Serve.Service.core_of_server server)
           ~make_listener:(fun ~stop ->
             let l = Serve.Transport_socket.listen ~stop addr in
             events
               (Serve.Json.to_string
                  (Serve.Json.Obj
                     [
                       ("event", Serve.Json.Str "listening");
                       ( "addr",
                         Serve.Json.Str
                           (Serve.Transport_socket.addr_to_string
                              (Serve.Transport_socket.bound_addr l)) );
                     ]));
             Serve.Transport_socket.listener l)
       with
      | _report -> Option.iter close_out telemetry_oc
      | exception Unix.Unix_error (e, _, arg) ->
        Format.eprintf "hslb serve: cannot listen on %s: %s %s@."
          (Serve.Transport_socket.addr_to_string addr)
          (Unix.error_message e) arg;
        exit 1)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve allocation solves as a long-lived service: newline-delimited JSON \
          requests on stdin (or over $(b,--listen)), one response line per request \
          (see docs/SERVE.md). Per-request deadlines map onto the engine budget, the \
          queue rejects past its high-water mark, identical in-flight solves are \
          deduped, proven optima are cached, and SIGTERM drains gracefully.")
    Term.(
      const run $ jobs $ queue_limit $ cache_capacity $ drain_grace_ms $ telemetry
      $ metrics_out $ metrics_interval_ms $ no_audit $ solver $ strategy $ policy_from
      $ listen_arg $ report_arg)

(* ---------- arena: scheduler race over the workload-scenario zoo ---------- *)

let arena_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scenario generator seed.") in
  let quick =
    Arg.(
      value
      & flag
      & info [ "quick" ] ~doc:"Reduced sizes: 4 phases of 24 tasks instead of 8 of 48.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the regret matrix as a BENCH_arena.json artifact (schema \
             $(i,hslb-bench-arena-v1)) — the file $(b,hslb obs --arena-bench) \
             validates and $(b,hslb serve --policy-from) consumes.")
  in
  let classes_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "class" ] ~docv:"CLASS"
          ~doc:
            "Race only this scenario class (repeatable): steady | bursty | \
             multi-tenant | heavy-tailed | drifting | failure. Default: all six.")
  in
  let scenario_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario-out" ] ~docv:"PREFIX"
          ~doc:
            "Also write each raced scenario as PREFIX-CLASS.ndjson, the replayable \
             trace format $(b,hslb loadgen --scenario) consumes.")
  in
  let run seed quick out classes scenario_out =
    let classes =
      match classes with
      | [] -> Arena.Scenario.all_classes
      | specs ->
        List.map
          (fun s ->
            match Arena.Scenario.class_of_string s with
            | Ok c -> c
            | Error msg ->
              Format.eprintf "hslb arena: %s@." msg;
              exit 2)
          specs
    in
    let phases = if quick then 4 else 8 in
    let tasks_per_phase = if quick then 24 else 48 in
    let t = Arena.Race.run ~phases ~tasks_per_phase ~seed classes in
    Format.printf "%a@." Arena.Race.pp t;
    (match scenario_out with
    | None -> ()
    | Some prefix ->
      List.iter
        (fun cls ->
          let sc = Arena.Scenario.generate ~phases ~tasks_per_phase cls ~seed in
          let path =
            Printf.sprintf "%s-%s.ndjson" prefix (Arena.Scenario.class_to_string cls)
          in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Arena.Scenario.to_ndjson sc));
          Format.printf "scenario written to %s@." path)
        classes);
    match out with
    | None -> ()
    | Some path ->
      Arena.Race.write_bench path t;
      Format.printf "arena benchmark written to %s@." path
  in
  Cmd.v
    (Cmd.info "arena"
       ~doc:
         "Race every scheduler family (dynamic, static LPT, work stealing, hybrid \
          rebalancing, diffusive exchange) over the seeded workload-scenario zoo and \
          print the regret-vs-dynamic matrix (experiment E13). The per-class winners \
          become the policy table $(b,hslb serve) answers for $(i,policy) hints.")
    Term.(const run $ seed $ quick $ out $ classes_arg $ scenario_out)

(* ---------- route: fingerprint-sharded solve fleet ---------- *)

let route_cmd =
  let backends =
    Arg.(
      value
      & opt int 2
      & info [ "backends" ] ~docv:"N"
          ~doc:"Backend $(b,hslb serve) processes to spawn and shard across.")
  in
  let listen =
    Arg.(
      required
      & opt (some Cli_common.addr_conv) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Front-end address clients connect to: $(b,unix:PATH) or \
             $(b,tcp:HOST:PORT) (port 0 picks a free port; announced with a \
             $(i,listening) event line).")
  in
  let sock_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "sock-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the backend Unix sockets (default: a fresh directory under \
             the system temp dir).")
  in
  let vnodes =
    Arg.(
      value
      & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Consistent-hash ring points per backend (balance vs ring size).")
  in
  let run backends listen sock_dir vnodes jobs queue_limit cache_capacity
      drain_grace_ms metrics_out report =
    if backends < 1 then begin
      Format.eprintf "hslb route: --backends must be >= 1@.";
      exit 2
    end;
    let dir =
      match sock_dir with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "hslb-route-%d" (Unix.getpid ()))
    in
    (match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let backend_args =
      [
        "serve";
        "--jobs";
        string_of_int (match jobs with Some j -> j | None -> Runtime.Config.jobs ());
        "--queue-limit";
        string_of_int queue_limit;
        "--cache-capacity";
        string_of_int cache_capacity;
        "--drain-grace-ms";
        Printf.sprintf "%g" drain_grace_ms;
      ]
    in
    let cfg =
      {
        (Serve.Router.default_config ()) with
        Serve.Router.vnodes;
        (* the fleet grace outlives the backends' own, so their
           budget-cancelled answers still come home *)
        drain_grace_s = (drain_grace_ms /. 1000.) +. 3.;
      }
    in
    let events line =
      print_string line;
      print_newline ();
      flush stdout
    in
    let router =
      try
        Serve.Router.create ~cfg ~events
          (Serve.Router.spawn_targets ~prog:Sys.executable_name ~args:backend_args
             ~dir ~count:backends)
      with Failure msg ->
        Format.eprintf "hslb route: %s@." msg;
        exit 1
    in
    match
      Serve.Service.run ?report_path:report ?metrics_out ~events
        (Serve.Router.core router)
        ~make_listener:(fun ~stop ->
          let l = Serve.Transport_socket.listen ~stop listen in
          events
            (Serve.Json.to_string
               (Serve.Json.Obj
                  [
                    ("event", Serve.Json.Str "listening");
                    ( "addr",
                      Serve.Json.Str
                        (Serve.Transport_socket.addr_to_string
                           (Serve.Transport_socket.bound_addr l)) );
                    ("backends", Serve.Json.Num (float_of_int backends));
                  ]));
          Serve.Transport_socket.listener l)
    with
    | _report -> ()
    | exception Unix.Unix_error (e, _, arg) ->
      Format.eprintf "hslb route: cannot listen on %s: %s %s@."
        (Serve.Transport_socket.addr_to_string listen)
        (Unix.error_message e) arg;
      Serve.Router.initiate_drain router;
      ignore (Serve.Router.await_drain router : Engine.Run_report.t);
      exit 1
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Front a fleet of $(b,hslb serve) backends: spawn and supervise N solve \
          processes over Unix sockets, consistent-hash each solve request's instance \
          fingerprint to its shard (so per-backend dedupe and caches stay hot), fan \
          ping/stats/drain out to every backend, respawn dead backends, and drain the \
          whole fleet gracefully on SIGTERM or a drain op.")
    Term.(
      const run $ backends $ listen $ sock_dir $ vnodes $ Cli_common.jobs_arg
      $ Cli_common.queue_limit_arg $ Cli_common.cache_capacity_arg
      $ Cli_common.drain_grace_ms_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics-out" ] ~docv:"FILE"
              ~doc:"Periodic Prometheus exposition of the router's metrics.")
      $ Cli_common.report_arg)

(* ---------- loadgen: trace replay + fleet benchmark ---------- *)

let loadgen_cmd =
  let connect =
    Arg.(
      value
      & opt (some Cli_common.addr_conv) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Replay against a running server/router at $(b,unix:PATH) or \
                $(b,tcp:HOST:PORT).")
  in
  let bench_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:
            "Fleet benchmark mode: replay the trace against a 1-backend and an \
             N-backend fleet (spawned internally over Unix sockets) and write the \
             throughput/latency comparison to FILE (BENCH_fleet.json).")
  in
  let backends =
    Arg.(
      value
      & opt int 2
      & info [ "backends" ] ~docv:"N" ~doc:"Fleet size for $(b,--bench-out).")
  in
  let requests =
    Arg.(value & opt int 200 & info [ "requests" ] ~docv:"N" ~doc:"Trace length.")
  in
  let distinct =
    Arg.(
      value
      & opt int 48
      & info [ "distinct" ] ~docv:"K"
          ~doc:
            "Distinct solve instances cycled through the trace. Pick K above a \
             backend's $(b,--cache-capacity) to make a single backend thrash its LRU \
             while the sharded fleet stays cache-resident.")
  in
  let classes =
    Arg.(value & opt int 3 & info [ "classes" ] ~docv:"C" ~doc:"Fragment classes per instance.")
  in
  let nodes =
    Arg.(value & opt int 16 & info [ "nodes" ] ~docv:"N" ~doc:"Node budget per instance.")
  in
  let sleep_every =
    Arg.(
      value
      & opt int 0
      & info [ "sleep-every" ] ~docv:"K"
          ~doc:"Every K-th request is a sleep op (0: never).")
  in
  let sleep_ms =
    Arg.(value & opt float 5. & info [ "sleep-ms" ] ~docv:"MS" ~doc:"Sleep op duration.")
  in
  let expire_every =
    Arg.(
      value
      & opt int 0
      & info [ "expire-every" ] ~docv:"K"
          ~doc:
            "Every K-th solve carries a near-zero deadline, provoking outcome \
             $(b,expired) (0: never).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Trace generator seed.") in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE"
          ~doc:
            "Replay an arena scenario trace (the NDJSON $(b,hslb arena --scenario-out) \
             writes) instead of the synthetic mix: each task becomes a solve carrying \
             the scenario class as its $(i,policy) hint, each phase gap a sleep. \
             Malformed traces are rejected with a line-numbered diagnostic. Only with \
             $(b,--connect).")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Target send rate (default: as fast as the window allows).")
  in
  let window =
    Arg.(
      value
      & opt int 16
      & info [ "window" ] ~docv:"N" ~doc:"Max requests in flight at once.")
  in
  let drain =
    Arg.(
      value
      & flag
      & info [ "drain" ]
          ~doc:"Send a drain op after the trace and wait for the fleet-wide ack.")
  in
  let label =
    Arg.(value & opt string "run" & info [ "label" ] ~doc:"Label in the emitted result.")
  in
  let run connect bench_out backends requests distinct classes nodes sleep_every
      sleep_ms expire_every seed scenario rate window drain label deadline_ms jobs
      queue_limit cache_capacity =
    let spec =
      {
        (Serve.Loadgen.default_spec ()) with
        Serve.Loadgen.requests;
        distinct;
        classes;
        nodes;
        sleep_every;
        sleep_ms;
        expire_every;
        deadline_ms;
        seed;
      }
    in
    match (connect, bench_out) with
    | Some _, Some _ | None, None ->
      Format.eprintf "hslb loadgen: pass exactly one of --connect or --bench-out@.";
      exit 2
    | Some addr, None ->
      let trace =
        match scenario with
        | None -> Serve.Loadgen.make_trace spec
        | Some path -> (
          match Arena.Scenario.read_file path with
          | Ok sc ->
            Format.printf "scenario %s: class %s, %d phases, %d tasks@."
              sc.Arena.Scenario.name
              (Arena.Scenario.class_to_string sc.Arena.Scenario.cls)
              (Array.length sc.Arena.Scenario.phases)
              (Arena.Scenario.num_tasks sc);
            Serve.Loadgen.trace_of_scenario sc
          | Error msg ->
            Format.eprintf "hslb loadgen: %s@." msg;
            exit 2)
      in
      let r =
        try
          Serve.Loadgen.run ~label ?rate_rps:rate ~window ~drain_at_end:drain
            (Serve.Loadgen.Net addr) trace
        with Unix.Unix_error (e, _, _) ->
          Format.eprintf "hslb loadgen: cannot connect to %s: %s@."
            (Serve.Transport_socket.addr_to_string addr)
            (Unix.error_message e);
          exit 1
      in
      Format.printf "%s@." (Serve.Json.to_string (Serve.Loadgen.result_json r));
      if r.Serve.Loadgen.answered < r.Serve.Loadgen.requests then begin
        Format.eprintf "hslb loadgen: %d of %d requests unanswered@."
          (r.Serve.Loadgen.requests - r.Serve.Loadgen.answered)
          r.Serve.Loadgen.requests;
        exit 1
      end
    | None, Some path ->
      if scenario <> None then begin
        Format.eprintf "hslb loadgen: --scenario requires --connect@.";
        exit 2
      end;
      if backends < 2 then begin
        Format.eprintf "hslb loadgen: --backends must be >= 2 for --bench-out@.";
        exit 2
      end;
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "hslb-loadgen-%d" (Unix.getpid ()))
      in
      (match Unix.mkdir dir 0o755 with
      | () -> ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let backend_args =
        [
          "serve";
          "--jobs";
          string_of_int (match jobs with Some j -> j | None -> 1);
          "--queue-limit";
          string_of_int queue_limit;
          "--cache-capacity";
          string_of_int cache_capacity;
          (* the benchmark measures serving throughput, not the
             auditor *)
          "--no-audit";
        ]
      in
      let b =
        Serve.Loadgen.fleet_bench ~spec ?rate_rps:rate ~window
          ~prog:Sys.executable_name ~backend_args ~dir ~backends ()
      in
      Serve.Loadgen.write_bench path b;
      Format.printf
        "single: %.1f req/s (p99 %.2f ms)  fleet(%d): %.1f req/s (p99 %.2f ms)  speedup %.2fx@."
        b.Serve.Loadgen.single.Serve.Loadgen.throughput_rps
        b.Serve.Loadgen.single.Serve.Loadgen.latency.Obs.Metrics.Histogram.p99
        b.Serve.Loadgen.backends b.Serve.Loadgen.fleet.Serve.Loadgen.throughput_rps
        b.Serve.Loadgen.fleet.Serve.Loadgen.latency.Obs.Metrics.Histogram.p99
        b.Serve.Loadgen.speedup;
      Format.printf "wrote %s@." path
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a deterministic mixed solve/sleep/expire trace against a server or \
          fleet at a target rate, reporting throughput, outcome counts and \
          p50/p90/p99 latency; or, with $(b,--bench-out), benchmark a 1-backend vs \
          N-backend fleet on the same trace and write BENCH_fleet.json.")
    Term.(
      const run $ connect $ bench_out $ backends $ requests $ distinct $ classes
      $ nodes $ sleep_every $ sleep_ms $ expire_every $ seed $ scenario $ rate
      $ window $ drain $ label $ Cli_common.deadline_ms_arg $ Cli_common.jobs_arg
      $ Cli_common.queue_limit_arg $ Cli_common.cache_capacity_arg)

(* ---------- obs: validate observability artifacts ---------- *)

let obs_cmd =
  let chrome_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as a Chrome trace_event document (the artifact \
             $(b,bench --trace) writes): parse it with the built-in JSON decoder and \
             check every event's required fields.")
  in
  let prometheus =
    Arg.(
      value
      & opt (some string) None
      & info [ "prometheus" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as Prometheus text exposition (the artifact \
             $(b,serve --metrics-out) writes): every sample line must carry a legal \
             metric name and numeric value.")
  in
  let fleet_bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "fleet-bench" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as a fleet benchmark document (the artifact \
             $(b,loadgen --bench-out) writes): single and fleet runs each with \
             throughput, outcome counts and latency quantiles, plus the speedup \
             ratio.")
  in
  let arena_bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "arena-bench" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as an arena regret matrix (the artifact $(b,hslb arena \
             --out) or $(b,bench --arena) writes): schema hslb-bench-arena-v1, at \
             least 3 scenario classes raced over all five scheduler families, every \
             row complete with its winner the regret argmin and the dynamic baseline \
             at zero regret. Prints one greppable $(i,arena regret ...) line per \
             cell.")
  in
  let resolve_bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "resolve-bench" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as a re-solve policy frontier (the artifact \
             $(b,bench --resolve) writes): schema hslb-bench-resolve-v1, every \
             drift rate carrying the always/never/certified policies, never \
             pinned at one solve, and the certified policy within 5% of \
             always-resolve makespan on strictly fewer MINLP solves. Prints one \
             greppable $(i,resolve frontier ...) line per cell.")
  in
  let kernels_bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernels-bench" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as a hot-path kernel benchmark (the artifact \
             $(b,bench --kernels) writes): schema hslb-bench-kernels-v1, every \
             kernel timed against its pre-optimization baseline with finite \
             positive walls, a consistent speedup ratio and the bit-identity \
             check passed. Prints one greppable $(i,kernel ...) line per entry.")
  in
  let portfolio_bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "portfolio-bench" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as a portfolio/runtime benchmark (the artifact \
             $(b,bench --portfolio) writes): schema hslb-bench-portfolio-v2, every \
             instance's portfolio objective matching the best single solver with \
             race wall at most 1.2x the best single wall, and the quick-registry \
             pool neither core-starved nor slower than 0.95x sequential. Prints one \
             greppable $(i,portfolio ...) line per instance.")
  in
  let place_bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "place-bench" ] ~docv:"FILE"
          ~doc:
            "Validate FILE as a placement benchmark (the artifact \
             $(b,bench --place) writes): schema hslb-bench-place-v1, every torus \
             scenario carrying blind and aware strategies with the comm-aware \
             placement strictly cheaper on modeled communication and makespan \
             within 5% of comm-blind, and every exact row solved to audited \
             optimality. Prints one greppable $(i,place ...) line per cell.")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* gate of the kernel-unboxing work: re-check the artifact's internal
     consistency and the bit-identity claims, not the machine-dependent
     speedup magnitudes *)
  let check_kernels_bench json =
    let module J = Obs.Json in
    let ( let* ) = Result.bind in
    let* () =
      match J.member "schema" json with
      | Some (J.Str "hslb-bench-kernels-v1") -> Ok ()
      | Some _ | None -> Error "field \"schema\" must be \"hslb-bench-kernels-v1\""
    in
    let* () =
      match Option.bind (J.member "cores" json) J.int_ with
      | Some c when c >= 1 -> Ok ()
      | Some _ | None -> Error "field \"cores\" must be a positive integer"
    in
    let* kernels =
      match Option.bind (J.member "kernels" json) J.arr with
      | Some (_ :: _ as l) -> Ok l
      | Some [] -> Error "\"kernels\" is empty"
      | None -> Error "missing array field \"kernels\""
    in
    let check_kernel k =
      let str key =
        match Option.bind (J.member key k) J.str with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "missing string field %S" key)
      in
      let num key =
        match Option.bind (J.member key k) J.num with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing numeric field %S" key)
      in
      let* name = str "name" in
      let tag e = Printf.sprintf "kernel %S: %s" name e in
      let err e = Error (tag e) in
      let* baseline = Result.map_error tag (str "baseline") in
      let* candidate = Result.map_error tag (str "candidate") in
      let* reps = Result.map_error tag (num "reps") in
      let* base_s = Result.map_error tag (num "baseline_wall_s") in
      let* cand_s = Result.map_error tag (num "candidate_wall_s") in
      let* speedup = Result.map_error tag (num "speedup") in
      let* () = if reps >= 1. then Ok () else err "reps must be >= 1" in
      let* () =
        if Float.is_finite base_s && base_s > 0. && Float.is_finite cand_s && cand_s > 0.
        then Ok ()
        else err "wall clocks must be finite and positive"
      in
      let* () =
        if Float.abs (speedup -. (base_s /. cand_s)) <= 0.01 *. speedup then Ok ()
        else err "speedup does not equal baseline_wall_s / candidate_wall_s"
      in
      let* () =
        match Option.bind (J.member "identical" k) J.bool_ with
        | Some true -> Ok ()
        | Some false -> err "bit-identity check failed"
        | None -> err "missing boolean field \"identical\""
      in
      Ok (name, baseline, candidate, speedup)
    in
    List.fold_left
      (fun acc k ->
        let* rows = acc in
        let* row = check_kernel k in
        Ok (row :: rows))
      (Ok []) kernels
    |> Result.map List.rev
  in
  (* gate of the portfolio-tax and core-starvation fixes: the race may
     cost at most 20% over the best single solver on every instance,
     and the clamped pool must never run slower than sequential *)
  let check_portfolio_bench json =
    let module J = Obs.Json in
    let ( let* ) = Result.bind in
    let* () =
      match J.member "schema" json with
      | Some (J.Str "hslb-bench-portfolio-v2") -> Ok ()
      | Some _ | None -> Error "field \"schema\" must be \"hslb-bench-portfolio-v2\""
    in
    let num obj key =
      match Option.bind (J.member key obj) J.num with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing numeric field %S" key)
    in
    let* instances =
      match Option.bind (J.member "instances" json) J.arr with
      | Some (_ :: _ as l) -> Ok l
      | Some [] -> Error "\"instances\" is empty"
      | None -> Error "missing array field \"instances\""
    in
    let check_instance inst =
      let* name =
        match Option.bind (J.member "name" inst) J.str with
        | Some s -> Ok s
        | None -> Error "instance missing string field \"name\""
      in
      let tag e = Printf.sprintf "instance %S: %s" name e in
      let err e = Error (tag e) in
      let* singles =
        match Option.bind (J.member "singles" inst) J.arr with
        | Some (_ :: _ as l) -> Ok l
        | Some [] | None -> err "missing non-empty array \"singles\""
      in
      let* () =
        if
          List.for_all
            (fun s ->
              Option.is_some (Option.bind (J.member "solver" s) J.str)
              && Option.is_some (Option.bind (J.member "wall_s" s) J.num))
            singles
        then Ok ()
        else err "every single needs \"solver\" and \"wall_s\""
      in
      let* portfolio =
        match J.member "portfolio" inst with
        | Some (J.Obj _ as p) -> Ok p
        | Some _ | None -> err "missing object field \"portfolio\""
      in
      let* p_wall = Result.map_error tag (num portfolio "wall_s") in
      let* best_single = Result.map_error tag (num inst "best_single_wall_s") in
      let* () =
        match Option.bind (J.member "objective_match" inst) J.bool_ with
        | Some true -> Ok ()
        | Some false -> err "portfolio objective does not match the best single"
        | None -> err "missing boolean field \"objective_match\""
      in
      (* 20% relative plus a small absolute allowance so micro-instances
         are not gated on timer noise *)
      let* () =
        if p_wall <= (1.2 *. best_single) +. 0.05 then Ok ()
        else
          err
            (Printf.sprintf "portfolio wall %.3fs exceeds 1.2x best single (%.3fs)"
               p_wall best_single)
      in
      Ok (name, p_wall, best_single)
    in
    let* rows =
      List.fold_left
        (fun acc inst ->
          let* rows = acc in
          let* row = check_instance inst in
          Ok (row :: rows))
        (Ok []) instances
      |> Result.map List.rev
    in
    let* registry =
      match J.member "registry_quick" json with
      | Some (J.Obj _ as r) -> Ok r
      | Some _ | None -> Error "missing object field \"registry_quick\""
    in
    let* speedup = num registry "speedup" in
    let* () =
      match Option.bind (J.member "core_starved" registry) J.bool_ with
      | Some false -> Ok ()
      | Some true -> Error "registry_quick is core-starved (effective width exceeds cores)"
      | None -> Error "registry_quick missing boolean field \"core_starved\""
    in
    let* () =
      let int_field key =
        match Option.bind (J.member key registry) J.int_ with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "registry_quick missing integer field %S" key)
      in
      let* cores = int_field "cores" in
      let* requested = int_field "requested_jobs" in
      let* effective = int_field "effective_jobs" in
      if effective <= Stdlib.min requested cores then Ok ()
      else Error "registry_quick effective_jobs exceeds min(requested_jobs, cores)"
    in
    let* () =
      if speedup >= 0.95 then Ok ()
      else
        Error
          (Printf.sprintf
             "registry_quick speedup %.3f below 0.95 (pool slower than sequential)"
             speedup)
    in
    Ok (rows, speedup)
  in
  (* field-by-field schema walk over the hand-rolled JSON codec, in the
     spirit of check_chrome_trace/check_prometheus *)
  let check_fleet_bench json =
    let module J = Obs.Json in
    let ( let* ) = Result.bind in
    let num obj key =
      match Option.bind (J.member key obj) J.num with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing numeric field %S" key)
    in
    let quantile obj key =
      (* NaN quantiles of an empty histogram serialize as null *)
      match J.member key obj with
      | Some (J.Num _ | J.Null) -> Ok ()
      | Some _ | None -> Error (Printf.sprintf "latency field %S must be a number or null" key)
    in
    let check_run name obj =
      let tag e = Printf.sprintf "run %S: %s" name e in
      let* requests = Result.map_error tag (num obj "requests") in
      let* answered = Result.map_error tag (num obj "answered") in
      let* _ = Result.map_error tag (num obj "wall_s") in
      let* _ = Result.map_error tag (num obj "throughput_rps") in
      let* () =
        match J.member "outcomes" obj with
        | Some (J.Obj fields) ->
          if
            List.for_all (fun (_, v) -> match v with J.Num _ -> true | _ -> false) fields
          then Ok ()
          else Error (tag "outcomes values must be numbers")
        | Some _ | None -> Error (tag "missing object field \"outcomes\"")
      in
      let* lat =
        match J.member "latency_ms" obj with
        | Some (J.Obj _ as l) -> Ok l
        | Some _ | None -> Error (tag "missing object field \"latency_ms\"")
      in
      let* _ = Result.map_error tag (num lat "count") in
      let* () = Result.map_error tag (quantile lat "p50") in
      let* () = Result.map_error tag (quantile lat "p90") in
      let* () = Result.map_error tag (quantile lat "p99") in
      if answered > requests then Error (tag "answered exceeds requests") else Ok ()
    in
    match json with
    | J.Obj _ as root ->
      let* () =
        match J.member "bench" root with
        | Some (J.Str "fleet") -> Ok ()
        | Some _ | None -> Error "field \"bench\" must be the string \"fleet\""
      in
      let* backends = num root "backends" in
      let* () =
        if backends >= 2. then Ok () else Error "field \"backends\" must be >= 2"
      in
      let* () =
        match J.member "trace" root with
        | Some (J.Obj _) -> Ok ()
        | Some _ | None -> Error "missing object field \"trace\""
      in
      let* () =
        match J.member "single" root with
        | Some (J.Obj _ as r) -> check_run "single" r
        | Some _ | None -> Error "missing object field \"single\""
      in
      let* () =
        match J.member "fleet" root with
        | Some (J.Obj _ as r) -> check_run "fleet" r
        | Some _ | None -> Error "missing object field \"fleet\""
      in
      let* speedup =
        match J.member "speedup" root with
        | Some (J.Num v) -> Ok v
        | Some J.Null -> Error "field \"speedup\" is null (single run had no throughput)"
        | Some _ | None -> Error "missing numeric field \"speedup\""
      in
      Ok speedup
    | _ -> Error "root must be a JSON object"
  in
  (* same spirit as check_fleet_bench: re-derive every claim the
     artifact makes instead of trusting it. The arena matrix is a
     CI gate (ci.sh greps the per-cell lines), so the checks are the
     acceptance criteria: full scheduler roster, enough classes,
     complete rows, winner = argmin, dynamic pinned at zero regret. *)
  let check_arena_bench json =
    let ( let* ) = Result.bind in
    let* t = Arena.Race.of_json json in
    let required = [ "dynamic"; "static"; "stealing"; "hybrid"; "diffusive" ] in
    let* () =
      match
        List.filter (fun s -> not (List.mem s t.Arena.Race.schedulers)) required
      with
      | [] -> Ok ()
      | missing ->
        Error
          (Printf.sprintf "missing scheduler families: %s" (String.concat ", " missing))
    in
    let* () =
      let n = List.length t.Arena.Race.rows in
      if n >= 3 then Ok ()
      else Error (Printf.sprintf "only %d scenario classes raced (need >= 3)" n)
    in
    let check_row (r : Arena.Race.row) =
      let tag e = Printf.sprintf "row %S: %s" r.Arena.Race.scenario e in
      let names = List.map (fun c -> c.Arena.Race.scheduler) r.Arena.Race.cells in
      let* () =
        if names = t.Arena.Race.schedulers then Ok ()
        else
          Error
            (tag
               (Printf.sprintf "cells [%s] do not match the scheduler roster [%s]"
                  (String.concat "; " names)
                  (String.concat "; " t.Arena.Race.schedulers)))
      in
      let* () =
        match
          List.find_opt
            (fun c ->
              c.Arena.Race.scheduler = "dynamic"
              && Float.abs c.Arena.Race.regret_vs_dynamic > 1e-9)
            r.Arena.Race.cells
        with
        | Some c ->
          Error
            (tag
               (Printf.sprintf "dynamic baseline has nonzero regret %g"
                  c.Arena.Race.regret_vs_dynamic))
        | None -> Ok ()
      in
      let* best =
        match
          List.fold_left
            (fun best (c : Arena.Race.cell) ->
              match best with
              | Some (b : Arena.Race.cell)
                when b.Arena.Race.regret_vs_dynamic <= c.Arena.Race.regret_vs_dynamic
                -> best
              | _ -> Some c)
            None r.Arena.Race.cells
        with
        | Some b -> Ok b
        | None -> Error (tag "no cells")
      in
      if best.Arena.Race.scheduler = r.Arena.Race.winner then Ok ()
      else
        Error
          (tag
             (Printf.sprintf "winner %S is not the regret argmin (%S at %+.3f)"
                r.Arena.Race.winner best.Arena.Race.scheduler
                best.Arena.Race.regret_vs_dynamic))
    in
    let* () =
      List.fold_left
        (fun acc r ->
          let* () = acc in
          check_row r)
        (Ok ()) t.Arena.Race.rows
    in
    Ok t
  in
  (* the E12 artifact is the PR's acceptance gate, so the validator
     re-checks the claims rather than the shape alone: the certified
     policy must track always-resolve makespan within 5% while doing
     strictly fewer MINLP solves, and never-resolve must really have
     solved exactly once *)
  let check_resolve_bench json =
    let module RF = Experiments.Resolve_frontier in
    let ( let* ) = Result.bind in
    let* t = RF.of_json json in
    let* () =
      if t.RF.rows <> [] then Ok () else Error "no drift-rate rows"
    in
    let cell_named (r : RF.row) name =
      match List.find_opt (fun (c : RF.cell) -> c.RF.policy = name) r.RF.cells with
      | Some c -> Ok c
      | None ->
        Error (Printf.sprintf "drift %.3f: missing policy %S" r.RF.drift_rate name)
    in
    let check_row (r : RF.row) =
      let tag e = Printf.sprintf "drift %.3f: %s" r.RF.drift_rate e in
      let* always = cell_named r "always" in
      let* never = cell_named r "never" in
      let* certified = cell_named r "certified" in
      let* () =
        if
          List.for_all
            (fun (c : RF.cell) ->
              Float.is_finite c.RF.makespan_avg && c.RF.makespan_avg > 0.)
            r.RF.cells
        then Ok ()
        else Error (tag "makespans must be finite and positive")
      in
      let* () =
        if never.RF.solves = 1 then Ok ()
        else Error (tag (Printf.sprintf "never-resolve solved %d times" never.RF.solves))
      in
      let* () =
        if certified.RF.makespan_avg <= 1.05 *. always.RF.makespan_avg then Ok ()
        else
          Error
            (tag
               (Printf.sprintf "certified makespan %.3f exceeds 1.05x always (%.3f)"
                  certified.RF.makespan_avg always.RF.makespan_avg))
      in
      Ok (always, certified)
    in
    let* totals =
      List.fold_left
        (fun acc r ->
          let* a_solves, c_solves, c_skipped = acc in
          let* always, certified = check_row r in
          Ok
            ( a_solves + always.RF.solves,
              c_solves + certified.RF.solves,
              c_skipped + certified.RF.skipped ))
        (Ok (0, 0, 0))
        t.RF.rows
    in
    let a_solves, c_solves, c_skipped = totals in
    let* () =
      if c_solves < a_solves then Ok ()
      else
        Error
          (Printf.sprintf "certified used %d solves, not strictly fewer than always (%d)"
             c_solves a_solves)
    in
    let* () =
      if c_skipped >= 1 then Ok ()
      else Error "certified never skipped a solve (certificate never fired)"
    in
    Ok t
  in
  (* gate of the topology-aware placement work: comm-aware must strictly
     beat comm-blind on the modeled comm cost in every scenario while
     staying within the 5% makespan leash, and the exact MINLP rows must
     be audited-optimal *)
  let check_place_bench json =
    let module PB = Experiments.Place_bench in
    let ( let* ) = Result.bind in
    let* t = PB.of_json json in
    let* () = if t.PB.rows <> [] then Ok () else Error "no torus scenarios" in
    let* () = if t.PB.exact <> [] then Ok () else Error "no exact MINLP rows" in
    let cell_named (r : PB.row) name =
      match List.find_opt (fun (c : PB.cell) -> c.PB.strategy = name) r.PB.cells with
      | Some c -> Ok c
      | None ->
        let x, y, z = r.PB.dims in
        Error (Printf.sprintf "torus %dx%dx%d: missing strategy %S" x y z name)
    in
    let check_row (r : PB.row) =
      let x, y, z = r.PB.dims in
      let tag e = Printf.sprintf "torus %dx%dx%d: %s" x y z e in
      let* blind = cell_named r "blind" in
      let* aware = cell_named r "aware" in
      let* () =
        if
          List.for_all
            (fun (c : PB.cell) ->
              Float.is_finite c.PB.makespan_s
              && c.PB.makespan_s > 0.
              && Float.is_finite c.PB.comm_cost_s
              && c.PB.comm_cost_s >= 0.)
            r.PB.cells
        then Ok ()
        else Error (tag "makespans must be finite positive, comm costs non-negative")
      in
      let* () =
        if aware.PB.comm_cost_s < blind.PB.comm_cost_s then Ok ()
        else
          Error
            (tag
               (Printf.sprintf "aware comm %.6f not strictly below blind (%.6f)"
                  aware.PB.comm_cost_s blind.PB.comm_cost_s))
      in
      if aware.PB.makespan_s <= 1.05 *. blind.PB.makespan_s then Ok ()
      else
        Error
          (tag
             (Printf.sprintf "aware makespan %.6f exceeds 1.05x blind (%.6f)"
                aware.PB.makespan_s blind.PB.makespan_s))
    in
    let* () =
      List.fold_left
        (fun acc r ->
          let* () = acc in
          check_row r)
        (Ok ()) t.PB.rows
    in
    let* () =
      List.fold_left
        (fun acc (e : PB.exact) ->
          let* () = acc in
          if e.PB.status <> "optimal" then
            Error (Printf.sprintf "exact %s: status %S, not optimal" e.PB.solver e.PB.status)
          else if not e.PB.audited then
            Error (Printf.sprintf "exact %s: certificate not audited" e.PB.solver)
          else if e.PB.minlp_total_s > e.PB.heuristic_total_s +. 1e-6 then
            Error
              (Printf.sprintf "exact %s: MINLP total %.6f above heuristic %.6f"
                 e.PB.solver e.PB.minlp_total_s e.PB.heuristic_total_s)
          else Ok ())
        (Ok ()) t.PB.exact
    in
    Ok t
  in
  let run chrome_trace prometheus fleet_bench arena_bench resolve_bench kernels_bench
      portfolio_bench place_bench =
    if
      chrome_trace = None && prometheus = None && fleet_bench = None
      && arena_bench = None && resolve_bench = None && kernels_bench = None
      && portfolio_bench = None && place_bench = None
    then begin
      Format.eprintf
        "hslb obs: nothing to validate (pass --chrome-trace, --prometheus, \
         --fleet-bench, --arena-bench, --resolve-bench, --kernels-bench, \
         --portfolio-bench or --place-bench)@.";
      exit 2
    end;
    let ok = ref true in
    (match chrome_trace with
    | None -> ()
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg ->
        Format.eprintf "%s: JSON parse error %s@." path msg;
        ok := false
      | Ok json -> (
        match Obs.Export.check_chrome_trace json with
        | Ok n -> Format.printf "%s: valid chrome trace, %d events@." path n
        | Error msg ->
          Format.eprintf "%s: invalid chrome trace: %s@." path msg;
          ok := false)));
    (match prometheus with
    | None -> ()
    | Some path -> (
      match Obs.Export.check_prometheus (read_file path) with
      | Ok n -> Format.printf "%s: valid prometheus exposition, %d samples@." path n
      | Error msg ->
        Format.eprintf "%s: invalid prometheus exposition: %s@." path msg;
        ok := false));
    (match fleet_bench with
    | None -> ()
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg ->
        Format.eprintf "%s: JSON parse error %s@." path msg;
        ok := false
      | Ok json -> (
        match check_fleet_bench json with
        | Ok speedup ->
          Format.printf "%s: valid fleet bench, speedup %.2fx@." path speedup
        | Error msg ->
          Format.eprintf "%s: invalid fleet bench: %s@." path msg;
          ok := false)));
    (match arena_bench with
    | None -> ()
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg ->
        Format.eprintf "%s: JSON parse error %s@." path msg;
        ok := false
      | Ok json -> (
        match check_arena_bench json with
        | Ok t ->
          List.iter
            (fun (r : Arena.Race.row) ->
              List.iter
                (fun (c : Arena.Race.cell) ->
                  Format.printf "arena regret class=%s sched=%s value=%.6f@."
                    (Arena.Scenario.class_to_string r.Arena.Race.cls)
                    c.Arena.Race.scheduler c.Arena.Race.regret_vs_dynamic)
                r.Arena.Race.cells)
            t.Arena.Race.rows;
          Format.printf "%s: valid arena bench, %d classes x %d schedulers@." path
            (List.length t.Arena.Race.rows)
            (List.length t.Arena.Race.schedulers)
        | Error msg ->
          Format.eprintf "%s: invalid arena bench: %s@." path msg;
          ok := false)));
    (match resolve_bench with
    | None -> ()
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg ->
        Format.eprintf "%s: JSON parse error %s@." path msg;
        ok := false
      | Ok json -> (
        match check_resolve_bench json with
        | Ok t ->
          let module RF = Experiments.Resolve_frontier in
          List.iter
            (fun (r : RF.row) ->
              List.iter
                (fun (c : RF.cell) ->
                  Format.printf
                    "resolve frontier drift=%.3f policy=%s makespan=%.6f solves=%d \
                     skipped=%d@."
                    r.RF.drift_rate c.RF.policy c.RF.makespan_avg c.RF.solves c.RF.skipped)
                r.RF.cells)
            t.RF.rows;
          Format.printf "%s: valid resolve bench, %d drift rates, eps %.2f@." path
            (List.length t.RF.rows) t.RF.epsilon
        | Error msg ->
          Format.eprintf "%s: invalid resolve bench: %s@." path msg;
          ok := false)));
    (match kernels_bench with
    | None -> ()
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg ->
        Format.eprintf "%s: JSON parse error %s@." path msg;
        ok := false
      | Ok json -> (
        match check_kernels_bench json with
        | Ok rows ->
          List.iter
            (fun (name, baseline, candidate, speedup) ->
              Format.printf "kernel name=%s baseline=%s candidate=%s speedup=%.2f \
                             identical=true@."
                name baseline candidate speedup)
            rows;
          Format.printf "%s: valid kernels bench, %d kernels, all bit-identical@." path
            (List.length rows)
        | Error msg ->
          Format.eprintf "%s: invalid kernels bench: %s@." path msg;
          ok := false)));
    (match portfolio_bench with
    | None -> ()
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg ->
        Format.eprintf "%s: JSON parse error %s@." path msg;
        ok := false
      | Ok json -> (
        match check_portfolio_bench json with
        | Ok (rows, registry_speedup) ->
          List.iter
            (fun (name, p_wall, best_single) ->
              Format.printf
                "portfolio instance=%s wall_s=%.3f best_single_s=%.3f ratio=%.2f@." name
                p_wall best_single
                (p_wall /. Float.max best_single 1e-9))
            rows;
          Format.printf
            "%s: valid portfolio bench, %d instances within 1.2x, registry speedup \
             %.2f@."
            path (List.length rows) registry_speedup
        | Error msg ->
          Format.eprintf "%s: invalid portfolio bench: %s@." path msg;
          ok := false)));
    (match place_bench with
    | None -> ()
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg ->
        Format.eprintf "%s: JSON parse error %s@." path msg;
        ok := false
      | Ok json -> (
        match check_place_bench json with
        | Ok t ->
          let module PB = Experiments.Place_bench in
          List.iter
            (fun (r : PB.row) ->
              let x, y, z = r.PB.dims in
              List.iter
                (fun (c : PB.cell) ->
                  Format.printf
                    "place torus=%dx%dx%d tasks=%d groups=%d strategy=%s \
                     makespan=%.6f comm=%.6f total=%.6f@."
                    x y z r.PB.tasks r.PB.groups c.PB.strategy c.PB.makespan_s
                    c.PB.comm_cost_s c.PB.total_s)
                r.PB.cells)
            t.PB.rows;
          List.iter
            (fun (e : PB.exact) ->
              Format.printf
                "place exact solver=%s tasks=%d groups=%d status=%s audited=%b \
                 minlp=%.6f heuristic=%.6f@."
                e.PB.solver e.PB.xtasks e.PB.xgroups e.PB.status e.PB.audited
                e.PB.minlp_total_s e.PB.heuristic_total_s)
            t.PB.exact;
          Format.printf
            "%s: valid place bench, %d torus scenarios, %d exact rows, all \
             comm-aware wins@."
            path (List.length t.PB.rows) (List.length t.PB.exact)
        | Error msg ->
          Format.eprintf "%s: invalid place bench: %s@." path msg;
          ok := false)));
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Validate observability artifacts: Chrome trace_event JSON from \
          $(b,bench --trace), Prometheus text exposition from \
          $(b,serve --metrics-out), fleet benchmark JSON from \
          $(b,loadgen --bench-out), arena regret matrices from \
          $(b,hslb arena --out), re-solve policy frontiers from \
          $(b,bench --resolve), kernel benchmarks from $(b,bench --kernels), \
          portfolio benchmarks from $(b,bench --portfolio), and placement \
          benchmarks from $(b,bench --place). Exits non-zero if any fails to \
          parse.")
    Term.(
      const run $ chrome_trace $ prometheus $ fleet_bench $ arena_bench $ resolve_bench
      $ kernels_bench $ portfolio_bench $ place_bench)

(* ---------- place: topology-aware placement ---------- *)

let place_cmd =
  let torus =
    Arg.(
      value
      & opt string "4x4x4"
      & info [ "torus" ] ~docv:"XxYxZ"
          ~doc:"3-D torus shape, e.g. $(b,4x4x4); carved into --groups even compact groups.")
  in
  let tasks =
    Arg.(
      value
      & opt int 24
      & info [ "tasks" ] ~docv:"N"
          ~doc:"Number of placement tasks (seeded water-cluster fragments).")
  in
  let groups =
    Arg.(
      value
      & opt int 8
      & info [ "groups" ] ~docv:"G" ~doc:"Node groups; must divide the torus evenly.")
  in
  let seed =
    Arg.(
      value
      & opt int 42
      & info [ "seed" ] ~doc:"Seed for the fragment set and the comm-matrix jitter.")
  in
  let hop_cost =
    Arg.(
      value
      & opt float 2.0
      & info [ "hop-cost" ] ~docv:"S"
          ~doc:"Seconds of modeled latency per MB per torus hop.")
  in
  let minlp =
    Arg.(
      value
      & flag
      & info [ "minlp" ]
          ~doc:
            "Also push the instance through the exact placement MILP (warm-started \
             by the heuristic) and audit its optimality certificate.")
  in
  let solver =
    Arg.(
      value
      & opt solver_conv Engine.Solver_choice.Oa
      & info [ "solver" ] ~doc:"MINLP solver for $(b,--minlp): oa (default) | bnb | oa-multi.")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE"
          ~doc:"Write the generated fragment-pair communication matrix as NDJSON to FILE.")
  in
  let run torus tasks groups seed hop_cost minlp solver export deadline_ms max_nodes =
    let dims =
      try Scanf.sscanf torus "%dx%dx%d%!" (fun x y z -> (x, y, z))
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        Format.eprintf "hslb place: --torus expects XxYxZ (e.g. 4x4x4), got %S@." torus;
        exit 1
    in
    let inst =
      try
        Experiments.Place_bench.instance ~seed ~hop_cost_s_per_mb:hop_cost ~torus:dims
          ~tasks ~groups ()
      with Invalid_argument msg ->
        Format.eprintf "hslb place: %s@." msg;
        exit 1
    in
    (match export with
    | None -> ()
    | Some path ->
      Fmo.Comm.write_file path (Fmo.Comm.of_matrix inst.Place.Model.comm_mb);
      Format.printf "wrote comm matrix (%d tasks) to %s@." tasks path);
    let x, y, z = dims in
    let show name assignment =
      let e = Place.Model.eval inst assignment in
      Format.printf "%-6s makespan %9.4f s  comm %9.4f s  total %9.4f s  [%s]@." name
        e.Place.Model.makespan_s e.Place.Model.comm_cost_s e.Place.Model.total_s
        (String.concat " " (Array.to_list (Array.map string_of_int assignment)));
      e
    in
    (try
       Format.printf "place: %d tasks on a %dx%dx%d torus, %d groups, seed %d@." tasks x
         y z groups seed;
       let blind = Place.Optimizer.comm_blind inst in
       let aware = Place.Optimizer.optimize inst in
       let eb = show "blind" blind in
       let ea = show "aware" aware in
       Format.printf "comm saved: %.4f s (%.1f%%), makespan ratio %.3fx@."
         (eb.Place.Model.comm_cost_s -. ea.Place.Model.comm_cost_s)
         (100.
         *. (eb.Place.Model.comm_cost_s -. ea.Place.Model.comm_cost_s)
         /. Float.max eb.Place.Model.comm_cost_s 1e-12)
         (ea.Place.Model.makespan_s /. Float.max eb.Place.Model.makespan_s 1e-12);
       if minlp then begin
         let budget = arm_budget deadline_ms max_nodes in
         match Place.Model.solve_minlp ~solver ~budget ~warm_start:aware inst with
         | Error st ->
           Format.eprintf "place minlp: no usable incumbent (%s)@."
             (Minlp.Solution.status_to_string st);
           exit 1
         | Ok solved ->
           ignore (show "minlp" solved.Place.Model.assignment : Place.Model.eval);
           Format.printf "minlp status: %s@."
             (Minlp.Solution.status_to_string solved.Place.Model.status);
           (match solved.Place.Model.certificate with
           | None -> Format.printf "minlp certificate: none@."
           | Some cert ->
             let problem, _ = Place.Model.build_milp inst in
             let verdict = Audit.check_minlp problem cert in
             Format.printf "minlp certificate: %s@." (Audit.summary verdict);
             if Result.is_error verdict then exit 1)
       end
     with Place.Optimizer.No_feasible msg ->
       Format.eprintf "hslb place: %s@." msg;
       exit 1)
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:
         "Topology-aware placement of a seeded fragment set: carve a 3-D torus into \
          even compact groups, generate the fragment-pair communication matrix, and \
          compare the comm-blind LPT baseline against the comm-aware heuristic \
          (optionally against the exact, certificate-audited MILP).")
    Term.(
      const run $ torus $ tasks $ groups $ seed $ hop_cost $ minlp $ solver $ export
      $ Cli_common.deadline_ms_arg $ Cli_common.max_nodes_arg)

(* ---------- audit: fault-injection stress sweep ---------- *)

let audit_cmd =
  let stress =
    Arg.(
      value
      & flag
      & info [ "stress" ]
          ~doc:
            "Run the fault-injected budget stress sweep with cross-solver differential \
             checks. Currently the only audit mode, so this flag is implied.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed for the deterministic sweep.")
  in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~doc:"Number of fault-injected trials.")
  in
  let quiet =
    Arg.(
      value & flag & info [ "quiet" ] ~doc:"Only print the final summary line and verdict.")
  in
  let run _stress seed trials quiet =
    let log line = if not quiet then Format.printf "%s@." line in
    let outcome = Audit.Stress.run ~log ~seed ~trials () in
    Format.printf "%a@." Audit.Stress.pp outcome;
    if Audit.Stress.clean outcome then Format.printf "audit: clean@."
    else begin
      Format.eprintf "audit: FAILED@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Hunt unsound solver claims: seeded fault-injected budget exhaustion plus \
          cross-solver differential checks, every certificate re-verified by the \
          independent auditor. Exits non-zero on any violation.")
    Term.(const run $ stress $ seed $ trials $ quiet)

(* ---------- experiments ---------- *)

let experiment_cmd =
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E4).")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced problem sizes.") in
  let jobs =
    Arg.(
      value
      & opt (some Cli_common.jobs_conv) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the experiment runner and for parallel cells inside \
             experiments (default: $(b,HSLB_JOBS) from the environment, else 1 — \
             sequential, byte-identical to the historical runner).")
  in
  let run id quick jobs =
    (match jobs with Some j -> Runtime.Config.set_jobs j | None -> ());
    let fmt = Format.std_formatter in
    match id with
    | None -> Experiments.Registry.run_all ~quick fmt
    | Some id -> (
      match Experiments.Registry.find_result id with
      | Ok e -> e.Experiments.Registry.run ~quick fmt
      | Error msg ->
        Format.eprintf "%s@." msg;
        exit 1)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one or all of the paper's tables/figures.")
    Term.(const run $ id $ quick $ jobs)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-20s %s@." e.Experiments.Registry.id e.Experiments.Registry.describes)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.") Term.(const run $ const ())

let () =
  let doc = "heuristic static load balancing (HSLB) toolkit" in
  let info = Cmd.info "hslb_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fit_cmd;
            solve_cmd;
            serve_cmd;
            route_cmd;
            loadgen_cmd;
            arena_cmd;
            minlp_cmd;
            fmo_cmd;
            layouts_cmd;
            place_cmd;
            obs_cmd;
            audit_cmd;
            experiment_cmd;
            list_cmd;
          ]))
