(* Shared command-line plumbing for the hslb CLI and the benchmark
   harness, so `--report`, `--strategy` and `--audit` parse (and mean)
   exactly the same thing in `hslb solve`, `hslb minlp` and
   `bench/main.exe`. *)

open Cmdliner

(* ---------- cmdliner converters ---------- *)

let objective_conv =
  let parse = function
    | "min-max" -> Ok Hslb.Objective.Min_max
    | "max-min" -> Ok Hslb.Objective.Max_min
    | "min-sum" -> Ok Hslb.Objective.Min_sum
    | s -> Error (`Msg ("unknown objective: " ^ s))
  in
  Arg.conv (parse, fun fmt o -> Format.pp_print_string fmt (Hslb.Objective.to_string o))

let solver_conv =
  let parse s =
    match Engine.Solver_choice.of_string s with
    | Ok v -> Ok v
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Engine.Solver_choice.pp)

let strategy_conv =
  let parse s =
    match Runtime.Portfolio.strategy_of_string s with
    | Ok v -> Ok v
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun fmt s -> Format.pp_print_string fmt (Runtime.Portfolio.strategy_to_string s))

(* the same validation the HSLB_JOBS environment path goes through
   (Runtime.Config.parse), so "--jobs 8x" and "HSLB_JOBS=8x" report the
   bad value with identical wording *)
let jobs_conv =
  let parse s =
    match Runtime.Config.parse s with Ok n -> Ok n | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Format.pp_print_int)

let addr_conv =
  let parse s =
    match Serve.Transport_socket.addr_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt a -> Format.pp_print_string fmt (Serve.Transport_socket.addr_to_string a) )

(* ---------- shared argument definitions ---------- *)

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv `Auto
    & info [ "strategy" ]
        ~doc:
          "auto (default: honour --solver) | portfolio (race all solvers on parallel \
           domains) | a solver name to force it.")

let deadline_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds; on exhaustion the best incumbent found so far \
           is reported with a budget-exhausted status.")

let max_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Budget on branch-and-bound nodes across the run.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write a structured JSON run report (status, counters, phase timers) to FILE.")

let audit_arg =
  Arg.(
    value
    & flag
    & info [ "audit" ]
        ~doc:
          "Re-verify the solver's certificate with the independent auditor (witness \
           feasibility, objective and bound consistency, gap evidence) and print the \
           verdict. A rejected certificate makes the command exit non-zero.")

(* ---------- serving flags ----------
   serve, route and loadgen all accept these; defining them once means
   "--jobs", "--queue-limit" and friends parse — and reject bad values —
   identically across the three commands *)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains solving requests (default: $(b,HSLB_JOBS) from the \
           environment, else 1). The transport runs on its own domain either way.")

let queue_limit_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "Admission high-water mark: requests arriving while N are already queued are \
           rejected immediately with outcome $(b,overloaded) instead of queueing \
           unboundedly.")

let cache_capacity_arg =
  Arg.(
    value
    & opt int 128
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"LRU solve-cache entries (proven-optimal allocations only).")

let drain_grace_ms_arg =
  Arg.(
    value
    & opt float 2000.
    & info [ "drain-grace-ms" ] ~docv:"MS"
        ~doc:
          "On drain (SIGTERM, EOF, or the drain op), in-flight and queued solves get \
           this long to finish before the shared cancel token budget-cancels them; \
           they still answer with their best incumbent.")

let arm_budget deadline_ms max_nodes =
  let deadline_s = Option.map (fun ms -> ms /. 1000.) deadline_ms in
  Engine.Budget.arm (Engine.Budget.make ?deadline_s ?max_nodes ())

(* ---------- auditing ---------- *)

(* one verdict format everywhere: `Ok line` to print, `Error line` to
   print before exiting non-zero *)
let audit_minlp problem (cert : Engine.Certificate.t option) =
  match cert with
  | None -> Error "audit: no certificate emitted"
  | Some cert -> (
    match Audit.check_minlp problem cert with
    | Ok () ->
      Ok
        (Printf.sprintf "audit: certificate verified (%s, %s)"
           cert.Engine.Certificate.producer
           (Engine.Certificate.evidence_to_string cert.Engine.Certificate.evidence))
    | Error _ as verdict ->
      Error (Printf.sprintf "audit: certificate REJECTED: %s" (Audit.summary verdict)))

let audit_outcome_string = function Ok s -> s | Error s -> s

(* ---------- string-level parsing for non-cmdliner harnesses ---------- *)

(* the benchmark executable hand-rolls its argv scan; these helpers keep
   its flag spellings and value syntax identical to the cmdliner ones *)
module Argv = struct
  let flag args name = List.mem ("--" ^ name) args

  let find_opt args name =
    let key = "--" ^ name in
    let rec find = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args

  let audit args = flag args "audit"
  let report args = find_opt args "report"

  let strategy args =
    match find_opt args "strategy" with
    | None -> `Auto
    | Some s -> (
      match Runtime.Portfolio.strategy_of_string s with
      | Ok v -> v
      | Error msg -> failwith ("--strategy: " ^ msg))
end
