(* Tests for the component-layout extension (CESM-style models). *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

open Layouts

let fitted_inputs ?(noise = 0.0) resolution =
  let rng = Numerics.Rng.create 11 in
  let classes = Cesm_data.benchmark_classes ~rng ~noise resolution in
  let sizes = Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max:2048 ~points:6 in
  let fits = Hslb.Classes.gather_and_fit ~rng ~sizes ~reps:1 classes in
  let comp name =
    Component.of_fit ~name
      (List.find (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name) fits)
        .Hslb.Classes.fit
  in
  { Layout_model.ice = comp "ice"; lnd = comp "lnd"; atm = comp "atm"; ocn = comp "ocn" }

let solve_ok layout config inputs =
  match Layout_model.solve layout config inputs with
  | Ok a -> a
  | Error st ->
    Alcotest.failf "layout solve failed: %s" (Minlp.Solution.status_to_string st)

let test_layout_total_formulas () =
  check_float "hybrid"
    (Float.max (Float.max 3. 2. +. 5.) 7.)
    (Layout_model.layout_total Layout_model.Hybrid ~ice:3. ~lnd:2. ~atm:5. ~ocn:7.);
  check_float "seq group" 10.
    (Layout_model.layout_total Layout_model.Sequential_group ~ice:3. ~lnd:2. ~atm:5. ~ocn:7.);
  check_float "fully seq" 17.
    (Layout_model.layout_total Layout_model.Fully_sequential ~ice:3. ~lnd:2. ~atm:5. ~ocn:7.)

let test_hybrid_respects_constraints () =
  let inputs = fitted_inputs Cesm_data.Deg1 in
  let config = Layout_model.default_config ~n_total:128 in
  let a = solve_ok Layout_model.Hybrid config inputs in
  let nodes name = List.assoc name a.Layout_model.nodes in
  Alcotest.(check bool) "ice+lnd<=atm" true (nodes "ice" + nodes "lnd" <= nodes "atm");
  Alcotest.(check bool) "atm+ocn<=N" true (nodes "atm" + nodes "ocn" <= 128);
  Alcotest.(check bool) "total positive" true (a.Layout_model.total > 0.)

let test_ocean_sweet_spots_respected () =
  let inputs = fitted_inputs Cesm_data.Deg1 in
  let spots = Cesm_data.ocean_sweet_spots Cesm_data.Deg1 in
  let config =
    { (Layout_model.default_config ~n_total:128) with Layout_model.ocn_allowed = Some spots }
  in
  let a = solve_ok Layout_model.Hybrid config inputs in
  let ocn = List.assoc "ocn" a.Layout_model.nodes in
  Alcotest.(check bool) "ocn at sweet spot" true (List.mem ocn spots)

let test_layout_ranking () =
  (* the published comparison: layouts 1 and 2 similar, layout 3 worst *)
  let inputs = fitted_inputs Cesm_data.Deg1 in
  let config = Layout_model.default_config ~n_total:256 in
  let total l = (solve_ok l config inputs).Layout_model.total in
  let t1 = total Layout_model.Hybrid in
  let t2 = total Layout_model.Sequential_group in
  let t3 = total Layout_model.Fully_sequential in
  Alcotest.(check bool) "hybrid best" true (t1 <= t2 +. 1e-6);
  Alcotest.(check bool) "fully sequential worst" true (t3 > t1 && t3 > t2)

let test_unconstrained_ocean_helps () =
  (* lifting a restrictive sweet-spot list can only improve the optimum
     (the paper's headline 1/8° result) *)
  let inputs = fitted_inputs Cesm_data.Deg1 in
  let restricted =
    {
      (Layout_model.default_config ~n_total:512) with
      Layout_model.ocn_allowed = Some [ 16; 32 ];
    }
  in
  let free = Layout_model.default_config ~n_total:512 in
  let tr = (solve_ok Layout_model.Hybrid restricted inputs).Layout_model.total in
  let tf = (solve_ok Layout_model.Hybrid free inputs).Layout_model.total in
  Alcotest.(check bool) "free <= restricted" true (tf <= tr +. 1e-6)

let test_solution_beats_manual_baseline () =
  let inputs = fitted_inputs Cesm_data.Deg1 in
  let n_total = 128 in
  let config = Layout_model.default_config ~n_total in
  let a = solve_ok Layout_model.Hybrid config inputs in
  (* manual expert allocation evaluated under the same fitted curves *)
  let mi, ml, ma, mo = Cesm_data.manual_allocation Cesm_data.Deg1 ~n_total in
  let t c n = Component.time c n in
  let manual_total =
    Layout_model.layout_total Layout_model.Hybrid ~ice:(t inputs.Layout_model.ice mi)
      ~lnd:(t inputs.Layout_model.lnd ml) ~atm:(t inputs.Layout_model.atm ma)
      ~ocn:(t inputs.Layout_model.ocn mo)
  in
  Alcotest.(check bool) "hslb <= manual" true (a.Layout_model.total <= manual_total +. 1e-6)

let test_predict_scaling_monotone () =
  let inputs = fitted_inputs Cesm_data.Deg1 in
  let config = Layout_model.default_config ~n_total:64 in
  let pts =
    Layout_model.predict_scaling Layout_model.Hybrid config inputs ~node_counts:[ 64; 256; 1024 ]
  in
  match pts with
  | [ (_, t64); (_, t256); (_, t1024) ] ->
    Alcotest.(check bool) "more nodes faster" true (t256 < t64 && t1024 < t256)
  | _ -> Alcotest.fail "expected three points"

let test_tsync_uses_bnb_and_tightens () =
  let inputs = fitted_inputs Cesm_data.Deg1 in
  let base = Layout_model.default_config ~n_total:128 in
  let with_sync = { base with Layout_model.tsync = Some 5. } in
  let a = solve_ok Layout_model.Hybrid with_sync inputs in
  let t name = List.assoc name a.Layout_model.times in
  (* the constraint |T_lnd - T_ice| <= tsync holds at the solution *)
  Alcotest.(check bool) "tsync satisfied" true (Float.abs (t "lnd" -. t "ice") <= 5. +. 0.5);
  (* and the optimum cannot be better than without it *)
  let b = solve_ok Layout_model.Hybrid base inputs in
  Alcotest.(check bool) "no better than unconstrained" true
    (a.Layout_model.total >= b.Layout_model.total -. 1e-6)

(* ---------- Cesm_data ---------- *)

let test_truth_magnitudes () =
  (* ground truth reproduces the published reference points *)
  let _, _, atm, ocn = Cesm_data.truth Cesm_data.Deg1 ~ice:() in
  check_float ~eps:0.05 "atm(104)" 307. (Scaling_law.eval_int atm 104);
  check_float ~eps:0.05 "ocn(24)" 363. (Scaling_law.eval_int ocn 24);
  let _, _, _, ocn8 = Cesm_data.truth Cesm_data.Deg1_8 ~ice:() in
  check_float ~eps:0.05 "ocn 1/8 (2356)" 3785. (Scaling_law.eval_int ocn8 2356);
  check_float ~eps:0.05 "ocn 1/8 unconstrained (9812)" 1129. (Scaling_law.eval_int ocn8 9812)

let test_manual_allocations_feasible () =
  List.iter
    (fun (res, n_total) ->
      let i, l, a, o = Cesm_data.manual_allocation res ~n_total in
      Alcotest.(check bool) "ice+lnd<=atm" true (i + l <= a + 1);
      Alcotest.(check bool) "atm+ocn<=N" true (a + o <= n_total);
      Alcotest.(check bool) "all positive" true (i > 0 && l > 0 && a > 0 && o > 0))
    [ (Cesm_data.Deg1, 128); (Cesm_data.Deg1, 2048); (Cesm_data.Deg1_8, 8192);
      (Cesm_data.Deg1_8, 32768) ]

let test_ice_noisier () =
  let rng = Numerics.Rng.create 3 in
  let samples which =
    Array.init 500 (fun _ ->
        Cesm_data.simulate_component ~rng ~noise:0.05 Cesm_data.Deg1 which ~nodes:64)
  in
  let cv a = Numerics.Stats.stddev a /. Numerics.Stats.mean a in
  Alcotest.(check bool) "ice cv larger" true (cv (samples "ice") > 1.5 *. cv (samples "lnd"))

let test_simulate_unknown_component () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Cesm_data.simulate_component ~rng:(Numerics.Rng.create 1) Cesm_data.Deg1 "cpl" ~nodes:4);
       false
     with Invalid_argument _ -> true)

let prop_solver_beats_random_feasible =
  QCheck.Test.make ~name:"hybrid solution dominates random feasible allocations" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let inputs = fitted_inputs Cesm_data.Deg1 in
      let n_total = 128 in
      let config = Layout_model.default_config ~n_total in
      let a = solve_ok Layout_model.Hybrid config inputs in
      let rng = Numerics.Rng.create seed in
      (* random feasible point: pick ocn, atm = rest, split atm pool *)
      let ocn = 1 + Numerics.Rng.int rng (n_total - 2) in
      let atm = n_total - ocn in
      let ice = 1 + Numerics.Rng.int rng (Stdlib.max 1 (atm - 1)) in
      let lnd = Stdlib.max 1 (atm - ice) in
      if ice + lnd > atm then true (* skip infeasible draw *)
      else begin
        let t c n = Component.time c n in
        let total =
          Layout_model.layout_total Layout_model.Hybrid
            ~ice:(t inputs.Layout_model.ice ice)
            ~lnd:(t inputs.Layout_model.lnd lnd)
            ~atm:(t inputs.Layout_model.atm atm)
            ~ocn:(t inputs.Layout_model.ocn ocn)
        in
        a.Layout_model.total <= total +. 1e-6
      end)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_solver_beats_random_feasible ] in
  Alcotest.run "layouts"
    [
      ( "layout_model",
        [
          Alcotest.test_case "total formulas" `Quick test_layout_total_formulas;
          Alcotest.test_case "hybrid constraints" `Quick test_hybrid_respects_constraints;
          Alcotest.test_case "ocean sweet spots" `Quick test_ocean_sweet_spots_respected;
          Alcotest.test_case "layout ranking" `Quick test_layout_ranking;
          Alcotest.test_case "unconstrained ocean" `Quick test_unconstrained_ocean_helps;
          Alcotest.test_case "beats manual" `Quick test_solution_beats_manual_baseline;
          Alcotest.test_case "scaling prediction" `Quick test_predict_scaling_monotone;
          Alcotest.test_case "tsync" `Slow test_tsync_uses_bnb_and_tightens;
        ] );
      ( "cesm_data",
        [
          Alcotest.test_case "truth magnitudes" `Quick test_truth_magnitudes;
          Alcotest.test_case "manual feasible" `Quick test_manual_allocations_feasible;
          Alcotest.test_case "ice noisier" `Quick test_ice_noisier;
          Alcotest.test_case "unknown component" `Quick test_simulate_unknown_component;
        ] );
      ("properties", qsuite);
    ]
