(* Tests for the HSLB core: fitting, task classes, allocation models,
   objectives, and the FMO application pipeline. *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ---------- Fitting ---------- *)

let observations_of law ns =
  Array.of_list (List.map (fun n -> (float_of_int n, Scaling_law.eval_int law n)) ns)

let test_fit_recovers_noiseless () =
  let truth = Scaling_law.make ~a:120. ~b:0.001 ~c:0.9 ~d:2. in
  let obs = observations_of truth [ 1; 2; 4; 8; 16; 32; 64 ] in
  let rng = Numerics.Rng.create 17 in
  let fit = Hslb.Fitting.fit_observations ~rng obs in
  Alcotest.(check bool) "r2 near 1" true (fit.Hslb.Fitting.r2 > 0.9999);
  List.iter
    (fun n ->
      check_float ~eps:0.02
        (Printf.sprintf "prediction at %d" n)
        (Scaling_law.eval_int truth n)
        (Hslb.Fitting.predict fit n))
    [ 3; 12; 48; 100 ]

let test_fit_rejects_insufficient_data () =
  (* the CLI surfaces this message verbatim, so the exact wording is a
     contract (and a regression test for the "at at least" typo) *)
  Alcotest.check_raises "one node count"
    (Invalid_argument
       "Fitting.fit_observations: need observations at 2 or more distinct node counts")
    (fun () ->
      let rng = Numerics.Rng.create 1 in
      ignore (Hslb.Fitting.fit_observations ~rng [| (4., 10.); (4., 10.1) |]))

let test_fit_nonneg_params () =
  (* even with noise pulling toward negative coefficients the fit stays
     in the box (the paper constrains a,b,c,d >= 0) *)
  let rng = Numerics.Rng.create 5 in
  let obs = [| (1., 10.); (2., 5.5); (4., 2.4); (8., 1.6); (16., 0.6) |] in
  let fit = Hslb.Fitting.fit_observations ~rng obs in
  let p = Scaling_law.to_array fit.Hslb.Fitting.law in
  Array.iter (fun v -> Alcotest.(check bool) "nonneg" true (v >= 0.)) p

let test_recommended_sizes () =
  let sizes = Hslb.Fitting.recommended_sizes ~n_min:1 ~n_max:1024 ~points:5 in
  Alcotest.(check bool) "starts at min" true (List.hd sizes = 1);
  Alcotest.(check bool) "ends at max" true (List.nth sizes (List.length sizes - 1) = 1024);
  Alcotest.(check bool) "sorted" true (List.sort compare sizes = sizes);
  Alcotest.(check (list int)) "single point range" [ 7 ]
    (Hslb.Fitting.recommended_sizes ~n_min:7 ~n_max:7 ~points:4)

let test_recommended_sizes_messages () =
  (* per-case diagnostics, surfaced verbatim by the CLI: each invalid
     argument names itself and the offending value *)
  Alcotest.check_raises "points < 2"
    (Invalid_argument "Fitting.recommended_sizes: points must be >= 2, got 1")
    (fun () -> ignore (Hslb.Fitting.recommended_sizes ~n_min:1 ~n_max:8 ~points:1));
  Alcotest.check_raises "n_min < 1"
    (Invalid_argument "Fitting.recommended_sizes: n_min must be >= 1, got 0")
    (fun () -> ignore (Hslb.Fitting.recommended_sizes ~n_min:0 ~n_max:8 ~points:3));
  Alcotest.check_raises "n_min > n_max"
    (Invalid_argument "Fitting.recommended_sizes: n_min (9) exceeds n_max (4)")
    (fun () -> ignore (Hslb.Fitting.recommended_sizes ~n_min:9 ~n_max:4 ~points:3))

let test_online_buffered_equals_batch () =
  (* the buffered online path (create, observe everything, one refit)
     is the same code path as fit_observations: with equal rng seeds
     the laws must agree bit-for-bit, not just approximately *)
  let truth = Scaling_law.make ~a:200. ~b:0.004 ~c:0.95 ~d:1.5 in
  let obs = observations_of truth [ 1; 2; 4; 8; 16; 32 ] in
  let batch = Hslb.Fitting.fit_observations ~rng:(Numerics.Rng.create 11) obs in
  let st = Hslb.Fitting.Online.create ~rng:(Numerics.Rng.create 11) [||] in
  Hslb.Fitting.Online.observe_all st obs;
  Alcotest.(check int) "no rank-one before seeding" 0
    (Hslb.Fitting.Online.rank_one_updates st);
  let online = Hslb.Fitting.Online.refit st in
  Alcotest.(check (array (float 0.))) "identical laws"
    (Scaling_law.to_array batch.Hslb.Fitting.law)
    (Scaling_law.to_array online.Hslb.Fitting.law)

let test_online_tracks_drift () =
  (* seed the state with a stale law, stream observations of a 2x
     slower truth: rank-one updates plus the automatic refit fallback
     must pull predictions onto the new curve *)
  let stale = Scaling_law.make ~a:100. ~b:0.001 ~c:1. ~d:0.5 in
  let truth = Scaling_law.make ~a:200. ~b:0.001 ~c:1. ~d:0.5 in
  let err law =
    List.fold_left
      (fun acc n ->
        let y = Scaling_law.eval_int truth n in
        Float.max acc (Float.abs (Scaling_law.eval_int law n -. y) /. y))
      0. [ 2; 4; 8; 16; 32 ]
  in
  let st = Hslb.Fitting.Online.of_law ~rng:(Numerics.Rng.create 7) stale in
  let before = err (Hslb.Fitting.Online.law st) in
  Hslb.Fitting.Online.observe_all st (observations_of truth [ 2; 4; 8; 16; 32 ]);
  let after = err (Hslb.Fitting.Online.law st) in
  Alcotest.(check bool) "stale law starts far off" true (before > 0.3);
  Alcotest.(check bool)
    (Printf.sprintf "tracked the drifted law (%.4f -> %.4f)" before after)
    true
    (after < 0.02);
  Alcotest.(check bool) "rank-one updates happened" true
    (Hslb.Fitting.Online.rank_one_updates st > 0);
  Alcotest.(check bool) "the divergence monitor forced a refit" true
    (Hslb.Fitting.Online.full_refits st >= 1)

(* ---------- Classes ---------- *)

let test_gather_shape () =
  let cls = Hslb.Classes.make ~name:"c" ~count:3 (fun ~nodes -> 10. /. float_of_int nodes) in
  let obs = Hslb.Classes.gather cls ~sizes:[ 1; 2; 4 ] ~reps:2 in
  Alcotest.(check int) "observations" 6 (Array.length obs);
  check_float "first" 10. (snd obs.(0))

let test_gather_and_fit () =
  let truth = Scaling_law.make ~a:50. ~b:0. ~c:1. ~d:1. in
  let cls =
    Hslb.Classes.make ~name:"c" ~count:2 (fun ~nodes -> Scaling_law.eval_int truth nodes)
  in
  let rng = Numerics.Rng.create 3 in
  let fitted = Hslb.Classes.gather_and_fit ~rng ~sizes:[ 1; 2; 4; 8; 32 ] ~reps:1 [ cls ] in
  match fitted with
  | [ fc ] ->
    check_float ~eps:0.01 "prediction" (Scaling_law.eval_int truth 16)
      (Hslb.Classes.predicted_time fc 16)
  | _ -> Alcotest.fail "expected one fitted class"

let test_class_validation () =
  Alcotest.check_raises "count" (Invalid_argument "Classes.make: count must be >= 1") (fun () ->
      ignore (Hslb.Classes.make ~name:"x" ~count:0 (fun ~nodes:_ -> 1.)))

(* ---------- Alloc_model ---------- *)

let fitted_of_law ~name ~count law =
  let cls = Hslb.Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes) in
  let rng = Numerics.Rng.create 11 in
  List.hd (Hslb.Classes.gather_and_fit ~rng ~sizes:[ 1; 2; 4; 8; 16; 64 ] ~reps:1 [ cls ])

let solve_ok ?solver ?objective ~n_total specs =
  match Hslb.Alloc_model.solve ?solver ?objective ~n_total specs with
  | Ok a -> a
  | Error st -> Alcotest.failf "allocation failed: %s" (Minlp.Solution.status_to_string st)

let two_class_specs () =
  (* class A three times the work of class B *)
  let a = fitted_of_law ~name:"heavy" ~count:1 (Scaling_law.make ~a:300. ~b:0. ~c:1. ~d:0.5) in
  let b = fitted_of_law ~name:"light" ~count:1 (Scaling_law.make ~a:100. ~b:0. ~c:1. ~d:0.5) in
  [ Hslb.Alloc_model.spec_of a; Hslb.Alloc_model.spec_of b ]

let test_minmax_allocation_proportional () =
  let specs = two_class_specs () in
  let alloc = solve_ok ~n_total:40 specs in
  (* heavy class should get roughly 3x the nodes of light *)
  let nh = alloc.Hslb.Alloc_model.nodes_per_task.(0)
  and nl = alloc.Hslb.Alloc_model.nodes_per_task.(1) in
  Alcotest.(check bool) "heavy gets more" true (nh > 2 * nl);
  Alcotest.(check bool) "budget respected" true (nh + nl <= 40);
  Alcotest.(check bool) "makespan sane" true
    (alloc.Hslb.Alloc_model.predicted_makespan < 300. /. 10.)

let test_minmax_vs_brute_force () =
  let specs = two_class_specs () in
  let alloc = solve_ok ~n_total:20 specs in
  (* brute force over all splits with the same fitted laws *)
  let specs_arr = Array.of_list specs in
  let time i n =
    Scaling_law.eval_int specs_arr.(i).Hslb.Alloc_model.fc.Hslb.Classes.fit.Hslb.Fitting.law n
  in
  let best = ref infinity in
  for n1 = 1 to 19 do
    let t = Float.max (time 0 n1) (time 1 (20 - n1)) in
    if t < !best then best := t
  done;
  check_float ~eps:1e-6 "optimal" !best alloc.Hslb.Alloc_model.predicted_makespan

let test_counts_scale_budget () =
  (* a class with count=5 consumes 5x its per-task nodes *)
  let fc = fitted_of_law ~name:"c" ~count:5 (Scaling_law.make ~a:100. ~b:0. ~c:1. ~d:0.) in
  let alloc = solve_ok ~n_total:50 [ Hslb.Alloc_model.spec_of fc ] in
  Alcotest.(check int) "10 nodes each" 10 alloc.Hslb.Alloc_model.nodes_per_task.(0)

let test_sweet_spots_respected () =
  let specs =
    List.map
      (fun s -> { s with Hslb.Alloc_model.allowed = Some [ 2; 4; 8; 16 ] })
      (two_class_specs ())
  in
  let alloc = solve_ok ~n_total:20 specs in
  Array.iter
    (fun n -> Alcotest.(check bool) "allowed value" true (List.mem n [ 2; 4; 8; 16 ]))
    alloc.Hslb.Alloc_model.nodes_per_task

let test_objectives_ranking () =
  (* min-max <= max-min <= min-sum in realized makespan (paper: min-sum
     is much worse, max-min slightly worse) *)
  let specs = two_class_specs () in
  let makespan objective =
    let alloc = solve_ok ~objective ~n_total:24 specs in
    alloc.Hslb.Alloc_model.predicted_makespan
  in
  let mm = makespan Hslb.Objective.Min_max in
  let xm = makespan Hslb.Objective.Max_min in
  let ms = makespan Hslb.Objective.Min_sum in
  Alcotest.(check bool) "min-max best" true (mm <= xm +. 1e-6 && mm <= ms +. 1e-6)

let test_max_min_uses_all_nodes () =
  let specs = two_class_specs () in
  let alloc = solve_ok ~objective:Hslb.Objective.Max_min ~n_total:24 specs in
  let used =
    alloc.Hslb.Alloc_model.nodes_per_task.(0) + alloc.Hslb.Alloc_model.nodes_per_task.(1)
  in
  Alcotest.(check bool) "uses (almost) all nodes" true (used >= 23)

let test_solver_choice_agrees () =
  let specs = two_class_specs () in
  let a = solve_ok ~solver:Engine.Solver_choice.Oa ~n_total:30 specs in
  let b = solve_ok ~solver:Engine.Solver_choice.Bnb ~n_total:30 specs in
  check_float ~eps:1e-3 "same makespan" a.Hslb.Alloc_model.predicted_makespan
    b.Hslb.Alloc_model.predicted_makespan

(* restrict_to_values: builder-level edge cases for the sweet-spot
   encoding *)
let restrict_and_solve ?(minimize = true) ~lo ~hi values =
  let b = Minlp.Problem.Builder.create ~minimize () in
  let v = Minlp.Problem.Builder.add_var b ~name:"n" ~lo ~hi Minlp.Problem.Integer in
  Minlp.Problem.Builder.set_objective b (Minlp.Expr.var v);
  let pairs = Hslb.Alloc_model.restrict_to_values b ~var:v values in
  let sol = Minlp.Oa.run (Minlp.Problem.Builder.build b) in
  (pairs, sol, v)

let test_restrict_singleton () =
  let pairs, sol, v = restrict_and_solve ~lo:1. ~hi:10. [ 5 ] in
  Alcotest.(check (list int)) "one binary" [ 5 ] (List.map snd pairs);
  Alcotest.(check bool) "optimal" true (sol.Minlp.Solution.status = Minlp.Solution.Optimal);
  check_float "pinned to 5" 5. sol.Minlp.Solution.x.(v)

let test_restrict_unsorted_duplicates () =
  (* the value list is normalized: sorted increasing, duplicates fused *)
  let pairs, sol, v = restrict_and_solve ~lo:1. ~hi:20. [ 8; 2; 8; 4; 2 ] in
  Alcotest.(check (list int)) "sorted unique" [ 2; 4; 8 ] (List.map snd pairs);
  check_float "min allowed" 2. sol.Minlp.Solution.x.(v)

let test_restrict_out_of_range_value () =
  (* 50 exceeds the variable's upper bound, so its binary can never be
     selected; the solver must land on the in-range value *)
  let pairs, sol, v = restrict_and_solve ~minimize:false ~lo:1. ~hi:10. [ 3; 50 ] in
  Alcotest.(check (list int)) "both encoded" [ 3; 50 ] (List.map snd pairs);
  Alcotest.(check bool) "optimal" true (sol.Minlp.Solution.status = Minlp.Solution.Optimal);
  check_float "picks feasible 3" 3. sol.Minlp.Solution.x.(v)

let test_restrict_spec_allowed_singleton () =
  (* end-to-end: a singleton sweet-spot list forces the allocation *)
  let fc = fitted_of_law ~name:"c" ~count:1 (Scaling_law.make ~a:100. ~b:0. ~c:1. ~d:0.) in
  let alloc =
    solve_ok ~n_total:32 [ { (Hslb.Alloc_model.spec_of fc) with allowed = Some [ 6 ] } ]
  in
  Alcotest.(check int) "forced to 6" 6 alloc.Hslb.Alloc_model.nodes_per_task.(0)

let test_assignment_milp_small () =
  (* 4 tasks (3,3,2,2) on 2 identical groups -> makespan 5 *)
  let durations = [| 3.; 3.; 2.; 2. |] in
  let assignment, predicted =
    Hslb.Alloc_model.assignment_milp ~group_sizes:[| 4; 4 |]
      ~duration:(fun ~task ~group:_ -> durations.(task))
      ~num_tasks:4 ()
  in
  check_float "makespan" 5. predicted;
  Alcotest.(check int) "assigned all" 4 (Array.length assignment)

let test_assignment_milp_fallback_lpt () =
  (* node budget 0 forces the LPT fallback; still a valid assignment *)
  let durations = [| 5.; 4.; 3.; 3.; 3. |] in
  let assignment, predicted =
    Hslb.Alloc_model.assignment_milp ~max_nodes:0 ~group_sizes:[| 1; 1 |]
      ~duration:(fun ~task ~group:_ -> durations.(task))
      ~num_tasks:5 ()
  in
  Alcotest.(check int) "assigned all" 5 (Array.length assignment);
  Alcotest.(check bool) "reasonable" true (predicted <= 11.)

(* ---------- Fmo_app pipeline ---------- *)

let small_setup () =
  let machine = Machine.make ~name:"t" ~num_nodes:64 ~noise_sigma:0.01 () in
  let rng = Numerics.Rng.create 21 in
  let molecule = Fmo.Molecule.water_cluster ~rng 8 in
  let plan = Fmo.Task.fmo2_plan (Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd) in
  (machine, plan)

let test_pipeline_runs_and_predicts () =
  let machine, plan = small_setup () in
  let hp, run =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 2) machine plan ~n_total:32
      Hslb.Fmo_app.default_config
  in
  Alcotest.(check bool) "positive time" true (run.Fmo.Fmo_run.total_time > 0.);
  (* prediction within 25% of simulated actual *)
  let rel =
    Float.abs (hp.Hslb.Fmo_app.predicted_total -. run.Fmo.Fmo_run.total_time)
    /. run.Fmo.Fmo_run.total_time
  in
  Alcotest.(check bool) "prediction close" true (rel < 0.25);
  (* partition uses at most the budget *)
  Alcotest.(check bool) "monomer budget" true
    (Gddi.Group.total_nodes hp.Hslb.Fmo_app.partition <= 32);
  Alcotest.(check bool) "dimer budget" true
    (Gddi.Group.total_nodes hp.Hslb.Fmo_app.dimer_partition <= 32);
  (* every fit is good, as the paper reports *)
  List.iter
    (fun (fc : Hslb.Classes.fitted) ->
      Alcotest.(check bool) "r2" true (fc.Hslb.Classes.fit.Hslb.Fitting.r2 > 0.95))
    hp.Hslb.Fmo_app.monomer_fits

let test_hslb_not_worse_than_dynamic () =
  let machine, plan = small_setup () in
  let dyn = Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 3) machine plan ~n_total:32 () in
  let _, h =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 3) machine plan ~n_total:32
      Hslb.Fmo_app.default_config
  in
  Alcotest.(check bool) "within 10% or better" true
    (h.Fmo.Fmo_run.total_time <= dyn.Fmo.Fmo_run.total_time *. 1.1)

let test_baselines_run () =
  let machine, plan = small_setup () in
  let se =
    Hslb.Fmo_app.run_static_even ~rng:(Numerics.Rng.create 4) machine plan ~n_total:32 ()
  in
  Alcotest.(check bool) "static even positive" true (se.Fmo.Fmo_run.total_time > 0.);
  let dyn =
    Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 4) machine plan ~n_total:32 ~groups:4 ()
  in
  Alcotest.(check bool) "dynamic custom groups" true (dyn.Fmo.Fmo_run.total_time > 0.)

let test_budget_validation () =
  let machine, plan = small_setup () in
  Alcotest.(check bool) "raises below one node per fragment" true
    (try
       ignore
         (Hslb.Fmo_app.plan_hslb ~rng:(Numerics.Rng.create 1) machine plan ~n_total:4
            Hslb.Fmo_app.default_config);
       false
     with Invalid_argument _ -> true)

(* ---------- Model_store ---------- *)

let test_model_store_roundtrip () =
  let fits =
    [
      fitted_of_law ~name:"alpha" ~count:3 (Scaling_law.make ~a:200. ~b:1e-5 ~c:0.9 ~d:2.);
      fitted_of_law ~name:"beta" ~count:1 (Scaling_law.make ~a:55. ~b:0. ~c:1. ~d:0.1);
    ]
  in
  let csv = Hslb.Model_store.to_csv fits in
  let back = Hslb.Model_store.of_csv csv in
  Alcotest.(check int) "two classes" 2 (List.length back);
  List.iter2
    (fun (a : Hslb.Classes.fitted) (b : Hslb.Classes.fitted) ->
      Alcotest.(check string) "name" a.Hslb.Classes.cls.Hslb.Classes.name
        b.Hslb.Classes.cls.Hslb.Classes.name;
      Alcotest.(check int) "count" a.Hslb.Classes.cls.Hslb.Classes.count
        b.Hslb.Classes.cls.Hslb.Classes.count;
      (* law round-trips exactly through %.17g *)
      List.iter
        (fun n ->
          check_float ~eps:1e-12
            (Printf.sprintf "prediction at %d" n)
            (Hslb.Classes.predicted_time a n) (Hslb.Classes.predicted_time b n))
        [ 1; 7; 64 ])
    fits back

let test_model_store_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Hslb.Model_store.of_csv "not,a,valid,line");
       false
     with Failure _ -> true)

let test_model_store_file_roundtrip () =
  let fits = [ fitted_of_law ~name:"x" ~count:2 (Scaling_law.make ~a:10. ~b:0. ~c:1. ~d:0.) ] in
  let path = Filename.temp_file "hslb_store" ".csv" in
  Hslb.Model_store.save path fits;
  let back = Hslb.Model_store.load path in
  Sys.remove path;
  Alcotest.(check int) "one class" 1 (List.length back);
  (* solve from the restored specs *)
  let alloc =
    solve_ok ~n_total:10 (Hslb.Model_store.specs_of_csv (Hslb.Model_store.to_csv back))
  in
  Alcotest.(check int) "5 nodes each" 5 alloc.Hslb.Alloc_model.nodes_per_task.(0)

(* ---------- Report ---------- *)

let test_report_renders () =
  let machine, plan = small_setup () in
  let hp, run =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 2) machine plan ~n_total:32
      Hslb.Fmo_app.default_config
  in
  let s = Format.asprintf "%a" Hslb.Report.pp_plan hp in
  Alcotest.(check bool) "mentions allocation" true
    (String.length s > 100
    &&
    let re_found = ref false in
    String.iteri (fun _ c -> if c = 'T' then re_found := true) s;
    !re_found);
  let cmp = Format.asprintf "%a" Hslb.Report.pp_comparison [ ("hslb", run) ] in
  Alcotest.(check bool) "comparison renders" true (String.length cmp > 50)

(* ---------- solvated peptide workload ---------- *)

let test_solvated_peptide_pipeline () =
  let rng = Numerics.Rng.create 12 in
  let m = Fmo.Molecule.solvated_peptide ~rng ~residues:4 ~waters:12 in
  Alcotest.(check int) "monomers" 16 m.Fmo.Molecule.num_monomers;
  let plan = Fmo.Task.fmo2_plan (Fmo.Fragment.fragment m Fmo.Basis.B6_31gd) in
  (* two very different populations -> at least two distinct nbf *)
  let nbfs =
    List.sort_uniq compare
      (Array.to_list (Array.map (fun (t : Fmo.Task.t) -> t.Fmo.Task.nbf) plan.Fmo.Task.monomers))
  in
  Alcotest.(check bool) "heterogeneous" true (List.length nbfs >= 2);
  let machine = Machine.make ~name:"solv" ~num_nodes:64 () in
  let _, run =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 3) machine plan ~n_total:64
      Hslb.Fmo_app.default_config
  in
  Alcotest.(check bool) "runs" true (run.Fmo.Fmo_run.total_time > 0.)

let prop_online_matches_batch =
  QCheck.Test.make ~name:"online buffered refit equals batch fit" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let law =
        Scaling_law.make
          ~a:(Numerics.Rng.uniform rng ~lo:20. ~hi:500.)
          ~b:(Numerics.Rng.uniform rng ~lo:0. ~hi:0.01)
          ~c:(Numerics.Rng.uniform rng ~lo:0.7 ~hi:1.)
          ~d:(Numerics.Rng.uniform rng ~lo:0. ~hi:2.)
      in
      let obs =
        Array.of_list
          (List.map
             (fun n ->
               let y = Scaling_law.eval_int law n in
               (float_of_int n, y *. (1. +. Numerics.Rng.normal rng ~mu:0. ~sigma:0.02)))
             [ 1; 2; 4; 8; 16; 32 ])
      in
      let batch = Hslb.Fitting.fit_observations ~rng:(Numerics.Rng.create (seed + 1)) obs in
      let st = Hslb.Fitting.Online.create ~rng:(Numerics.Rng.create (seed + 1)) [||] in
      Hslb.Fitting.Online.observe_all st obs;
      let online = Hslb.Fitting.Online.refit st in
      Scaling_law.to_array batch.Hslb.Fitting.law
      = Scaling_law.to_array online.Hslb.Fitting.law)

let prop_allocation_within_budget =
  QCheck.Test.make ~name:"allocation always within node budget" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let k = 2 + Numerics.Rng.int rng 3 in
      let specs =
        List.init k (fun i ->
            let law =
              Scaling_law.make
                ~a:(Numerics.Rng.uniform rng ~lo:20. ~hi:500.)
                ~b:0.
                ~c:(Numerics.Rng.uniform rng ~lo:0.7 ~hi:1.)
                ~d:(Numerics.Rng.uniform rng ~lo:0. ~hi:2.)
            in
            let count = 1 + Numerics.Rng.int rng 3 in
            Hslb.Alloc_model.spec_of
              (fitted_of_law ~name:(Printf.sprintf "c%d" i) ~count law))
      in
      let n_total =
        List.fold_left (fun acc s -> acc + s.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.count) 0 specs
        * (2 + Numerics.Rng.int rng 8)
      in
      match Hslb.Alloc_model.solve ~n_total specs with
      | Error _ -> false
      | Ok alloc ->
      let used =
        List.fold_left
          (fun (acc, i) s ->
            ( acc
              + (s.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.count
                * alloc.Hslb.Alloc_model.nodes_per_task.(i)),
              i + 1 ))
          (0, 0) specs
        |> fst
      in
      used <= n_total
      && Array.for_all (fun n -> n >= 1) alloc.Hslb.Alloc_model.nodes_per_task)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_allocation_within_budget; prop_online_matches_batch ]
  in
  Alcotest.run "hslb"
    [
      ( "fitting",
        [
          Alcotest.test_case "recovers noiseless" `Quick test_fit_recovers_noiseless;
          Alcotest.test_case "insufficient data" `Quick test_fit_rejects_insufficient_data;
          Alcotest.test_case "nonneg params" `Quick test_fit_nonneg_params;
          Alcotest.test_case "recommended sizes" `Quick test_recommended_sizes;
          Alcotest.test_case "recommended sizes messages" `Quick
            test_recommended_sizes_messages;
          Alcotest.test_case "online = batch" `Quick test_online_buffered_equals_batch;
          Alcotest.test_case "online tracks drift" `Quick test_online_tracks_drift;
        ] );
      ( "classes",
        [
          Alcotest.test_case "gather shape" `Quick test_gather_shape;
          Alcotest.test_case "gather and fit" `Quick test_gather_and_fit;
          Alcotest.test_case "validation" `Quick test_class_validation;
        ] );
      ( "alloc_model",
        [
          Alcotest.test_case "proportional split" `Quick test_minmax_allocation_proportional;
          Alcotest.test_case "matches brute force" `Quick test_minmax_vs_brute_force;
          Alcotest.test_case "counts scale budget" `Quick test_counts_scale_budget;
          Alcotest.test_case "sweet spots" `Quick test_sweet_spots_respected;
          Alcotest.test_case "objective ranking" `Quick test_objectives_ranking;
          Alcotest.test_case "max-min uses nodes" `Quick test_max_min_uses_all_nodes;
          Alcotest.test_case "oa = bnb" `Quick test_solver_choice_agrees;
          Alcotest.test_case "restrict singleton" `Quick test_restrict_singleton;
          Alcotest.test_case "restrict unsorted+dups" `Quick test_restrict_unsorted_duplicates;
          Alcotest.test_case "restrict out-of-range" `Quick test_restrict_out_of_range_value;
          Alcotest.test_case "allowed singleton end-to-end" `Quick
            test_restrict_spec_allowed_singleton;
          Alcotest.test_case "assignment milp" `Quick test_assignment_milp_small;
          Alcotest.test_case "assignment fallback" `Quick test_assignment_milp_fallback_lpt;
        ] );
      ( "fmo_app",
        [
          Alcotest.test_case "pipeline predicts" `Quick test_pipeline_runs_and_predicts;
          Alcotest.test_case "not worse than dynamic" `Quick test_hslb_not_worse_than_dynamic;
          Alcotest.test_case "baselines" `Quick test_baselines_run;
          Alcotest.test_case "budget validation" `Quick test_budget_validation;
          Alcotest.test_case "solvated peptide" `Quick test_solvated_peptide_pipeline;
        ] );
      ( "model_store",
        [
          Alcotest.test_case "csv roundtrip" `Quick test_model_store_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_model_store_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick test_model_store_file_roundtrip;
        ] );
      ("report", [ Alcotest.test_case "renders" `Quick test_report_renders ]);
      ("properties", qsuite);
    ]
