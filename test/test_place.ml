(* lib/place + Fmo.Comm: the communication-matrix generator, the
   topology-constrained placement model (memory knapsacks, hop-priced
   comm term), the heuristic and MINLP paths, and the placement-aware
   fingerprints that keep topology-distinct instances out of each
   other's cache entries. *)

let fragments ?(seed = 7) n =
  Fmo.Fragment.fragment
    (Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create seed) n)
    Fmo.Basis.B6_31gd

(* ---------- Fmo.Comm ---------- *)

let test_comm_shape () =
  let frags = fragments 10 in
  let c = Fmo.Comm.generate ~seed:3 frags in
  Alcotest.(check int) "size" 10 (Fmo.Comm.size c);
  for i = 0 to 9 do
    Alcotest.(check (float 0.)) "zero diagonal" 0. (Fmo.Comm.volume c i i);
    for j = 0 to 9 do
      Alcotest.(check (float 1e-12)) "symmetric" (Fmo.Comm.volume c i j) (Fmo.Comm.volume c j i);
      if i <> j then
        Alcotest.(check bool) "positive off-diagonal" true (Fmo.Comm.volume c i j > 0.)
    done
  done

let test_comm_determinism () =
  let frags = fragments 8 in
  let a = Fmo.Comm.generate ~seed:11 frags and b = Fmo.Comm.generate ~seed:11 frags in
  Alcotest.(check bool) "same seed, same matrix" true (Fmo.Comm.to_matrix a = Fmo.Comm.to_matrix b);
  let c = Fmo.Comm.generate ~seed:12 frags in
  Alcotest.(check bool) "different seed, different matrix" true
    (Fmo.Comm.to_matrix a <> Fmo.Comm.to_matrix c)

(* permuting the fragment array permutes the matrix consistently: the
   jitter is keyed on fragment ids, which travel with the fragments *)
let prop_comm_permutation =
  QCheck.Test.make ~count:30 ~name:"comm permutes with the fragments"
    QCheck.(pair (int_range 3 12) small_nat)
    (fun (n, pseed) ->
      let frags = fragments n in
      let base = Fmo.Comm.generate ~seed:5 frags in
      let perm = Array.init n Fun.id in
      Numerics.Rng.shuffle (Numerics.Rng.create (pseed + 1)) perm;
      let shuffled = Array.map (fun i -> frags.(i)) perm in
      let permuted = Fmo.Comm.generate ~seed:5 shuffled in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if
            Float.abs (Fmo.Comm.volume permuted i j -. Fmo.Comm.volume base perm.(i) perm.(j))
            > 1e-12
          then ok := false
        done
      done;
      !ok)

let test_comm_ndjson_roundtrip () =
  let c = Fmo.Comm.generate ~seed:2 (fragments 6) in
  match Fmo.Comm.of_ndjson (Fmo.Comm.to_ndjson c) with
  | Ok c' ->
    Alcotest.(check bool) "roundtrip" true (Fmo.Comm.to_matrix c = Fmo.Comm.to_matrix c')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_comm_ndjson_diagnostics () =
  let check_err text expected =
    match Fmo.Comm.of_ndjson ~file:"t.ndjson" text with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error e -> Alcotest.(check string) "diagnostic" expected e
  in
  check_err "" "t.ndjson:1: empty comm file";
  check_err "{\"comm\":\"hslb-comm-v1\"}" "t.ndjson:1: missing field \"n\"";
  check_err
    "{\"comm\":\"hslb-comm-v1\",\"n\":2}\n{\"row\":0,\"mb\":[0,1]}\n{\"row\":9,\"mb\":[1,0]}"
    "t.ndjson:3: expected row 1, got row 9";
  check_err
    "{\"comm\":\"hslb-comm-v1\",\"n\":2}\n{\"row\":0,\"mb\":[0,1]}\n{\"row\":1,\"mb\":[2,0]}"
    "t.ndjson:2: field \"mb\": volume (0,1) breaks symmetry"

(* ---------- the placement instance used across the suite ---------- *)

let demo ?(tasks = 8) ?(groups = 4) ?(group_size = 4) ?(torus = (4, 4, 4)) ?(seed = 7)
    ?(mem_per_node_gb = 0.5) () =
  let x, y, z = torus in
  let topology = Topology.make ~x ~y ~z in
  let frags = fragments ~seed tasks in
  let comm = Fmo.Comm.generate ~seed frags in
  let sizes = List.init groups (fun _ -> group_size) in
  let group_ids = Array.of_list (Topology.place topology ~placement:Topology.Compact ~sizes) in
  let names = Array.map (fun (f : Fmo.Fragment.t) -> Printf.sprintf "frag%d" f.Fmo.Fragment.id) frags in
  let duration_s =
    Array.map
      (fun (f : Fmo.Fragment.t) ->
        Array.make groups (Fmo.Task.scf_work_gflops f.Fmo.Fragment.nbf /. 500.))
      frags
  in
  let mem_gb =
    Array.mapi
      (fun i (f : Fmo.Fragment.t) ->
        (8e-7 *. float_of_int (f.Fmo.Fragment.nbf * f.Fmo.Fragment.nbf)) +. (0.3 +. (0.02 *. float_of_int i)))
      frags
  in
  Place.Model.make ~topology ~groups:group_ids ~names ~duration_s ~mem_gb ~mem_per_node_gb
    ~comm_mb:(Fmo.Comm.to_matrix comm) ~hop_cost_s_per_mb:0.01 ()

(* ---------- Place.Model: memory early rejection ---------- *)

let test_memory_rejection_messages () =
  let topology = Topology.make ~x:2 ~y:2 ~z:1 in
  let groups = [| [| 0; 1 |]; [| 2 |] |] in
  let base_names = [| "mono"; "dimer" |] in
  let durations = [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let comm = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let mk ~mem_gb ~mem_per_node_gb =
    Place.Model.make ~topology ~groups ~names:base_names ~duration_s:durations ~mem_gb
      ~mem_per_node_gb ~comm_mb:comm ~hop_cost_s_per_mb:0.1 ()
  in
  Alcotest.check_raises "single class over the roomiest group"
    (Invalid_argument
       "Place.Model.make: class \"dimer\" needs 3.000 GB but group 0 (2 nodes at 1.000 GB/node) \
        holds only 2.000 GB")
    (fun () -> ignore (mk ~mem_gb:[| 0.5; 3.0 |] ~mem_per_node_gb:1.0));
  Alcotest.check_raises "aggregate over the machine"
    (Invalid_argument
       "Place.Model.make: classes need 3.500 GB in total but the 2 groups hold only 3.000 GB")
    (fun () -> ignore (mk ~mem_gb:[| 1.8; 1.7 |] ~mem_per_node_gb:1.0))

(* ---------- fingerprints: topology-distinct instances never share ---------- *)

let test_fingerprint_topology_regression () =
  let a = demo ~torus:(4, 4, 4) () and b = demo ~torus:(8, 4, 2) () in
  Alcotest.(check bool) "same shape, different torus => different key" true
    (Place.Model.fingerprint a <> Place.Model.fingerprint b);
  let c = demo ~mem_per_node_gb:0.6 () in
  Alcotest.(check bool) "different memory budget => different key" true
    (Place.Model.fingerprint (demo ()) <> Place.Model.fingerprint c);
  Alcotest.(check bool) "deterministic" true
    (Place.Model.fingerprint (demo ()) = Place.Model.fingerprint (demo ()));
  Alcotest.(check bool) "base prefix separates placed from unplaced" true
    (Place.Model.fingerprint ~base:"alloc-v1|x" (demo ())
    <> Place.Model.fingerprint ~base:"alloc-v1|y" (demo ()))

(* ---------- Optimizer ---------- *)

let test_optimizer_beats_blind () =
  let inst = demo ~tasks:12 () in
  let blind = Place.Optimizer.comm_blind inst in
  let aware = Place.Optimizer.optimize inst in
  let eb = Place.Model.eval inst blind and ea = Place.Model.eval inst aware in
  Alcotest.(check bool) "memory feasible (blind)" true (Place.Model.feasible_memory inst blind);
  Alcotest.(check bool) "memory feasible (aware)" true (Place.Model.feasible_memory inst aware);
  Alcotest.(check bool) "comm-aware strictly cheaper on the wire" true
    (ea.Place.Model.comm_cost_s < eb.Place.Model.comm_cost_s);
  Alcotest.(check bool) "makespan within 5%" true
    (ea.Place.Model.makespan_s <= 1.05 *. eb.Place.Model.makespan_s +. 1e-9)

(* ---------- MINLP path ---------- *)

let small_instance () = demo ~tasks:5 ~groups:3 ~group_size:2 ~torus:(2, 2, 2) ()

let test_minlp_audited_optimal () =
  let inst = small_instance () in
  let heuristic = Place.Optimizer.optimize inst in
  match Place.Model.solve_minlp ~warm_start:heuristic inst with
  | Error st -> Alcotest.failf "solve failed: %s" (Minlp.Solution.status_to_string st)
  | Ok solved ->
    Alcotest.(check string) "proven optimal" "optimal"
      (Minlp.Solution.status_to_string solved.Place.Model.status);
    let he = Place.Model.eval inst heuristic in
    Alcotest.(check bool) "never worse than the heuristic" true
      (solved.Place.Model.evaluation.Place.Model.total_s <= he.Place.Model.total_s +. 1e-6);
    let problem, _ = Place.Model.build_milp inst in
    (match solved.Place.Model.certificate with
    | None -> Alcotest.fail "no certificate emitted"
    | Some cert -> (
      match Audit.check_minlp problem cert with
      | Ok () -> ()
      | Error _ as v -> Alcotest.failf "certificate rejected: %s" (Audit.summary v)))

let test_minlp_budget_and_warm_start () =
  let inst = small_instance () in
  (* an already-cancelled budget must come back empty-handed, not crash *)
  let cancel = Engine.Cancel.create () in
  Engine.Cancel.cancel cancel;
  (match Place.Model.solve_minlp ~cancel inst with
  | Ok solved ->
    Alcotest.(check bool) "cancelled run may still carry the warm incumbent" true
      (match solved.Place.Model.status with
      | Minlp.Solution.Budget_exhausted _ | Minlp.Solution.Optimal -> true
      | _ -> false)
  | Error (Minlp.Solution.Budget_exhausted _) -> ()
  | Error st -> Alcotest.failf "unexpected status: %s" (Minlp.Solution.status_to_string st));
  (* a warm start under the same cancelled budget always has an incumbent *)
  let warm = Place.Optimizer.comm_blind inst in
  match Place.Model.solve_minlp ~cancel ~warm_start:warm inst with
  | Ok _ -> ()
  | Error st ->
    Alcotest.failf "warm-started cancelled solve lost its incumbent: %s"
      (Minlp.Solution.status_to_string st)

(* ---------- E11 golden: byte-stable under the pinned comm seed ---------- *)

let test_e11_golden () =
  let render () =
    let buf = Buffer.create 1024 in
    let fmt = Format.formatter_of_buffer buf in
    (Experiments.Registry.find "E11_placement").Experiments.Registry.run ~quick:true fmt;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let expected =
    "\n== E11: placement sensitivity, 64 even groups on a 3-D torus ==\nnodes  group size  compact dia/max  scattered dia/max  comm s (compact)  comm s (scattered)  overhead ratio  total slowdown\n-----  ----------  ---------------  -----------------  ----------------  ------------------  --------------  --------------\n512    8           3 / 12           12 / 12            6.55e+01          1.24e+02            1.9x            +86.5%        \nexpected shape: compact placement keeps the paper's b~0 premise at every scale; scattered placement inflates the communication term increasingly with machine size\n"
  in
  Alcotest.(check string) "pinned-seed output is byte-stable" expected (render ());
  Alcotest.(check string) "stable across renders" (render ()) (render ())

(* ---------- BENCH_place roundtrip ---------- *)

let test_place_bench_roundtrip () =
  let t = Experiments.Place_bench.run ~quick:true ~seed:42 () in
  match Experiments.Place_bench.of_json (Experiments.Place_bench.to_json t) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok t' ->
    Alcotest.(check bool) "roundtrip preserves the document" true (t = t');
    List.iter
      (fun (r : Experiments.Place_bench.row) ->
        let find s =
          List.find (fun (c : Experiments.Place_bench.cell) -> c.Experiments.Place_bench.strategy = s) r.Experiments.Place_bench.cells
        in
        let blind = find "blind" and aware = find "aware" in
        Alcotest.(check bool) "aware strictly cheaper on the wire" true
          (aware.Experiments.Place_bench.comm_cost_s < blind.Experiments.Place_bench.comm_cost_s);
        Alcotest.(check bool) "makespan within 5%" true
          (aware.Experiments.Place_bench.makespan_s
          <= (1.05 *. blind.Experiments.Place_bench.makespan_s) +. 1e-9))
      t.Experiments.Place_bench.rows;
    List.iter
      (fun (e : Experiments.Place_bench.exact) ->
        Alcotest.(check string) "exact path proves optimality" "optimal"
          e.Experiments.Place_bench.status;
        Alcotest.(check bool) "certificate audited" true e.Experiments.Place_bench.audited)
      t.Experiments.Place_bench.exact

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_comm_permutation ] in
  Alcotest.run "place"
    [
      ( "comm",
        [
          Alcotest.test_case "shape" `Quick test_comm_shape;
          Alcotest.test_case "determinism" `Quick test_comm_determinism;
          Alcotest.test_case "ndjson roundtrip" `Quick test_comm_ndjson_roundtrip;
          Alcotest.test_case "ndjson diagnostics" `Quick test_comm_ndjson_diagnostics;
        ]
        @ qsuite );
      ( "model",
        [
          Alcotest.test_case "memory rejection messages" `Quick test_memory_rejection_messages;
          Alcotest.test_case "fingerprint topology regression" `Quick
            test_fingerprint_topology_regression;
        ] );
      ("optimizer", [ Alcotest.test_case "beats blind" `Quick test_optimizer_beats_blind ]);
      ( "minlp",
        [
          Alcotest.test_case "audited optimal" `Quick test_minlp_audited_optimal;
          Alcotest.test_case "budget and warm start" `Quick test_minlp_budget_and_warm_start;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "E11 golden" `Quick test_e11_golden;
          Alcotest.test_case "bench roundtrip and gates" `Quick test_place_bench_roundtrip;
        ] );
    ]
