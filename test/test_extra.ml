(* Second-round coverage: edge cases and cross-validation between
   independent implementations (greedy vs MINLP, LPT vs assignment MILP,
   pretty-printers, solver limit statuses). *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ---------- Expr printing and corner cases ---------- *)

let test_expr_pp () =
  let open Minlp.Expr in
  let e = (const 2. * var 0) + pow (var 1) 2. in
  let s = to_string e in
  Alcotest.(check bool) "mentions x0" true (String.length s > 0 && String.contains s 'x');
  Alcotest.(check bool) "div by zero rejected" true
    (try
       ignore (div (var 0) (const 0.));
       false
     with Invalid_argument _ -> true)

let test_expr_compile_gradient_matches () =
  let open Minlp.Expr in
  let e = (const 3. / pow (var 0) 1.2) + (var 1 * var 0) + exp_ (scale 0.1 (var 1)) in
  let g = compile_gradient e in
  let x = [| 2.; 0.7 |] in
  let expected = gradient e x in
  let actual = g x in
  Array.iteri (fun i v -> check_float (Printf.sprintf "partial %d" i) v actual.(i)) expected

let test_expr_linear_with_div () =
  let open Minlp.Expr in
  let e = div (var 0) (const 4.) + const 1. in
  Alcotest.(check bool) "affine" true (is_linear e);
  let coeffs, k = linear_parts e in
  Alcotest.(check bool) "coeff 1/4" true (coeffs = [ (0, 0.25) ]);
  check_float "const" 1. k

(* ---------- Simplex edge cases ---------- *)

let test_simplex_iteration_limit () =
  let p = Lp.Lp_problem.make ~num_vars:3 () in
  let p = Lp.Lp_problem.set_objective p [| 1.; 1.; 1. |] in
  let p =
    Lp.Lp_problem.add_constraints p
      [ { Lp.Lp_problem.coeffs = [ (0, 1.); (1, 1.); (2, 1.) ]; sense = Lp.Lp_problem.Ge; rhs = 3. } ]
  in
  let s = Lp.Simplex.run ~max_iter:0 p in
  Alcotest.(check bool) "limit reported" true (s.Lp.Simplex.status = Lp.Simplex.Iteration_limit)

let test_simplex_equality_only_feasible_point () =
  (* x = 2 exactly *)
  let p = Lp.Lp_problem.make ~num_vars:1 () in
  let p = Lp.Lp_problem.set_objective p [| 5. |] in
  let p =
    Lp.Lp_problem.add_constraint p
      { Lp.Lp_problem.coeffs = [ (0, 1.) ]; sense = Lp.Lp_problem.Eq; rhs = 2. }
  in
  let s = Lp.Simplex.run p in
  check_float "pinned" 2. s.Lp.Simplex.x.(0)

(* ---------- MILP limit status ---------- *)

let test_milp_node_limit () =
  let b = Minlp.Problem.Builder.create ~minimize:false () in
  let vars = List.init 10 (fun _ -> Minlp.Problem.Builder.add_var b Minlp.Problem.Binary) in
  Minlp.Problem.Builder.set_objective b
    (Minlp.Expr.linear (List.mapi (fun i v -> (v, float_of_int (i + 1))) vars));
  Minlp.Problem.Builder.add_constr b
    (Minlp.Expr.linear (List.map (fun v -> (v, 1.)) vars))
    Lp.Lp_problem.Le 5.5;
  let p = Minlp.Problem.Builder.build b in
  let s = Minlp.Milp.run ~options:{ Minlp.Milp.default_options with max_nodes = 1 } p in
  Alcotest.(check bool) "limit or optimal-at-root" true
    (match s.Minlp.Solution.status with
    | Minlp.Solution.Feasible _ | Minlp.Solution.Budget_exhausted _ | Minlp.Solution.Optimal ->
      true
    | _ -> false)

(* ---------- min-sum greedy vs MINLP cross-validation ---------- *)

let fitted_of_law ~name ~count law =
  let cls =
    Hslb.Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes)
  in
  List.hd
    (Hslb.Classes.gather_and_fit ~rng:(Numerics.Rng.create 11)
       ~sizes:[ 1; 2; 4; 8; 16; 32 ] ~reps:1 [ cls ])

let solve_ok ?objective ~n_total specs =
  match Hslb.Alloc_model.solve ?objective ~n_total specs with
  | Ok a -> a
  | Error st -> Alcotest.failf "allocation failed: %s" (Minlp.Solution.status_to_string st)

let min_sum_value specs nodes =
  List.fold_left
    (fun (acc, i) (s : Hslb.Alloc_model.spec) ->
      ( acc
        +. (float_of_int s.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.count
           *. Scaling_law.eval_int s.Hslb.Alloc_model.fc.Hslb.Classes.fit.Hslb.Fitting.law
                nodes.(i)),
        i + 1 ))
    (0., 0) specs
  |> fst

let test_min_sum_greedy_matches_minlp () =
  let specs =
    [
      Hslb.Alloc_model.spec_of
        (fitted_of_law ~name:"a" ~count:2 (Scaling_law.make ~a:120. ~b:0. ~c:0.9 ~d:1.));
      Hslb.Alloc_model.spec_of
        (fitted_of_law ~name:"b" ~count:1 (Scaling_law.make ~a:60. ~b:0. ~c:0.95 ~d:0.5));
    ]
  in
  let n_total = 16 in
  let greedy = solve_ok ~objective:Hslb.Objective.Min_sum ~n_total specs in
  let problem, n_vars, _ =
    Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_sum ~n_total specs
  in
  let sol = Minlp.Oa.run problem in
  Alcotest.(check bool) "minlp optimal" true (sol.Minlp.Solution.status = Minlp.Solution.Optimal);
  let minlp_nodes =
    Array.map (fun v -> int_of_float (Float.round sol.Minlp.Solution.x.(v))) n_vars
  in
  check_float ~eps:1e-4 "same min-sum value"
    (min_sum_value specs minlp_nodes)
    (min_sum_value specs greedy.Hslb.Alloc_model.nodes_per_task)

let test_assignment_milp_optimal_vs_brute_force () =
  (* 5 tasks, 2 groups: MILP makespan equals exhaustive optimum *)
  let durations = [| 7.; 5.; 4.; 3.; 3. |] in
  let duration ~task ~group:_ = durations.(task) in
  let _, milp_ms =
    Hslb.Alloc_model.assignment_milp ~group_sizes:[| 1; 1 |] ~duration ~num_tasks:5 ()
  in
  let best = ref infinity in
  for mask = 0 to 31 do
    let l0 = ref 0. and l1 = ref 0. in
    Array.iteri
      (fun t d -> if mask land (1 lsl t) <> 0 then l0 := !l0 +. d else l1 := !l1 +. d)
      durations;
    best := Float.min !best (Float.max !l0 !l1)
  done;
  check_float "optimal makespan" !best milp_ms

(* ---------- molecule / fragment extras ---------- *)

let test_residue_sizes_ordered () =
  let open Fmo.Molecule in
  let size r = List.length (residue_atoms r) in
  Alcotest.(check bool) "gly smallest" true (size Gly < size Ala);
  Alcotest.(check bool) "trp largest" true
    (List.for_all (fun r -> size r <= size Trp) [ Gly; Ala; Ser; Leu; Phe ])

let test_polypeptide_sequence () =
  let open Fmo.Molecule in
  let m = polypeptide ~rng:(Numerics.Rng.create 1) [ Gly; Trp; Ala ] in
  Alcotest.(check int) "3 residues" 3 m.num_monomers;
  let counts = List.map (fun i -> List.length (monomer_atoms m i)) [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "per-residue atoms"
    [ List.length (residue_atoms Gly); List.length (residue_atoms Trp);
      List.length (residue_atoms Ala) ]
    counts

let test_fragment_validation () =
  let m = Fmo.Molecule.polyalanine 4 in
  Alcotest.check_raises "per_fragment 0"
    (Invalid_argument "Fragment.fragment: per_fragment must be positive") (fun () ->
      ignore (Fmo.Fragment.fragment ~per_fragment:0 m Fmo.Basis.Sto3g))

(* ---------- layouts extras ---------- *)

let test_atm_allowed_multiples () =
  let vals = Layouts.Cesm_data.atm_allowed Layouts.Cesm_data.Deg1 ~n_total:256 in
  Alcotest.(check bool) "non-empty" true (vals <> []);
  List.iter
    (fun v -> Alcotest.(check bool) "within budget" true (v >= 1 && v <= 256))
    vals

let test_layout_atm_sweet_spots () =
  let rng = Numerics.Rng.create 5 in
  let classes = Layouts.Cesm_data.benchmark_classes ~rng Layouts.Cesm_data.Deg1 in
  let fits =
    Hslb.Classes.gather_and_fit ~rng ~sizes:[ 8; 32; 128; 512 ] ~reps:1 classes
  in
  let comp name =
    Layouts.Component.of_fit ~name
      (List.find
         (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
         fits)
        .Hslb.Classes.fit
  in
  let inputs =
    { Layouts.Layout_model.ice = comp "ice"; lnd = comp "lnd"; atm = comp "atm"; ocn = comp "ocn" }
  in
  let allowed = [ 16; 48; 96 ] in
  let config =
    {
      (Layouts.Layout_model.default_config ~n_total:128) with
      Layouts.Layout_model.atm_allowed = Some allowed;
    }
  in
  let a =
    match Layouts.Layout_model.solve Layouts.Layout_model.Hybrid config inputs with
    | Ok a -> a
    | Error st ->
      Alcotest.failf "layout solve failed: %s" (Minlp.Solution.status_to_string st)
  in
  Alcotest.(check bool) "atm at sweet spot" true
    (List.mem (List.assoc "atm" a.Layouts.Layout_model.nodes) allowed)

(* ---------- scheduler cross-check ---------- *)

let test_static_even_equals_dynamic_when_uniform () =
  (* with zero noise and identical tasks, dynamic and round-robin static
     produce identical makespans *)
  let machine = Machine.make ~name:"quiet" ~num_nodes:32 ~noise_sigma:0. () in
  let m = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 2) 8 in
  (* huge cutoff: all pairs SCF dimers, all fragments same neighbour count *)
  let plan = Fmo.Task.fmo2_plan ~scf_cutoff:1e9 (Fmo.Fragment.fragment m Fmo.Basis.B6_31gd) in
  let dyn =
    Fmo.Fmo_run.run ~rng:(Numerics.Rng.create 1) machine plan
      (Gddi.Group.even_partition ~total_nodes:32 ~groups:8)
      Fmo.Fmo_run.Dynamic
  in
  let monomer = Gddi.Schedulers.round_robin ~num_tasks:8 ~num_groups:8 in
  let ndimers = Array.length (Fmo.Task.dimer_tasks plan) in
  let dimer = Gddi.Schedulers.round_robin ~num_tasks:ndimers ~num_groups:8 in
  let stat =
    Fmo.Fmo_run.run ~rng:(Numerics.Rng.create 1) machine plan
      (Gddi.Group.even_partition ~total_nodes:32 ~groups:8)
      (Fmo.Fmo_run.Static { monomer; dimer })
  in
  check_float ~eps:1e-9 "identical" dyn.Fmo.Fmo_run.total_time stat.Fmo.Fmo_run.total_time

(* ---------- FMO3 trimers ---------- *)

let test_fmo3_plan_structure () =
  let m = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 2) 27 in
  let frags = Fmo.Fragment.fragment m Fmo.Basis.B6_31gd in
  let p2 = Fmo.Task.fmo2_plan frags in
  let p3 = Fmo.Task.fmo3_plan frags in
  Alcotest.(check int) "fmo2 has no trimers" 0 (Array.length p2.Fmo.Task.trimers);
  Alcotest.(check bool) "fmo3 has trimers" true (Array.length p3.Fmo.Task.trimers > 0);
  Array.iter
    (fun (t : Fmo.Task.t) ->
      Alcotest.(check bool) "three fragments" true
        (t.Fmo.Task.frag2 <> None && t.Fmo.Task.frag3 <> None);
      Alcotest.(check int) "union basis" (3 * 19) t.Fmo.Task.nbf)
    p3.Fmo.Task.trimers;
  Alcotest.(check bool) "fmo3 costs more" true
    (Fmo.Task.total_work p3 > Fmo.Task.total_work p2);
  Alcotest.(check int) "corrections = dimers + trimers"
    (Array.length (Fmo.Task.dimer_tasks p3) + Array.length p3.Fmo.Task.trimers)
    (Array.length (Fmo.Task.correction_tasks p3))

let test_fmo3_cutoff_validation () =
  let m = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 2) 8 in
  let frags = Fmo.Fragment.fragment m Fmo.Basis.B6_31gd in
  Alcotest.check_raises "trimer cutoff too large"
    (Invalid_argument "Task.fmo3_plan: trimer cutoff must not exceed the dimer cutoff")
    (fun () -> ignore (Fmo.Task.fmo3_plan ~scf_cutoff:5. ~trimer_cutoff:6. frags))

let test_fmo3_runs_end_to_end () =
  let machine = Machine.make ~name:"t3" ~num_nodes:64 () in
  let m = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 2) 8 in
  let plan = Fmo.Task.fmo3_plan (Fmo.Fragment.fragment m Fmo.Basis.B6_31gd) in
  let _, run =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 6) machine plan ~n_total:64
      Hslb.Fmo_app.default_config
  in
  Alcotest.(check bool) "positive time" true (run.Fmo.Fmo_run.total_time > 0.)

(* ---------- energy invariance (metamorphic) ---------- *)

let test_energy_scheduler_invariance () =
  (* the computed FMO energy must be identical no matter how the work
     was scheduled: load balancing may change wall clock, not science *)
  let machine = Machine.make ~name:"e" ~num_nodes:48 () in
  let m = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 9) 12 in
  let plan = Fmo.Task.fmo3_plan (Fmo.Fragment.fragment m Fmo.Basis.B6_31gd) in
  let reference = Fmo.Energy.total_energy plan in
  Alcotest.(check bool) "negative total" true (reference < 0.);
  let energies =
    [
      Fmo.Energy.energy_of_run plan
        (Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 1) machine plan ~n_total:48 ());
      Fmo.Energy.energy_of_run plan
        (Hslb.Fmo_app.run_stealing ~rng:(Numerics.Rng.create 2) machine plan ~n_total:48 ());
      Fmo.Energy.energy_of_run plan
        (snd
           (Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 3) machine plan ~n_total:48
              Hslb.Fmo_app.default_config));
    ]
  in
  List.iter (fun e -> check_float ~eps:1e-9 "scheduler-invariant energy" reference e) energies

let test_energy_magnitudes () =
  let m = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 9) 8 in
  let plan = Fmo.Task.fmo2_plan (Fmo.Fragment.fragment m Fmo.Basis.B6_31gd) in
  (* monomer terms dominate; corrections are small *)
  let monomer_sum =
    Array.fold_left (fun acc t -> acc +. Fmo.Energy.task_energy plan t) 0. plan.Fmo.Task.monomers
  in
  let total = Fmo.Energy.total_energy plan in
  Alcotest.(check bool) "corrections are a small fraction" true
    (Float.abs (total -. monomer_sum) < 0.05 *. Float.abs monomer_sum)

(* ---------- work stealing ---------- *)

let test_stealing_balances_bad_seed () =
  (* all tasks seeded on group 0: stealing must spread them out *)
  let p = Gddi.Group.of_sizes [ 1; 1; 1; 1 ] in
  let duration ~task:_ ~group:_ = 1. in
  let seed = Array.make 8 0 in
  let steal = Gddi.Sim.run_phase p ~num_tasks:8 ~duration (Gddi.Sim.Stealing seed) in
  let static = Gddi.Sim.run_phase p ~num_tasks:8 ~duration (Gddi.Sim.Static seed) in
  check_float "static is serialized" 8. static.Gddi.Sim.makespan;
  check_float "stealing spreads" 2. steal.Gddi.Sim.makespan

let test_stealing_executes_every_task_once () =
  let p = Gddi.Group.of_sizes [ 2; 2; 2 ] in
  let duration ~task ~group:_ = 0.5 +. (0.1 *. float_of_int task) in
  let seed = Array.init 11 (fun i -> i mod 2) in
  let r = Gddi.Sim.run_phase p ~num_tasks:11 ~duration (Gddi.Sim.Stealing seed) in
  Alcotest.(check int) "11 events" 11 (List.length r.Gddi.Sim.events);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Gddi.Sim.event) ->
      if Hashtbl.mem seen e.Gddi.Sim.task then Alcotest.fail "task executed twice";
      Hashtbl.add seen e.Gddi.Sim.task ())
    r.Gddi.Sim.events;
  Alcotest.(check bool) "assignment complete" true
    (Array.for_all (fun g -> g >= 0) r.Gddi.Sim.assignment)

(* ---------- trace export ---------- *)

let test_trace_csv () =
  let p = Gddi.Group.of_sizes [ 1; 1 ] in
  let duration ~task ~group:_ = float_of_int (task + 1) in
  let r = Gddi.Sim.run_phase p ~num_tasks:3 ~duration (Gddi.Sim.Static [| 0; 1; 0 |]) in
  let csv = Gddi.Trace.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 events" 4 (List.length lines);
  Alcotest.(check string) "header" "task,group,start,finish,duration" (List.hd lines);
  let summary = Gddi.Trace.summary_csv p r in
  Alcotest.(check int) "summary rows" 3 (List.length (String.split_on_char '\n' (String.trim summary)))

let test_chart_renders () =
  let series =
    [
      { Experiments.Chart.label = "a"; marker = '*'; points = [ (1., 10.); (10., 5.); (100., 1.) ] };
      { Experiments.Chart.label = "b"; marker = '+'; points = [ (1., 8.); (100., 2.) ] };
    ]
  in
  let s =
    Format.asprintf "%a"
      (fun fmt () -> Experiments.Chart.plot fmt ~title:"t" ~width:40 ~height:8 series)
      ()
  in
  Alcotest.(check bool) "contains markers" true
    (String.contains s '*' && String.contains s '+');
  Alcotest.(check bool) "rejects empty" true
    (try
       Experiments.Chart.plot Format.str_formatter ~title:"x" [];
       false
     with Invalid_argument _ -> true)

let test_gantt_renders () =
  let p = Gddi.Group.of_sizes [ 1; 2 ] in
  let duration ~task:_ ~group:_ = 1. in
  let r = Gddi.Sim.run_phase p ~num_tasks:4 ~duration Gddi.Sim.Dynamic in
  let s = Format.asprintf "%a" (fun fmt -> Gddi.Trace.pp_gantt fmt ~width:40 p) r in
  Alcotest.(check bool) "has rows" true (String.length s > 80)

let prop_min_sum_greedy_never_beaten_by_random =
  QCheck.Test.make ~name:"min-sum greedy dominates random feasible allocations" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let k = 2 + Numerics.Rng.int rng 2 in
      let specs =
        List.init k (fun i ->
            let law =
              Scaling_law.make
                ~a:(Numerics.Rng.uniform rng ~lo:20. ~hi:300.)
                ~b:0.
                ~c:(Numerics.Rng.uniform rng ~lo:0.8 ~hi:1.)
                ~d:(Numerics.Rng.uniform rng ~lo:0. ~hi:2.)
            in
            Hslb.Alloc_model.spec_of (fitted_of_law ~name:(Printf.sprintf "r%d" i) ~count:1 law))
      in
      let n_total = k * (3 + Numerics.Rng.int rng 10) in
      let greedy = solve_ok ~objective:Hslb.Objective.Min_sum ~n_total specs in
      let gval = min_sum_value specs greedy.Hslb.Alloc_model.nodes_per_task in
      (* random feasible allocation *)
      let ok = ref true in
      for _ = 1 to 20 do
        let remaining = ref (n_total - k) in
        let nodes =
          Array.init k (fun i ->
              if i = k - 1 then 1 + !remaining
              else begin
                let extra = Numerics.Rng.int rng (1 + !remaining) in
                remaining := !remaining - extra;
                1 + extra
              end)
        in
        if min_sum_value specs nodes < gval -. 1e-6 then ok := false
      done;
      !ok)

(* ---------- experiment registry lookup ---------- *)

let test_registry_find_exact_and_prefix () =
  (match Experiments.Registry.find_result "E4_scaling" with
  | Ok e -> Alcotest.(check string) "exact id" "E4_scaling" e.Experiments.Registry.id
  | Error msg -> Alcotest.failf "exact lookup failed: %s" msg);
  match Experiments.Registry.find_result "E4" with
  | Ok e -> Alcotest.(check string) "unique prefix" "E4_scaling" e.Experiments.Registry.id
  | Error msg -> Alcotest.failf "prefix lookup failed: %s" msg

let test_registry_unknown_lists_valid_ids () =
  (* the exact message is what bench --only prints, so pin it *)
  let expected =
    "unknown experiment \"E99\"; valid ids: E1_fit_quality, E2_objectives, "
    ^ "E3_pred_vs_actual, E4_scaling, E5_protein, E6_solver, E7_samples, "
    ^ "E8_cesm_table3, E9_cesm_layouts, E10_scheduler_ablation, E11_placement, "
    ^ "E12_resolve, E13_arena, E14_place"
  in
  match Experiments.Registry.find_result "E99" with
  | Ok _ -> Alcotest.fail "E99 should be unknown"
  | Error msg -> Alcotest.(check string) "error message" expected msg

let test_registry_ambiguous_prefix () =
  let expected =
    "ambiguous experiment \"E1\": matches E1_fit_quality, E10_scheduler_ablation, \
     E11_placement, E12_resolve, E13_arena, E14_place"
  in
  match Experiments.Registry.find_result "E1" with
  | Ok e -> Alcotest.failf "E1 should be ambiguous, resolved to %s" e.Experiments.Registry.id
  | Error msg -> Alcotest.(check string) "error message" expected msg

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_min_sum_greedy_never_beaten_by_random ] in
  Alcotest.run "extra"
    [
      ( "registry",
        [
          Alcotest.test_case "exact and prefix" `Quick test_registry_find_exact_and_prefix;
          Alcotest.test_case "unknown lists valid ids" `Quick
            test_registry_unknown_lists_valid_ids;
          Alcotest.test_case "ambiguous prefix" `Quick test_registry_ambiguous_prefix;
        ] );
      ( "expr",
        [
          Alcotest.test_case "pp and guards" `Quick test_expr_pp;
          Alcotest.test_case "compiled gradient" `Quick test_expr_compile_gradient_matches;
          Alcotest.test_case "linear with div" `Quick test_expr_linear_with_div;
        ] );
      ( "lp",
        [
          Alcotest.test_case "iteration limit" `Quick test_simplex_iteration_limit;
          Alcotest.test_case "pinned equality" `Quick test_simplex_equality_only_feasible_point;
        ] );
      ("milp", [ Alcotest.test_case "node limit" `Quick test_milp_node_limit ]);
      ( "alloc cross-validation",
        [
          Alcotest.test_case "greedy = MINLP (min-sum)" `Quick test_min_sum_greedy_matches_minlp;
          Alcotest.test_case "assignment MILP optimal" `Quick
            test_assignment_milp_optimal_vs_brute_force;
        ] );
      ( "fmo extras",
        [
          Alcotest.test_case "residue sizes" `Quick test_residue_sizes_ordered;
          Alcotest.test_case "polypeptide sequence" `Quick test_polypeptide_sequence;
          Alcotest.test_case "fragment validation" `Quick test_fragment_validation;
        ] );
      ( "layouts extras",
        [
          Alcotest.test_case "atm allowed" `Quick test_atm_allowed_multiples;
          Alcotest.test_case "atm sweet spots" `Quick test_layout_atm_sweet_spots;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "uniform dyn = static" `Quick
            test_static_even_equals_dynamic_when_uniform;
          Alcotest.test_case "stealing balances" `Quick test_stealing_balances_bad_seed;
          Alcotest.test_case "stealing exactly once" `Quick
            test_stealing_executes_every_task_once;
        ] );
      ( "fmo3",
        [
          Alcotest.test_case "plan structure" `Quick test_fmo3_plan_structure;
          Alcotest.test_case "cutoff validation" `Quick test_fmo3_cutoff_validation;
          Alcotest.test_case "end to end" `Quick test_fmo3_runs_end_to_end;
        ] );
      ( "energy",
        [
          Alcotest.test_case "scheduler invariance" `Quick test_energy_scheduler_invariance;
          Alcotest.test_case "magnitudes" `Quick test_energy_magnitudes;
        ] );
      ( "trace",
        [
          Alcotest.test_case "csv export" `Quick test_trace_csv;
          Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
          Alcotest.test_case "ascii chart renders" `Quick test_chart_renders;
        ] );
      ("properties", qsuite);
    ]
