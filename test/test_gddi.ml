(* Tests for the GDDI group runtime: partitions, the discrete-event
   phase simulator (dynamic + static), heap, and scheduler heuristics. *)

open Gddi

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ---------- Heap ---------- *)

let test_heap_ordering () =
  let h = Ds.Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Ds.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let drained = List.init (Ds.Heap.size h) (fun _ -> Ds.Heap.pop h) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty" true (Ds.Heap.is_empty h)

let test_heap_empty () =
  let h = Ds.Heap.create ~leq:(fun (a : int) b -> a <= b) in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Ds.Heap.pop h));
  Alcotest.(check (option int)) "pop_opt" None (Ds.Heap.pop_opt h);
  Alcotest.(check (option int)) "peek_opt" None (Ds.Heap.peek_opt h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:100
    QCheck.(small_list int)
    (fun xs ->
      let h = Ds.Heap.create ~leq:(fun a b -> a <= b) in
      List.iter (Ds.Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Ds.Heap.pop h) in
      drained = List.sort compare xs)

(* ---------- Group ---------- *)

let test_even_partition () =
  let p = Group.even_partition ~total_nodes:10 ~groups:3 in
  Alcotest.(check int) "groups" 3 (Group.num_groups p);
  Alcotest.(check int) "total" 10 (Group.total_nodes p);
  Alcotest.(check (list int)) "sizes" [ 4; 3; 3 ]
    (Array.to_list (Array.map (fun g -> g.Group.nodes) p))

let test_partition_errors () =
  Alcotest.check_raises "too many groups"
    (Invalid_argument "Group.even_partition: more groups than nodes") (fun () ->
      ignore (Group.even_partition ~total_nodes:2 ~groups:3));
  Alcotest.check_raises "bad size" (Invalid_argument "Group.of_sizes: non-positive size")
    (fun () -> ignore (Group.of_sizes [ 2; 0 ]))

(* ---------- Sim ---------- *)

let const_duration d ~task:_ ~group:_ = d

let test_static_sums_per_group () =
  let p = Group.of_sizes [ 2; 2 ] in
  (* tasks 0,1 -> group 0; task 2 -> group 1; durations 1,2,3 *)
  let duration ~task ~group:_ = float_of_int (task + 1) in
  let r = Sim.run_phase p ~num_tasks:3 ~duration (Sim.Static [| 0; 0; 1 |]) in
  check_float "makespan" 3. r.Sim.makespan;
  check_float "g0 busy" 3. r.Sim.group_busy.(0);
  check_float "g1 busy" 3. r.Sim.group_busy.(1);
  Alcotest.(check (array int)) "assignment" [| 0; 0; 1 |] r.Sim.assignment

let test_dynamic_pulls_earliest_free () =
  let p = Group.of_sizes [ 1; 1 ] in
  (* durations: 4, 1, 1, 1 -> dynamic: g0 takes t0 (4); g1 takes t1..t3 (3) *)
  let durations = [| 4.; 1.; 1.; 1. |] in
  let duration ~task ~group:_ = durations.(task) in
  let r = Sim.run_phase p ~num_tasks:4 ~duration Sim.Dynamic in
  check_float "makespan" 4. r.Sim.makespan;
  Alcotest.(check (array int)) "assignment" [| 0; 1; 1; 1 |] r.Sim.assignment

let test_dynamic_dispatch_latency () =
  let p = Group.of_sizes [ 1 ] in
  let r =
    Sim.run_phase ~dispatch_latency:0.5 p ~num_tasks:2 ~duration:(const_duration 1.) Sim.Dynamic
  in
  check_float "latency added" 3. r.Sim.makespan

let test_static_no_dispatch_latency () =
  let p = Group.of_sizes [ 1 ] in
  let r =
    Sim.run_phase ~dispatch_latency:0.5 p ~num_tasks:2 ~duration:(const_duration 1.)
      (Sim.Static [| 0; 0 |])
  in
  check_float "no latency for static" 2. r.Sim.makespan

let test_sim_validation () =
  let p = Group.of_sizes [ 1 ] in
  Alcotest.check_raises "length" (Invalid_argument "Sim.run_phase: assignment length mismatch")
    (fun () ->
      ignore (Sim.run_phase p ~num_tasks:2 ~duration:(const_duration 1.) (Sim.Static [| 0 |])));
  Alcotest.check_raises "group range" (Invalid_argument "Sim.run_phase: group id out of range")
    (fun () ->
      ignore (Sim.run_phase p ~num_tasks:1 ~duration:(const_duration 1.) (Sim.Static [| 3 |])));
  let bad_duration = Invalid_argument "Sim.run_phase: negative or non-finite duration" in
  Alcotest.check_raises "negative duration" bad_duration (fun () ->
      ignore (Sim.run_phase p ~num_tasks:1 ~duration:(const_duration (-1.)) (Sim.Static [| 0 |])));
  Alcotest.check_raises "NaN duration" bad_duration (fun () ->
      ignore (Sim.run_phase p ~num_tasks:1 ~duration:(const_duration Float.nan) (Sim.Static [| 0 |])));
  Alcotest.check_raises "infinite duration" bad_duration (fun () ->
      ignore
        (Sim.run_phase p ~num_tasks:1 ~duration:(const_duration Float.infinity)
           (Sim.Static [| 0 |])));
  let bad_latency = Invalid_argument "Sim.run_phase: negative or non-finite dispatch latency" in
  Alcotest.check_raises "negative latency" bad_latency (fun () ->
      ignore
        (Sim.run_phase ~dispatch_latency:(-0.1) p ~num_tasks:1 ~duration:(const_duration 1.)
           Sim.Dynamic));
  Alcotest.check_raises "NaN latency" bad_latency (fun () ->
      ignore
        (Sim.run_phase ~dispatch_latency:Float.nan p ~num_tasks:1 ~duration:(const_duration 1.)
           Sim.Dynamic))

let test_empty_phase () =
  (* zero tasks with non-empty groups is a valid phase under every
     schedule (the arena's bursty scenarios produce them) *)
  let p = Group.of_sizes [ 1; 1 ] in
  List.iter
    (fun (label, schedule) ->
      let r = Sim.run_phase p ~num_tasks:0 ~duration:(const_duration 1.) schedule in
      check_float (label ^ " empty makespan") 0. r.Sim.makespan;
      check_float (label ^ " utilization 1") 1. (Sim.utilization p r);
      check_float (label ^ " idle 0") 0. (Sim.idle_time p r);
      Alcotest.(check int) (label ^ " no events") 0 (List.length r.Sim.events))
    [ ("dynamic", Sim.Dynamic); ("static", Sim.Static [||]); ("stealing", Sim.Stealing [||]) ]

let test_stealing_victim_selection () =
  (* all four 1s tasks seeded on group 0: groups 1 and 2 start idle and
     steal from the tail of the longest remaining queue — t3 then t2.
     Pinned so victim selection stays deterministic. *)
  let p = Group.of_sizes [ 1; 1; 1 ] in
  let r =
    Sim.run_phase p ~num_tasks:4 ~duration:(const_duration 1.)
      (Sim.Stealing [| 0; 0; 0; 0 |])
  in
  Alcotest.(check (array int)) "steal from tail" [| 0; 0; 2; 1 |] r.Sim.assignment;
  check_float "balanced makespan" 2. r.Sim.makespan;
  (* tie on remaining queue length: the lowest-id victim is robbed
     first (g1 and g2 both hold one spare; g3 takes g1's tail) *)
  let durations = [| 5.; 1.; 1.; 1.; 1. |] in
  let duration ~task ~group:_ = durations.(task) in
  let p4 = Group.of_sizes [ 1; 1; 1; 1 ] in
  let r2 = Sim.run_phase p4 ~num_tasks:5 ~duration (Sim.Stealing [| 0; 1; 1; 2; 2 |]) in
  Alcotest.(check (array int)) "lowest-id victim on tie" [| 0; 1; 3; 2; 1 |] r2.Sim.assignment

let test_stealing_donor_drained () =
  (* donor queue empties mid-run: g0 drains its own queue, comes back
     and steals from g1's tail paying the dispatch round-trip; once
     every queue is dry the idle group retires without spinning *)
  let durations = [| 1.; 5.; 5.; 5. |] in
  let duration ~task ~group:_ = durations.(task) in
  let p = Group.of_sizes [ 1; 1 ] in
  let r =
    Sim.run_phase ~dispatch_latency:0.25 p ~num_tasks:4 ~duration
      (Sim.Stealing [| 0; 1; 1; 1 |])
  in
  Alcotest.(check (array int)) "owner steals when drained" [| 0; 1; 1; 0 |] r.Sim.assignment;
  check_float "steal pays latency" 6.25 r.Sim.group_finish.(0);
  check_float "donor unaffected" 10. r.Sim.group_finish.(1);
  check_float "makespan" 10. r.Sim.makespan

let test_utilization () =
  let p = Group.of_sizes [ 1; 3 ] in
  (* one task of 2s on each group: busy = 2*1 + 2*3 = 8 node-s of 2*4 = 8 -> 100% *)
  let r = Sim.run_phase p ~num_tasks:2 ~duration:(const_duration 2.) (Sim.Static [| 0; 1 |]) in
  check_float "utilization" 1. (Sim.utilization p r);
  check_float "idle" 0. (Sim.idle_time p r);
  (* both tasks on group 0: group 1 idles 4s -> idle = 4*3 = 12 node-s *)
  let r2 = Sim.run_phase p ~num_tasks:2 ~duration:(const_duration 2.) (Sim.Static [| 0; 0 |]) in
  check_float "utilization 2" (4. /. 16.) (Sim.utilization p r2);
  check_float "idle 2" 12. (Sim.idle_time p r2)

let test_events_chronology () =
  let p = Group.of_sizes [ 1 ] in
  let r = Sim.run_phase p ~num_tasks:3 ~duration:(const_duration 1.) (Sim.Static [| 0; 0; 0 |]) in
  let starts = List.map (fun e -> e.Sim.start) r.Sim.events in
  Alcotest.(check (list (float 1e-9))) "starts" [ 0.; 1.; 2. ] starts

let test_duration_called_once_per_task () =
  (* the documented contract: [duration] is called exactly once per
     task, under every scheduling policy — stochastic costs must be
     sampled once, like a real execution *)
  let num_tasks = 13 in
  let policies =
    [
      ("dynamic", Sim.Dynamic);
      ("static", Sim.Static (Array.init num_tasks (fun t -> t mod 3)));
      ("stealing", Sim.Stealing (Array.make num_tasks 0));
    ]
  in
  List.iter
    (fun (label, policy) ->
      let calls = Array.make num_tasks 0 in
      let duration ~task ~group:_ =
        calls.(task) <- calls.(task) + 1;
        1. +. (0.1 *. float_of_int task)
      in
      let p = Group.of_sizes [ 2; 1; 1 ] in
      let r = Sim.run_phase p ~num_tasks ~duration policy in
      Array.iteri
        (fun t n ->
          if n <> 1 then Alcotest.failf "%s: duration for task %d called %d times" label t n)
        calls;
      Alcotest.(check int)
        (label ^ " executes every task") num_tasks
        (List.length r.Sim.events))
    policies

(* ---------- Schedulers ---------- *)

let test_round_robin () =
  Alcotest.(check (array int)) "rr" [| 0; 1; 2; 0; 1 |]
    (Schedulers.round_robin ~num_tasks:5 ~num_groups:3)

let test_lpt_beats_greedy_order () =
  let p = Group.of_sizes [ 1; 1 ] in
  (* durations 1,1,1,3: submission-order greedy -> {1,1} {1,3}=4; LPT -> {3}{1,1,1}=3 *)
  let durations = [| 1.; 1.; 1.; 3. |] in
  let predicted ~task ~group:_ = durations.(task) in
  let lpt = Schedulers.lpt p ~predicted ~num_tasks:4 in
  let greedy = Schedulers.greedy_min_finish p ~predicted ~num_tasks:4 in
  let mk a = Schedulers.predicted_makespan p ~predicted a in
  check_float "lpt optimal" 3. (mk lpt);
  check_float "greedy worse" 4. (mk greedy)

let prop_dynamic_within_2x_of_lpt =
  (* list scheduling is a 2-approximation: dynamic (FCFS order) and LPT
     should agree within that factor on uniform groups *)
  QCheck.Test.make ~name:"dynamic within 2x of LPT" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let num_tasks = 3 + Numerics.Rng.int rng 20 in
      let groups = 1 + Numerics.Rng.int rng 4 in
      let durations =
        Array.init num_tasks (fun _ -> Numerics.Rng.uniform rng ~lo:0.1 ~hi:10.)
      in
      let duration ~task ~group:_ = durations.(task) in
      let p = Group.even_partition ~total_nodes:(4 * groups) ~groups in
      let dyn = Sim.run_phase p ~num_tasks ~duration Sim.Dynamic in
      let lpt = Schedulers.lpt p ~predicted:duration ~num_tasks in
      let lpt_ms = Schedulers.predicted_makespan p ~predicted:duration lpt in
      (* both are list schedules: dyn <= 2·OPT and OPT <= lpt_ms *)
      dyn.Sim.makespan <= (2. *. lpt_ms) +. 1e-9)

let prop_static_assignment_respected =
  QCheck.Test.make ~name:"static assignment is executed as given" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let num_tasks = 1 + Numerics.Rng.int rng 15 in
      let groups = 1 + Numerics.Rng.int rng 5 in
      let p = Group.even_partition ~total_nodes:(2 * groups) ~groups in
      let a = Array.init num_tasks (fun _ -> Numerics.Rng.int rng groups) in
      let duration ~task:_ ~group:_ = 1. in
      let r = Sim.run_phase p ~num_tasks ~duration (Sim.Static a) in
      r.Sim.assignment = a)

(* ---------- Trace ---------- *)

let test_trace_csv_roundtrip () =
  let p = Group.of_sizes [ 2; 2 ] in
  let duration ~task ~group:_ = float_of_int (task + 1) /. 2. in
  let r = Sim.run_phase p ~num_tasks:5 ~duration (Sim.Static [| 0; 1; 0; 1; 0 |]) in
  let csv = Trace.to_csv r in
  match String.split_on_char '\n' (String.trim csv) with
  | [] -> Alcotest.fail "empty csv"
  | header :: rows ->
    Alcotest.(check string) "header" "task,group,start,finish,duration" header;
    Alcotest.(check int) "one row per event" (List.length r.Sim.events) (List.length rows);
    (* parse every row back and compare against the source events *)
    List.iter2
      (fun row (e : Sim.event) ->
        match String.split_on_char ',' row with
        | [ task; group; start; finish; dur ] ->
          Alcotest.(check int) "task" e.Sim.task (int_of_string task);
          Alcotest.(check int) "group" e.Sim.group (int_of_string group);
          check_float ~eps:1e-6 "start" e.Sim.start (float_of_string start);
          check_float ~eps:1e-6 "finish" e.Sim.finish (float_of_string finish);
          check_float ~eps:1e-6 "duration" (e.Sim.finish -. e.Sim.start)
            (float_of_string dur)
        | cols -> Alcotest.failf "row %S has %d columns" row (List.length cols))
      rows r.Sim.events

let test_gantt_width_handling () =
  let p = Group.of_sizes [ 2; 2 ] in
  let duration ~task:_ ~group:_ = 1. in
  let r = Sim.run_phase p ~num_tasks:2 ~duration (Sim.Static [| 0; 1 |]) in
  (* widths below the minimum are rejected up front *)
  Alcotest.check_raises "width too small"
    (Invalid_argument "Trace.pp_gantt: width too small") (fun () ->
      Format.asprintf "%a" (fun fmt -> Trace.pp_gantt fmt ~width:9 p) r |> ignore);
  (* golden render: both tasks cover the whole makespan, with the
     alternating fill characters making them distinguishable *)
  let rendered = Format.asprintf "%a" (fun fmt -> Trace.pp_gantt fmt ~width:20 p) r in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered)
  in
  (match lines with
  | [ head; g0; g1 ] ->
    Alcotest.(check string) "header line" "makespan 1.0000 s over 2 groups" head;
    Alcotest.(check string) "group 0 row" "g0  (   2 nodes) |####################|" g0;
    Alcotest.(check string) "group 1 row" "g1  (   2 nodes) |====================|" g1
  | ls -> Alcotest.failf "expected 3 lines, got %d" (List.length ls));
  (* the bar between the pipes is exactly [width] chars at any width *)
  List.iter
    (fun width ->
      let s = Format.asprintf "%a" (fun fmt -> Trace.pp_gantt fmt ~width p) r in
      List.iter
        (fun line ->
          match (String.index_opt line '|', String.rindex_opt line '|') with
          | Some i, Some j when j > i ->
            Alcotest.(check int)
              (Printf.sprintf "bar width at width:%d" width)
              width (j - i - 1)
          | _ -> ())
        (String.split_on_char '\n' s))
    [ 10; 17; 40 ]

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_heap_sorts; prop_dynamic_within_2x_of_lpt; prop_static_assignment_respected ]
  in
  Alcotest.run "gddi"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
        ] );
      ( "group",
        [
          Alcotest.test_case "even partition" `Quick test_even_partition;
          Alcotest.test_case "errors" `Quick test_partition_errors;
        ] );
      ( "sim",
        [
          Alcotest.test_case "static sums" `Quick test_static_sums_per_group;
          Alcotest.test_case "dynamic pull" `Quick test_dynamic_pulls_earliest_free;
          Alcotest.test_case "dispatch latency" `Quick test_dynamic_dispatch_latency;
          Alcotest.test_case "static has no latency" `Quick test_static_no_dispatch_latency;
          Alcotest.test_case "validation" `Quick test_sim_validation;
          Alcotest.test_case "empty phase" `Quick test_empty_phase;
          Alcotest.test_case "stealing victim selection" `Quick test_stealing_victim_selection;
          Alcotest.test_case "stealing donor drained" `Quick test_stealing_donor_drained;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "event chronology" `Quick test_events_chronology;
          Alcotest.test_case "duration called once" `Quick test_duration_called_once_per_task;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "lpt vs greedy" `Quick test_lpt_beats_greedy_order;
        ] );
      ( "trace",
        [
          Alcotest.test_case "csv round-trip" `Quick test_trace_csv_roundtrip;
          Alcotest.test_case "gantt width handling" `Quick test_gantt_width_handling;
        ] );
      ("properties", qsuite);
    ]
