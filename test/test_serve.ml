(* Serving-layer tests: JSON codec, wire protocol parsing, and the
   server itself — admission control under overload, end-to-end
   deadlines, in-flight dedupe, caching, and graceful drain (every
   admitted request answered, every domain joined). *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let open Serve.Json in
  let cases =
    [
      ("null", Null);
      ("true", Bool true);
      ("-3.5", Num (-3.5));
      ("42", Num 42.);
      ({|"a b"|}, Str "a b");
      ("[1,[],{}]", Arr [ Num 1.; Arr []; Obj [] ]);
      ({|{"k":"v","n":null}|}, Obj [ ("k", Str "v"); ("n", Null) ]);
    ]
  in
  List.iter
    (fun (text, value) ->
      (match parse text with
      | Ok v -> Alcotest.(check bool) ("parse " ^ text) true (v = value)
      | Error e -> Alcotest.failf "parse %s: %s" text e);
      (* printing then re-parsing is the identity *)
      match parse (to_string value) with
      | Ok v -> Alcotest.(check bool) ("reparse " ^ text) true (v = value)
      | Error e -> Alcotest.failf "reparse %s: %s" text e)
    cases;
  (* integral floats print as integers: NDJSON ids echo cleanly *)
  Alcotest.(check string) "integral num" "7" (to_string (Num 7.));
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|} (to_string (Str "a\"b\\c\nd"));
  Alcotest.(check string) "non-finite is null" "null" (to_string (Num Float.nan))

let test_json_unicode_and_errors () =
  let open Serve.Json in
  (match parse {|"é😀"|} with
  | Ok (Str s) -> Alcotest.(check string) "utf-8 decode" "\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape rejected");
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error msg ->
        Alcotest.(check bool) (bad ^ " error has offset") true
          (contains_substring msg "offset"))
    [ "{"; "[1,]"; {|{"a":1,}|}; "tru"; {|"unterminated|}; "1 2"; "" ]

let test_json_accessors () =
  let open Serve.Json in
  let v = Obj [ ("s", Str "x"); ("n", Num 3.); ("b", Bool false); ("a", Arr [ Null ]) ] in
  Alcotest.(check (option string)) "str" (Some "x") (Option.bind (member "s" v) str);
  Alcotest.(check (option int)) "int_" (Some 3) (Option.bind (member "n" v) int_);
  Alcotest.(check (option bool)) "bool_" (Some false) (Option.bind (member "b" v) bool_);
  Alcotest.(check bool) "arr" true (Option.bind (member "a" v) arr = Some [ Null ]);
  Alcotest.(check bool) "missing member" true (member "zz" v = None);
  Alcotest.(check bool) "member of non-object" true (member "s" Null = None);
  Alcotest.(check bool) "non-integral int_" true (int_ (Num 3.5) = None)

(* ---------- Protocol ---------- *)

let model_csv = "alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2"

let solve_line ?(id = 1) ?(nodes = 32) ?deadline_ms ?(extra = "") () =
  Printf.sprintf {|{"id":%d,"model_csv":%s,"nodes":%d%s%s}|} id
    (Serve.Json.to_string (Serve.Json.Str model_csv))
    nodes
    (match deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf {|,"deadline_ms":%g|} ms)
    extra

let test_protocol_parse () =
  let open Serve.Protocol in
  (match parse_line (solve_line ~id:9 ~nodes:16 ~deadline_ms:250. ()) with
  | { id = Serve.Json.Num 9.; req = Ok (Solve p); _ } ->
    Alcotest.(check int) "nodes" 16 p.n_total;
    Alcotest.(check bool) "inline model" true (p.model = `Inline model_csv);
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 250.) p.deadline_ms;
    Alcotest.(check bool) "solver defaulted" true (p.solver = None)
  | { req = Error e; _ } -> Alcotest.failf "solve rejected: %s" e
  | _ -> Alcotest.fail "unexpected parse");
  (match parse_line {|{"id":"s1","op":"sleep","ms":40}|} with
  | { id = Serve.Json.Str "s1"; req = Ok (Sleep s); _ } ->
    Alcotest.(check (float 1e-9)) "sleep seconds" 0.04 s
  | _ -> Alcotest.fail "sleep not parsed");
  (match parse_line {|{"op":"ping"}|} with
  | { req = Ok Ping; _ } -> ()
  | _ -> Alcotest.fail "ping not parsed");
  (match parse_line {|{"op":"drain"}|} with
  | { req = Ok Drain; _ } -> ()
  | _ -> Alcotest.fail "drain not parsed");
  match parse_line {|{"op":"stats"}|} with
  | { req = Ok Stats; _ } -> ()
  | _ -> Alcotest.fail "stats not parsed"

let test_protocol_errors () =
  let open Serve.Protocol in
  let expect_error ?expect line =
    match parse_line line with
    | { req = Error msg; _ } -> (
      match expect with
      | None -> ()
      | Some sub ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %s" line sub)
          true (contains_substring msg sub))
    | { req = Ok _; _ } -> Alcotest.failf "accepted %s" line
  in
  expect_error "not json";
  expect_error "[1,2]" ~expect:"object";
  expect_error {|{"op":"warp"}|} ~expect:"warp";
  expect_error {|{"op":"solve"}|} ~expect:"model";
  expect_error (solve_line ~nodes:0 ()) ~expect:"nodes";
  expect_error (solve_line ~deadline_ms:0. ()) ~expect:"deadline_ms";
  expect_error (solve_line ~extra:{|,"solver":"quantum"|} ()) ~expect:"quantum";
  expect_error
    {|{"model_csv":"a,1,1,1,1,1","model_path":"/x","nodes":4}|}
    ~expect:"both";
  (* the id still echoes even when the body is garbage *)
  match parse_line {|{"id":7,"op":"warp"}|} with
  | { id = Serve.Json.Num 7.; req = Error _; _ } -> ()
  | _ -> Alcotest.fail "id lost on protocol error"

let resolve_line ?(id = 1) ?(v = 2) ?(model = model_csv) ?(prev = "[8,8]") ?(extra = "") () =
  Printf.sprintf {|{"id":%d,"v":%d,"op":"resolve","model_csv":%s,"nodes":32,"prev":%s%s}|} id
    v
    (Serve.Json.to_string (Serve.Json.Str model))
    prev extra

let test_protocol_version () =
  let open Serve.Protocol in
  (* an absent "v" is the v1 dialect every pre-versioning client speaks *)
  (match parse_line (solve_line ()) with
  | { v = 1; req = Ok (Solve _); _ } -> ()
  | _ -> Alcotest.fail "bare solve did not parse as v1");
  (match parse_line {|{"id":2,"v":2,"op":"ping"}|} with
  | { v = 2; req = Ok Ping; _ } -> ()
  | _ -> Alcotest.fail "v2 ping not parsed");
  (* clients key on the exact future-version diagnostic *)
  (match parse_line {|{"id":3,"v":3,"op":"ping"}|} with
  | { id = Serve.Json.Num 3.; req = Error msg; _ } ->
    Alcotest.(check string) "exact version diagnostic"
      {|field "v": unsupported protocol version 3 (server speaks 1..2)|} msg
  | _ -> Alcotest.fail "v3 request accepted");
  (match parse_line {|{"id":4,"v":"two","op":"ping"}|} with
  | { req = Error msg; _ } ->
    Alcotest.(check string) "non-integer v" {|field "v": expected an integer|} msg
  | _ -> Alcotest.fail "string v accepted");
  (* the new verb is fenced behind v2 *)
  match parse_line (resolve_line ~v:1 ()) with
  | { req = Error msg; _ } ->
    Alcotest.(check string) "resolve needs v2"
      {|op "resolve" requires protocol v2 (send "v": 2)|} msg
  | _ -> Alcotest.fail "v1 resolve accepted"

let test_protocol_resolve () =
  let open Serve.Protocol in
  (match
     parse_line
       (resolve_line ~id:11
          ~extra:
            {|,"observe":[{"class":"alpha","samples":[[2,50.0],[4,25.5]]}],"epsilon":0.1|}
          ())
   with
  | { id = Serve.Json.Num 11.; v = 2; req = Ok (Resolve rp); _ } ->
    Alcotest.(check bool) "prev" true (rp.prev = [| 8; 8 |]);
    Alcotest.(check int) "base nodes" 32 rp.base.n_total;
    (match rp.observe with
    | [ ("alpha", samples) ] ->
      Alcotest.(check bool) "samples" true (samples = [| (2., 50.0); (4., 25.5) |])
    | _ -> Alcotest.fail "observe not parsed");
    Alcotest.(check (option (float 1e-9))) "epsilon" (Some 0.1) rp.epsilon
  | { req = Error e; _ } -> Alcotest.failf "resolve rejected: %s" e
  | _ -> Alcotest.fail "unexpected resolve parse");
  let expect_exact line msg =
    match parse_line line with
    | { req = Error got; _ } -> Alcotest.(check string) msg msg got
    | { req = Ok _; _ } -> Alcotest.failf "accepted %s" line
  in
  expect_exact
    (Printf.sprintf {|{"id":1,"v":2,"op":"resolve","model_csv":%s,"nodes":32}|}
       (Serve.Json.to_string (Serve.Json.Str model_csv)))
    {|op resolve: missing field "prev" (previous allocation)|};
  expect_exact
    (resolve_line ~prev:{|[8,0]|} ())
    {|field "prev": expected an array of positive integers|};
  expect_exact (resolve_line ~prev:"[]" ()) {|field "prev": must not be empty|};
  expect_exact
    (resolve_line ~extra:{|,"observe":[7]|} ())
    {|field "observe": expected an array of {class, samples} objects|};
  expect_exact
    (resolve_line ~extra:{|,"observe":[{"class":"alpha","samples":[[0,5.0]]}]|} ())
    {|field "observe": class "alpha": samples must be an array of [nodes, seconds] pairs (nodes >= 1, seconds >= 0)|};
  expect_exact (resolve_line ~extra:{|,"epsilon":0|} ()) {|field "epsilon": must be > 0|}

(* ---------- Server harness ---------- *)

(* emit runs in worker domains; the mutex both serializes test-side
   appends and gives the polling reader a happens-before edge *)
type harness = {
  server : Serve.Server.t;
  mutex : Mutex.t;
  lines : string list ref;
}

let make_harness ?(jobs = 1) ?(queue_limit = 4) ?(drain_grace_s = 5.0) ?telemetry () =
  let mutex = Mutex.create () in
  let lines = ref [] in
  let cfg =
    {
      Serve.Server.jobs;
      queue_limit;
      cache_capacity = 8;
      drain_grace_s;
      default_solver = Engine.Solver_choice.Oa;
      default_strategy = `Single Engine.Solver_choice.Oa;
      audit = true;
      policy = Arena.Policy.builtin;
    }
  in
  let emit l = Mutex.protect mutex (fun () -> lines := l :: !lines) in
  { server = Serve.Server.create ?telemetry cfg ~emit; mutex; lines }

let responses h =
  let raw = Mutex.protect h.mutex (fun () -> List.rev !(h.lines)) in
  List.map
    (fun l ->
      match Serve.Json.parse l with
      | Ok v -> v
      | Error e -> Alcotest.failf "unparseable response %s: %s" l e)
    raw

let outcome_of v =
  match Option.bind (Serve.Json.member "outcome" v) Serve.Json.str with
  | Some o -> o
  | None -> Alcotest.failf "response without outcome: %s" (Serve.Json.to_string v)

let find_by_id h id =
  List.find_opt (fun v -> Serve.Json.member "id" v = Some (Serve.Json.Num (float_of_int id)))
    (responses h)

let wait_until ?(timeout = 20.0) msg f =
  let rec go left =
    if f () then ()
    else if left <= 0. then Alcotest.failf "timed out waiting for %s" msg
    else (
      Unix.sleepf 0.01;
      go (left -. 0.01))
  in
  go timeout

let count_outcome h o =
  List.length (List.filter (fun v -> outcome_of v = o) (responses h))

(* ---------- Server tests ---------- *)

let test_serve_concurrent_solves () =
  let h = make_harness ~jobs:4 ~queue_limit:16 () in
  let ids = List.init 6 (fun i -> i + 1) in
  List.iter
    (fun i -> Serve.Server.submit h.server (solve_line ~id:i ~nodes:(16 + i) ()))
    ids;
  let report = Serve.Server.await_drain h.server in
  Alcotest.(check string) "report status" "drained" report.Engine.Run_report.status;
  List.iter
    (fun i ->
      match find_by_id h i with
      | None -> Alcotest.failf "request %d never answered" i
      | Some v ->
        Alcotest.(check string) (Printf.sprintf "id %d ok" i) "ok" (outcome_of v);
        Alcotest.(check bool)
          (Printf.sprintf "id %d audited" i)
          true
          (match Option.bind (Serve.Json.member "audit" v) Serve.Json.str with
          | Some a -> contains_substring a "verified"
          | None -> false))
    ids;
  (* each response must answer its own budget: the optimal makespan is
     monotone non-increasing in the node budget, so any cross-request
     bleed between concurrently-solving workers shows up as a bump *)
  let makespans =
    List.filter_map
      (fun i ->
        Option.bind (find_by_id h i) (fun v ->
            Option.bind (Serve.Json.member "makespan" v) Serve.Json.num))
      ids
  in
  Alcotest.(check int) "all solved" 6 (List.length makespans);
  ignore
    (List.fold_left
       (fun prev m ->
         Alcotest.(check bool) "monotone in the node budget" true (m <= prev +. 1e-9);
         m)
       infinity makespans
      : float)

let test_serve_overload () =
  let h = make_harness ~jobs:1 ~queue_limit:1 () in
  (* one request on the (single) worker or queued, at most one more
     queued — everything else must bounce inline with "overloaded" *)
  Serve.Server.submit h.server {|{"id":1,"op":"sleep","ms":300}|};
  List.iter
    (fun i -> Serve.Server.submit h.server (solve_line ~id:i ~nodes:(20 + i) ()))
    [ 2; 3; 4 ];
  Alcotest.(check bool) "rejections are inline" true (count_outcome h "overloaded" >= 2);
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let answered = List.length (responses h) in
  Alcotest.(check int) "every request answered exactly once" 4 answered;
  let stats =
    match Serve.Json.parse (Serve.Server.stats_json h.server) with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  match Option.bind (Serve.Json.member "overloaded" stats) Serve.Json.int_ with
  | Some n -> Alcotest.(check bool) "overloaded counter" true (n >= 2)
  | None -> Alcotest.fail "stats missing overloaded counter"

let test_serve_deadline_expired () =
  let h = make_harness ~jobs:1 () in
  Serve.Server.submit h.server {|{"id":1,"op":"sleep","ms":250}|};
  (* queued behind a 250 ms sleep with a 5 ms end-to-end deadline: the
     deadline is consumed before any worker picks it up *)
  Serve.Server.submit h.server (solve_line ~id:2 ~deadline_ms:5. ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  match find_by_id h 2 with
  | None -> Alcotest.fail "expired request never answered"
  | Some v -> Alcotest.(check string) "expired outcome" "expired" (outcome_of v)

let test_serve_dedupe () =
  let h = make_harness ~jobs:1 ~queue_limit:8 () in
  Serve.Server.submit h.server {|{"id":1,"op":"sleep","ms":150}|};
  (* identical fingerprints while the first is still queued: the second
     must attach to the first, not occupy a queue slot *)
  Serve.Server.submit h.server (solve_line ~id:2 ~nodes:24 ());
  Serve.Server.submit h.server (solve_line ~id:3 ~nodes:24 ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let v2 = Option.get (find_by_id h 2) and v3 = Option.get (find_by_id h 3) in
  Alcotest.(check string) "leader ok" "ok" (outcome_of v2);
  Alcotest.(check string) "follower ok" "ok" (outcome_of v3);
  Alcotest.(check bool) "same answer" true
    (Serve.Json.member "makespan" v2 = Serve.Json.member "makespan" v3);
  let dedup v =
    Option.bind (Serve.Json.member "telemetry" v) (fun t ->
        Option.bind (Serve.Json.member "dedup" t) Serve.Json.bool_)
  in
  Alcotest.(check (option bool)) "leader not deduped" (Some false) (dedup v2);
  Alcotest.(check (option bool)) "follower deduped" (Some true) (dedup v3)

let test_serve_cache_hit () =
  let h = make_harness ~jobs:1 () in
  let cache_hit v =
    Option.bind (Serve.Json.member "telemetry" v) (fun t ->
        Option.bind (Serve.Json.member "cache_hit" t) Serve.Json.bool_)
  in
  Serve.Server.submit h.server (solve_line ~id:1 ~nodes:28 ());
  (* wait for completion so the second identical request is a cache
     hit, not an in-flight dedupe *)
  wait_until "first solve" (fun () -> find_by_id h 1 <> None);
  Serve.Server.submit h.server (solve_line ~id:2 ~nodes:28 ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let v1 = Option.get (find_by_id h 1) and v2 = Option.get (find_by_id h 2) in
  Alcotest.(check (option bool)) "first is a miss" (Some false) (cache_hit v1);
  Alcotest.(check (option bool)) "second is a hit" (Some true) (cache_hit v2);
  Alcotest.(check bool) "identical allocation" true
    (Serve.Json.member "nodes_per_task" v1 = Serve.Json.member "nodes_per_task" v2)

let test_protocol_policy () =
  let open Serve.Protocol in
  (match parse_line (solve_line ~id:4 ~extra:{|,"policy":"drifting"|} ()) with
  | { req = Ok (Solve p); _ } ->
    Alcotest.(check bool) "policy parsed" true (p.policy = Some Arena.Scenario.Drifting)
  | { req = Error e; _ } -> Alcotest.failf "policy hint rejected: %s" e
  | _ -> Alcotest.fail "unexpected parse");
  (match parse_line (solve_line ~extra:{|,"policy":null|} ()) with
  | { req = Ok (Solve p); _ } -> Alcotest.(check bool) "null policy" true (p.policy = None)
  | _ -> Alcotest.fail "null policy rejected");
  (* the diagnostic is wire-exact: it names the field and every valid class *)
  match parse_line (solve_line ~extra:{|,"policy":"warp"|} ()) with
  | { req = Error msg; _ } ->
    Alcotest.(check string) "exact diagnostic"
      "field \"policy\": unknown scenario class \"warp\" (expected steady | bursty | \
       multi-tenant | heavy-tailed | drifting | failure)"
      msg
  | { req = Ok _; _ } -> Alcotest.fail "bogus policy accepted"

let policy_of v = Serve.Json.member "policy" v

let test_serve_policy_hint () =
  let h = make_harness ~jobs:1 ~queue_limit:8 () in
  Serve.Server.submit h.server (solve_line ~id:1 ~extra:{|,"policy":"drifting"|} ());
  Serve.Server.submit h.server (solve_line ~id:2 ());
  Serve.Server.submit h.server {|{"id":3,"op":"stats"}|};
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let v1 = Option.get (find_by_id h 1) in
  Alcotest.(check string) "hinted solve ok" "ok" (outcome_of v1);
  (* wire-exact: the annotation names the declared class and the
     arena's winning scheduler for it, nothing else *)
  Alcotest.(check bool) "policy object exact" true
    (policy_of v1
    = Some
        (Serve.Json.Obj
           [
             ("scenario", Serve.Json.Str "drifting");
             ("scheduler", Serve.Json.Str "hybrid");
           ]));
  (* no hint, no annotation *)
  let v2 = Option.get (find_by_id h 2) in
  Alcotest.(check string) "unhinted solve ok" "ok" (outcome_of v2);
  Alcotest.(check bool) "no policy member" true (policy_of v2 = None);
  (* the stats counter saw exactly one hint *)
  let v3 = Option.get (find_by_id h 3) in
  let hints =
    Option.bind (Serve.Json.member "stats" v3) (fun s ->
        Option.bind (Serve.Json.member "policy_hints" s) Serve.Json.int_)
  in
  Alcotest.(check (option int)) "policy_hints counter" (Some 1) hints

let test_serve_policy_per_follower () =
  (* the dedupe key is the pure fingerprint: a hinted follower attaches
     to an unhinted (or differently hinted) leader and still gets the
     recommendation for its own declared class *)
  let h = make_harness ~jobs:1 ~queue_limit:8 () in
  Serve.Server.submit h.server {|{"id":1,"op":"sleep","ms":150}|};
  Serve.Server.submit h.server (solve_line ~id:2 ~nodes:24 ~extra:{|,"policy":"drifting"|} ());
  Serve.Server.submit h.server (solve_line ~id:3 ~nodes:24 ~extra:{|,"policy":"failure"|} ());
  Serve.Server.submit h.server (solve_line ~id:4 ~nodes:24 ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let v2 = Option.get (find_by_id h 2)
  and v3 = Option.get (find_by_id h 3)
  and v4 = Option.get (find_by_id h 4) in
  List.iter (fun v -> Alcotest.(check string) "ok" "ok" (outcome_of v)) [ v2; v3; v4 ];
  Alcotest.(check bool) "deduped into one solve" true
    (Serve.Json.member "makespan" v2 = Serve.Json.member "makespan" v3);
  let scheduler v =
    Option.bind (policy_of v) (fun p ->
        Option.bind (Serve.Json.member "scheduler" p) Serve.Json.str)
  in
  Alcotest.(check (option string)) "leader's own class" (Some "hybrid") (scheduler v2);
  Alcotest.(check (option string)) "follower's own class" (Some "stealing") (scheduler v3);
  Alcotest.(check bool) "unhinted follower unannotated" true (policy_of v4 = None)

let test_serve_drain_rejects_and_joins () =
  let h = make_harness ~jobs:2 ~queue_limit:8 () in
  List.iter
    (fun i -> Serve.Server.submit h.server (solve_line ~id:i ~nodes:(40 + i) ()))
    [ 1; 2; 3 ];
  Serve.Server.initiate_drain h.server;
  Alcotest.(check bool) "draining flag" true (Serve.Server.draining h.server);
  Serve.Server.submit h.server (solve_line ~id:9 ~nodes:50 ());
  (match find_by_id h 9 with
  | Some v -> Alcotest.(check string) "late arrival bounced" "draining" (outcome_of v)
  | None -> Alcotest.fail "draining rejection must be inline");
  let report = Serve.Server.await_drain h.server in
  (* await_drain returning means every worker domain was joined; now
     check no admitted request was dropped on the floor *)
  List.iter
    (fun i ->
      match find_by_id h i with
      | Some v -> Alcotest.(check string) (Printf.sprintf "id %d ok" i) "ok" (outcome_of v)
      | None -> Alcotest.failf "in-flight request %d lost during drain" i)
    [ 1; 2; 3 ];
  Alcotest.(check string) "status" "drained" report.Engine.Run_report.status;
  (* idempotent: a second await_drain must not hang or double-join *)
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t)

let test_serve_drain_grace_cancels () =
  let h = make_harness ~jobs:1 ~drain_grace_s:0.2 () in
  (* the sleep op polls the drain token, standing in for a long solve *)
  Serve.Server.submit h.server {|{"id":1,"op":"sleep","ms":30000}|};
  wait_until "sleep picked up" (fun () ->
      match Serve.Json.parse (Serve.Server.stats_json h.server) with
      | Ok v -> Option.bind (Serve.Json.member "queue_depth" v) Serve.Json.int_ = Some 0
      | Error _ -> false);
  let t0 = Unix.gettimeofday () in
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "grace cut the 30 s sleep short" true (elapsed < 5.0);
  match find_by_id h 1 with
  | Some _ -> ()
  | None -> Alcotest.fail "cancelled sleep still owes a response"

let test_serve_protocol_error_and_ping () =
  let h = make_harness () in
  Serve.Server.submit h.server "garbage";
  Serve.Server.submit h.server {|{"id":5,"op":"ping"}|};
  Serve.Server.submit h.server {|{"id":6,"model_path":"/no/such/file","nodes":4}|};
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  (* both the unparseable line (id null) and the unreadable model are
     "error" outcomes *)
  Alcotest.(check int) "error outcomes" 2 (count_outcome h "error");
  Alcotest.(check bool) "unparseable line echoes a null id" true
    (List.exists
       (fun v -> outcome_of v = "error" && Serve.Json.member "id" v = Some Serve.Json.Null)
       (responses h));
  (match find_by_id h 5 with
  | Some v -> Alcotest.(check string) "pong" "ok" (outcome_of v)
  | None -> Alcotest.fail "ping unanswered");
  match find_by_id h 6 with
  | Some v ->
    Alcotest.(check string) "unreadable model errors" "error" (outcome_of v);
    Alcotest.(check bool) "names the path" true
      (match Option.bind (Serve.Json.member "error" v) Serve.Json.str with
      | Some e -> contains_substring e "/no/such/file"
      | None -> false)
  | None -> Alcotest.fail "bad model_path unanswered"

let test_serve_stats_latency () =
  let h = make_harness ~jobs:1 () in
  Serve.Server.submit h.server (solve_line ~id:1 ~nodes:16 ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let stats =
    match Serve.Json.parse (Serve.Server.stats_json h.server) with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  let lat =
    match Serve.Json.member "latency" stats with
    | Some l -> l
    | None -> Alcotest.fail "stats missing latency object"
  in
  List.iter
    (fun key ->
      match Serve.Json.member key lat with
      | None -> Alcotest.failf "latency missing %s" key
      | Some s ->
        (match Option.bind (Serve.Json.member "count" s) Serve.Json.int_ with
        | Some n -> Alcotest.(check bool) (key ^ " observed") true (n >= 1)
        | None -> Alcotest.failf "%s has no count" key);
        (* quantiles are real numbers once anything was observed *)
        List.iter
          (fun q ->
            match Serve.Json.member q s with
            | Some (Serve.Json.Num v) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s.%s is a finite quantile" key q)
                true
                (Float.is_finite v && v >= 0.)
            | other ->
              Alcotest.failf "%s.%s not a number: %s" key q
                (match other with
                | Some v -> Serve.Json.to_string v
                | None -> "<missing>"))
          [ "p50"; "p90"; "p99"; "max" ])
    [ "queue_wait_ms"; "solve_ms" ]

let test_serve_telemetry_fields () =
  let tmutex = Mutex.create () in
  let tlines = ref [] in
  let telemetry l = Mutex.protect tmutex (fun () -> tlines := l :: !tlines) in
  let h = make_harness ~jobs:1 ~telemetry () in
  Serve.Server.submit h.server (solve_line ~id:1 ~nodes:16 ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  let lines = Mutex.protect tmutex (fun () -> List.rev !tlines) in
  Alcotest.(check bool) "at least one telemetry line" true (List.length lines >= 1);
  List.iter
    (fun l ->
      match Serve.Json.parse l with
      | Error e -> Alcotest.failf "unparseable telemetry %s: %s" l e
      | Ok v ->
        Alcotest.(check (option string)) "event tag" (Some "request")
          (Option.bind (Serve.Json.member "event" v) Serve.Json.str);
        (match Serve.Json.member "ts_mono_s" v with
        | Some (Serve.Json.Num ts) ->
          Alcotest.(check bool) "monotonic timestamp present" true (ts > 0.)
        | _ -> Alcotest.fail "telemetry line missing ts_mono_s");
        match Option.bind (Serve.Json.member "queue_depth" v) Serve.Json.int_ with
        | Some d -> Alcotest.(check bool) "queue depth gauge" true (d >= 0)
        | None -> Alcotest.fail "telemetry line missing queue_depth")
    lines;
  (* the emit timestamps themselves must be non-decreasing in emit order *)
  let ts_of l =
    match Serve.Json.parse l with
    | Ok v -> (
      match Serve.Json.member "ts_mono_s" v with
      | Some (Serve.Json.Num ts) -> ts
      | _ -> Alcotest.fail "missing ts")
    | Error e -> Alcotest.fail e
  in
  ignore
    (List.fold_left
       (fun prev l ->
         let ts = ts_of l in
         Alcotest.(check bool) "telemetry timestamps ordered" true (ts >= prev);
         ts)
       0. lines
      : float)

(* ---------- versioned resolve ---------- *)

let single_model = "alpha,4,100,0.001,1,0.5"

let raw_responses h = Mutex.protect h.mutex (fun () -> List.rev !(h.lines))

let stat_counter h key =
  match Serve.Json.parse (Serve.Server.stats_json h.server) with
  | Error e -> Alcotest.fail e
  | Ok stats -> (
    match Option.bind (Serve.Json.member key stats) Serve.Json.int_ with
    | Some n -> n
    | None -> Alcotest.failf "stats missing %s" key)

let test_serve_resolve_unchanged () =
  (* 4 tasks of 8 nodes on 32 is already optimal: the ε-certificate
     must answer without entering the solver *)
  let h = make_harness ~jobs:1 () in
  Serve.Server.submit h.server (resolve_line ~id:1 ~model:single_model ~prev:"[8]" ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  (match find_by_id h 1 with
  | None -> Alcotest.fail "resolve unanswered"
  | Some r ->
    Alcotest.(check string) "ok" "ok" (outcome_of r);
    Alcotest.(check (option string)) "unchanged" (Some "unchanged")
      (Option.bind (Serve.Json.member "resolve" r) Serve.Json.str);
    Alcotest.(check bool) "response is v2" true
      (Serve.Json.member "v" r = Some (Serve.Json.Num 2.));
    Alcotest.(check bool) "incumbent allocation echoed" true
      (Serve.Json.member "nodes_per_task" r
      = Some (Serve.Json.Arr [ Serve.Json.Num 8. ]));
    (match Serve.Json.member "certificate" r with
    | Some cert -> (
      match
        ( Option.bind (Serve.Json.member "gap_rel" cert) Serve.Json.num,
          Option.bind (Serve.Json.member "eps" cert) Serve.Json.num )
      with
      | Some gap, Some eps -> Alcotest.(check bool) "gap within eps" true (gap <= eps)
      | _ -> Alcotest.fail "certificate missing gap_rel/eps")
    | None -> Alcotest.fail "unchanged reply carries no certificate"));
  Alcotest.(check int) "resolve_skipped counted" 1 (stat_counter h "resolve_skipped");
  Alcotest.(check int) "no genuine re-solve" 0 (stat_counter h "resolved")

let test_serve_resolve_resolved () =
  (* observations of a 2x slower law: the certificate must fail and a
     genuine (warm-started) re-solve run under the updated fit *)
  let h = make_harness ~jobs:1 () in
  Serve.Server.submit h.server
    (resolve_line ~id:1 ~model:single_model ~prev:"[4]"
       ~extra:
         {|,"observe":[{"class":"alpha","samples":[[2,100.5],[4,50.5],[8,25.5],[16,13.0]]}]|}
       ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  (match find_by_id h 1 with
  | None -> Alcotest.fail "resolve unanswered"
  | Some r ->
    Alcotest.(check string) "ok" "ok" (outcome_of r);
    Alcotest.(check (option string)) "resolved" (Some "resolved")
      (Option.bind (Serve.Json.member "resolve" r) Serve.Json.str);
    (* the re-solve prices the allocation under the updated law
       (~200/n + 0.5), not the stale inline model *)
    (match Option.bind (Serve.Json.member "makespan" r) Serve.Json.num with
    | Some m -> Alcotest.(check bool) "updated-model makespan" true (m > 20. && m < 30.)
    | None -> Alcotest.fail "no makespan");
    match Serve.Json.member "certificate" r with
    | Some cert -> (
      match
        ( Option.bind (Serve.Json.member "gap_rel" cert) Serve.Json.num,
          Option.bind (Serve.Json.member "eps" cert) Serve.Json.num )
      with
      | Some gap, Some eps -> Alcotest.(check bool) "gap above eps" true (gap > eps)
      | _ -> Alcotest.fail "certificate missing gap_rel/eps")
    | None -> Alcotest.fail "rejection reply carries no certificate");
  Alcotest.(check int) "resolved counted" 1 (stat_counter h "resolved");
  Alcotest.(check int) "nothing skipped" 0 (stat_counter h "resolve_skipped")

let test_serve_resolve_prev_mismatch () =
  (* two model classes, one prev entry: a protocol-level error, not a
     crash inside the solver *)
  let h = make_harness ~jobs:1 () in
  Serve.Server.submit h.server (resolve_line ~id:1 ~prev:"[8]" ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  match find_by_id h 1 with
  | None -> Alcotest.fail "resolve unanswered"
  | Some r ->
    Alcotest.(check string) "error" "error" (outcome_of r);
    Alcotest.(check (option string)) "exact mismatch diagnostic"
      (Some {|field "prev": expected 2 entries (one per model class), got 1|})
      (Option.bind (Serve.Json.member "error" r) Serve.Json.str)

let test_serve_version_compat () =
  let h = make_harness ~jobs:1 () in
  Serve.Server.submit h.server {|{"id":5,"op":"ping"}|};
  Serve.Server.submit h.server {|{"id":6,"v":2,"op":"ping"}|};
  Serve.Server.submit h.server {|{"id":7,"v":3,"op":"ping"}|};
  Serve.Server.submit h.server (solve_line ~id:8 ~nodes:16 ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  (* the v1 ping reply is pinned byte-for-byte: pre-versioning clients
     must replay identically against a v2 server *)
  Alcotest.(check bool) "v1 ping bytes" true
    (List.mem {|{"id":5,"outcome":"ok","pong":true}|} (raw_responses h));
  (match find_by_id h 6 with
  | None -> Alcotest.fail "v2 ping unanswered"
  | Some r ->
    Alcotest.(check bool) "v echoed" true (Serve.Json.member "v" r = Some (Serve.Json.Num 2.));
    match Serve.Json.member "protocol" r with
    | Some p ->
      Alcotest.(check (option int)) "min" (Some 1)
        (Option.bind (Serve.Json.member "min" p) Serve.Json.int_);
      Alcotest.(check (option int)) "max" (Some 2)
        (Option.bind (Serve.Json.member "max" p) Serve.Json.int_)
    | None -> Alcotest.fail "v2 ping does not advertise the protocol range");
  (match find_by_id h 7 with
  | None -> Alcotest.fail "v3 probe unanswered"
  | Some r ->
    Alcotest.(check string) "error" "error" (outcome_of r);
    Alcotest.(check (option string)) "exact version diagnostic"
      (Some {|field "v": unsupported protocol version 3 (server speaks 1..2)|})
      (Option.bind (Serve.Json.member "error" r) Serve.Json.str));
  (* v1 responses never grow a "v" field *)
  List.iter
    (fun line ->
      if contains_substring line {|"id":5|} || contains_substring line {|"id":8|} then
        Alcotest.(check bool)
          (Printf.sprintf "no version field in v1 reply %s" line)
          false
          (contains_substring line {|"v":|}))
    (raw_responses h)

(* ---------- the v2 place section ---------- *)

let place_extra =
  {|,"place":{"topology":[2,2,2],"groups":4,"mem_per_node_gb":1.0,"mem_gb":[0.6,0.5],"comm_mb":[[0,3.5],[3.5,0]],"hop_cost_s_per_mb":2.0}|}

let test_protocol_place () =
  let open Serve.Protocol in
  (* v2 parses into the typed section *)
  (match parse_line (solve_line ~id:1 ~extra:({|,"v":2|} ^ place_extra) ()) with
  | { req = Ok (Solve { place = Some pl; _ }); v = 2; _ } ->
    Alcotest.(check bool) "torus" true (pl.torus = (2, 2, 2));
    Alcotest.(check int) "groups" 4 pl.place_groups;
    Alcotest.(check (float 1e-12)) "hop cost" 2.0 pl.hop_cost_s_per_mb;
    Alcotest.(check (float 1e-12)) "comm entry" 3.5 pl.comm_mb.(0).(1)
  | { req = Error e; _ } -> Alcotest.failf "place solve rejected: %s" e
  | _ -> Alcotest.fail "place section not parsed");
  let expect_exact line want =
    match parse_line line with
    | { req = Error got; _ } -> Alcotest.(check string) ("reject " ^ want) want got
    | _ -> Alcotest.failf "expected rejection: %s" want
  in
  (* v1 must not grow the field silently *)
  expect_exact
    (solve_line ~extra:place_extra ())
    {|field "place" requires protocol v2 (send "v": 2)|};
  expect_exact
    (solve_line ~extra:{|,"v":2,"place":{"groups":4}|} ())
    {|missing field "place.topology" (the [x, y, z] torus)|};
  expect_exact
    (solve_line ~extra:{|,"v":2,"place":{"topology":[2,2],"groups":4}|} ())
    {|field "place.topology": expected an array of 3 positive integers|};
  expect_exact
    (solve_line ~extra:{|,"v":2,"place":7|} ())
    {|field "place": expected an object, got a number|};
  (* semantic rejections carry Place.Model's own messages, surfaced at
     submit time through the fingerprint path *)
  let parse_place_params line =
    match parse_line line with
    | { req = Ok (Solve p); _ } -> p
    | { req = Error e; _ } -> Alcotest.failf "unexpected rejection: %s" e
    | _ -> Alcotest.fail "not a solve"
  in
  let asym =
    parse_place_params
      (solve_line
         ~extra:
           {|,"v":2,"place":{"topology":[2,2,2],"groups":4,"mem_per_node_gb":1.0,"mem_gb":[0.5,0.5],"comm_mb":[[0,1],[2,0]]}|}
         ())
  in
  (match fingerprint asym with
  | Error e ->
    Alcotest.(check string) "asymmetry detected"
      "Place.Model.make: comm_mb is not symmetric at (0,1)" e
  | Ok _ -> Alcotest.fail "asymmetric comm accepted");
  let infeasible =
    parse_place_params
      (solve_line
         ~extra:
           {|,"v":2,"place":{"topology":[2,2,2],"groups":4,"mem_per_node_gb":1.0,"mem_gb":[5.0,0.5],"comm_mb":[[0,1],[1,0]]}|}
         ())
  in
  match fingerprint infeasible with
  | Error e ->
    Alcotest.(check string) "memory infeasibility named"
      "Place.Model.make: class \"alpha\" needs 5.000 GB but group 0 (2 nodes at 1.000 GB/node) \
       holds only 2.000 GB"
      e
  | Ok _ -> Alcotest.fail "memory-infeasible place accepted"

let test_protocol_place_fingerprint () =
  let open Serve.Protocol in
  let params extra =
    match parse_line (solve_line ~extra ()) with
    | { req = Ok (Solve p); _ } -> p
    | { req = Error e; _ } -> Alcotest.failf "parse: %s" e
    | _ -> Alcotest.fail "not a solve"
  in
  let fp p =
    match fingerprint p with Ok f -> f | Error e -> Alcotest.failf "fingerprint: %s" e
  in
  let bare = fp (params "") in
  let placed = fp (params ({|,"v":2|} ^ place_extra)) in
  let other_torus =
    fp
      (params
         {|,"v":2,"place":{"topology":[4,2,1],"groups":4,"mem_per_node_gb":1.0,"mem_gb":[0.6,0.5],"comm_mb":[[0,3.5],[3.5,0]],"hop_cost_s_per_mb":2.0}|})
  in
  Alcotest.(check bool) "placed never collides with unplaced" true (bare <> placed);
  Alcotest.(check bool) "same shape, different torus, different key" true
    (placed <> other_torus);
  Alcotest.(check bool) "placement key extends the alloc key" true
    (String.length placed > String.length bare);
  Alcotest.(check string) "deterministic" placed (fp (params ({|,"v":2|} ^ place_extra)))

let test_serve_place_annotation () =
  let h = make_harness ~jobs:1 ~queue_limit:8 () in
  Serve.Server.submit h.server (solve_line ~id:1 ~extra:({|,"v":2|} ^ place_extra) ());
  (* same model, no place: must not share the placed request's cache row *)
  Serve.Server.submit h.server (solve_line ~id:2 ());
  ignore (Serve.Server.await_drain h.server : Engine.Run_report.t);
  (match find_by_id h 1 with
  | None -> Alcotest.fail "placed solve unanswered"
  | Some r -> (
    Alcotest.(check string) "ok" "ok" (outcome_of r);
    match Serve.Json.member "place" r with
    | None -> Alcotest.fail "response carries no place section"
    | Some pl ->
      let num k = Option.bind (Serve.Json.member k pl) Serve.Json.num in
      (match Option.bind (Serve.Json.member "assignment" pl) Serve.Json.arr with
      | Some cells ->
        Alcotest.(check int) "one slot per class" 2 (List.length cells);
        List.iter
          (fun c ->
            match Serve.Json.int_ c with
            | Some g -> Alcotest.(check bool) "group in range" true (g >= 0 && g < 4)
            | None -> Alcotest.fail "non-integer group")
          cells
      | None -> Alcotest.fail "place section has no assignment");
      Alcotest.(check (option int)) "groups echoed" (Some 4)
        (Option.bind (Serve.Json.member "groups" pl) Serve.Json.int_);
      (match num "makespan_s" with
      | Some m -> Alcotest.(check bool) "positive makespan" true (m > 0.)
      | None -> Alcotest.fail "no makespan_s");
      match (num "comm_cost_s", num "total_s", num "makespan_s") with
      | Some c, Some tot, Some m ->
        Alcotest.(check bool) "comm cost non-negative" true (c >= 0.);
        Alcotest.(check (float 1e-9)) "total = makespan + comm" tot (m +. c)
      | _ -> Alcotest.fail "place section incomplete"));
  (match find_by_id h 2 with
  | None -> Alcotest.fail "unplaced solve unanswered"
  | Some r ->
    Alcotest.(check string) "ok" "ok" (outcome_of r);
    Alcotest.(check bool) "no place section without the request" true
      (Serve.Json.member "place" r = None);
    (* distinct dedupe keys: the unplaced twin must have missed *)
    Alcotest.(check bool) "cache not shared across place boundary" true
      (match
         Option.bind (Serve.Json.member "telemetry" r) (fun t ->
             Option.bind (Serve.Json.member "cache_hit" t) Serve.Json.bool_)
       with
      | Some hit -> not hit
      | None -> false));
  match Serve.Json.parse (Serve.Server.stats_json h.server) with
  | Error e -> Alcotest.fail e
  | Ok stats -> (
    match Option.bind (Serve.Json.member "placed" stats) Serve.Json.int_ with
    | Some n -> Alcotest.(check int) "placed counter" 1 n
    | None -> Alcotest.fail "stats missing placed counter")

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode + errors" `Quick test_json_unicode_and_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
          Alcotest.test_case "version negotiation" `Quick test_protocol_version;
          Alcotest.test_case "resolve op" `Quick test_protocol_resolve;
          Alcotest.test_case "policy hint" `Quick test_protocol_policy;
          Alcotest.test_case "place section" `Quick test_protocol_place;
          Alcotest.test_case "place fingerprint" `Quick test_protocol_place_fingerprint;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent solves" `Quick test_serve_concurrent_solves;
          Alcotest.test_case "overload admission" `Quick test_serve_overload;
          Alcotest.test_case "deadline expired in queue" `Quick test_serve_deadline_expired;
          Alcotest.test_case "in-flight dedupe" `Quick test_serve_dedupe;
          Alcotest.test_case "cache hit" `Quick test_serve_cache_hit;
          Alcotest.test_case "policy hint answered" `Quick test_serve_policy_hint;
          Alcotest.test_case "policy per follower" `Quick test_serve_policy_per_follower;
          Alcotest.test_case "drain rejects + joins" `Quick test_serve_drain_rejects_and_joins;
          Alcotest.test_case "drain grace cancels" `Quick test_serve_drain_grace_cancels;
          Alcotest.test_case "protocol error + ping" `Quick test_serve_protocol_error_and_ping;
          Alcotest.test_case "stats latency quantiles" `Quick test_serve_stats_latency;
          Alcotest.test_case "telemetry fields" `Quick test_serve_telemetry_fields;
          Alcotest.test_case "resolve unchanged" `Quick test_serve_resolve_unchanged;
          Alcotest.test_case "resolve re-solves on drift" `Quick test_serve_resolve_resolved;
          Alcotest.test_case "resolve prev mismatch" `Quick test_serve_resolve_prev_mismatch;
          Alcotest.test_case "version compat" `Quick test_serve_version_compat;
          Alcotest.test_case "place annotation" `Quick test_serve_place_annotation;
        ] );
    ]
