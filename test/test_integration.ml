(* Cross-library integration tests: the full HSLB pipeline end-to-end,
   scheduler dominance, seed determinism, and a smoke pass over every
   experiment in quick mode. *)

let null_formatter =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let water_setup ~molecules ~num_nodes =
  let machine = Machine.make ~name:"itest" ~num_nodes ~noise_sigma:0.02 () in
  let molecule = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 4) molecules in
  let plan = Fmo.Task.fmo2_plan (Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd) in
  (machine, plan)

let test_full_pipeline_end_to_end () =
  let machine, plan = water_setup ~molecules:12 ~num_nodes:96 in
  let hp, run =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 8) machine plan ~n_total:96
      Hslb.Fmo_app.default_config
  in
  (* the executed schedule is exactly the planned one *)
  Alcotest.(check int) "monomer tasks assigned"
    (Array.length plan.Fmo.Task.monomers)
    (Array.length hp.Hslb.Fmo_app.monomer_assignment);
  (* prediction quality: within 20% end to end *)
  let rel =
    Float.abs (hp.Hslb.Fmo_app.predicted_total -. run.Fmo.Fmo_run.total_time)
    /. run.Fmo.Fmo_run.total_time
  in
  if rel > 0.2 then Alcotest.failf "prediction off by %.1f%%" (100. *. rel);
  (* node budgets respected in both phases *)
  Alcotest.(check bool) "monomer partition within budget" true
    (Gddi.Group.total_nodes hp.Hslb.Fmo_app.partition <= 96);
  Alcotest.(check bool) "dimer partition within budget" true
    (Gddi.Group.total_nodes hp.Hslb.Fmo_app.dimer_partition <= 96)

let test_hslb_dominates_at_scale () =
  let machine, plan = water_setup ~molecules:16 ~num_nodes:1024 in
  let dyn = Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 3) machine plan ~n_total:1024 () in
  let _, hslb =
    Hslb.Fmo_app.run_hslb ~rng:(Numerics.Rng.create 3) machine plan ~n_total:1024
      Hslb.Fmo_app.default_config
  in
  Alcotest.(check bool) "HSLB strictly better at scale" true
    (hslb.Fmo.Fmo_run.total_time < dyn.Fmo.Fmo_run.total_time)

let test_determinism_across_runs () =
  let machine, plan = water_setup ~molecules:8 ~num_nodes:64 in
  let run1 =
    Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 11) machine plan ~n_total:64 ()
  in
  let run2 =
    Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 11) machine plan ~n_total:64 ()
  in
  Alcotest.(check (float 1e-12)) "identical totals" run1.Fmo.Fmo_run.total_time
    run2.Fmo.Fmo_run.total_time;
  let run3 =
    Hslb.Fmo_app.run_dynamic ~rng:(Numerics.Rng.create 12) machine plan ~n_total:64 ()
  in
  Alcotest.(check bool) "different seed differs" true
    (run3.Fmo.Fmo_run.total_time <> run1.Fmo.Fmo_run.total_time)

let test_layout_pipeline_end_to_end () =
  (* benchmark -> fit -> layout solve -> simulate, all synthetic CESM *)
  let rng = Numerics.Rng.create 21 in
  let classes = Layouts.Cesm_data.benchmark_classes ~rng Layouts.Cesm_data.Deg1 in
  let fits =
    Hslb.Classes.gather_and_fit ~rng
      ~sizes:(Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max:1024 ~points:5)
      ~reps:1 classes
  in
  let comp name =
    Layouts.Component.of_fit ~name
      (List.find
         (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
         fits)
        .Hslb.Classes.fit
  in
  let inputs =
    { Layouts.Layout_model.ice = comp "ice"; lnd = comp "lnd"; atm = comp "atm"; ocn = comp "ocn" }
  in
  let config = Layouts.Layout_model.default_config ~n_total:256 in
  let alloc =
    match Layouts.Layout_model.solve Layouts.Layout_model.Hybrid config inputs with
    | Ok a -> a
    | Error st ->
      Alcotest.failf "layout solve failed: %s" (Minlp.Solution.status_to_string st)
  in
  (* simulate the allocation and compare with the prediction *)
  let sim_rng = Numerics.Rng.create 22 in
  let actual w =
    Layouts.Cesm_data.simulate_component ~rng:sim_rng Layouts.Cesm_data.Deg1 w
      ~nodes:(List.assoc w alloc.Layouts.Layout_model.nodes)
  in
  let actual_total =
    Layouts.Layout_model.layout_total Layouts.Layout_model.Hybrid ~ice:(actual "ice")
      ~lnd:(actual "lnd") ~atm:(actual "atm") ~ocn:(actual "ocn")
  in
  let rel = Float.abs (actual_total -. alloc.Layouts.Layout_model.total) /. actual_total in
  if rel > 0.2 then Alcotest.failf "layout prediction off by %.1f%%" (100. *. rel)

let test_all_experiments_quick_smoke () =
  (* every registered experiment must complete in quick mode *)
  List.iter
    (fun e -> e.Experiments.Registry.run ~quick:true null_formatter)
    Experiments.Registry.all

let test_registry_lookup () =
  Alcotest.(check string) "by prefix" "E4_scaling" (Experiments.Registry.find "E4").Experiments.Registry.id;
  Alcotest.(check string) "by full id" "E8_cesm_table3"
    (Experiments.Registry.find "E8_cesm_table3").Experiments.Registry.id;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Experiments.Registry.find "E99"))

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "full pipeline" `Quick test_full_pipeline_end_to_end;
          Alcotest.test_case "dominates at scale" `Quick test_hslb_dominates_at_scale;
          Alcotest.test_case "deterministic" `Quick test_determinism_across_runs;
          Alcotest.test_case "layout pipeline" `Quick test_layout_pipeline_end_to_end;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
          Alcotest.test_case "all experiments quick" `Slow test_all_experiments_quick_smoke;
        ] );
    ]
