(* Tests for the MINLP toolkit: expressions, problems, MILP B&B,
   NLP-based B&B and the LP/NLP-based (outer approximation) solver. *)

open Minlp

let check_float ?(eps = 1e-5) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let check_status msg expected (actual : Solution.status) =
  if expected <> actual then
    Alcotest.failf "%s: expected %s, got %s" msg
      (Solution.status_to_string expected)
      (Solution.status_to_string actual)

(* ---------- Expr ---------- *)

let test_expr_eval () =
  (* a/n^c + b n + d — the HSLB performance function *)
  let open Expr in
  let n = var 0 in
  let e = (const 100. / pow n 0.9) + (const 0.01 * n) + const 5. in
  let v = eval e [| 16. |] in
  check_float "perf fn" ((100. /. (16. ** 0.9)) +. 0.16 +. 5.) v

let test_expr_diff () =
  let open Expr in
  let e = pow (var 0) 3. + (const 2. * var 0 * var 1) in
  let dx = diff e 0 and dy = diff e 1 in
  check_float "d/dx" ((3. *. 4.) +. (2. *. 5.)) (eval dx [| 2.; 5. |]);
  check_float "d/dy" 4. (eval dy [| 2.; 5. |])

let test_expr_diff_div_log_exp () =
  let open Expr in
  let e = log_ (var 0) + exp_ (var 0) + (const 1. / var 0) in
  let d = diff e 0 in
  let x = 1.7 in
  check_float ~eps:1e-9 "derivative" ((1. /. x) +. exp x -. (1. /. (x *. x))) (eval d [| x |])

let test_expr_simplify () =
  let open Expr in
  Alcotest.(check bool) "x*0 = 0" true (simplify (var 0 * const 0.) = const 0.);
  Alcotest.(check bool) "x+0 = x" true (simplify (var 0 + const 0.) = var 0);
  Alcotest.(check bool) "x^1 = x" true (pow (var 0) 1. = var 0);
  Alcotest.(check bool) "const fold" true (simplify (const 2. * const 3.) = const 6.)

let test_expr_linear () =
  let open Expr in
  let e = (const 2. * var 0) + (const (-3.) * var 2) + const 7. in
  Alcotest.(check bool) "is_linear" true (is_linear e);
  let coeffs, k = linear_parts e in
  Alcotest.(check bool) "coeffs" true (coeffs = [ (0, 2.); (2, -3.) ]);
  check_float "const" 7. k;
  Alcotest.(check bool) "nonlinear detected" false (is_linear (pow (var 0) 2.))

let test_expr_vars () =
  let open Expr in
  let e = (var 3 * var 1) + pow (var 3) 2. in
  Alcotest.(check (list int)) "vars" [ 1; 3 ] (vars e);
  Alcotest.(check int) "max_var" 3 (max_var e);
  Alcotest.(check int) "const max_var" (-1) (max_var (const 4.))

let test_expr_gradient_matches_numeric () =
  let open Expr in
  let e = (const 50. / pow (var 0) 1.1) + (const 0.2 * var 1) + (var 0 * var 1) in
  let x = [| 3.; 7. |] in
  let g = gradient e x in
  let gn = Numerics.Num_diff.gradient (fun v -> eval e v) x in
  Array.iteri (fun i gi -> check_float ~eps:1e-4 (Printf.sprintf "g.(%d)" i) gn.(i) gi) g

let test_expr_linearize () =
  let open Expr in
  let e = pow (var 0) 2. in
  let v, g = linearize e [| 3. |] in
  check_float "value" 9. v;
  check_float "grad" 6. g.(0)

(* random expression generator over strictly positive points, avoiding
   domain errors: +, *, /(by positive), pow with positive base *)
let prop_diff_matches_numeric =
  QCheck.Test.make ~name:"symbolic diff matches numeric diff" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let rec gen depth =
        if depth = 0 then
          if Numerics.Rng.bool rng then Expr.var (Numerics.Rng.int rng 2)
          else Expr.const (Numerics.Rng.uniform rng ~lo:0.5 ~hi:3.)
        else
          match Numerics.Rng.int rng 5 with
          | 0 -> Expr.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Expr.mul (gen (depth - 1)) (gen (depth - 1))
          | 2 -> Expr.pow (gen (depth - 1)) (Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.)
          | 3 -> Expr.div (gen (depth - 1)) (Expr.const (Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.))
          | _ -> Expr.log_ (Expr.add [ gen (depth - 1); Expr.const 2. ])
      in
      let e = gen 3 in
      let x = [| Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.; Numerics.Rng.uniform rng ~lo:0.5 ~hi:2. |] in
      let g = Expr.gradient e x in
      let gn = Numerics.Num_diff.gradient (fun v -> Expr.eval e v) x in
      let ok = ref true in
      Array.iteri
        (fun i gi ->
          let scale = 1. +. Float.abs gn.(i) in
          if Float.abs (gi -. gn.(i)) > 1e-3 *. scale then ok := false)
        g;
      !ok)

(* ---------- closure-compiled kernels ---------- *)

(* random expression over [nv] variables, mixing every constructor the
   compiler specializes (linear sums, scaling-law leaves c·x^p, nested
   arithmetic, exp/log over safe arguments) *)
let gen_expr rng nv depth0 =
  let rec gen depth =
    if depth = 0 then
      match Numerics.Rng.int rng 3 with
      | 0 -> Expr.var (Numerics.Rng.int rng nv)
      | 1 -> Expr.const (Numerics.Rng.uniform rng ~lo:(-3.) ~hi:3.)
      | _ ->
        (* a scaling-law leaf, the fused fast path of the compiler *)
        Expr.mul
          (Expr.const (Numerics.Rng.uniform rng ~lo:0.5 ~hi:5.))
          (Expr.pow (Expr.var (Numerics.Rng.int rng nv)) (Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.))
    else
      match Numerics.Rng.int rng 8 with
      | 0 ->
        Expr.add (List.init (1 + Numerics.Rng.int rng 4) (fun _ -> gen (depth - 1)))
      | 1 ->
        (* a plain linear combination, the other fast path *)
        Expr.linear
          (List.init (1 + Numerics.Rng.int rng nv) (fun _ ->
               (Numerics.Rng.int rng nv, Numerics.Rng.uniform rng ~lo:(-4.) ~hi:4.)))
      | 2 -> Expr.mul (gen (depth - 1)) (gen (depth - 1))
      | 3 -> Expr.neg (gen (depth - 1))
      | 4 -> Expr.div (gen (depth - 1)) (Expr.const (Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.))
      | 5 -> Expr.pow (Expr.add [ gen (depth - 1); Expr.const 4. ]) (Numerics.Rng.uniform rng ~lo:0.5 ~hi:2.)
      | 6 -> Expr.exp_ (Expr.div (gen (depth - 1)) (Expr.const 10.))
      | _ -> Expr.log_ (Expr.add [ Expr.pow (gen (depth - 1)) 2.; Expr.const 2. ])
  in
  gen depth0

let bits = Int64.bits_of_float

(* bit-equality that also identifies NaN with NaN regardless of payload:
   both sides must compute the *same* operations, but a NaN produced by
   e.g. (-inf + inf) compares unequal to itself *)
let same_float a b = bits a = bits b || (Float.is_nan a && Float.is_nan b)

let prop_compiled_matches_interp =
  QCheck.Test.make ~name:"closure-compiled eval/grad match the interpreter bit-for-bit"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let nv = 1 + Numerics.Rng.int rng 5 in
      let e = gen_expr rng nv (1 + Numerics.Rng.int rng 3) in
      let x = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:(-2.) ~hi:2.) in
      let p = Expr.Compiled.compile e in
      if Expr.Compiled.arity p > nv then
        QCheck.Test.fail_reportf "arity %d exceeds variable count %d" (Expr.Compiled.arity p) nv;
      let v_interp = Expr.eval e x in
      let v_comp = Expr.Compiled.eval p x in
      let v_unsafe = Expr.Compiled.unsafe_fn p x in
      if not (same_float v_interp v_comp) then
        QCheck.Test.fail_reportf "eval: interp %.17g, compiled %.17g on %s" v_interp v_comp
          (Expr.to_string e);
      if not (same_float v_comp v_unsafe) then
        QCheck.Test.fail_reportf "unsafe_fn diverges from eval: %.17g vs %.17g" v_comp v_unsafe;
      (* gradients: compiled grad_into vs the symbolic compile_gradient *)
      let g_ref = Expr.compile_gradient e x in
      let g = Expr.Compiled.compile_gradient e in
      let out = Array.make nv nan in
      Expr.Compiled.grad_into g x out;
      Array.iteri
        (fun j r ->
          if not (same_float r out.(j)) then
            QCheck.Test.fail_reportf "grad_into.(%d): ref %.17g, compiled %.17g on %s" j r
              out.(j) (Expr.to_string e))
        g_ref;
      (* grad_acc: acc.(j) <- (w ·. g_j) +. acc.(j), untouched elsewhere *)
      let w = Numerics.Rng.uniform rng ~lo:(-2.) ~hi:2. in
      let acc0 = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:(-1.) ~hi:1.) in
      let acc = Array.copy acc0 in
      Expr.Compiled.grad_acc g x w acc;
      let occurring = Expr.vars e in
      Array.iteri
        (fun j a ->
          let expect =
            if List.mem j occurring then (w *. g_ref.(j)) +. acc0.(j) else acc0.(j)
          in
          if not (same_float expect a) then
            QCheck.Test.fail_reportf "grad_acc.(%d): expected %.17g, got %.17g" j expect a)
        acc;
      true)

let test_compiled_arity_guard () =
  let e = Expr.(add [ var 0; var 3 ]) in
  let p = Expr.Compiled.compile e in
  Alcotest.(check int) "arity" 4 (Expr.Compiled.arity p);
  check_float "eval at exact arity" 7. (Expr.Compiled.eval p [| 3.; 0.; 0.; 4. |]);
  Alcotest.(check bool) "short point rejected" true
    (try
       ignore (Expr.Compiled.eval p [| 1.; 2. |]);
       false
     with Invalid_argument _ -> true)

(* ---------- Problem ---------- *)

let test_builder_basic () =
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~name:"x" ~lo:0. ~hi:10. Problem.Integer in
  let y = Problem.Builder.add_var b ~name:"y" Problem.Continuous in
  Problem.Builder.set_objective b Expr.(var x + var y);
  Problem.Builder.add_constr b Expr.(var x + var y) Lp.Lp_problem.Ge 2.;
  let p = Problem.Builder.build b in
  Alcotest.(check int) "num_vars" 2 p.Problem.num_vars;
  Alcotest.(check bool) "kinds" true (p.Problem.kinds = [| Problem.Integer; Problem.Continuous |])

let test_builder_rejects_nonlinear_eq () =
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b Problem.Continuous in
  Problem.Builder.add_constr b Expr.(pow (var x) 2.) Lp.Lp_problem.Eq 4.;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Problem.Builder.build b);
       false
     with Invalid_argument _ -> true)

let test_normalize_epigraph () =
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:10. Problem.Continuous in
  Problem.Builder.set_objective b Expr.(pow (var x) 2.);
  let p = Problem.Builder.build b in
  let p', k = Problem.normalize p in
  Alcotest.(check int) "orig dim" 1 k;
  Alcotest.(check int) "new dim" 2 p'.Problem.num_vars;
  Alcotest.(check bool) "linear obj" true (Expr.is_linear p'.Problem.objective)

let test_integrality_helpers () =
  let b = Problem.Builder.create () in
  let _ = Problem.Builder.add_var b Problem.Integer in
  let _ = Problem.Builder.add_var b Problem.Continuous in
  Problem.Builder.set_objective b (Expr.var 0);
  let p = Problem.Builder.build b in
  Alcotest.(check bool) "integral" true (Problem.is_integral p [| 3.; 0.5 |]);
  Alcotest.(check bool) "fractional" false (Problem.is_integral p [| 3.4; 0.5 |]);
  Alcotest.(check (option int)) "most fractional" (Some 0)
    (Problem.most_fractional p [| 3.4; 0.5 |]);
  Alcotest.(check (array (float 1e-12))) "round" [| 3.; 0.5 |]
    (Problem.round_integral p [| 3.2; 0.5 |])

let test_violated_sos1 () =
  let b = Problem.Builder.create () in
  let z0 = Problem.Builder.add_var b Problem.Binary in
  let z1 = Problem.Builder.add_var b Problem.Binary in
  Problem.Builder.set_objective b (Expr.var z0);
  Problem.Builder.add_sos1 b [ (z0, 1.); (z1, 2.) ];
  let p = Problem.Builder.build b in
  Alcotest.(check bool) "violated" true (Problem.violated_sos1 p [| 0.5; 0.5 |] <> None);
  Alcotest.(check bool) "ok one" true (Problem.violated_sos1 p [| 1.; 0. |] = None);
  Alcotest.(check bool) "ok zero" true (Problem.violated_sos1 p [| 0.; 0. |] = None)

(* ---------- Presolve ---------- *)

let test_presolve_tightens_budget () =
  (* x + y <= 10, x,y >= 2 -> both upper bounds tighten to 8 *)
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:2. ~hi:100. Problem.Integer in
  let y = Problem.Builder.add_var b ~lo:2. ~hi:100. Problem.Integer in
  Problem.Builder.set_objective b (Expr.var x);
  Problem.Builder.add_constr b (Expr.linear [ (x, 1.); (y, 1.) ]) Lp.Lp_problem.Le 10.;
  let r = Presolve.tighten (Problem.Builder.build b) in
  Alcotest.(check bool) "not infeasible" false r.Presolve.infeasible;
  Alcotest.(check bool) "tightened" true (r.Presolve.tightened >= 2);
  check_float "x hi" 8. r.Presolve.problem.Problem.hi.(0);
  check_float "y hi" 8. r.Presolve.problem.Problem.hi.(1)

let test_presolve_detects_infeasible () =
  (* x >= 5 via row but hi = 3 *)
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:3. Problem.Integer in
  Problem.Builder.set_objective b (Expr.var x);
  Problem.Builder.add_constr b (Expr.linear [ (x, 1.) ]) Lp.Lp_problem.Ge 5.;
  let r = Presolve.tighten (Problem.Builder.build b) in
  Alcotest.(check bool) "infeasible" true r.Presolve.infeasible

let test_presolve_integer_rounding () =
  (* 2x <= 7 -> x <= 3 for integer x (3.5 floored) *)
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:100. Problem.Integer in
  Problem.Builder.set_objective b (Expr.var x);
  Problem.Builder.add_constr b (Expr.linear [ (x, 2.) ]) Lp.Lp_problem.Le 7.;
  let r = Presolve.tighten (Problem.Builder.build b) in
  check_float "floored" 3. r.Presolve.problem.Problem.hi.(0)

let test_presolve_equality_propagates_both_ways () =
  (* x + y = 6, x in [0,10], y in [0,2] -> x in [4,6] *)
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:10. Problem.Continuous in
  let y = Problem.Builder.add_var b ~lo:0. ~hi:2. Problem.Continuous in
  Problem.Builder.set_objective b (Expr.var x);
  Problem.Builder.add_constr b (Expr.linear [ (x, 1.); (y, 1.) ]) Lp.Lp_problem.Eq 6.;
  let r = Presolve.tighten (Problem.Builder.build b) in
  check_float "x lo" 4. r.Presolve.problem.Problem.lo.(0);
  check_float "x hi" 6. r.Presolve.problem.Problem.hi.(0)

let test_presolve_leaves_infinite_activities_alone () =
  (* a free variable in the row poisons the activity; no tightening *)
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b Problem.Continuous in
  let y = Problem.Builder.add_var b ~lo:0. ~hi:5. Problem.Continuous in
  Problem.Builder.set_objective b (Expr.var y);
  Problem.Builder.add_constr b (Expr.linear [ (x, 1.); (y, 1.) ]) Lp.Lp_problem.Le 10.;
  let r = Presolve.tighten (Problem.Builder.build b) in
  check_float "y hi unchanged" 5. r.Presolve.problem.Problem.hi.(1)

(* ---------- MILP ---------- *)

let knapsack_problem () =
  (* max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a=1,c=1 (17)
     vs b=1,c=1 (20): 4+2=6 ok -> optimum 20 *)
  let b = Problem.Builder.create ~minimize:false () in
  let va = Problem.Builder.add_var b ~name:"a" Problem.Binary in
  let vb = Problem.Builder.add_var b ~name:"b" Problem.Binary in
  let vc = Problem.Builder.add_var b ~name:"c" Problem.Binary in
  Problem.Builder.set_objective b
    (Expr.linear [ (va, 10.); (vb, 13.); (vc, 7.) ]);
  Problem.Builder.add_constr b
    (Expr.linear [ (va, 3.); (vb, 4.); (vc, 2.) ])
    Lp.Lp_problem.Le 6.;
  Problem.Builder.build b

let test_milp_knapsack () =
  let s = Milp.run (knapsack_problem ()) in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float "obj" 20. s.Solution.obj;
  check_float "b chosen" 1. s.Solution.x.(1);
  check_float "c chosen" 1. s.Solution.x.(2)

let test_milp_integer_general () =
  (* min 2x + 3y st x + y >= 5.5, x,y int >= 0 -> x=6,y=0? obj 12; or x=5,y=1 -> 13. opt 11? x+y>=5.5 -> x+y>=6 integral. 2x+3y min with x+y>=6: all x -> x=6 obj 12.  *)
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b Problem.Integer in
  let y = Problem.Builder.add_var b Problem.Integer in
  Problem.Builder.set_objective b (Expr.linear [ (x, 2.); (y, 3.) ]);
  Problem.Builder.add_constr b (Expr.linear [ (x, 1.); (y, 1.) ]) Lp.Lp_problem.Ge 5.5;
  let s = Milp.run (Problem.Builder.build b) in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float "obj" 12. s.Solution.obj

let test_milp_infeasible () =
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:1. Problem.Integer in
  Problem.Builder.set_objective b (Expr.var x);
  Problem.Builder.add_constr b (Expr.linear [ (x, 2.) ]) Lp.Lp_problem.Eq 1.;
  let s = Milp.run (Problem.Builder.build b) in
  check_status "status" Solution.Infeasible s.Solution.status

let test_milp_sos1_selection () =
  (* pick exactly one allocation from {2,4,8,16}; cost 100/alloc; budget alloc <= 10
     -> best is 8 with cost 12.5 *)
  let b = Problem.Builder.create () in
  let opts = [| 2.; 4.; 8.; 16. |] in
  let zs = Array.map (fun _ -> Problem.Builder.add_var b Problem.Binary) opts in
  let n = Problem.Builder.add_var b ~name:"n" ~lo:0. ~hi:1e6 Problem.Continuous in
  Problem.Builder.set_objective b
    (Expr.linear (Array.to_list (Array.mapi (fun i z -> (z, 100. /. opts.(i))) zs)));
  Problem.Builder.add_constr b
    (Expr.linear (Array.to_list (Array.map (fun z -> (z, 1.)) zs)))
    Lp.Lp_problem.Eq 1.;
  Problem.Builder.add_constr b
    (Expr.add
       (Expr.var n :: Array.to_list (Array.mapi (fun i z -> Expr.scale (-.opts.(i)) (Expr.var z)) zs)))
    Lp.Lp_problem.Eq 0.;
  Problem.Builder.add_constr b (Expr.var n) Lp.Lp_problem.Le 10.;
  Problem.Builder.add_sos1 b (Array.to_list (Array.mapi (fun i z -> (z, opts.(i))) zs));
  let s = Milp.run (Problem.Builder.build b) in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float "obj" 12.5 s.Solution.obj;
  check_float "n" 8. s.Solution.x.(Array.length opts)

let test_milp_sos_branching_off_still_correct () =
  let p = knapsack_problem () in
  let options = { Milp.default_options with branch_sos_first = false } in
  let s = Milp.run ~options p in
  check_float "same optimum" 20. s.Solution.obj

let test_milp_branching_rules_agree () =
  let b = Problem.Builder.create () in
  let xs = List.init 6 (fun _ -> Problem.Builder.add_var b ~lo:0. ~hi:7. Problem.Integer) in
  Problem.Builder.set_objective b
    (Expr.linear (List.mapi (fun i x -> (x, float_of_int (i + 1))) xs));
  Problem.Builder.add_constr b
    (Expr.linear (List.map (fun x -> (x, 1.)) xs))
    Lp.Lp_problem.Ge 10.5;
  Problem.Builder.add_constr b
    (Expr.linear (List.mapi (fun i x -> (x, float_of_int ((i mod 3) + 1))) xs))
    Lp.Lp_problem.Ge 7.5;
  let p = Problem.Builder.build b in
  let solve rule = Milp.run ~options:{ Milp.default_options with branching = rule } p in
  let a = solve Milp.Most_fractional and c = solve Milp.Pseudocost in
  check_status "mf optimal" Solution.Optimal a.Solution.status;
  check_status "pc optimal" Solution.Optimal c.Solution.status;
  check_float "same optimum" a.Solution.obj c.Solution.obj

let test_milp_depth_first () =
  let options = { Milp.default_options with depth_first = true } in
  let s = Milp.run ~options (knapsack_problem ()) in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float "obj" 20. s.Solution.obj

(* brute force comparison on random binary problems *)
let prop_milp_matches_enumeration =
  QCheck.Test.make ~name:"milp matches brute-force on binary problems" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let n = 2 + Numerics.Rng.int rng 4 in
      let m = 1 + Numerics.Rng.int rng 3 in
      let c = Array.init n (fun _ -> Numerics.Rng.uniform rng ~lo:(-5.) ~hi:5.) in
      let rows =
        Array.init m (fun _ ->
            let coeffs = List.init n (fun j -> (j, Numerics.Rng.uniform rng ~lo:(-2.) ~hi:3.)) in
            let rhs = Numerics.Rng.uniform rng ~lo:0. ~hi:(2. *. float_of_int n) in
            (coeffs, rhs))
      in
      let b = Problem.Builder.create ~minimize:false () in
      let vars = Array.init n (fun _ -> Problem.Builder.add_var b Problem.Binary) in
      Problem.Builder.set_objective b
        (Expr.linear (Array.to_list (Array.mapi (fun j v -> (v, c.(j))) vars)));
      Array.iter
        (fun (coeffs, rhs) -> Problem.Builder.add_constr b (Expr.linear coeffs) Lp.Lp_problem.Le rhs)
        rows;
      let p = Problem.Builder.build b in
      let s = Milp.run p in
      (* brute force *)
      let best = ref neg_infinity in
      for mask = 0 to (1 lsl n) - 1 do
        let x = Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1. else 0.) in
        let ok =
          Array.for_all
            (fun (coeffs, rhs) ->
              List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0. coeffs <= rhs +. 1e-9)
            rows
        in
        if ok then begin
          let v = Array.fold_left ( +. ) 0. (Array.mapi (fun j xv -> c.(j) *. xv) x) in
          if v > !best then best := v
        end
      done;
      if !best = neg_infinity then s.Solution.status = Solution.Infeasible
      else
        s.Solution.status = Solution.Optimal && Float.abs (s.Solution.obj -. !best) < 1e-6)

(* ---------- Model_text (AMPL-like front end) ---------- *)

let allocation_model_text =
  {|
  # two-component allocation, paper-style
  var T >= 0;
  var n_a integer >= 1 <= 64;
  var n_b integer >= 1 <= 64;
  minimize T;
  s.t. time_a: 300 / n_a^0.9 + 0.5 - T <= 0;
  s.t. time_b: 100 / n_b^0.9 + 0.5 - T <= 0;
  s.t. budget: n_a + n_b <= 40;
|}

let test_model_text_parse_and_solve () =
  let p = Model_text.parse allocation_model_text in
  Alcotest.(check int) "vars" 3 p.Problem.num_vars;
  let s = Oa.run p in
  check_status "status" Solution.Optimal s.Solution.status;
  (* heavy component gets roughly 3x the light one's nodes *)
  Alcotest.(check bool) "proportional" true (s.Solution.x.(1) > 2. *. s.Solution.x.(2))

let test_model_text_roundtrip () =
  let p = Model_text.parse allocation_model_text in
  let text = Format.asprintf "%a" Model_text.print p in
  let p2 = Model_text.parse text in
  let s1 = Oa.run p and s2 = Oa.run p2 in
  check_float ~eps:1e-9 "same optimum after roundtrip" s1.Solution.obj s2.Solution.obj

let test_model_text_sos1 () =
  let text =
    {|
    var T >= 0;
    var n integer >= 1 <= 32;
    var z1 binary; var z2 binary; var z3 binary;
    minimize T;
    s.t. time: 100 / n - T <= 0;
    s.t. choose: z1 + z2 + z3 = 1;
    s.t. link: n - 4*z1 - 8*z2 - 16*z3 = 0;
    sos1 spots: z1:4 z2:8 z3:16;
  |}
  in
  let p = Model_text.parse text in
  Alcotest.(check int) "one sos set" 1 (List.length p.Problem.sos1);
  let s = Oa.run p in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float ~eps:1e-6 "n = 16" 16. s.Solution.x.(1)

let test_model_text_operators () =
  (* precedence: 2 + 3 * 2^2 = 14; unary minus; parens; exp/log *)
  let text =
    {|
    var x >= 0 <= 10;
    minimize (x - 3)^2 + 2 + 3 * 2^2 - 14 + log(exp(0));
  |}
  in
  let p = Model_text.parse text in
  let s = Oa.run p in
  check_float ~eps:1e-4 "argmin" 3. s.Solution.x.(0);
  check_float ~eps:1e-4 "min value" 0. s.Solution.obj

let test_model_text_errors () =
  let raises text =
    try
      ignore (Model_text.parse text);
      false
    with Model_text.Parse_error _ -> true
  in
  Alcotest.(check bool) "unknown variable" true
    (raises "var x >= 0; minimize y;");
  Alcotest.(check bool) "no objective" true (raises "var x >= 0;");
  Alcotest.(check bool) "no vars" true (raises "minimize 3;");
  Alcotest.(check bool) "bad constraint" true
    (raises "var x >= 0; minimize x; s.t. c: x + 1;");
  Alcotest.(check bool) "nonconstant exponent" true
    (raises "var x >= 1; minimize x^x;");
  Alcotest.(check bool) "duplicate var" true
    (raises "var x >= 0; var x >= 0; minimize x;")

(* ---------- BNB and OA (convex MINLP) ---------- *)

(* min x^2 + y^2 s.t. x + y >= 3.5, x integer -> x = 2, y = 1.5 *)
let convex_mix_problem () =
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:10. Problem.Integer in
  let y = Problem.Builder.add_var b ~lo:0. ~hi:10. Problem.Continuous in
  Problem.Builder.set_objective b Expr.(pow (var x) 2. + pow (var y) 2.);
  Problem.Builder.add_constr b Expr.(var x + var y) Lp.Lp_problem.Ge 3.5;
  Problem.Builder.build b

let test_bnb_convex_mix () =
  let s = Bnb.run (convex_mix_problem ()) in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float ~eps:1e-3 "obj" 6.25 s.Solution.obj;
  check_float ~eps:1e-3 "x" 2. s.Solution.x.(0);
  check_float ~eps:1e-2 "y" 1.5 s.Solution.x.(1)

(* HSLB-shaped model: min T s.t. T >= a_i/n_i + d_i, sum n_i <= N, n_i int *)
let hslb_mini_problem ?(minimize = true) n_total specs =
  ignore minimize;
  let b = Problem.Builder.create () in
  let t = Problem.Builder.add_var b ~name:"T" ~lo:0. ~hi:1e9 Problem.Continuous in
  let ns =
    List.map
      (fun (name, _, _) ->
        Problem.Builder.add_var b ~name ~lo:1. ~hi:(float_of_int n_total) Problem.Integer)
      specs
  in
  Problem.Builder.set_objective b (Expr.var t);
  List.iteri
    (fun i (_, a, d) ->
      let n = List.nth ns i in
      Problem.Builder.add_constr b
        Expr.((const a / var n) + const d - var t)
        Lp.Lp_problem.Le 0.)
    specs;
  Problem.Builder.add_constr b
    (Expr.linear (List.map (fun n -> (n, 1.)) ns))
    Lp.Lp_problem.Le (float_of_int n_total);
  Problem.Builder.build b

let brute_force_hslb n_total specs =
  (* exhaustive over allocations for 2 components *)
  match specs with
  | [ (_, a1, d1); (_, a2, d2) ] ->
    let best = ref infinity in
    for n1 = 1 to n_total - 1 do
      let n2 = n_total - n1 in
      let t = Float.max ((a1 /. float_of_int n1) +. d1) ((a2 /. float_of_int n2) +. d2) in
      if t < !best then best := t
    done;
    !best
  | _ -> invalid_arg "brute_force_hslb"

let test_oa_hslb_mini () =
  let specs = [ ("n1", 100., 1.); ("n2", 300., 0.5) ] in
  let p = hslb_mini_problem 20 specs in
  let s = Oa.run p in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float ~eps:1e-4 "matches brute force" (brute_force_hslb 20 specs) s.Solution.obj

let test_bnb_hslb_mini () =
  let specs = [ ("n1", 100., 1.); ("n2", 300., 0.5) ] in
  let p = hslb_mini_problem 20 specs in
  let s = Bnb.run p in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float ~eps:1e-3 "matches brute force" (brute_force_hslb 20 specs) s.Solution.obj

let test_oa_multi_equals_oa () =
  let specs = [ ("n1", 180., 1.5); ("n2", 90., 0.7) ] in
  let p = hslb_mini_problem 24 specs in
  let single = Oa.run p in
  let multi = Oa_multi.run p in
  check_status "single" Solution.Optimal single.Solution.status;
  check_status "multi" Solution.Optimal multi.Oa_multi.solution.Solution.status;
  check_float ~eps:1e-4 "same optimum" single.Solution.obj
    multi.Oa_multi.solution.Solution.obj;
  Alcotest.(check bool) "few alternations" true (multi.Oa_multi.iterations <= 30)

let test_oa_multi_pure_milp () =
  let m = Oa_multi.run (knapsack_problem ()) in
  check_status "status" Solution.Optimal m.Oa_multi.solution.Solution.status;
  check_float "obj" 20. m.Oa_multi.solution.Solution.obj

let test_oa_equals_bnb () =
  let specs = [ ("n1", 250., 2.); ("n2", 80., 1.); ("n3", 40., 0.2) ] in
  let p = hslb_mini_problem 30 specs in
  let s1 = Oa.run p in
  let s2 = Bnb.run p in
  check_status "oa" Solution.Optimal s1.Solution.status;
  check_status "bnb" Solution.Optimal s2.Solution.status;
  check_float ~eps:1e-3 "same optimum" s2.Solution.obj s1.Solution.obj

let test_oa_nonlinear_objective () =
  (* min (x - 2.3)^2, x integer -> x = 2 *)
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:10. Problem.Integer in
  Problem.Builder.set_objective b Expr.(pow (var x - const 2.3) 2.);
  let p = Problem.Builder.build b in
  let s = Oa.run p in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float ~eps:1e-4 "x" 2. s.Solution.x.(0);
  Alcotest.(check int) "x in original space" 1 (Array.length s.Solution.x)

let test_oa_infeasible () =
  let b = Problem.Builder.create () in
  let x = Problem.Builder.add_var b ~lo:0. ~hi:5. Problem.Integer in
  Problem.Builder.set_objective b (Expr.var x);
  (* x^2 <= -1 impossible *)
  Problem.Builder.add_constr b Expr.(pow (var x) 2.) Lp.Lp_problem.Le (-1.);
  let s = Oa.run (Problem.Builder.build b) in
  check_status "status" Solution.Infeasible s.Solution.status

let test_oa_pure_milp_fallback () =
  let s = Oa.run (knapsack_problem ()) in
  check_status "status" Solution.Optimal s.Solution.status;
  check_float "obj" 20. s.Solution.obj

let test_oa_with_sos1_allocation () =
  (* ocean-style constraint: n2 restricted to {2,4,8,16} via SOS1 binaries *)
  let b = Problem.Builder.create () in
  let t = Problem.Builder.add_var b ~name:"T" ~lo:0. ~hi:1e9 Problem.Continuous in
  let n1 = Problem.Builder.add_var b ~name:"n1" ~lo:1. ~hi:32. Problem.Integer in
  let n2 = Problem.Builder.add_var b ~name:"n2" ~lo:1. ~hi:32. Problem.Continuous in
  let opts = [| 2.; 4.; 8.; 16. |] in
  let zs = Array.map (fun _ -> Problem.Builder.add_var b Problem.Binary) opts in
  Problem.Builder.set_objective b (Expr.var t);
  Problem.Builder.add_constr b Expr.((const 100. / var n1) - var t) Lp.Lp_problem.Le 0.;
  Problem.Builder.add_constr b Expr.((const 200. / var n2) - var t) Lp.Lp_problem.Le 0.;
  Problem.Builder.add_constr b (Expr.linear [ (n1, 1.); (n2, 1.) ]) Lp.Lp_problem.Le 24.;
  Problem.Builder.add_constr b
    (Expr.linear (Array.to_list (Array.map (fun z -> (z, 1.)) zs)))
    Lp.Lp_problem.Eq 1.;
  Problem.Builder.add_constr b
    (Expr.add
       (Expr.var n2 :: Array.to_list (Array.mapi (fun i z -> Expr.scale (-.opts.(i)) (Expr.var z)) zs)))
    Lp.Lp_problem.Eq 0.;
  Problem.Builder.add_sos1 b (Array.to_list (Array.mapi (fun i z -> (z, opts.(i))) zs));
  let s = Oa.run (Problem.Builder.build b) in
  check_status "status" Solution.Optimal s.Solution.status;
  (* brute force over n2 ∈ {2,4,8,16}, n1 = 24 - n2 (integer best) *)
  let best = ref infinity in
  Array.iter
    (fun n2v ->
      let n1v = 24. -. n2v in
      if n1v >= 1. then begin
        let t = Float.max (100. /. n1v) (200. /. n2v) in
        if t < !best then best := t
      end)
    opts;
  check_float ~eps:1e-4 "optimal" !best s.Solution.obj

(* random 2-component HSLB allocations: OA matches brute force *)
let prop_oa_matches_brute_force =
  QCheck.Test.make ~name:"OA matches brute force on allocation MINLPs" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let n_total = 6 + Numerics.Rng.int rng 14 in
      let specs =
        [
          ("n1", Numerics.Rng.uniform rng ~lo:20. ~hi:400., Numerics.Rng.uniform rng ~lo:0. ~hi:3.);
          ("n2", Numerics.Rng.uniform rng ~lo:20. ~hi:400., Numerics.Rng.uniform rng ~lo:0. ~hi:3.);
        ]
      in
      let p = hslb_mini_problem n_total specs in
      let s = Oa.run p in
      s.Solution.status = Solution.Optimal
      && Float.abs (s.Solution.obj -. brute_force_hslb n_total specs)
         <= 1e-3 *. (1. +. Float.abs s.Solution.obj))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_diff_matches_numeric;
        prop_compiled_matches_interp;
        prop_milp_matches_enumeration;
        prop_oa_matches_brute_force;
      ]
  in
  Alcotest.run "minlp"
    [
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "diff" `Quick test_expr_diff;
          Alcotest.test_case "diff div/log/exp" `Quick test_expr_diff_div_log_exp;
          Alcotest.test_case "simplify" `Quick test_expr_simplify;
          Alcotest.test_case "linear parts" `Quick test_expr_linear;
          Alcotest.test_case "vars" `Quick test_expr_vars;
          Alcotest.test_case "gradient vs numeric" `Quick test_expr_gradient_matches_numeric;
          Alcotest.test_case "linearize" `Quick test_expr_linearize;
          Alcotest.test_case "compiled arity guard" `Quick test_compiled_arity_guard;
        ] );
      ( "problem",
        [
          Alcotest.test_case "builder" `Quick test_builder_basic;
          Alcotest.test_case "rejects nonlinear eq" `Quick test_builder_rejects_nonlinear_eq;
          Alcotest.test_case "epigraph normalize" `Quick test_normalize_epigraph;
          Alcotest.test_case "integrality helpers" `Quick test_integrality_helpers;
          Alcotest.test_case "violated sos1" `Quick test_violated_sos1;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "tightens budget" `Quick test_presolve_tightens_budget;
          Alcotest.test_case "detects infeasible" `Quick test_presolve_detects_infeasible;
          Alcotest.test_case "integer rounding" `Quick test_presolve_integer_rounding;
          Alcotest.test_case "equality both ways" `Quick
            test_presolve_equality_propagates_both_ways;
          Alcotest.test_case "free var poisons" `Quick
            test_presolve_leaves_infinite_activities_alone;
        ] );
      ( "model_text",
        [
          Alcotest.test_case "parse and solve" `Quick test_model_text_parse_and_solve;
          Alcotest.test_case "roundtrip" `Quick test_model_text_roundtrip;
          Alcotest.test_case "sos1" `Quick test_model_text_sos1;
          Alcotest.test_case "operators" `Quick test_model_text_operators;
          Alcotest.test_case "errors" `Quick test_model_text_errors;
        ] );
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "general integer" `Quick test_milp_integer_general;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "sos1 selection" `Quick test_milp_sos1_selection;
          Alcotest.test_case "sos branching off" `Quick test_milp_sos_branching_off_still_correct;
          Alcotest.test_case "depth first" `Quick test_milp_depth_first;
          Alcotest.test_case "branching rules agree" `Quick test_milp_branching_rules_agree;
        ] );
      ( "convex minlp",
        [
          Alcotest.test_case "bnb convex mix" `Quick test_bnb_convex_mix;
          Alcotest.test_case "oa hslb mini" `Quick test_oa_hslb_mini;
          Alcotest.test_case "bnb hslb mini" `Quick test_bnb_hslb_mini;
          Alcotest.test_case "oa = bnb" `Quick test_oa_equals_bnb;
          Alcotest.test_case "multi-tree oa = oa" `Quick test_oa_multi_equals_oa;
          Alcotest.test_case "multi-tree pure milp" `Quick test_oa_multi_pure_milp;
          Alcotest.test_case "nonlinear objective" `Quick test_oa_nonlinear_objective;
          Alcotest.test_case "infeasible" `Quick test_oa_infeasible;
          Alcotest.test_case "pure milp fallback" `Quick test_oa_pure_milp_fallback;
          Alcotest.test_case "sos1 allocation" `Quick test_oa_with_sos1_allocation;
        ] );
      ("properties", qsuite);
    ]
