(* Arena tests: scenario-generator determinism (same seed →
   byte-identical NDJSON; phase content independent of phase count, the
   two-pass split property), trace round-trip and line-numbered
   diagnostics, balancer determinism and adaptivity, the regret
   matrix's shape and winner rule, and the policy table. *)

open Arena

let gen ?phases ?tasks_per_phase cls seed =
  Scenario.generate ?phases ?tasks_per_phase ~groups:4 ~nodes_per_group:2 cls ~seed

(* ---------- scenario generator ---------- *)

let test_class_strings () =
  List.iter
    (fun c ->
      match Scenario.class_of_string (Scenario.class_to_string c) with
      | Ok c' when c' = c -> ()
      | Ok _ -> Alcotest.failf "round-trip mismatch for %s" (Scenario.class_to_string c)
      | Error e -> Alcotest.fail e)
    Scenario.all_classes;
  match Scenario.class_of_string "warp" with
  | Ok _ -> Alcotest.fail "bogus class accepted"
  | Error e ->
    Alcotest.(check string)
      "diagnostic lists valid names"
      "unknown scenario class \"warp\" (expected steady | bursty | multi-tenant | \
       heavy-tailed | drifting | failure)"
      e

let test_same_seed_identical () =
  List.iter
    (fun cls ->
      let a = Scenario.to_ndjson (gen cls 7) in
      let b = Scenario.to_ndjson (gen cls 7) in
      Alcotest.(check string)
        (Scenario.class_to_string cls ^ " byte-identical") a b)
    Scenario.all_classes

let test_different_seed_differs () =
  let a = Scenario.to_ndjson (gen Scenario.Steady 7) in
  let b = Scenario.to_ndjson (gen Scenario.Steady 8) in
  if a = b then Alcotest.fail "distinct seeds produced identical traces"

let test_ndjson_roundtrip () =
  List.iter
    (fun cls ->
      let sc = gen cls 11 in
      match Scenario.of_ndjson (Scenario.to_ndjson sc) with
      | Error e -> Alcotest.fail e
      | Ok sc' ->
        Alcotest.(check string)
          (Scenario.class_to_string cls ^ " survives round-trip")
          (Scenario.to_ndjson sc) (Scenario.to_ndjson sc');
        Alcotest.(check int) "same task count" (Scenario.num_tasks sc)
          (Scenario.num_tasks sc'))
    Scenario.all_classes

let test_ndjson_diagnostics () =
  let expect_error text expected =
    match Scenario.of_ndjson ~file:"zoo.ndjson" text with
    | Ok _ -> Alcotest.failf "accepted malformed trace (wanted %S)" expected
    | Error e -> Alcotest.(check string) expected expected e
  in
  expect_error "" "zoo.ndjson:1: empty scenario file";
  expect_error {|{"scenario":"arena-v9"}|}
    "zoo.ndjson:1: unsupported scenario format \"arena-v9\" (expected \"arena-v1\")";
  let ok = Scenario.to_ndjson (gen ~phases:1 Scenario.Steady 3) in
  (* corrupt the second line (phase 0): drop its costs field *)
  (match String.split_on_char '\n' ok with
  | header :: _phase :: _ ->
    expect_error
      (header ^ "\n" ^ {|{"phase":0,"gap_s":0,"speed":[1,1,1,1]}|} ^ "\n")
      "zoo.ndjson:2: missing field \"costs\"";
    expect_error
      (header ^ "\n" ^ {|{"phase":5,"gap_s":0,"costs":[1],"speed":[1,1,1,1]}|} ^ "\n")
      "zoo.ndjson:2: expected phase 0, got phase 5";
    expect_error
      (header ^ "\n" ^ {|{"phase":0,"gap_s":0,"costs":[1],"speed":[1,1]}|} ^ "\n")
      "zoo.ndjson:2: field \"speed\": expected 4 entries (one per group), got 2"
  | _ -> Alcotest.fail "generated trace too short");
  (* header declares more phases than the file carries *)
  match String.split_on_char '\n' ok with
  | header :: _ -> expect_error (header ^ "\n") "zoo.ndjson:1: header declares 1 phases but the file has 0 phase lines"
  | [] -> Alcotest.fail "empty generated trace"

(* the E9 two-pass split convention: phase i's stream is split from the
   root before any phase is filled, so its content depends only on
   (seed, i) for phase-independent classes — a 4-phase trace is a
   prefix of an 8-phase one *)
let prop_prefix_stable =
  QCheck.Test.make ~name:"phase streams are prefix-stable across phase counts"
    ~count:50
    QCheck.(pair (int_bound 1000) (int_range 1 6))
    (fun (seed, p) ->
      List.for_all
        (fun cls ->
          let short = gen ~phases:p cls seed in
          let long = gen ~phases:(p + 3) cls seed in
          Array.for_all2
            (fun (a : Scenario.phase) (b : Scenario.phase) ->
              a.Scenario.costs = b.Scenario.costs)
            short.Scenario.phases
            (Array.sub long.Scenario.phases 0 p))
        [ Scenario.Steady; Scenario.Bursty; Scenario.Heavy_tailed ])

let prop_split_independent =
  QCheck.Test.make ~name:"adjacent seeds give uncorrelated phase draws" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let a = gen Scenario.Steady seed and b = gen Scenario.Steady (seed + 1) in
      a.Scenario.phases.(0).Scenario.costs <> b.Scenario.phases.(0).Scenario.costs)

(* ---------- balancers ---------- *)

let test_balancer_determinism () =
  List.iter
    (fun b ->
      let sc = gen Scenario.Drifting 13 in
      let a = Balancer.run sc b and c = Balancer.run sc b in
      Alcotest.(check (float 0.))
        (Balancer.name b ^ " deterministic") a.Balancer.total_makespan
        c.Balancer.total_makespan)
    Balancer.all

let test_balancer_names () =
  List.iter
    (fun b ->
      match Balancer.of_name (Balancer.name b) with
      | Ok b' when b' = b -> ()
      | Ok _ | Error _ -> Alcotest.failf "of_name failed for %s" (Balancer.name b))
    Balancer.all;
  match Balancer.of_name "quantum" with
  | Ok _ -> Alcotest.fail "bogus balancer accepted"
  | Error e ->
    Alcotest.(check string) "diagnostic"
      "unknown balancer \"quantum\" (expected dynamic | static | stealing | hybrid | \
       diffusive)"
      e

let test_hybrid_adapts_on_drift () =
  (* the tentpole claim, in miniature: on drifting group speeds the
     stale static map loses to hybrid periodic rebalance *)
  let sc = Scenario.generate ~groups:8 ~nodes_per_group:4 Scenario.Drifting ~seed:42 in
  let static = Balancer.run sc Balancer.Static_lpt in
  let hybrid = Balancer.run sc (Balancer.Hybrid { interval = 2; start = 1 }) in
  if hybrid.Balancer.total_makespan >= static.Balancer.total_makespan then
    Alcotest.failf "hybrid (%.3f) did not beat static (%.3f) on drifting load"
      hybrid.Balancer.total_makespan static.Balancer.total_makespan

let test_zero_task_phase_handled () =
  (* hand-build a trace with an empty phase: every balancer must cope *)
  let sc = gen Scenario.Steady 5 in
  let phases = Array.copy sc.Scenario.phases in
  phases.(1) <-
    { Scenario.costs = [||]; speed = Array.make 4 1.0; gap_s = 0.5 };
  let sc = { sc with Scenario.phases = phases } in
  List.iter
    (fun b ->
      let o = Balancer.run sc b in
      Alcotest.(check (float 0.))
        (Balancer.name b ^ " empty phase costs nothing") 0.
        o.Balancer.phase_makespans.(1))
    (List.filter (fun b -> b <> Balancer.Hybrid { interval = 2; start = 1 }) Balancer.all);
  (* hybrid still charges its rebalance fee on the empty phase *)
  let o = Balancer.run sc (Balancer.Hybrid { interval = 2; start = 1 }) in
  Alcotest.(check bool) "hybrid empty phase only pays rebalance" true
    (o.Balancer.phase_makespans.(1) < 0.1)

(* ---------- race matrix + policy ---------- *)

let quick_race () =
  Race.run ~phases:4 ~tasks_per_phase:16 ~groups:4 ~nodes_per_group:2 ~seed:42
    [ Scenario.Steady; Scenario.Drifting; Scenario.Failure ]

let test_race_matrix_shape () =
  let race = quick_race () in
  Alcotest.(check int) "one row per class" 3 (List.length race.Race.rows);
  Alcotest.(check (list string))
    "five schedulers"
    [ "dynamic"; "static"; "stealing"; "hybrid"; "diffusive" ]
    race.Race.schedulers;
  List.iter
    (fun (r : Race.row) ->
      Alcotest.(check int)
        (r.Race.scenario ^ " complete row")
        (List.length race.Race.schedulers)
        (List.length r.Race.cells);
      (* dynamic is the regret baseline: exactly zero by construction *)
      let dyn = List.find (fun (c : Race.cell) -> c.Race.scheduler = "dynamic") r.Race.cells in
      Alcotest.(check (float 1e-12)) "dynamic regret 0" 0. dyn.Race.regret_vs_dynamic;
      (* the winner is the argmin of the row *)
      List.iter
        (fun (c : Race.cell) ->
          let w =
            List.find (fun (c : Race.cell) -> c.Race.scheduler = r.Race.winner) r.Race.cells
          in
          if c.Race.regret_vs_dynamic < w.Race.regret_vs_dynamic -. 1e-12 then
            Alcotest.failf "%s: %s (%.4f) beats declared winner %s (%.4f)" r.Race.scenario
              c.Race.scheduler c.Race.regret_vs_dynamic r.Race.winner
              w.Race.regret_vs_dynamic)
        r.Race.cells)
    race.Race.rows

let test_race_json_roundtrip () =
  let race = quick_race () in
  let j = Race.to_json race in
  match Race.of_json j with
  | Error e -> Alcotest.fail e
  | Ok race' ->
    Alcotest.(check string) "round-trip identical" (Serve.Json.to_string j)
      (Serve.Json.to_string (Race.to_json race'))

let test_builtin_policy_matches_default_zoo () =
  (* Policy.builtin is pinned from the default-seed zoo; re-derive it so
     it cannot drift silently when the balancers change *)
  let race = Race.run ~seed:42 Scenario.all_classes in
  let fresh = Policy.to_assoc (Policy.of_race race) in
  List.iter
    (fun (cls, sched) ->
      match List.assoc_opt cls fresh with
      | Some s ->
        Alcotest.(check string)
          ("builtin matches zoo for " ^ Scenario.class_to_string cls)
          s sched
      | None -> Alcotest.failf "class %s missing from zoo" (Scenario.class_to_string cls))
    (Policy.to_assoc Policy.builtin)

let test_policy_from_bench_file () =
  let race = quick_race () in
  let path = Filename.temp_file "arena_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Race.write_bench path race;
      match Policy.of_bench_file path with
      | Error e -> Alcotest.fail e
      | Ok p ->
        List.iter
          (fun (r : Race.row) ->
            Alcotest.(check string)
              (r.Race.scenario ^ " recommendation")
              r.Race.winner
              (Policy.recommend p r.Race.cls))
          race.Race.rows;
        (* classes the loaded matrix did not race fall back to builtin *)
        Alcotest.(check string) "fallback to builtin"
          (Policy.recommend Policy.builtin Scenario.Bursty)
          (Policy.recommend p Scenario.Bursty))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_prefix_stable; prop_split_independent ]
  in
  Alcotest.run "arena"
    [
      ( "scenario",
        [
          Alcotest.test_case "class strings" `Quick test_class_strings;
          Alcotest.test_case "same seed identical" `Quick test_same_seed_identical;
          Alcotest.test_case "different seed differs" `Quick test_different_seed_differs;
          Alcotest.test_case "ndjson round-trip" `Quick test_ndjson_roundtrip;
          Alcotest.test_case "ndjson diagnostics" `Quick test_ndjson_diagnostics;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "deterministic" `Quick test_balancer_determinism;
          Alcotest.test_case "names" `Quick test_balancer_names;
          Alcotest.test_case "hybrid adapts on drift" `Quick test_hybrid_adapts_on_drift;
          Alcotest.test_case "zero-task phase" `Quick test_zero_task_phase_handled;
        ] );
      ( "race",
        [
          Alcotest.test_case "matrix shape" `Quick test_race_matrix_shape;
          Alcotest.test_case "json round-trip" `Quick test_race_json_roundtrip;
          Alcotest.test_case "builtin policy pinned" `Slow
            test_builtin_policy_matches_default_zoo;
          Alcotest.test_case "policy from bench file" `Quick test_policy_from_bench_file;
        ] );
      ("properties", qsuite);
    ]
