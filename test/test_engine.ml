(* Engine subsystem tests: budgets, cancellation, telemetry, run
   reports, solver choice, and the budget/warm-start behavior of the
   MINLP solvers they thread through. *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------- Budget ---------- *)

let test_budget_unlimited () =
  let a = Engine.Budget.arm Engine.Budget.unlimited in
  Engine.Budget.add_nodes a 1_000_000;
  Engine.Budget.add_iters a 1_000_000;
  Alcotest.(check bool) "never stops" true (Engine.Budget.check a = None);
  Alcotest.(check bool) "stopped None-tolerant" true (Engine.Budget.stopped None = None)

let test_budget_node_limit () =
  let a = Engine.Budget.arm (Engine.Budget.make ~max_nodes:3 ()) in
  Engine.Budget.add_nodes a 2;
  Alcotest.(check bool) "under limit" true (Engine.Budget.check a = None);
  Engine.Budget.add_nodes a 1;
  Alcotest.(check bool) "at limit" true
    (Engine.Budget.check a = Some Engine.Budget.Node_limit);
  Alcotest.(check int) "counter" 3 (Engine.Budget.nodes a)

let test_budget_iter_limit () =
  let a = Engine.Budget.arm (Engine.Budget.make ~max_iters:10 ()) in
  Engine.Budget.add_iters a 10;
  Alcotest.(check bool) "iter limit" true
    (Engine.Budget.check a = Some Engine.Budget.Iter_limit)

let test_budget_deadline () =
  let a = Engine.Budget.arm (Engine.Budget.make ~deadline_s:0. ()) in
  Alcotest.(check bool) "expired immediately" true
    (Engine.Budget.check a = Some Engine.Budget.Deadline);
  Alcotest.(check bool) "elapsed nonneg" true (Engine.Budget.elapsed_s a >= 0.)

let test_budget_cancel () =
  let token = Engine.Cancel.create () in
  let a = Engine.Budget.arm (Engine.Budget.make ~cancel:token ()) in
  Alcotest.(check bool) "not yet" true (Engine.Budget.check a = None);
  Engine.Cancel.cancel token;
  Alcotest.(check bool) "cancelled" true
    (Engine.Budget.check a = Some Engine.Budget.Cancelled);
  (* cancellation outranks every other verdict *)
  let b = Engine.Budget.arm (Engine.Budget.make ~deadline_s:0. ~cancel:token ()) in
  Alcotest.(check bool) "cancel wins" true
    (Engine.Budget.check b = Some Engine.Budget.Cancelled)

let test_budget_independent_arms () =
  let spec = Engine.Budget.make ~max_nodes:1 () in
  let a1 = Engine.Budget.arm spec in
  let a2 = Engine.Budget.arm spec in
  Engine.Budget.add_nodes a1 1;
  Alcotest.(check bool) "a1 stopped" true (Engine.Budget.check a1 <> None);
  Alcotest.(check bool) "a2 unaffected" true (Engine.Budget.check a2 = None)

(* ---------- Telemetry ---------- *)

let test_telemetry_counters_and_merge () =
  let t = Engine.Telemetry.create () in
  Engine.Telemetry.bump (Some t) Engine.Telemetry.add_simplex_pivots 5;
  Engine.Telemetry.bump None Engine.Telemetry.add_simplex_pivots 100;
  Alcotest.(check int) "bump some" 5 t.Engine.Telemetry.simplex_pivots;
  Engine.Telemetry.set_warm_start_used (Some t);
  Alcotest.(check bool) "warm flag" true t.Engine.Telemetry.warm_start_used;
  let u = Engine.Telemetry.create () in
  Engine.Telemetry.add_nodes_expanded u 7;
  Engine.Telemetry.merge_into t u;
  Alcotest.(check int) "merged" 7 t.Engine.Telemetry.nodes_expanded;
  Engine.Telemetry.reset t;
  Alcotest.(check int) "reset" 0 t.Engine.Telemetry.simplex_pivots

let test_telemetry_phase_timer () =
  let t = Engine.Telemetry.create () in
  let v = Engine.Telemetry.time (Some t) "phase-a" (fun () -> 42) in
  Alcotest.(check int) "passthrough" 42 v;
  let v2 = Engine.Telemetry.time None "ignored" (fun () -> 1) in
  Alcotest.(check int) "no-tally passthrough" 1 v2;
  (match Engine.Telemetry.phases t with
  | [ ("phase-a", s) ] -> Alcotest.(check bool) "nonneg seconds" true (s >= 0.)
  | l -> Alcotest.failf "unexpected phases (%d entries)" (List.length l));
  (* exceptions still record the phase *)
  (try Engine.Telemetry.time (Some t) "phase-a" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check int) "re-entrant label accumulates" 1
    (List.length (Engine.Telemetry.phases t))

(* ---------- Solver_choice ---------- *)

let test_solver_choice_roundtrip () =
  List.iter
    (fun s ->
      match Engine.Solver_choice.of_string (Engine.Solver_choice.to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    Engine.Solver_choice.all;
  Alcotest.(check bool) "multi alias" true
    (Engine.Solver_choice.of_string "multi" = Ok Engine.Solver_choice.Oa_multi);
  Alcotest.(check bool) "underscore alias" true
    (Engine.Solver_choice.of_string "oa_multi" = Ok Engine.Solver_choice.Oa_multi);
  Alcotest.(check bool) "garbage rejected" true
    (match Engine.Solver_choice.of_string "simplex" with Error _ -> true | Ok _ -> false)

(* ---------- Run_report ---------- *)

let test_run_report_json_and_csv () =
  let t = Engine.Telemetry.create () in
  Engine.Telemetry.add_simplex_pivots t 17;
  ignore (Engine.Telemetry.time (Some t) "master" (fun () -> ()));
  let r =
    Engine.Run_report.make ~solver:"oa" ~status:"optimal" ~objective:1.5 ~wall_s:0.25 t
  in
  let json = Engine.Run_report.to_json r in
  List.iter
    (fun key ->
      if not (String.length json > 0 && contains_substring json key) then
        Alcotest.failf "JSON missing key %s in %s" key json)
    [
      "\"solver\"";
      "\"status\"";
      "\"objective\"";
      "\"simplex_pivots\"";
      "\"warm_start_used\"";
      "\"phases\"";
      "\"master\"";
    ];
  (* bound was omitted -> nan -> null *)
  Alcotest.(check bool) "nan as null" true (contains_substring json "null");
  let header_cols = List.length (String.split_on_char ',' Engine.Run_report.csv_header) in
  let row_cols = List.length (String.split_on_char ',' (Engine.Run_report.to_csv_row r)) in
  Alcotest.(check int) "csv arity" header_cols row_cols;
  let path = Filename.temp_file "hslb_report" ".json" in
  Engine.Run_report.write_json path r;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file written" true (len > 0)

(* ---------- budgets threaded through the solvers ---------- *)

let fitted_of_law ~name ~count law =
  let cls =
    Hslb.Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes)
  in
  List.hd
    (Hslb.Classes.gather_and_fit ~rng:(Numerics.Rng.create 11)
       ~sizes:[ 1; 2; 4; 8; 16; 64; 256 ] ~reps:1 [ cls ])

(* an E4/E6-style workload: several diverse classes with sweet-spot
   restrictions, enough to make the MINLP tree nontrivial *)
let e6_specs ?allowed () =
  List.init 6 (fun i ->
      let law =
        Scaling_law.make
          ~a:(150. +. (170. *. float_of_int i))
          ~b:1e-6
          ~c:(0.78 +. (0.035 *. float_of_int i))
          ~d:(0.3 +. (0.4 *. float_of_int i))
      in
      let fc = fitted_of_law ~name:(Printf.sprintf "k%d" i) ~count:(1 + (i mod 3)) law in
      match allowed with
      | None -> Hslb.Alloc_model.spec_of fc
      | Some vals -> Hslb.Alloc_model.spec_of ~allowed:vals fc)

let test_deadline_returns_incumbent () =
  (* 1 ms wall budget on a workload whose full solve takes far longer:
     the solve must neither raise nor come back empty — the greedy warm
     start guarantees a feasible incumbent *)
  let specs = e6_specs ~allowed:[ 1; 2; 4; 8; 16; 32; 64; 128 ] () in
  let n_total = 512 in
  let budget = Engine.Budget.arm (Engine.Budget.make ~deadline_s:0.001 ()) in
  match Hslb.Alloc_model.solve ~budget ~n_total specs with
  | Error st ->
    Alcotest.failf "expected an incumbent, got %s" (Minlp.Solution.status_to_string st)
  | Ok alloc ->
    (match alloc.Hslb.Alloc_model.status with
    | Minlp.Solution.Budget_exhausted Minlp.Solution.Deadline -> ()
    | st ->
      Alcotest.failf "expected budget-exhausted(deadline), got %s"
        (Minlp.Solution.status_to_string st));
    (* the incumbent is a real allocation: within budget, >= 1 node/task *)
    let used = ref 0 in
    List.iteri
      (fun i (s : Hslb.Alloc_model.spec) ->
        let n = alloc.Hslb.Alloc_model.nodes_per_task.(i) in
        Alcotest.(check bool) "at least one node" true (n >= 1);
        used := !used + (n * s.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.count))
      specs;
    Alcotest.(check bool) "within node budget" true (!used <= n_total);
    Alcotest.(check bool) "finite makespan" true
      (Float.is_finite alloc.Hslb.Alloc_model.predicted_makespan)

let test_cancel_stops_solve () =
  let token = Engine.Cancel.create () in
  Engine.Cancel.cancel token;
  let specs = e6_specs () in
  let budget = Engine.Budget.arm (Engine.Budget.make ~cancel:token ()) in
  match Hslb.Alloc_model.solve ~budget ~n_total:256 specs with
  | Ok alloc -> (
    match alloc.Hslb.Alloc_model.status with
    | Minlp.Solution.Budget_exhausted Minlp.Solution.Cancelled -> ()
    | st ->
      Alcotest.failf "expected budget-exhausted(cancelled), got %s"
        (Minlp.Solution.status_to_string st))
  | Error (Minlp.Solution.Budget_exhausted Minlp.Solution.Cancelled) -> ()
  | Error st ->
    Alcotest.failf "expected cancelled, got %s" (Minlp.Solution.status_to_string st)

let test_node_budget_respected () =
  let specs = e6_specs ~allowed:[ 1; 2; 4; 8; 16; 32 ] () in
  let budget = Engine.Budget.arm (Engine.Budget.make ~max_nodes:5 ()) in
  let tally = Engine.Telemetry.create () in
  (match Hslb.Alloc_model.solve ~budget ~trace:tally ~n_total:256 specs with
  | Ok alloc -> (
    match alloc.Hslb.Alloc_model.status with
    | Minlp.Solution.Budget_exhausted Minlp.Solution.Node_limit
    | Minlp.Solution.Optimal (* tiny trees may finish first *) ->
      ()
    | st -> Alcotest.failf "unexpected status %s" (Minlp.Solution.status_to_string st))
  | Error st -> Alcotest.failf "no incumbent: %s" (Minlp.Solution.status_to_string st));
  Alcotest.(check bool) "few nodes charged" true (Engine.Budget.nodes budget <= 6)

let test_telemetry_counters_nonzero_on_solve () =
  let specs = e6_specs () in
  let tally = Engine.Telemetry.create () in
  (match Hslb.Alloc_model.solve ~trace:tally ~n_total:256 specs with
  | Ok _ -> ()
  | Error st -> Alcotest.failf "solve failed: %s" (Minlp.Solution.status_to_string st));
  Alcotest.(check bool) "lp solves counted" true (tally.Engine.Telemetry.lp_solves > 0);
  Alcotest.(check bool) "pivots counted" true (tally.Engine.Telemetry.simplex_pivots > 0);
  Alcotest.(check bool) "warm start applied" true tally.Engine.Telemetry.warm_start_used;
  Alcotest.(check bool) "master phase timed" true
    (List.mem_assoc "master" (Engine.Telemetry.phases tally))

(* ---------- warm starts ---------- *)

let test_warm_start_cuts_bnb_nodes () =
  (* acceptance criterion: a warm-started B&B expands strictly fewer
     nodes than a cold one on an E4-style allocation instance *)
  let specs = e6_specs () in
  let n_total = 256 in
  let problem, _, lift =
    Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total specs
  in
  let cold_tally = Engine.Telemetry.create () in
  let cold = Minlp.Bnb.run ~tally:cold_tally problem in
  (* warm point: the greedy min-sum allocation, lifted into the full
     variable space of the MINLP *)
  let greedy =
    match Hslb.Alloc_model.solve ~objective:Hslb.Objective.Min_sum ~n_total specs with
    | Ok a -> a
    | Error st -> Alcotest.failf "greedy failed: %s" (Minlp.Solution.status_to_string st)
  in
  let warm_point = lift greedy.Hslb.Alloc_model.nodes_per_task in
  let warm_tally = Engine.Telemetry.create () in
  let warm = Minlp.Bnb.run ~tally:warm_tally ~warm_start:warm_point problem in
  Alcotest.(check bool) "cold optimal" true
    (cold.Minlp.Solution.status = Minlp.Solution.Optimal);
  Alcotest.(check bool) "warm optimal" true
    (warm.Minlp.Solution.status = Minlp.Solution.Optimal);
  check_float ~eps:1e-4 "same objective" cold.Minlp.Solution.obj warm.Minlp.Solution.obj;
  Alcotest.(check bool) "warm start was used" true warm_tally.Engine.Telemetry.warm_start_used;
  if warm_tally.Engine.Telemetry.nodes_expanded >= cold_tally.Engine.Telemetry.nodes_expanded
  then
    Alcotest.failf "warm start did not help: warm %d nodes vs cold %d"
      warm_tally.Engine.Telemetry.nodes_expanded cold_tally.Engine.Telemetry.nodes_expanded

let test_warm_start_oa_matches_cold () =
  (* warm-starting OA must not change the optimum it proves *)
  let specs = e6_specs ~allowed:[ 1; 2; 4; 8; 16; 32; 64 ] () in
  let n_total = 256 in
  let problem, _, lift =
    Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total specs
  in
  let cold = Minlp.Oa.run problem in
  let greedy =
    match Hslb.Alloc_model.solve ~objective:Hslb.Objective.Min_sum ~n_total specs with
    | Ok a -> a
    | Error st -> Alcotest.failf "greedy failed: %s" (Minlp.Solution.status_to_string st)
  in
  let warm =
    Minlp.Oa.run ~warm_start:(lift greedy.Hslb.Alloc_model.nodes_per_task) problem
  in
  Alcotest.(check bool) "cold optimal" true
    (cold.Minlp.Solution.status = Minlp.Solution.Optimal);
  Alcotest.(check bool) "warm optimal" true
    (warm.Minlp.Solution.status = Minlp.Solution.Optimal);
  check_float ~eps:1e-4 "same objective" cold.Minlp.Solution.obj warm.Minlp.Solution.obj

let test_lift_point_shapes () =
  let b = Minlp.Problem.Builder.create () in
  let v = Minlp.Problem.Builder.add_var b ~name:"n" ~lo:1. ~hi:10. Minlp.Problem.Integer in
  Minlp.Problem.Builder.set_objective b (Minlp.Expr.pow (Minlp.Expr.var v) 2.);
  let p0 = Minlp.Problem.Builder.build b in
  let p, _ = Minlp.Problem.normalize p0 in
  (* normalize adds the epigraph variable; lift must fill it with the
     original objective value *)
  match Minlp.Problem.lift_point ~orig:p0 p [| 3. |] with
  | Some w ->
    Alcotest.(check int) "one extra var" (Array.length w) p.Minlp.Problem.num_vars;
    check_float "epigraph = objective" 9. w.(Array.length w - 1)
  | None -> Alcotest.fail "lift failed"

let () =
  Alcotest.run "engine"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "node limit" `Quick test_budget_node_limit;
          Alcotest.test_case "iter limit" `Quick test_budget_iter_limit;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "cancel token" `Quick test_budget_cancel;
          Alcotest.test_case "independent arms" `Quick test_budget_independent_arms;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counters and merge" `Quick test_telemetry_counters_and_merge;
          Alcotest.test_case "phase timer" `Quick test_telemetry_phase_timer;
        ] );
      ( "solver choice",
        [ Alcotest.test_case "roundtrip" `Quick test_solver_choice_roundtrip ] );
      ( "run report",
        [ Alcotest.test_case "json and csv" `Quick test_run_report_json_and_csv ] );
      ( "budgeted solves",
        [
          Alcotest.test_case "1ms deadline keeps incumbent" `Quick
            test_deadline_returns_incumbent;
          Alcotest.test_case "pre-cancelled token" `Quick test_cancel_stops_solve;
          Alcotest.test_case "node budget" `Quick test_node_budget_respected;
          Alcotest.test_case "counters nonzero" `Quick
            test_telemetry_counters_nonzero_on_solve;
        ] );
      ( "warm starts",
        [
          Alcotest.test_case "bnb expands fewer nodes" `Quick test_warm_start_cuts_bnb_nodes;
          Alcotest.test_case "oa unchanged optimum" `Quick test_warm_start_oa_matches_cold;
          Alcotest.test_case "lift through epigraph" `Quick test_lift_point_shapes;
        ] );
    ]
