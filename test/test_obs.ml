(* Observability subsystem tests: span scoping and cross-domain
   stitching (the portfolio-race acceptance criterion), the metrics
   registry under concurrent update, the exporters, and the engine /
   runtime / report integration points. *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* every test that enables tracing starts from an empty sink so suites
   do not leak spans into each other *)
let traced f =
  Obs.Span.clear ();
  Fun.protect ~finally:(fun () -> Obs.Span.clear ()) (fun () -> Obs.Control.with_enabled f)

(* ---------- clock ---------- *)

let test_clock_monotone () =
  let prev = ref (Obs.Clock.now_s ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_s () in
    if t < !prev then Alcotest.failf "clock went backwards: %.9f < %.9f" t !prev;
    prev := t
  done

(* ---------- control / no-op cost ---------- *)

let test_disabled_is_noop () =
  Obs.Span.clear ();
  Alcotest.(check bool) "disabled by default" false (Obs.Control.enabled ());
  let v = Obs.Span.with_span "ignored" (fun () -> 42) in
  Alcotest.(check int) "body ran" 42 v;
  Alcotest.(check int) "no span recorded" 0 (List.length (Obs.Span.drain ()))

let test_with_enabled_restores () =
  (try Obs.Control.with_enabled (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "disabled again after exception" false (Obs.Control.enabled ())

(* ---------- span scoping ---------- *)

let test_span_nesting () =
  traced @@ fun () ->
  Obs.Span.with_span ~cat:"t" "outer" (fun () ->
      Obs.Span.with_span ~cat:"t" "inner" (fun () -> ()));
  match Obs.Span.drain () with
  | [ inner; outer ] ->
    (* inner closes first, so it drains first *)
    Alcotest.(check string) "inner name" "inner" inner.Obs.Span.name;
    Alcotest.(check string) "outer name" "outer" outer.Obs.Span.name;
    Alcotest.(check bool) "outer is a root" true (outer.Obs.Span.parent = None);
    Alcotest.(check bool) "inner parented to outer" true
      (inner.Obs.Span.parent = Some outer.Obs.Span.id);
    Alcotest.(check bool) "durations non-negative" true
      (inner.Obs.Span.dur_s >= 0. && outer.Obs.Span.dur_s >= 0.)
  | sps -> Alcotest.failf "expected 2 spans, got %d" (List.length sps)

let test_span_exception_passthrough () =
  traced @@ fun () ->
  (try Obs.Span.with_span "failing" (fun () -> failwith "boom") with
  | Failure _ -> ());
  match Obs.Span.drain () with
  | [ sp ] -> Alcotest.(check string) "span still recorded" "failing" sp.Obs.Span.name
  | sps -> Alcotest.failf "expected 1 span, got %d" (List.length sps)

let test_span_context_across_domains () =
  traced @@ fun () ->
  Obs.Span.with_span "root" (fun () ->
      let ctx = Obs.Span.context () in
      let d =
        Domain.spawn (fun () ->
            Obs.Span.in_context ctx (fun () ->
                Obs.Span.with_span "child" (fun () -> ())))
      in
      Domain.join d);
  let spans = Obs.Span.drain () in
  let root = List.find (fun s -> s.Obs.Span.name = "root") spans in
  let child = List.find (fun s -> s.Obs.Span.name = "child") spans in
  Alcotest.(check bool) "child parented across domain boundary" true
    (child.Obs.Span.parent = Some root.Obs.Span.id)

(* ---------- the acceptance criterion: portfolio race stitching ---------- *)

let fitted_of_law ~name ~count law =
  let cls =
    Hslb.Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes)
  in
  List.hd
    (Hslb.Classes.gather_and_fit ~rng:(Numerics.Rng.create 11)
       ~sizes:[ 1; 2; 4; 8; 16; 64 ] ~reps:1 [ cls ])

let race_specs () =
  List.init 3 (fun i ->
      let law =
        Scaling_law.make
          ~a:(120. +. (60. *. float_of_int i))
          ~b:1e-6 ~c:0.9
          ~d:(0.5 +. float_of_int i)
      in
      Hslb.Alloc_model.spec_of ~allowed:[ 1; 2; 4; 8; 16 ]
        (fitted_of_law ~name:(Printf.sprintf "k%d" i) ~count:1 law))

let test_portfolio_race_stitching () =
  let spans =
    traced @@ fun () ->
    (match Hslb.Alloc_model.solve ~strategy:`Portfolio ~n_total:32 (race_specs ()) with
    | Ok _ -> ()
    | Error st ->
      Alcotest.failf "portfolio solve failed: %s" (Minlp.Solution.status_to_string st));
    Obs.Span.drain ()
  in
  let roots = List.filter (fun s -> s.Obs.Span.name = "portfolio.race") spans in
  Alcotest.(check int) "exactly one race root span" 1 (List.length roots);
  let root = List.hd roots in
  Alcotest.(check bool) "race root has no parent" true (root.Obs.Span.parent = None);
  let lanes =
    List.filter
      (fun s ->
        String.length s.Obs.Span.name >= 5 && String.sub s.Obs.Span.name 0 5 = "lane:")
      spans
  in
  let lane_names = List.sort compare (List.map (fun s -> s.Obs.Span.name) lanes) in
  Alcotest.(check (list string))
    "one child span per racing lane"
    [ "lane:bnb"; "lane:oa"; "lane:oa-multi" ]
    lane_names;
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (l.Obs.Span.name ^ " parented to the race root")
        true
        (l.Obs.Span.parent = Some root.Obs.Span.id))
    lanes

(* the staggered-lazy race skips the laggards when the leader wins
   inside the window, so forcing cross-domain stitching needs a slow,
   non-final leader: with a zero stagger the laggards spawn at the
   leader's first budget-poll window and their spans must still parent
   to the race root across the domain boundary *)
let test_race_cross_domain_stitching () =
  let spans =
    traced @@ fun () ->
    let lane name finish_s =
      ( name,
        fun b ->
          let t0 = Unix.gettimeofday () in
          let rec loop () =
            if Engine.Budget.check b <> None then `Cancelled
            else if Unix.gettimeofday () -. t0 >= finish_s then `Done
            else begin
              Unix.sleepf 0.002;
              loop ()
            end
          in
          loop () )
    in
    let outcome =
      Runtime.Portfolio.race ~stagger_s:0.
        ~final:(fun v -> v = `Done)
        ~better:(fun _ _ -> false)
        [ lane "slow-leader" 10.; lane "quick" 0.05 ]
    in
    Alcotest.(check string) "laggard wins" "quick" outcome.Runtime.Portfolio.winner;
    Obs.Span.drain ()
  in
  let root = List.find (fun s -> s.Obs.Span.name = "portfolio.race") spans in
  let lanes =
    List.filter
      (fun s ->
        String.length s.Obs.Span.name >= 5 && String.sub s.Obs.Span.name 0 5 = "lane:")
      spans
  in
  Alcotest.(check int) "both lanes emitted spans" 2 (List.length lanes);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (l.Obs.Span.name ^ " parented to the race root")
        true
        (l.Obs.Span.parent = Some root.Obs.Span.id))
    lanes;
  (* the laggard really ran on a worker domain, i.e. the parent link
     survived a domain boundary, not just lexical nesting *)
  let domains =
    List.sort_uniq compare (List.map (fun l -> l.Obs.Span.domain) lanes)
  in
  Alcotest.(check bool) "lanes span more than one domain" true (List.length domains > 1)

let test_pool_task_spans () =
  let spans =
    traced @@ fun () ->
    Obs.Span.with_span "shard" (fun () ->
        ignore (Runtime.Pool.map ~jobs:2 (fun x -> x * x) [ 1; 2; 3; 4 ]));
    Obs.Span.drain ()
  in
  let root = List.find (fun s -> s.Obs.Span.name = "shard") spans in
  let tasks = List.filter (fun s -> s.Obs.Span.name = "pool.task") spans in
  Alcotest.(check int) "one span per task" 4 (List.length tasks);
  List.iter
    (fun t ->
      Alcotest.(check bool) "task parented to caller's span" true
        (t.Obs.Span.parent = Some root.Obs.Span.id))
    tasks;
  let indices =
    List.sort compare
      (List.map (fun t -> List.assoc "index" t.Obs.Span.args) tasks)
  in
  Alcotest.(check (list string)) "indices annotated" [ "0"; "1"; "2"; "3" ] indices

(* ---------- engine integration ---------- *)

let test_telemetry_time_emits_span () =
  let spans =
    traced @@ fun () ->
    ignore (Engine.Telemetry.time None "probe-phase" (fun () -> 7));
    Obs.Span.drain ()
  in
  match List.filter (fun s -> s.Obs.Span.name = "probe-phase") spans with
  | [ sp ] -> Alcotest.(check string) "categorized" "engine.phase" sp.Obs.Span.cat
  | sps -> Alcotest.failf "expected 1 phase span, got %d" (List.length sps)

let test_budget_poll_counter () =
  let c = Obs.Metrics.counter "engine_budget_polls_total" in
  let before = Obs.Metrics.Counter.value c in
  let b = Engine.Budget.arm Engine.Budget.unlimited in
  ignore (Engine.Budget.check b);
  Alcotest.(check int) "disabled: no count" before (Obs.Metrics.Counter.value c);
  Obs.Control.with_enabled (fun () ->
      ignore (Engine.Budget.check b);
      ignore (Engine.Budget.check b));
  Alcotest.(check int) "enabled: polls counted" (before + 2) (Obs.Metrics.Counter.value c)

(* ---------- metrics ---------- *)

let test_counter_concurrent () =
  let c = Obs.Metrics.Counter.create "t_concurrent" in
  let per = 25_000 in
  ignore
    (Runtime.Pool.map ~jobs:4
       (fun _ ->
         for _ = 1 to per do
           Obs.Metrics.Counter.incr c
         done)
       [ 0; 1; 2; 3 ]);
  Alcotest.(check int) "no lost increments" (4 * per) (Obs.Metrics.Counter.value c)

let test_gauge () =
  let g = Obs.Metrics.Gauge.create "t_gauge" in
  Obs.Metrics.Gauge.set g 3.5;
  Obs.Metrics.Gauge.add g 1.5;
  Alcotest.(check (float 1e-9)) "set+add" 5.0 (Obs.Metrics.Gauge.value g)

let test_histogram_quantiles () =
  let h = Obs.Metrics.Histogram.create ~lo:1. ~hi:1000. "t_hist" in
  for i = 1 to 100 do
    Obs.Metrics.Histogram.observe h (float_of_int i)
  done;
  let s = Obs.Metrics.Histogram.summary h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.Histogram.count;
  Alcotest.(check (float 1e-6)) "sum" 5050. s.Obs.Metrics.Histogram.sum;
  Alcotest.(check (float 1e-9)) "min" 1. s.Obs.Metrics.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 100. s.Obs.Metrics.Histogram.max;
  (* log-linear buckets: a quantile reads as the upper bound of its
     bucket, so it can overshoot by at most one bucket ratio (~26% at
     10 buckets/decade) and never undershoots *)
  let ratio = 10. ** 0.1 in
  let between what lo hi v =
    if v < lo || v > hi then Alcotest.failf "%s: %.3f outside [%.3f, %.3f]" what v lo hi
  in
  between "p50" 50. (50. *. ratio) s.Obs.Metrics.Histogram.p50;
  between "p90" 90. (90. *. ratio) s.Obs.Metrics.Histogram.p90;
  between "p99" 99. 100. s.Obs.Metrics.Histogram.p99

let test_histogram_empty_and_overflow () =
  let h = Obs.Metrics.Histogram.create ~lo:1. ~hi:10. "t_hist_edge" in
  let s = Obs.Metrics.Histogram.summary h in
  Alcotest.(check int) "empty count" 0 s.Obs.Metrics.Histogram.count;
  Alcotest.(check bool) "empty quantiles are NaN" true
    (Float.is_nan s.Obs.Metrics.Histogram.p50 && Float.is_nan s.Obs.Metrics.Histogram.min);
  (* below-range and above-range observations clamp into the end
     buckets; quantiles stay within observed min/max *)
  Obs.Metrics.Histogram.observe h 0.001;
  Obs.Metrics.Histogram.observe h 5000.;
  let s = Obs.Metrics.Histogram.summary h in
  Alcotest.(check int) "clamped count" 2 s.Obs.Metrics.Histogram.count;
  Alcotest.(check (float 1e-9)) "min observed" 0.001 s.Obs.Metrics.Histogram.min;
  Alcotest.(check (float 1e-9)) "max observed" 5000. s.Obs.Metrics.Histogram.max;
  Alcotest.(check (float 1e-9)) "p99 clamps to max" 5000. s.Obs.Metrics.Histogram.p99

let test_histogram_concurrent () =
  let h = Obs.Metrics.Histogram.create ~lo:0.5 ~hi:200. "t_hist_conc" in
  ignore
    (Runtime.Pool.map ~jobs:4
       (fun d ->
         for i = 1 to 10_000 do
           Obs.Metrics.Histogram.observe h (float_of_int (1 + ((d + i) mod 100)))
         done)
       [ 0; 1; 2; 3 ]);
  Alcotest.(check int) "no lost observations" 40_000 (Obs.Metrics.Histogram.count h)

let test_registry_type_clash () =
  ignore (Obs.Metrics.counter "t_clash");
  Alcotest.(check bool) "get-or-create returns same" true
    (Obs.Metrics.counter "t_clash" == Obs.Metrics.counter "t_clash");
  match Obs.Metrics.histogram "t_clash" with
  | _ -> Alcotest.fail "type clash not detected"
  | exception Invalid_argument _ -> ()

(* ---------- exporters ---------- *)

let test_chrome_trace_roundtrip () =
  let spans =
    traced @@ fun () ->
    Obs.Span.with_span ~cat:"t" "parent" (fun () ->
        Obs.Span.with_span ~cat:"t" ~args:[ ("k", "v") ] "child" (fun () -> ()));
    Obs.Span.drain ()
  in
  let doc = Obs.Export.chrome_trace spans in
  (* the serving layer's decoder is the CI validator for this artifact;
     Serve.Json.t = Obs.Json.t so both sides interoperate *)
  match Serve.Json.parse (Serve.Json.to_string doc) with
  | Error msg -> Alcotest.failf "trace does not re-parse: %s" msg
  | Ok parsed -> (
    (match Obs.Export.check_chrome_trace parsed with
    | Ok n -> Alcotest.(check int) "two events" 2 n
    | Error msg -> Alcotest.failf "invalid trace: %s" msg);
    let events =
      match Serve.Json.member "traceEvents" parsed with
      | Some (Serve.Json.Arr evs) -> evs
      | _ -> Alcotest.fail "missing traceEvents"
    in
    let find name =
      List.find
        (fun ev -> Serve.Json.member "name" ev = Some (Serve.Json.Str name))
        events
    in
    let id_of ev =
      Option.get (Serve.Json.member "args" ev |> Option.get |> Serve.Json.member "span_id")
    in
    let parent = find "parent" and child = find "child" in
    Alcotest.(check bool) "parent_id stitches in the export" true
      (Serve.Json.member "args" child |> Option.get |> Serve.Json.member "parent_id"
      = Some (id_of parent));
    Alcotest.(check bool) "custom args survive" true
      (Serve.Json.member "args" child |> Option.get |> Serve.Json.member "k"
      = Some (Serve.Json.Str "v")))

let test_check_chrome_trace_rejects () =
  let bad =
    Obs.Json.Obj
      [
        ( "traceEvents",
          Obs.Json.Arr [ Obs.Json.Obj [ ("name", Obs.Json.Str "x") ] ] );
      ]
  in
  (match Obs.Export.check_chrome_trace bad with
  | Ok _ -> Alcotest.fail "accepted an event with no ph/ts"
  | Error msg -> Alcotest.(check bool) "names the field" true (contains_substring msg "ph"));
  match Obs.Export.check_chrome_trace (Obs.Json.Obj []) with
  | Ok _ -> Alcotest.fail "accepted a document with no traceEvents"
  | Error _ -> ()

let test_ndjson_stream () =
  let lines = ref [] in
  Obs.Span.set_stream (Some (fun sp -> lines := Obs.Export.span_ndjson_line sp :: !lines));
  Fun.protect
    ~finally:(fun () -> Obs.Span.set_stream None)
    (fun () ->
      traced @@ fun () ->
      Obs.Span.with_span "streamed" (fun () -> ()));
  match !lines with
  | [ line ] ->
    Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
    (match Obs.Json.parse line with
    | Ok (Obs.Json.Obj _ as ev) ->
      Alcotest.(check bool) "carries the span name" true
        (Obs.Json.member "name" ev = Some (Obs.Json.Str "streamed"))
    | Ok _ -> Alcotest.fail "not an object"
    | Error msg -> Alcotest.failf "line does not parse: %s" msg)
  | l -> Alcotest.failf "expected 1 streamed line, got %d" (List.length l)

let test_prometheus_exposition () =
  let c = Obs.Metrics.Counter.create "t_prom_total" in
  Obs.Metrics.Counter.incr ~by:3 c;
  let g = Obs.Metrics.Gauge.create "t_prom_gauge" in
  Obs.Metrics.Gauge.set g 1.25;
  let h = Obs.Metrics.Histogram.create ~lo:1. ~hi:100. "t_prom_ms" in
  List.iter (Obs.Metrics.Histogram.observe h) [ 2.; 4.; 8. ];
  let text =
    Obs.Export.prometheus
      [
        ("t_prom_total", Obs.Metrics.Counter c);
        ("t_prom_gauge", Obs.Metrics.Gauge g);
        ("t_prom_ms", Obs.Metrics.Histogram h);
      ]
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true
        (contains_substring text needle))
    [
      "# TYPE t_prom_total counter";
      "t_prom_total 3";
      "# TYPE t_prom_gauge gauge";
      "t_prom_gauge 1.25";
      "# TYPE t_prom_ms summary";
      "t_prom_ms{quantile=\"0.5\"}";
      "t_prom_ms{quantile=\"0.99\"}";
      "t_prom_ms_count 3";
    ];
  (* 1 counter + 1 gauge + (3 quantiles + _sum + _count) = 7 samples *)
  match Obs.Export.check_prometheus text with
  | Ok n -> Alcotest.(check int) "sample lines" 7 n
  | Error msg -> Alcotest.failf "own exposition rejected: %s" msg

let test_check_prometheus_rejects () =
  (match Obs.Export.check_prometheus "bad metric! 1\n" with
  | Ok _ -> Alcotest.fail "accepted a bad metric name"
  | Error msg -> Alcotest.(check bool) "points at the line" true (contains_substring msg "line 1"));
  (match Obs.Export.check_prometheus "ok_metric notanumber\n" with
  | Ok _ -> Alcotest.fail "accepted a non-numeric value"
  | Error _ -> ());
  match Obs.Export.check_prometheus "# just a comment\n\n" with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "comment-only exposition counted %d samples" n
  | Error msg -> Alcotest.failf "comment-only exposition rejected: %s" msg

(* ---------- run-report histogram section ---------- *)

let test_run_report_hists () =
  let tally = Engine.Telemetry.create () in
  let plain = Engine.Run_report.make ~solver:"t" ~status:"ok" ~wall_s:0.1 tally in
  Alcotest.(check bool) "no hists key when empty" false
    (contains_substring (Engine.Run_report.to_json plain) "\"hists\"");
  let h = Obs.Metrics.Histogram.create ~lo:1. ~hi:100. "t_report_ms" in
  List.iter (Obs.Metrics.Histogram.observe h) [ 5.; 10.; 20. ];
  let with_hists =
    Engine.Run_report.make ~solver:"t" ~status:"ok"
      ~hists:[ ("t_report_ms", Obs.Metrics.Histogram.summary h) ]
      ~wall_s:0.1 tally
  in
  let js = Engine.Run_report.to_json with_hists in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report has " ^ needle) true (contains_substring js needle))
    [ "\"hists\""; "\"t_report_ms\""; "\"p50\""; "\"count\":3" ];
  (match Serve.Json.parse js with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "report with hists is not valid JSON: %s" msg);
  (* the CSV shape is frozen: histogram summaries never add columns *)
  let cols s = List.length (String.split_on_char ',' s) in
  Alcotest.(check int) "csv row arity unchanged"
    (cols Engine.Run_report.csv_header)
    (cols (Engine.Run_report.to_csv_row with_hists))

let () =
  Alcotest.run "obs"
    [
      ( "clock+control",
        [
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "with_enabled restores" `Quick test_with_enabled_restores;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception passthrough" `Quick test_span_exception_passthrough;
          Alcotest.test_case "context across domains" `Quick test_span_context_across_domains;
          Alcotest.test_case "portfolio race stitching" `Quick test_portfolio_race_stitching;
          Alcotest.test_case "race cross-domain stitching" `Quick
            test_race_cross_domain_stitching;
          Alcotest.test_case "pool task spans" `Quick test_pool_task_spans;
        ] );
      ( "engine",
        [
          Alcotest.test_case "telemetry.time emits span" `Quick test_telemetry_time_emits_span;
          Alcotest.test_case "budget poll counter" `Quick test_budget_poll_counter;
          Alcotest.test_case "run-report hists section" `Quick test_run_report_hists;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter concurrent" `Quick test_counter_concurrent;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "histogram empty+overflow" `Quick test_histogram_empty_and_overflow;
          Alcotest.test_case "histogram concurrent" `Quick test_histogram_concurrent;
          Alcotest.test_case "registry type clash" `Quick test_registry_type_clash;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace round-trip" `Quick test_chrome_trace_roundtrip;
          Alcotest.test_case "chrome validator rejects" `Quick test_check_chrome_trace_rejects;
          Alcotest.test_case "ndjson stream" `Quick test_ndjson_stream;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "prometheus validator rejects" `Quick test_check_prometheus_rejects;
        ] );
    ]
