(* Tests for the FMO substrate: geometry, molecules, fragmentation,
   the FMO2 task graph, the ground-truth cost model and the runner. *)

open Fmo

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ---------- geometry ---------- *)

let test_geometry () =
  let p = Geometry.make 1. 2. 2. in
  check_float "norm" 3. (Geometry.norm p);
  check_float "dist" 3. (Geometry.dist Geometry.origin p);
  let c = Geometry.centroid [ Geometry.make 0. 0. 0.; Geometry.make 2. 0. 0. ] in
  check_float "centroid x" 1. c.Geometry.x

(* ---------- basis ---------- *)

let test_basis_counts () =
  Alcotest.(check int) "water sto-3g" 7 (Basis.nbf Basis.Sto3g Element.[ O; H; H ]);
  Alcotest.(check int) "water 6-31G" 13 (Basis.nbf Basis.B6_31g Element.[ O; H; H ]);
  Alcotest.(check int) "water 6-31G*" 19 (Basis.nbf Basis.B6_31gd Element.[ O; H; H ])

(* ---------- molecule ---------- *)

let test_water_cluster () =
  let rng = Numerics.Rng.create 3 in
  let m = Molecule.water_cluster ~rng 27 in
  Alcotest.(check int) "monomers" 27 m.Molecule.num_monomers;
  Alcotest.(check int) "atoms" 81 (Molecule.num_atoms m);
  (* every monomer is one O and two H *)
  for i = 0 to 26 do
    let atoms = Molecule.monomer_atoms m i in
    Alcotest.(check int) (Printf.sprintf "monomer %d size" i) 3 (List.length atoms)
  done

let test_water_cluster_deterministic () =
  let m1 = Molecule.water_cluster ~rng:(Numerics.Rng.create 5) 8 in
  let m2 = Molecule.water_cluster ~rng:(Numerics.Rng.create 5) 8 in
  Alcotest.(check bool) "same geometry" true (m1.Molecule.atoms = m2.Molecule.atoms)

let test_peptides () =
  let m = Molecule.polyalanine 5 in
  Alcotest.(check int) "residues" 5 m.Molecule.num_monomers;
  let rng = Numerics.Rng.create 1 in
  let p = Molecule.random_peptide ~rng 10 in
  Alcotest.(check int) "random residues" 10 p.Molecule.num_monomers;
  Alcotest.check_raises "empty" (Invalid_argument "Molecule.polyalanine: n must be positive")
    (fun () -> ignore (Molecule.polyalanine 0))

(* ---------- fragment ---------- *)

let test_fragment_one_per_monomer () =
  let rng = Numerics.Rng.create 3 in
  let m = Molecule.water_cluster ~rng 8 in
  let frags = Fragment.fragment m Basis.B6_31gd in
  Alcotest.(check int) "count" 8 (Array.length frags);
  Array.iter (fun f -> Alcotest.(check int) "nbf" 19 f.Fragment.nbf) frags;
  Alcotest.(check int) "total nbf" (8 * 19) (Fragment.total_nbf frags)

let test_fragment_two_per () =
  let rng = Numerics.Rng.create 3 in
  let m = Molecule.water_cluster ~rng 9 in
  let frags = Fragment.fragment ~per_fragment:2 m Basis.B6_31gd in
  (* 9 monomers -> 4 fragments of 2 + 1 of 1 *)
  Alcotest.(check int) "count" 5 (Array.length frags);
  Alcotest.(check int) "first nbf" 38 frags.(0).Fragment.nbf;
  Alcotest.(check int) "last nbf" 19 frags.(4).Fragment.nbf

(* ---------- task graph ---------- *)

let plan_of ?(n = 16) () =
  let rng = Numerics.Rng.create 3 in
  let m = Molecule.water_cluster ~rng n in
  Task.fmo2_plan (Fragment.fragment m Basis.B6_31gd)

let test_plan_structure () =
  let plan = plan_of () in
  let nf = Array.length plan.Task.fragments in
  Alcotest.(check int) "monomer per fragment" nf (Array.length plan.Task.monomers);
  let pairs = nf * (nf - 1) / 2 in
  Alcotest.(check int) "all pairs covered" pairs
    (Array.length plan.Task.scf_dimers + Array.length plan.Task.es_dimers);
  Alcotest.(check bool) "has near pairs" true (Array.length plan.Task.scf_dimers > 0);
  Alcotest.(check bool) "has far pairs" true (Array.length plan.Task.es_dimers > 0)

let test_dimer_classification_by_cutoff () =
  let rng = Numerics.Rng.create 3 in
  let m = Molecule.water_cluster ~rng 8 in
  let frags = Fragment.fragment m Basis.B6_31gd in
  let all_scf = Task.fmo2_plan ~scf_cutoff:1e6 frags in
  Alcotest.(check int) "everything near" 0 (Array.length all_scf.Task.es_dimers);
  let all_es = Task.fmo2_plan ~scf_cutoff:0.01 frags in
  Alcotest.(check int) "everything far" 0 (Array.length all_es.Task.scf_dimers)

let test_embedding_heterogeneity () =
  (* interior fragments must carry more monomer work than surface ones *)
  let plan = plan_of ~n:27 () in
  let works = Array.map (fun t -> t.Task.work_gflops) plan.Task.monomers in
  let mn = Array.fold_left Float.min infinity works in
  let mx = Array.fold_left Float.max 0. works in
  Alcotest.(check bool) "spread" true (mx > mn *. 1.2)

let test_work_functions () =
  Alcotest.(check bool) "scf superlinear" true
    (Task.scf_work_gflops 38 > 4. *. Task.scf_work_gflops 19);
  Alcotest.(check bool) "es cheap" true (Task.es_work_gflops 38 < Task.scf_work_gflops 38 /. 100.);
  check_float "embedding base" 1. (Task.embedding_factor ~neighbors:0);
  Alcotest.(check bool) "embedding grows" true (Task.embedding_factor ~neighbors:10 > 1.5)

let test_total_work () =
  let plan = plan_of () in
  let w = Task.total_work plan in
  Alcotest.(check bool) "positive" true (w > 0.);
  (* more SCC iterations -> more work *)
  let rng = Numerics.Rng.create 3 in
  let m = Molecule.water_cluster ~rng 16 in
  let plan2 = Task.fmo2_plan ~scc_iterations:16 (Fragment.fragment m Basis.B6_31gd) in
  Alcotest.(check bool) "scc increases work" true (Task.total_work plan2 > w)

(* ---------- cost model ---------- *)

let machine = Machine.make ~name:"test" ~num_nodes:1024 ()

let test_law_shape () =
  let law = Cost_model.law machine ~work_gflops:100. ~nbf:19 in
  let t1 = Cost_model.expected law ~nodes:1 in
  let t16 = Cost_model.expected law ~nodes:16 in
  Alcotest.(check bool) "scales down" true (t16 < t1 /. 8.);
  Alcotest.(check bool) "serial floor" true (t16 > 0.)

let test_noise_free_machine () =
  let quiet = Machine.with_noise machine 0. in
  let t = plan_of () in
  let task = t.Task.monomers.(0) in
  let rng = Numerics.Rng.create 1 in
  let a = Cost_model.sample_task rng quiet task ~nodes:4 in
  let b = Cost_model.sample_task rng quiet task ~nodes:4 in
  check_float "deterministic" a b

let test_noise_mean_one () =
  let noisy = Machine.with_noise machine 0.1 in
  let law = Cost_model.law noisy ~work_gflops:100. ~nbf:19 in
  let rng = Numerics.Rng.create 9 in
  let base = Cost_model.expected law ~nodes:4 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Cost_model.sample rng noisy law ~nodes:4
  done;
  check_float ~eps:0.01 "mean preserved" base (!acc /. float_of_int n)

(* ---------- runner ---------- *)

let test_run_static_vs_dynamic_consistency () =
  let plan = plan_of ~n:8 () in
  let partition = Gddi.Group.even_partition ~total_nodes:16 ~groups:8 in
  let rng = Numerics.Rng.create 5 in
  let r = Fmo_run.run ~rng machine plan partition Fmo_run.Dynamic in
  Alcotest.(check bool) "positive time" true (r.Fmo_run.total_time > 0.);
  Alcotest.(check int) "sweeps" plan.Task.scc_iterations (List.length r.Fmo_run.sweeps);
  check_float "total = monomer + dimer"
    (r.Fmo_run.monomer_time +. r.Fmo_run.dimer_time)
    r.Fmo_run.total_time;
  Alcotest.(check bool) "utilization in (0,1]" true
    (r.Fmo_run.utilization > 0. && r.Fmo_run.utilization <= 1. +. 1e-9)

let test_run_static_assignment () =
  let plan = plan_of ~n:4 () in
  let partition = Gddi.Group.even_partition ~total_nodes:8 ~groups:4 in
  let monomer = Array.init (Array.length plan.Task.monomers) Fun.id in
  let ndimers = Array.length (Task.dimer_tasks plan) in
  let dimer = Array.init ndimers (fun i -> i mod 4) in
  let rng = Numerics.Rng.create 5 in
  let r = Fmo_run.run ~rng machine plan partition (Fmo_run.Static { monomer; dimer }) in
  Alcotest.(check bool) "positive" true (r.Fmo_run.total_time > 0.)

let test_run_plan_phase_partitions () =
  (* monomer and dimer phases may use different partitions *)
  let plan = plan_of ~n:4 () in
  let p1 = Gddi.Group.even_partition ~total_nodes:8 ~groups:4 in
  let p2 = Gddi.Group.even_partition ~total_nodes:8 ~groups:2 in
  let rng = Numerics.Rng.create 5 in
  let r =
    Fmo_run.run_plan ~rng machine plan
      ~monomer:{ Fmo_run.partition = p1; schedule = Gddi.Sim.Dynamic }
      ~dimer:{ Fmo_run.partition = p2; schedule = Gddi.Sim.Dynamic }
  in
  Alcotest.(check int) "dimer groups" 2 (Array.length r.Fmo_run.dimer.Gddi.Sim.group_busy)

let test_sweep_factor () =
  let plan = plan_of ~n:4 () in
  check_float "first full" 1. (Fmo_run.sweep_work_factor plan ~sweep:0);
  check_float "later cheaper" plan.Task.scc_later_sweep_factor
    (Fmo_run.sweep_work_factor plan ~sweep:1)

let prop_more_nodes_never_slower_expected =
  QCheck.Test.make ~name:"expected task time decreases with nodes (b tiny)" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let work = Numerics.Rng.uniform rng ~lo:1. ~hi:1000. in
      let nbf = 10 + Numerics.Rng.int rng 60 in
      let law = Cost_model.law machine ~work_gflops:work ~nbf in
      let ok = ref true in
      for e = 0 to 8 do
        let n1 = 1 lsl e and n2 = 1 lsl (e + 1) in
        (* the b*n comm term eventually dominates (small work, large
           nbf), so only assert while the law is still decreasing at
           n2 — the derivative grows with n, so that covers [n1,n2] *)
        if
          Scaling_law.derivative law (float_of_int n2) <= 0.
          && Cost_model.expected law ~nodes:n2
             > Cost_model.expected law ~nodes:n1 +. 1e-9
        then ok := false
      done;
      !ok)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_more_nodes_never_slower_expected ] in
  Alcotest.run "fmo"
    [
      ("geometry", [ Alcotest.test_case "basics" `Quick test_geometry ]);
      ("basis", [ Alcotest.test_case "counts" `Quick test_basis_counts ]);
      ( "molecule",
        [
          Alcotest.test_case "water cluster" `Quick test_water_cluster;
          Alcotest.test_case "deterministic" `Quick test_water_cluster_deterministic;
          Alcotest.test_case "peptides" `Quick test_peptides;
        ] );
      ( "fragment",
        [
          Alcotest.test_case "one per monomer" `Quick test_fragment_one_per_monomer;
          Alcotest.test_case "two per fragment" `Quick test_fragment_two_per;
        ] );
      ( "task",
        [
          Alcotest.test_case "plan structure" `Quick test_plan_structure;
          Alcotest.test_case "cutoff classification" `Quick test_dimer_classification_by_cutoff;
          Alcotest.test_case "embedding heterogeneity" `Quick test_embedding_heterogeneity;
          Alcotest.test_case "work functions" `Quick test_work_functions;
          Alcotest.test_case "total work" `Quick test_total_work;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "law shape" `Quick test_law_shape;
          Alcotest.test_case "noise-free determinism" `Quick test_noise_free_machine;
          Alcotest.test_case "noise mean one" `Quick test_noise_mean_one;
        ] );
      ( "fmo_run",
        [
          Alcotest.test_case "dynamic run" `Quick test_run_static_vs_dynamic_consistency;
          Alcotest.test_case "static run" `Quick test_run_static_assignment;
          Alcotest.test_case "phase partitions" `Quick test_run_plan_phase_partitions;
          Alcotest.test_case "sweep factor" `Quick test_sweep_factor;
        ] );
      ("properties", qsuite);
    ]
