(* Fleet-layer tests: the consistent-hash ring (determinism, balance,
   ~1/N movement under membership change), the socket transport's wire
   behaviour (framing, the exact numeric-"op" diagnostic, drain), and
   the router end-to-end over two attached backends — sharding by
   fingerprint, dedupe/cache locality, fan-out aggregation, fleet
   drain, and ring shrink when an attached backend dies. *)

let wait_until ?(timeout = 20.0) msg f =
  let rec go left =
    if f () then ()
    else if left <= 0. then Alcotest.failf "timed out waiting for %s" msg
    else (
      Unix.sleepf 0.01;
      go (left -. 0.01))
  in
  go timeout

(* ---------- Ring ---------- *)

let keys n = List.init n (Printf.sprintf "key-%d")

let test_ring_deterministic () =
  let open Serve.Ring in
  let a = make ~vnodes:64 [ "b0"; "b1"; "b2" ] in
  (* insertion order must not matter: the ring is a pure function of
     the member set *)
  let b = make ~vnodes:64 [ "b2"; "b0"; "b1" ] in
  List.iter
    (fun k ->
      let owner = shard a k in
      Alcotest.(check string) ("stable " ^ k) owner (shard a k);
      Alcotest.(check string) ("order-independent " ^ k) owner (shard b k))
    (keys 500);
  (* equal fingerprints shard equally — the property the router's
     cache locality rests on *)
  let csv = "alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2" in
  let spec model =
    Serve.Protocol.
      {
        model;
        n_total = 32;
        objective = Hslb.Objective.Min_max;
        deadline_ms = None;
        solver = None;
        strategy = None;
        allowed = None;
        policy = None;
        place = None;
      }
  in
  let fp m =
    match Serve.Protocol.fingerprint (spec m) with
    | Ok f -> f
    | Error e -> Alcotest.failf "fingerprint: %s" e
  in
  let f1 = fp (`Inline csv) and f2 = fp (`Inline csv) in
  Alcotest.(check string) "equal instances, equal fingerprints" f1 f2;
  Alcotest.(check string) "equal fingerprints, equal shard" (shard a f1) (shard a f2)

let test_ring_dedup_and_errors () =
  let open Serve.Ring in
  let t = make [ "x"; "y"; "x"; "y"; "x" ] in
  Alcotest.(check (list string)) "duplicates dropped" [ "x"; "y" ] (backends t);
  Alcotest.(check bool) "not empty" false (is_empty t);
  let e = make [] in
  Alcotest.(check bool) "empty" true (is_empty e);
  (match shard e "k" with
  | exception Invalid_argument _ -> ()
  | (_ : string) -> Alcotest.fail "shard on empty ring accepted");
  match make ~vnodes:0 [ "x" ] with
  | exception Invalid_argument _ -> ()
  | (_ : t) -> Alcotest.fail "vnodes 0 accepted"

let shard_counts ring ks =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun k ->
      let b = Serve.Ring.shard ring k in
      Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    ks;
  tbl

let test_ring_balance () =
  (* with enough points per backend no shard may hog the space: this
     is the property the fleet benchmark's cache-capacity margin rests
     on (a 512-vnode 2-ring split 48 keys ~24/24, not 11/37) *)
  let ks = keys 20_000 in
  let check_balance ~vnodes names lo hi =
    let ring = Serve.Ring.make ~vnodes names in
    let counts = shard_counts ring ks in
    List.iter
      (fun name ->
        let share =
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name))
          /. float_of_int (List.length ks)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%d-ring share of %s in [%g,%g] (got %g)" (List.length names)
             name lo hi share)
          true
          (share >= lo && share <= hi))
      names
  in
  check_balance ~vnodes:512 [ "backend-0"; "backend-1" ] 0.40 0.60;
  check_balance ~vnodes:256 [ "a"; "b"; "c"; "d" ] 0.15 0.35

let test_ring_stability () =
  let open Serve.Ring in
  let ks = keys 10_000 in
  let before = make ~vnodes:128 [ "b0"; "b1"; "b2"; "b3" ] in
  let after = add before "b4" in
  let moved, stolen =
    List.fold_left
      (fun (moved, stolen) k ->
        let was = shard before k and is_now = shard after k in
        if was = is_now then (moved, stolen)
        else (moved + 1, stolen + if is_now = "b4" then 1 else 0))
      (0, 0) ks
  in
  (* adding the 5th backend remaps ~1/5 of the space... *)
  let frac = float_of_int moved /. float_of_int (List.length ks) in
  Alcotest.(check bool)
    (Printf.sprintf "add moves ~1/5 of keys (got %g)" frac)
    true
    (frac > 0.05 && frac < 0.40);
  (* ...and every moved key moves TO the newcomer — existing shards
     never trade keys among themselves, so their caches stay hot *)
  Alcotest.(check int) "moved keys all go to the new backend" moved stolen;
  (* removal is the exact inverse *)
  let shrunk = remove after "b4" in
  List.iter
    (fun k ->
      Alcotest.(check string) ("remove restores " ^ k) (shard before k) (shard shrunk k))
    ks;
  Alcotest.(check (list string)) "remove unknown is id" (backends before)
    (backends (remove before "nope"))

(* ---------- Protocol regression ---------- *)

let test_numeric_op_message () =
  (* the exact diagnostic is part of the wire contract now — clients
     match on it (see docs/SERVE.md) *)
  match Serve.Protocol.parse_line {|{"id":1,"op":7}|} with
  | { req = Error msg; _ } ->
    Alcotest.(check string) "numeric op diagnostic"
      {|field "op": expected a string, got a number|} msg
  | { req = Ok _; _ } -> Alcotest.fail "numeric op accepted"

(* ---------- Socket transport harness ---------- *)

let sock_counter = Atomic.make 0

let fresh_sock () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hslb-fleet-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add sock_counter 1))

(* one in-process serve backend behind a unix socket: Server core +
   Transport_socket listener + Transport.drive on its own domain —
   the same wiring `hslb serve --listen` uses, minus Service.run's
   process-level trimmings *)
type backend = {
  core : Serve.Service.core;
  sock : string;
  driver : unit Domain.t;
}

let start_backend ?(jobs = 1) ?(cache_capacity = 8) () =
  let cfg =
    {
      Serve.Server.jobs;
      queue_limit = 16;
      cache_capacity;
      drain_grace_s = 5.0;
      default_solver = Engine.Solver_choice.Oa;
      default_strategy = `Single Engine.Solver_choice.Oa;
      audit = false;
      policy = Arena.Policy.builtin;
    }
  in
  let server = Serve.Server.create cfg ~emit:(fun _ -> ()) in
  let core = Serve.Service.core_of_server server in
  let sock = fresh_sock () in
  let listener =
    Serve.Transport_socket.listen
      ~stop:(fun () -> core.Serve.Service.draining ())
      (Serve.Transport_socket.Unix_path sock)
  in
  let driver =
    Domain.spawn (fun () ->
        Serve.Transport.drive
          (Serve.Transport_socket.listener listener)
          core.Serve.Service.handler;
        Serve.Transport_socket.shutdown listener)
  in
  { core; sock; driver }

let stop_backend b =
  b.core.Serve.Service.initiate_drain ();
  let report = b.core.Serve.Service.await_drain () in
  Domain.join b.driver;
  report

let parse_json line =
  match Serve.Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e

let outcome_of v =
  match Option.bind (Serve.Json.member "outcome" v) Serve.Json.str with
  | Some o -> o
  | None -> Alcotest.failf "response without outcome: %s" (Serve.Json.to_string v)

let recv_lines ?(timeout_s = 20.) client n =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go acc k =
    if k = 0 then List.rev_map parse_json acc
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out with %d/%d responses" (n - k) n
    else
      match Serve.Transport_socket.Client.recv client with
      | `Line l -> go (l :: acc) (k - 1)
      | `Timeout -> go acc k
      | `Eof -> Alcotest.failf "eof with %d/%d responses" (n - k) n
  in
  go [] n

let model_csv = "alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2"

let solve_line ?(id = 1) ?(nodes = 32) () =
  Printf.sprintf {|{"id":%d,"model_csv":%s,"nodes":%d}|} id
    (Serve.Json.to_string (Serve.Json.Str model_csv))
    nodes

let find_by_id vs id =
  match
    List.find_opt
      (fun v -> Serve.Json.member "id" v = Some (Serve.Json.Num (float_of_int id)))
      vs
  with
  | Some v -> v
  | None -> Alcotest.failf "no response with id %d" id

let test_socket_addr_parse () =
  let open Serve.Transport_socket in
  (match addr_of_string "unix:/tmp/x.sock" with
  | Ok (Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix addr");
  (match addr_of_string "tcp::9000" with
  | Ok (Tcp ("127.0.0.1", 9000)) -> ()
  | _ -> Alcotest.fail "tcp empty-host addr");
  (match addr_of_string "tcp:10.0.0.1:80" with
  | Ok (Tcp ("10.0.0.1", 80)) -> ()
  | _ -> Alcotest.fail "tcp addr");
  List.iter
    (fun bad ->
      match addr_of_string bad with
      | Error _ -> ()
      | Ok a -> Alcotest.failf "accepted %s as %s" bad (addr_to_string a))
    [ "nope"; "tcp:h"; "tcp:h:notaport"; "tcp:h:70000"; "unix:"; "" ]

let test_socket_e2e () =
  let b = start_backend () in
  Fun.protect
    ~finally:(fun () -> ignore (stop_backend b))
    (fun () ->
      let client =
        Serve.Transport_socket.Client.connect (Serve.Transport_socket.Unix_path b.sock)
      in
      let send l =
        Alcotest.(check bool) ("send " ^ l) true
          (Serve.Transport_socket.Client.send client l)
      in
      send {|{"id":1,"op":"ping"}|};
      send {|{"id":2,"op":7}|};
      send (solve_line ~id:3 ());
      let vs = recv_lines client 3 in
      Alcotest.(check string) "ping ok" "ok" (outcome_of (find_by_id vs 1));
      let err = find_by_id vs 2 in
      Alcotest.(check string) "numeric op rejected" "error" (outcome_of err);
      Alcotest.(check (option string))
        "numeric op wire diagnostic"
        (Some {|field "op": expected a string, got a number|})
        (Option.bind (Serve.Json.member "error" err) Serve.Json.str);
      Alcotest.(check string) "solve ok" "ok" (outcome_of (find_by_id vs 3));
      (* drain over the wire: ack arrives, then the server closes *)
      send {|{"id":4,"op":"drain"}|};
      let ack = find_by_id (recv_lines client 1) 4 in
      Alcotest.(check string) "drain acked" "ok" (outcome_of ack);
      wait_until "drain-initiated eof" (fun () ->
          match Serve.Transport_socket.Client.recv client with
          | `Eof -> true
          | `Line _ | `Timeout -> false);
      Serve.Transport_socket.Client.close client)

(* ---------- Router over attached backends ---------- *)

type sink = { mutex : Mutex.t; lines : string list ref }

let make_sink () = { mutex = Mutex.create (); lines = ref [] }

let sink_reply s l = Mutex.protect s.mutex (fun () -> s.lines := l :: !(s.lines))

let sink_values s =
  List.rev_map parse_json (Mutex.protect s.mutex (fun () -> !(s.lines)))

let with_two_backend_router f =
  let b0 = start_backend () and b1 = start_backend () in
  let attach name (b : backend) =
    Serve.Router.Attach { name; addr = Serve.Transport_socket.Unix_path b.sock }
  in
  let router =
    Serve.Router.create
      ~cfg:{ (Serve.Router.default_config ()) with Serve.Router.vnodes = 512 }
      ~events:(fun _ -> ())
      [ attach "backend-0" b0; attach "backend-1" b1 ]
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Serve.Router.await_drain router);
      (* the fleet drain fanned a drain op to both backends; their
         cores wind down on their own *)
      ignore (stop_backend b0);
      ignore (stop_backend b1))
    (fun () -> f router (b0, b1))

let backend_field v =
  match Option.bind (Serve.Json.member "backend" v) Serve.Json.str with
  | Some b -> b
  | None -> Alcotest.failf "response without backend field: %s" (Serve.Json.to_string v)

let test_router_shards_and_dedupes () =
  with_two_backend_router (fun router _ ->
      let s = make_sink () in
      let submit l = Serve.Router.submit router ~reply:(sink_reply s) l in
      (* two requests for the same instance plus one distinct: the
         twins must land on one backend and share its dedupe table or
         cache; nothing reaches the other shard for that key *)
      submit (solve_line ~id:1 ());
      submit (solve_line ~id:2 ());
      submit (solve_line ~id:3 ~nodes:16 ());
      wait_until "3 solve answers" (fun () -> List.length (sink_values s) >= 3);
      let vs = sink_values s in
      List.iter
        (fun id ->
          Alcotest.(check string)
            (Printf.sprintf "id %d ok" id)
            "ok"
            (outcome_of (find_by_id vs id)))
        [ 1; 2; 3 ];
      let b1 = backend_field (find_by_id vs 1) in
      Alcotest.(check string) "equal instances, one shard" b1
        (backend_field (find_by_id vs 2));
      let shared =
        List.exists
          (fun id ->
            match Serve.Json.member "telemetry" (find_by_id vs id) with
            | Some tele ->
              Serve.Json.member "dedup" tele = Some (Serve.Json.Bool true)
              || Serve.Json.member "cache_hit" tele = Some (Serve.Json.Bool true)
            | None -> false)
          [ 1; 2 ]
      in
      Alcotest.(check bool) "twin deduped or cache-hit" true shared;
      (* fan-outs aggregate over both backends *)
      submit {|{"id":10,"op":"ping"}|};
      wait_until "ping answer" (fun () -> List.length (sink_values s) >= 4);
      let pong = find_by_id (sink_values s) 10 in
      Alcotest.(check string) "ping ok" "ok" (outcome_of pong);
      (match Serve.Json.member "backends" pong with
      | Some bs ->
        Alcotest.(check (option int)) "ping total" (Some 2)
          (Option.bind (Serve.Json.member "total" bs) Serve.Json.int_);
        Alcotest.(check (option int)) "ping ok count" (Some 2)
          (Option.bind (Serve.Json.member "ok" bs) Serve.Json.int_)
      | None -> Alcotest.fail "ping without backends aggregate");
      submit {|{"id":11,"op":"stats"}|};
      wait_until "stats answer" (fun () -> List.length (sink_values s) >= 5);
      let stats = find_by_id (sink_values s) 11 in
      match
        Option.bind (Serve.Json.member "stats" stats) (Serve.Json.member "backends")
      with
      | Some (Serve.Json.Obj fields) ->
        Alcotest.(check (list string))
          "stats carry both backends" [ "backend-0"; "backend-1" ]
          (List.sort compare (List.map fst fields))
      | _ -> Alcotest.failf "stats missing backends: %s" (Serve.Json.to_string stats))

let test_router_policy_passthrough () =
  with_two_backend_router (fun router _ ->
      let s = make_sink () in
      (* a hinted solve crosses the router unchanged and the backend's
         wire-exact policy annotation survives the trip back *)
      Serve.Router.submit router ~reply:(sink_reply s)
        (Printf.sprintf {|{"id":31,"model_csv":%s,"nodes":32,"policy":"failure"}|}
           (Serve.Json.to_string (Serve.Json.Str model_csv)));
      wait_until "hinted solve answer" (fun () -> sink_values s <> []);
      let v = find_by_id (sink_values s) 31 in
      Alcotest.(check string) "hinted solve ok" "ok" (outcome_of v);
      Alcotest.(check bool) "policy annotation passes the router" true
        (Serve.Json.member "policy" v
        = Some
            (Serve.Json.Obj
               [
                 ("scenario", Serve.Json.Str "failure");
                 ("scheduler", Serve.Json.Str "stealing");
               ])))

let test_router_resolve_passthrough () =
  with_two_backend_router (fun router _ ->
      let s = make_sink () in
      let single = Serve.Json.to_string (Serve.Json.Str "alpha,4,100,0.001,1,0.5") in
      (* a solve and a resolve of the same base must shard by the same
         fingerprint, so the resolve lands where the history lives *)
      Serve.Router.submit router ~reply:(sink_reply s)
        (Printf.sprintf {|{"id":41,"model_csv":%s,"nodes":32}|} single);
      Serve.Router.submit router ~reply:(sink_reply s)
        (Printf.sprintf {|{"id":42,"v":2,"op":"resolve","model_csv":%s,"nodes":32,"prev":[8]}|}
           single);
      wait_until "solve + resolve answers" (fun () -> List.length (sink_values s) >= 2);
      let vs = sink_values s in
      let solve = find_by_id vs 41 and resolve = find_by_id vs 42 in
      Alcotest.(check string) "solve ok" "ok" (outcome_of solve);
      Alcotest.(check string) "resolve ok" "ok" (outcome_of resolve);
      Alcotest.(check (option string)) "certified unchanged" (Some "unchanged")
        (Option.bind (Serve.Json.member "resolve" resolve) Serve.Json.str);
      Alcotest.(check bool) "version survives the router" true
        (Serve.Json.member "v" resolve = Some (Serve.Json.Num 2.));
      Alcotest.(check string) "same shard as the solve" (backend_field solve)
        (backend_field resolve))

let test_router_drain_rejects () =
  with_two_backend_router (fun router _ ->
      let s = make_sink () in
      Serve.Router.initiate_drain router;
      Alcotest.(check bool) "draining" true (Serve.Router.draining router);
      Serve.Router.submit router ~reply:(sink_reply s) (solve_line ~id:21 ());
      wait_until "draining rejection" (fun () -> sink_values s <> []);
      Alcotest.(check string) "solve refused while draining" "draining"
        (outcome_of (find_by_id (sink_values s) 21)))

let test_router_attached_death_shrinks_ring () =
  let b0 = start_backend () and b1 = start_backend () in
  let attach name (b : backend) =
    Serve.Router.Attach { name; addr = Serve.Transport_socket.Unix_path b.sock }
  in
  let router =
    Serve.Router.create
      ~events:(fun _ -> ())
      [ attach "backend-0" b0; attach "backend-1" b1 ]
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Serve.Router.await_drain router);
      ignore (stop_backend b0);
      ignore (stop_backend b1))
    (fun () ->
      let s = make_sink () in
      let submit l = Serve.Router.submit router ~reply:(sink_reply s) l in
      (* kill backend-1 out from under the router: an attached death
         shrinks the ring instead of respawning *)
      ignore (stop_backend b1);
      let next_id = ref 100 in
      wait_until "router notices the death" (fun () ->
          incr next_id;
          submit (Printf.sprintf {|{"id":%d,"op":"ping"}|} !next_id);
          List.exists
            (fun v ->
              Serve.Json.member "id" v = Some (Serve.Json.Num (float_of_int !next_id))
              &&
              match Serve.Json.member "backends" v with
              | Some bs ->
                Option.bind (Serve.Json.member "ok" bs) Serve.Json.int_ = Some 1
              | None -> false)
            (sink_values s));
      (* every distinct key now shards to the survivor and still solves *)
      let ids = [ 201; 202; 203; 204 ] in
      List.iteri (fun i id -> submit (solve_line ~id ~nodes:(16 + i) ())) ids;
      wait_until "solves answered by the survivor" (fun () ->
          List.for_all
            (fun id ->
              List.exists
                (fun v ->
                  Serve.Json.member "id" v
                  = Some (Serve.Json.Num (float_of_int id)))
                (sink_values s))
            ids);
      let vs = sink_values s in
      List.iter
        (fun id ->
          let v = find_by_id vs id in
          Alcotest.(check string) (Printf.sprintf "id %d ok" id) "ok" (outcome_of v);
          Alcotest.(check string)
            (Printf.sprintf "id %d on the survivor" id)
            "backend-0" (backend_field v))
        ids)

let test_router_drain_report () =
  let b0 = start_backend () and b1 = start_backend () in
  let router =
    Serve.Router.create
      ~events:(fun _ -> ())
      [
        Attach { name = "backend-0"; addr = Serve.Transport_socket.Unix_path b0.sock };
        Attach { name = "backend-1"; addr = Serve.Transport_socket.Unix_path b1.sock };
      ]
  in
  let s = make_sink () in
  Serve.Router.submit router ~reply:(sink_reply s) (solve_line ~id:1 ());
  wait_until "answer before drain" (fun () -> sink_values s <> []);
  let report = Serve.Router.await_drain router in
  Alcotest.(check string) "router report solver" "route"
    report.Engine.Run_report.solver;
  Alcotest.(check string) "router report status" "drained"
    report.Engine.Run_report.status;
  ignore (stop_backend b0);
  ignore (stop_backend b1);
  Alcotest.(check bool) "draining after await" true (Serve.Router.draining router)

let () =
  Alcotest.run "fleet"
    [
      ( "ring",
        [
          Alcotest.test_case "deterministic" `Quick test_ring_deterministic;
          Alcotest.test_case "dedup + errors" `Quick test_ring_dedup_and_errors;
          Alcotest.test_case "balance" `Quick test_ring_balance;
          Alcotest.test_case "membership stability" `Quick test_ring_stability;
        ] );
      ( "protocol",
        [ Alcotest.test_case "numeric op diagnostic" `Quick test_numeric_op_message ] );
      ( "socket",
        [
          Alcotest.test_case "addr parse" `Quick test_socket_addr_parse;
          Alcotest.test_case "e2e + drain" `Quick test_socket_e2e;
        ] );
      ( "router",
        [
          Alcotest.test_case "shards + dedupes + fan-out" `Quick
            test_router_shards_and_dedupes;
          Alcotest.test_case "policy passthrough" `Quick test_router_policy_passthrough;
          Alcotest.test_case "resolve passthrough" `Quick test_router_resolve_passthrough;
          Alcotest.test_case "drain rejects" `Quick test_router_drain_rejects;
          Alcotest.test_case "attached death shrinks ring" `Quick
            test_router_attached_death_shrinks_ring;
          Alcotest.test_case "drain report" `Quick test_router_drain_report;
        ] );
    ]
