(* Tests for lib/audit: the independent checker must accept honest
   certificates, reject every corrupted one with a typed violation, the
   poll-fuse fault injection must be deterministic and sticky, and a
   mini stress sweep must come back clean. *)

let check_rejects msg pred verdict =
  match verdict with
  | Ok () -> Alcotest.failf "%s: checker accepted a corrupted certificate" msg
  | Error vs ->
    if not (List.exists pred vs) then
      Alcotest.failf "%s: expected violation missing; got: %s" msg (Audit.summary verdict)

(* one honest certified solve, reused by every mutation test *)
let solved =
  lazy
    (let p = Audit.Instances.generate ~seed:11 in
     match Minlp.Oa.solve p with
     | Ok c -> (p, c.Engine.Solver_intf.cert)
     | Error st -> Alcotest.failf "solve failed: %s" (Minlp.Solution.status_to_string st))

let witness cert =
  match cert.Engine.Certificate.witness with
  | Some w -> Array.copy w
  | None -> Alcotest.fail "certificate carries no witness"

let test_pristine_passes () =
  let p, cert = Lazy.force solved in
  match Audit.check_minlp p cert with
  | Ok () -> ()
  | Error _ as v -> Alcotest.failf "pristine certificate rejected: %s" (Audit.summary v)

let test_mutation_not_integral () =
  let p, cert = Lazy.force solved in
  let w = witness cert in
  w.(0) <- w.(0) +. 0.37;
  check_rejects "fractional witness"
    (function Audit.Not_integral _ -> true | _ -> false)
    (Audit.check_minlp p { cert with Engine.Certificate.witness = Some w })

let test_mutation_bound_violated () =
  let p, cert = Lazy.force solved in
  let w = witness cert in
  w.(0) <- p.Minlp.Problem.lo.(0) -. 5.;
  check_rejects "witness outside its box"
    (function Audit.Bound_violated _ -> true | _ -> false)
    (Audit.check_minlp p { cert with Engine.Certificate.witness = Some w })

let test_mutation_constraint_violated () =
  let p, cert = Lazy.force solved in
  (* every variable at its upper bound overruns the shared node pool *)
  let w = Array.map (fun hi -> hi) p.Minlp.Problem.hi in
  check_rejects "pool constraint violated"
    (function Audit.Constraint_violated _ -> true | _ -> false)
    (Audit.check_minlp p { cert with Engine.Certificate.witness = Some w })

let test_mutation_objective_claim () =
  let p, cert = Lazy.force solved in
  check_rejects "inflated objective claim"
    (function Audit.Objective_mismatch _ -> true | _ -> false)
    (Audit.check_minlp p
       { cert with Engine.Certificate.claimed_obj = cert.Engine.Certificate.claimed_obj +. 1. })

let test_mutation_bound_above_incumbent () =
  let p, cert = Lazy.force solved in
  check_rejects "lower bound claimed above the incumbent"
    (function Audit.Bound_above_incumbent _ -> true | _ -> false)
    (Audit.check_minlp p
       {
         cert with
         Engine.Certificate.claimed_bound = cert.Engine.Certificate.claimed_obj +. 10.;
       })

let test_mutation_gap_open () =
  let p, cert = Lazy.force solved in
  check_rejects "gap-closed evidence with a distant bound"
    (function Audit.Gap_open _ -> true | _ -> false)
    (Audit.check_minlp p
       {
         cert with
         Engine.Certificate.evidence = Engine.Certificate.Gap_closed;
         claimed_bound = cert.Engine.Certificate.claimed_obj -. 100.;
       })

let test_mutation_open_branches () =
  let p, cert = Lazy.force solved in
  check_rejects "cover with unexplored branches"
    (function Audit.Open_branches _ -> true | _ -> false)
    (Audit.check_minlp p
       {
         cert with
         Engine.Certificate.evidence =
           Engine.Certificate.Cover_exhausted
             { Engine.Certificate.explored = 5; pruned = 2; open_branches = 3 };
       })

let test_mutation_evidence_mismatch () =
  let p, cert = Lazy.force solved in
  check_rejects "optimal claimed on incumbent-only evidence"
    (function Audit.Evidence_mismatch _ -> true | _ -> false)
    (Audit.check_minlp p
       { cert with Engine.Certificate.evidence = Engine.Certificate.Incumbent_only })

let test_mutation_missing_witness () =
  let p, cert = Lazy.force solved in
  check_rejects "optimal claimed without a witness"
    (function Audit.Missing_witness -> true | _ -> false)
    (Audit.check_minlp p { cert with Engine.Certificate.witness = None })

let test_mutation_witness_dimension () =
  let p, cert = Lazy.force solved in
  let w = Array.append (witness cert) [| 0. |] in
  check_rejects "witness of the wrong dimension"
    (function Audit.Witness_dimension _ -> true | _ -> false)
    (Audit.check_minlp p { cert with Engine.Certificate.witness = Some w })

(* ---------- poll-fuse fault injection ---------- *)

let test_poll_fuse_deterministic () =
  let b =
    Engine.Budget.arm (Engine.Budget.make ~poll_fuse:(3, Engine.Budget.Deadline) ())
  in
  Alcotest.(check bool) "poll 1 clean" true (Engine.Budget.check b = None);
  Alcotest.(check bool) "poll 2 clean" true (Engine.Budget.check b = None);
  Alcotest.(check bool) "poll 3 trips" true
    (Engine.Budget.check b = Some Engine.Budget.Deadline);
  Alcotest.(check bool) "sticky" true (Engine.Budget.check b = Some Engine.Budget.Deadline)

let test_poll_fuse_inspect_does_not_charge () =
  let b =
    Engine.Budget.arm (Engine.Budget.make ~poll_fuse:(2, Engine.Budget.Cancelled) ())
  in
  Alcotest.(check bool) "inspect before any poll" true (Engine.Budget.inspect b = None);
  Alcotest.(check bool) "poll 1 clean" true (Engine.Budget.check b = None);
  (* inspecting repeatedly must not move the fuse *)
  Alcotest.(check bool) "inspect still clean" true (Engine.Budget.inspect b = None);
  Alcotest.(check bool) "inspect still clean (again)" true (Engine.Budget.inspect b = None);
  Alcotest.(check bool) "poll 2 trips" true
    (Engine.Budget.check b = Some Engine.Budget.Cancelled);
  (* once tripped, inspect sees the sticky verdict *)
  Alcotest.(check bool) "inspect sees tripped fuse" true
    (Engine.Budget.inspect b = Some Engine.Budget.Cancelled)

(* a solver driven into a tripped fuse must not claim a proven status,
   and its certificate must carry the budget stop *)
let test_fused_solve_not_optimal () =
  let p = Audit.Instances.generate ~seed:11 in
  let budget =
    Engine.Budget.arm (Engine.Budget.make ~poll_fuse:(5, Engine.Budget.Deadline) ())
  in
  (match Minlp.Oa.solve ~budget p with
  | Ok c -> (
    (match c.Engine.Solver_intf.value.Minlp.Solution.status with
    | Minlp.Solution.Optimal -> Alcotest.fail "optimal claimed although the fuse tripped"
    | _ -> ());
    match Audit.check_minlp p c.Engine.Solver_intf.cert with
    | Ok () -> ()
    | Error _ as v ->
      Alcotest.failf "fused certificate rejected: %s" (Audit.summary v))
  | Error _ -> ())

(* ---------- mini stress sweep ---------- *)

let test_stress_clean () =
  let outcome = Audit.Stress.run ~seed:7 ~trials:12 () in
  if not (Audit.Stress.clean outcome) then
    Alcotest.failf "stress sweep not clean: %s"
      (String.concat "; " outcome.Audit.Stress.failures)

let test_stress_deterministic () =
  let a = Audit.Stress.run ~seed:9 ~trials:6 () in
  let b = Audit.Stress.run ~seed:9 ~trials:6 () in
  Alcotest.(check int) "same optimal claims" a.Audit.Stress.optimal_claims
    b.Audit.Stress.optimal_claims;
  Alcotest.(check int) "same differential runs" a.Audit.Stress.differential_runs
    b.Audit.Stress.differential_runs

(* ---------- unified solver API smoke ---------- *)

let test_unified_lp () =
  let p = Lp.Lp_problem.make ~num_vars:2 () in
  let p = Lp.Lp_problem.set_objective p [| 1.; 1. |] in
  let p =
    Lp.Lp_problem.add_constraints p
      [
        { Lp.Lp_problem.coeffs = [ (0, 1.); (1, 2.) ]; sense = Lp.Lp_problem.Ge; rhs = 4. };
        { Lp.Lp_problem.coeffs = [ (0, 3.); (1, 1.) ]; sense = Lp.Lp_problem.Ge; rhs = 6. };
      ]
  in
  match Lp.Simplex.solve p with
  | Ok c -> (
    match Audit.check_lp p c.Engine.Solver_intf.cert with
    | Ok () -> ()
    | Error _ as v -> Alcotest.failf "lp certificate rejected: %s" (Audit.summary v))
  | Error st -> Alcotest.failf "lp solve failed: %s" (Engine.Status.to_string st)

let test_unified_nlp () =
  let p =
    Nlp.Nlp_problem.make ~dim:2
      ~f:(fun x -> (x.(0) *. x.(0)) +. (x.(1) *. x.(1)))
      ~lo:[| -5.; -5. |] ~hi:[| 5.; 5. |]
      ~constraints:[ Nlp.Nlp_problem.eq (fun x -> x.(0) +. x.(1) -. 2.) ]
      ()
  in
  match Nlp.Auglag.solve p with
  | Ok c -> (
    match Audit.check_nlp p c.Engine.Solver_intf.cert with
    | Ok () -> ()
    | Error _ as v -> Alcotest.failf "nlp certificate rejected: %s" (Audit.summary v))
  | Error st -> Alcotest.failf "nlp solve failed: %s" (Engine.Status.to_string st)

let test_unified_minlp_agree () =
  let p = Audit.Instances.generate ~seed:21 in
  let solve name f =
    match f () with
    | Ok c ->
      (match Audit.check_minlp p c.Engine.Solver_intf.cert with
      | Ok () -> ()
      | Error _ as v ->
        Alcotest.failf "%s certificate rejected: %s" name (Audit.summary v));
      c.Engine.Solver_intf.value.Minlp.Solution.obj
    | Error st ->
      Alcotest.failf "%s solve failed: %s" name (Minlp.Solution.status_to_string st)
  in
  let oa = solve "oa" (fun () -> Minlp.Oa.solve p) in
  let bnb = solve "bnb" (fun () -> Minlp.Bnb.solve p) in
  let multi = solve "oa-multi" (fun () -> Minlp.Oa_multi.solve p) in
  let close a b = Float.abs (a -. b) <= 0.01 *. (1. +. Float.abs a) in
  Alcotest.(check bool) "oa vs bnb agree" true (close oa bnb);
  Alcotest.(check bool) "oa vs oa-multi agree" true (close oa multi)

(* ---------- ε-reoptimality certificates ---------- *)

let sens_cls ?allowed ?(n_min = 1) ?(n_max = 32) ~count law =
  { Audit.Sensitivity.law; count; n_min; n_max; allowed }

let alpha_law = Scaling_law.make ~a:100. ~b:0.001 ~c:1. ~d:0.5

let test_sensitivity_certifies_optimal () =
  (* 4 tasks on 32 nodes: 8 each is the continuous optimum too, so the
     gap against the relaxation bound is essentially zero *)
  let clss = [ sens_cls ~count:4 alpha_law ] in
  match Audit.Sensitivity.check ~n_total:32 ~incumbent:[| 8 |] clss with
  | Audit.Sensitivity.Certified cert ->
    let open Audit.Sensitivity in
    Alcotest.(check bool) "bound below incumbent" true
      (cert.relaxation_bound <= cert.incumbent_obj +. 1e-9);
    Alcotest.(check bool) "tiny gap" true (cert.gap_rel < 1e-6);
    Alcotest.(check (float 1e-6)) "incumbent makespan" 13.008 cert.incumbent_obj
  | Audit.Sensitivity.Rejected { reason; _ } ->
    Alcotest.failf "optimal incumbent rejected: %s" reason

let test_sensitivity_rejects_stale () =
  (* 4 nodes per task doubles the makespan; the certificate must come
     back with the gap spelled out, not just a refusal *)
  let clss = [ sens_cls ~count:4 alpha_law ] in
  match Audit.Sensitivity.check ~n_total:32 ~incumbent:[| 4 |] clss with
  | Audit.Sensitivity.Certified _ -> Alcotest.fail "stale incumbent certified"
  | Audit.Sensitivity.Rejected { certificate = None; reason } ->
    Alcotest.failf "rejection lost its certificate: %s" reason
  | Audit.Sensitivity.Rejected { certificate = Some cert; reason } ->
    Alcotest.(check bool) "reason names the gap" true
      (String.length reason > 0
      && String.sub reason 0 3 = "gap");
    Alcotest.(check bool) "gap well above eps" true
      (cert.Audit.Sensitivity.gap_rel > cert.Audit.Sensitivity.eps)

let test_sensitivity_bound_below_minlp () =
  (* the relaxation bound must stay below what the integer solver
     achieves, on a genuinely multi-class instance *)
  let beta_law = Scaling_law.make ~a:50. ~b:0.002 ~c:0.9 ~d:0.2 in
  let clss = [ sens_cls ~count:4 alpha_law; sens_cls ~count:2 beta_law ] in
  let bound = Audit.Sensitivity.relaxation_bound ~n_total:48 clss in
  let specs =
    List.map
      (fun (name, count, law) ->
        let cls = Hslb.Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes) in
        let fit =
          { Hslb.Fitting.law; r2 = 1.0; rmse = 0.0; observations = [||] }
        in
        Hslb.Alloc_model.spec_of ~n_max:32 { Hslb.Classes.cls; fit })
      [ ("alpha", 4, alpha_law); ("beta", 2, beta_law) ]
  in
  match Hslb.Alloc_model.solve ~n_total:48 specs with
  | Error st -> Alcotest.failf "minlp failed: %s" (Minlp.Solution.status_to_string st)
  | Ok alloc ->
    Alcotest.(check bool)
      (Printf.sprintf "bound %.6f <= minlp %.6f" bound alloc.Hslb.Alloc_model.predicted_makespan)
      true
      (bound <= alloc.Hslb.Alloc_model.predicted_makespan +. 1e-9)

let test_sensitivity_rejects_infeasible () =
  let check_reason msg incumbent clss ~n_total expect =
    match Audit.Sensitivity.check ~n_total ~incumbent clss with
    | Audit.Sensitivity.Certified _ -> Alcotest.failf "%s: certified" msg
    | Audit.Sensitivity.Rejected { certificate = Some _; _ } ->
      Alcotest.failf "%s: infeasible incumbent got a certificate" msg
    | Audit.Sensitivity.Rejected { certificate = None; reason } ->
      Alcotest.(check string) msg expect reason
  in
  check_reason "box violation" [| 40 |]
    [ sens_cls ~count:4 alpha_law ]
    ~n_total:200 "incumbent class 0 uses 40 nodes outside [1, 32]";
  check_reason "budget violation" [| 16 |]
    [ sens_cls ~count:4 alpha_law ]
    ~n_total:32 "incumbent uses 64 nodes, budget is 32";
  check_reason "allowed violation" [| 8 |]
    [ sens_cls ~allowed:[ 2; 4; 16 ] ~count:4 alpha_law ]
    ~n_total:64 "incumbent class 0 uses 8 nodes not in allowed list"

let test_sensitivity_validation () =
  Alcotest.check_raises "empty classes"
    (Invalid_argument "Audit.Sensitivity: empty class list") (fun () ->
      ignore (Audit.Sensitivity.relaxation_bound ~n_total:8 []));
  Alcotest.check_raises "negative eps"
    (Invalid_argument "Audit.Sensitivity.check: eps must be >= 0") (fun () ->
      ignore
        (Audit.Sensitivity.check ~eps:(-0.1) ~n_total:8 ~incumbent:[| 1 |]
           [ sens_cls ~count:1 alpha_law ]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Audit.Sensitivity.check: incumbent has 2 entries for 1 classes")
    (fun () ->
      ignore
        (Audit.Sensitivity.check ~n_total:8 ~incumbent:[| 1; 1 |]
           [ sens_cls ~count:1 alpha_law ]));
  Alcotest.check_raises "bad class box"
    (Invalid_argument "Audit.Sensitivity: class 0 has n_min 5 > n_max 2") (fun () ->
      ignore
        (Audit.Sensitivity.relaxation_bound ~n_total:8
           [ sens_cls ~n_min:5 ~n_max:2 ~count:1 alpha_law ]))

let () =
  Alcotest.run "audit"
    [
      ( "checker",
        [
          Alcotest.test_case "pristine certificate passes" `Quick test_pristine_passes;
          Alcotest.test_case "fractional witness" `Quick test_mutation_not_integral;
          Alcotest.test_case "witness outside box" `Quick test_mutation_bound_violated;
          Alcotest.test_case "constraint violated" `Quick test_mutation_constraint_violated;
          Alcotest.test_case "objective claim" `Quick test_mutation_objective_claim;
          Alcotest.test_case "bound above incumbent" `Quick
            test_mutation_bound_above_incumbent;
          Alcotest.test_case "gap left open" `Quick test_mutation_gap_open;
          Alcotest.test_case "open branches" `Quick test_mutation_open_branches;
          Alcotest.test_case "evidence mismatch" `Quick test_mutation_evidence_mismatch;
          Alcotest.test_case "missing witness" `Quick test_mutation_missing_witness;
          Alcotest.test_case "witness dimension" `Quick test_mutation_witness_dimension;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "poll fuse deterministic and sticky" `Quick
            test_poll_fuse_deterministic;
          Alcotest.test_case "inspect does not charge the fuse" `Quick
            test_poll_fuse_inspect_does_not_charge;
          Alcotest.test_case "fused solve never claims optimal" `Quick
            test_fused_solve_not_optimal;
          Alcotest.test_case "mini stress sweep clean" `Quick test_stress_clean;
          Alcotest.test_case "stress sweep deterministic" `Quick test_stress_deterministic;
        ] );
      ( "unified api",
        [
          Alcotest.test_case "lp solve certified" `Quick test_unified_lp;
          Alcotest.test_case "nlp solve certified" `Quick test_unified_nlp;
          Alcotest.test_case "minlp solvers certified and agree" `Quick
            test_unified_minlp_agree;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "certifies optimal incumbent" `Quick
            test_sensitivity_certifies_optimal;
          Alcotest.test_case "rejects stale incumbent" `Quick test_sensitivity_rejects_stale;
          Alcotest.test_case "bound below minlp" `Quick test_sensitivity_bound_below_minlp;
          Alcotest.test_case "rejects infeasible incumbent" `Quick
            test_sensitivity_rejects_infeasible;
          Alcotest.test_case "validation messages" `Quick test_sensitivity_validation;
        ] );
    ]
