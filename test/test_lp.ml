(* Unit and property tests for the LP library (two-phase simplex). *)

open Lp

let feq ?(eps = 1e-7) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a +. Float.abs b)

let check_float ?(eps = 1e-7) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let status_name = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iteration_limit"

let check_status msg expected actual =
  if expected <> actual then
    Alcotest.failf "%s: expected %s, got %s" msg (status_name expected) (status_name actual)

let le coeffs rhs = { Lp_problem.coeffs; sense = Lp_problem.Le; rhs }
let ge coeffs rhs = { Lp_problem.coeffs; sense = Lp_problem.Ge; rhs }
let eq coeffs rhs = { Lp_problem.coeffs; sense = Lp_problem.Eq; rhs }

(* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> (4, 0), obj 12 *)
let test_max_basic () =
  let p = Lp_problem.make ~minimize:false ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 3.; 2. |] in
  let p = Lp_problem.add_constraints p [ le [ (0, 1.); (1, 1.) ] 4.; le [ (0, 1.); (1, 3.) ] 6. ] in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 12. s.obj;
  check_float "x" 4. s.x.(0);
  check_float "y" 0. s.x.(1)

(* min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (8/5, 6/5), obj 14/5 *)
let test_min_ge () =
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p = Lp_problem.add_constraints p [ ge [ (0, 1.); (1, 2.) ] 4.; ge [ (0, 3.); (1, 1.) ] 6. ] in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 2.8 s.obj

let test_equality () =
  (* min 2x + 3y s.t. x + y = 10, x <= 6 -> x=6, y=4, obj 24 *)
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 2.; 3. |] in
  let p = Lp_problem.set_bounds p 0 ~lo:0. ~hi:6. in
  let p = Lp_problem.add_constraint p (eq [ (0, 1.); (1, 1.) ] 10.) in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 24. s.obj;
  check_float "x" 6. s.x.(0);
  check_float "y" 4. s.x.(1)

let test_infeasible () =
  let p = Lp_problem.make ~num_vars:1 () in
  let p = Lp_problem.add_constraints p [ ge [ (0, 1.) ] 5.; le [ (0, 1.) ] 3. ] in
  let s = Simplex.run p in
  check_status "status" Simplex.Infeasible s.status

let test_infeasible_bounds () =
  (* bounds force x in [2,3] but constraint demands x >= 10 *)
  let p = Lp_problem.make ~num_vars:1 () in
  let p = Lp_problem.set_bounds p 0 ~lo:2. ~hi:3. in
  let p = Lp_problem.add_constraint p (ge [ (0, 1.) ] 10.) in
  let s = Simplex.run p in
  check_status "status" Simplex.Infeasible s.status

let test_unbounded () =
  let p = Lp_problem.make ~minimize:false ~num_vars:1 () in
  let p = Lp_problem.set_objective p [| 1. |] in
  let s = Simplex.run p in
  check_status "status" Simplex.Unbounded s.status

let test_free_variable () =
  (* min x with x free and x >= -7 via constraint -> x = -7 *)
  let p = Lp_problem.make ~num_vars:1 () in
  let p = Lp_problem.set_bounds p 0 ~lo:neg_infinity ~hi:infinity in
  let p = Lp_problem.set_objective p [| 1. |] in
  let p = Lp_problem.add_constraint p (ge [ (0, 1.) ] (-7.)) in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "x" (-7.) s.x.(0)

let test_negative_lower_bound () =
  (* min x + y, x in [-5, 5], y in [-2, 2], x + y >= -4 -> obj -4 *)
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_bounds p 0 ~lo:(-5.) ~hi:5. in
  let p = Lp_problem.set_bounds p 1 ~lo:(-2.) ~hi:2. in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p = Lp_problem.add_constraint p (ge [ (0, 1.); (1, 1.) ] (-4.)) in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" (-4.) s.obj

let test_upper_bounded_only () =
  (* max x, x <= 3 via variable bound only, lo = -inf *)
  let p = Lp_problem.make ~minimize:false ~num_vars:1 () in
  let p = Lp_problem.set_bounds p 0 ~lo:neg_infinity ~hi:3. in
  let p = Lp_problem.set_objective p [| 1. |] in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "x" 3. s.x.(0)

let test_degenerate () =
  (* classic degenerate LP still terminates and finds the optimum:
     max 10x1 - 57x2 - 9x3 - 24x4 (Beale-like); bounded by x1 <= 1 row *)
  let p = Lp_problem.make ~minimize:false ~num_vars:4 () in
  let p = Lp_problem.set_objective p [| 10.; -57.; -9.; -24. |] in
  let p =
    Lp_problem.add_constraints p
      [
        le [ (0, 0.5); (1, -5.5); (2, -2.5); (3, 9.) ] 0.;
        le [ (0, 0.5); (1, -1.5); (2, -0.5); (3, 1.) ] 0.;
        le [ (0, 1.) ] 1.;
      ]
  in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 1. s.obj

let test_solution_feasibility () =
  let p = Lp_problem.make ~num_vars:3 () in
  let p = Lp_problem.set_objective p [| 1.; 2.; 3. |] in
  let p =
    Lp_problem.add_constraints p
      [ ge [ (0, 1.); (1, 1.); (2, 1.) ] 10.; le [ (0, 1.); (1, -1.) ] 4.; eq [ (2, 1.) ] 2. ]
  in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  Alcotest.(check bool) "feasible" true (Lp_problem.feasible p s.x)

let test_bad_inputs () =
  Alcotest.check_raises "bounds crossed" (Invalid_argument "Lp_problem.set_bounds: lo > hi")
    (fun () -> ignore (Lp_problem.set_bounds (Lp_problem.make ~num_vars:1 ()) 0 ~lo:2. ~hi:1.));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Lp_problem.add_constraint: index out of range") (fun () ->
      ignore (Lp_problem.add_constraint (Lp_problem.make ~num_vars:1 ()) (le [ (3, 1.) ] 0.)))

(* ---------- flat kernel vs reference implementation ---------- *)

(* a random LP around a known feasible point, shared by the witness
   property and the differential property below *)
let random_lp rng nv nc =
  let x0 = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:0. ~hi:10.) in
  let p = Lp_problem.make ~num_vars:nv () in
  let c = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:(-5.) ~hi:5.) in
  let p = Lp_problem.set_objective p c in
  let rows =
    List.init nc (fun _ ->
        let coeffs =
          List.init nv (fun j -> (j, Numerics.Rng.uniform rng ~lo:(-3.) ~hi:3.))
        in
        let lhs = List.fold_left (fun acc (j, a) -> acc +. (a *. x0.(j))) 0. coeffs in
        match Numerics.Rng.int rng 3 with
        | 0 -> le coeffs (lhs +. Numerics.Rng.float rng 5.)
        | 1 -> ge coeffs (lhs -. Numerics.Rng.float rng 5.)
        | _ -> eq coeffs lhs)
  in
  let p = Lp_problem.add_constraints p rows in
  let p =
    List.fold_left (fun p j -> Lp_problem.set_bounds p j ~lo:0. ~hi:100.) p
      (List.init nv Fun.id)
  in
  (p, x0)

let bits = Int64.bits_of_float

(* the flat-tableau kernel must replay the reference implementation
   exactly: same pivot sequence, same status, and bit-for-bit the same
   solution vector and objective *)
let prop_flat_matches_reference =
  QCheck.Test.make ~name:"flat simplex replays the reference bit-for-bit" ~count:150
    QCheck.(pair (pair (int_range 1 6) (int_range 1 8)) (int_range 0 100_000))
    (fun ((nv, nc), seed) ->
      let p, _ = random_lp (Numerics.Rng.create seed) nv nc in
      let log_flat = ref [] and log_ref = ref [] in
      let s_flat = Simplex.run ~pivot_log:log_flat p in
      let s_ref = Simplex_reference.run ~pivot_log:log_ref p in
      if s_flat.status <> s_ref.status then
        QCheck.Test.fail_reportf "status: flat %s, reference %s" (status_name s_flat.status)
          (status_name s_ref.status);
      if !log_flat <> !log_ref then
        QCheck.Test.fail_reportf "pivot sequences diverge (%d vs %d pivots)"
          (List.length !log_flat) (List.length !log_ref);
      if bits s_flat.obj <> bits s_ref.obj then
        QCheck.Test.fail_reportf "objective bits: flat %.17g, reference %.17g" s_flat.obj
          s_ref.obj;
      Array.iteri
        (fun j v ->
          if bits v <> bits s_ref.x.(j) then
            QCheck.Test.fail_reportf "x.(%d) bits: flat %.17g, reference %.17g" j v
              s_ref.x.(j))
        s_flat.x;
      true)

(* ---------- presolve ---------- *)

let reduced_of msg p =
  match Presolve.reduce p with
  | `Reduced r -> r
  | `Infeasible -> Alcotest.failf "%s: unexpected `Infeasible" msg
  | `Solved _ -> Alcotest.failf "%s: unexpected `Solved" msg

let test_presolve_empty_rows () =
  (* a constant row within tolerance is dropped; a violated one is
     proof of infeasibility *)
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p = Lp_problem.add_constraints p [ le [] 5.; le [ (0, 1.); (1, 1.) ] 4. ] in
  let r = reduced_of "feasible empty row" p in
  Alcotest.(check int) "empty row dropped" 1 (Presolve.rows_dropped r);
  let bad = Lp_problem.add_constraint p (le [] (-3.)) in
  match Presolve.reduce bad with
  | `Infeasible -> ()
  | `Solved _ | `Reduced _ -> Alcotest.fail "violated constant row must be infeasible"

let test_presolve_singleton_tightens () =
  (* 2x <= 4 folds into the box (x <= 2) and the row disappears *)
  let p = Lp_problem.make ~minimize:false ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p = Lp_problem.set_bounds p 1 ~lo:0. ~hi:1. in
  let p = Lp_problem.add_constraints p [ le [ (0, 2.) ] 4.; le [ (0, 1.); (1, 1.) ] 50. ] in
  let r = reduced_of "singleton" p in
  Alcotest.(check int) "singleton row dropped" 1 (Presolve.rows_dropped r);
  let s = Simplex.run (Presolve.reduced r) in
  check_status "reduced solves" Simplex.Optimal s.status;
  let x = Presolve.recover r s.x in
  check_float "x bounded by tightened box" 2. x.(0);
  check_float "recover keeps free vars" 1. x.(1)

let test_presolve_fixed_substitution () =
  (* lo = hi pins x1; its contribution moves into the rhs and the
     reduced problem has one fewer column *)
  let p = Lp_problem.make ~num_vars:3 () in
  let p = Lp_problem.set_objective p [| 1.; 5.; 1. |] in
  let p = Lp_problem.set_bounds p 1 ~lo:2. ~hi:2. in
  let p =
    Lp_problem.add_constraints p
      [ ge [ (0, 1.); (1, 1.); (2, 1.) ] 7.; le [ (0, 1.); (2, 1.) ] 100. ]
  in
  let r = reduced_of "fixed" p in
  Alcotest.(check int) "one var fixed" 1 (Presolve.vars_fixed r);
  Alcotest.(check int) "reduced dimension" 2 (Presolve.reduced r).Lp_problem.num_vars;
  let s = Simplex.run (Presolve.reduced r) in
  check_status "reduced solves" Simplex.Optimal s.status;
  let x = Presolve.recover r s.x in
  check_float "fixed var restored" 2. x.(1);
  (* x0 + x2 >= 5 after substitution, objective x0 + x2 minimal at 5 *)
  check_float "recovered point satisfies original rows" 5. (x.(0) +. x.(2));
  Alcotest.(check bool) "feasible in original space" true (Lp_problem.feasible p x)

let test_presolve_all_fixed_solved () =
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_bounds p 0 ~lo:1. ~hi:1. in
  let p = Lp_problem.set_bounds p 1 ~lo:3. ~hi:3. in
  let p = Lp_problem.add_constraint p (le [ (0, 1.); (1, 1.) ] 4.) in
  (match Presolve.reduce p with
  | `Solved x ->
    check_float "x0" 1. x.(0);
    check_float "x1" 3. x.(1)
  | `Infeasible | `Reduced _ -> Alcotest.fail "fully pinned feasible LP must be `Solved");
  let p_bad = Lp_problem.set_bounds p 1 ~lo:3.5 ~hi:3.5 in
  match Presolve.reduce p_bad with
  | `Infeasible -> ()
  | `Solved _ | `Reduced _ -> Alcotest.fail "pinned point violating a row must be infeasible"

let test_presolve_scaling_exact () =
  (* power-of-two equilibration touches exponents only: scaled
     coefficients are exactly representable rescalings and the solved
     objective matches the unscaled solve to the last bit *)
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p =
    Lp_problem.add_constraints p
      [ ge [ (0, 1024.); (1, 512.) ] 2048.; ge [ (0, 0.125); (1, 0.25) ] 0.5 ]
  in
  let r = reduced_of "scaling" p in
  let pr = Presolve.reduced r in
  Array.iter
    (fun (row : Lp_problem.constr) ->
      let maxabs =
        List.fold_left (fun acc (_, a) -> Float.max acc (Float.abs a)) 0. row.coeffs
      in
      Alcotest.(check bool)
        (Printf.sprintf "row equilibrated (maxabs %g)" maxabs)
        true
        (maxabs >= 0.5 && maxabs < 1.))
    pr.Lp_problem.constraints;
  let s_scaled = Simplex.run pr in
  let s_plain = Simplex.run p in
  check_status "scaled status" s_plain.status s_scaled.status;
  Alcotest.(check bool) "objective bits unchanged by scaling" true
    (bits s_scaled.obj = bits s_plain.obj)

let test_with_bounds () =
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p = Lp_problem.add_constraint p (ge [ (0, 1.); (1, 1.) ] 1.) in
  let q = Lp_problem.with_bounds p ~lo:[| 0.5; 0. |] ~hi:[| 10.; 10. |] in
  let s = Simplex.run q in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj respects swapped box" 1. s.obj;
  Alcotest.(check bool) "x0 honors replaced lower bound" true (s.x.(0) >= 0.5);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Lp_problem.with_bounds: bound length mismatch") (fun () ->
      ignore (Lp_problem.with_bounds p ~lo:[| 0. |] ~hi:[| 1.; 2. |]));
  Alcotest.check_raises "crossed bounds"
    (Invalid_argument "Lp_problem.with_bounds: lo > hi") (fun () ->
      ignore (Lp_problem.with_bounds p ~lo:[| 0.; 3. |] ~hi:[| 1.; 2. |]))

(* property: for random LPs constructed around a known feasible point x0,
   the solver returns a feasible solution at least as good as x0 *)
let prop_solver_dominates_witness =
  QCheck.Test.make ~name:"simplex dominates known feasible point" ~count:100
    QCheck.(pair (pair (int_range 1 6) (int_range 1 8)) (int_range 0 100_000))
    (fun ((nv, nc), seed) ->
      let rng = Numerics.Rng.create seed in
      let x0 = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:0. ~hi:10.) in
      let p = Lp_problem.make ~num_vars:nv () in
      let c = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:(-5.) ~hi:5.) in
      let p = Lp_problem.set_objective p c in
      let rows =
        List.init nc (fun _ ->
            let coeffs =
              List.init nv (fun j -> (j, Numerics.Rng.uniform rng ~lo:(-3.) ~hi:3.))
            in
            let lhs = List.fold_left (fun acc (j, a) -> acc +. (a *. x0.(j))) 0. coeffs in
            (* randomly Le with slack or Ge with slack, always satisfied by x0 *)
            if Numerics.Rng.bool rng then le coeffs (lhs +. Numerics.Rng.float rng 5.)
            else ge coeffs (lhs -. Numerics.Rng.float rng 5.))
      in
      (* keep it bounded: x_j <= 100 *)
      let p = Lp_problem.add_constraints p rows in
      let p =
        List.fold_left (fun p j -> Lp_problem.set_bounds p j ~lo:0. ~hi:100.) p
          (List.init nv Fun.id)
      in
      let s = Simplex.run p in
      match s.status with
      | Simplex.Optimal ->
        Lp_problem.feasible ~tol:1e-5 p s.x && s.obj <= Lp_problem.objective_value p x0 +. 1e-6
      | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> false)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_solver_dominates_witness; prop_flat_matches_reference ]
  in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "max basic" `Quick test_max_basic;
          Alcotest.test_case "min with >=" `Quick test_min_ge;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "infeasible rows" `Quick test_infeasible;
          Alcotest.test_case "infeasible bounds" `Quick test_infeasible_bounds;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "negative lower bound" `Quick test_negative_lower_bound;
          Alcotest.test_case "upper bound, free below" `Quick test_upper_bounded_only;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "solution feasibility" `Quick test_solution_feasibility;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "empty rows" `Quick test_presolve_empty_rows;
          Alcotest.test_case "singleton tightening" `Quick test_presolve_singleton_tightens;
          Alcotest.test_case "fixed-variable substitution" `Quick
            test_presolve_fixed_substitution;
          Alcotest.test_case "all vars fixed" `Quick test_presolve_all_fixed_solved;
          Alcotest.test_case "power-of-two scaling is exact" `Quick
            test_presolve_scaling_exact;
          Alcotest.test_case "with_bounds" `Quick test_with_bounds;
        ] );
      ("properties", qsuite);
    ]
