(* Unit and property tests for the LP library (two-phase simplex). *)

open Lp

let feq ?(eps = 1e-7) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a +. Float.abs b)

let check_float ?(eps = 1e-7) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let status_name = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iteration_limit"

let check_status msg expected actual =
  if expected <> actual then
    Alcotest.failf "%s: expected %s, got %s" msg (status_name expected) (status_name actual)

let le coeffs rhs = { Lp_problem.coeffs; sense = Lp_problem.Le; rhs }
let ge coeffs rhs = { Lp_problem.coeffs; sense = Lp_problem.Ge; rhs }
let eq coeffs rhs = { Lp_problem.coeffs; sense = Lp_problem.Eq; rhs }

(* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> (4, 0), obj 12 *)
let test_max_basic () =
  let p = Lp_problem.make ~minimize:false ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 3.; 2. |] in
  let p = Lp_problem.add_constraints p [ le [ (0, 1.); (1, 1.) ] 4.; le [ (0, 1.); (1, 3.) ] 6. ] in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 12. s.obj;
  check_float "x" 4. s.x.(0);
  check_float "y" 0. s.x.(1)

(* min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (8/5, 6/5), obj 14/5 *)
let test_min_ge () =
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p = Lp_problem.add_constraints p [ ge [ (0, 1.); (1, 2.) ] 4.; ge [ (0, 3.); (1, 1.) ] 6. ] in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 2.8 s.obj

let test_equality () =
  (* min 2x + 3y s.t. x + y = 10, x <= 6 -> x=6, y=4, obj 24 *)
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_objective p [| 2.; 3. |] in
  let p = Lp_problem.set_bounds p 0 ~lo:0. ~hi:6. in
  let p = Lp_problem.add_constraint p (eq [ (0, 1.); (1, 1.) ] 10.) in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 24. s.obj;
  check_float "x" 6. s.x.(0);
  check_float "y" 4. s.x.(1)

let test_infeasible () =
  let p = Lp_problem.make ~num_vars:1 () in
  let p = Lp_problem.add_constraints p [ ge [ (0, 1.) ] 5.; le [ (0, 1.) ] 3. ] in
  let s = Simplex.run p in
  check_status "status" Simplex.Infeasible s.status

let test_infeasible_bounds () =
  (* bounds force x in [2,3] but constraint demands x >= 10 *)
  let p = Lp_problem.make ~num_vars:1 () in
  let p = Lp_problem.set_bounds p 0 ~lo:2. ~hi:3. in
  let p = Lp_problem.add_constraint p (ge [ (0, 1.) ] 10.) in
  let s = Simplex.run p in
  check_status "status" Simplex.Infeasible s.status

let test_unbounded () =
  let p = Lp_problem.make ~minimize:false ~num_vars:1 () in
  let p = Lp_problem.set_objective p [| 1. |] in
  let s = Simplex.run p in
  check_status "status" Simplex.Unbounded s.status

let test_free_variable () =
  (* min x with x free and x >= -7 via constraint -> x = -7 *)
  let p = Lp_problem.make ~num_vars:1 () in
  let p = Lp_problem.set_bounds p 0 ~lo:neg_infinity ~hi:infinity in
  let p = Lp_problem.set_objective p [| 1. |] in
  let p = Lp_problem.add_constraint p (ge [ (0, 1.) ] (-7.)) in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "x" (-7.) s.x.(0)

let test_negative_lower_bound () =
  (* min x + y, x in [-5, 5], y in [-2, 2], x + y >= -4 -> obj -4 *)
  let p = Lp_problem.make ~num_vars:2 () in
  let p = Lp_problem.set_bounds p 0 ~lo:(-5.) ~hi:5. in
  let p = Lp_problem.set_bounds p 1 ~lo:(-2.) ~hi:2. in
  let p = Lp_problem.set_objective p [| 1.; 1. |] in
  let p = Lp_problem.add_constraint p (ge [ (0, 1.); (1, 1.) ] (-4.)) in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" (-4.) s.obj

let test_upper_bounded_only () =
  (* max x, x <= 3 via variable bound only, lo = -inf *)
  let p = Lp_problem.make ~minimize:false ~num_vars:1 () in
  let p = Lp_problem.set_bounds p 0 ~lo:neg_infinity ~hi:3. in
  let p = Lp_problem.set_objective p [| 1. |] in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "x" 3. s.x.(0)

let test_degenerate () =
  (* classic degenerate LP still terminates and finds the optimum:
     max 10x1 - 57x2 - 9x3 - 24x4 (Beale-like); bounded by x1 <= 1 row *)
  let p = Lp_problem.make ~minimize:false ~num_vars:4 () in
  let p = Lp_problem.set_objective p [| 10.; -57.; -9.; -24. |] in
  let p =
    Lp_problem.add_constraints p
      [
        le [ (0, 0.5); (1, -5.5); (2, -2.5); (3, 9.) ] 0.;
        le [ (0, 0.5); (1, -1.5); (2, -0.5); (3, 1.) ] 0.;
        le [ (0, 1.) ] 1.;
      ]
  in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  check_float "obj" 1. s.obj

let test_solution_feasibility () =
  let p = Lp_problem.make ~num_vars:3 () in
  let p = Lp_problem.set_objective p [| 1.; 2.; 3. |] in
  let p =
    Lp_problem.add_constraints p
      [ ge [ (0, 1.); (1, 1.); (2, 1.) ] 10.; le [ (0, 1.); (1, -1.) ] 4.; eq [ (2, 1.) ] 2. ]
  in
  let s = Simplex.run p in
  check_status "status" Simplex.Optimal s.status;
  Alcotest.(check bool) "feasible" true (Lp_problem.feasible p s.x)

let test_bad_inputs () =
  Alcotest.check_raises "bounds crossed" (Invalid_argument "Lp_problem.set_bounds: lo > hi")
    (fun () -> ignore (Lp_problem.set_bounds (Lp_problem.make ~num_vars:1 ()) 0 ~lo:2. ~hi:1.));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Lp_problem.add_constraint: index out of range") (fun () ->
      ignore (Lp_problem.add_constraint (Lp_problem.make ~num_vars:1 ()) (le [ (3, 1.) ] 0.)))

(* property: for random LPs constructed around a known feasible point x0,
   the solver returns a feasible solution at least as good as x0 *)
let prop_solver_dominates_witness =
  QCheck.Test.make ~name:"simplex dominates known feasible point" ~count:100
    QCheck.(pair (pair (int_range 1 6) (int_range 1 8)) (int_range 0 100_000))
    (fun ((nv, nc), seed) ->
      let rng = Numerics.Rng.create seed in
      let x0 = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:0. ~hi:10.) in
      let p = Lp_problem.make ~num_vars:nv () in
      let c = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:(-5.) ~hi:5.) in
      let p = Lp_problem.set_objective p c in
      let rows =
        List.init nc (fun _ ->
            let coeffs =
              List.init nv (fun j -> (j, Numerics.Rng.uniform rng ~lo:(-3.) ~hi:3.))
            in
            let lhs = List.fold_left (fun acc (j, a) -> acc +. (a *. x0.(j))) 0. coeffs in
            (* randomly Le with slack or Ge with slack, always satisfied by x0 *)
            if Numerics.Rng.bool rng then le coeffs (lhs +. Numerics.Rng.float rng 5.)
            else ge coeffs (lhs -. Numerics.Rng.float rng 5.))
      in
      (* keep it bounded: x_j <= 100 *)
      let p = Lp_problem.add_constraints p rows in
      let p =
        List.fold_left (fun p j -> Lp_problem.set_bounds p j ~lo:0. ~hi:100.) p
          (List.init nv Fun.id)
      in
      let s = Simplex.run p in
      match s.status with
      | Simplex.Optimal ->
        Lp_problem.feasible ~tol:1e-5 p s.x && s.obj <= Lp_problem.objective_value p x0 +. 1e-6
      | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> false)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_solver_dominates_witness ] in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "max basic" `Quick test_max_basic;
          Alcotest.test_case "min with >=" `Quick test_min_ge;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "infeasible rows" `Quick test_infeasible;
          Alcotest.test_case "infeasible bounds" `Quick test_infeasible_bounds;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "negative lower bound" `Quick test_negative_lower_bound;
          Alcotest.test_case "upper bound, free below" `Quick test_upper_bounded_only;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "solution feasibility" `Quick test_solution_feasibility;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
        ] );
      ("properties", qsuite);
    ]
