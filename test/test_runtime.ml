(* Runtime subsystem tests: worker pool, solve cache + fingerprints,
   portfolio racing, cross-domain cancellation, and the model-store
   error-reporting satellite. *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------- Config ---------- *)

let test_config_clamps () =
  let before = Runtime.Config.jobs () in
  Runtime.Config.set_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Runtime.Config.jobs ());
  Runtime.Config.set_jobs 3;
  Alcotest.(check int) "set" 3 (Runtime.Config.jobs ());
  Runtime.Config.set_jobs before;
  Alcotest.(check bool) "recommended positive" true (Runtime.Config.recommended () >= 1)

let test_config_parse () =
  Alcotest.(check bool) "plain" true (Runtime.Config.parse "4" = Ok 4);
  Alcotest.(check bool) "trimmed" true (Runtime.Config.parse " 8 " = Ok 8);
  List.iter
    (fun bad ->
      match Runtime.Config.parse bad with
      | Ok n -> Alcotest.failf "accepted %S as %d" bad n
      | Error msg ->
        Alcotest.(check bool) (bad ^ " names the expectation") true
          (contains_substring msg "positive integer"))
    [ "0"; "-2"; "banana"; ""; "2.5" ]

let test_config_from_env_warns () =
  let warned = ref [] in
  let warn msg = warned := msg :: !warned in
  (* an invalid value must fall back to 1 *loudly*, not silently *)
  Unix.putenv Runtime.Config.env_var "banana";
  Alcotest.(check int) "invalid falls back to 1" 1 (Runtime.Config.from_env ~warn ());
  (match !warned with
  | [ msg ] ->
    Alcotest.(check bool) "names the variable" true
      (contains_substring msg Runtime.Config.env_var);
    Alcotest.(check bool) "quotes the offending value" true
      (contains_substring msg "banana")
  | l -> Alcotest.failf "expected exactly one warning, got %d" (List.length l));
  warned := [];
  Unix.putenv Runtime.Config.env_var "3";
  Alcotest.(check int) "valid value honoured" 3 (Runtime.Config.from_env ~warn ());
  Alcotest.(check int) "no warning on valid input" 0 (List.length !warned);
  (* the environment persists for the rest of the test binary *)
  Unix.putenv Runtime.Config.env_var "1"

(* ---------- Pool ---------- *)

let test_pool_preserves_order () =
  let items = List.init 20 Fun.id in
  (* later items finish first, so completion order is the reverse of
     submission order — results must still come back in input order *)
  let f i =
    Unix.sleepf (0.002 *. float_of_int (19 - i));
    i * i
  in
  let seq = List.map f items in
  Alcotest.(check (list int)) "jobs=1" seq (Runtime.Pool.map ~jobs:1 f items);
  Alcotest.(check (list int)) "jobs=4" seq (Runtime.Pool.map ~jobs:4 f items);
  Alcotest.(check (list int)) "more jobs than items" seq (Runtime.Pool.map ~jobs:64 f items);
  Alcotest.(check (list int)) "empty" [] (Runtime.Pool.map ~jobs:4 f [])

let test_pool_reraises_first_exception () =
  let thunks =
    [
      (fun () -> 1);
      (fun () -> failwith "boom-second");
      (fun () -> failwith "boom-third");
      (fun () -> 4);
    ]
  in
  (match Runtime.Pool.run ~jobs:4 thunks with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> Alcotest.(check string) "lowest index wins" "boom-second" msg);
  match Runtime.Pool.run ~jobs:1 thunks with
  | _ -> Alcotest.fail "expected an exception (sequential)"
  | exception Failure msg -> Alcotest.(check string) "sequential too" "boom-second" msg

(* kept non-tail so the frame survives into the recorded backtrace *)
let raise_in_worker () =
  ignore (failwith "bt-probe" : unit);
  ()

let test_pool_preserves_backtraces () =
  (* set before spawning: worker domains inherit the flag *)
  Printexc.record_backtrace true;
  match Runtime.Pool.run ~jobs:2 [ (fun () -> Unix.sleepf 0.005); raise_in_worker ] with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    Alcotest.(check string) "payload intact" "bt-probe" msg;
    let bt = Printexc.get_backtrace () in
    (* a bare [raise] at the re-raise site would reset the trace to
       pool.ml; the raise_with_backtrace path must keep the
       worker-domain frames that actually raised *)
    Alcotest.(check bool) "worker frame survives the domain boundary" true
      (contains_substring bt "test_runtime")

(* the width policy is pure data: pin the decisions that guard against
   core starvation (domains beyond the physical cores thrash a shared
   machine rather than speed it up) *)
let test_pool_decide () =
  let open Runtime.Pool in
  Alcotest.(check bool) "one core is sequential, whatever jobs says" true
    (decide ~cores:1 ~jobs:64 ~tasks:100 = Sequential);
  Alcotest.(check bool) "requested width clamps to cores" true
    (decide ~cores:4 ~jobs:64 ~tasks:100 = Parallel 4);
  Alcotest.(check bool) "width never exceeds the task count" true
    (decide ~cores:8 ~jobs:8 ~tasks:3 = Parallel 3);
  Alcotest.(check bool) "a single task never spawns" true
    (decide ~cores:8 ~jobs:8 ~tasks:1 = Sequential);
  Alcotest.(check bool) "no tasks, no domains" true
    (decide ~cores:8 ~jobs:8 ~tasks:0 = Sequential);
  Alcotest.(check bool) "jobs=1 forces sequential" true
    (decide ~cores:8 ~jobs:1 ~tasks:10 = Sequential)

(* ---------- Cache ---------- *)

let test_cache_lru_eviction () =
  let c = Runtime.Cache.create ~capacity:3 () in
  Runtime.Cache.put c "a" 1;
  Runtime.Cache.put c "b" 2;
  Runtime.Cache.put c "c" 3;
  (* touch "a" so "b" is now least recently used *)
  Alcotest.(check (option int)) "a cached" (Some 1) (Runtime.Cache.find c "a");
  Runtime.Cache.put c "d" 4;
  Alcotest.(check (option int)) "b evicted" None (Runtime.Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Runtime.Cache.find c "a");
  Alcotest.(check (option int)) "d present" (Some 4) (Runtime.Cache.find c "d");
  Alcotest.(check int) "length at capacity" 3 (Runtime.Cache.length c);
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ]
    (Runtime.Cache.keys_by_recency c);
  Alcotest.(check int) "hits" 3 (Runtime.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Runtime.Cache.misses c);
  Runtime.Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Runtime.Cache.length c);
  Alcotest.(check int) "counters kept" 3 (Runtime.Cache.hits c);
  match Runtime.Cache.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

let test_cache_refresh_on_put () =
  let c = Runtime.Cache.create ~capacity:2 () in
  Runtime.Cache.put c "a" 1;
  Runtime.Cache.put c "b" 2;
  Runtime.Cache.put c "a" 10;
  (* refreshing "a" made "b" the LRU entry *)
  Runtime.Cache.put c "c" 3;
  Alcotest.(check (option int)) "refreshed value" (Some 10) (Runtime.Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Runtime.Cache.find c "b")

(* ---------- shared fitted-class helpers ---------- *)

let fitted_of_law ~name ~count law =
  let cls =
    Hslb.Classes.make ~name ~count (fun ~nodes -> Scaling_law.eval_int law nodes)
  in
  List.hd
    (Hslb.Classes.gather_and_fit ~rng:(Numerics.Rng.create 11)
       ~sizes:[ 1; 2; 4; 8; 16; 64; 256 ] ~reps:1 [ cls ])

let e6_specs ?allowed ?(classes = 6) () =
  List.init classes (fun i ->
      let law =
        Scaling_law.make
          ~a:(150. +. (170. *. float_of_int i))
          ~b:1e-6
          ~c:(0.78 +. (0.035 *. float_of_int (i mod 6)))
          ~d:(0.3 +. (0.4 *. float_of_int i))
      in
      let fc = fitted_of_law ~name:(Printf.sprintf "k%d" i) ~count:(1 + (i mod 3)) law in
      match allowed with
      | None -> Hslb.Alloc_model.spec_of fc
      | Some vals -> Hslb.Alloc_model.spec_of ~allowed:vals fc)

(* ---------- fingerprints ---------- *)

let test_fingerprint_injective () =
  let fp = Hslb.Alloc_model.fingerprint in
  let specs = e6_specs ~classes:2 () in
  let with_allowed vals =
    List.map (fun s -> { s with Hslb.Alloc_model.allowed = Some vals }) specs
  in
  let base = fp ~objective:Hslb.Objective.Min_max ~n_total:64 specs in
  Alcotest.(check bool) "objective distinguishes" true
    (base <> fp ~objective:Hslb.Objective.Min_sum ~n_total:64 specs);
  Alcotest.(check bool) "n_total distinguishes" true
    (base <> fp ~objective:Hslb.Objective.Min_max ~n_total:65 specs);
  Alcotest.(check bool) "allowed None vs Some" true
    (base <> fp ~objective:Hslb.Objective.Min_max ~n_total:64 (with_allowed [ 1; 2; 4 ]));
  Alcotest.(check bool) "allowed lists distinguish" true
    (fp ~objective:Hslb.Objective.Min_max ~n_total:64 (with_allowed [ 1; 2; 4 ])
    <> fp ~objective:Hslb.Objective.Min_max ~n_total:64 (with_allowed [ 1; 2 ]));
  (* the model dedups and sorts allowed lists, so the key must too *)
  Alcotest.(check string) "allowed order canonicalized"
    (fp ~objective:Hslb.Objective.Min_max ~n_total:64 (with_allowed [ 4; 2; 1 ]))
    (fp ~objective:Hslb.Objective.Min_max ~n_total:64 (with_allowed [ 1; 2; 4; 2 ]));
  (* length-prefixed names: "ab"+"c" must not collide with "a"+"bc" *)
  let law = Scaling_law.make ~a:100. ~b:1e-6 ~c:0.9 ~d:1. in
  let named n = Hslb.Alloc_model.spec_of (fitted_of_law ~name:n ~count:1 law) in
  Alcotest.(check bool) "name boundaries" true
    (fp ~objective:Hslb.Objective.Min_max ~n_total:64 [ named "ab"; named "c" ]
    <> fp ~objective:Hslb.Objective.Min_max ~n_total:64 [ named "a"; named "bc" ])

(* ---------- memoized solves ---------- *)

let test_cached_solve_identical () =
  let specs = e6_specs ~allowed:[ 1; 2; 4; 8; 16; 32 ] () in
  let n_total = 256 in
  let cache = Runtime.Cache.create () in
  let fresh =
    match Hslb.Alloc_model.solve ~n_total specs with
    | Ok a -> a
    | Error st -> Alcotest.failf "fresh failed: %s" (Minlp.Solution.status_to_string st)
  in
  let first =
    match Hslb.Alloc_model.solve ~cache ~n_total specs with
    | Ok a -> a
    | Error st -> Alcotest.failf "first failed: %s" (Minlp.Solution.status_to_string st)
  in
  let second =
    match Hslb.Alloc_model.solve ~cache ~n_total specs with
    | Ok a -> a
    | Error st -> Alcotest.failf "second failed: %s" (Minlp.Solution.status_to_string st)
  in
  Alcotest.(check int) "one miss" 1 (Runtime.Cache.misses cache);
  Alcotest.(check int) "one hit" 1 (Runtime.Cache.hits cache);
  (* the hit replays the stored allocation itself *)
  Alcotest.(check bool) "hit returns the stored record" true (first == second);
  (* and that record is bit-for-bit what an uncached solve produces *)
  Alcotest.(check (array int)) "same nodes" fresh.Hslb.Alloc_model.nodes_per_task
    second.Hslb.Alloc_model.nodes_per_task;
  Alcotest.(check bool) "same makespan bits" true
    (Int64.equal
       (Int64.bits_of_float fresh.Hslb.Alloc_model.predicted_makespan)
       (Int64.bits_of_float second.Hslb.Alloc_model.predicted_makespan));
  Alcotest.(check bool) "optimal cached" true
    (second.Hslb.Alloc_model.status = Minlp.Solution.Optimal)

let test_cache_skips_unproven () =
  (* budget-exhausted incumbents are timing luck; they must not be
     memoized as answers *)
  let specs = e6_specs ~allowed:[ 1; 2; 4; 8; 16; 32; 64; 128 ] () in
  let cache = Runtime.Cache.create () in
  let budget = Engine.Budget.arm (Engine.Budget.make ~deadline_s:0.001 ()) in
  (match Hslb.Alloc_model.solve ~cache ~budget ~n_total:512 specs with
  | Ok a ->
    Alcotest.(check bool) "exhausted as expected" true
      (match a.Hslb.Alloc_model.status with
      | Minlp.Solution.Budget_exhausted _ -> true
      | _ -> false)
  | Error _ -> ());
  Alcotest.(check int) "nothing stored" 0 (Runtime.Cache.length cache)

(* ---------- shared-budget racing primitives ---------- *)

let test_with_extra_cancel () =
  let tok = Engine.Cancel.create () in
  let base = Engine.Budget.arm (Engine.Budget.make ~max_nodes:5 ()) in
  let view = Engine.Budget.with_extra_cancel base tok in
  Alcotest.(check bool) "view starts clean" true (Engine.Budget.check view = None);
  (* counters are shared: charging the view charges the base *)
  Engine.Budget.add_nodes view 5;
  Alcotest.(check int) "shared node pool" 5 (Engine.Budget.nodes base);
  Alcotest.(check bool) "base sees the limit" true
    (Engine.Budget.check base = Some Engine.Budget.Node_limit);
  (* the extra token stops the view but not the base *)
  let tok2 = Engine.Cancel.create () in
  let base2 = Engine.Budget.arm (Engine.Budget.make ()) in
  let view2 = Engine.Budget.with_extra_cancel base2 tok2 in
  Engine.Cancel.cancel tok2;
  Alcotest.(check bool) "view cancelled" true
    (Engine.Budget.check view2 = Some Engine.Budget.Cancelled);
  Alcotest.(check bool) "base isolated" true (Engine.Budget.check base2 = None)

let test_cancel_link () =
  let parent = Engine.Cancel.create () in
  let child = Engine.Cancel.link [ parent ] in
  Alcotest.(check bool) "clean" false (Engine.Cancel.cancelled child);
  Engine.Cancel.cancel parent;
  Alcotest.(check bool) "parent propagates" true (Engine.Cancel.cancelled child);
  let parent2 = Engine.Cancel.create () in
  let child2 = Engine.Cancel.link [ parent2 ] in
  Engine.Cancel.cancel child2;
  Alcotest.(check bool) "child cancelled" true (Engine.Cancel.cancelled child2);
  Alcotest.(check bool) "no upward propagation" false (Engine.Cancel.cancelled parent2)

(* ---------- cross-domain cancellation ---------- *)

let test_cross_domain_cancel () =
  (* park an NLP-based B&B in a long run: a sweet-spotted 10-class
     model, exactly the binary-heavy structure the NLP tree is known to
     stall on (E6b excludes it for that reason) — far beyond what the
     pre-cancel window can finish. Cancel from this domain and require a
     prompt Budget_exhausted return with the warm-start incumbent
     intact. *)
  let specs = e6_specs ~classes:10 ~allowed:[ 1; 2; 4; 8; 16; 32; 64; 128; 256 ] () in
  let n_total = 1280 in
  let token = Engine.Cancel.create () in
  (* the deadline is a safety net so a broken cancel path cannot hang
     the suite; a passing run never reaches it *)
  let budget = Engine.Budget.arm (Engine.Budget.make ~deadline_s:30. ~cancel:token ()) in
  let worker =
    Domain.spawn (fun () ->
        Hslb.Alloc_model.solve ~solver:Engine.Solver_choice.Bnb ~budget ~n_total specs)
  in
  Unix.sleepf 0.06;
  Engine.Cancel.cancel token;
  let t_cancel = Unix.gettimeofday () in
  let result = Domain.join worker in
  let react_s = Unix.gettimeofday () -. t_cancel in
  Alcotest.(check bool) "unwound promptly" true (react_s < 10.);
  match result with
  | Ok alloc ->
    (match alloc.Hslb.Alloc_model.status with
    | Minlp.Solution.Budget_exhausted Minlp.Solution.Cancelled -> ()
    | Minlp.Solution.Optimal -> Alcotest.fail "solve finished before the cancel landed"
    | st -> Alcotest.failf "unexpected status %s" (Minlp.Solution.status_to_string st));
    (* the incumbent survives: a real allocation within the node budget *)
    let used = ref 0 in
    List.iteri
      (fun i (s : Hslb.Alloc_model.spec) ->
        let n = alloc.Hslb.Alloc_model.nodes_per_task.(i) in
        Alcotest.(check bool) "at least one node" true (n >= 1);
        used := !used + (n * s.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.count))
      specs;
    Alcotest.(check bool) "within node budget" true (!used <= n_total);
    Alcotest.(check bool) "finite makespan" true
      (Float.is_finite alloc.Hslb.Alloc_model.predicted_makespan)
  | Error st ->
    Alcotest.failf "incumbent lost: %s" (Minlp.Solution.status_to_string st)

(* ---------- portfolio racing ---------- *)

let test_strategy_strings () =
  Alcotest.(check bool) "auto" true (Runtime.Portfolio.strategy_of_string "auto" = Ok `Auto);
  Alcotest.(check bool) "portfolio" true
    (Runtime.Portfolio.strategy_of_string "portfolio" = Ok `Portfolio);
  Alcotest.(check bool) "race alias" true
    (Runtime.Portfolio.strategy_of_string "race" = Ok `Portfolio);
  Alcotest.(check bool) "solver name" true
    (Runtime.Portfolio.strategy_of_string "bnb" = Ok (`Single Engine.Solver_choice.Bnb));
  Alcotest.(check bool) "garbage" true
    (match Runtime.Portfolio.strategy_of_string "quantum" with
    | Error _ -> true
    | Ok _ -> false);
  List.iter
    (fun s ->
      match Runtime.Portfolio.strategy_of_string (Runtime.Portfolio.strategy_to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    [ `Auto; `Portfolio; `Single Engine.Solver_choice.Oa_multi ]

let test_race_first_final_wins () =
  (* a slow lane polls the shared budget; the fast lane's final answer
     must cancel it long before its 10 s of sleeping is up *)
  let slow budget =
    let i = ref 0 in
    while Engine.Budget.check budget = None && !i < 1000 do
      incr i;
      Unix.sleepf 0.01
    done;
    if !i >= 1000 then "slow-finished" else "slow-cancelled"
  in
  let fast _budget = "fast" in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Runtime.Portfolio.race
      ~final:(fun v -> v = "fast")
      ~better:(fun _ _ -> false)
      [ ("slow", slow); ("fast", fast) ]
  in
  Alcotest.(check string) "final lane wins" "fast" outcome.Runtime.Portfolio.winner;
  Alcotest.(check int) "winner index" 1 outcome.Runtime.Portfolio.winner_index;
  Alcotest.(check bool) "race returned promptly" true (Unix.gettimeofday () -. t0 < 5.);
  Alcotest.(check int) "both lanes reported" 2
    (List.length outcome.Runtime.Portfolio.lanes);
  match outcome.Runtime.Portfolio.lanes with
  | [ l_slow; l_fast ] ->
    Alcotest.(check bool) "slow lane unwound via the race token" true
      (l_slow.Runtime.Portfolio.outcome = Ok "slow-cancelled");
    Alcotest.(check bool) "fast lane final" true l_fast.Runtime.Portfolio.is_final
  | _ -> Alcotest.fail "lane list shape"

let test_race_best_incumbent_on_exhaustion () =
  (* nobody final: the better incumbent wins, ties keep the earlier lane *)
  let outcome =
    Runtime.Portfolio.race
      ~final:(fun _ -> false)
      ~better:(fun a b -> a > b)
      [ ("one", fun _ -> 1); ("three", fun _ -> 3); ("two", fun _ -> 2) ]
  in
  Alcotest.(check string) "best incumbent" "three" outcome.Runtime.Portfolio.winner;
  Alcotest.(check int) "value" 3 outcome.Runtime.Portfolio.value;
  (* a raising lane loses but its exception is preserved in the lanes *)
  let outcome2 =
    Runtime.Portfolio.race
      ~final:(fun _ -> false)
      ~better:(fun a b -> a > b)
      [ ("bad", fun _ -> failwith "lane-raised"); ("ok", fun _ -> 7) ]
  in
  Alcotest.(check string) "survivor wins" "ok" outcome2.Runtime.Portfolio.winner;
  (match (List.hd outcome2.Runtime.Portfolio.lanes).Runtime.Portfolio.outcome with
  | Error (Failure m) -> Alcotest.(check string) "exn kept" "lane-raised" m
  | _ -> Alcotest.fail "expected the first lane to carry its exception");
  (* every lane raising re-raises the first lane's exception *)
  match
    Runtime.Portfolio.race
      ~final:(fun _ -> false)
      ~better:(fun _ _ -> false)
      [ ("a", fun _ -> failwith "first"); ("b", fun _ -> failwith "second") ]
  with
  | (_ : int Runtime.Portfolio.outcome) -> Alcotest.fail "expected a re-raise"
  | exception Failure m -> Alcotest.(check string) "first lane's exception" "first" m

let test_race_leader_runs_on_caller () =
  (* the spawn-tax fix: the predicted-fastest lane must run inline on
     the calling domain, and a leader that proves its answer inside the
     stagger window must keep the other lanes from ever starting *)
  let caller = Domain.self () in
  let leader_domain = ref None in
  let laggard_ran = Atomic.make false in
  let outcome =
    Runtime.Portfolio.race ~stagger_s:3600.
      ~final:(fun _ -> true)
      ~better:(fun _ _ -> false)
      [
        ( "lead",
          fun _ ->
            leader_domain := Some (Domain.self ());
            42 );
        ( "laggard",
          fun _ ->
            Atomic.set laggard_ran true;
            0 );
      ]
  in
  Alcotest.(check int) "leader's value" 42 outcome.Runtime.Portfolio.value;
  Alcotest.(check string) "leader wins" "lead" outcome.Runtime.Portfolio.winner;
  Alcotest.(check bool) "leader ran on the calling domain" true
    (!leader_domain = Some caller);
  Alcotest.(check bool) "laggard never started" false (Atomic.get laggard_ran);
  (match outcome.Runtime.Portfolio.lanes with
  | [ _; l ] ->
    Alcotest.(check bool) "skipped outcome" true
      (l.Runtime.Portfolio.outcome = Error Runtime.Portfolio.Skipped);
    Alcotest.(check bool) "skipped lane has zero wall" true
      (l.Runtime.Portfolio.lane_wall_s = 0.)
  | _ -> Alcotest.fail "lane list shape");
  (* a 1-entrant race is just a call on the caller's domain *)
  let solo_domain = ref None in
  let solo =
    Runtime.Portfolio.race
      ~final:(fun _ -> false)
      ~better:(fun _ _ -> false)
      [
        ( "solo",
          fun _ ->
            solo_domain := Some (Domain.self ());
            7 );
      ]
  in
  Alcotest.(check int) "solo value" 7 solo.Runtime.Portfolio.value;
  Alcotest.(check bool) "solo lane on the calling domain" true (!solo_domain = Some caller)

let test_race_nonfinal_leader_spawns_laggards () =
  (* a leader that returns without a proven answer must hand over to
     the remaining lanes even when the stagger window never elapsed *)
  let outcome =
    Runtime.Portfolio.race ~stagger_s:3600.
      ~final:(fun v -> v = 9)
      ~better:(fun a b -> a > b)
      [ ("lead", fun _ -> 1); ("closer", fun _ -> 9) ]
  in
  Alcotest.(check string) "laggard finishes the job" "closer"
    outcome.Runtime.Portfolio.winner;
  Alcotest.(check int) "laggard's value" 9 outcome.Runtime.Portfolio.value;
  List.iter
    (fun (l : int Runtime.Portfolio.lane) ->
      Alcotest.(check bool)
        (l.Runtime.Portfolio.lane_name ^ " actually ran")
        true
        (match l.Runtime.Portfolio.outcome with Ok _ -> true | Error _ -> false))
    outcome.Runtime.Portfolio.lanes

let test_portfolio_leader_byte_identical_to_single () =
  (* with the laggards held back by a huge stagger window, a portfolio
     whose leader proves optimality is the leader: same allocation and
     objective down to the last bit as the `Single run of that solver *)
  let specs = e6_specs ~allowed:[ 1; 2; 4; 8; 16; 32 ] () in
  let n_total = 256 in
  let leader =
    match Engine.Solver_choice.all with
    | s :: _ -> s
    | [] -> Alcotest.fail "no solvers"
  in
  let single =
    match Hslb.Alloc_model.solve ~strategy:(`Single leader) ~n_total specs with
    | Ok a -> a
    | Error st -> Alcotest.failf "single failed: %s" (Minlp.Solution.status_to_string st)
  in
  let before = Runtime.Config.stagger_s () in
  Runtime.Config.set_stagger_s 3600.;
  Fun.protect ~finally:(fun () -> Runtime.Config.set_stagger_s before) @@ fun () ->
  let report = ref None in
  let portfolio =
    match Hslb.Alloc_model.solve ~strategy:`Portfolio ~race_report:report ~n_total specs with
    | Ok a -> a
    | Error st -> Alcotest.failf "portfolio failed: %s" (Minlp.Solution.status_to_string st)
  in
  Alcotest.(check bool) "same allocation" true
    (single.Hslb.Alloc_model.nodes_per_task = portfolio.Hslb.Alloc_model.nodes_per_task);
  Alcotest.(check bool) "same makespan bits" true
    (Int64.bits_of_float single.Hslb.Alloc_model.predicted_makespan
    = Int64.bits_of_float portfolio.Hslb.Alloc_model.predicted_makespan);
  match !report with
  | None -> Alcotest.fail "race report missing"
  | Some race ->
    Alcotest.(check string) "leader won" (Engine.Solver_choice.to_string leader)
      race.Engine.Run_report.winner;
    (match race.Engine.Run_report.lanes with
    | winner :: rest ->
      Alcotest.(check bool) "winner not skipped" true
        (winner.Engine.Run_report.lane_status <> "skipped");
      List.iter
        (fun (l : Engine.Run_report.lane) ->
          Alcotest.(check string)
            (l.Engine.Run_report.lane_solver ^ " skipped")
            "skipped" l.Engine.Run_report.lane_status)
        rest
    | [] -> Alcotest.fail "no lanes")

let test_portfolio_matches_best_single () =
  (* acceptance criterion: on an E6-style workload the racing portfolio
     returns the same objective as the best single-solver run *)
  let specs = e6_specs ~allowed:[ 1; 2; 4; 8; 16; 32 ] () in
  let n_total = 256 in
  let single =
    match
      Hslb.Alloc_model.solve ~strategy:(`Single Engine.Solver_choice.Oa) ~n_total specs
    with
    | Ok a -> a
    | Error st -> Alcotest.failf "single failed: %s" (Minlp.Solution.status_to_string st)
  in
  Alcotest.(check bool) "single optimal" true
    (single.Hslb.Alloc_model.status = Minlp.Solution.Optimal);
  let race_report = ref None in
  let tally = Engine.Telemetry.create () in
  let portfolio =
    match Hslb.Alloc_model.solve ~strategy:`Portfolio ~trace:tally ~race_report ~n_total specs with
    | Ok a -> a
    | Error st ->
      Alcotest.failf "portfolio failed: %s" (Minlp.Solution.status_to_string st)
  in
  Alcotest.(check bool) "portfolio optimal" true
    (portfolio.Hslb.Alloc_model.status = Minlp.Solution.Optimal);
  check_float ~eps:1e-4 "same objective" single.Hslb.Alloc_model.predicted_makespan
    portfolio.Hslb.Alloc_model.predicted_makespan;
  Alcotest.(check bool) "race work tallied" true (tally.Engine.Telemetry.lp_solves > 0);
  match !race_report with
  | None -> Alcotest.fail "race report missing"
  | Some race ->
    Alcotest.(check int) "three lanes" 3 (List.length race.Engine.Run_report.lanes);
    Alcotest.(check bool) "winner is a lane" true
      (List.exists
         (fun (l : Engine.Run_report.lane) ->
           l.Engine.Run_report.lane_solver = race.Engine.Run_report.winner)
         race.Engine.Run_report.lanes);
    List.iter
      (fun (l : Engine.Run_report.lane) ->
        Alcotest.(check bool) "lane wall clock sane" true
          (l.Engine.Run_report.lane_wall_s >= 0.
          && l.Engine.Run_report.lane_wall_s <= race.Engine.Run_report.race_wall_s +. 1.))
      race.Engine.Run_report.lanes

let test_run_report_race_json () =
  let t = Engine.Telemetry.create () in
  let race =
    {
      Engine.Run_report.winner = "oa";
      race_wall_s = 0.5;
      lanes =
        [
          {
            Engine.Run_report.lane_solver = "oa";
            lane_status = "optimal";
            lane_objective = 1.25;
            lane_wall_s = 0.5;
            lane_nodes_expanded = 3;
            lane_lp_solves = 9;
          };
        ];
    }
  in
  let r =
    Engine.Run_report.make ~solver:"portfolio" ~status:"optimal" ~objective:1.25
      ~cache_hit:true ~race ~wall_s:0.5 t
  in
  let json = Engine.Run_report.to_json r in
  List.iter
    (fun key ->
      if not (contains_substring json key) then
        Alcotest.failf "JSON missing %s in %s" key json)
    [ "\"cache_hit\":true"; "\"race\":{"; "\"winner\":\"oa\""; "\"lanes\":["; "\"nodes_expanded\":3" ];
  (* no race -> explicit null, and the csv row stays aligned *)
  let plain = Engine.Run_report.make ~solver:"oa" ~status:"optimal" ~wall_s:0.1 t in
  Alcotest.(check bool) "race null" true
    (contains_substring (Engine.Run_report.to_json plain) "\"race\":null");
  let header_cols = List.length (String.split_on_char ',' Engine.Run_report.csv_header) in
  let row_cols = List.length (String.split_on_char ',' (Engine.Run_report.to_csv_row r)) in
  Alcotest.(check int) "csv arity" header_cols row_cols

(* ---------- layout portfolio ---------- *)

let layout_inputs =
  lazy
    (let rng = Numerics.Rng.create 9 in
     let classes = Layouts.Cesm_data.benchmark_classes ~rng Layouts.Cesm_data.Deg1 in
     let fits =
       Hslb.Classes.gather_and_fit ~rng
         ~sizes:(Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max:1024 ~points:5)
         ~reps:1 classes
     in
     let comp name =
       Layouts.Component.of_fit ~name
         (List.find
            (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
            fits)
           .Hslb.Classes.fit
     in
     {
       Layouts.Layout_model.ice = comp "ice";
       lnd = comp "lnd";
       atm = comp "atm";
       ocn = comp "ocn";
     })

let test_layout_portfolio_matches_single () =
  let inputs = Lazy.force layout_inputs in
  let config = Layouts.Layout_model.default_config ~n_total:128 in
  let layout_ok = function
    | Ok (a : Layouts.Layout_model.alloc) -> a
    | Error st ->
      Alcotest.failf "layout solve failed: %s" (Minlp.Solution.status_to_string st)
  in
  let single =
    layout_ok (Layouts.Layout_model.solve Layouts.Layout_model.Hybrid config inputs)
  in
  let raced =
    layout_ok
      (Layouts.Layout_model.solve ~strategy:`Portfolio Layouts.Layout_model.Hybrid config
         inputs)
  in
  check_float ~eps:1e-4 "same predicted total" single.Layouts.Layout_model.total
    raced.Layouts.Layout_model.total;
  (* the racing path must hand back an auditable certificate *)
  Alcotest.(check bool) "portfolio certificate present" true
    (raced.Layouts.Layout_model.certificate <> None)

(* ---------- model store diagnostics ---------- *)

let test_model_store_line_numbers () =
  let text = "# name,count,a,b,c,d\n\ngood,2,10,0.001,0.9,1.5\nbad,line\n" in
  (match Hslb.Model_store.of_csv_result text with
  | Ok _ -> Alcotest.fail "malformed csv accepted"
  | Error msg ->
    Alcotest.(check bool) "names the line" true (contains_substring msg "line 4");
    Alcotest.(check bool) "quotes the content" true (contains_substring msg "bad,line");
    Alcotest.(check bool) "counts the fields" true (contains_substring msg "got 2"));
  (match Hslb.Model_store.of_csv_result "good,2,ten,0.001,0.9,1.5" with
  | Ok _ -> Alcotest.fail "non-numeric accepted"
  | Error msg ->
    Alcotest.(check bool) "line 1" true (contains_substring msg "line 1");
    Alcotest.(check bool) "blames the field" true (contains_substring msg "not a number"));
  (* the raising wrapper carries the same message *)
  (match Hslb.Model_store.of_csv "x,1,1,2,3" with
  | _ -> Alcotest.fail "of_csv accepted malformed input"
  | exception Failure msg ->
    Alcotest.(check bool) "wrapper message" true (contains_substring msg "line 1"));
  (* a clean file round-trips *)
  match Hslb.Model_store.of_csv_result "frag,3,200,1e-06,0.92,2.5\n" with
  | Error msg -> Alcotest.fail msg
  | Ok [ fc ] ->
    Alcotest.(check string) "name" "frag" fc.Hslb.Classes.cls.Hslb.Classes.name;
    Alcotest.(check int) "count" 3 fc.Hslb.Classes.cls.Hslb.Classes.count;
    check_float "a" 200. fc.Hslb.Classes.fit.Hslb.Fitting.law.Scaling_law.a;
    (match Hslb.Model_store.of_csv_result (Hslb.Model_store.to_csv [ fc ]) with
    | Ok [ fc' ] ->
      check_float "roundtrip c" fc.Hslb.Classes.fit.Hslb.Fitting.law.Scaling_law.c
        fc'.Hslb.Classes.fit.Hslb.Fitting.law.Scaling_law.c
    | Ok _ | Error _ -> Alcotest.fail "roundtrip failed")
  | Ok l -> Alcotest.failf "expected one class, got %d" (List.length l)

(* ---------- cache under contention ---------- *)

let test_cache_torture () =
  let capacity = 32 in
  let c = Runtime.Cache.create ~capacity () in
  let domains = 6 and iters = 400 in
  let value_of k = Hashtbl.hash k in
  (* 48 keys over 32 slots: constant eviction churn while every domain
     mixes hits, misses and inserts *)
  let body d () =
    let ok = ref true in
    for i = 0 to iters - 1 do
      let k = Printf.sprintf "k%d" ((i * (d + 1)) mod 48) in
      match Runtime.Cache.find c k with
      | Some v -> if v <> value_of k then ok := false
      | None -> Runtime.Cache.put c k (value_of k)
    done;
    !ok
  in
  let oks = Runtime.Pool.run ~jobs:domains (List.init domains body) in
  Alcotest.(check (list bool)) "every hit returned its key's value"
    (List.init domains (fun _ -> true))
    oks;
  Alcotest.(check int) "each find counted exactly once" (domains * iters)
    (Runtime.Cache.hits c + Runtime.Cache.misses c);
  Alcotest.(check bool) "hits occurred" true (Runtime.Cache.hits c > 0);
  Alcotest.(check bool) "misses occurred" true (Runtime.Cache.misses c > 0);
  (* LRU structural integrity after the stampede *)
  let keys = Runtime.Cache.keys_by_recency c in
  Alcotest.(check bool) "stayed bounded" true (Runtime.Cache.length c <= capacity);
  Alcotest.(check int) "recency list matches length" (Runtime.Cache.length c)
    (List.length keys);
  Alcotest.(check int) "recency list has no duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun k ->
      match Runtime.Cache.find c k with
      | Some v -> Alcotest.(check int) ("surviving entry " ^ k) (value_of k) v
      | None -> Alcotest.failf "key %s listed but not findable" k)
    keys

(* ---------- model store CSV escaping ---------- *)

let test_model_store_csv_escaping () =
  let with_name name =
    match Hslb.Model_store.of_csv_result "frag,3,200,1e-06,0.92,2.5\n" with
    | Ok [ fc ] ->
      { fc with Hslb.Classes.cls = { fc.Hslb.Classes.cls with Hslb.Classes.name } }
    | Ok _ | Error _ -> Alcotest.fail "base csv broken"
  in
  List.iter
    (fun name ->
      let fc = with_name name in
      match Hslb.Model_store.of_csv_result (Hslb.Model_store.to_csv [ fc ]) with
      | Ok [ fc' ] ->
        Alcotest.(check string)
          (Printf.sprintf "name %S round-trips" name)
          name fc'.Hslb.Classes.cls.Hslb.Classes.name
      | Ok _ -> Alcotest.fail "wrong class count after round-trip"
      | Error e -> Alcotest.failf "%S failed to re-parse: %s" name e)
    [
      "plain";
      "has,comma";
      " leading space";
      "trailing space ";
      {|embedded"quote|};
      {|",everything", at "once" |};
      "#looks-like-a-comment";
      "";
    ];
  (* a line-based format cannot represent newlines: reject at write time
     rather than silently corrupting the file *)
  List.iter
    (fun name ->
      match Hslb.Model_store.csv_name name with
      | _ -> Alcotest.failf "%S accepted despite newline" name
      | exception Invalid_argument _ -> ())
    [ "new\nline"; "carriage\rreturn" ]

let prop_csv_name_roundtrip =
  let char_gen =
    QCheck.Gen.(
      frequency
        [ (4, char_range 'a' 'z'); (3, oneofl [ ','; '"'; ' '; '#'; '.'; '-' ]) ])
  in
  let name_gen = QCheck.Gen.(string_size ~gen:char_gen (int_range 0 12)) in
  QCheck.Test.make ~name:"csv_name round-trips any newline-free name" ~count:300
    (QCheck.make name_gen ~print:(Printf.sprintf "%S"))
    (fun name ->
      let line = Hslb.Model_store.csv_name name ^ ",3,200,1e-06,0.92,2.5" in
      match Hslb.Model_store.of_csv_result line with
      | Ok [ fc ] -> fc.Hslb.Classes.cls.Hslb.Classes.name = name
      | Ok _ | Error _ -> false)

let () =
  Alcotest.run "runtime"
    [
      ( "config",
        [
          Alcotest.test_case "jobs clamp" `Quick test_config_clamps;
          Alcotest.test_case "parse" `Quick test_config_parse;
          Alcotest.test_case "from_env warns" `Quick test_config_from_env_warns;
        ] );
      ( "pool",
        [
          Alcotest.test_case "preserves order" `Quick test_pool_preserves_order;
          Alcotest.test_case "re-raises first exception" `Quick
            test_pool_reraises_first_exception;
          Alcotest.test_case "preserves backtraces" `Quick test_pool_preserves_backtraces;
          Alcotest.test_case "width policy" `Quick test_pool_decide;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "refresh on put" `Quick test_cache_refresh_on_put;
          Alcotest.test_case "fingerprint injective" `Quick test_fingerprint_injective;
          Alcotest.test_case "cached solve identical" `Quick test_cached_solve_identical;
          Alcotest.test_case "unproven not stored" `Quick test_cache_skips_unproven;
          Alcotest.test_case "concurrent torture" `Quick test_cache_torture;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "extra cancel view" `Quick test_with_extra_cancel;
          Alcotest.test_case "linked tokens" `Quick test_cancel_link;
          Alcotest.test_case "cross-domain cancel" `Quick test_cross_domain_cancel;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "strategy strings" `Quick test_strategy_strings;
          Alcotest.test_case "first final cancels" `Quick test_race_first_final_wins;
          Alcotest.test_case "leader on caller, laggards skipped" `Quick
            test_race_leader_runs_on_caller;
          Alcotest.test_case "non-final leader spawns laggards" `Quick
            test_race_nonfinal_leader_spawns_laggards;
          Alcotest.test_case "leader-won portfolio = single" `Quick
            test_portfolio_leader_byte_identical_to_single;
          Alcotest.test_case "best incumbent on exhaustion" `Quick
            test_race_best_incumbent_on_exhaustion;
          Alcotest.test_case "matches best single solver" `Quick
            test_portfolio_matches_best_single;
          Alcotest.test_case "race in run report" `Quick test_run_report_race_json;
          Alcotest.test_case "layout race parity" `Quick test_layout_portfolio_matches_single;
        ] );
      ( "model store",
        [
          Alcotest.test_case "line-numbered errors" `Quick test_model_store_line_numbers;
          Alcotest.test_case "csv name escaping" `Quick test_model_store_csv_escaping;
          QCheck_alcotest.to_alcotest prop_csv_name_roundtrip;
        ] );
    ]
