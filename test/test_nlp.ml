(* Tests for the NLP library: projected-gradient and augmented Lagrangian. *)

open Nlp
open Numerics

let check_float ?(eps = 1e-4) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ---------- Bounded ---------- *)

let test_quadratic_interior () =
  let f x = ((x.(0) -. 1.) ** 2.) +. ((x.(1) -. 2.) ** 2.) in
  let r = Bounded.minimize ~f ~lo:[| -10.; -10. |] ~hi:[| 10.; 10. |] [| 5.; 5. |] in
  Alcotest.(check bool) "converged" true r.converged;
  check_float "x0" 1. r.x.(0);
  check_float "x1" 2. r.x.(1)

let test_quadratic_active_bound () =
  (* optimum (1,2) cut off by hi = (0.5, 0.5) *)
  let f x = ((x.(0) -. 1.) ** 2.) +. ((x.(1) -. 2.) ** 2.) in
  let r = Bounded.minimize ~f ~lo:[| 0.; 0. |] ~hi:[| 0.5; 0.5 |] [| 0.1; 0.1 |] in
  check_float "x0 at bound" 0.5 r.x.(0);
  check_float "x1 at bound" 0.5 r.x.(1)

let test_rosenbrock () =
  let f x =
    let a = 1. -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100. *. b *. b)
  in
  let r =
    Bounded.minimize ~max_iter:20_000 ~f ~lo:[| -5.; -5. |] ~hi:[| 5.; 5. |] [| -1.2; 1. |]
  in
  check_float ~eps:1e-3 "rosenbrock x0" 1. r.x.(0);
  check_float ~eps:1e-3 "rosenbrock x1" 1. r.x.(1)

let test_convex_scaling_objective () =
  (* minimize the fitted performance shape a/n^c + b n + d over a box *)
  let f x = (100. /. (x.(0) ** 0.8)) +. (0.05 *. x.(0)) in
  let r = Bounded.minimize ~f ~lo:[| 1. |] ~hi:[| 10_000. |] [| 1. |] in
  (* stationary point: 80/n^1.8 = 0.05 -> n = (1600)^(1/1.8) *)
  let expected = 1600. ** (1. /. 1.8) in
  check_float ~eps:1e-3 "optimal n" expected r.x.(0)

let test_start_outside_box () =
  let f x = x.(0) *. x.(0) in
  let r = Bounded.minimize ~f ~lo:[| 2. |] ~hi:[| 7. |] [| -50. |] in
  check_float "clamped start, optimum at lower bound" 2. r.x.(0)

let test_grad_into_bit_identical () =
  (* the fused grad_into path must replay the grad path's trajectory
     exactly: same iterate bits, same objective bits, same step count *)
  let f x =
    let a = 1. -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100. *. b *. b)
  in
  let gx x =
    [|
      (-2. *. (1. -. x.(0))) -. (400. *. x.(0) *. (x.(1) -. (x.(0) *. x.(0))));
      200. *. (x.(1) -. (x.(0) *. x.(0)));
    |]
  in
  let lo = [| -5.; -5. |] and hi = [| 5.; 5. |] in
  let ra = Bounded.minimize ~max_iter:20_000 ~grad:gx ~f ~lo ~hi [| -1.2; 1. |] in
  let g_into x out =
    let g = gx x in
    out.(0) <- g.(0);
    out.(1) <- g.(1)
  in
  let rb = Bounded.minimize ~max_iter:20_000 ~grad_into:g_into ~f ~lo ~hi [| -1.2; 1. |] in
  Alcotest.(check int) "same iteration count" ra.iterations rb.iterations;
  Alcotest.(check bool) "same objective bits" true
    (Int64.bits_of_float ra.f = Int64.bits_of_float rb.f);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "x.(%d) bits" i)
        true
        (Int64.bits_of_float v = Int64.bits_of_float rb.x.(i)))
    ra.x

let test_stall_cutoff () =
  (* a flat valley the projected gradient cannot converge on within
     tol 0: without the cutoff this would burn all of max_iter *)
  let f x = Float.abs x.(0) in
  let lo = [| -1. |] and hi = [| 1. |] in
  let full = Bounded.minimize ~max_iter:5_000 ~tol:0. ~f ~lo ~hi [| 0.7 |] in
  Alcotest.(check int) "no cutoff burns the whole budget" 5_000 full.iterations;
  let r = Bounded.minimize ~max_iter:5_000 ~tol:0. ~stall_iters:25 ~f ~lo ~hi [| 0.7 |] in
  Alcotest.(check bool) "stopped early" true (r.iterations < full.iterations);
  Alcotest.(check bool) "reported unconverged" true (not r.converged)

(* ---------- Auglag ---------- *)

let test_auglag_equality () =
  (* min x² + y² s.t. x + y = 2 -> (1,1) *)
  let p =
    Nlp_problem.make ~dim:2
      ~f:(fun x -> (x.(0) *. x.(0)) +. (x.(1) *. x.(1)))
      ~constraints:[ Nlp_problem.eq (fun x -> x.(0) +. x.(1) -. 2.) ]
      ()
  in
  let r = Auglag.run p [| 0.; 0. |] in
  Alcotest.(check bool) "feasible" true (r.violation < 1e-5);
  check_float ~eps:1e-3 "x" 1. r.x.(0);
  check_float ~eps:1e-3 "y" 1. r.x.(1)

let test_auglag_inequality_active () =
  (* min (x-3)² s.t. x <= 1 -> x = 1 *)
  let p =
    Nlp_problem.make ~dim:1
      ~f:(fun x -> (x.(0) -. 3.) ** 2.)
      ~constraints:[ Nlp_problem.ineq (fun x -> x.(0) -. 1.) ]
      ()
  in
  let r = Auglag.run p [| 0. |] in
  check_float ~eps:1e-3 "x at constraint" 1. r.x.(0)

let test_auglag_inequality_inactive () =
  (* min (x-0.5)² s.t. x <= 10 -> constraint slack, x = 0.5 *)
  let p =
    Nlp_problem.make ~dim:1
      ~f:(fun x -> (x.(0) -. 0.5) ** 2.)
      ~constraints:[ Nlp_problem.ineq (fun x -> x.(0) -. 10.) ]
      ()
  in
  let r = Auglag.run p [| 5. |] in
  check_float ~eps:1e-4 "interior optimum" 0.5 r.x.(0)

(* min-max epigraph: the exact structure of the HSLB relaxation.
   min T s.t. T >= f1(n1), T >= f2(n2), n1 + n2 <= N *)
let test_auglag_minmax_relaxation () =
  let t1 n = 100. /. n and t2 n = 300. /. n in
  (* vars: T, n1, n2 *)
  let p =
    Nlp_problem.make ~dim:3
      ~f:(fun x -> x.(0))
      ~lo:[| 0.; 1.; 1. |] ~hi:[| 1e6; 100.; 100. |]
      ~constraints:
        [
          Nlp_problem.ineq ~label:"T>=t1" (fun x -> t1 x.(1) -. x.(0));
          Nlp_problem.ineq ~label:"T>=t2" (fun x -> t2 x.(2) -. x.(0));
          Nlp_problem.ineq ~label:"budget" (fun x -> x.(1) +. x.(2) -. 100.);
        ]
      ()
  in
  let r = Auglag.run p [| 50.; 50.; 50. |] in
  (* optimum: n1/n2 = 100/300 -> n1 = 25, n2 = 75, T = 4 *)
  Alcotest.(check bool) "feasible" true (r.violation < 1e-4);
  check_float ~eps:1e-2 "T" 4. r.f;
  check_float ~eps:0.05 "n1" 25. r.x.(1);
  check_float ~eps:0.05 "n2" 75. r.x.(2)

let test_auglag_with_bounds_and_constraints () =
  (* min -x - y s.t. x² + y² <= 1, 0 <= x,y <= 1 -> (√½, √½) *)
  let p =
    Nlp_problem.make ~dim:2
      ~f:(fun x -> -.x.(0) -. x.(1))
      ~lo:[| 0.; 0. |] ~hi:[| 1.; 1. |]
      ~constraints:[ Nlp_problem.ineq (fun x -> (x.(0) *. x.(0)) +. (x.(1) *. x.(1)) -. 1.) ]
      ()
  in
  let r = Auglag.run p [| 0.1; 0.1 |] in
  let s = sqrt 0.5 in
  check_float ~eps:1e-2 "x" s r.x.(0);
  check_float ~eps:1e-2 "y" s r.x.(1)

let test_violation_measure () =
  let p =
    Nlp_problem.make ~dim:1
      ~f:(fun _ -> 0.)
      ~lo:[| 0. |] ~hi:[| 1. |]
      ~constraints:[ Nlp_problem.ineq (fun x -> x.(0) -. 0.25) ]
      ()
  in
  check_float "violated by 0.75" 0.75 (Nlp_problem.violation p [| 1. |]);
  check_float "feasible" 0. (Nlp_problem.violation p [| 0.2 |])

let prop_bounded_stays_in_box =
  QCheck.Test.make ~name:"bounded solution in box" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let center = Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-5.) ~hi:5.) in
      let lo = Array.init 3 (fun _ -> Rng.uniform rng ~lo:(-2.) ~hi:0.) in
      let hi = Array.init 3 (fun _ -> Rng.uniform rng ~lo:0.5 ~hi:3.) in
      let f x =
        let acc = ref 0. in
        for i = 0 to 2 do
          acc := !acc +. ((x.(i) -. center.(i)) ** 2.)
        done;
        !acc
      in
      let r = Bounded.minimize ~f ~lo ~hi (Array.make 3 0.) in
      let ok = ref true in
      for i = 0 to 2 do
        if r.x.(i) < lo.(i) -. 1e-9 || r.x.(i) > hi.(i) +. 1e-9 then ok := false;
        (* the optimum of a separable quadratic over a box is the clamped center *)
        let expect = Float.min hi.(i) (Float.max lo.(i) center.(i)) in
        if Float.abs (r.x.(i) -. expect) > 1e-3 then ok := false
      done;
      !ok)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_bounded_stays_in_box ] in
  Alcotest.run "nlp"
    [
      ( "bounded",
        [
          Alcotest.test_case "quadratic interior" `Quick test_quadratic_interior;
          Alcotest.test_case "active bound" `Quick test_quadratic_active_bound;
          Alcotest.test_case "rosenbrock" `Quick test_rosenbrock;
          Alcotest.test_case "scaling objective" `Quick test_convex_scaling_objective;
          Alcotest.test_case "start outside box" `Quick test_start_outside_box;
          Alcotest.test_case "grad_into bit-identical" `Quick test_grad_into_bit_identical;
          Alcotest.test_case "stall cutoff" `Quick test_stall_cutoff;
        ] );
      ( "auglag",
        [
          Alcotest.test_case "equality" `Quick test_auglag_equality;
          Alcotest.test_case "active inequality" `Quick test_auglag_inequality_active;
          Alcotest.test_case "inactive inequality" `Quick test_auglag_inequality_inactive;
          Alcotest.test_case "min-max relaxation" `Quick test_auglag_minmax_relaxation;
          Alcotest.test_case "bounds + constraint" `Quick test_auglag_with_bounds_and_constraints;
          Alcotest.test_case "violation measure" `Quick test_violation_measure;
        ] );
      ("properties", qsuite);
    ]
