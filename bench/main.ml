(* Benchmark harness.

   Two parts, both driven by this one executable:

   1. Regenerate every table and figure of the evaluation (experiments
      E1–E9 from DESIGN.md) by running the full pipelines and printing
      the paper-style tables. Pass [--quick] for reduced sizes.
   2. Bechamel micro-benchmarks: one [Test.make] per experiment,
      timing that experiment's computational kernel (the fit, the MINLP
      solve, the discrete-event phase, ...). Pass [--no-bechamel] to
      skip, [--only E4] to regenerate a single experiment.

   Pass [--report FILE] to additionally run each MINLP solver once on
   the E6-style sweet-spotted allocation model with full engine
   telemetry attached and write the structured run reports (JSON array
   of Engine.Run_report) to FILE. *)

open Bechamel
open Toolkit

(* ---------- representative kernels, one per experiment ---------- *)

let fit_kernel () =
  (* E1: one performance-model fit on 10 observations *)
  let law = Scaling_law.make ~a:200. ~b:1e-5 ~c:0.9 ~d:2. in
  let obs =
    Array.of_list
      (List.map
         (fun n -> (float_of_int n, Scaling_law.eval_int law n))
         [ 1; 2; 4; 8; 12; 16; 32; 64; 128; 256 ])
  in
  let rng = Numerics.Rng.create 3 in
  ignore (Hslb.Fitting.fit_observations ~starts:4 ~rng obs)

let fitted_specs =
  lazy
    (let rng = Numerics.Rng.create 5 in
     List.init 4 (fun i ->
         let law =
           Scaling_law.make ~a:(100. +. (50. *. float_of_int i)) ~b:1e-6 ~c:0.9 ~d:1.
         in
         let cls =
           Hslb.Classes.make ~name:(Printf.sprintf "k%d" i) ~count:1 (fun ~nodes ->
               Scaling_law.eval_int law nodes)
         in
         Hslb.Alloc_model.spec_of
           (List.hd (Hslb.Classes.gather_and_fit ~rng ~sizes:[ 1; 4; 16; 64 ] ~reps:1 [ cls ]))))

let allocation_kernel objective () =
  (* E2: one allocation MINLP solve *)
  ignore (Hslb.Alloc_model.solve ~objective ~n_total:64 (Lazy.force fitted_specs))

let pipeline_setup =
  lazy
    (let machine = Machine.make ~name:"bench" ~num_nodes:64 () in
     let molecule = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 1) 8 in
     let plan = Fmo.Task.fmo2_plan (Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd) in
     (machine, plan))

let pipeline_kernel () =
  (* E3: the full gather-fit-solve planning pass on a small cluster *)
  let machine, plan = Lazy.force pipeline_setup in
  ignore
    (Hslb.Fmo_app.plan_hslb ~rng:(Numerics.Rng.create 2) machine plan ~n_total:32
       Hslb.Fmo_app.default_config)

let sim_kernel schedule () =
  (* E4: one discrete-event monomer sweep, 64 tasks on 16 groups *)
  let partition = Gddi.Group.even_partition ~total_nodes:64 ~groups:16 in
  let duration ~task ~group =
    2. /. float_of_int group.Gddi.Group.nodes *. (1. +. (0.01 *. float_of_int task))
  in
  ignore (Gddi.Sim.run_phase partition ~num_tasks:64 ~duration schedule)

let peptide_kernel () =
  (* E5: heterogeneous workload construction + LPT schedule *)
  let plan =
    Fmo.Task.fmo2_plan
      (Fmo.Fragment.fragment
         (Fmo.Molecule.random_peptide ~rng:(Numerics.Rng.create 4) 12)
         Fmo.Basis.B6_31gd)
  in
  let partition = Gddi.Group.even_partition ~total_nodes:48 ~groups:12 in
  let dimers = Fmo.Task.dimer_tasks plan in
  let predicted ~task ~group =
    Fmo.Task.scf_work_gflops dimers.(task).Fmo.Task.nbf /. float_of_int group.Gddi.Group.nodes
  in
  ignore (Gddi.Schedulers.lpt partition ~predicted ~num_tasks:(Array.length dimers))

let minlp_kernel sos () =
  (* E6: OA solve of a sweet-spotted allocation model *)
  let specs =
    List.map
      (fun s -> { s with Hslb.Alloc_model.allowed = Some [ 1; 2; 4; 8; 16; 32 ] })
      (Lazy.force fitted_specs)
  in
  let problem, _, _ =
    Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total:64 specs
  in
  ignore
    (Minlp.Oa.solve ~options:{ Minlp.Oa.default_options with branch_sos_first = sos } problem)

let gather_kernel () =
  (* E7: the gather step at 6 node counts *)
  let law = Scaling_law.make ~a:300. ~b:0. ~c:0.92 ~d:1. in
  let rng = Numerics.Rng.create 8 in
  let cls =
    Hslb.Classes.make ~name:"g" ~count:1 (fun ~nodes ->
        Scaling_law.eval_int law nodes *. Numerics.Rng.lognormal rng ~mu:0. ~sigma:0.02)
  in
  ignore (Hslb.Classes.gather cls ~sizes:[ 1; 2; 8; 32; 128; 512 ] ~reps:2)

let layout_inputs =
  lazy
    (let rng = Numerics.Rng.create 9 in
     let classes = Layouts.Cesm_data.benchmark_classes ~rng Layouts.Cesm_data.Deg1 in
     let fits =
       Hslb.Classes.gather_and_fit ~rng
         ~sizes:(Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max:1024 ~points:5)
         ~reps:1 classes
     in
     let comp name =
       Layouts.Component.of_fit ~name
         (List.find
            (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
            fits)
           .Hslb.Classes.fit
     in
     {
       Layouts.Layout_model.ice = comp "ice";
       lnd = comp "lnd";
       atm = comp "atm";
       ocn = comp "ocn";
     })

let layout_kernel layout () =
  (* E8/E9: one component-layout MINLP solve *)
  let config = Layouts.Layout_model.default_config ~n_total:128 in
  ignore (Layouts.Layout_model.solve layout config (Lazy.force layout_inputs))

let micro_tests =
  [
    ("E1/fit_observations", fit_kernel);
    ("E2/alloc_min_max", allocation_kernel Hslb.Objective.Min_max);
    ("E2/alloc_min_sum", allocation_kernel Hslb.Objective.Min_sum);
    ("E3/plan_hslb_small", pipeline_kernel);
    ("E4/sim_phase_dynamic", sim_kernel Gddi.Sim.Dynamic);
    ("E5/peptide_lpt", peptide_kernel);
    ("E6/oa_sos_branching", minlp_kernel true);
    ("E6/oa_binary_branching", minlp_kernel false);
    ("E7/gather", gather_kernel);
    ("E8/layout_hybrid", layout_kernel Layouts.Layout_model.Hybrid);
    ("E9/layout_sequential", layout_kernel Layouts.Layout_model.Fully_sequential);
  ]

let write_solver_reports path =
  let specs =
    List.map
      (fun s -> { s with Hslb.Alloc_model.allowed = Some [ 1; 2; 4; 8; 16; 32 ] })
      (Lazy.force fitted_specs)
  in
  let problem, _, _ =
    Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total:64 specs
  in
  let one choice =
    let tally = Engine.Telemetry.create () in
    let budget = Engine.Budget.arm Engine.Budget.unlimited in
    let sol =
      match choice with
      | Engine.Solver_choice.Oa -> Minlp.Oa.solve ~budget ~tally problem
      | Engine.Solver_choice.Bnb -> Minlp.Bnb.solve ~budget ~tally problem
      | Engine.Solver_choice.Oa_multi ->
        (Minlp.Oa_multi.solve ~budget ~tally problem).Minlp.Oa_multi.solution
    in
    Engine.Run_report.make
      ~solver:(Engine.Solver_choice.to_string choice)
      ~status:(Minlp.Solution.status_to_string sol.Minlp.Solution.status)
      ~objective:sol.Minlp.Solution.obj ~bound:sol.Minlp.Solution.bound
      ~wall_s:(Engine.Budget.elapsed_s budget) tally
  in
  Engine.Run_report.write_json_list path
    (List.map one Engine.Solver_choice.all);
  Format.printf "solver run reports written to %s@." path

let pretty_time ns =
  if ns < 1e3 then Printf.sprintf "%.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let run_microbenches fmt =
  Format.fprintf fmt
    "@.########## Bechamel micro-benchmarks (per-call cost of each kernel) ##########@.";
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun (name, fn) ->
      let test = Test.make ~name (Staged.stage fn) in
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Format.fprintf fmt "%-28s %s/call@." name (pretty_time t)
          | Some _ | None -> Format.fprintf fmt "%-28s (no estimate)@." name)
        (Test.elements test);
      Format.pp_print_flush fmt ())
    micro_tests

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  let find_opt key =
    let rec find = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let only = find_opt "--only" in
  let report = find_opt "--report" in
  let fmt = Format.std_formatter in
  (match report with None -> () | Some path -> write_solver_reports path);
  (match only with
  | Some id -> (
    match Experiments.Registry.find id with
    | e -> e.Experiments.Registry.run ~quick fmt
    | exception Not_found ->
      Format.fprintf fmt "unknown experiment %s; available:@." id;
      List.iter
        (fun e ->
          Format.fprintf fmt "  %s — %s@." e.Experiments.Registry.id
            e.Experiments.Registry.describes)
        Experiments.Registry.all;
      exit 1)
  | None -> Experiments.Registry.run_all ~quick fmt);
  if not no_bechamel then run_microbenches fmt
