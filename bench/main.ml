(* Benchmark harness.

   Two parts, both driven by this one executable:

   1. Regenerate every table and figure of the evaluation (experiments
      E1–E9 from DESIGN.md) by running the full pipelines and printing
      the paper-style tables. Pass [--quick] for reduced sizes.
   2. Bechamel micro-benchmarks: one [Test.make] per experiment,
      timing that experiment's computational kernel (the fit, the MINLP
      solve, the discrete-event phase, ...). Pass [--no-bechamel] to
      skip, [--only E4] to regenerate a single experiment.

   Pass [--report FILE] to additionally run each MINLP solver once on
   the E6-style sweet-spotted allocation model with full engine
   telemetry attached and write the structured run reports (JSON array
   of Engine.Run_report) to FILE. Each report carries the solver's
   certificate and the independent auditor's verdict on it.

   Pass [--audit] to audit every solver's certificate on the E6-style
   model and run a short seeded fault-injection stress sweep
   ([--seed N], [--trials N] to override); any certificate rejection
   or soundness violation makes the executable exit non-zero.

   Pass [--fleet FILE] to run the 1-vs-2-backend serving locality
   benchmark (spawned `hslb serve` processes behind an in-process
   router) and write BENCH_fleet.json. Flag spellings and semantics
   are shared with the hslb CLI via [Cli_common].

   Pass [--arena FILE] to race every scheduler family over the
   workload-scenario zoo and write the BENCH_arena.json regret matrix
   (experiment E13; validated by `hslb obs --arena-bench`).

   Pass [--kernels FILE] to time the hot-path solver kernels (flat
   simplex, closure-compiled expressions, fused SPG gradients, shared
   relaxation contexts) against their pre-optimization baselines and
   write BENCH_kernels.json (validated by `hslb obs --kernels-bench`). *)

open Bechamel
open Toolkit

(* ---------- representative kernels, one per experiment ---------- *)

let fit_kernel () =
  (* E1: one performance-model fit on 10 observations *)
  let law = Scaling_law.make ~a:200. ~b:1e-5 ~c:0.9 ~d:2. in
  let obs =
    Array.of_list
      (List.map
         (fun n -> (float_of_int n, Scaling_law.eval_int law n))
         [ 1; 2; 4; 8; 12; 16; 32; 64; 128; 256 ])
  in
  let rng = Numerics.Rng.create 3 in
  ignore (Hslb.Fitting.fit_observations ~starts:4 ~rng obs)

let fitted_specs =
  lazy
    (let rng = Numerics.Rng.create 5 in
     List.init 4 (fun i ->
         let law =
           Scaling_law.make ~a:(100. +. (50. *. float_of_int i)) ~b:1e-6 ~c:0.9 ~d:1.
         in
         let cls =
           Hslb.Classes.make ~name:(Printf.sprintf "k%d" i) ~count:1 (fun ~nodes ->
               Scaling_law.eval_int law nodes)
         in
         Hslb.Alloc_model.spec_of
           (List.hd (Hslb.Classes.gather_and_fit ~rng ~sizes:[ 1; 4; 16; 64 ] ~reps:1 [ cls ]))))

let allocation_kernel objective () =
  (* E2: one allocation MINLP solve *)
  ignore (Hslb.Alloc_model.solve ~objective ~n_total:64 (Lazy.force fitted_specs))

let pipeline_setup =
  lazy
    (let machine = Machine.make ~name:"bench" ~num_nodes:64 () in
     let molecule = Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create 1) 8 in
     let plan = Fmo.Task.fmo2_plan (Fmo.Fragment.fragment molecule Fmo.Basis.B6_31gd) in
     (machine, plan))

let pipeline_kernel () =
  (* E3: the full gather-fit-solve planning pass on a small cluster *)
  let machine, plan = Lazy.force pipeline_setup in
  ignore
    (Hslb.Fmo_app.plan_hslb ~rng:(Numerics.Rng.create 2) machine plan ~n_total:32
       Hslb.Fmo_app.default_config)

let sim_kernel schedule () =
  (* E4: one discrete-event monomer sweep, 64 tasks on 16 groups *)
  let partition = Gddi.Group.even_partition ~total_nodes:64 ~groups:16 in
  let duration ~task ~group =
    2. /. float_of_int group.Gddi.Group.nodes *. (1. +. (0.01 *. float_of_int task))
  in
  ignore (Gddi.Sim.run_phase partition ~num_tasks:64 ~duration schedule)

let peptide_kernel () =
  (* E5: heterogeneous workload construction + LPT schedule *)
  let plan =
    Fmo.Task.fmo2_plan
      (Fmo.Fragment.fragment
         (Fmo.Molecule.random_peptide ~rng:(Numerics.Rng.create 4) 12)
         Fmo.Basis.B6_31gd)
  in
  let partition = Gddi.Group.even_partition ~total_nodes:48 ~groups:12 in
  let dimers = Fmo.Task.dimer_tasks plan in
  let predicted ~task ~group =
    Fmo.Task.scf_work_gflops dimers.(task).Fmo.Task.nbf /. float_of_int group.Gddi.Group.nodes
  in
  ignore (Gddi.Schedulers.lpt partition ~predicted ~num_tasks:(Array.length dimers))

let minlp_kernel sos () =
  (* E6: OA solve of a sweet-spotted allocation model *)
  let specs =
    List.map
      (fun s -> { s with Hslb.Alloc_model.allowed = Some [ 1; 2; 4; 8; 16; 32 ] })
      (Lazy.force fitted_specs)
  in
  let problem, _, _ =
    Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total:64 specs
  in
  ignore
    (Minlp.Oa.run ~options:{ Minlp.Oa.default_options with branch_sos_first = sos } problem)

let gather_kernel () =
  (* E7: the gather step at 6 node counts *)
  let law = Scaling_law.make ~a:300. ~b:0. ~c:0.92 ~d:1. in
  let rng = Numerics.Rng.create 8 in
  let cls =
    Hslb.Classes.make ~name:"g" ~count:1 (fun ~nodes ->
        Scaling_law.eval_int law nodes *. Numerics.Rng.lognormal rng ~mu:0. ~sigma:0.02)
  in
  ignore (Hslb.Classes.gather cls ~sizes:[ 1; 2; 8; 32; 128; 512 ] ~reps:2)

let layout_inputs =
  lazy
    (let rng = Numerics.Rng.create 9 in
     let classes = Layouts.Cesm_data.benchmark_classes ~rng Layouts.Cesm_data.Deg1 in
     let fits =
       Hslb.Classes.gather_and_fit ~rng
         ~sizes:(Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max:1024 ~points:5)
         ~reps:1 classes
     in
     let comp name =
       Layouts.Component.of_fit ~name
         (List.find
            (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
            fits)
           .Hslb.Classes.fit
     in
     {
       Layouts.Layout_model.ice = comp "ice";
       lnd = comp "lnd";
       atm = comp "atm";
       ocn = comp "ocn";
     })

let layout_kernel layout () =
  (* E8/E9: one component-layout MINLP solve *)
  let config = Layouts.Layout_model.default_config ~n_total:128 in
  match Layouts.Layout_model.solve layout config (Lazy.force layout_inputs) with
  | Ok _ -> ()
  | Error st ->
    failwith ("layout bench solve failed: " ^ Minlp.Solution.status_to_string st)

let micro_tests =
  [
    ("E1/fit_observations", fit_kernel);
    ("E2/alloc_min_max", allocation_kernel Hslb.Objective.Min_max);
    ("E2/alloc_min_sum", allocation_kernel Hslb.Objective.Min_sum);
    ("E3/plan_hslb_small", pipeline_kernel);
    ("E4/sim_phase_dynamic", sim_kernel Gddi.Sim.Dynamic);
    ("E5/peptide_lpt", peptide_kernel);
    ("E6/oa_sos_branching", minlp_kernel true);
    ("E6/oa_binary_branching", minlp_kernel false);
    ("E7/gather", gather_kernel);
    ("E8/layout_hybrid", layout_kernel Layouts.Layout_model.Hybrid);
    ("E9/layout_sequential", layout_kernel Layouts.Layout_model.Fully_sequential);
  ]

let e6_problem () =
  let specs =
    List.map
      (fun s -> { s with Hslb.Alloc_model.allowed = Some [ 1; 2; 4; 8; 16; 32 ] })
      (Lazy.force fitted_specs)
  in
  let problem, _, _ =
    Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total:64 specs
  in
  problem

(* one E6-style run per solver, certified and independently audited;
   returns the report plus the audit verdict so callers can both
   serialize and gate on it *)
let solver_report problem choice =
  let tally = Engine.Telemetry.create () in
  let budget = Engine.Budget.arm Engine.Budget.unlimited in
  let sol =
    match choice with
    | Engine.Solver_choice.Oa -> Minlp.Oa.run ~budget ~tally problem
    | Engine.Solver_choice.Bnb -> Minlp.Bnb.run ~budget ~tally problem
    | Engine.Solver_choice.Oa_multi ->
      (Minlp.Oa_multi.run ~budget ~tally problem).Minlp.Oa_multi.solution
  in
  let certificate =
    Minlp.Solution.certify
      ~producer:(Engine.Solver_choice.to_string choice)
      ~budget ~minimize:problem.Minlp.Problem.minimize
      ~pruned:tally.Engine.Telemetry.nodes_pruned sol
  in
  let verdict = Cli_common.audit_minlp problem (Some certificate) in
  let report =
    Engine.Run_report.make
      ~solver:(Engine.Solver_choice.to_string choice)
      ~status:(Minlp.Solution.status_to_string sol.Minlp.Solution.status)
      ~objective:sol.Minlp.Solution.obj ~bound:sol.Minlp.Solution.bound ~certificate
      ~audit:(Cli_common.audit_outcome_string verdict)
      ~wall_s:(Engine.Budget.elapsed_s budget) tally
  in
  (report, verdict)

let write_solver_reports path =
  let problem = e6_problem () in
  let reports = List.map (fun c -> fst (solver_report problem c)) Engine.Solver_choice.all in
  Engine.Run_report.write_json_list path reports;
  Format.printf "solver run reports written to %s@." path

(* [--audit]: certify-and-check every solver on the E6 model, then a
   seeded fault-injection sweep; false on any rejection *)
let run_bench_audit ~seed ~trials =
  let problem = e6_problem () in
  let solver_ok =
    List.fold_left
      (fun acc choice ->
        let report, verdict = solver_report problem choice in
        Format.printf "%s [%s]: %s@." report.Engine.Run_report.solver
          report.Engine.Run_report.status
          (Cli_common.audit_outcome_string verdict);
        acc && Result.is_ok verdict)
      true Engine.Solver_choice.all
  in
  let outcome =
    Audit.Stress.run ~log:(fun line -> Format.printf "  %s@." line) ~seed ~trials ()
  in
  Format.printf "%a@." Audit.Stress.pp outcome;
  solver_ok && Audit.Stress.clean outcome

(* ---------- portfolio / runtime benchmark (BENCH_portfolio.json) ---------- *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let result_objective = function
  | Ok a -> a.Hslb.Alloc_model.predicted_makespan
  | Error _ -> nan

let result_status = function
  | Ok a -> Minlp.Solution.status_to_string a.Hslb.Alloc_model.status
  | Error st -> Minlp.Solution.status_to_string st

let json_num x = if Float.is_nan x then "null" else Printf.sprintf "%.6f" x

(* Per-instance wall clock of every single-solver run vs the racing
   portfolio, a cold-vs-hit cache measurement, and the quick registry at
   jobs=1 vs parallel — the machine-readable evidence behind
   docs/RUNTIME.md. *)
let write_portfolio_bench path =
  let base = Lazy.force fitted_specs in
  let sweet allowed =
    List.map (fun s -> { s with Hslb.Alloc_model.allowed = Some allowed }) base
  in
  let instances =
    [
      ("alloc4_plain_n64", base, 64);
      ("alloc4_sweet_n64", sweet [ 1; 2; 4; 8; 16; 32 ], 64);
      ("alloc4_plain_n256", base, 256);
      ("alloc4_sweet_n256", sweet [ 1; 2; 4; 8; 16; 32; 64; 128 ], 256);
    ]
  in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n  \"schema\": \"hslb-bench-portfolio-v2\",\n  \"instances\": [\n";
  List.iteri
    (fun i (name, specs, n_total) ->
      if i > 0 then Buffer.add_string b ",\n";
      let singles =
        List.map
          (fun choice ->
            let r, w =
              wall (fun () ->
                  Hslb.Alloc_model.solve ~strategy:(`Single choice) ~n_total specs)
            in
            (Engine.Solver_choice.to_string choice, r, w))
          Engine.Solver_choice.all
      in
      let race_report = ref None in
      let pr, pw =
        wall (fun () ->
            Hslb.Alloc_model.solve ~strategy:`Portfolio ~race_report ~n_total specs)
      in
      let winner =
        match !race_report with Some r -> r.Engine.Run_report.winner | None -> ""
      in
      let best_single_wall =
        List.fold_left (fun acc (_, _, w) -> Float.min acc w) infinity singles
      in
      let best_single_obj =
        List.fold_left
          (fun acc (_, r, _) ->
            let o = result_objective r in
            if Float.is_nan o then acc else Float.min acc o)
          infinity singles
      in
      let p_obj = result_objective pr in
      let objective_match =
        (not (Float.is_nan p_obj))
        && Float.abs (p_obj -. best_single_obj) <= 1e-6 *. Float.max 1. best_single_obj
      in
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": %S, \"n_total\": %d,\n     \"singles\": [" name
           n_total);
      List.iteri
        (fun j (solver, r, w) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "{\"solver\": %S, \"status\": %S, \"objective\": %s, \"wall_s\": %s}"
               solver (result_status r) (json_num (result_objective r)) (json_num w)))
        singles;
      Buffer.add_string b
        (Printf.sprintf
           "],\n\
           \     \"portfolio\": {\"winner\": %S, \"status\": %S, \"objective\": %s, \
            \"wall_s\": %s},\n\
           \     \"best_single_wall_s\": %s, \"objective_match\": %b}" winner
           (result_status pr) (json_num p_obj) (json_num pw) (json_num best_single_wall)
           objective_match))
    instances;
  Buffer.add_string b "\n  ],\n";
  (* cache: same instance solved cold then memoized *)
  let cache = Runtime.Cache.create () in
  let cache_specs = sweet [ 1; 2; 4; 8; 16; 32 ] in
  let _, cold = wall (fun () -> Hslb.Alloc_model.solve ~cache ~n_total:64 cache_specs) in
  let _, hit = wall (fun () -> Hslb.Alloc_model.solve ~cache ~n_total:64 cache_specs) in
  Buffer.add_string b
    (Printf.sprintf
       "  \"cache\": {\"instance\": \"alloc4_sweet_n64\", \"cold_wall_s\": %s, \
        \"hit_wall_s\": %s, \"hits\": %d, \"misses\": %d},\n"
       (json_num cold) (json_num hit) (Runtime.Cache.hits cache)
       (Runtime.Cache.misses cache));
  (* sharded experiment runner: quick registry, sequential vs pool.
     The registry is CPU-bound, so the pool clamps the requested width
     to the physical cores (sequential fallback at one core); record
     requested vs effective width so the artifact shows the clamp
     doing its job rather than a mysterious slowdown. *)
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let cores = Runtime.Config.cores () in
  let (), seq_w =
    wall (fun () -> Experiments.Registry.run_all ~quick:true ~jobs:1 null_fmt)
  in
  let requested_jobs = Stdlib.max 2 (Stdlib.min 4 (Runtime.Config.recommended ())) in
  let effective_jobs = Stdlib.min requested_jobs cores in
  let (), par_w =
    wall (fun () -> Experiments.Registry.run_all ~quick:true ~jobs:requested_jobs null_fmt)
  in
  Buffer.add_string b
    (Printf.sprintf
       "  \"registry_quick\": {\"cores\": %d, \"sequential_wall_s\": %s, \
        \"requested_jobs\": %d, \"effective_jobs\": %d, \"clamped\": %b, \
        \"parallel_wall_s\": %s, \"speedup\": %s, \"core_starved\": %b}\n}\n"
       cores (json_num seq_w) requested_jobs effective_jobs
       (effective_jobs < requested_jobs) (json_num par_w)
       (json_num (seq_w /. par_w))
       (effective_jobs > cores));
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "portfolio benchmark written to %s@." path

(* ---------- hot-path kernel benchmark (BENCH_kernels.json) ---------- *)

(* Each kernel pits the pre-optimization implementation of a hot path
   against the one the solvers now run, on identical inputs, and
   re-verifies the bit-identity contract the optimization claims
   (validated by `hslb obs --kernels-bench`).  Speedups are
   machine-dependent; the validator gates on the identity bits and
   sane timings, not on a magnitude. *)
let write_kernels_bench path =
  let results = Buffer.create 2048 in
  let first = ref true in
  let record ~name ~baseline ~candidate ~reps ~base_s ~cand_s ~identical =
    if not !first then Buffer.add_string results ",\n";
    first := false;
    Buffer.add_string results
      (Printf.sprintf
         "    {\"name\": %S, \"baseline\": %S, \"candidate\": %S, \"reps\": %d,\n\
         \     \"baseline_wall_s\": %s, \"candidate_wall_s\": %s, \"speedup\": %s, \
          \"identical\": %b}"
         name baseline candidate reps (json_num base_s) (json_num cand_s)
         (json_num (base_s /. cand_s))
         identical);
    Format.printf "kernel %-22s %8.4fs -> %8.4fs (%.2fx, identical=%b)@." name base_s
      cand_s (base_s /. cand_s) identical
  in
  let bits = Int64.bits_of_float in
  (* lp/simplex_dense: the reference Array.make_matrix tableau vs the
     flat float-array kernel, over a batch of random dense-ish LPs *)
  (let lps =
     List.init 16 (fun seed ->
         let rng = Numerics.Rng.create (1000 + seed) in
         let nv = 8 and nc = 12 in
         let x0 = Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:0. ~hi:10.) in
         let p = Lp.Lp_problem.make ~num_vars:nv () in
         let p =
           Lp.Lp_problem.set_objective p
             (Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:(-5.) ~hi:5.))
         in
         let rows =
           List.init nc (fun _ ->
               let coeffs =
                 List.init nv (fun j -> (j, Numerics.Rng.uniform rng ~lo:(-3.) ~hi:3.))
               in
               let lhs =
                 List.fold_left (fun acc (j, a) -> acc +. (a *. x0.(j))) 0. coeffs
               in
               if Numerics.Rng.bool rng then
                 { Lp.Lp_problem.coeffs; sense = Lp.Lp_problem.Le;
                   rhs = lhs +. Numerics.Rng.float rng 5. }
               else
                 { Lp.Lp_problem.coeffs; sense = Lp.Lp_problem.Ge;
                   rhs = lhs -. Numerics.Rng.float rng 5. })
         in
         let p = Lp.Lp_problem.add_constraints p rows in
         List.fold_left
           (fun p j -> Lp.Lp_problem.set_bounds p j ~lo:0. ~hi:100.)
           p (List.init nv Fun.id))
   in
   let reps = 40 in
   let identical =
     List.for_all
       (fun p ->
         let a = Lp.Simplex.run p and b = Lp.Simplex_reference.run p in
         a.Lp.Simplex.status = b.Lp.Simplex.status
         && bits a.Lp.Simplex.obj = bits b.Lp.Simplex.obj)
       lps
   in
   let (), base_s =
     wall (fun () ->
         for _ = 1 to reps do
           List.iter (fun p -> ignore (Lp.Simplex_reference.run p)) lps
         done)
   in
   let (), cand_s =
     wall (fun () ->
         for _ = 1 to reps do
           List.iter (fun p -> ignore (Lp.Simplex.run p)) lps
         done)
   in
   record ~name:"lp/simplex_dense" ~baseline:"matrix_reference" ~candidate:"flat_tableau"
     ~reps:(reps * List.length lps) ~base_s ~cand_s ~identical);
  (* minlp/expr_eval + expr_grad: the interpreted AST walk vs the
     closure-compiled program, on a scaling-law objective like the
     allocation relaxations evaluate millions of times *)
  let nv = 8 in
  let e =
    Minlp.Expr.add
      (List.init nv (fun i ->
           Minlp.Expr.mul
             (Minlp.Expr.const (50. +. (10. *. float_of_int i)))
             (Minlp.Expr.pow (Minlp.Expr.var i) (-0.9)))
      @ [ Minlp.Expr.linear (List.init nv (fun i -> (i, 0.01 *. float_of_int (i + 1)))) ])
  in
  let points =
    Array.init 64 (fun k ->
        let rng = Numerics.Rng.create (2000 + k) in
        Array.init nv (fun _ -> Numerics.Rng.uniform rng ~lo:1. ~hi:256.))
  in
  let prog = Minlp.Expr.Compiled.compile e in
  let fn = Minlp.Expr.Compiled.unsafe_fn prog in
  (let identical =
     Array.for_all (fun x -> bits (Minlp.Expr.eval e x) = bits (Minlp.Expr.Compiled.eval prog x)) points
   in
   let sweeps = 20_000 in
   let sink = ref 0. in
   let (), base_s =
     wall (fun () ->
         for _ = 1 to sweeps do
           Array.iter (fun x -> sink := !sink +. Minlp.Expr.eval e x) points
         done)
   in
   let (), cand_s =
     wall (fun () ->
         for _ = 1 to sweeps do
           Array.iter (fun x -> sink := !sink +. fn x) points
         done)
   in
   ignore !sink;
   record ~name:"minlp/expr_eval" ~baseline:"ast_interpreter" ~candidate:"closure_compiled"
     ~reps:(sweeps * Array.length points) ~base_s ~cand_s ~identical);
  (let grad_ref = Minlp.Expr.compile_gradient e in
   let cgrad = Minlp.Expr.Compiled.compile_gradient e in
   let out = Array.make nv 0. in
   let identical =
     Array.for_all
       (fun x ->
         let g = grad_ref x in
         Minlp.Expr.Compiled.grad_into cgrad x out;
         let ok = ref true in
         Array.iteri (fun j v -> if bits v <> bits out.(j) then ok := false) g;
         !ok)
       points
   in
   let sweeps = 4_000 in
   let (), base_s =
     wall (fun () ->
         for _ = 1 to sweeps do
           Array.iter (fun x -> ignore (grad_ref x)) points
         done)
   in
   let (), cand_s =
     wall (fun () ->
         for _ = 1 to sweeps do
           Array.iter (fun x -> Minlp.Expr.Compiled.grad_into cgrad x out) points
         done)
   in
   record ~name:"minlp/expr_grad" ~baseline:"symbolic_eval_alloc" ~candidate:"grad_into"
     ~reps:(sweeps * Array.length points) ~base_s ~cand_s ~identical);
  (* nlp/spg_bounded: the allocating ?grad interface vs the fused
     ?grad_into the AL kernels now wire *)
  (let f x =
     let a = 1. -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
     (a *. a) +. (100. *. b *. b)
   in
   let gx x =
     [|
       (-2. *. (1. -. x.(0))) -. (400. *. x.(0) *. (x.(1) -. (x.(0) *. x.(0))));
       200. *. (x.(1) -. (x.(0) *. x.(0)));
     |]
   in
   let g_into x out =
     out.(0) <- (-2. *. (1. -. x.(0))) -. (400. *. x.(0) *. (x.(1) -. (x.(0) *. x.(0))));
     out.(1) <- 200. *. (x.(1) -. (x.(0) *. x.(0)))
   in
   let lo = [| -5.; -5. |] and hi = [| 5.; 5. |] in
   let run_grad () = Nlp.Bounded.minimize ~max_iter:20_000 ~grad:gx ~f ~lo ~hi [| -1.2; 1. |] in
   let run_into () =
     Nlp.Bounded.minimize ~max_iter:20_000 ~grad_into:g_into ~f ~lo ~hi [| -1.2; 1. |]
   in
   let ra = run_grad () and rb = run_into () in
   let identical =
     ra.Nlp.Bounded.iterations = rb.Nlp.Bounded.iterations
     && bits ra.Nlp.Bounded.f = bits rb.Nlp.Bounded.f
     && Array.for_all2 (fun a c -> bits a = bits c) ra.Nlp.Bounded.x rb.Nlp.Bounded.x
   in
   let reps = 30 in
   let (), base_s = wall (fun () -> for _ = 1 to reps do ignore (run_grad ()) done) in
   let (), cand_s = wall (fun () -> for _ = 1 to reps do ignore (run_into ()) done) in
   record ~name:"nlp/spg_bounded" ~baseline:"grad_alloc" ~candidate:"grad_into"
     ~reps ~base_s ~cand_s ~identical);
  (* minlp/node_relax: per-node recompilation (the one-shot entry) vs
     the per-run compiled context the Bnb node loop uses *)
  (let p = e6_problem () in
   let lo = Array.copy p.Minlp.Problem.lo and hi = Array.copy p.Minlp.Problem.hi in
   let start = Minlp.Relax.midpoint lo hi in
   let ctx = Minlp.Relax.context p in
   let one_shot () = Minlp.Relax.solve_nlp p ~lo ~hi ~start in
   let with_ctx () = Minlp.Relax.solve_nlp_ctx ctx ~lo ~hi ~start in
   let ra = one_shot () and rb = with_ctx () in
   let identical =
     bits ra.Minlp.Relax.obj = bits rb.Minlp.Relax.obj
     && Array.for_all2 (fun a c -> bits a = bits c) ra.Minlp.Relax.x rb.Minlp.Relax.x
   in
   let reps = 8 in
   let (), base_s = wall (fun () -> for _ = 1 to reps do ignore (one_shot ()) done) in
   let (), cand_s = wall (fun () -> for _ = 1 to reps do ignore (with_ctx ()) done) in
   record ~name:"minlp/node_relax" ~baseline:"compile_per_node" ~candidate:"shared_context"
     ~reps ~base_s ~cand_s ~identical);
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"hslb-bench-kernels-v1\",\n  \"cores\": %d,\n  \"kernels\": [\n%s\n  ]\n}\n"
    (Runtime.Config.cores ()) (Buffer.contents results);
  close_out oc;
  Format.printf "kernel benchmark written to %s@." path

(* ---------- observability overhead benchmark (BENCH_obs.json) ---------- *)

let median xs =
  let a = Array.of_list (List.sort compare xs) in
  a.(Array.length a / 2)

(* The acceptance gate behind docs/OBSERVABILITY.md: the disabled path
   is the pre-observability baseline (every instrumentation site hides
   behind the single [Obs.Control] atomic flag), so enabled-vs-disabled
   medians of the same deterministic solve measure exactly what the
   subsystem costs — and what "disabled is effectively free" means. *)
let write_obs_bench path =
  let specs =
    List.map
      (fun s -> { s with Hslb.Alloc_model.allowed = Some [ 1; 2; 4; 8; 16; 32 ] })
      (Lazy.force fitted_specs)
  in
  let solve () =
    ignore
      (Hslb.Alloc_model.solve
         ~strategy:(`Single Engine.Solver_choice.Oa)
         ~n_total:64 specs)
  in
  let reps = 9 in
  let time_reps () =
    List.init reps (fun _ ->
        let w = snd (wall solve) in
        Obs.Span.clear ();
        w)
  in
  solve ();
  (* measurement order: disabled first (the baseline), then enabled *)
  Obs.Control.disable ();
  let disabled = time_reps () in
  Obs.Control.enable ();
  let enabled = time_reps () in
  Obs.Control.disable ();
  Obs.Span.clear ();
  let dm = median disabled and em = median enabled in
  let floats xs = String.concat ", " (List.map (Printf.sprintf "%.6f") xs) in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"hslb-bench-obs-v1\",\n\
    \  \"solver\": \"oa\", \"instance\": \"alloc4_sweet_n64\", \"reps\": %d,\n\
    \  \"disabled_median_s\": %.6f,\n\
    \  \"enabled_median_s\": %.6f,\n\
    \  \"enabled_over_disabled\": %.4f,\n\
    \  \"disabled_wall_s\": [%s],\n\
    \  \"enabled_wall_s\": [%s],\n\
    \  \"note\": \"disabled path = PR 4-equivalent baseline; every obs site is behind the Obs.Control atomic flag\"\n\
     }\n"
    reps dm em (em /. dm) (floats disabled) (floats enabled);
  close_out oc;
  Format.printf "observability overhead benchmark written to %s@." path

(* ---------- fleet locality benchmark (--fleet FILE) ---------- *)

(* the 1-vs-2-backend cache-locality benchmark behind BENCH_fleet.json,
   identical to `hslb_cli loadgen --bench-out` (see docs/SERVE.md):
   48 distinct instances against 32-entry backend LRUs, so the single
   backend thrashes while each fleet shard stays resident *)
let write_fleet_bench path =
  let prog =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/hslb_cli.exe"
  in
  if not (Sys.file_exists prog) then begin
    Format.eprintf "fleet bench: %s not built (run dune build)@." prog;
    exit 1
  end;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hslb-bench-fleet-%d" (Unix.getpid ()))
  in
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let backend_args =
    [ "serve"; "--jobs"; "1"; "--queue-limit"; "64"; "--cache-capacity"; "32";
      "--no-audit" ]
  in
  let b = Serve.Loadgen.fleet_bench ~prog ~backend_args ~dir ~backends:2 () in
  Serve.Loadgen.write_bench path b;
  Format.printf
    "fleet locality benchmark written to %s (single %.1f req/s, fleet(2) %.1f \
     req/s, speedup %.2fx)@."
    path b.Serve.Loadgen.single.Serve.Loadgen.throughput_rps
    b.Serve.Loadgen.fleet.Serve.Loadgen.throughput_rps b.Serve.Loadgen.speedup

(* ---------- scheduler arena benchmark (--arena FILE) ---------- *)

(* the E13 regret matrix as a machine-readable artifact, identical to
   `hslb_cli arena --out` (see docs/ARENA.md): every scheduler family
   raced over the full scenario zoo at the canonical seed *)
let write_arena_bench path =
  let t = Arena.Race.run ~seed:42 Arena.Scenario.all_classes in
  Arena.Race.write_bench path t;
  Format.printf "%a@." Arena.Race.pp t;
  Format.printf "arena benchmark written to %s@." path

(* ---------- re-solve policy benchmark (--resolve FILE) ---------- *)

(* the E12 drift-rate × re-solve-policy frontier as a machine-readable
   artifact (validated by `hslb obs --resolve-bench`) *)
let write_resolve_bench ~quick path =
  let t = Experiments.Resolve_frontier.run ~quick ~seed:42 () in
  Experiments.Resolve_frontier.write_bench path t;
  Format.printf "%a@." Experiments.Resolve_frontier.pp t;
  Format.printf "resolve benchmark written to %s@." path

(* ---------- placement benchmark (--place FILE) ---------- *)

(* the E14 comm-blind × comm-aware placement frontier as a
   machine-readable artifact (validated by `hslb obs --place-bench`) *)
let write_place_bench ~quick path =
  let t = Experiments.Place_bench.run ~quick ~seed:42 () in
  Experiments.Place_bench.write_bench path t;
  Format.printf "%a@." Experiments.Place_bench.pp t;
  Format.printf "place benchmark written to %s@." path

let pretty_time ns =
  if ns < 1e3 then Printf.sprintf "%.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let run_microbenches fmt =
  Format.fprintf fmt
    "@.########## Bechamel micro-benchmarks (per-call cost of each kernel) ##########@.";
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun (name, fn) ->
      let test = Test.make ~name (Staged.stage fn) in
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Format.fprintf fmt "%-28s %s/call@." name (pretty_time t)
          | Some _ | None -> Format.fprintf fmt "%-28s (no estimate)@." name)
        (Test.elements test);
      Format.pp_print_flush fmt ())
    micro_tests

let () =
  let args = Array.to_list Sys.argv in
  let quick = Cli_common.Argv.flag args "quick" in
  let no_bechamel = Cli_common.Argv.flag args "no-bechamel" in
  let find_opt = Cli_common.Argv.find_opt args in
  let only = find_opt "only" in
  let report = Cli_common.Argv.report args in
  (match find_opt "jobs" with
  | Some n -> Runtime.Config.set_jobs (int_of_string n)
  | None -> ());
  let fmt = Format.std_formatter in
  (match find_opt "portfolio" with
  | Some path ->
    write_portfolio_bench path;
    exit 0
  | None -> ());
  (match find_opt "kernels" with
  | Some path ->
    write_kernels_bench path;
    exit 0
  | None -> ());
  (match find_opt "obs-bench" with
  | Some path ->
    write_obs_bench path;
    exit 0
  | None -> ());
  (match find_opt "fleet" with
  | Some path ->
    write_fleet_bench path;
    exit 0
  | None -> ());
  (match find_opt "arena" with
  | Some path ->
    write_arena_bench path;
    exit 0
  | None -> ());
  (match find_opt "resolve" with
  | Some path ->
    write_resolve_bench ~quick path;
    exit 0
  | None -> ());
  (match find_opt "place" with
  | Some path ->
    write_place_bench ~quick path;
    exit 0
  | None -> ());
  let trace = find_opt "trace" in
  (* tracing covers the experiment run (and --report solves) below;
     it is switched off again before the Bechamel microbenches, whose
     thousands of repetitions would drown the timeline *)
  if trace <> None then Obs.Control.enable ();
  if Cli_common.Argv.audit args then begin
    let seed = Option.value ~default:42 (Option.map int_of_string (find_opt "seed")) in
    let trials = Option.value ~default:50 (Option.map int_of_string (find_opt "trials")) in
    let ok = run_bench_audit ~seed ~trials in
    if ok then begin
      Format.printf "bench audit: clean@.";
      exit 0
    end
    else begin
      Format.eprintf "bench audit: FAILED@.";
      exit 1
    end
  end;
  (match report with None -> () | Some path -> write_solver_reports path);
  (match only with
  | Some id -> (
    match Experiments.Registry.find_result id with
    | Ok e -> e.Experiments.Registry.run ~quick fmt
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 1)
  | None -> Experiments.Registry.run_all ~quick fmt);
  (match trace with
  | Some path ->
    Obs.Control.disable ();
    Obs.Export.write_chrome_trace path (Obs.Span.drain ());
    Format.fprintf fmt "chrome trace written to %s@." path
  | None -> ());
  if not no_bechamel then run_microbenches fmt
