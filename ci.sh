#!/bin/sh
# CI entry point: format check (when ocamlformat is available), then
# build, run the full test suite twice — once fully sequential and
# once with 4-way parallelism in the runtime layer, so the pool,
# portfolio and cache code is exercised under both widths — and
# finally the seeded fault-injection audit sweep, which fails the
# build on any certificate rejection or soundness violation (see
# docs/AUDIT.md).
#
# After the test suites, the serving layer gets an end-to-end smoke:
# `hslb serve` is driven with a ~50-request scripted trace (mixed
# valid, malformed and over-deadline requests against a deliberately
# tiny queue) to pin the overload and expiry paths, and then once more
# through a fifo with SIGTERM to pin the graceful-drain path.
#
# The observability stage then produces both exporter artifacts for
# real — a Prometheus exposition from a serve run under --metrics-out
# and a Chrome trace from a bench run under --trace — and validates
# each with `hslb_cli obs` (see docs/OBSERVABILITY.md).
#
# The fleet stage boots `hslb route` over two spawned backends on unix
# sockets, replays a 200-request `hslb loadgen` trace through it
# (asserting overload, expiry, shard-local cache hits and a clean
# fleet drain), then runs the 1-vs-2-backend locality benchmark and
# validates BENCH_fleet.json with `hslb_cli obs --fleet-bench`,
# failing the build under a 1.5x speedup (see docs/SERVE.md).
#
# The arena stage races all five scheduler families over a quick
# four-class scenario zoo, validates BENCH_arena.json with
# `hslb_cli obs --arena-bench`, gates on the hybrid rebalancer beating
# the stale static map on the drifting class, checks that
# `hslb serve --policy-from` answers policy hints with the matrix's
# own winners, and replays a zoo trace end-to-end through
# `hslb loadgen --scenario` (see docs/ARENA.md).
#
# The resolve stage drives a live server through a drift fixture — a
# v1 solve, a certified v2 `resolve` (answered "unchanged" without
# entering the solver), a drifted v2 `resolve` (genuine re-solve), a
# v3 probe (exact unsupported-version diagnostic) — asserting the
# resolved/resolve_skipped counters on the terminal drained event,
# then produces BENCH_resolve.json with `bench --resolve` and gates
# the frontier claims via `hslb_cli obs --resolve-bench` (see
# docs/SERVE.md and docs/ALGORITHM.md).
#
# The perf stage regenerates both hot-path artifacts and gates them
# with `hslb_cli obs`: BENCH_kernels.json (flat simplex tableau,
# closure-compiled expressions, allocation-free gradients vs their
# reference implementations — every kernel must reproduce the
# reference bit-for-bit) and BENCH_portfolio.json (portfolio wall
# within 1.2x of the best single solver on every instance, registry
# speedup >= 0.95, and core_starved false — the regression gates of
# the portfolio-tax and core-starvation fixes; see docs/ENGINE.md
# and docs/RUNTIME.md).
#
# lib/obs/, lib/runtime/, lib/audit/ and lib/serve/ compile with
# -warn-error +a (see their dune files), so any new compiler warning
# there fails this build.
set -eu

cd "$(dirname "$0")"

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt
else
  echo "== skipping format check (ocamlformat or .ocamlformat missing) =="
fi

echo "== dune build =="
dune build

echo "== dune runtest (HSLB_JOBS=1) =="
HSLB_JOBS=1 dune runtest --force

echo "== dune runtest (HSLB_JOBS=4) =="
HSLB_JOBS=4 dune runtest --force

echo "== audit stress sweep (seed 42, 200 trials) =="
dune exec bin/hslb_cli.exe -- audit --stress --seed 42 --trials 200 --quiet

echo "== serve smoke: scripted trace (overload + expiry + drain) =="
SERVE_BIN=./_build/default/bin/hslb_cli.exe
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# a single worker and a tiny queue against a 50-request burst: the
# trace must provoke every admission outcome, and every request line
# must be answered exactly once before the final drained event
"$SERVE_BIN" serve --jobs 1 --queue-limit 8 \
  < test/fixtures/serve_trace.ndjson > "$SMOKE_DIR/trace.out"

requests=$(wc -l < test/fixtures/serve_trace.ndjson)
answers=$(grep -c '"outcome":' "$SMOKE_DIR/trace.out")
if [ "$answers" -ne "$requests" ]; then
  echo "serve smoke: expected $requests answers, got $answers" >&2
  exit 1
fi
for outcome in ok error overloaded expired; do
  if ! grep -q "\"outcome\":\"$outcome\"" "$SMOKE_DIR/trace.out"; then
    echo "serve smoke: no \"$outcome\" outcome in trace output" >&2
    exit 1
  fi
done
grep -q '"event":"drained"' "$SMOKE_DIR/trace.out" || {
  echo "serve smoke: missing drained event" >&2
  exit 1
}

echo "== serve smoke: SIGTERM graceful drain =="
mkfifo "$SMOKE_DIR/serve.fifo"
"$SERVE_BIN" serve --jobs 2 \
  < "$SMOKE_DIR/serve.fifo" > "$SMOKE_DIR/sigterm.out" &
SERVE_PID=$!
# hold the fifo open so EOF cannot end the server before the signal
exec 9> "$SMOKE_DIR/serve.fifo"
printf '%s\n' \
  '{"id":901,"model_csv":"alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2","nodes":32}' \
  '{"id":902,"model_csv":"alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2","nodes":48}' >&9
sleep 1
kill -TERM "$SERVE_PID"
exec 9>&-
if ! wait "$SERVE_PID"; then
  echo "serve smoke: server exited non-zero after SIGTERM" >&2
  exit 1
fi
# in-flight work must be answered, then the final report emitted
grep -q '"id":901' "$SMOKE_DIR/sigterm.out" || {
  echo "serve smoke: request 901 lost during drain" >&2
  exit 1
}
grep -q '"id":902' "$SMOKE_DIR/sigterm.out" || {
  echo "serve smoke: request 902 lost during drain" >&2
  exit 1
}
grep -q '"event":"drained"' "$SMOKE_DIR/sigterm.out" || {
  echo "serve smoke: missing drained event after SIGTERM" >&2
  exit 1
}

echo "== observability: serve --metrics-out + bench --trace artifacts =="
# a short serve run flushing metrics fast enough that the periodic
# flusher (not just the final flush) writes the exposition
"$SERVE_BIN" serve --jobs 1 \
  --metrics-out "$SMOKE_DIR/metrics.prom" --metrics-interval-ms 50 \
  < test/fixtures/serve_trace.ndjson > /dev/null
[ -s "$SMOKE_DIR/metrics.prom" ] || {
  echo "observability: --metrics-out wrote no exposition" >&2
  exit 1
}
grep -q '^serve_solve_ms_count ' "$SMOKE_DIR/metrics.prom" || {
  echo "observability: exposition missing serve_solve_ms samples" >&2
  exit 1
}

# a traced bench run: one experiment, no microbenches — enough to
# exercise the portfolio/pool span paths and produce a real trace
dune exec bench/main.exe -- --quick --no-bechamel --only E4 \
  --trace "$SMOKE_DIR/e4_trace.json" > /dev/null
[ -s "$SMOKE_DIR/e4_trace.json" ] || {
  echo "observability: --trace wrote no chrome trace" >&2
  exit 1
}

# both artifacts must pass their format validators
"$SERVE_BIN" obs \
  --chrome-trace "$SMOKE_DIR/e4_trace.json" \
  --prometheus "$SMOKE_DIR/metrics.prom"

echo "== fleet smoke: 2-backend route over unix sockets =="
# a router over two spawned backends with a deliberately tiny backend
# queue: a 200-request windowed replay must provoke every admission
# outcome, land cache hits on both shards, and drain the whole fleet
"$SERVE_BIN" route --backends 2 \
  --listen "unix:$SMOKE_DIR/route.sock" --sock-dir "$SMOKE_DIR/fleet" \
  --jobs 1 --queue-limit 4 --cache-capacity 64 \
  > "$SMOKE_DIR/route.out" &
ROUTE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SMOKE_DIR/route.sock" ] && break
  sleep 0.1
done
[ -S "$SMOKE_DIR/route.sock" ] || {
  echo "fleet smoke: router socket never appeared" >&2
  exit 1
}
# phase 1 — blast: 24 requests in flight against 4-deep backend
# queues must shed load (overloaded) while the duplicates that do get
# in share a shard's dedupe table or cache
"$SERVE_BIN" loadgen --connect "unix:$SMOKE_DIR/route.sock" \
  --requests 160 --distinct 12 --sleep-every 50 --expire-every 8 \
  --window 24 > "$SMOKE_DIR/loadgen_blast.json"
# the backend stats embedded in the result also spell these counters,
# so every outcome assertion scopes its grep to the outcomes object
for outcome in ok overloaded; do
  grep -o '"outcomes":{[^}]*}' "$SMOKE_DIR/loadgen_blast.json" \
    | grep -q "\"$outcome\":" || {
    echo "fleet smoke: no \"$outcome\" outcome in blast result" >&2
    exit 1
  }
done
hits=$(grep -o '"cache_hits":[0-9]*' "$SMOKE_DIR/loadgen_blast.json" | head -1 | cut -d: -f2)
dedups=$(grep -o '"dedups":[0-9]*' "$SMOKE_DIR/loadgen_blast.json" | head -1 | cut -d: -f2)
[ $((${hits:-0} + ${dedups:-0})) -gt 0 ] || {
  echo "fleet smoke: blast produced neither cache hits nor dedups" >&2
  exit 1
}
# phase 2 — near-serial (window 2): every request is admitted, every
# repeated key is a shard-local cache hit, and a tiny-deadline solve
# that lands behind the other in-flight request outlives its 10us
# deadline in the queue (expired); ends with the fleet drain
"$SERVE_BIN" loadgen --connect "unix:$SMOKE_DIR/route.sock" \
  --requests 40 --distinct 8 --expire-every 2 \
  --window 2 --drain > "$SMOKE_DIR/loadgen_serial.json"
if ! wait "$ROUTE_PID"; then
  echo "fleet smoke: router exited non-zero after drain" >&2
  exit 1
fi
grep -o '"outcomes":{[^}]*}' "$SMOKE_DIR/loadgen_serial.json" \
  | grep -q '"ok":' || {
  echo "fleet smoke: no \"ok\" outcome in serial result" >&2
  exit 1
}
# 40 tiny-deadline candidates across the two phases: at least one must
# have expired in a queue (the rest may be shed as overloaded in the
# blast or win the worker-wakeup race in the near-serial phase)
grep -h -o '"outcomes":{[^}]*}' \
  "$SMOKE_DIR/loadgen_blast.json" "$SMOKE_DIR/loadgen_serial.json" \
  | grep -q '"expired":' || {
  echo "fleet smoke: no \"expired\" outcome in either phase" >&2
  exit 1
}
hits=$(grep -o '"cache_hits":[0-9]*' "$SMOKE_DIR/loadgen_serial.json" | head -1 | cut -d: -f2)
[ "${hits:-0}" -gt 0 ] || {
  echo "fleet smoke: no cache hits through the router" >&2
  exit 1
}
# the post-run stats fan-out must carry both shards' counters
for b in backend-0 backend-1; do
  grep -q "\"$b\"" "$SMOKE_DIR/loadgen_serial.json" || {
    echo "fleet smoke: stats fan-out missing $b" >&2
    exit 1
  }
done
grep -q '"event":"fleet_drain"' "$SMOKE_DIR/route.out" || {
  echo "fleet smoke: router never logged fleet_drain" >&2
  exit 1
}
grep -q '"event":"drained"' "$SMOKE_DIR/route.out" || {
  echo "fleet smoke: missing router drained event" >&2
  exit 1
}

echo "== fleet bench: 1 vs 2 backends (BENCH_fleet.json) =="
# the locality benchmark: 48 distinct instances against 32-entry LRUs,
# so the single backend thrashes while each fleet shard stays resident
"$SERVE_BIN" loadgen --bench-out "$SMOKE_DIR/BENCH_fleet.json" \
  --backends 2 --requests 200 --distinct 48 \
  --jobs 1 --queue-limit 64 --cache-capacity 32 > "$SMOKE_DIR/bench.out"
cat "$SMOKE_DIR/bench.out"
"$SERVE_BIN" obs --fleet-bench "$SMOKE_DIR/BENCH_fleet.json"
speedup=$("$SERVE_BIN" obs --fleet-bench "$SMOKE_DIR/BENCH_fleet.json" \
  | grep -o 'speedup [0-9.]*' | cut -d' ' -f2)
awk "BEGIN { exit !($speedup >= 1.5) }" || {
  echo "fleet bench: speedup $speedup below the 1.5x locality bar" >&2
  exit 1
}

echo "== arena: scheduler race + regret matrix (BENCH_arena.json) =="
# a quick seeded zoo — four classes is comfortably over the >= 3 bar,
# raced across all five scheduler families — plus replayable traces
"$SERVE_BIN" arena --quick \
  --class steady --class heavy-tailed --class drifting --class failure \
  --out "$SMOKE_DIR/BENCH_arena.json" --scenario-out "$SMOKE_DIR/zoo" \
  > "$SMOKE_DIR/arena.out"
cat "$SMOKE_DIR/arena.out"
# the matrix artifact must pass the schema/completeness validator
"$SERVE_BIN" obs --arena-bench "$SMOKE_DIR/BENCH_arena.json" \
  > "$SMOKE_DIR/arena_check.out"
# the tentpole claim: on the drifting class, where group speeds decay
# mid-run, the hybrid rebalancer must beat the stale static map
hybrid=$(grep 'class=drifting sched=hybrid' "$SMOKE_DIR/arena_check.out" \
  | grep -o 'value=.*' | cut -d= -f2)
static=$(grep 'class=drifting sched=static' "$SMOKE_DIR/arena_check.out" \
  | grep -o 'value=.*' | cut -d= -f2)
awk "BEGIN { exit !($hybrid < $static) }" || {
  echo "arena: hybrid regret $hybrid not below static regret $static on drifting" >&2
  exit 1
}
# serve answers policy hints from the matrix just produced: the
# drifting recommendation on the wire must be the matrix's own winner
winner=$(grep -o '"drifting":"[a-z]*"' "$SMOKE_DIR/BENCH_arena.json" \
  | cut -d: -f2 | tr -d '"')
printf '%s\n' \
  '{"id":1,"model_csv":"alpha,4,100,0.001,1,0.5","nodes":16,"policy":"drifting"}' \
  | "$SERVE_BIN" serve --jobs 1 --policy-from "$SMOKE_DIR/BENCH_arena.json" \
  > "$SMOKE_DIR/arena_serve.out"
grep -q "\"policy\":{\"scenario\":\"drifting\",\"scheduler\":\"$winner\"}" \
  "$SMOKE_DIR/arena_serve.out" || {
  echo "arena: serve did not answer the drifting policy hint with \"$winner\"" >&2
  exit 1
}

echo "== arena: scenario trace replay through a live server =="
# the steady zoo trace back through loadgen --scenario: every task is
# a policy-hinted solve, and all of them must come home
"$SERVE_BIN" serve --jobs 2 --no-audit \
  --listen "unix:$SMOKE_DIR/arena.sock" > "$SMOKE_DIR/arena_listen.out" &
ARENA_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SMOKE_DIR/arena.sock" ] && break
  sleep 0.1
done
[ -S "$SMOKE_DIR/arena.sock" ] || {
  echo "arena replay: serve socket never appeared" >&2
  exit 1
}
"$SERVE_BIN" loadgen --connect "unix:$SMOKE_DIR/arena.sock" \
  --scenario "$SMOKE_DIR/zoo-steady.ndjson" --drain \
  > "$SMOKE_DIR/arena_replay.json"
if ! wait "$ARENA_PID"; then
  echo "arena replay: server exited non-zero after drain" >&2
  exit 1
fi
# the server must have counted a policy hint on every solve
hints=$(grep -o '"policy_hints":[0-9]*' "$SMOKE_DIR/arena_replay.json" \
  | head -1 | cut -d: -f2)
[ "${hints:-0}" -gt 0 ] || {
  echo "arena replay: server counted no policy hints" >&2
  exit 1
}
grep -o '"outcomes":{[^}]*}' "$SMOKE_DIR/arena_replay.json" \
  | grep -q '"ok":' || {
  echo "arena replay: no \"ok\" outcome in replay result" >&2
  exit 1
}

echo "== resolve smoke: drift fixture through a live server (v1/v2 mix) =="
# the fixture walks the whole version surface: id 1 is a v1 solve
# (its response must stay byte-free of any "v" field), id 2 re-solves
# with the incumbent already optimal (the ε-certificate must answer
# "unchanged" without entering the solver), id 3 feeds drifted
# observations of a 2x-slower law (the certificate must fail and a
# genuine re-solve run), id 4 probes v3 (exact diagnostic), id 5 asks
# a v2 stats (which must advertise the protocol range). Counters are
# asserted on the terminal drained event — emitted only after the
# queue empties, so they cannot race the in-flight resolves.
printf '%s\n' \
  '{"id":1,"model_csv":"alpha,4,100,0.001,1,0.5","nodes":32}' \
  '{"id":2,"v":2,"op":"resolve","model_csv":"alpha,4,100,0.001,1,0.5","nodes":32,"prev":[8]}' \
  '{"id":3,"v":2,"op":"resolve","model_csv":"alpha,4,100,0.001,1,0.5","nodes":32,"prev":[4],"observe":[{"class":"alpha","samples":[[2,100.5],[4,50.5],[8,25.5],[16,13.0]]}]}' \
  '{"id":4,"v":3,"op":"ping"}' \
  '{"id":5,"v":2,"op":"stats"}' \
  | "$SERVE_BIN" serve --jobs 1 > "$SMOKE_DIR/resolve.out"
if grep '"id":1' "$SMOKE_DIR/resolve.out" | grep -q '"v":'; then
  echo "resolve smoke: v1 response leaked a \"v\" field" >&2
  exit 1
fi
grep '"id":2' "$SMOKE_DIR/resolve.out" | grep -q '"resolve":"unchanged"' || {
  echo "resolve smoke: certified resolve did not answer \"unchanged\"" >&2
  exit 1
}
grep '"id":3' "$SMOKE_DIR/resolve.out" | grep -q '"resolve":"resolved"' || {
  echo "resolve smoke: drifted resolve did not re-solve" >&2
  exit 1
}
grep '"id":4' "$SMOKE_DIR/resolve.out" \
  | grep -q 'unsupported protocol version 3 (server speaks 1..2)' || {
  echo "resolve smoke: v3 probe missing the exact version diagnostic" >&2
  exit 1
}
grep '"id":5' "$SMOKE_DIR/resolve.out" | grep -q '"protocol":' || {
  echo "resolve smoke: v2 stats did not advertise the protocol range" >&2
  exit 1
}
drained=$(grep '"event":"drained"' "$SMOKE_DIR/resolve.out")
case "$drained" in
*'"resolve_skipped":1'*) ;;
*)
  echo "resolve smoke: expected exactly one certificate-skipped resolve" >&2
  exit 1
  ;;
esac
case "$drained" in
*'"resolved":1'*) ;;
*)
  echo "resolve smoke: expected exactly one genuine re-solve" >&2
  exit 1
  ;;
esac

echo "== resolve bench: re-solve policy frontier (BENCH_resolve.json) =="
# the quick frontier (4 rounds, drift 0 and 0.15); the validator gates
# the PR's claims — certified within 5% of always-resolve makespan on
# strictly fewer MINLP solves, with at least one certificate skip
dune exec bench/main.exe -- --quick --resolve "$SMOKE_DIR/BENCH_resolve.json" > /dev/null
"$SERVE_BIN" obs --resolve-bench "$SMOKE_DIR/BENCH_resolve.json" \
  > "$SMOKE_DIR/resolve_check.out"
cat "$SMOKE_DIR/resolve_check.out"
grep -q 'policy=certified' "$SMOKE_DIR/resolve_check.out" || {
  echo "resolve bench: validator printed no certified cells" >&2
  exit 1
}

echo "== kernel bench: unboxed hot paths vs reference (BENCH_kernels.json) =="
# the flat-tableau / closure-compiled / grad_into kernels against the
# reference implementations they replaced: the validator hard-fails
# on any identical=false, so a speedup bought with a bit of drift
# cannot land
dune exec bench/main.exe -- --kernels "$SMOKE_DIR/BENCH_kernels.json" \
  > "$SMOKE_DIR/kernels.out"
cat "$SMOKE_DIR/kernels.out"
"$SERVE_BIN" obs --kernels-bench "$SMOKE_DIR/BENCH_kernels.json"

echo "== portfolio bench: staggered race + core-adaptive pool (BENCH_portfolio.json) =="
# the regression gates of the portfolio-tax / core-starvation fixes:
# portfolio wall within 1.2x of the best single solver on every
# instance, registry speedup >= 0.95 at any core count, and
# core_starved false (the pool clamps its width to the host)
dune exec bench/main.exe -- --portfolio "$SMOKE_DIR/BENCH_portfolio.json" \
  > "$SMOKE_DIR/portfolio.out"
cat "$SMOKE_DIR/portfolio.out"
"$SERVE_BIN" obs --portfolio-bench "$SMOKE_DIR/BENCH_portfolio.json"

echo "== place bench: comm-aware vs comm-blind placement (BENCH_place.json) =="
# the gate of the topology-aware placement subsystem: on the 4x4x4
# torus the comm-aware heuristic must strictly beat the comm-blind LPT
# baseline on modeled communication cost while keeping makespan within
# 5%, and the exact MINLP rows must be audited-optimal (the validator
# hard-fails on any of these)
dune exec bench/main.exe -- --quick --place "$SMOKE_DIR/BENCH_place.json" > /dev/null
"$SERVE_BIN" obs --place-bench "$SMOKE_DIR/BENCH_place.json" \
  > "$SMOKE_DIR/place_check.out"
cat "$SMOKE_DIR/place_check.out"
grep -q 'place exact .* status=optimal audited=true' "$SMOKE_DIR/place_check.out" || {
  echo "place bench: no audited-optimal exact row" >&2
  exit 1
}
awk '
  /^place torus=4x4x4 .* strategy=blind/ {
    for (i = 1; i <= NF; i++) {
      if ($i ~ /^comm=/) { sub(/^comm=/, "", $i); bc = $i }
      if ($i ~ /^makespan=/) { sub(/^makespan=/, "", $i); bm = $i }
    }
  }
  /^place torus=4x4x4 .* strategy=aware/ {
    for (i = 1; i <= NF; i++) {
      if ($i ~ /^comm=/) { sub(/^comm=/, "", $i); ac = $i }
      if ($i ~ /^makespan=/) { sub(/^makespan=/, "", $i); am = $i }
    }
  }
  END {
    if (bc == "" || ac == "") { print "place bench: 4x4x4 rows missing" > "/dev/stderr"; exit 1 }
    if (ac + 0 >= bc + 0) {
      printf "place bench: aware comm %s not strictly below blind %s\n", ac, bc > "/dev/stderr"
      exit 1
    }
    if (am + 0 > 1.05 * (bm + 0)) {
      printf "place bench: aware makespan %s above 1.05x blind %s\n", am, bm > "/dev/stderr"
      exit 1
    }
    printf "place bench: 4x4x4 aware comm %s < blind %s, makespan within 5%%\n", ac, bc
  }
' "$SMOKE_DIR/place_check.out"

echo "== place smoke: v2 solve with a place section through a live server =="
# one placed solve over the wire: the ok response must carry the
# place annotation (assignment + costs) and the drained counters one
# placed request
printf '%s\n' \
  '{"id":1,"v":2,"model_csv":"alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2","nodes":32,"place":{"topology":[2,2,2],"groups":4,"mem_per_node_gb":1.0,"mem_gb":[0.6,0.5],"comm_mb":[[0,3.5],[3.5,0]],"hop_cost_s_per_mb":2.0}}' \
  | "$SERVE_BIN" serve --jobs 1 > "$SMOKE_DIR/place.out"
grep '"id":1' "$SMOKE_DIR/place.out" | grep -q '"place":{"assignment":' || {
  echo "place smoke: response carries no place annotation" >&2
  exit 1
}
grep '"event":"drained"' "$SMOKE_DIR/place.out" | grep -q '"placed":1' || {
  echo "place smoke: drained counters did not report one placed solve" >&2
  exit 1
}

echo "== ci OK =="
