#!/bin/sh
# CI entry point: format check (when ocamlformat is available), then
# build and run the full test suite twice — once fully sequential and
# once with 4-way parallelism in the runtime layer — so the pool,
# portfolio and cache code is exercised under both widths.
#
# lib/runtime/ compiles with -warn-error +a (see lib/runtime/dune), so
# any new compiler warning there fails this build.
set -eu

cd "$(dirname "$0")"

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt
else
  echo "== skipping format check (ocamlformat or .ocamlformat missing) =="
fi

echo "== dune build =="
dune build

echo "== dune runtest (HSLB_JOBS=1) =="
HSLB_JOBS=1 dune runtest --force

echo "== dune runtest (HSLB_JOBS=4) =="
HSLB_JOBS=4 dune runtest --force

echo "== ci OK =="
