#!/bin/sh
# CI entry point: format check (when ocamlformat is available), then
# build and run the full test suite.
set -eu

cd "$(dirname "$0")"

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt
else
  echo "== skipping format check (ocamlformat or .ocamlformat missing) =="
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== ci OK =="
