#!/bin/sh
# CI entry point: format check (when ocamlformat is available), then
# build, run the full test suite twice — once fully sequential and
# once with 4-way parallelism in the runtime layer, so the pool,
# portfolio and cache code is exercised under both widths — and
# finally the seeded fault-injection audit sweep, which fails the
# build on any certificate rejection or soundness violation (see
# docs/AUDIT.md).
#
# lib/runtime/ and lib/audit/ compile with -warn-error +a (see their
# dune files), so any new compiler warning there fails this build.
set -eu

cd "$(dirname "$0")"

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt
else
  echo "== skipping format check (ocamlformat or .ocamlformat missing) =="
fi

echo "== dune build =="
dune build

echo "== dune runtest (HSLB_JOBS=1) =="
HSLB_JOBS=1 dune runtest --force

echo "== dune runtest (HSLB_JOBS=4) =="
HSLB_JOBS=4 dune runtest --force

echo "== audit stress sweep (seed 42, 200 trials) =="
dune exec bin/hslb_cli.exe -- audit --stress --seed 42 --trials 200 --quiet

echo "== ci OK =="
