#!/bin/sh
# CI entry point: format check (when ocamlformat is available), then
# build, run the full test suite twice — once fully sequential and
# once with 4-way parallelism in the runtime layer, so the pool,
# portfolio and cache code is exercised under both widths — and
# finally the seeded fault-injection audit sweep, which fails the
# build on any certificate rejection or soundness violation (see
# docs/AUDIT.md).
#
# After the test suites, the serving layer gets an end-to-end smoke:
# `hslb serve` is driven with a ~50-request scripted trace (mixed
# valid, malformed and over-deadline requests against a deliberately
# tiny queue) to pin the overload and expiry paths, and then once more
# through a fifo with SIGTERM to pin the graceful-drain path.
#
# The observability stage then produces both exporter artifacts for
# real — a Prometheus exposition from a serve run under --metrics-out
# and a Chrome trace from a bench run under --trace — and validates
# each with `hslb_cli obs` (see docs/OBSERVABILITY.md).
#
# lib/obs/, lib/runtime/, lib/audit/ and lib/serve/ compile with
# -warn-error +a (see their dune files), so any new compiler warning
# there fails this build.
set -eu

cd "$(dirname "$0")"

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune fmt (check) =="
  dune build @fmt
else
  echo "== skipping format check (ocamlformat or .ocamlformat missing) =="
fi

echo "== dune build =="
dune build

echo "== dune runtest (HSLB_JOBS=1) =="
HSLB_JOBS=1 dune runtest --force

echo "== dune runtest (HSLB_JOBS=4) =="
HSLB_JOBS=4 dune runtest --force

echo "== audit stress sweep (seed 42, 200 trials) =="
dune exec bin/hslb_cli.exe -- audit --stress --seed 42 --trials 200 --quiet

echo "== serve smoke: scripted trace (overload + expiry + drain) =="
SERVE_BIN=./_build/default/bin/hslb_cli.exe
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# a single worker and a tiny queue against a 50-request burst: the
# trace must provoke every admission outcome, and every request line
# must be answered exactly once before the final drained event
"$SERVE_BIN" serve --jobs 1 --queue-limit 8 \
  < test/fixtures/serve_trace.ndjson > "$SMOKE_DIR/trace.out"

requests=$(wc -l < test/fixtures/serve_trace.ndjson)
answers=$(grep -c '"outcome":' "$SMOKE_DIR/trace.out")
if [ "$answers" -ne "$requests" ]; then
  echo "serve smoke: expected $requests answers, got $answers" >&2
  exit 1
fi
for outcome in ok error overloaded expired; do
  if ! grep -q "\"outcome\":\"$outcome\"" "$SMOKE_DIR/trace.out"; then
    echo "serve smoke: no \"$outcome\" outcome in trace output" >&2
    exit 1
  fi
done
grep -q '"event":"drained"' "$SMOKE_DIR/trace.out" || {
  echo "serve smoke: missing drained event" >&2
  exit 1
}

echo "== serve smoke: SIGTERM graceful drain =="
mkfifo "$SMOKE_DIR/serve.fifo"
"$SERVE_BIN" serve --jobs 2 \
  < "$SMOKE_DIR/serve.fifo" > "$SMOKE_DIR/sigterm.out" &
SERVE_PID=$!
# hold the fifo open so EOF cannot end the server before the signal
exec 9> "$SMOKE_DIR/serve.fifo"
printf '%s\n' \
  '{"id":901,"model_csv":"alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2","nodes":32}' \
  '{"id":902,"model_csv":"alpha,4,100,0.001,1,0.5\nbeta,2,50,0.001,1,0.2","nodes":48}' >&9
sleep 1
kill -TERM "$SERVE_PID"
exec 9>&-
if ! wait "$SERVE_PID"; then
  echo "serve smoke: server exited non-zero after SIGTERM" >&2
  exit 1
fi
# in-flight work must be answered, then the final report emitted
grep -q '"id":901' "$SMOKE_DIR/sigterm.out" || {
  echo "serve smoke: request 901 lost during drain" >&2
  exit 1
}
grep -q '"id":902' "$SMOKE_DIR/sigterm.out" || {
  echo "serve smoke: request 902 lost during drain" >&2
  exit 1
}
grep -q '"event":"drained"' "$SMOKE_DIR/sigterm.out" || {
  echo "serve smoke: missing drained event after SIGTERM" >&2
  exit 1
}

echo "== observability: serve --metrics-out + bench --trace artifacts =="
# a short serve run flushing metrics fast enough that the periodic
# flusher (not just the final flush) writes the exposition
"$SERVE_BIN" serve --jobs 1 \
  --metrics-out "$SMOKE_DIR/metrics.prom" --metrics-interval-ms 50 \
  < test/fixtures/serve_trace.ndjson > /dev/null
[ -s "$SMOKE_DIR/metrics.prom" ] || {
  echo "observability: --metrics-out wrote no exposition" >&2
  exit 1
}
grep -q '^serve_solve_ms_count ' "$SMOKE_DIR/metrics.prom" || {
  echo "observability: exposition missing serve_solve_ms samples" >&2
  exit 1
}

# a traced bench run: one experiment, no microbenches — enough to
# exercise the portfolio/pool span paths and produce a real trace
dune exec bench/main.exe -- --quick --no-bechamel --only E4 \
  --trace "$SMOKE_DIR/e4_trace.json" > /dev/null
[ -s "$SMOKE_DIR/e4_trace.json" ] || {
  echo "observability: --trace wrote no chrome trace" >&2
  exit 1
}

# both artifacts must pass their format validators
"$SERVE_BIN" obs \
  --chrome-trace "$SMOKE_DIR/e4_trace.json" \
  --prometheus "$SMOKE_DIR/metrics.prom"

echo "== ci OK =="
