type strategy = [ `Auto | `Portfolio | `Single of Engine.Solver_choice.t ]

let strategy_to_string = function
  | `Auto -> "auto"
  | `Portfolio -> "portfolio"
  | `Single s -> Engine.Solver_choice.to_string s

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok `Auto
  | "portfolio" | "race" -> Ok `Portfolio
  | other -> (
    match Engine.Solver_choice.of_string other with
    | Ok c -> Ok (`Single c)
    | Error _ ->
      Error
        (Printf.sprintf
           "unknown strategy %S (expected auto, portfolio, or a solver name)" s))

exception Skipped

type 'a lane = {
  lane_name : string;
  outcome : ('a, exn) result;
  is_final : bool;
  lane_wall_s : float;
}

type 'a outcome = {
  value : 'a;
  winner : string;
  winner_index : int;
  race_wall_s : float;
  lanes : 'a lane list;
}

let lane_hist = Obs.Metrics.histogram ~lo:1e-6 ~hi:1e5 "runtime_lane_seconds"

let race ?budget ?stagger_s ~final ~better entrants =
  if entrants = [] then invalid_arg "Portfolio.race: no entrants";
  let stagger_s = match stagger_s with Some s -> Float.max 0. s | None -> Config.stagger_s () in
  let base =
    match budget with Some b -> b | None -> Engine.Budget.arm Engine.Budget.unlimited
  in
  (* every lane polls the same budget view: shared clock and counter
     pools, plus a race token the first final answer trips *)
  let tok = Engine.Cancel.create () in
  let shared = Engine.Budget.with_extra_cancel base tok in
  Obs.Span.with_span ~cat:"runtime" "portfolio.race" @@ fun () ->
  (* the race span is current here; capture it so lanes running on
     spawned domains still parent to it (cross-domain stitching) *)
  let ctx = Obs.Span.context () in
  let t0 = Unix.gettimeofday () in
  let run_lane lane_budget (lane_name, f) =
    Obs.Span.in_context ctx @@ fun () ->
    Obs.Span.with_span ~cat:"runtime" ("lane:" ^ lane_name) @@ fun () ->
    let lt0 = Unix.gettimeofday () in
    let outcome = try Ok (f lane_budget) with e -> Error e in
    if Obs.Control.enabled () then
      Obs.Metrics.Histogram.observe lane_hist (Unix.gettimeofday () -. lt0);
    let is_final = match outcome with Ok v -> final v | Error _ -> false in
    if is_final then Engine.Cancel.cancel tok;
    { lane_name; outcome; is_final; lane_wall_s = Unix.gettimeofday () -. t0 }
  in
  (* a lane the leader made redundant before it ever started: recorded
     with a zero-wall span so trace shapes (one span per entrant) and
     lane lists stay stable whether or not the laggards ran *)
  let skipped_lane (lane_name, _) =
    Obs.Span.in_context ctx @@ fun () ->
    Obs.Span.with_span ~cat:"runtime"
      ~args:[ ("skipped", "true") ]
      ("lane:" ^ lane_name)
    @@ fun () -> { lane_name; outcome = Error Skipped; is_final = false; lane_wall_s = 0. }
  in
  let lanes =
    match entrants with
    | [ only ] -> [ run_lane shared only ]
    | first :: rest ->
      (* Staggered-lazy start: the calling domain runs the first
         (predicted-fastest) lane immediately and alone — a 1-lane-ish
         race pays zero spawn tax on the caller.  The laggards spawn
         from the leader's budget poll hook once the leader has run for
         [stagger_s] seconds without finishing, or after the leader
         returns non-final; a leader that proves its answer inside the
         window wins outright and the laggards never start.  Losers
         unwind through their budget polls once the token fires, so
         joins are prompt. *)
      let started = Atomic.make false in
      let handles = ref [] in
      let spawn_laggards () =
        (* leader-domain only: the hook and the post-leader fallback
           both run on the calling domain, [started] just makes the
           spawn idempotent *)
        if not (Atomic.exchange started true) then
          handles := List.map (fun e -> Domain.spawn (fun () -> run_lane shared e)) rest
      in
      let polls = ref 0 in
      let hook () =
        incr polls;
        if
          !polls land 31 = 0
          && (not (Atomic.get started))
          && Unix.gettimeofday () -. t0 >= stagger_s
        then spawn_laggards ()
      in
      let l0 = run_lane (Engine.Budget.with_poll_hook shared hook) first in
      if l0.is_final && not (Atomic.get started) then
        l0 :: List.map skipped_lane rest
      else begin
        spawn_laggards ();
        l0 :: List.map Domain.join !handles
      end
    | [] -> assert false
  in
  let race_wall_s = Unix.gettimeofday () -. t0 in
  (* winner: a final (proven) answer beats any incumbent; among finals
     the lowest lane index wins (stable reporting); among incumbents
     [better] decides, ties keeping the earlier lane *)
  let best =
    List.fold_left
      (fun acc (i, l) ->
        match l.outcome with
        | Error _ -> acc
        | Ok v -> (
          match acc with
          | None -> Some (i, l, v)
          | Some (_, bl, bv) ->
            if l.is_final && not bl.is_final then Some (i, l, v)
            else if bl.is_final || not (better v bv) then acc
            else Some (i, l, v)))
      None
      (List.mapi (fun i l -> (i, l)) lanes)
  in
  match best with
  | Some (winner_index, l, value) ->
    { value; winner = l.lane_name; winner_index; race_wall_s; lanes }
  | None -> (
    (* every lane raised: fail with the first lane's exception *)
    match lanes with
    | { outcome = Error e; _ } :: _ -> raise e
    | _ -> assert false)
