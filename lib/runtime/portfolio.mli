(** Solver-portfolio racing on OCaml 5 domains.

    Complementary strategies for the same instance run in parallel
    lanes, all polling {e one} shared {!Engine.Budget} view: the wall
    clock and the node/iteration pools are race-wide, and a private race
    token lets the first lane that produces a {e final} (proven) answer
    cancel the others through their normal budget polls. Losing lanes
    unwind cooperatively and still report the incumbent they held, so a
    race never does worse than its best lane.

    Determinism: the race's {e objective value} is deterministic for
    exact lanes (every final answer proves the same optimum), but which
    lane wins — and therefore which optimal {e point} is returned — can
    depend on timing. Callers that need bit-stable solution vectors
    should use a single-solver strategy; see docs/RUNTIME.md. *)

(** How a model-layer [solve] should pick its solver(s). [`Auto]
    currently defers to the caller's single-solver default (it may grow
    smarter); [`Portfolio] races the applicable strategies; [`Single s]
    forces one. *)
type strategy = [ `Auto | `Portfolio | `Single of Engine.Solver_choice.t ]

val strategy_to_string : strategy -> string

(** Accepts ["auto"], ["portfolio"] (alias ["race"]), or any
    {!Engine.Solver_choice.of_string} name for [`Single]. *)
val strategy_of_string : string -> (strategy, string) result

type 'a lane = {
  lane_name : string;
  outcome : ('a, exn) result;
  is_final : bool;  (** this lane produced a proven/final answer *)
  lane_wall_s : float;  (** seconds from race start to lane unwind *)
}

type 'a outcome = {
  value : 'a;  (** the winning lane's result *)
  winner : string;
  winner_index : int;  (** index into the entrant list *)
  race_wall_s : float;
  lanes : 'a lane list;  (** in entrant order, losers included *)
}

(** [race ?budget ~final ~better entrants] — run every [(name, run)]
    entrant in its own domain (the caller's domain takes the first
    lane). Each [run] receives the shared budget view and must treat it
    as its only stopping authority. [final v] marks a proven answer —
    the first one cancels the race. [better a b] means "[a] is a
    strictly better incumbent than [b]" and picks the winner when no
    lane finished final (budget exhaustion): best incumbent wins, ties
    keep the earlier lane.

    When [budget] is omitted an unlimited budget is armed, so the race
    ends when the first lane proves its answer. If every lane raises,
    the first lane's exception is re-raised.
    @raise Invalid_argument on an empty entrant list. *)
val race :
  ?budget:Engine.Budget.armed ->
  final:('a -> bool) ->
  better:('a -> 'a -> bool) ->
  (string * (Engine.Budget.armed -> 'a)) list ->
  'a outcome
