(** Solver-portfolio racing on OCaml 5 domains.

    Complementary strategies for the same instance run in parallel
    lanes, all polling {e one} shared {!Engine.Budget} view: the wall
    clock and the node/iteration pools are race-wide, and a private race
    token lets the first lane that produces a {e final} (proven) answer
    cancel the others through their normal budget polls. Losing lanes
    unwind cooperatively and still report the incumbent they held, so a
    race never does worse than its best lane.

    Determinism: the race's {e objective value} is deterministic for
    exact lanes (every final answer proves the same optimum), but which
    lane wins — and therefore which optimal {e point} is returned — can
    depend on timing. Callers that need bit-stable solution vectors
    should use a single-solver strategy; see docs/RUNTIME.md. *)

(** How a model-layer [solve] should pick its solver(s). [`Auto]
    currently defers to the caller's single-solver default (it may grow
    smarter); [`Portfolio] races the applicable strategies; [`Single s]
    forces one. *)
type strategy = [ `Auto | `Portfolio | `Single of Engine.Solver_choice.t ]

val strategy_to_string : strategy -> string

(** Accepts ["auto"], ["portfolio"] (alias ["race"]), or any
    {!Engine.Solver_choice.of_string} name for [`Single]. *)
val strategy_of_string : string -> (strategy, string) result

(** A lane the leader made redundant before it ever started: the
    predicted-fastest lane proved its answer inside the stagger window,
    so this entrant was never spawned. Its lane record carries
    [outcome = Error Skipped] and [lane_wall_s = 0.]. *)
exception Skipped

type 'a lane = {
  lane_name : string;
  outcome : ('a, exn) result;
  is_final : bool;  (** this lane produced a proven/final answer *)
  lane_wall_s : float;  (** seconds from race start to lane unwind *)
}

type 'a outcome = {
  value : 'a;  (** the winning lane's result *)
  winner : string;
  winner_index : int;  (** index into the entrant list *)
  race_wall_s : float;
  lanes : 'a lane list;  (** in entrant order, losers included *)
}

(** [race ?budget ?stagger_s ~final ~better entrants] — race the
    [(name, run)] entrants with a {e staggered-lazy} start: the first
    entrant (order them predicted-fastest first) runs immediately on
    the {e calling} domain, paying no [Domain.spawn] on the hot path,
    and the remaining lanes are spawned onto their own domains only
    when the leader has run for [stagger_s] seconds (default
    {!Config.stagger_s}, env [HSLB_STAGGER_S]) without finishing — the
    leader's budget polls drive the timer — or immediately after the
    leader returns without a final answer. A leader that proves its
    answer inside the window wins outright; the never-started lanes are
    reported with [outcome = Error Skipped], [lane_wall_s = 0.] and a
    zero-wall span, so the lane list always matches the entrant list.

    Each [run] receives the shared budget view and must treat it as its
    only stopping authority — and must actually poll it, since the
    leader's polls are also what start the laggards. [final v] marks a
    proven answer — the first one cancels the race. [better a b] means
    "[a] is a strictly better incumbent than [b]" and picks the winner
    when no lane finished final (budget exhaustion): best incumbent
    wins, ties keep the earlier lane.

    When [budget] is omitted an unlimited budget is armed, so the race
    ends when the first lane proves its answer. If every lane that ran
    raised, the first lane's exception is re-raised (lanes are only
    skipped when the leader won, so a skipped lane never masks a
    failure).
    @raise Invalid_argument on an empty entrant list. *)
val race :
  ?budget:Engine.Budget.armed ->
  ?stagger_s:float ->
  final:('a -> bool) ->
  better:('a -> 'a -> bool) ->
  (string * (Engine.Budget.armed -> 'a)) list ->
  'a outcome
