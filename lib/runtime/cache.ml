(* LRU cache: hash table for lookup, doubly-linked list for recency
   (head = most recent, tail = eviction candidate). All operations are
   mutex-protected so pool workers in different domains can share one
   cache. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* toward head / more recent *)
  mutable next : 'v node option;  (* toward tail / less recent *)
}

type 'v t = {
  cap : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable hit_count : int;
  mutable miss_count : int;
  lock : Mutex.t;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hit_count = 0;
    miss_count = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        t.hit_count <- t.hit_count + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        t.miss_count <- t.miss_count + 1;
        None)

let put t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
      | None ->
        if Hashtbl.length t.table >= t.cap then (
          match t.tail with
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key
          | None -> ());
        let node = { key; value; prev = None; next = None } in
        Hashtbl.add t.table key node;
        push_front t node)

let capacity t = t.cap
let length t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)

let keys_by_recency t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some node -> go (node.key :: acc) node.next
      in
      go [] t.head)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)
