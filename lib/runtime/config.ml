let env_var = "HSLB_JOBS"

let parse s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some _ | None ->
    Error (Printf.sprintf "invalid jobs value %S (expected a positive integer)" s)

(* An invalid HSLB_JOBS used to be silently coerced to 1; now the same
   [parse] the CLI's --jobs flag uses reports it, so the two paths name
   the bad value identically and a typo'd environment never passes
   unnoticed. *)
let from_env ?(warn = fun msg -> Printf.eprintf "warning: %s\n%!" msg) () =
  match Sys.getenv_opt env_var with
  | Some s -> (
    match parse s with
    | Ok n -> n
    | Error msg ->
      warn (Printf.sprintf "%s: %s; defaulting to 1 job" env_var msg);
      1)
  | None -> 1

(* atomic: the CLI sets it once at startup, but pool workers in other
   domains read it when sizing nested fan-outs *)
let current = Atomic.make (from_env ())
let jobs () = Atomic.get current
let set_jobs n = Atomic.set current (Stdlib.max 1 n)
let recommended () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

(* cores the runtime can actually use; the pool clamps its width here
   so an oversubscribed --jobs never time-slices domains on a small box *)
let cores () = Stdlib.max 1 (Domain.recommended_domain_count ())

let stagger_env_var = "HSLB_STAGGER_S"
let default_stagger_s = 0.2

let parse_stagger s =
  match float_of_string_opt (String.trim s) with
  | Some f when f >= 0. && Float.is_finite f -> Ok f
  | Some _ | None ->
    Error
      (Printf.sprintf "invalid stagger value %S (expected a non-negative number of seconds)" s)

let stagger_from_env ?(warn = fun msg -> Printf.eprintf "warning: %s\n%!" msg) () =
  match Sys.getenv_opt stagger_env_var with
  | None -> default_stagger_s
  | Some s -> (
    match parse_stagger s with
    | Ok f -> f
    | Error msg ->
      warn
        (Printf.sprintf "%s: %s; defaulting to %gs" stagger_env_var msg default_stagger_s);
      default_stagger_s)

let stagger_current = Atomic.make (stagger_from_env ())
let stagger_s () = Atomic.get stagger_current
let set_stagger_s v = Atomic.set stagger_current (Float.max 0. v)
