let env_var = "HSLB_JOBS"

let parse s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | Some _ | None -> None

let from_env () =
  match Sys.getenv_opt env_var with
  | Some s -> ( match parse s with Some n -> n | None -> 1)
  | None -> 1

(* atomic: the CLI sets it once at startup, but pool workers in other
   domains read it when sizing nested fan-outs *)
let current = Atomic.make (from_env ())
let jobs () = Atomic.get current
let set_jobs n = Atomic.set current (Stdlib.max 1 n)
let recommended () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)
