(* Bounded domain pool with deterministic result ordering.

   Tasks are indexed; workers (the calling domain plus up to [jobs - 1]
   spawned ones) claim the next index from a shared atomic counter and
   write the outcome into that index's slot. Per-slot writes are each
   done by exactly one domain and published to the caller by
   [Domain.join], so no further synchronization is needed. Results come
   back in task order regardless of completion order — the determinism
   guarantee the experiment runner builds on. *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let task_hist = Obs.Metrics.histogram ~lo:1e-6 ~hi:1e5 "runtime_pool_task_seconds"

let run_parallel ~jobs tasks =
  let n = Array.length tasks in
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  (* spans opened by tasks on worker domains parent to whatever span
     the caller was in when it sharded the work *)
  let ctx = Obs.Span.context () in
  let run_task i =
    if not (Obs.Control.enabled ()) then tasks.(i) ()
    else
      Obs.Span.in_context ctx @@ fun () ->
      Obs.Span.with_span ~cat:"runtime"
        ~args:[ ("index", string_of_int i) ]
        "pool.task"
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let finish () =
        Obs.Metrics.Histogram.observe task_hist (Unix.gettimeofday () -. t0)
      in
      (match tasks.(i) () with
      | v ->
        finish ();
        v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt)
  in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (slots.(i) <-
        (match run_task i with
        | v -> Some (Value v)
        | exception e ->
          (* capture in the slot: a bare [raise] back on the calling
             domain would replace the worker-side backtrace with the
             re-raise site, losing where the task actually failed *)
          Some (Raised (e, Printexc.get_raw_backtrace ()))));
      worker ()
    end
  in
  let spawned = List.init (Stdlib.min jobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (* fail deterministically: the lowest-index exception wins, whatever
     order the domains actually hit theirs in *)
  Array.iter
    (function
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Value _) | None -> ())
    slots;
  Array.to_list
    (Array.map (function Some (Value v) -> v | Some (Raised _) | None -> assert false) slots)

let run ?jobs thunks =
  let jobs = match jobs with Some j -> Stdlib.max 1 j | None -> Config.jobs () in
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | thunks when jobs <= 1 -> List.map (fun f -> f ()) thunks
  | thunks -> run_parallel ~jobs (Array.of_list thunks)

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)

(* Long-lived worker set: unlike [run], which drains a fixed task array
   and returns, these domains run an open-ended loop (a serving queue's
   consumers). The caller's domain is NOT enlisted — a server's main
   domain keeps reading its transport while the workers solve. *)

type worker_set = unit Domain.t list

let spawn_workers ~jobs body =
  if jobs < 1 then invalid_arg "Pool.spawn_workers: jobs must be >= 1";
  List.init jobs (fun i -> Domain.spawn (fun () -> body i))

let join_workers ws = List.iter Domain.join ws
