(* Bounded domain pool with deterministic result ordering.

   Tasks are indexed; workers (the calling domain plus up to [jobs - 1]
   spawned ones) claim the next index from a shared atomic counter and
   write the outcome into that index's slot. Per-slot writes are each
   done by exactly one domain and published to the caller by
   [Domain.join], so no further synchronization is needed. Results come
   back in task order regardless of completion order — the determinism
   guarantee the experiment runner builds on. *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let task_hist = Obs.Metrics.histogram ~lo:1e-6 ~hi:1e5 "runtime_pool_task_seconds"

(* per-task instrumentation shared by both execution paths: spans
   opened by tasks parent to whatever span the caller was in when it
   sharded the work, whether the task runs on a worker domain or (when
   the width clamps to one) on the calling domain itself *)
let instrumented_runner tasks =
  let ctx = Obs.Span.context () in
  fun i ->
    if not (Obs.Control.enabled ()) then tasks.(i) ()
    else
      Obs.Span.in_context ctx @@ fun () ->
      Obs.Span.with_span ~cat:"runtime"
        ~args:[ ("index", string_of_int i) ]
        "pool.task"
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let finish () =
        Obs.Metrics.Histogram.observe task_hist (Unix.gettimeofday () -. t0)
      in
      (match tasks.(i) () with
      | v ->
        finish ();
        v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt)

let run_parallel ~jobs tasks =
  let n = Array.length tasks in
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  let run_task = instrumented_runner tasks in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (slots.(i) <-
        (match run_task i with
        | v -> Some (Value v)
        | exception e ->
          (* capture in the slot: a bare [raise] back on the calling
             domain would replace the worker-side backtrace with the
             re-raise site, losing where the task actually failed *)
          Some (Raised (e, Printexc.get_raw_backtrace ()))));
      worker ()
    end
  in
  let spawned = List.init (Stdlib.min jobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (* fail deterministically: the lowest-index exception wins, whatever
     order the domains actually hit theirs in *)
  Array.iter
    (function
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Value _) | None -> ())
    slots;
  Array.to_list
    (Array.map (function Some (Value v) -> v | Some (Raised _) | None -> assert false) slots)

(* Width policy, separated from execution so it is testable as plain
   data.  A requested width above the tasks at hand or the cores on the
   box buys nothing — extra domains would only time-slice — so the
   effective width is the min of the three, and a width of one means
   the byte-identical sequential path on the calling domain. *)
type plan = Sequential | Parallel of int

let decide ~cores ~jobs ~tasks =
  let eff = Stdlib.min jobs (Stdlib.min (Stdlib.max 0 tasks) (Stdlib.max 1 cores)) in
  if eff <= 1 then Sequential else Parallel eff

(* warn once per process: benches call [run] in a loop and a clamped
   --jobs should not flood stderr *)
let clamp_warned = Atomic.make false

let warn_clamp ~requested ~cores =
  if not (Atomic.exchange clamp_warned true) then
    Printf.eprintf
      "warning: requested %d jobs but only %d core(s) are available; running %s\n%!"
      requested cores
      (if cores <= 1 then "sequentially" else Printf.sprintf "%d-wide" cores)

let run ?jobs thunks =
  let requested = match jobs with Some j -> Stdlib.max 1 j | None -> Config.jobs () in
  let cores = Config.cores () in
  let tasks = List.length thunks in
  if requested > cores && tasks > 1 then warn_clamp ~requested ~cores;
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | thunks -> (
    match decide ~cores ~jobs:requested ~tasks with
    | Sequential ->
      (* calling domain only, failing fast — byte-identical results to
         a plain [List.map], with the same task spans as the parallel
         path so traces do not change shape when the width clamps *)
      let arr = Array.of_list thunks in
      let run_task = instrumented_runner arr in
      let n = Array.length arr in
      let rec go i =
        if i >= n then []
        else
          let v = run_task i in
          v :: go (i + 1)
      in
      go 0
    | Parallel jobs -> run_parallel ~jobs (Array.of_list thunks))

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)

(* Long-lived worker set: unlike [run], which drains a fixed task array
   and returns, these domains run an open-ended loop (a serving queue's
   consumers). The caller's domain is NOT enlisted — a server's main
   domain keeps reading its transport while the workers solve. *)

type worker_set = unit Domain.t list

let spawn_workers ~jobs body =
  if jobs < 1 then invalid_arg "Pool.spawn_workers: jobs must be >= 1";
  List.init jobs (fun i -> Domain.spawn (fun () -> body i))

let join_workers ws = List.iter Domain.join ws
