(** Bounded work pool on OCaml 5 domains.

    [run tasks] executes every thunk and returns their results {e in
    task order}, whatever order they finished in. At [jobs = 1] (the
    default unless [HSLB_JOBS] / [--jobs] say otherwise) everything runs
    sequentially on the calling domain — byte-identical behavior to a
    plain [List.map]. At [jobs > 1] the calling domain plus [jobs - 1]
    spawned domains drain the task list through a shared counter.

    Exceptions: in sequential mode the first raise propagates
    immediately (remaining tasks do not run). In parallel mode every
    task is attempted and the exception of the {e lowest-indexed}
    failing task is re-raised after the pool drains, so failure is
    deterministic too.

    Nested use is permitted (an experiment running in the pool may
    itself map over a pool); each call spawns its own bounded set of
    domains. Keep [jobs] near the core count. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list

(** [map ?jobs f xs] = [run ?jobs (List.map (fun x () -> f x) xs)]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
