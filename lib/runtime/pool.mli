(** Bounded work pool on OCaml 5 domains.

    [run tasks] executes every thunk and returns their results {e in
    task order}, whatever order they finished in. The requested width
    ([?jobs], else [HSLB_JOBS] / [--jobs]) is a {e ceiling}: the
    effective width is clamped to the task count and to the cores the
    machine actually has ({!Config.cores}), with a once-per-process
    stderr warning when the request exceeds the cores — oversubscribed
    domains only time-slice. At an effective width of 1 (including a
    starved single-core box, whatever was requested) everything runs
    sequentially on the calling domain — byte-identical results to a
    plain [List.map]. Above 1 the calling domain plus [width - 1]
    spawned domains drain the task list through a shared counter. Task
    spans ([pool.task]) are emitted identically on both paths.

    Exceptions: in sequential mode the first raise propagates
    immediately (remaining tasks do not run). In parallel mode every
    task is attempted and the exception of the {e lowest-indexed}
    failing task is re-raised after the pool drains, so failure is
    deterministic too. The worker-side backtrace is captured in the
    task's slot and re-raised with it
    ({!Printexc.raise_with_backtrace}), so the trace points at where
    the task failed, not at the pool's re-raise site.

    Nested use is permitted (an experiment running in the pool may
    itself map over a pool); each call spawns its own bounded set of
    domains. Keep [jobs] near the core count. *)

(** The width policy behind {!run}, exposed as pure data for tests and
    telemetry: the effective width is
    [min jobs (min tasks (Config.cores ()))], and a width of one means
    the sequential path. A request clamped below what was asked for is
    reported once per process on stderr. *)
type plan = Sequential | Parallel of int

val decide : cores:int -> jobs:int -> tasks:int -> plan

val run : ?jobs:int -> (unit -> 'a) list -> 'a list

(** [map ?jobs f xs] = [run ?jobs (List.map (fun x () -> f x) xs)]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** {2 Long-lived workers}

    [run] drains a fixed task list and returns; a serving queue instead
    needs consumers that outlive any one batch. [spawn_workers ~jobs
    body] starts [jobs] domains each running [body i] (an open-ended
    loop — typically: block on a queue, process, repeat, exit when the
    queue owner says drain). The {e calling} domain is not enlisted,
    unlike [run]: a server's main domain keeps reading its transport
    while the workers work. [join_workers] blocks until every body
    returns — the drain barrier that guarantees no orphaned domains.
    @raise Invalid_argument when [jobs < 1]. *)

type worker_set

val spawn_workers : jobs:int -> (int -> unit) -> worker_set
val join_workers : worker_set -> unit
