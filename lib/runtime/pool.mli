(** Bounded work pool on OCaml 5 domains.

    [run tasks] executes every thunk and returns their results {e in
    task order}, whatever order they finished in. At [jobs = 1] (the
    default unless [HSLB_JOBS] / [--jobs] say otherwise) everything runs
    sequentially on the calling domain — byte-identical behavior to a
    plain [List.map]. At [jobs > 1] the calling domain plus [jobs - 1]
    spawned domains drain the task list through a shared counter.

    Exceptions: in sequential mode the first raise propagates
    immediately (remaining tasks do not run). In parallel mode every
    task is attempted and the exception of the {e lowest-indexed}
    failing task is re-raised after the pool drains, so failure is
    deterministic too. The worker-side backtrace is captured in the
    task's slot and re-raised with it
    ({!Printexc.raise_with_backtrace}), so the trace points at where
    the task failed, not at the pool's re-raise site.

    Nested use is permitted (an experiment running in the pool may
    itself map over a pool); each call spawns its own bounded set of
    domains. Keep [jobs] near the core count. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list

(** [map ?jobs f xs] = [run ?jobs (List.map (fun x () -> f x) xs)]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** {2 Long-lived workers}

    [run] drains a fixed task list and returns; a serving queue instead
    needs consumers that outlive any one batch. [spawn_workers ~jobs
    body] starts [jobs] domains each running [body i] (an open-ended
    loop — typically: block on a queue, process, repeat, exit when the
    queue owner says drain). The {e calling} domain is not enlisted,
    unlike [run]: a server's main domain keeps reading its transport
    while the workers work. [join_workers] blocks until every body
    returns — the drain barrier that guarantees no orphaned domains.
    @raise Invalid_argument when [jobs < 1]. *)

type worker_set

val spawn_workers : jobs:int -> (int -> unit) -> worker_set
val join_workers : worker_set -> unit
