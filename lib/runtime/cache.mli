(** Memoized-solve cache: a bounded, thread-safe LRU keyed by canonical
    instance fingerprints.

    Keys are strings produced by an injective serialization of the
    problem instance (e.g. {!Hslb.Alloc_model.fingerprint}) so equal
    keys imply equal instances — distinct [allowed] lists, objectives or
    node budgets can never collide. Values are whatever the solve
    returned; callers should only memoize deterministic results
    (proven-[Optimal] allocations, not budget-exhausted incumbents).

    All operations take an internal mutex, so one cache may serve pool
    workers in several domains. *)

type 'v t

(** [create ?capacity ()] — default capacity 128 entries. Least recently
    used entries are evicted on overflow. @raise Invalid_argument when
    [capacity < 1]. *)
val create : ?capacity:int -> unit -> 'v t

(** [find t key] — the cached value, refreshing the entry's recency.
    Counts toward {!hits} / {!misses}. *)
val find : 'v t -> string -> 'v option

(** [put t key v] — insert or refresh; evicts the LRU entry when full. *)
val put : 'v t -> string -> 'v -> unit

val capacity : 'v t -> int
val length : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int

(** Keys from most to least recently touched (for tests/inspection). *)
val keys_by_recency : 'v t -> string list

(** Drop all entries (hit/miss counters are kept). *)
val clear : 'v t -> unit
