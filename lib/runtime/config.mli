(** Global parallelism setting for the runtime subsystem.

    Every pool and racer defaults its width to [jobs ()]. The value is
    initialised from the [HSLB_JOBS] environment variable (so CI can run
    the whole suite under different widths without touching flags) and
    may be overridden by the [--jobs] command-line flags. [1] — the
    default — means fully sequential, deterministic execution on the
    calling domain. *)

(** ["HSLB_JOBS"]. Invalid or missing values mean 1. *)
val env_var : string

(** [parse s] — the one validation both the environment variable and the
    CLI [--jobs] flags go through: a positive integer (surrounding
    whitespace tolerated), or an error message naming the bad value.
    Shared so "HSLB_JOBS=8x" and "--jobs 8x" report identically. *)
val parse : string -> (int, string) result

(** Read [env_var]. Missing means 1; an invalid value means 1 {e after}
    reporting the {!parse} error through [warn] (default: a ["warning:"]
    line on stderr) — it is never silently coerced. *)
val from_env : ?warn:(string -> unit) -> unit -> int

(** Current width, [>= 1]. *)
val jobs : unit -> int

(** Override the width; values below 1 clamp to 1. *)
val set_jobs : int -> unit

(** A sensible width for this machine: the domain count the OCaml
    runtime recommends, minus one for the caller's domain. *)
val recommended : unit -> int

(** Cores the runtime can actually use ({!Domain.recommended_domain_count},
    at least 1). {!Pool} clamps its effective width here. *)
val cores : unit -> int

(** {2 Portfolio stagger}

    How long the predicted-fastest portfolio lane runs alone before the
    laggard lanes are spawned; see {!Portfolio.race}. Initialised from
    [HSLB_STAGGER_S] (seconds, default 0.2). *)

(** ["HSLB_STAGGER_S"]. *)
val stagger_env_var : string

val default_stagger_s : float

(** Non-negative finite seconds, or an error naming the bad value. *)
val parse_stagger : string -> (float, string) result

(** Read [stagger_env_var]; invalid values mean the default {e after}
    reporting through [warn]. *)
val stagger_from_env : ?warn:(string -> unit) -> unit -> float

(** Current stagger window, [>= 0]. *)
val stagger_s : unit -> float

(** Override the window; negative values clamp to 0. *)
val set_stagger_s : float -> unit
