(** Scheduler families raced in the arena.

    Three are the repo's existing modes ({!Gddi.Sim.schedule} plus the
    LPT planner); two are new:

    - {e hybrid} — static LPT whose per-group speed estimates are
      refreshed from observed loads only every [interval] phases
      starting at phase [start] (the SLB/ALB [interval]/[start] design
      from tristan-v2's [m_loadbalancing]); a small rebalance cost is
      charged at each refresh, so rebalancing has to earn its keep
      (Boulmier et al.).
    - {e diffusive} — neighbor-only exchange of indivisible tasks on a
      {!Machine.Topology} neighborhood graph (Demirel & Sbalzarini):
      each phase starts round-robin and runs a few diffusion sweeps
      that move the largest improving task between topology-adjacent
      groups, using speed estimates refreshed every phase. *)

type t =
  | Dynamic  (** centralized pull, pays dispatch latency per task *)
  | Static_lpt  (** LPT with nominal speeds; never adapts *)
  | Stealing  (** round-robin seed + deterministic work stealing *)
  | Hybrid of { interval : int; start : int }
  | Diffusive of { rounds : int }

(** The five raced families with default parameters — the matrix
    columns required by E13 and the ci.sh arena gate. *)
val all : t list

(** Short matrix/policy name: ["dynamic"], ["static"], ["stealing"],
    ["hybrid"], ["diffusive"]. Parameters are not encoded. *)
val name : t -> string

(** [of_name s] — inverse of {!name}, default parameters for the
    parameterized families. *)
val of_name : string -> (t, string) result

type outcome = {
  total_makespan : float;  (** sum of phase makespans (gaps excluded) *)
  phase_makespans : float array;
  mean_utilization : float;  (** mean node-weighted busy fraction *)
}

(** [run scenario b] — simulate every phase of [scenario] under [b].
    Deterministic: costs are the scenario's, durations are
    [cost / (speed · nodes)]. [on_phase] observes each phase's
    simulation result (for histograms/spans). *)
val run : ?on_phase:(int -> Gddi.Sim.result -> unit) -> Scenario.t -> t -> outcome
