(** The race itself: every balancer over every scenario class, scored
    as regret against the dynamic baseline (experiment E13).

    Regret of balancer [b] on scenario [s] is
    [(makespan_b − makespan_dynamic) / makespan_dynamic] — negative
    means [b] beat the stock dynamic scheduler. The per-class winner
    (argmin regret) is what {!Policy} serves back to the fleet. *)

type cell = {
  scheduler : string;  (** {!Balancer.name} *)
  total_makespan_s : float;
  mean_utilization : float;
  regret_vs_dynamic : float;
}

type row = {
  scenario : string;  (** scenario name, e.g. ["drifting-s42"] *)
  cls : Scenario.cls;
  cells : cell list;  (** one per raced balancer, in balancer order *)
  winner : string;  (** scheduler with minimal regret *)
}

type t = {
  seed : int;
  phases : int;
  tasks_per_phase : int;
  groups : int;
  nodes_per_group : int;
  schedulers : string list;
  rows : row list;  (** one per scenario class *)
}

(** [run ~seed classes] — generate one scenario per class and race
    every balancer in [balancers] (default {!Balancer.all}; must
    include [Dynamic], the regret baseline) over it. Emits one
    [cat:"arena"] span per scenario × balancer and feeds every phase
    makespan into the [arena_phase_makespan_s] histogram. *)
val run :
  ?phases:int ->
  ?tasks_per_phase:int ->
  ?groups:int ->
  ?nodes_per_group:int ->
  ?balancers:Balancer.t list ->
  seed:int ->
  Scenario.cls list ->
  t

val schema_version : string

(** Bench-artifact JSON (schema [hslb-bench-arena-v1]) — the
    BENCH_arena.json payload that [hslb obs --arena-bench]
    validates. *)
val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result

val write_bench : string -> t -> unit

(** Human-readable matrix (rows = scenario classes, columns =
    schedulers, entries = regret; winner starred). *)
val pp : Format.formatter -> t -> unit
