(** Workload-scenario zoo: seeded, deterministic multi-phase traces.

    The SC 2012 evaluation races schedulers on paper-shaped workloads
    only; the arena goes wide. A scenario is a sequence of
    barrier-delimited phases (the GDDI execution model of {!Gddi.Sim}),
    each carrying a bag of task costs and a per-group speed factor, so
    one generator covers steady traffic, bursty multi-phase arrivals,
    multi-tenant mixes, heavy-tailed fragment-size distributions, and
    group slowdown/failure mid-run.

    Generation is reproducible: equal seeds give byte-identical traces,
    and every phase draws from its own {!Numerics.Rng.split} stream
    (the E9 two-pass split convention), so phase [i]'s content depends
    only on [(seed, i)] — never on how many phases follow it. *)

type cls =
  | Steady  (** uniform arrivals, homogeneous groups — the control *)
  | Bursty  (** alternating burst/lull phases with idle gaps *)
  | Multi_tenant
      (** two tenants with disparate task sizes; the mix drifts
          from mostly-small to mostly-large across phases *)
  | Heavy_tailed  (** lognormal task sizes with a heavy tail *)
  | Drifting
      (** per-group speeds drift downward mid-run — the class where
          a stale static map loses to periodic rebalancing *)
  | Failure
      (** one group browns out (speed collapses to 5%) at the
          midpoint and never recovers *)

val all_classes : cls list

val class_to_string : cls -> string

(** [class_of_string s] — inverse of {!class_to_string}; the error
    message lists every valid spelling. *)
val class_of_string : string -> (cls, string) result

type phase = {
  costs : float array;
      (** base cost of each task: seconds on one nominal-speed node *)
  speed : float array;
      (** per-group speed multiplier for this phase (length = groups;
          all positive) *)
  gap_s : float;  (** arrival gap preceding the phase (burstiness) *)
}

type t = {
  name : string;
  cls : cls;
  seed : int;
  groups : int;
  nodes_per_group : int;
  phases : phase array;
}

(** [generate cls ~seed] — a deterministic scenario of the given
    class. Defaults: 8 phases, 48 tasks per phase, 8 groups of 4
    nodes. @raise Invalid_argument on non-positive dimensions. *)
val generate :
  ?phases:int ->
  ?tasks_per_phase:int ->
  ?groups:int ->
  ?nodes_per_group:int ->
  cls ->
  seed:int ->
  t

(** [partition t] — the even processor-group partition every balancer
    races on. *)
val partition : t -> Gddi.Group.partition

val num_tasks : t -> int

(** [to_ndjson t] — one header line plus one line per phase; the
    replayable trace format [hslb loadgen --scenario] consumes. *)
val to_ndjson : t -> string

(** [of_ndjson ?file text] — parse a scenario trace. Errors are
    line-numbered diagnostics of the form ["FILE:LINE: message"]
    ([file] defaults to ["scenario"]). *)
val of_ndjson : ?file:string -> string -> (t, string) result

val read_file : string -> (t, string) result
