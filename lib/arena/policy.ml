type t = (Scenario.cls * string) list

(* Pinned from the default zoo (Race.run ~seed:42, Balancer.all,
   default dimensions); test_arena checks this table against a fresh
   run so it cannot drift silently. *)
let builtin =
  [
    (Scenario.Steady, "static");
    (Scenario.Bursty, "static");
    (Scenario.Multi_tenant, "static");
    (Scenario.Heavy_tailed, "static");
    (Scenario.Drifting, "hybrid");
    (Scenario.Failure, "stealing");
  ]

let of_race (race : Race.t) =
  List.map (fun (r : Race.row) -> (r.Race.cls, r.Race.winner)) race.Race.rows

let of_bench_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match Obs.Json.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match Race.of_json j with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok race -> Ok (of_race race)))

let recommend t cls =
  match List.assoc_opt cls t with
  | Some s -> s
  | None -> (
      match List.assoc_opt cls builtin with
      | Some s -> s
      | None -> "dynamic" (* unreachable: builtin covers every class *))

let to_assoc t = t
