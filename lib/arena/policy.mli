(** Scenario class → recommended scheduler, derived from the arena's
    regret matrix. This is what the serve layer consults when a
    request carries a [policy] hint: the client names the workload
    class it believes it is, the server answers with the scheduler the
    arena crowned for that class. *)

type t

(** Winner table baked in from the default zoo
    ([Race.run ~seed:42] over every class with {!Balancer.all}) — used
    when [hslb serve] is not given [--policy-from]. *)
val builtin : t

(** Winner-per-class table of a completed race. *)
val of_race : Race.t -> t

(** Load a table from a BENCH_arena.json artifact (as written by
    [bench --arena] / [hslb arena --out]). *)
val of_bench_file : string -> (t, string) result

(** [recommend t cls] — the scheduler name for [cls]; falls back to
    the {!builtin} entry for classes the loaded matrix did not race. *)
val recommend : t -> Scenario.cls -> string

val to_assoc : t -> (Scenario.cls * string) list
