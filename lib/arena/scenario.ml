module Rng = Numerics.Rng
module Json = Obs.Json

type cls = Steady | Bursty | Multi_tenant | Heavy_tailed | Drifting | Failure

let all_classes = [ Steady; Bursty; Multi_tenant; Heavy_tailed; Drifting; Failure ]

let class_to_string = function
  | Steady -> "steady"
  | Bursty -> "bursty"
  | Multi_tenant -> "multi-tenant"
  | Heavy_tailed -> "heavy-tailed"
  | Drifting -> "drifting"
  | Failure -> "failure"

let class_names = String.concat " | " (List.map class_to_string all_classes)

let class_of_string s =
  match List.find_opt (fun c -> class_to_string c = s) all_classes with
  | Some c -> Ok c
  | None ->
      Error (Printf.sprintf "unknown scenario class %S (expected %s)" s class_names)

type phase = { costs : float array; speed : float array; gap_s : float }

type t = {
  name : string;
  cls : cls;
  seed : int;
  groups : int;
  nodes_per_group : int;
  phases : phase array;
}

let partition t =
  Gddi.Group.even_partition ~total_nodes:(t.groups * t.nodes_per_group) ~groups:t.groups

let num_tasks t =
  Array.fold_left (fun acc p -> acc + Array.length p.costs) 0 t.phases

(* Every phase fills from its own split stream, taken from the root in a
   first pass (the E9 two-pass convention): phase [i]'s stream depends
   only on [(seed, i)], so shortening or extending the scenario leaves
   the shared prefix byte-identical. Meta decisions (which groups drift,
   which group fails) come from a dedicated stream split off first. *)
let generate ?(phases = 8) ?(tasks_per_phase = 48) ?(groups = 8) ?(nodes_per_group = 4)
    cls ~seed =
  if phases <= 0 || tasks_per_phase <= 0 || groups <= 0 || nodes_per_group <= 0 then
    invalid_arg "Scenario.generate: dimensions must be positive";
  let root = Rng.create seed in
  let meta = Rng.split root in
  let phase_rngs = Array.init phases (fun _ -> Rng.split root) in
  (* fraction of the run elapsed by phase i, in [0, 1] *)
  let progress i = float_of_int i /. float_of_int (max 1 (phases - 1)) in
  let lognormal_costs rng n ~mu ~sigma =
    Array.init n (fun _ -> Rng.lognormal rng ~mu ~sigma)
  in
  let flat_speed = Array.make groups 1.0 in
  (* class-wide meta draws, fixed before any phase is filled *)
  let drift =
    match cls with
    | Drifting ->
        Array.init groups (fun _ ->
            if Rng.bool meta then Rng.uniform meta ~lo:0.3 ~hi:0.7 else 0.0)
    | _ -> [||]
  in
  let fail_group = match cls with Failure -> Rng.int meta groups | _ -> 0 in
  let make_phase i =
    let rng = phase_rngs.(i) in
    match cls with
    | Steady ->
        {
          costs = lognormal_costs rng tasks_per_phase ~mu:0.0 ~sigma:0.25;
          speed = flat_speed;
          gap_s = 0.0;
        }
    | Bursty ->
        (* alternate burst (2x tasks, back to back) and lull (quarter
           load after an idle gap) phases *)
        if i mod 2 = 0 then
          {
            costs = lognormal_costs rng (2 * tasks_per_phase) ~mu:0.0 ~sigma:0.35;
            speed = flat_speed;
            gap_s = 0.0;
          }
        else
          {
            costs =
              lognormal_costs rng (max 1 (tasks_per_phase / 4)) ~mu:0.0 ~sigma:0.35;
            speed = flat_speed;
            gap_s = Rng.uniform rng ~lo:0.5 ~hi:2.0;
          }
    | Multi_tenant ->
        (* two tenants, small (~0.4) and large (~3.0); the large share
           drifts upward across the run *)
        let frac_large = 0.15 +. (0.6 *. progress i) in
        let costs =
          Array.init tasks_per_phase (fun _ ->
              if Rng.float rng 1.0 < frac_large then
                Rng.lognormal rng ~mu:(Float.log 3.0) ~sigma:0.25
              else Rng.lognormal rng ~mu:(Float.log 0.4) ~sigma:0.25)
        in
        { costs; speed = flat_speed; gap_s = 0.0 }
    | Heavy_tailed ->
        {
          costs = lognormal_costs rng tasks_per_phase ~mu:0.0 ~sigma:1.4;
          speed = flat_speed;
          gap_s = 0.0;
        }
    | Drifting ->
        let speed =
          Array.init groups (fun g ->
              Float.max 0.25 (1.0 -. (drift.(g) *. progress i)))
        in
        {
          costs = lognormal_costs rng tasks_per_phase ~mu:0.0 ~sigma:0.25;
          speed;
          gap_s = 0.0;
        }
    | Failure ->
        (* brownout, not blackout: 5% speed keeps durations finite while
           still forcing a rebalance away from the sick group *)
        let speed =
          Array.init groups (fun g ->
              if g = fail_group && i >= phases / 2 then 0.05 else 1.0)
        in
        {
          costs = lognormal_costs rng tasks_per_phase ~mu:0.0 ~sigma:0.25;
          speed;
          gap_s = 0.0;
        }
  in
  {
    name = Printf.sprintf "%s-s%d" (class_to_string cls) seed;
    cls;
    seed;
    groups;
    nodes_per_group;
    phases = Array.init phases make_phase;
  }

(* --- NDJSON trace format ------------------------------------------- *)

let format_version = "arena-v1"

let to_ndjson t =
  let buf = Buffer.create 4096 in
  let header =
    Json.Obj
      [
        ("scenario", Json.Str format_version);
        ("name", Json.Str t.name);
        ("class", Json.Str (class_to_string t.cls));
        ("seed", Json.Num (float_of_int t.seed));
        ("groups", Json.Num (float_of_int t.groups));
        ("nodes_per_group", Json.Num (float_of_int t.nodes_per_group));
        ("phases", Json.Num (float_of_int (Array.length t.phases)));
      ]
  in
  Buffer.add_string buf (Json.to_string header);
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i p ->
      let floats a = Json.Arr (Array.to_list (Array.map (fun x -> Json.Num x) a)) in
      let line =
        Json.Obj
          [
            ("phase", Json.Num (float_of_int i));
            ("gap_s", Json.Num p.gap_s);
            ("costs", floats p.costs);
            ("speed", floats p.speed);
          ]
      in
      Buffer.add_string buf (Json.to_string line);
      Buffer.add_char buf '\n')
    t.phases;
  Buffer.contents buf

(* Parsing: every failure is reported as "FILE:LINE: message" so a bad
   hand-edited trace points at the offending line, not just the file. *)

exception Bad of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Bad (line, msg))) fmt

let field line obj key =
  match Json.member key obj with
  | Some v -> v
  | None -> fail line "missing field %S" key

let num_field line obj key =
  match Json.num (field line obj key) with
  | Some v -> v
  | None ->
      fail line "field %S: expected a number, got %s" key
        (Json.type_name (field line obj key))

let int_field line obj key =
  match Json.int_ (field line obj key) with
  | Some v -> v
  | None -> fail line "field %S: expected an integer" key

let str_field line obj key =
  match Json.str (field line obj key) with
  | Some v -> v
  | None ->
      fail line "field %S: expected a string, got %s" key
        (Json.type_name (field line obj key))

let float_array_field line obj key =
  match Json.arr (field line obj key) with
  | None ->
      fail line "field %S: expected an array, got %s" key
        (Json.type_name (field line obj key))
  | Some items ->
      let a = Array.of_list items in
      Array.mapi
        (fun i v ->
          match Json.num v with
          | Some x when Float.is_finite x -> x
          | _ -> fail line "field %S: element %d is not a finite number" key i)
        a

let of_ndjson ?(file = "scenario") text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  try
    match lines with
    | [] -> Error (Printf.sprintf "%s:1: empty scenario file" file)
    | (hline, htext) :: rest ->
        let parse_obj line text =
          match Json.parse text with
          | Error e -> fail line "%s" e
          | Ok (Json.Obj _ as o) -> o
          | Ok v -> fail line "expected an object, got %s" (Json.type_name v)
        in
        let h = parse_obj hline htext in
        let version = str_field hline h "scenario" in
        if version <> format_version then
          fail hline "unsupported scenario format %S (expected %S)" version
            format_version;
        let name = str_field hline h "name" in
        let cls =
          match class_of_string (str_field hline h "class") with
          | Ok c -> c
          | Error e -> fail hline "field \"class\": %s" e
        in
        let seed = int_field hline h "seed" in
        let groups = int_field hline h "groups" in
        let nodes_per_group = int_field hline h "nodes_per_group" in
        let phases = int_field hline h "phases" in
        if groups <= 0 then fail hline "field \"groups\": must be positive";
        if nodes_per_group <= 0 then
          fail hline "field \"nodes_per_group\": must be positive";
        if phases <= 0 then fail hline "field \"phases\": must be positive";
        if List.length rest <> phases then
          fail hline "header declares %d phases but the file has %d phase lines"
            phases (List.length rest);
        let parse_phase idx (line, text) =
          let o = parse_obj line text in
          let i = int_field line o "phase" in
          if i <> idx then fail line "expected phase %d, got phase %d" idx i;
          let gap_s = num_field line o "gap_s" in
          if not (Float.is_finite gap_s) || gap_s < 0.0 then
            fail line "field \"gap_s\": must be finite and non-negative";
          let costs = float_array_field line o "costs" in
          Array.iteri
            (fun j c ->
              if c < 0.0 then fail line "field \"costs\": element %d is negative" j)
            costs;
          let speed = float_array_field line o "speed" in
          if Array.length speed <> groups then
            fail line "field \"speed\": expected %d entries (one per group), got %d"
              groups (Array.length speed);
          Array.iteri
            (fun j s ->
              if s <= 0.0 then
                fail line "field \"speed\": element %d must be positive" j)
            speed;
          { costs; speed; gap_s }
        in
        Ok
          {
            name;
            cls;
            seed;
            groups;
            nodes_per_group;
            phases = Array.of_list (List.mapi parse_phase rest);
          }
  with Bad (line, msg) -> Error (Printf.sprintf "%s:%d: %s" file line msg)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_ndjson ~file:path text
  | exception Sys_error e -> Error e
