module Sim = Gddi.Sim
module Schedulers = Gddi.Schedulers
(* lib/machine is unwrapped: Topology is a top-level module *)

type t =
  | Dynamic
  | Static_lpt
  | Stealing
  | Hybrid of { interval : int; start : int }
  | Diffusive of { rounds : int }

let all =
  [ Dynamic; Static_lpt; Stealing; Hybrid { interval = 2; start = 1 }; Diffusive { rounds = 3 } ]

let name = function
  | Dynamic -> "dynamic"
  | Static_lpt -> "static"
  | Stealing -> "stealing"
  | Hybrid _ -> "hybrid"
  | Diffusive _ -> "diffusive"

let of_name s =
  match List.find_opt (fun b -> name b = s) all with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown balancer %S (expected %s)" s
           (String.concat " | " (List.map name all)))

type outcome = {
  total_makespan : float;
  phase_makespans : float array;
  mean_utilization : float;
}

(* Serialization cost of the centralized dynamic dispatcher — grows
   with group count, the effect the SC 2012 paper measures. *)
let dispatch_latency ~groups = 0.001 *. float_of_int groups

(* Cost charged to the hybrid balancer each time it adopts fresh speed
   observations: gathering loads and recomputing the map is a
   collective, so it scales with group count. *)
let rebalance_cost ~groups = 0.005 *. float_of_int groups

(* Recover per-group speed from a finished phase: each group's nominal
   work (at speed 1) over its busy time. Exact for our duration model
   [cost / (speed · nodes)]; groups that ran nothing keep their old
   estimate. *)
let observe_speeds ~partition ~costs (r : Sim.result) est =
  let groups = Array.length partition in
  let work = Array.make groups 0.0 in
  Array.iteri
    (fun task g -> work.(g) <- work.(g) +. costs.(task)) r.Sim.assignment;
  for g = 0 to groups - 1 do
    let busy = r.Sim.group_busy.(g) in
    if busy > 1e-12 then
      est.(g) <- work.(g) /. float_of_int partition.(g).Gddi.Group.nodes /. busy
  done

(* Neighborhood graph for diffusive exchange: place the groups
   compactly on a near-cubic torus, take min-hop distance between
   group node sets, and connect each group to its nearest other
   group(s), symmetrized. *)
let neighbor_graph ~groups ~nodes_per_group =
  let topo = Topology.for_nodes (groups * nodes_per_group) in
  let sizes = List.init groups (fun _ -> nodes_per_group) in
  let ids = Array.of_list (Topology.place topo ~placement:Compact ~sizes) in
  let dist g h =
    let best = ref max_int in
    Array.iter
      (fun a ->
        Array.iter
          (fun b ->
            let d = Topology.distance topo a b in
            if d < !best then best := d)
          ids.(h))
      ids.(g);
    !best
  in
  let neighbors = Array.make groups [] in
  let add g h = if not (List.mem h neighbors.(g)) then neighbors.(g) <- h :: neighbors.(g) in
  for g = 0 to groups - 1 do
    let best = ref max_int in
    for h = 0 to groups - 1 do
      if h <> g then best := min !best (dist g h)
    done;
    for h = 0 to groups - 1 do
      if h <> g && dist g h = !best then begin
        add g h;
        add h g
      end
    done
  done;
  Array.map (fun l -> List.sort compare l) neighbors

(* One diffusion sweep: for every edge (g, h) with g more loaded,
   move the largest task on g whose move strictly lowers the pair's
   max predicted finish. Deterministic: groups ascending, candidate
   tasks scanned by descending cost then ascending id. *)
let diffuse ~partition ~costs ~est ~neighbors ~rounds map =
  let groups = Array.length partition in
  let num_tasks = Array.length map in
  let rate g = est.(g) *. float_of_int partition.(g).Gddi.Group.nodes in
  let load = Array.make groups 0.0 in
  for t = 0 to num_tasks - 1 do
    load.(map.(t)) <- load.(map.(t)) +. (costs.(t) /. rate map.(t))
  done;
  for _ = 1 to rounds do
    for g = 0 to groups - 1 do
      List.iter
        (fun h ->
          if load.(g) > load.(h) then begin
            let before = load.(g) in
            let best = ref (-1) in
            for t = 0 to num_tasks - 1 do
              if map.(t) = g then begin
                let dg = costs.(t) /. rate g and dh = costs.(t) /. rate h in
                let after = Float.max (load.(g) -. dg) (load.(h) +. dh) in
                if after < before -. 1e-12
                   && (!best = -1 || costs.(t) > costs.(!best)) then best := t
              end
            done;
            if !best >= 0 then begin
              let t = !best in
              load.(g) <- load.(g) -. (costs.(t) /. rate g);
              load.(h) <- load.(h) +. (costs.(t) /. rate h);
              map.(t) <- h
            end
          end)
        neighbors.(g)
    done
  done;
  map

let run ?(on_phase = fun _ _ -> ()) (sc : Scenario.t) b =
  let partition = Scenario.partition sc in
  let groups = sc.Scenario.groups in
  let phases = sc.Scenario.phases in
  let n_phases = Array.length phases in
  let phase_makespans = Array.make n_phases 0.0 in
  let util_sum = ref 0.0 in
  (* adaptive state (hybrid and diffusive): planner-side speed
     estimates, refreshed from the previous phase's observations *)
  let est = Array.make groups 1.0 in
  let observed = Array.make groups 1.0 in
  let neighbors =
    match b with
    | Diffusive _ -> neighbor_graph ~groups ~nodes_per_group:sc.Scenario.nodes_per_group
    | _ -> [||]
  in
  Array.iteri
    (fun i (p : Scenario.phase) ->
      let costs = p.Scenario.costs in
      let num_tasks = Array.length costs in
      let duration ~task ~group =
        costs.(task)
        /. (p.Scenario.speed.(group.Gddi.Group.id)
            *. float_of_int group.Gddi.Group.nodes)
      in
      (* planner's estimate: nominal or observed speeds, never the
         oracle truth *)
      let predicted speeds ~task ~group =
        costs.(task)
        /. (speeds.(group.Gddi.Group.id) *. float_of_int group.Gddi.Group.nodes)
      in
      let extra = ref 0.0 in
      let schedule =
        match b with
        | Dynamic -> Sim.Dynamic
        | Static_lpt ->
            Sim.Static
              (Schedulers.lpt partition
                 ~predicted:(predicted (Array.make groups 1.0))
                 ~num_tasks)
        | Stealing -> Sim.Stealing (Schedulers.round_robin ~num_tasks ~num_groups:groups)
        | Hybrid { interval; start } ->
            if i >= start && (i - start) mod max 1 interval = 0 then begin
              Array.blit observed 0 est 0 groups;
              extra := rebalance_cost ~groups
            end;
            Sim.Static (Schedulers.lpt partition ~predicted:(predicted est) ~num_tasks)
        | Diffusive { rounds } ->
            Array.blit observed 0 est 0 groups;
            let map = Schedulers.round_robin ~num_tasks ~num_groups:groups in
            Sim.Static (diffuse ~partition ~costs ~est ~neighbors ~rounds map)
      in
      let dispatch_latency =
        match b with Dynamic -> dispatch_latency ~groups | _ -> 0.0
      in
      let r = Sim.run_phase ~dispatch_latency partition ~num_tasks ~duration schedule in
      observe_speeds ~partition ~costs r observed;
      on_phase i r;
      phase_makespans.(i) <- r.Sim.makespan +. !extra;
      util_sum := !util_sum +. Sim.utilization partition r)
    phases;
  {
    total_makespan = Array.fold_left ( +. ) 0.0 phase_makespans;
    phase_makespans;
    mean_utilization = !util_sum /. float_of_int (max 1 n_phases);
  }
