module Json = Obs.Json

type cell = {
  scheduler : string;
  total_makespan_s : float;
  mean_utilization : float;
  regret_vs_dynamic : float;
}

type row = {
  scenario : string;
  cls : Scenario.cls;
  cells : cell list;
  winner : string;
}

type t = {
  seed : int;
  phases : int;
  tasks_per_phase : int;
  groups : int;
  nodes_per_group : int;
  schedulers : string list;
  rows : row list;
}

let schema_version = "hslb-bench-arena-v1"

let phase_hist =
  lazy (Obs.Metrics.histogram ~lo:1e-4 ~hi:1e4 "arena_phase_makespan_s")

let run ?(phases = 8) ?(tasks_per_phase = 48) ?(groups = 8) ?(nodes_per_group = 4)
    ?(balancers = Balancer.all) ~seed classes =
  if not (List.mem Balancer.Dynamic balancers) then
    invalid_arg "Race.run: balancers must include Dynamic (the regret baseline)";
  let race_row cls =
    let sc =
      Scenario.generate ~phases ~tasks_per_phase ~groups ~nodes_per_group cls ~seed
    in
    let outcomes =
      List.map
        (fun b ->
          let bname = Balancer.name b in
          let on_phase _ (r : Gddi.Sim.result) =
            Obs.Metrics.Histogram.observe (Lazy.force phase_hist) r.Gddi.Sim.makespan
          in
          let o =
            Obs.Span.with_span ~cat:"arena"
              ~args:[ ("scenario", sc.Scenario.name); ("scheduler", bname) ]
              ("arena." ^ bname)
              (fun () -> Balancer.run ~on_phase sc b)
          in
          (bname, o))
        balancers
    in
    let dyn =
      (List.assoc (Balancer.name Balancer.Dynamic) outcomes).Balancer.total_makespan
    in
    let cells =
      List.map
        (fun (bname, (o : Balancer.outcome)) ->
          {
            scheduler = bname;
            total_makespan_s = o.Balancer.total_makespan;
            mean_utilization = o.Balancer.mean_utilization;
            regret_vs_dynamic =
              (if dyn > 0.0 then (o.Balancer.total_makespan -. dyn) /. dyn else 0.0);
          })
        outcomes
    in
    let winner =
      List.fold_left
        (fun best c ->
          match best with
          | Some b when b.regret_vs_dynamic <= c.regret_vs_dynamic -> best
          | _ -> Some c)
        None cells
      |> Option.get
    in
    { scenario = sc.Scenario.name; cls; cells; winner = winner.scheduler }
  in
  {
    seed;
    phases;
    tasks_per_phase;
    groups;
    nodes_per_group;
    schedulers = List.map Balancer.name balancers;
    rows = List.map race_row classes;
  }

(* --- JSON ----------------------------------------------------------- *)

let to_json t =
  let cell_json c =
    Json.Obj
      [
        ("scheduler", Json.Str c.scheduler);
        ("total_makespan_s", Json.Num c.total_makespan_s);
        ("mean_utilization", Json.Num c.mean_utilization);
        ("regret_vs_dynamic", Json.Num c.regret_vs_dynamic);
      ]
  in
  let row_json r =
    Json.Obj
      [
        ("scenario", Json.Str r.scenario);
        ("class", Json.Str (Scenario.class_to_string r.cls));
        ("winner", Json.Str r.winner);
        ("cells", Json.Arr (List.map cell_json r.cells));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("seed", Json.Num (float_of_int t.seed));
      ("phases", Json.Num (float_of_int t.phases));
      ("tasks_per_phase", Json.Num (float_of_int t.tasks_per_phase));
      ("groups", Json.Num (float_of_int t.groups));
      ("nodes_per_group", Json.Num (float_of_int t.nodes_per_group));
      ("schedulers", Json.Arr (List.map (fun s -> Json.Str s) t.schedulers));
      ("rows", Json.Arr (List.map row_json t.rows));
      ( "policy",
        Json.Obj
          (List.map
             (fun r -> (Scenario.class_to_string r.cls, Json.Str r.winner))
             t.rows) );
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let get what f key obj =
    match Option.bind (Json.member key obj) f with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "field %S: expected %s" key what)
  in
  let int_f = get "an integer" Json.int_ in
  let num_f = get "a number" Json.num in
  let str_f = get "a string" Json.str in
  let arr_f = get "an array" Json.arr in
  let* schema = str_f "schema" j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported schema %S (expected %S)" schema schema_version)
  else
    let* seed = int_f "seed" j in
    let* phases = int_f "phases" j in
    let* tasks_per_phase = int_f "tasks_per_phase" j in
    let* groups = int_f "groups" j in
    let* nodes_per_group = int_f "nodes_per_group" j in
    let* scheds = arr_f "schedulers" j in
    let* schedulers =
      List.fold_right
        (fun v acc ->
          let* acc = acc in
          match Json.str v with
          | Some s -> Ok (s :: acc)
          | None -> Error "field \"schedulers\": expected an array of strings")
        scheds (Ok [])
    in
    let parse_cell c =
      let* scheduler = str_f "scheduler" c in
      let* total_makespan_s = num_f "total_makespan_s" c in
      let* mean_utilization = num_f "mean_utilization" c in
      let* regret_vs_dynamic = num_f "regret_vs_dynamic" c in
      Ok { scheduler; total_makespan_s; mean_utilization; regret_vs_dynamic }
    in
    let parse_row r =
      let* scenario = str_f "scenario" r in
      let* cls_s = str_f "class" r in
      let* cls = Scenario.class_of_string cls_s in
      let* winner = str_f "winner" r in
      let* cells_j = arr_f "cells" r in
      let* cells =
        List.fold_right
          (fun c acc ->
            let* acc = acc in
            let* cell = parse_cell c in
            Ok (cell :: acc))
          cells_j (Ok [])
      in
      Ok { scenario; cls; cells; winner }
    in
    let* rows_j = arr_f "rows" j in
    let* rows =
      List.fold_right
        (fun r acc ->
          let* acc = acc in
          let* row = parse_row r in
          Ok (row :: acc))
        rows_j (Ok [])
    in
    Ok { seed; phases; tasks_per_phase; groups; nodes_per_group; schedulers; rows }

let write_bench path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json t));
      Out_channel.output_char oc '\n')

let pp fmt t =
  let open Format in
  fprintf fmt "@[<v>regret vs dynamic (negative = beats dynamic; * = winner)@,";
  fprintf fmt "%-14s" "class";
  List.iter (fun s -> fprintf fmt " %12s" s) t.schedulers;
  fprintf fmt "@,";
  List.iter
    (fun r ->
      fprintf fmt "%-14s" (Scenario.class_to_string r.cls);
      List.iter
        (fun c ->
          let star = if c.scheduler = r.winner then "*" else "" in
          fprintf fmt " %12s" (sprintf "%+.3f%s" c.regret_vs_dynamic star))
        r.cells;
      fprintf fmt "@,")
    t.rows;
  fprintf fmt "@]"
