(** Nonlinear-program description.

    minimize [f x] subject to [g_i x <= 0], [h_j x = 0] and box bounds.
    Gradients are optional; central differences are used when absent.
    The MINLP layer only ever emits convex [g_i] (the fitted performance
    functions have non-negative coefficients), which is what makes the
    branch-and-bound bounds valid.

    The [*_into] / [*_acc] variants are allocation-free fast paths used
    by the AL/SPG inner loops: when present they must compute exactly
    the same values as their allocating counterparts (the relaxation
    layer derives both from the same compiled expression programs). *)

type kind = Ineq  (** [g x <= 0] *) | Eq  (** [g x = 0] *)

type constr = {
  g : Numerics.Vec.t -> float;
  g_grad : (Numerics.Vec.t -> Numerics.Vec.t) option;
  g_grad_acc : (Numerics.Vec.t -> float -> Numerics.Vec.t -> unit) option;
      (** [acc x w out] accumulates [out += w · ∇g(x)] in place, with
          per-entry rounding matching [Vec.axpy w (∇g x) out]. *)
  kind : kind;
  label : string;  (** for diagnostics *)
}

type t = {
  dim : int;
  f : Numerics.Vec.t -> float;
  f_grad : (Numerics.Vec.t -> Numerics.Vec.t) option;
  f_grad_into : (Numerics.Vec.t -> Numerics.Vec.t -> unit) option;
      (** writes the full dense objective gradient into its second
          argument; must equal [f_grad] output bit-for-bit. *)
  lo : Numerics.Vec.t;
  hi : Numerics.Vec.t;
  constraints : constr list;
}

(** [make ~dim ~f ()] — unconstrained problem over [(-inf, inf)^dim]. *)
val make :
  ?f_grad:(Numerics.Vec.t -> Numerics.Vec.t) ->
  ?f_grad_into:(Numerics.Vec.t -> Numerics.Vec.t -> unit) ->
  ?lo:Numerics.Vec.t ->
  ?hi:Numerics.Vec.t ->
  ?constraints:constr list ->
  dim:int ->
  f:(Numerics.Vec.t -> float) ->
  unit ->
  t

(** [ineq ?grad ?grad_acc ?label g] — an inequality constraint [g x <= 0]. *)
val ineq :
  ?grad:(Numerics.Vec.t -> Numerics.Vec.t) ->
  ?grad_acc:(Numerics.Vec.t -> float -> Numerics.Vec.t -> unit) ->
  ?label:string ->
  (Numerics.Vec.t -> float) ->
  constr

(** [eq ?grad ?grad_acc ?label g] — an equality constraint [g x = 0]. *)
val eq :
  ?grad:(Numerics.Vec.t -> Numerics.Vec.t) ->
  ?grad_acc:(Numerics.Vec.t -> float -> Numerics.Vec.t -> unit) ->
  ?label:string ->
  (Numerics.Vec.t -> float) ->
  constr

(** [violation p x] — max over constraints of their violation
    ([max 0 (g x)] for inequalities, [|h x|] for equalities);
    box violations included. [0.] when feasible. *)
val violation : t -> Numerics.Vec.t -> float

(** [gradient_of p x] — analytic gradient when present, else central
    differences. *)
val gradient_of : t -> Numerics.Vec.t -> Numerics.Vec.t

(** [gradient_into p x out] — like {!gradient_of} but writing into
    [out]; uses the allocation-free [f_grad_into] when present. *)
val gradient_into : t -> Numerics.Vec.t -> Numerics.Vec.t -> unit
