open Numerics

type result = { x : Vec.t; f : float; iterations : int; converged : bool }

let history_len = 10 (* non-monotone window (GLL) *)

let minimize ?(max_iter = 1000) ?(tol = 1e-8) ?budget ?tally ?grad ~f ~lo ~hi x0 =
  let n = Vec.dim x0 in
  if Vec.dim lo <> n || Vec.dim hi <> n then invalid_arg "Bounded.minimize: dimension mismatch";
  let gradient = match grad with Some g -> g | None -> Num_diff.gradient f in
  let project v = Vec.clamp ~lo ~hi v in
  let x = ref (project (Vec.copy x0)) in
  let fx = ref (f !x) in
  let g = ref (gradient !x) in
  let history = Array.make history_len !fx in
  let hist_idx = ref 0 in
  let alpha = ref 1. in
  let iterations = ref 0 in
  let converged = ref false in
  (* stationarity measure: || P(x - g) - x ||_inf *)
  let pg_norm () = Vec.norm_inf (Vec.sub (project (Vec.sub !x !g)) !x) in
  if pg_norm () <= tol then converged := true;
  (* Each SPG iteration runs a line search with up to 40 function
     evaluations, so polling the budget once per iteration is cheap. *)
  let out_of_budget () =
    match budget with
    | None -> false
    | Some b ->
      Engine.Budget.add_iters b 1;
      Engine.Budget.check b <> None
  in
  while (not !converged) && !iterations < max_iter && not (out_of_budget ()) do
    incr iterations;
    Engine.Telemetry.bump tally Engine.Telemetry.add_nlp_iterations 1;
    let d = Vec.sub (project (Vec.axpy (-. !alpha) !g !x)) !x in
    let gd = Vec.dot !g d in
    if Float.abs gd < 1e-300 || Vec.norm_inf d <= tol *. 1e-3 then converged := true
    else begin
      (* non-monotone Armijo on the reference value f_max *)
      let f_max = Array.fold_left Float.max neg_infinity history in
      let lambda = ref 1. in
      let accepted = ref false in
      let x_new = ref !x and f_new = ref !fx in
      let tries = ref 0 in
      while (not !accepted) && !tries < 40 do
        incr tries;
        let cand = Vec.axpy !lambda d !x in
        let fc = f cand in
        if (not (Float.is_nan fc)) && fc <= f_max +. (1e-4 *. !lambda *. gd) then begin
          accepted := true;
          x_new := cand;
          f_new := fc
        end
        else lambda := !lambda /. 2.
      done;
      Engine.Telemetry.bump tally Engine.Telemetry.add_line_search_steps !tries;
      if not !accepted then converged := true (* line search failed: accept stall *)
      else begin
        let g_new = gradient !x_new in
        (* Barzilai–Borwein step: alpha = s·s / s·y *)
        let s = Vec.sub !x_new !x in
        let y = Vec.sub g_new !g in
        let sy = Vec.dot s y in
        (* degenerate curvature (linear stretches): grow the step
           multiplicatively with the iterate scale so huge boxes
           (epigraph variables) are traversed in a few iterations
           without overshooting unbounded directions *)
        alpha :=
          (if sy <= 1e-300 then
             Float.min 1e12
               (100. *. Float.max 1. (Vec.norm_inf !x_new) /. Float.max 1e-12 (Vec.norm_inf g_new))
           else Float.min 1e12 (Float.max 1e-12 (Vec.dot s s /. sy)));
        x := !x_new;
        fx := !f_new;
        g := g_new;
        history.(!hist_idx mod history_len) <- !fx;
        incr hist_idx;
        if pg_norm () <= tol then converged := true
      end
    end
  done;
  { x = !x; f = !fx; iterations = !iterations; converged = !converged }
