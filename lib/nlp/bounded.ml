open Numerics

type result = { x : Vec.t; f : float; iterations : int; converged : bool }

let history_len = 10 (* non-monotone window (GLL) *)

(* The SPG loop below is the innermost kernel of every relaxation solve:
   hundreds of thousands of iterations with a line search of up to 40
   function evaluations each.  It therefore runs over preallocated
   buffers with zero allocation per iteration.  Every fused loop
   replays the exact floating-point operations (and order) of the
   original Vec.sub/axpy/clamp/dot/norm_inf composition, so solver
   trajectories — and hence final objectives — are bit-for-bit
   unchanged. *)
let minimize ?(max_iter = 1000) ?(tol = 1e-8) ?stall_iters ?budget ?tally ?grad
    ?grad_into ~f ~lo ~hi x0 =
  let n = Vec.dim x0 in
  if Vec.dim lo <> n || Vec.dim hi <> n then invalid_arg "Bounded.minimize: dimension mismatch";
  let grad_into =
    match grad_into with
    | Some gi -> gi
    | None ->
      let gradient = match grad with Some g -> g | None -> Num_diff.gradient f in
      fun v out -> Array.blit (gradient v) 0 out 0 n
  in
  let x = Array.make n 0. in
  Array.blit x0 0 x 0 n;
  for i = 0 to n - 1 do
    x.(i) <- Float.min hi.(i) (Float.max lo.(i) x.(i))
  done;
  let fx = ref (f x) in
  let g = ref (Array.make n 0.) and g_new = ref (Array.make n 0.) in
  grad_into x !g;
  let d = Array.make n 0. and cand = Array.make n 0. in
  let history = Array.make history_len !fx in
  let hist_idx = ref 0 in
  let alpha = ref 1. in
  let iterations = ref 0 in
  let converged = ref false in
  (* optional stagnation cutoff: an ill-conditioned augmented
     Lagrangian (mu up to 1e10) can leave the projected gradient
     plateaued above [tol] for thousands of iterations; once the best
     value seen has not improved by a relative 1e-12 for [stall_iters]
     accepted steps, further inner iterations are pure waste — the
     caller's outer loop (multiplier update) is what makes progress.
     Disabled when [stall_iters] is [None], keeping the historical
     trajectory for standalone uses. *)
  let stalled = ref false in
  let f_best = ref !fx in
  let since_best = ref 0 in
  let note_accept fc =
    match stall_iters with
    | None -> ()
    | Some k ->
      if fc < !f_best -. (1e-12 *. (1. +. Float.abs !f_best)) then begin
        f_best := fc;
        since_best := 0
      end
      else begin
        incr since_best;
        if !since_best >= k then stalled := true
      end
  in
  (* stationarity measure: || P(x - g) - x ||_inf *)
  let pg_norm () =
    let gv = !g in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let step = Float.min hi.(i) (Float.max lo.(i) (x.(i) -. gv.(i))) -. x.(i) in
      acc := Float.max !acc (Float.abs step)
    done;
    !acc
  in
  if pg_norm () <= tol then converged := true;
  (* Each SPG iteration runs a line search with up to 40 function
     evaluations, so polling the budget once per iteration is cheap. *)
  let out_of_budget () =
    match budget with
    | None -> false
    | Some b ->
      Engine.Budget.add_iters b 1;
      Engine.Budget.check b <> None
  in
  while
    (not !converged) && (not !stalled) && !iterations < max_iter
    && not (out_of_budget ())
  do
    incr iterations;
    Engine.Telemetry.bump tally Engine.Telemetry.add_nlp_iterations 1;
    (* d = P(x - alpha·g) - x with g·d and ||d||_inf in the same pass *)
    let gv = !g in
    let a = -. !alpha in
    let gd = ref 0. and d_inf = ref 0. in
    for i = 0 to n - 1 do
      let di = Float.min hi.(i) (Float.max lo.(i) ((a *. gv.(i)) +. x.(i))) -. x.(i) in
      d.(i) <- di;
      gd := !gd +. (gv.(i) *. di);
      d_inf := Float.max !d_inf (Float.abs di)
    done;
    let gd = !gd in
    if Float.abs gd < 1e-300 || !d_inf <= tol *. 1e-3 then converged := true
    else begin
      (* non-monotone Armijo on the reference value f_max *)
      let f_max = Array.fold_left Float.max neg_infinity history in
      let lambda = ref 1. in
      let accepted = ref false in
      let f_new = ref !fx in
      let tries = ref 0 in
      while (not !accepted) && !tries < 40 do
        incr tries;
        let l = !lambda in
        for i = 0 to n - 1 do
          cand.(i) <- (l *. d.(i)) +. x.(i)
        done;
        let fc = f cand in
        if (not (Float.is_nan fc)) && fc <= f_max +. (1e-4 *. l *. gd) then begin
          accepted := true;
          f_new := fc
        end
        else lambda := !lambda /. 2.
      done;
      Engine.Telemetry.bump tally Engine.Telemetry.add_line_search_steps !tries;
      if not !accepted then converged := true (* line search failed: accept stall *)
      else begin
        grad_into cand !g_new;
        let gn = !g_new in
        (* Barzilai–Borwein step: alpha = s·s / s·y, s and y never
           materialized *)
        let sy = ref 0. and ss = ref 0. in
        for i = 0 to n - 1 do
          let si = cand.(i) -. x.(i) in
          let yi = gn.(i) -. gv.(i) in
          sy := !sy +. (si *. yi);
          ss := !ss +. (si *. si)
        done;
        (* degenerate curvature (linear stretches): grow the step
           multiplicatively with the iterate scale so huge boxes
           (epigraph variables) are traversed in a few iterations
           without overshooting unbounded directions *)
        alpha :=
          (if !sy <= 1e-300 then begin
             let x_inf = ref 0. and g_inf = ref 0. in
             for i = 0 to n - 1 do
               x_inf := Float.max !x_inf (Float.abs cand.(i))
             done;
             for i = 0 to n - 1 do
               g_inf := Float.max !g_inf (Float.abs gn.(i))
             done;
             Float.min 1e12 (100. *. Float.max 1. !x_inf /. Float.max 1e-12 !g_inf)
           end
           else Float.min 1e12 (Float.max 1e-12 (!ss /. !sy)));
        Array.blit cand 0 x 0 n;
        fx := !f_new;
        let tmp = !g in
        g := !g_new;
        g_new := tmp;
        history.(!hist_idx mod history_len) <- !fx;
        incr hist_idx;
        note_accept !fx;
        if pg_norm () <= tol then converged := true
      end
    end
  done;
  { x; f = !fx; iterations = !iterations; converged = !converged }
