open Numerics

type result = {
  x : Vec.t;
  f : float;
  violation : float;
  outer_iterations : int;
  converged : bool;
}

let run ?(max_outer = 50) ?(tol_feas = 1e-7) ?(tol_opt = 1e-7) ?budget ?tally
    (p : Nlp_problem.t) x0 =
  let constraints = Array.of_list p.constraints in
  let m = Array.length constraints in
  let lambda = Array.make m 0. in
  let mu = ref 10. in
  let x = ref (Vec.clamp ~lo:p.lo ~hi:p.hi (Vec.copy x0)) in
  let last_violation = ref infinity in
  let outer = ref 0 in
  let converged = ref false in
  (* augmented Lagrangian value: PHR form *)
  let al_value v =
    let acc = ref (p.f v) in
    for i = 0 to m - 1 do
      let c = constraints.(i) in
      let gx = c.Nlp_problem.g v in
      match c.Nlp_problem.kind with
      | Nlp_problem.Eq -> acc := !acc +. (lambda.(i) *. gx) +. (0.5 *. !mu *. gx *. gx)
      | Nlp_problem.Ineq ->
        let t = Float.max 0. (lambda.(i) +. (!mu *. gx)) in
        acc := !acc +. (((t *. t) -. (lambda.(i) *. lambda.(i))) /. (2. *. !mu))
    done;
    !acc
  in
  let al_grad v =
    let acc = ref (Nlp_problem.gradient_of p v) in
    for i = 0 to m - 1 do
      let c = constraints.(i) in
      let gx = c.Nlp_problem.g v in
      let ggrad =
        match c.Nlp_problem.g_grad with
        | Some g -> g v
        | None -> Num_diff.gradient c.Nlp_problem.g v
      in
      let w =
        match c.Nlp_problem.kind with
        | Nlp_problem.Eq -> lambda.(i) +. (!mu *. gx)
        | Nlp_problem.Ineq -> Float.max 0. (lambda.(i) +. (!mu *. gx))
      in
      if w <> 0. then acc := Vec.axpy w ggrad !acc
    done;
    !acc
  in
  while
    (not !converged) && !outer < max_outer && Engine.Budget.stopped budget = None
  do
    incr outer;
    let inner =
      Bounded.minimize ~max_iter:3000 ~tol:(tol_opt /. 10.) ?budget ?tally ~grad:al_grad
        ~f:al_value ~lo:p.lo ~hi:p.hi !x
    in
    x := inner.Bounded.x;
    (* multiplier update *)
    let viol = ref 0. in
    for i = 0 to m - 1 do
      let c = constraints.(i) in
      let gx = c.Nlp_problem.g !x in
      (match c.Nlp_problem.kind with
      | Nlp_problem.Eq ->
        lambda.(i) <- lambda.(i) +. (!mu *. gx);
        viol := Float.max !viol (Float.abs gx)
      | Nlp_problem.Ineq ->
        lambda.(i) <- Float.max 0. (lambda.(i) +. (!mu *. gx));
        viol := Float.max !viol (Float.max 0. gx))
    done;
    if !viol <= tol_feas then begin
      if inner.Bounded.converged then converged := true
    end
    else if !viol > 0.5 *. !last_violation then mu := Float.min 1e10 (!mu *. 10.);
    last_violation := !viol
  done;
  {
    x = !x;
    f = p.f !x;
    violation = Nlp_problem.violation p !x;
    outer_iterations = !outer;
    converged = !converged && Nlp_problem.violation p !x <= tol_feas *. 10.;
  }


let solve ?budget ?cancel ?warm_start ?trace (p : Nlp_problem.t) =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let tol_feas = 1e-7 in
  let x0 =
    match warm_start with
    | Some x -> x
    | None ->
      (* box midpoint, with free directions started at 0 *)
      Array.init p.Nlp_problem.dim (fun j ->
          let lo = p.Nlp_problem.lo.(j) and hi = p.Nlp_problem.hi.(j) in
          if Float.is_finite lo && Float.is_finite hi then 0.5 *. (lo +. hi)
          else if Float.is_finite lo then lo
          else if Float.is_finite hi then hi
          else 0.)
  in
  let r = run ~tol_feas ?budget ?tally:trace p x0 in
  let budget_stop =
    match Engine.Budget.inspected budget with
    | Some reason -> Some (Engine.Budget.reason_to_string reason)
    | None -> None
  in
  if r.converged then
    (* first-order stationary and feasible; the MINLP layer only feeds
       this solver convex relaxations, where stationary = optimal *)
    let cert =
      Engine.Certificate.make ~producer:"nlp.auglag"
        ~claimed_status:Engine.Status.Optimal ~witness:(Array.copy r.x)
        ~claimed_obj:r.f ~claimed_bound:r.f ~tol:tol_feas
        ~evidence:
          (Engine.Certificate.Exact_method
             "augmented Lagrangian: first-order stationary point of a convex model")
        ?budget_stop ()
    in
    Ok { Engine.Solver_intf.value = r; cert }
  else
    let reason =
      match Engine.Budget.inspected budget with
      | Some stop -> Engine.Status.reason_of_budget stop
      | None -> Engine.Status.Iter_limit
    in
    if r.violation <= tol_feas then
      let cert =
        Engine.Certificate.make ~producer:"nlp.auglag"
          ~claimed_status:(Engine.Status.Feasible reason) ~witness:(Array.copy r.x)
          ~claimed_obj:r.f ~tol:tol_feas ~evidence:Engine.Certificate.Incumbent_only
          ?budget_stop ()
      in
      Ok { Engine.Solver_intf.value = r; cert }
    else Error (Engine.Status.Budget_exhausted reason)
