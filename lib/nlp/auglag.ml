open Numerics

type result = {
  x : Vec.t;
  f : float;
  violation : float;
  outer_iterations : int;
  converged : bool;
}

let run ?(max_outer = 50) ?(tol_feas = 1e-7) ?(tol_opt = 1e-7) ?budget ?tally
    (p : Nlp_problem.t) x0 =
  let constraints = Array.of_list p.constraints in
  let m = Array.length constraints in
  (* hot-loop views of the constraint records: the AL value/gradient
     run millions of times per relaxation, so the per-row record and
     option traffic is hoisted into parallel arrays once *)
  let g_of = Array.map (fun c -> c.Nlp_problem.g) constraints in
  let is_eq =
    Array.map (fun c -> c.Nlp_problem.kind = Nlp_problem.Eq) constraints
  in
  let lambda = Array.make m 0. in
  let mu = ref 10. in
  let mu_cap = 1e10 in
  (* consecutive outers where the violation failed to halve while mu is
     already at its cap: the penalty has no leverage left, so the
     subproblem is (locally) infeasible and more outers only inflate
     the AL value.  Three strikes ends the run with the best iterate. *)
  let capped_stalls = ref 0 in
  let hopeless = ref false in
  let x = ref (Vec.clamp ~lo:p.lo ~hi:p.hi (Vec.copy x0)) in
  let last_violation = ref infinity in
  let outer = ref 0 in
  let converged = ref false in
  (* augmented Lagrangian value: PHR form *)
  let al_value v =
    let mu_v = !mu in
    let acc = ref (p.f v) in
    for i = 0 to m - 1 do
      let gx = (Array.unsafe_get g_of i) v in
      let li = Array.unsafe_get lambda i in
      if Array.unsafe_get is_eq i then
        acc := !acc +. (li *. gx) +. (0.5 *. mu_v *. gx *. gx)
      else begin
        let t = Float.max 0. (li +. (mu_v *. gx)) in
        acc := !acc +. (((t *. t) -. (li *. li)) /. (2. *. mu_v))
      end
    done;
    !acc
  in
  (* in-place AL gradient: base objective gradient written into [out],
     then one accumulation pass per active constraint.  Constraints
     carrying a [g_grad_acc] fast path (compiled expressions from the
     relaxation layer) contribute without allocating; the fallback
     reproduces [Vec.axpy w ggrad acc] rounding exactly. *)
  let al_grad_into v out =
    Nlp_problem.gradient_into p v out;
    let mu_v = !mu in
    for i = 0 to m - 1 do
      let gx = (Array.unsafe_get g_of i) v in
      let li = Array.unsafe_get lambda i in
      let w =
        if Array.unsafe_get is_eq i then li +. (mu_v *. gx)
        else Float.max 0. (li +. (mu_v *. gx))
      in
      if w <> 0. then
        match constraints.(i).Nlp_problem.g_grad_acc with
        | Some acc -> acc v w out
        | None ->
          let ggrad =
            match constraints.(i).Nlp_problem.g_grad with
            | Some g -> g v
            | None -> Num_diff.gradient constraints.(i).Nlp_problem.g v
          in
          for k = 0 to Array.length out - 1 do
            out.(k) <- (w *. ggrad.(k)) +. out.(k)
          done
    done
  in
  while
    (not !converged) && (not !hopeless) && !outer < max_outer
    && Engine.Budget.stopped budget = None
  do
    incr outer;
    let inner =
      Bounded.minimize ~max_iter:3000 ~tol:(tol_opt /. 10.) ~stall_iters:150
        ?budget ?tally ~grad_into:al_grad_into ~f:al_value ~lo:p.lo ~hi:p.hi !x
    in
    x := inner.Bounded.x;
    (* multiplier update *)
    let viol = ref 0. in
    for i = 0 to m - 1 do
      let c = constraints.(i) in
      let gx = c.Nlp_problem.g !x in
      (match c.Nlp_problem.kind with
      | Nlp_problem.Eq ->
        lambda.(i) <- lambda.(i) +. (!mu *. gx);
        viol := Float.max !viol (Float.abs gx)
      | Nlp_problem.Ineq ->
        lambda.(i) <- Float.max 0. (lambda.(i) +. (!mu *. gx));
        viol := Float.max !viol (Float.max 0. gx))
    done;
    if !viol <= tol_feas then begin
      if inner.Bounded.converged then converged := true
    end
    else if !viol > 0.5 *. !last_violation then begin
      if !mu >= mu_cap then begin
        incr capped_stalls;
        if !capped_stalls >= 3 then hopeless := true
      end
      else mu := Float.min mu_cap (!mu *. 10.)
    end
    else capped_stalls := 0;
    last_violation := !viol
  done;
  {
    x = !x;
    f = p.f !x;
    violation = Nlp_problem.violation p !x;
    outer_iterations = !outer;
    converged = !converged && Nlp_problem.violation p !x <= tol_feas *. 10.;
  }


let solve ?budget ?cancel ?warm_start ?trace (p : Nlp_problem.t) =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let tol_feas = 1e-7 in
  let x0 =
    match warm_start with
    | Some x -> x
    | None ->
      (* box midpoint, with free directions started at 0 *)
      Array.init p.Nlp_problem.dim (fun j ->
          let lo = p.Nlp_problem.lo.(j) and hi = p.Nlp_problem.hi.(j) in
          if Float.is_finite lo && Float.is_finite hi then 0.5 *. (lo +. hi)
          else if Float.is_finite lo then lo
          else if Float.is_finite hi then hi
          else 0.)
  in
  let r = run ~tol_feas ?budget ?tally:trace p x0 in
  let budget_stop =
    match Engine.Budget.inspected budget with
    | Some reason -> Some (Engine.Budget.reason_to_string reason)
    | None -> None
  in
  if r.converged then
    (* first-order stationary and feasible; the MINLP layer only feeds
       this solver convex relaxations, where stationary = optimal *)
    let cert =
      Engine.Certificate.make ~producer:"nlp.auglag"
        ~claimed_status:Engine.Status.Optimal ~witness:(Array.copy r.x)
        ~claimed_obj:r.f ~claimed_bound:r.f ~tol:tol_feas
        ~evidence:
          (Engine.Certificate.Exact_method
             "augmented Lagrangian: first-order stationary point of a convex model")
        ?budget_stop ()
    in
    Ok { Engine.Solver_intf.value = r; cert }
  else
    let reason =
      match Engine.Budget.inspected budget with
      | Some stop -> Engine.Status.reason_of_budget stop
      | None -> Engine.Status.Iter_limit
    in
    if r.violation <= tol_feas then
      let cert =
        Engine.Certificate.make ~producer:"nlp.auglag"
          ~claimed_status:(Engine.Status.Feasible reason) ~witness:(Array.copy r.x)
          ~claimed_obj:r.f ~tol:tol_feas ~evidence:Engine.Certificate.Incumbent_only
          ?budget_stop ()
      in
      Ok { Engine.Solver_intf.value = r; cert }
    else Error (Engine.Status.Budget_exhausted reason)
