open Numerics

type kind = Ineq | Eq

type constr = {
  g : Vec.t -> float;
  g_grad : (Vec.t -> Vec.t) option;
  g_grad_acc : (Vec.t -> float -> Vec.t -> unit) option;
  kind : kind;
  label : string;
}

type t = {
  dim : int;
  f : Vec.t -> float;
  f_grad : (Vec.t -> Vec.t) option;
  f_grad_into : (Vec.t -> Vec.t -> unit) option;
  lo : Vec.t;
  hi : Vec.t;
  constraints : constr list;
}

let make ?f_grad ?f_grad_into ?lo ?hi ?(constraints = []) ~dim ~f () =
  if dim <= 0 then invalid_arg "Nlp_problem.make: dim must be positive";
  let lo = match lo with Some v -> v | None -> Vec.create dim neg_infinity in
  let hi = match hi with Some v -> v | None -> Vec.create dim infinity in
  if Vec.dim lo <> dim || Vec.dim hi <> dim then
    invalid_arg "Nlp_problem.make: bound dimension mismatch";
  Array.iteri (fun i l -> if l > hi.(i) then invalid_arg "Nlp_problem.make: lo > hi") lo;
  { dim; f; f_grad; f_grad_into; lo; hi; constraints }

let ineq ?grad ?grad_acc ?(label = "ineq") g =
  { g; g_grad = grad; g_grad_acc = grad_acc; kind = Ineq; label }

let eq ?grad ?grad_acc ?(label = "eq") g =
  { g; g_grad = grad; g_grad_acc = grad_acc; kind = Eq; label }

let violation p x =
  let v = ref 0. in
  List.iter
    (fun c ->
      let gx = c.g x in
      let viol = match c.kind with Ineq -> Float.max 0. gx | Eq -> Float.abs gx in
      v := Float.max !v viol)
    p.constraints;
  for i = 0 to p.dim - 1 do
    v := Float.max !v (Float.max (p.lo.(i) -. x.(i)) (x.(i) -. p.hi.(i)))
  done;
  !v

let gradient_of p x =
  match p.f_grad with Some g -> g x | None -> Num_diff.gradient p.f x

let gradient_into p x out =
  match p.f_grad_into with
  | Some gi -> gi x out
  | None ->
    let g = gradient_of p x in
    Array.blit g 0 out 0 (Array.length out)
