(** Bound-constrained minimization by spectral projected gradient.

    Projected gradient with Barzilai–Borwein step lengths and a
    non-monotone Armijo line search (the SPG method of Birgin, Martínez
    and Raydan). Robust on the smooth convex objectives that arise as
    augmented Lagrangians of the allocation relaxations, and requires
    only gradients. *)

type result = {
  x : Numerics.Vec.t;
  f : float;
  iterations : int;
  converged : bool;  (** projected-gradient norm below tolerance *)
}

(** [minimize ?max_iter ?tol ?budget ?tally ?grad ~f ~lo ~hi x0]
    minimizes [f] over the box. [x0] is clamped into the box first.
    [tol] bounds the infinity norm of the projected gradient step
    [P(x - g) - x].

    The armed [budget] is polled once per SPG iteration; on exhaustion
    the best iterate so far is returned with [converged = false].
    [tally] accumulates [nlp_iterations] and [line_search_steps]. *)
val minimize :
  ?max_iter:int ->
  ?tol:float ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ?grad:(Numerics.Vec.t -> Numerics.Vec.t) ->
  f:(Numerics.Vec.t -> float) ->
  lo:Numerics.Vec.t ->
  hi:Numerics.Vec.t ->
  Numerics.Vec.t ->
  result
