(** Bound-constrained minimization by spectral projected gradient.

    Projected gradient with Barzilai–Borwein step lengths and a
    non-monotone Armijo line search (the SPG method of Birgin, Martínez
    and Raydan). Robust on the smooth convex objectives that arise as
    augmented Lagrangians of the allocation relaxations, and requires
    only gradients. *)

type result = {
  x : Numerics.Vec.t;
  f : float;
  iterations : int;
  converged : bool;  (** projected-gradient norm below tolerance *)
}

(** [minimize ?max_iter ?tol ?stall_iters ?budget ?tally ?grad ?grad_into
    ~f ~lo ~hi x0] minimizes [f] over the box. [x0] is clamped into the
    box first. [tol] bounds the infinity norm of the projected gradient
    step [P(x - g) - x].

    [stall_iters], when given, stops the loop early (with
    [converged = false]) once the best value seen has not improved by a
    relative 1e-12 for that many accepted steps: on ill-conditioned
    objectives (augmented Lagrangians with large penalties) the
    projected gradient can plateau above [tol] and burn the full
    iteration budget without moving. Leave it unset to keep the
    historical trajectory.

    The loop is allocation-free: iterates live in preallocated buffers
    and [f] is handed a scratch vector that is overwritten between
    calls, so [f] (and [grad_into]) must not retain or mutate their
    arguments. When [grad_into] is given it is used in place of [grad]
    (writing the gradient into its second argument); both paths must
    produce bit-identical values — the fused update loops reproduce the
    exact FP operation order of the textbook Vec compositions, so the
    trajectory does not depend on which gradient interface is wired.

    The armed [budget] is polled once per SPG iteration; on exhaustion
    the best iterate so far is returned with [converged = false].
    [tally] accumulates [nlp_iterations] and [line_search_steps]. *)
val minimize :
  ?max_iter:int ->
  ?tol:float ->
  ?stall_iters:int ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ?grad:(Numerics.Vec.t -> Numerics.Vec.t) ->
  ?grad_into:(Numerics.Vec.t -> Numerics.Vec.t -> unit) ->
  f:(Numerics.Vec.t -> float) ->
  lo:Numerics.Vec.t ->
  hi:Numerics.Vec.t ->
  Numerics.Vec.t ->
  result
