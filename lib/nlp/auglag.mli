(** Augmented-Lagrangian solver for generally-constrained NLPs.

    Standard first-order multiplier method: the inner bound-constrained
    subproblems go to {!Bounded}; multipliers are updated per outer
    iteration and the penalty grows when the constraint violation fails
    to shrink. Fills filterSQP's role from the paper: solving the
    continuous relaxations inside the MINLP branch-and-bound. *)

type result = {
  x : Numerics.Vec.t;
  f : float;  (** objective value at [x] *)
  violation : float;  (** max constraint violation at [x] *)
  outer_iterations : int;
  converged : bool;  (** violation and stationarity tolerances met *)
}

(** [solve ?max_outer ?tol_feas ?tol_opt ?budget ?tally p x0] — solve
    [p] starting from [x0] (clamped into the box). The armed [budget]
    is checked between outer iterations and threaded into the inner
    {!Bounded} solves; on exhaustion the current iterate is returned
    with [converged = false]. *)
val solve :
  ?max_outer:int ->
  ?tol_feas:float ->
  ?tol_opt:float ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  Nlp_problem.t ->
  Numerics.Vec.t ->
  result
