(** Augmented-Lagrangian solver for generally-constrained NLPs.

    Standard first-order multiplier method: the inner bound-constrained
    subproblems go to {!Bounded}; multipliers are updated per outer
    iteration and the penalty grows when the constraint violation fails
    to shrink. Fills filterSQP's role from the paper: solving the
    continuous relaxations inside the MINLP branch-and-bound. *)

type result = {
  x : Numerics.Vec.t;
  f : float;  (** objective value at [x] *)
  violation : float;  (** max constraint violation at [x] *)
  outer_iterations : int;
  converged : bool;  (** violation and stationarity tolerances met *)
}

(** [run ?max_outer ?tol_feas ?tol_opt ?budget ?tally p x0] — solve
    [p] starting from [x0] (clamped into the box), returning the raw
    solver record. The armed [budget] is checked between outer
    iterations and threaded into the inner {!Bounded} solves; on
    exhaustion the current iterate is returned with
    [converged = false]. *)
val run :
  ?max_outer:int ->
  ?tol_feas:float ->
  ?tol_opt:float ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  Nlp_problem.t ->
  Numerics.Vec.t ->
  result

(** The unified entry point ({!Engine.Solver_intf.S} convention).
    [warm_start] is the starting iterate (box midpoint when absent).
    A converged run claims [Optimal] with [Exact_method] evidence —
    valid because the MINLP layer only feeds this solver convex models,
    where a feasible first-order stationary point is globally optimal; a
    run that stalled at a feasible iterate is [Ok] with a
    [Feasible _]-status [Incumbent_only] certificate; an infeasible
    stall is [Error]. *)
val solve :
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:Numerics.Vec.t ->
  ?trace:Engine.Telemetry.t ->
  Nlp_problem.t ->
  (result Engine.Solver_intf.certified, Engine.Status.t) Stdlib.result

