(* E7 — sensitivity to the number of benchmark points.

   Section III-C: "the number of benchmarking runs ... should be at
   least greater than four for each component"; "four points were
   enough to build well-fitted scaling curves". We fit a noisy class
   with D ∈ {2,3,4,6,10} sampled node counts and measure fit quality
   and the end-to-end allocation loss versus an oracle that knows the
   true curves. *)

let name = "E7_samples"
let describes = "Table: fit quality and allocation loss vs number of benchmark points"

let truth_a = Scaling_law.make ~a:800. ~b:1e-6 ~c:0.9 ~d:2.
let truth_b = Scaling_law.make ~a:250. ~b:1e-6 ~c:0.95 ~d:1.

let oracle_makespan ~n_total =
  (* exhaustive split under the true laws *)
  let best = ref infinity in
  for n1 = 1 to n_total - 1 do
    let t =
      Float.max
        (Scaling_law.eval_int truth_a n1)
        (Scaling_law.eval_int truth_b (n_total - n1))
    in
    if t < !best then best := t
  done;
  !best

let run ?(quick = false) fmt =
  let n_total = 256 in
  let noise = 0.03 in
  let point_counts = if quick then [ 2; 4 ] else [ 2; 3; 4; 6; 10 ] in
  let trials = if quick then 3 else 10 in
  let oracle = oracle_makespan ~n_total in
  let rows =
    List.map
      (fun points ->
        let losses = ref [] and r2s = ref [] in
        for trial = 1 to trials do
          let rng = Workloads.rng ((1000 * points) + trial) in
          let noisy law which =
            Hslb.Classes.make ~name:which ~count:1 (fun ~nodes ->
                let base = Scaling_law.eval_int law nodes in
                base *. Numerics.Rng.lognormal rng ~mu:(-0.5 *. noise *. noise) ~sigma:noise)
          in
          let sizes = Hslb.Fitting.recommended_sizes ~n_min:1 ~n_max:n_total ~points in
          let fits =
            Hslb.Classes.gather_and_fit ~rng ~sizes ~reps:2
              [ noisy truth_a "A"; noisy truth_b "B" ]
          in
          List.iter
            (fun (fc : Hslb.Classes.fitted) -> r2s := fc.Hslb.Classes.fit.Hslb.Fitting.r2 :: !r2s)
            fits;
          let alloc =
            match Hslb.Alloc_model.solve ~n_total (List.map Hslb.Alloc_model.spec_of fits) with
            | Ok a -> a
            | Error st -> failwith ("E7: allocation " ^ Minlp.Solution.status_to_string st)
          in
          (* evaluate the chosen allocation under the TRUE curves *)
          let n1 = alloc.Hslb.Alloc_model.nodes_per_task.(0)
          and n2 = alloc.Hslb.Alloc_model.nodes_per_task.(1) in
          let realized =
            Float.max (Scaling_law.eval_int truth_a n1) (Scaling_law.eval_int truth_b n2)
          in
          losses := (100. *. (realized -. oracle) /. oracle) :: !losses
        done;
        let arr l = Array.of_list l in
        [
          string_of_int points;
          Printf.sprintf "%.4f" (Numerics.Stats.mean (arr !r2s));
          Printf.sprintf "%.4f" (Numerics.Stats.quantile 0.1 (arr !r2s));
          Table.pct (Numerics.Stats.mean (arr !losses));
          Table.pct (Numerics.Stats.quantile 0.9 (arr !losses));
        ])
      point_counts
  in
  Table.print fmt
    ~title:
      (Printf.sprintf
         "E7: benchmark-point sensitivity (noise %.0f%%, %d trials, oracle makespan %.2f s)"
         (100. *. noise) trials oracle)
    ~header:[ "points"; "mean R2"; "p10 R2"; "mean loss"; "p90 loss" ]
    rows;
  Format.fprintf fmt
    "expected shape: loss collapses once points >= 4, matching the paper's recommendation@."
