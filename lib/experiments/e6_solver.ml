(* E6 — MINLP solver cost and the SOS1-branching ablation.

   The paper: the full MINLP "for 40960 nodes took less than 60 seconds
   to solve on one core", and implementing the discrete atmosphere
   choices as a special-ordered set "improved the runtime of the MINLP
   solver by two orders of magnitude".

   Two parts:
   (a) LP/NLP-based single-tree (OA) vs the classical multi-tree OA
       alternation (Duran-Grossmann) vs NLP-based branch-and-bound on
       plain integer allocation models of growing size;
   (b) the SOS1 ablation on sweet-spotted models: branch on the special
       ordered set vs on individual binaries. The NLP-based tree is
       excluded from (b): its augmented-Lagrangian relaxations stall on
       the binary-heavy equality structure (a documented limitation —
       MINOTAUR's filterSQP does not share it). *)

let name = "E6_solver"
let describes = "Fig/Table: B&B nodes and time vs model size; SOS1 branching ablation"

let synthetic_specs ?allowed_count ~classes () =
  let rng = Workloads.rng 31 in
  List.init classes (fun i ->
      let law =
        Scaling_law.make
          ~a:(Numerics.Rng.uniform rng ~lo:50. ~hi:2000.)
          ~b:1e-6
          ~c:(Numerics.Rng.uniform rng ~lo:0.75 ~hi:0.98)
          ~d:(Numerics.Rng.uniform rng ~lo:0.1 ~hi:5.)
      in
      let cls =
        Hslb.Classes.make
          ~name:(Printf.sprintf "class%d" i)
          ~count:1
          (fun ~nodes -> Scaling_law.eval_int law nodes)
      in
      let fit_rng = Workloads.rng (100 + i) in
      let fc =
        List.hd
          (Hslb.Classes.gather_and_fit ~rng:fit_rng ~sizes:[ 1; 2; 4; 16; 64; 256 ] ~reps:1
             [ cls ])
      in
      match allowed_count with
      | None -> Hslb.Alloc_model.spec_of fc
      | Some k -> Hslb.Alloc_model.spec_of ~allowed:(List.init k (fun j -> 1 lsl j)) fc)

(* independent auditor's verdict on each solve, printed as its own
   column so the certified-status story is visible in the table itself:
   the certificate is rebuilt from the solution and re-checked against
   the raw model by lib/audit, never by the solver that produced it *)
let audited problem (sol : Minlp.Solution.t) =
  let cert =
    Minlp.Solution.certify ~producer:"e6" ~minimize:problem.Minlp.Problem.minimize sol
  in
  match Audit.check_minlp problem cert with Ok () -> "yes" | Error _ -> "REJECTED"

let row ~classes ~label ?(pivots = 0) ~problem (sol : Minlp.Solution.t) elapsed =
  [
    string_of_int classes;
    label;
    Minlp.Solution.status_to_string sol.Minlp.Solution.status;
    Table.fs sol.Minlp.Solution.obj;
    string_of_int sol.Minlp.Solution.stats.Minlp.Solution.nodes;
    string_of_int sol.Minlp.Solution.stats.Minlp.Solution.lp_solves;
    string_of_int sol.Minlp.Solution.stats.Minlp.Solution.nlp_solves;
    string_of_int sol.Minlp.Solution.stats.Minlp.Solution.cuts;
    string_of_int pivots;
    audited problem sol;
    Printf.sprintf "%.2f" elapsed;
  ]

(* each solve gets a fresh telemetry tally so the simplex-pivot column
   is attributable per row; timing is wall clock so the numbers stay
   meaningful when cells run on parallel domains *)
let timed f =
  let tally = Engine.Telemetry.create () in
  let t0 = Unix.gettimeofday () in
  let sol = f tally in
  (sol, tally.Engine.Telemetry.simplex_pivots, Unix.gettimeofday () -. t0)

let header =
  [
    "classes"; "solver"; "status"; "objective"; "nodes"; "LPs"; "NLPs"; "cuts"; "pivots";
    "audited"; "sec";
  ]

let run ?(quick = false) fmt =
  (* part (a): OA vs NLP-based B&B, plain integer models *)
  let sizes_a = if quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
  (* every table cell below is an independent solve on its own synthetic
     instance, so the cells run on the worker pool (HSLB_JOBS); results
     come back in size order either way *)
  let concat_map_cells f sizes = List.concat (Runtime.Pool.map f sizes) in
  let rows_a =
    concat_map_cells
      (fun classes ->
        let specs = synthetic_specs ~classes () in
        let n_total = 128 * classes in
        let problem, _, _ =
          Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total specs
        in
        let oa, pv_oa, t_oa = timed (fun tally -> Minlp.Oa.run ~tally problem) in
        let multi, pv_multi, t_multi =
          timed (fun tally -> Minlp.Oa_multi.run ~tally problem)
        in
        let bnb, pv_bnb, t_bnb =
          timed (fun tally ->
              Minlp.Bnb.run
                ~options:{ Minlp.Bnb.default_options with max_nodes = 2_000 }
                ~tally problem)
        in
        [
          row ~classes ~label:"LP/NLP single-tree (OA)" ~pivots:pv_oa ~problem oa t_oa;
          row ~classes
            ~label:
              (Printf.sprintf "multi-tree OA (%d alternations)"
                 multi.Minlp.Oa_multi.iterations)
            ~pivots:pv_multi ~problem multi.Minlp.Oa_multi.solution t_multi;
          row ~classes ~label:"NLP-based B&B" ~pivots:pv_bnb ~problem bnb t_bnb;
        ])
      sizes_a
  in
  Table.print fmt ~title:"E6a: OA vs NLP-based B&B, plain integer allocation models" ~header
    rows_a;
  Format.fprintf fmt
    "note: the NLP-based tree bounds with a first-order local solver; on the larger models \
     its result can sit a few percent above the OA optimum (OA is exact for this convex \
     class)@.";
  (* part (b): SOS1 branching ablation on sweet-spotted models *)
  let sizes_b = if quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
  let rows_b =
    concat_map_cells
      (fun classes ->
        let specs = synthetic_specs ~allowed_count:10 ~classes () in
        let n_total = 128 * classes in
        let problem, _, _ =
          Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total specs
        in
        let solve sos =
          timed (fun tally ->
              Minlp.Oa.run
                ~options:
                  { Minlp.Oa.default_options with branch_sos_first = sos; max_nodes = 60_000 }
                ~tally problem)
        in
        let with_sos, pv1, t1 = solve true in
        let without, pv2, t2 = solve false in
        [
          row ~classes ~label:"OA, SOS1 branching" ~pivots:pv1 ~problem with_sos t1;
          row ~classes ~label:"OA, binary branching" ~pivots:pv2 ~problem without t2;
        ])
      sizes_b
  in
  Table.print fmt
    ~title:"E6b: SOS1 ablation, 10 discrete sweet spots per class" ~header rows_b;
  (* part (c): variable-branching rule ablation inside the OA master *)
  let sizes_c = if quick then [ 4 ] else [ 8; 16 ] in
  let rows_c =
    concat_map_cells
      (fun classes ->
        let specs = synthetic_specs ~classes () in
        let n_total = 128 * classes in
        let problem, _, _ =
          Hslb.Alloc_model.build_minlp ~objective:Hslb.Objective.Min_max ~n_total specs
        in
        let solve rule =
          timed (fun tally ->
              Minlp.Oa.run
                ~options:{ Minlp.Oa.default_options with branching = rule }
                ~tally problem)
        in
        let pc, pv1, t1 = solve Minlp.Milp.Pseudocost in
        let mf, pv2, t2 = solve Minlp.Milp.Most_fractional in
        [
          row ~classes ~label:"OA, pseudocost branching" ~pivots:pv1 ~problem pc t1;
          row ~classes ~label:"OA, most-fractional" ~pivots:pv2 ~problem mf t2;
        ])
      sizes_c
  in
  Table.print fmt ~title:"E6c: variable-branching rule ablation (plain models)" ~header rows_c;
  Format.fprintf fmt
    "expected shape: identical objectives per row pair; SOS1 branching visits far fewer \
     nodes (paper: ~2 orders of magnitude on the full atmosphere set)@."
