(** Experiment registry: every table and figure the benchmark harness
    regenerates, indexed by the IDs used in DESIGN.md / EXPERIMENTS.md. *)

type t = {
  id : string;  (** e.g. "E4_scaling" *)
  describes : string;  (** which table/figure of the paper it regenerates *)
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : t list

(** All registry ids, in registry order. *)
val ids : unit -> string list

(** [find_result id] — lookup by id (exact) or by a unique prefix
    ("E4"). The error message lists the valid ids (unknown id) or the
    colliding ids (ambiguous prefix), ready to show to a user. *)
val find_result : string -> (t, string) result

(** [find id] — {!find_result}, raising. @raise Not_found. *)
val find : string -> t

(** [run_all ?quick ?jobs fmt] — regenerate everything. [jobs]
    (default {!Runtime.Config.jobs}, i.e. the [HSLB_JOBS] environment)
    bounds the worker pool: at [1] the experiments run sequentially with
    byte-identical output to the historical runner; above [1] they run
    concurrently on domains, each rendering into a private buffer, and
    the chunks are emitted in registry order (same experiments, same
    order, wall-clock timings instead of CPU). *)
val run_all : ?quick:bool -> ?jobs:int -> Format.formatter -> unit
