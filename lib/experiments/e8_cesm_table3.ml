(* E8 — extension suite: the coupled-component (CESM-style) comparison,
   reproducing the shape of the follow-up paper's Table III: manual
   expert allocation vs HSLB (predicted and actual) for the hybrid
   layout, at two budgets per resolution, with and without the
   hard-coded ocean node restriction at high resolution. *)

let name = "E8_cesm_table3"
let describes = "Table III: manual vs HSLB allocations for coupled components"

let component_order = [ "lnd"; "ice"; "atm"; "ocn" ]

let fit_components ~resolution ~n_max =
  let rng = Workloads.rng 77 in
  let classes = Layouts.Cesm_data.benchmark_classes ~rng resolution in
  let sizes = Hslb.Fitting.recommended_sizes ~n_min:8 ~n_max ~points:6 in
  let fits = Hslb.Classes.gather_and_fit ~rng ~sizes ~reps:2 classes in
  let comp name =
    Layouts.Component.of_fit ~name
      (List.find
         (fun (fc : Hslb.Classes.fitted) -> fc.Hslb.Classes.cls.Hslb.Classes.name = name)
         fits)
        .Hslb.Classes.fit
  in
  {
    Layouts.Layout_model.ice = comp "ice";
    lnd = comp "lnd";
    atm = comp "atm";
    ocn = comp "ocn";
  }

let scenario fmt ~resolution ~inputs ~n_total ~constrain_ocean =
  let res_name =
    match resolution with Layouts.Cesm_data.Deg1 -> "1 deg" | Layouts.Cesm_data.Deg1_8 -> "1/8 deg"
  in
  let config =
    {
      (Layouts.Layout_model.default_config ~n_total) with
      Layouts.Layout_model.ocn_allowed =
        (if constrain_ocean then Some (Layouts.Cesm_data.ocean_sweet_spots resolution)
         else None);
    }
  in
  let hslb =
    match Layouts.Layout_model.solve Layouts.Layout_model.Hybrid config inputs with
    | Ok a -> a
    | Error st ->
      failwith
        (Printf.sprintf "E8: layout solve failed: %s"
           (Minlp.Solution.status_to_string st))
  in
  let mi, ml, ma, mo = Layouts.Cesm_data.manual_allocation resolution ~n_total in
  let manual_nodes = [ ("lnd", ml); ("ice", mi); ("atm", ma); ("ocn", mo) ] in
  let sim_rng = Workloads.rng 123 in
  let actual which ~nodes =
    Layouts.Cesm_data.simulate_component ~rng:sim_rng resolution which ~nodes
  in
  let manual_times =
    List.map (fun (w, n) -> (w, actual w ~nodes:n)) manual_nodes
  in
  let hslb_actual =
    List.map
      (fun (w, n) -> (w, actual w ~nodes:n))
      (List.map (fun w -> (w, List.assoc w hslb.Layouts.Layout_model.nodes)) component_order)
  in
  let total times =
    Layouts.Layout_model.layout_total Layouts.Layout_model.Hybrid
      ~ice:(List.assoc "ice" times) ~lnd:(List.assoc "lnd" times)
      ~atm:(List.assoc "atm" times) ~ocn:(List.assoc "ocn" times)
  in
  let rows =
    List.map
      (fun w ->
        [
          w;
          string_of_int (List.assoc w manual_nodes);
          Table.fs (List.assoc w manual_times);
          string_of_int (List.assoc w hslb.Layouts.Layout_model.nodes);
          Table.fs (List.assoc w hslb.Layouts.Layout_model.times);
          Table.fs (List.assoc w hslb_actual);
        ])
      component_order
    @ [
        [
          "Total time";
          "";
          Table.fs (total manual_times);
          "";
          Table.fs hslb.Layouts.Layout_model.total;
          Table.fs (total hslb_actual);
        ];
      ]
  in
  Table.print fmt
    ~title:
      (Printf.sprintf "E8: %s, %d nodes%s" res_name n_total
         (if constrain_ocean then "" else ", unconstrained ocean nodes"))
    ~header:
      [ "component"; "manual #"; "manual s"; "HSLB #"; "HSLB pred s"; "HSLB actual s" ]
    rows;
  let gain = 100. *. (total manual_times -. total hslb_actual) /. total manual_times in
  Format.fprintf fmt "HSLB actual vs manual: %s@." (Table.pct gain)

let run ?(quick = false) fmt =
  let inputs1 = fit_components ~resolution:Layouts.Cesm_data.Deg1 ~n_max:2048 in
  scenario fmt ~resolution:Layouts.Cesm_data.Deg1 ~inputs:inputs1 ~n_total:128
    ~constrain_ocean:true;
  if not quick then begin
    scenario fmt ~resolution:Layouts.Cesm_data.Deg1 ~inputs:inputs1 ~n_total:2048
      ~constrain_ocean:true;
    let inputs8 = fit_components ~resolution:Layouts.Cesm_data.Deg1_8 ~n_max:32768 in
    List.iter
      (fun (n_total, constrain_ocean) ->
        scenario fmt ~resolution:Layouts.Cesm_data.Deg1_8 ~inputs:inputs8 ~n_total
          ~constrain_ocean)
      [ (8192, true); (32768, true); (8192, false); (32768, false) ];
    Format.fprintf fmt
      "expected shape: lifting the ocean restriction at 32768 nodes cuts the total by \
       ~20-40%% (published: predicted 1593->1129 s, actual 1612->1256 s)@."
  end
