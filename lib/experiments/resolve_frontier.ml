(* The drift-rate × re-solve-policy frontier behind E12 and
   BENCH_resolve.json.

   A seeded world of task classes follows hidden ground-truth scaling
   laws whose coefficients drift a little every round. Three policies
   maintain an allocation against noisy benchmark observations of the
   drifting truth:

   - always: full batch refit + MINLP solve every round;
   - never: solve once, keep the incumbent forever;
   - certified: fold observations in with rank-one online updates
     (Fitting.Online) and re-solve only when the ε-reoptimality
     certificate (Audit.Sensitivity) fails to prove the incumbent still
     near-optimal.

   Every policy is scored on the TRUE makespan of its current
   allocation under the hidden laws, averaged over rounds — the fitted
   models are only what the policies get to see. *)

let schema_version = "hslb-bench-resolve-v1"

type cell = { policy : string; makespan_avg : float; solves : int; skipped : int }
type row = { drift_rate : float; cells : cell list }

type t = {
  seed : int;
  rounds : int;
  classes : int;
  nodes : int;
  epsilon : float;
  rows : row list;
}

(* ground truth for one class: the law the world actually follows,
   and the direction its scalable coefficient drifts *)
type truth = { mutable law : Scaling_law.t; drift_dir : float; count : int; name : string }

let make_truths ~rng ~classes =
  List.init classes (fun i ->
      let a = Numerics.Rng.uniform rng ~lo:120. ~hi:420. in
      let b = Numerics.Rng.uniform rng ~lo:0.001 ~hi:0.01 in
      let c = Numerics.Rng.uniform rng ~lo:0.85 ~hi:1.0 in
      let d = Numerics.Rng.uniform rng ~lo:0.2 ~hi:1.0 in
      {
        law = Scaling_law.make ~a ~b ~c ~d;
        drift_dir = Numerics.Rng.uniform rng ~lo:(-1.) ~hi:1.;
        count = 1 + Numerics.Rng.int rng 3;
        name = Printf.sprintf "c%d" i;
      })

(* one round of drift: the scalable work and the serial floor move by
   up to [rate] in the class's fixed direction *)
let drift_truth ~rate tr =
  let f = 1. +. (rate *. tr.drift_dir) in
  let l = tr.law in
  tr.law <-
    Scaling_law.make ~a:(Float.max 1e-6 (l.Scaling_law.a *. f)) ~b:l.Scaling_law.b
      ~c:l.Scaling_law.c
      ~d:(Float.max 1e-9 (l.Scaling_law.d *. f))

let sample_sizes ~nodes = Hslb.Fitting.recommended_sizes ~n_min:1 ~n_max:nodes ~points:6

(* noisy benchmark of the current truth at the standard sizes *)
let observe_truth ~rng tr sizes =
  Array.of_list
    (List.map
       (fun n ->
         let y =
           Scaling_law.eval_int tr.law n *. (1. +. Numerics.Rng.normal rng ~mu:0. ~sigma:0.02)
         in
         (float_of_int n, Float.max 1e-9 y))
       sizes)

let fitted_of tr (fit : Hslb.Fitting.fit) =
  {
    Hslb.Classes.cls =
      Hslb.Classes.make ~name:tr.name ~count:tr.count (fun ~nodes ->
          Scaling_law.eval_int tr.law nodes);
    fit;
  }

let specs_of ~nodes fitted = List.map (Hslb.Alloc_model.spec_of ~n_max:nodes) fitted

let solve_alloc ~nodes fitted =
  match Hslb.Alloc_model.solve ~n_total:nodes (specs_of ~nodes fitted) with
  | Ok a -> a.Hslb.Alloc_model.nodes_per_task
  | Error st ->
    failwith
      (Printf.sprintf "Resolve_frontier: solve failed: %s" (Minlp.Solution.status_to_string st))

let warm_solve_alloc ~nodes ~warm fitted =
  match Hslb.Alloc_model.solve ~warm_start:warm ~n_total:nodes (specs_of ~nodes fitted) with
  | Ok a -> a.Hslb.Alloc_model.nodes_per_task
  | Error st ->
    failwith
      (Printf.sprintf "Resolve_frontier: re-solve failed: %s"
         (Minlp.Solution.status_to_string st))

let true_makespan truths alloc =
  List.fold_left
    (fun (acc, i) tr -> (Float.max acc (Scaling_law.eval_int tr.law alloc.(i)), i + 1))
    (neg_infinity, 0) truths
  |> fst

let sensitivity_classes ~nodes fitted =
  List.map
    (fun (fc : Hslb.Classes.fitted) ->
      {
        Audit.Sensitivity.law = fc.Hslb.Classes.fit.Hslb.Fitting.law;
        count = fc.Hslb.Classes.cls.Hslb.Classes.count;
        n_min = 1;
        n_max = nodes;
        allowed = None;
      })
    fitted

let run_rate ~seed ~rounds ~classes ~nodes ~eps drift_rate =
  let world_seed = seed + int_of_float (drift_rate *. 10000.) in
  let rng = Numerics.Rng.create world_seed in
  let truths = make_truths ~rng ~classes in
  let sizes = sample_sizes ~nodes in
  (* round 0: everyone fits the same initial benchmarks and solves once *)
  let initial_obs = List.map (fun tr -> observe_truth ~rng tr sizes) truths in
  let fit_rng () = Numerics.Rng.create (world_seed + 1) in
  let initial_fits =
    List.map (fun obs -> Hslb.Fitting.fit_observations ~rng:(fit_rng ()) obs) initial_obs
  in
  let initial_fitted = List.map2 fitted_of truths initial_fits in
  let alloc0 = solve_alloc ~nodes initial_fitted in
  (* per-policy state *)
  let alloc_always = ref alloc0 and solves_always = ref 1 in
  let alloc_never = alloc0 in
  let alloc_cert = ref alloc0
  and solves_cert = ref 1
  and skipped_cert = ref 0 in
  let history = List.map (fun obs -> ref [ obs ]) initial_obs in
  let online =
    List.map
      (fun (f : Hslb.Fitting.fit) ->
        Hslb.Fitting.Online.of_law ~rng:(fit_rng ()) f.Hslb.Fitting.law)
      initial_fits
  in
  let score_always = ref 0. and score_never = ref 0. and score_cert = ref 0. in
  for _round = 1 to rounds do
    List.iter (drift_truth ~rate:drift_rate) truths;
    let fresh = List.map (fun tr -> observe_truth ~rng tr sizes) truths in
    (* always: refit on the full history, solve from scratch *)
    List.iter2 (fun h obs -> h := obs :: !h) history fresh;
    let fits =
      List.map
        (fun h -> Hslb.Fitting.fit_observations ~rng:(fit_rng ()) (Array.concat (List.rev !h)))
        history
    in
    alloc_always := solve_alloc ~nodes (List.map2 fitted_of truths fits);
    incr solves_always;
    (* certified: rank-one updates, then the ε-certificate decides *)
    List.iter2 (fun ol obs -> Hslb.Fitting.Online.observe_all ol obs) online fresh;
    let online_fitted =
      List.map2
        (fun tr ol ->
          fitted_of tr
            {
              Hslb.Fitting.law = Hslb.Fitting.Online.law ol;
              r2 = Float.nan;
              rmse = Float.nan;
              observations = [||];
            })
        truths online
    in
    (match
       Audit.Sensitivity.check ~eps ~n_total:nodes ~incumbent:!alloc_cert
         (sensitivity_classes ~nodes online_fitted)
     with
    | Audit.Sensitivity.Certified _ -> incr skipped_cert
    | Audit.Sensitivity.Rejected _ ->
      alloc_cert := warm_solve_alloc ~nodes ~warm:!alloc_cert online_fitted;
      incr solves_cert);
    (* everyone pays the true cost of whatever they currently run *)
    score_always := !score_always +. true_makespan truths !alloc_always;
    score_never := !score_never +. true_makespan truths alloc_never;
    score_cert := !score_cert +. true_makespan truths !alloc_cert
  done;
  let avg s = s /. float_of_int rounds in
  {
    drift_rate;
    cells =
      [
        { policy = "always"; makespan_avg = avg !score_always; solves = !solves_always; skipped = 0 };
        { policy = "never"; makespan_avg = avg !score_never; solves = 1; skipped = rounds };
        {
          policy = "certified";
          makespan_avg = avg !score_cert;
          solves = !solves_cert;
          skipped = !skipped_cert;
        };
      ];
  }

let run ?(quick = false) ?(eps = 0.05) ?rounds ?drift_rates ~seed () =
  let rounds = match rounds with Some r -> r | None -> if quick then 4 else 6 in
  let drift_rates =
    match drift_rates with
    | Some rs -> rs
    | None -> if quick then [ 0.0; 0.15 ] else [ 0.0; 0.05; 0.15 ]
  in
  let classes = 4 and nodes = 96 in
  {
    seed;
    rounds;
    classes;
    nodes;
    epsilon = eps;
    rows = List.map (run_rate ~seed ~rounds ~classes ~nodes ~eps) drift_rates;
  }

(* --- JSON ----------------------------------------------------------- *)

let to_json t =
  let open Obs.Json in
  let cell_json c =
    Obj
      [
        ("policy", Str c.policy);
        ("makespan_avg", Num c.makespan_avg);
        ("solves", Num (float_of_int c.solves));
        ("skipped", Num (float_of_int c.skipped));
      ]
  in
  let row_json r =
    Obj
      [
        ("drift_rate", Num r.drift_rate);
        ("cells", Arr (List.map cell_json r.cells));
      ]
  in
  Obj
    [
      ("schema", Str schema_version);
      ("seed", Num (float_of_int t.seed));
      ("rounds", Num (float_of_int t.rounds));
      ("classes", Num (float_of_int t.classes));
      ("nodes", Num (float_of_int t.nodes));
      ("epsilon", Num t.epsilon);
      ("rows", Arr (List.map row_json t.rows));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let get what f key obj =
    match Option.bind (Obs.Json.member key obj) f with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "field %S: expected %s" key what)
  in
  let int_f = get "an integer" Obs.Json.int_ in
  let num_f = get "a number" Obs.Json.num in
  let str_f = get "a string" Obs.Json.str in
  let arr_f = get "an array" Obs.Json.arr in
  let* schema = str_f "schema" j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported schema %S (expected %S)" schema schema_version)
  else
    let* seed = int_f "seed" j in
    let* rounds = int_f "rounds" j in
    let* classes = int_f "classes" j in
    let* nodes = int_f "nodes" j in
    let* epsilon = num_f "epsilon" j in
    let parse_cell c =
      let* policy = str_f "policy" c in
      let* makespan_avg = num_f "makespan_avg" c in
      let* solves = int_f "solves" c in
      let* skipped = int_f "skipped" c in
      Ok { policy; makespan_avg; solves; skipped }
    in
    let parse_row r =
      let* drift_rate = num_f "drift_rate" r in
      let* cells_j = arr_f "cells" r in
      let* cells =
        List.fold_right
          (fun c acc ->
            let* acc = acc in
            let* cell = parse_cell c in
            Ok (cell :: acc))
          cells_j (Ok [])
      in
      Ok { drift_rate; cells }
    in
    let* rows_j = arr_f "rows" j in
    let* rows =
      List.fold_right
        (fun r acc ->
          let* acc = acc in
          let* row = parse_row r in
          Ok (row :: acc))
        rows_j (Ok [])
    in
    Ok { seed; rounds; classes; nodes; epsilon; rows }

let write_bench path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string (to_json t));
      Out_channel.output_char oc '\n')

let pp fmt t =
  let open Format in
  fprintf fmt "@[<v>true-makespan averages over %d rounds (lower = better)@," t.rounds;
  fprintf fmt "%-8s" "drift";
  List.iter (fun c -> fprintf fmt " %22s" c.policy) (List.hd t.rows).cells;
  fprintf fmt "@,";
  List.iter
    (fun r ->
      fprintf fmt "%-8.3f" r.drift_rate;
      List.iter
        (fun c -> fprintf fmt " %22s" (sprintf "%.3f (%ds/%dk)" c.makespan_avg c.solves c.skipped))
        r.cells;
      fprintf fmt "@,")
    t.rows;
  fprintf fmt "@]"
