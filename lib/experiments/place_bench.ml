(* The comm-blind × comm-aware placement frontier behind E14 and
   BENCH_place.json.

   Every scenario is fully seeded: a water cluster is fragmented, its
   pair communication volumes generated with Fmo.Comm, durations taken
   from the machine cost model at the group size, and working sets
   derived from the basis size. The comm-blind cell is what a
   compute-only balancer would ship (LPT with memory fitting); the
   comm-aware cell runs the Place.Optimizer search under the same
   memory knapsacks and a 5% makespan leash. The exact rows push small
   instances through the full MINLP path, warm-started by the
   heuristic, and audit the optimality certificate. *)

let schema_version = "hslb-bench-place-v1"

let instance ?(seed = 42) ?(hop_cost_s_per_mb = 2.0) ~torus:(x, y, z) ~tasks ~groups () =
  let topology = Topology.make ~x ~y ~z in
  let nodes = Topology.num_nodes topology in
  if groups <= 0 || nodes mod groups <> 0 then
    invalid_arg
      (Printf.sprintf "Place_bench.instance: %d groups do not split the %dx%dx%d torus evenly"
         groups x y z);
  let size = nodes / groups in
  let frags =
    Fmo.Fragment.fragment
      (Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create seed) tasks)
      Fmo.Basis.B6_31gd
  in
  let comm = Fmo.Comm.generate ~seed frags in
  let machine = Workloads.machine ~num_nodes:nodes () in
  let group_ids =
    Array.of_list
      (Topology.place topology ~placement:Topology.Compact ~sizes:(List.init groups (fun _ -> size)))
  in
  let names =
    Array.map (fun (f : Fmo.Fragment.t) -> Printf.sprintf "frag%d" f.Fmo.Fragment.id) frags
  in
  let duration_s =
    Array.map
      (fun (f : Fmo.Fragment.t) ->
        let law =
          Fmo.Cost_model.law machine
            ~work_gflops:(Fmo.Task.scf_work_gflops f.Fmo.Fragment.nbf)
            ~nbf:f.Fmo.Fragment.nbf
        in
        Array.init groups (fun g -> Scaling_law.eval_int law (Array.length group_ids.(g))))
      frags
  in
  (* working sets sized so the per-group knapsack binds mildly: a basis
     term plus a deterministic spread keyed on the fragment id *)
  let mem_gb =
    Array.map
      (fun (f : Fmo.Fragment.t) ->
        (8e-7 *. float_of_int (f.Fmo.Fragment.nbf * f.Fmo.Fragment.nbf))
        +. 0.25
        +. (0.025 *. float_of_int (f.Fmo.Fragment.id mod 7)))
      frags
  in
  Place.Model.make ~topology ~groups:group_ids ~names ~duration_s ~mem_gb ~mem_per_node_gb:0.5
    ~comm_mb:(Fmo.Comm.to_matrix comm) ~hop_cost_s_per_mb ()

type cell = { strategy : string; makespan_s : float; comm_cost_s : float; total_s : float }
type row = { dims : int * int * int; tasks : int; groups : int; cells : cell list }

type exact = {
  solver : string;
  xtasks : int;
  xgroups : int;
  status : string;
  audited : bool;
  minlp_total_s : float;
  heuristic_total_s : float;
}

type t = { seed : int; hop_cost_s_per_mb : float; rows : row list; exact : exact list }

let cell_of strategy (e : Place.Model.eval) =
  {
    strategy;
    makespan_s = e.Place.Model.makespan_s;
    comm_cost_s = e.Place.Model.comm_cost_s;
    total_s = e.Place.Model.total_s;
  }

let run_row ~seed ~tasks ~groups dims =
  let inst = instance ~seed ~torus:dims ~tasks ~groups () in
  let blind = Place.Optimizer.comm_blind inst in
  let aware = Place.Optimizer.optimize inst in
  {
    dims;
    tasks;
    groups;
    cells =
      [
        cell_of "blind" (Place.Model.eval inst blind);
        cell_of "aware" (Place.Model.eval inst aware);
      ];
  }

let run_exact ~seed ~tasks ~groups solver =
  let inst = instance ~seed ~torus:(2, 2, 2) ~tasks ~groups () in
  let heuristic = Place.Optimizer.optimize inst in
  let he = Place.Model.eval inst heuristic in
  match Place.Model.solve_minlp ~solver ~warm_start:heuristic inst with
  | Error st ->
    {
      solver = Engine.Solver_choice.to_string solver;
      xtasks = tasks;
      xgroups = groups;
      status = Minlp.Solution.status_to_string st;
      audited = false;
      minlp_total_s = Float.nan;
      heuristic_total_s = he.Place.Model.total_s;
    }
  | Ok solved ->
    let audited =
      match solved.Place.Model.certificate with
      | None -> false
      | Some cert -> (
        let problem, _ = Place.Model.build_milp inst in
        match Audit.check_minlp problem cert with Ok () -> true | Error _ -> false)
    in
    {
      solver = Engine.Solver_choice.to_string solver;
      xtasks = tasks;
      xgroups = groups;
      status = Minlp.Solution.status_to_string solved.Place.Model.status;
      audited;
      minlp_total_s = solved.Place.Model.evaluation.Place.Model.total_s;
      heuristic_total_s = he.Place.Model.total_s;
    }

let run ?(quick = false) ~seed () =
  let hop_cost_s_per_mb = 2.0 in
  let toruses = if quick then [ (4, 4, 4); (6, 6, 6) ] else [ (4, 4, 4); (6, 6, 6); (8, 8, 8) ] in
  let exact_solvers =
    if quick then [ Engine.Solver_choice.Oa ]
    else [ Engine.Solver_choice.Oa; Engine.Solver_choice.Bnb ]
  in
  {
    seed;
    hop_cost_s_per_mb;
    rows = List.map (run_row ~seed ~tasks:24 ~groups:8) toruses;
    exact = List.map (run_exact ~seed ~tasks:6 ~groups:4) exact_solvers;
  }

(* --- JSON ----------------------------------------------------------- *)

let to_json t =
  let open Obs.Json in
  let cell_json c =
    Obj
      [
        ("strategy", Str c.strategy);
        ("makespan_s", Num c.makespan_s);
        ("comm_cost_s", Num c.comm_cost_s);
        ("total_s", Num c.total_s);
      ]
  in
  let row_json r =
    let x, y, z = r.dims in
    Obj
      [
        ("dim_x", Num (float_of_int x));
        ("dim_y", Num (float_of_int y));
        ("dim_z", Num (float_of_int z));
        ("tasks", Num (float_of_int r.tasks));
        ("groups", Num (float_of_int r.groups));
        ("cells", Arr (List.map cell_json r.cells));
      ]
  in
  let exact_json e =
    Obj
      [
        ("solver", Str e.solver);
        ("tasks", Num (float_of_int e.xtasks));
        ("groups", Num (float_of_int e.xgroups));
        ("status", Str e.status);
        ("audited", Bool e.audited);
        ("minlp_total_s", Num e.minlp_total_s);
        ("heuristic_total_s", Num e.heuristic_total_s);
      ]
  in
  Obj
    [
      ("schema", Str schema_version);
      ("seed", Num (float_of_int t.seed));
      ("hop_cost_s_per_mb", Num t.hop_cost_s_per_mb);
      ("rows", Arr (List.map row_json t.rows));
      ("exact", Arr (List.map exact_json t.exact));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let get what f key obj =
    match Option.bind (Obs.Json.member key obj) f with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "field %S: expected %s" key what)
  in
  let int_f = get "an integer" Obs.Json.int_ in
  let num_f = get "a number" Obs.Json.num in
  let str_f = get "a string" Obs.Json.str in
  let arr_f = get "an array" Obs.Json.arr in
  let bool_f = get "a boolean" Obs.Json.bool_ in
  let list_of parse items =
    List.fold_right
      (fun item acc ->
        let* acc = acc in
        let* v = parse item in
        Ok (v :: acc))
      items (Ok [])
  in
  let* schema = str_f "schema" j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported schema %S (expected %S)" schema schema_version)
  else
    let* seed = int_f "seed" j in
    let* hop_cost_s_per_mb = num_f "hop_cost_s_per_mb" j in
    let parse_cell c =
      let* strategy = str_f "strategy" c in
      let* makespan_s = num_f "makespan_s" c in
      let* comm_cost_s = num_f "comm_cost_s" c in
      let* total_s = num_f "total_s" c in
      Ok { strategy; makespan_s; comm_cost_s; total_s }
    in
    let parse_row r =
      let* x = int_f "dim_x" r in
      let* y = int_f "dim_y" r in
      let* z = int_f "dim_z" r in
      let* tasks = int_f "tasks" r in
      let* groups = int_f "groups" r in
      let* cells_j = arr_f "cells" r in
      let* cells = list_of parse_cell cells_j in
      Ok { dims = (x, y, z); tasks; groups; cells }
    in
    let parse_exact e =
      let* solver = str_f "solver" e in
      let* xtasks = int_f "tasks" e in
      let* xgroups = int_f "groups" e in
      let* status = str_f "status" e in
      let* audited = bool_f "audited" e in
      let* minlp_total_s = num_f "minlp_total_s" e in
      let* heuristic_total_s = num_f "heuristic_total_s" e in
      Ok { solver; xtasks; xgroups; status; audited; minlp_total_s; heuristic_total_s }
    in
    let* rows_j = arr_f "rows" j in
    let* rows = list_of parse_row rows_j in
    let* exact_j = arr_f "exact" j in
    let* exact = list_of parse_exact exact_j in
    Ok { seed; hop_cost_s_per_mb; rows; exact }

let write_bench path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string (to_json t));
      Out_channel.output_char oc '\n')

let pp fmt t =
  let open Format in
  fprintf fmt "@[<v>placement frontier (hop cost %.2f s/MB, seed %d)@," t.hop_cost_s_per_mb t.seed;
  fprintf fmt "%-10s %-6s %-7s" "torus" "tasks" "groups";
  List.iter (fun c -> fprintf fmt " %26s" c.strategy) (List.hd t.rows).cells;
  fprintf fmt "@,";
  List.iter
    (fun r ->
      let x, y, z = r.dims in
      fprintf fmt "%-10s %-6d %-7d" (sprintf "%dx%dx%d" x y z) r.tasks r.groups;
      List.iter
        (fun c ->
          fprintf fmt " %26s" (sprintf "mk %.2f comm %.4f" c.makespan_s c.comm_cost_s))
        r.cells;
      fprintf fmt "@,")
    t.rows;
  List.iter
    (fun e ->
      fprintf fmt "exact %s: %d tasks / %d groups -> %s%s, total %.4f (heuristic %.4f)@,"
        e.solver e.xtasks e.xgroups e.status
        (if e.audited then " (audited)" else "")
        e.minlp_total_s e.heuristic_total_s)
    t.exact;
  fprintf fmt "@]"
