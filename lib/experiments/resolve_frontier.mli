(** The E12 drift-rate × re-solve-policy frontier, and the
    BENCH_resolve.json artifact it is serialized to.

    A seeded world of task classes follows hidden ground-truth scaling
    laws that drift each round; three policies maintain an allocation
    from noisy benchmarks of that truth — [always] (batch refit + MINLP
    every round), [never] (solve once), and [certified] (rank-one
    online updates; re-solve only when the {!Audit.Sensitivity}
    ε-certificate fails). Each policy is scored on the true makespan of
    its current allocation, averaged over rounds. *)

val schema_version : string

type cell = {
  policy : string;  (** "always" | "never" | "certified" *)
  makespan_avg : float;  (** mean true makespan over the rounds *)
  solves : int;  (** MINLP solves, the initial one included *)
  skipped : int;  (** rounds answered without entering the solver *)
}

type row = { drift_rate : float; cells : cell list }

type t = {
  seed : int;
  rounds : int;
  classes : int;
  nodes : int;
  epsilon : float;  (** certificate threshold the certified policy used *)
  rows : row list;
}

(** [run ?quick ?eps ?rounds ?drift_rates ~seed ()] — deterministic for
    a given seed. [quick] shrinks rounds and the drift grid. *)
val run :
  ?quick:bool -> ?eps:float -> ?rounds:int -> ?drift_rates:float list -> seed:int -> unit -> t

val to_json : t -> Obs.Json.t

(** Field-by-field decode; [Error] names the offending field. *)
val of_json : Obs.Json.t -> (t, string) result

(** Write the artifact (one JSON object + newline). *)
val write_bench : string -> t -> unit

val pp : Format.formatter -> t -> unit
