(* E9 — predicted scaling of the three component layouts.

   Reproduces the layout-comparison figure: predicted total time vs
   node budget for layouts 1–3, plus simulated "actual" points for
   layout 1 (the figure's `1exp` series, which matched prediction with
   R² = 1.0). Expected shape: layouts 1 and 2 close, layout 3 clearly
   worst. *)

let name = "E9_cesm_layouts"
let describes = "Fig: predicted total time vs nodes for layouts 1-3 (+ layout-1 actual)"

let run ?(quick = false) fmt =
  let node_counts = if quick then [ 64; 256 ] else [ 64; 128; 256; 512; 1024; 2048 ] in
  let inputs = E8_cesm_table3.fit_components ~resolution:Layouts.Cesm_data.Deg1 ~n_max:2048 in
  let sim_rng = Workloads.rng 55 in
  (* two passes: the three deterministic layout solves per node budget
     run on the worker pool, then the RNG-backed "actual" simulations
     replay sequentially over the shared stream — the draw order (and so
     the output) is identical at any HSLB_JOBS *)
  let solved =
    Runtime.Pool.map
      (fun n_total ->
        let config = Layouts.Layout_model.default_config ~n_total in
        let solve l =
          match Layouts.Layout_model.solve l config inputs with
          | Ok a -> a
          | Error st ->
            failwith
              (Printf.sprintf "E9: layout solve failed on %d nodes: %s" n_total
                 (Minlp.Solution.status_to_string st))
        in
        ( solve Layouts.Layout_model.Hybrid,
          solve Layouts.Layout_model.Sequential_group,
          solve Layouts.Layout_model.Fully_sequential ))
      node_counts
  in
  let rows =
    List.map2
      (fun n_total (a1, a2, a3) ->
        (* layout-1 actual: simulate each component at its allocation *)
        let actual w =
          Layouts.Cesm_data.simulate_component ~rng:sim_rng Layouts.Cesm_data.Deg1 w
            ~nodes:(List.assoc w a1.Layouts.Layout_model.nodes)
        in
        let actual1 =
          Layouts.Layout_model.layout_total Layouts.Layout_model.Hybrid ~ice:(actual "ice")
            ~lnd:(actual "lnd") ~atm:(actual "atm") ~ocn:(actual "ocn")
        in
        ( [
            string_of_int n_total;
            Table.fs a1.Layouts.Layout_model.total;
            Table.fs actual1;
            Table.fs a2.Layouts.Layout_model.total;
            Table.fs a3.Layouts.Layout_model.total;
          ],
          (a1.Layouts.Layout_model.total, actual1) ))
      node_counts solved
  in
  Table.print fmt ~title:"E9: layout scaling (1 deg components)"
    ~header:[ "nodes"; "layout1 pred"; "layout1 actual"; "layout2 pred"; "layout3 pred" ]
    (List.map fst rows);
  let series_of idx marker label =
    {
      Chart.label;
      marker;
      points =
        List.map2
          (fun n (cells, _) -> (float_of_int n, float_of_string (List.nth cells idx)))
          node_counts rows;
    }
  in
  Chart.plot fmt ~title:"E9 figure: predicted total vs nodes per layout"
    [
      series_of 1 '1' "layout 1 (hybrid)";
      series_of 3 '2' "layout 2 (sequential group)";
      series_of 4 '3' "layout 3 (fully sequential)";
    ];
  (* the figure reports R² between layout-1 prediction and experiment *)
  let preds = Array.of_list (List.map (fun (_, (p, _)) -> p) rows) in
  let acts = Array.of_list (List.map (fun (_, (_, a)) -> a) rows) in
  Format.fprintf fmt "R2 between layout-1 predicted and actual: %.4f (published: 1.0)@."
    (Numerics.Stats.r_squared ~observed:acts ~predicted:preds)
