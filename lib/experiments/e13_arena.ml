(* E13 — scheduler arena: regret vs dynamic across a scenario zoo
   (beyond the paper's tables).

   The paper races static HSLB against dynamic dispatch on FMO-shaped
   workloads only. E13 goes wide: a seeded generator produces six
   workload classes (steady, bursty, multi-tenant, heavy-tailed,
   drifting group speeds, mid-run group failure) and five balancer
   families race on each — the repo's Dynamic/Static/Stealing plus the
   hybrid periodic-rebalance and diffusive neighbor-exchange schemes.
   The output is a regret-vs-dynamic matrix: negative entries mean the
   balancer beat the stock dynamic scheduler; the per-class winner is
   what the serve layer's `policy` hint recommends. *)

let name = "E13_arena"
let describes = "Scheduler arena: regret matrix over a generated scenario zoo"

let run ?(quick = false) fmt =
  let phases = if quick then 4 else 8 in
  let tasks_per_phase = if quick then 24 else 48 in
  let race =
    Arena.Race.run ~phases ~tasks_per_phase ~seed:42 Arena.Scenario.all_classes
  in
  let header = "class" :: "winner" :: race.Arena.Race.schedulers in
  let rows =
    List.map
      (fun (r : Arena.Race.row) ->
        Arena.Scenario.class_to_string r.Arena.Race.cls
        :: r.Arena.Race.winner
        :: List.map
             (fun (c : Arena.Race.cell) -> Table.pct (100. *. c.Arena.Race.regret_vs_dynamic))
             r.Arena.Race.cells)
      race.Arena.Race.rows
  in
  Table.print fmt
    ~title:
      (Printf.sprintf "E13: regret vs dynamic, %d phases x %d tasks (seed 42)" phases
         tasks_per_phase)
    ~header rows;
  Format.fprintf fmt
    "expected shape: static planning wins on stationary classes; hybrid rebalance recovers \
     the static win once group speeds drift; only stealing tracks dynamic through a group \
     brownout@."
