(* E12 — the incremental re-solve frontier (beyond the paper's tables).

   The paper fits once and solves once; E12 asks what a long-lived
   balancer should do when the coefficients drift. Three policies run
   against the same drifting ground truth: always re-solve, never
   re-solve, and re-solve only when the ε-reoptimality certificate
   fails (the serve layer's `resolve` op). The interesting cell is
   certified-at-low-drift: nearly the makespan of always, at a fraction
   of the MINLP solves. *)

let name = "E12_resolve"
let describes = "Re-solve policy frontier: always / never / eps-certified under drift"

let run ?(quick = false) fmt =
  let t = Resolve_frontier.run ~quick ~seed:42 () in
  let header = [ "drift"; "policy"; "true makespan"; "solves"; "skipped" ] in
  let rows =
    List.concat_map
      (fun (r : Resolve_frontier.row) ->
        List.map
          (fun (c : Resolve_frontier.cell) ->
            [
              Printf.sprintf "%.3f" r.Resolve_frontier.drift_rate;
              c.Resolve_frontier.policy;
              Printf.sprintf "%.3f" c.Resolve_frontier.makespan_avg;
              string_of_int c.Resolve_frontier.solves;
              string_of_int c.Resolve_frontier.skipped;
            ])
          r.Resolve_frontier.cells)
      t.Resolve_frontier.rows
  in
  Table.print fmt
    ~title:
      (Printf.sprintf "E12: re-solve policies, %d rounds, eps=%.2f (seed 42)"
         t.Resolve_frontier.rounds t.Resolve_frontier.epsilon)
    ~header rows;
  Format.fprintf fmt
    "expected shape: never decays as drift grows; certified stays within eps of always while \
     skipping most solves at low drift@."
