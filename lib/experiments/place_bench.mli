(** The E14 comm-blind × comm-aware placement frontier, and the
    BENCH_place.json artifact it is serialized to.

    Each scenario carves a 3-D torus into even compact node groups,
    generates a seeded fragment-pair communication matrix
    ({!Fmo.Comm.generate} over a water cluster) and durations from the
    machine's cost model, then places the fragments twice: with the
    comm-blind LPT baseline and with the comm-aware heuristic
    ({!Place.Optimizer}). The exact rows solve small instances through
    the full MINLP path and audit the optimality certificate. *)

val schema_version : string

(** Deterministic scenario builder shared by the bench, E14 and the
    [hslb place] demo path. [torus] must split evenly into [groups].
    Raises [Invalid_argument] when it does not. *)
val instance :
  ?seed:int ->
  ?hop_cost_s_per_mb:float ->
  torus:int * int * int ->
  tasks:int ->
  groups:int ->
  unit ->
  Place.Model.instance

type cell = {
  strategy : string;  (** "blind" | "aware" *)
  makespan_s : float;
  comm_cost_s : float;
  total_s : float;
}

type row = {
  dims : int * int * int;  (** torus shape *)
  tasks : int;
  groups : int;
  cells : cell list;
}

(** One small instance pushed through {!Place.Model.solve_minlp} with
    the heuristic's answer as warm start, certificate audited. *)
type exact = {
  solver : string;
  xtasks : int;
  xgroups : int;
  status : string;
  audited : bool;
  minlp_total_s : float;
  heuristic_total_s : float;
}

type t = {
  seed : int;
  hop_cost_s_per_mb : float;
  rows : row list;
  exact : exact list;
}

(** [run ?quick ~seed ()] — deterministic for a given seed. [quick]
    shrinks the torus grid and the exact-solver sweep. *)
val run : ?quick:bool -> seed:int -> unit -> t

val to_json : t -> Obs.Json.t

(** Field-by-field decode; [Error] names the offending field. *)
val of_json : Obs.Json.t -> (t, string) result

(** Write the artifact (one JSON object + newline). *)
val write_bench : string -> t -> unit

val pp : Format.formatter -> t -> unit
