(* E14 — communication-aware placement (beyond the paper's tables).

   The paper's static balancer decides group sizes; E14 asks what the
   wire is worth once those groups land on the torus. Each row generates
   a fragment-pair communication matrix (Fmo.Comm over a seeded water
   cluster), carves the torus into even compact groups, and compares the
   comm-blind LPT placement with the comm-aware local search under the
   same memory knapsacks and a 5% makespan leash. The exact rows solve
   small instances to audited optimality through the MINLP path. *)

let name = "E14_place"
let describes = "Comm-blind vs comm-aware placement across torus sizes, with audited MINLP"

let run ?(quick = false) fmt =
  let t = Place_bench.run ~quick ~seed:42 () in
  let header = [ "torus"; "tasks"; "groups"; "strategy"; "makespan s"; "comm s"; "total s" ] in
  let rows =
    List.concat_map
      (fun (r : Place_bench.row) ->
        let x, y, z = r.Place_bench.dims in
        List.map
          (fun (c : Place_bench.cell) ->
            [
              Printf.sprintf "%dx%dx%d" x y z;
              string_of_int r.Place_bench.tasks;
              string_of_int r.Place_bench.groups;
              c.Place_bench.strategy;
              Printf.sprintf "%.3f" c.Place_bench.makespan_s;
              Printf.sprintf "%.4f" c.Place_bench.comm_cost_s;
              Printf.sprintf "%.3f" c.Place_bench.total_s;
            ])
          r.Place_bench.cells)
      t.Place_bench.rows
  in
  Table.print fmt
    ~title:
      (Printf.sprintf "E14: placement frontier, hop cost %.2f s/MB (seed %d)"
         t.Place_bench.hop_cost_s_per_mb t.Place_bench.seed)
    ~header rows;
  List.iter
    (fun (e : Place_bench.exact) ->
      Format.fprintf fmt "exact %s on %d tasks / %d groups: %s%s, total %.4f vs heuristic %.4f@."
        e.Place_bench.solver e.Place_bench.xtasks e.Place_bench.xgroups e.Place_bench.status
        (if e.Place_bench.audited then " (certificate audited)" else "")
        e.Place_bench.minlp_total_s e.Place_bench.heuristic_total_s)
    t.Place_bench.exact;
  Format.fprintf fmt
    "expected shape: the comm-aware search strictly cuts the wire cost at every torus size \
     while staying within 5%% of the blind makespan; the MINLP path certifies optimality on \
     the small instances@."
