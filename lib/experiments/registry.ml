type t = {
  id : string;
  describes : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = E1_fit_quality.name; describes = E1_fit_quality.describes; run = E1_fit_quality.run };
    { id = E2_objectives.name; describes = E2_objectives.describes; run = E2_objectives.run };
    {
      id = E3_pred_vs_actual.name;
      describes = E3_pred_vs_actual.describes;
      run = E3_pred_vs_actual.run;
    };
    { id = E4_scaling.name; describes = E4_scaling.describes; run = E4_scaling.run };
    { id = E5_protein.name; describes = E5_protein.describes; run = E5_protein.run };
    { id = E6_solver.name; describes = E6_solver.describes; run = E6_solver.run };
    { id = E7_samples.name; describes = E7_samples.describes; run = E7_samples.run };
    { id = E8_cesm_table3.name; describes = E8_cesm_table3.describes; run = E8_cesm_table3.run };
    {
      id = E9_layout_scaling.name;
      describes = E9_layout_scaling.describes;
      run = E9_layout_scaling.run;
    };
    {
      id = E10_scheduler_ablation.name;
      describes = E10_scheduler_ablation.describes;
      run = E10_scheduler_ablation.run;
    };
    { id = E11_placement.name; describes = E11_placement.describes; run = E11_placement.run };
    { id = E12_resolve.name; describes = E12_resolve.describes; run = E12_resolve.run };
    { id = E13_arena.name; describes = E13_arena.describes; run = E13_arena.run };
    { id = E14_place.name; describes = E14_place.describes; run = E14_place.run };
  ]

let ids () = List.map (fun e -> e.id) all

let find_result id =
  let prefix_matches e =
    String.length id <= String.length e.id && String.sub e.id 0 (String.length id) = id
  in
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> Ok e
  | None -> (
    match List.filter prefix_matches all with
    | [ e ] -> Ok e
    | [] ->
      Error
        (Printf.sprintf "unknown experiment %S; valid ids: %s" id
           (String.concat ", " (ids ())))
    | ms ->
      Error
        (Printf.sprintf "ambiguous experiment %S: matches %s" id
           (String.concat ", " (List.map (fun e -> e.id) ms))))

let find id = match find_result id with Ok e -> e | Error _ -> raise Not_found

let run_all ?quick ?jobs fmt =
  let jobs = match jobs with Some j -> j | None -> Runtime.Config.jobs () in
  if jobs <= 1 then
    (* the sequential path is kept verbatim (Sys.time and all) so that
       [--jobs 1] output stays byte-identical to the historical runner *)
    List.iter
      (fun e ->
        Format.fprintf fmt "@.########## %s — %s ##########@." e.id e.describes;
        let t0 = Sys.time () in
        e.run ?quick fmt;
        Format.fprintf fmt "[%s finished in %.1f s]@." e.id (Sys.time () -. t0))
      all
  else
    (* shard experiments over a bounded pool; each renders into its own
       buffer and the chunks are emitted in registry order, so output
       stays deterministic while the work overlaps. Parallel runs report
       per-experiment wall clock ([Sys.time] is process-wide CPU and
       would be meaningless across domains). *)
    let chunks =
      Runtime.Pool.map ~jobs
        (fun e ->
          let buf = Buffer.create 4096 in
          let bfmt = Format.formatter_of_buffer buf in
          Format.fprintf bfmt "@.########## %s — %s ##########@." e.id e.describes;
          let t0 = Unix.gettimeofday () in
          e.run ?quick bfmt;
          Format.fprintf bfmt "[%s finished in %.1f s]@." e.id (Unix.gettimeofday () -. t0);
          Format.pp_print_flush bfmt ();
          Buffer.contents buf)
        all
    in
    List.iter (fun chunk -> Format.pp_print_string fmt chunk) chunks;
    Format.pp_print_flush fmt ()
