(* E11 — torus-placement sensitivity (beyond the paper's tables).

   Blue Gene/P is a 3-D torus, and the paper's observation that the
   overhead coefficients "b, c [are] almost equal to zero" implicitly
   relies on groups being placed compactly. This experiment quantifies
   that assumption with a real traffic matrix: a pinned-seed water
   cluster is fragmented, Fmo.Comm generates the fragment-pair
   communication volumes, and one fragment is pinned per group. The
   same even partition is placed compactly vs scattered round-robin
   across the torus, and the inter-group traffic is priced by the hop
   distance between group leads. Compact placement keeps the paper's
   premise; scattered placement erodes it as the machine grows. *)

let name = "E11_placement"
let describes = "Ablation: compact vs scattered group placement on the torus"

let comm_seed = 11 (* pinned: E11 output is golden-tested byte-for-byte *)
let hop_cost_s_per_mb = 2.0

let run ?(quick = false) fmt =
  let node_counts = if quick then [ 512 ] else [ 512; 4096; 32768 ] in
  let machine = Workloads.machine ~num_nodes:(List.fold_left Stdlib.max 1 node_counts) () in
  let groups = 64 in
  (* one representative fragment per group; the matrix is machine-size
     independent, so it is generated once for the whole sweep *)
  let frags =
    Fmo.Fragment.fragment
      (Fmo.Molecule.water_cluster ~rng:(Numerics.Rng.create comm_seed) groups)
      Fmo.Basis.B6_31gd
  in
  let comm = Fmo.Comm.generate ~seed:comm_seed frags in
  let rows =
    List.concat_map
      (fun n_total ->
        let torus = Topology.for_nodes n_total in
        let size = n_total / groups in
        let sizes = List.init groups (fun _ -> size) in
        (* representative monomer task law at this machine *)
        let law = Fmo.Cost_model.law machine ~work_gflops:150. ~nbf:19 in
        let eval_placement placement =
          let ids = Topology.place torus ~placement ~sizes in
          let dias = Array.of_list (List.map (Topology.group_diameter torus) ids) in
          let dia = Array.fold_left Stdlib.max 0 dias in
          let leads = Array.of_list (List.map (fun g -> g.(0)) ids) in
          (* a pair's traffic travels between the group anchors and then
             fans out within each group, so the per-MB price is the
             anchor hop distance plus half of each group's diameter —
             scattering a group does not move its anchor much, but it
             stretches the fan-out to the whole machine *)
          let comm_s = ref 0. in
          for i = 0 to groups - 1 do
            for j = i + 1 to groups - 1 do
              let hops =
                float_of_int (Topology.distance torus leads.(i) leads.(j))
                +. (0.5 *. float_of_int (dias.(i) + dias.(j)))
              in
              comm_s := !comm_s +. (Fmo.Comm.volume comm i j *. hops *. hop_cost_s_per_mb)
            done
          done;
          let total = Scaling_law.eval law (float_of_int size) +. !comm_s in
          (dia, !comm_s, total)
        in
        let dia_c, ov_c, t_compact = eval_placement Topology.Compact in
        let dia_s, ov_s, t_scattered = eval_placement Topology.Scattered in
        [
          [
            string_of_int n_total;
            string_of_int size;
            Printf.sprintf "%d / %d" dia_c (Topology.diameter torus);
            Printf.sprintf "%d / %d" dia_s (Topology.diameter torus);
            Printf.sprintf "%.2e" ov_c;
            Printf.sprintf "%.2e" ov_s;
            Printf.sprintf "%.1fx" (ov_s /. Float.max 1e-300 ov_c);
            Table.pct (100. *. (t_scattered -. t_compact) /. t_compact);
          ];
        ])
      node_counts
  in
  Table.print fmt
    ~title:"E11: placement sensitivity, 64 even groups on a 3-D torus"
    ~header:
      [
        "nodes"; "group size"; "compact dia/max"; "scattered dia/max"; "comm s (compact)";
        "comm s (scattered)"; "overhead ratio"; "total slowdown";
      ]
    rows;
  Format.fprintf fmt
    "expected shape: compact placement keeps the paper's b~0 premise at every scale; \
     scattered placement inflates the communication term increasingly with machine size@."
