(** The three component-layout MINLP models (Table I of the follow-up
    application of HSLB to coupled climate components).

    Four components — ice, land, atmosphere, ocean — are placed on [N]
    nodes under layout-specific sequencing constraints:

    - {b Hybrid} (layout 1): ice and land run concurrently, then the
      atmosphere runs sequentially after them on the same pool, with the
      ocean concurrent to all three:
      [T = max(max(T_ice, T_lnd) + T_atm, T_ocn)], with
      [n_ice + n_lnd <= n_atm] and [n_atm + n_ocn <= N].
    - {b Sequential_group} (layout 2): ice, land and atmosphere run
      back-to-back on the pool complementary to the ocean's.
    - {b Fully_sequential} (layout 3): everything back-to-back on all
      nodes.

    Ocean and atmosphere node counts may be restricted to discrete
    "sweet spot" lists, modelled with binaries and an SOS1 set exactly
    as in the text (lines 29–31 of Table I). The optional
    synchronization-tolerance constraint
    [|T_lnd − T_ice| <= Tsync] is nonconvex, so it is only honoured by
    the NLP-based branch-and-bound (documented limitation; the text
    itself warns the constraint "may actually result in reduced
    performance"). *)

type layout = Hybrid | Sequential_group | Fully_sequential

type config = {
  n_total : int;
  ocn_allowed : int list option;  (** ocean sweet spots (Table I line 5) *)
  atm_allowed : int list option;  (** atmosphere sweet spots (line 6) *)
  tsync : float option;  (** synchronization tolerance (line 9) *)
  solver : Engine.Solver_choice.t;
}

val default_config : n_total:int -> config

type inputs = {
  ice : Component.t;
  lnd : Component.t;
  atm : Component.t;
  ocn : Component.t;
}

type alloc = {
  nodes : (string * int) list;  (** component name → nodes *)
  times : (string * float) list;  (** predicted per-component times *)
  total : float;  (** predicted total time under the layout formula *)
  status : Minlp.Solution.status;
      (** how the solve ended; [Feasible Audit_failed] marks a
          portfolio winner whose optimality certificate the independent
          auditor rejected (the point itself re-verified feasible) *)
  stats : Minlp.Solution.stats;
  certificate : Engine.Certificate.t option;
      (** solver-emitted claim backing [status], verifiable with
          [Audit.check_minlp] against {!build}'s problem *)
}

(** [layout_total layout ~ice ~lnd ~atm ~ocn] — the layout's total-time
    formula applied to given per-component times. *)
val layout_total : layout -> ice:float -> lnd:float -> atm:float -> ocn:float -> float

(** [build layout config inputs] — the MINLP; returns the problem and
    the variable indices of [(n_ice, n_lnd, n_atm, n_ocn)]. *)
val build : layout -> config -> inputs -> Minlp.Problem.t * (int * int * int * int)

(** [solve ?strategy ?budget ?cancel ?trace layout config inputs] —
    build, solve and decode, following the {!Engine.Solver_intf.S}
    labelled-argument convention. Infeasibility or an empty-handed
    budget stop is returned as [Error], not raised.

    [strategy] (default [`Auto], which honours [config.solver]) selects
    the solver as in {!Hslb.Alloc_model.solve}: [`Portfolio] races all
    of {!Engine.Solver_choice.all} in parallel domains on one shared
    budget; the winning lane's certificate is re-verified by the
    independent auditor before the answer is returned, and a rejected
    [Optimal] claim is demoted to [Feasible Audit_failed]. Models with
    a [tsync] tolerance are nonconvex and always use the NLP-based
    branch and bound alone, whatever the strategy. *)
val solve :
  ?strategy:Runtime.Portfolio.strategy ->
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?trace:Engine.Telemetry.t ->
  layout ->
  config ->
  inputs ->
  (alloc, Minlp.Solution.status) result

(** [predict_scaling layout config inputs ~node_counts] — predicted
    total time at each node budget (the layout-comparison figure). *)
val predict_scaling :
  layout -> config -> inputs -> node_counts:int list -> (int * float) list

val layout_name : layout -> string
