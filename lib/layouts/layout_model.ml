type layout = Hybrid | Sequential_group | Fully_sequential

type config = {
  n_total : int;
  ocn_allowed : int list option;
  atm_allowed : int list option;
  tsync : float option;
  solver : Engine.Solver_choice.t;
}

let default_config ~n_total =
  {
    n_total;
    ocn_allowed = None;
    atm_allowed = None;
    tsync = None;
    solver = Engine.Solver_choice.Oa;
  }

type inputs = {
  ice : Component.t;
  lnd : Component.t;
  atm : Component.t;
  ocn : Component.t;
}

type alloc = {
  nodes : (string * int) list;
  times : (string * float) list;
  total : float;
  status : Minlp.Solution.status;
  stats : Minlp.Solution.stats;
  certificate : Engine.Certificate.t option;
}

let layout_name = function
  | Hybrid -> "hybrid (1)"
  | Sequential_group -> "sequential-group (2)"
  | Fully_sequential -> "fully-sequential (3)"

let layout_total layout ~ice ~lnd ~atm ~ocn =
  match layout with
  | Hybrid -> Float.max (Float.max ice lnd +. atm) ocn
  | Sequential_group -> Float.max (ice +. lnd +. atm) ocn
  | Fully_sequential -> ice +. lnd +. atm +. ocn

let law_expr (law : Scaling_law.t) n_var =
  let open Minlp.Expr in
  let n = var n_var in
  add
    [
      scale law.Scaling_law.a (pow n (-.law.Scaling_law.c));
      scale law.Scaling_law.b n;
      const law.Scaling_law.d;
    ]

let build layout config inputs =
  let n = float_of_int config.n_total in
  if config.n_total < 4 then invalid_arg "Layout_model.build: need at least 4 nodes";
  let b = Minlp.Problem.Builder.create () in
  let t = Minlp.Problem.Builder.add_var b ~name:"T" ~lo:0. ~hi:1e12 Minlp.Problem.Continuous in
  let node_var name =
    Minlp.Problem.Builder.add_var b ~name ~lo:1. ~hi:n Minlp.Problem.Integer
  in
  let n_i = node_var "n_ice" in
  let n_l = node_var "n_lnd" in
  let n_a = node_var "n_atm" in
  let n_o = node_var "n_ocn" in
  Minlp.Problem.Builder.set_objective b (Minlp.Expr.var t);
  let ice_e = law_expr inputs.ice.Component.law n_i in
  let lnd_e = law_expr inputs.lnd.Component.law n_l in
  let atm_e = law_expr inputs.atm.Component.law n_a in
  let ocn_e = law_expr inputs.ocn.Component.law n_o in
  let le ?name e rhs = Minlp.Problem.Builder.add_constr b ?name e Lp.Lp_problem.Le rhs in
  (match layout with
  | Hybrid ->
    let t_il =
      Minlp.Problem.Builder.add_var b ~name:"T_icelnd" ~lo:0. ~hi:1e12 Minlp.Problem.Continuous
    in
    le ~name:"icelnd>=ice" Minlp.Expr.(ice_e - var t_il) 0.;
    le ~name:"icelnd>=lnd" Minlp.Expr.(lnd_e - var t_il) 0.;
    le ~name:"T>=icelnd+atm" Minlp.Expr.(var t_il + atm_e - var t) 0.;
    le ~name:"T>=ocn" Minlp.Expr.(ocn_e - var t) 0.;
    le ~name:"atm+ocn<=N" (Minlp.Expr.linear [ (n_a, 1.); (n_o, 1.) ]) n;
    le ~name:"ice+lnd<=atm" (Minlp.Expr.linear [ (n_i, 1.); (n_l, 1.); (n_a, -1.) ]) 0.
  | Sequential_group ->
    le ~name:"T>=ice+lnd+atm" Minlp.Expr.(ice_e + lnd_e + atm_e - var t) 0.;
    le ~name:"T>=ocn" Minlp.Expr.(ocn_e - var t) 0.;
    le ~name:"lnd<=N-ocn" (Minlp.Expr.linear [ (n_l, 1.); (n_o, 1.) ]) n;
    le ~name:"ice<=N-ocn" (Minlp.Expr.linear [ (n_i, 1.); (n_o, 1.) ]) n;
    le ~name:"atm<=N-ocn" (Minlp.Expr.linear [ (n_a, 1.); (n_o, 1.) ]) n
  | Fully_sequential ->
    le ~name:"T>=sum" Minlp.Expr.(ice_e + lnd_e + atm_e + ocn_e - var t) 0.);
  (* synchronization tolerance |T_lnd - T_ice| <= Tsync (nonconvex) *)
  (match config.tsync with
  | None -> ()
  | Some tol ->
    le ~name:"tsync+" Minlp.Expr.(lnd_e - ice_e) tol;
    le ~name:"tsync-" Minlp.Expr.(ice_e - lnd_e) tol);
  (* sweet spots *)
  (match config.ocn_allowed with
  | None -> ()
  | Some values ->
    let vals = List.filter (fun v -> v >= 1 && v <= config.n_total) values in
    if vals = [] then invalid_arg "Layout_model.build: no feasible ocean sweet spot";
    ignore (Hslb.Alloc_model.restrict_to_values b ~var:n_o vals));
  (match config.atm_allowed with
  | None -> ()
  | Some values ->
    let vals = List.filter (fun v -> v >= 1 && v <= config.n_total) values in
    if vals = [] then invalid_arg "Layout_model.build: no feasible atmosphere sweet spot";
    ignore (Hslb.Alloc_model.restrict_to_values b ~var:n_a vals));
  (Minlp.Problem.Builder.build b, (n_i, n_l, n_a, n_o))

let run_solver choice ?budget ?tally problem =
  match choice with
  | Engine.Solver_choice.Oa ->
    Minlp.Oa.run
      ~options:{ Minlp.Oa.default_options with rel_gap = 1e-4 }
      ?budget ?tally problem
  | Engine.Solver_choice.Bnb ->
    Minlp.Bnb.run
      ~options:{ Minlp.Bnb.default_options with rel_gap = 1e-4 }
      ?budget ?tally problem
  | Engine.Solver_choice.Oa_multi ->
    (Minlp.Oa_multi.run
       ~options:{ Minlp.Oa_multi.default_options with rel_gap = 1e-4 }
       ?budget ?tally problem)
      .Minlp.Oa_multi.solution

let decode ~producer ?budget layout inputs problem (vi, vl, va, vo)
    (sol : Minlp.Solution.t) =
  match sol.Minlp.Solution.status with
  | (Minlp.Solution.Optimal | Minlp.Solution.Feasible _ | Minlp.Solution.Budget_exhausted _)
    when Array.length sol.Minlp.Solution.x > 0 ->
    let node v = int_of_float (Float.round sol.Minlp.Solution.x.(v)) in
    let n_ice = node vi and n_lnd = node vl and n_atm = node va and n_ocn = node vo in
    let t_of c nn = Component.time c nn in
    let ice = t_of inputs.ice n_ice
    and lnd = t_of inputs.lnd n_lnd
    and atm = t_of inputs.atm n_atm
    and ocn = t_of inputs.ocn n_ocn in
    let cert =
      Minlp.Solution.certify ~producer ?budget
        ~minimize:problem.Minlp.Problem.minimize ~tol:1e-4 sol
    in
    Ok
      {
        nodes =
          [
            (inputs.ice.Component.cname, n_ice);
            (inputs.lnd.Component.cname, n_lnd);
            (inputs.atm.Component.cname, n_atm);
            (inputs.ocn.Component.cname, n_ocn);
          ];
        times =
          [
            (inputs.ice.Component.cname, ice);
            (inputs.lnd.Component.cname, lnd);
            (inputs.atm.Component.cname, atm);
            (inputs.ocn.Component.cname, ocn);
          ];
        total = layout_total layout ~ice ~lnd ~atm ~ocn;
        status = sol.Minlp.Solution.status;
        stats = sol.Minlp.Solution.stats;
        certificate = Some cert;
      }
  | status -> Error status

let solve ?(strategy = `Auto) ?budget ?cancel ?trace layout config inputs =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let tally = trace in
  let problem, vars = build layout config inputs in
  (* the nonconvex tsync constraint invalidates OA cuts; only the
     NLP-based tree (local relaxations) is sound there, so tsync models
     never race — there is exactly one applicable solver *)
  match (config.tsync, strategy) with
  | Some _, _ ->
    decode
      ~producer:(Engine.Solver_choice.to_string Engine.Solver_choice.Bnb)
      ?budget layout inputs problem vars
      (run_solver Engine.Solver_choice.Bnb ?budget ?tally problem)
  | None, `Single s ->
    decode
      ~producer:(Engine.Solver_choice.to_string s)
      ?budget layout inputs problem vars
      (run_solver s ?budget ?tally problem)
  | None, `Auto ->
    decode
      ~producer:(Engine.Solver_choice.to_string config.solver)
      ?budget layout inputs problem vars
      (run_solver config.solver ?budget ?tally problem)
  | None, `Portfolio -> (
    let lane choice =
      ( Engine.Solver_choice.to_string choice,
        fun shared ->
          let lane_tally = Engine.Telemetry.create () in
          (run_solver choice ~budget:shared ~tally:lane_tally problem, lane_tally) )
    in
    let outcome =
      Runtime.Portfolio.race ?budget
        ~final:(fun ((s : Minlp.Solution.t), _) ->
          s.Minlp.Solution.status = Minlp.Solution.Optimal)
        ~better:(fun ((a : Minlp.Solution.t), _) ((b : Minlp.Solution.t), _) ->
          match (Minlp.Solution.has_incumbent a, Minlp.Solution.has_incumbent b) with
          | true, false -> true
          | false, (true | false) -> false
          | true, true -> a.Minlp.Solution.obj < b.Minlp.Solution.obj)
        (List.map lane Engine.Solver_choice.all)
    in
    (match tally with
    | None -> ()
    | Some t ->
      List.iter
        (fun (l : _ Runtime.Portfolio.lane) ->
          match l.Runtime.Portfolio.outcome with
          | Ok (_, lane_tally) -> Engine.Telemetry.merge_into t lane_tally
          | Error _ -> ())
        outcome.Runtime.Portfolio.lanes);
    (* same policy as Alloc_model: the winning lane's certificate is
       re-verified against the raw model before the answer leaves the
       race, and a rejected optimality proof is demoted *)
    let producer = "portfolio:" ^ outcome.Runtime.Portfolio.winner in
    match
      decode ~producer ?budget layout inputs problem vars
        (fst outcome.Runtime.Portfolio.value)
    with
    | Error _ as e -> e
    | Ok alloc -> (
      match alloc.certificate with
      | None -> Ok alloc
      | Some cert -> (
        match Audit.check_minlp problem cert with
        | Ok () -> Ok alloc
        | Error _ -> (
          match alloc.status with
          | Minlp.Solution.Optimal ->
            Ok { alloc with status = Minlp.Solution.Feasible Minlp.Solution.Audit_failed }
          | Minlp.Solution.Feasible _ | Minlp.Solution.Budget_exhausted _
          | Minlp.Solution.Infeasible | Minlp.Solution.Unbounded ->
            Ok alloc))))

let fail_on_error layout config = function
  | Ok alloc -> alloc
  | Error status ->
    failwith
      (Printf.sprintf "Layout_model.solve: %s for %s on %d nodes"
         (Minlp.Solution.status_to_string status)
         (layout_name layout) config.n_total)

let predict_scaling layout config inputs ~node_counts =
  List.map
    (fun n_total ->
      let config = { config with n_total } in
      let alloc = fail_on_error layout config (solve layout config inputs) in
      (n_total, alloc.total))
    node_counts
