(** Discrete-event simulation of one barrier-delimited phase.

    A phase is a bag of independent coarse tasks executed by processor
    groups (an FMO monomer sweep, or the dimer phase). Two scheduling
    modes mirror GAMESS/GDDI:

    - [Dynamic]: the stock DLB — tasks are taken in submission order by
      whichever group frees up first (first-come, first-served pull).
    - [Static a]: a precomputed task→group map (HSLB's output, or a
      baseline heuristic); each group runs its tasks back to back.

    Durations are supplied by a callback so the simulator stays
    workload-agnostic; the FMO layer passes the noisy ground-truth cost
    model there. *)

type event = {
  task : int;
  group : int;
  start : float;
  finish : float;
}

type result = {
  makespan : float;
  group_busy : float array;  (** total busy time per group *)
  group_finish : float array;  (** completion time per group *)
  assignment : int array;  (** realized task → group map *)
  events : event list;  (** chronological trace *)
}

type schedule =
  | Dynamic
  | Static of int array  (** [task -> group id]; length = task count *)
  | Stealing of int array
      (** start from the given static map; a group that drains its own
          queue steals from the tail of the currently longest queue
          (deterministic victim selection). The work-stealing DLB
          family the paper's introduction surveys. *)

(** [run_phase partition ~num_tasks ~duration schedule] — simulate.
    [duration ~task ~group] must be non-negative and finite; it is
    called exactly once per task (so stochastic costs are sampled
    once, like a real execution). [dispatch_latency] (default 0, must
    be non-negative and finite) is added to every task under
    [Dynamic] — the serialization cost of the centralized dynamic
    dispatcher, which grows with group count on real machines and is
    one reason the paper prefers static balancing at scale. A
    zero-task phase is valid under every schedule and yields a zero
    makespan. @raise Invalid_argument on malformed static maps,
    non-finite/negative durations or dispatch latency. *)
val run_phase :
  ?dispatch_latency:float ->
  Group.partition ->
  num_tasks:int ->
  duration:(task:int -> group:Group.t -> float) ->
  schedule ->
  result

(** [utilization partition r] — node-weighted busy fraction in
    [0, 1]: [Σ busy_g·nodes_g / (makespan · Σ nodes_g)]. [1.] for an
    empty phase. *)
val utilization : Group.partition -> result -> float

(** [idle_time partition r] — node-weighted idle node-seconds. *)
val idle_time : Group.partition -> result -> float
