type event = { task : int; group : int; start : float; finish : float }

type result = {
  makespan : float;
  group_busy : float array;
  group_finish : float array;
  assignment : int array;
  events : event list;
}

type schedule = Dynamic | Static of int array | Stealing of int array

let run_phase ?(dispatch_latency = 0.) partition ~num_tasks ~duration schedule =
  let ngroups = Array.length partition in
  if ngroups = 0 then invalid_arg "Sim.run_phase: empty partition";
  if num_tasks < 0 then invalid_arg "Sim.run_phase: negative task count";
  if dispatch_latency < 0. || not (Float.is_finite dispatch_latency) then
    invalid_arg "Sim.run_phase: negative or non-finite dispatch latency";
  let busy = Array.make ngroups 0. in
  let finish = Array.make ngroups 0. in
  let assignment = Array.make num_tasks (-1) in
  let events = ref [] in
  let execute ?(overhead = 0.) task g_id =
    let g = partition.(g_id) in
    let d = overhead +. duration ~task ~group:g in
    (* non-finite durations (not just NaN) would silently poison every
       downstream makespan/busy aggregate — reject them at the source *)
    if d < 0. || not (Float.is_finite d) then
      invalid_arg "Sim.run_phase: negative or non-finite duration";
    let start = finish.(g_id) in
    finish.(g_id) <- start +. d;
    busy.(g_id) <- busy.(g_id) +. d;
    assignment.(task) <- g_id;
    events := { task; group = g_id; start; finish = finish.(g_id) } :: !events
  in
  (match schedule with
  | Static a ->
    if Array.length a <> num_tasks then invalid_arg "Sim.run_phase: assignment length mismatch";
    Array.iteri
      (fun task g_id ->
        if g_id < 0 || g_id >= ngroups then invalid_arg "Sim.run_phase: group id out of range";
        execute task g_id)
      a
  | Dynamic ->
    (* first-free-group pull; ties go to the lowest group id so runs
       are deterministic *)
    let leq (t1, g1) (t2, g2) = t1 < t2 || (t1 = t2 && g1 <= g2) in
    let heap = Ds.Heap.create ~leq in
    Array.iteri (fun g_id _ -> Ds.Heap.push heap (0., g_id)) partition;
    for task = 0 to num_tasks - 1 do
      let _, g_id = Ds.Heap.pop heap in
      execute ~overhead:dispatch_latency task g_id;
      Ds.Heap.push heap (finish.(g_id), g_id)
    done
  | Stealing a ->
    if Array.length a <> num_tasks then invalid_arg "Sim.run_phase: assignment length mismatch";
    (* per-group deques seeded by the static map, submission order *)
    let queues = Array.make ngroups [] in
    for task = num_tasks - 1 downto 0 do
      let g_id = a.(task) in
      if g_id < 0 || g_id >= ngroups then invalid_arg "Sim.run_phase: group id out of range";
      queues.(g_id) <- task :: queues.(g_id)
    done;
    let remaining = Array.map List.length queues in
    let leq (t1, g1) (t2, g2) = t1 < t2 || (t1 = t2 && g1 <= g2) in
    let heap = Ds.Heap.create ~leq in
    Array.iteri (fun g_id _ -> Ds.Heap.push heap (0., g_id)) partition;
    let total_left = ref num_tasks in
    while !total_left > 0 do
      let _, g_id = Ds.Heap.pop heap in
      (match queues.(g_id) with
      | task :: rest ->
        queues.(g_id) <- rest;
        remaining.(g_id) <- remaining.(g_id) - 1;
        decr total_left;
        execute task g_id;
        Ds.Heap.push heap (finish.(g_id), g_id)
      | [] ->
        (* steal from the tail of the longest remaining queue *)
        let victim = ref (-1) in
        for v = 0 to ngroups - 1 do
          if remaining.(v) > 0 && (!victim < 0 || remaining.(v) > remaining.(!victim)) then
            victim := v
        done;
        if !victim >= 0 then begin
          let v = !victim in
          let rec split_last = function
            | [] -> assert false
            | [ x ] -> ([], x)
            | x :: rest ->
              let front, last = split_last rest in
              (x :: front, last)
          in
          let front, stolen = split_last queues.(v) in
          queues.(v) <- front;
          remaining.(v) <- remaining.(v) - 1;
          decr total_left;
          (* stealing costs a dispatch round-trip *)
          execute ~overhead:dispatch_latency stolen g_id;
          Ds.Heap.push heap (finish.(g_id), g_id)
        end
        (* no work anywhere: the group retires (not re-pushed) *))
    done);
  let makespan = Array.fold_left Float.max 0. finish in
  {
    makespan;
    group_busy = busy;
    group_finish = finish;
    assignment;
    events = List.rev !events;
  }

let weighted_nodes partition = Array.fold_left (fun acc g -> acc +. float_of_int g.Group.nodes) 0. partition

let utilization partition r =
  if r.makespan <= 0. then 1.
  else begin
    let total = weighted_nodes partition *. r.makespan in
    let busy = ref 0. in
    Array.iteri
      (fun g_id b -> busy := !busy +. (b *. float_of_int partition.(g_id).Group.nodes))
      r.group_busy;
    !busy /. total
  end

let idle_time partition r =
  let idle = ref 0. in
  Array.iteri
    (fun g_id b ->
      idle := !idle +. ((r.makespan -. b) *. float_of_int partition.(g_id).Group.nodes))
    r.group_busy;
  !idle
