(** The topology-constrained placement model.

    {!Alloc_model} decides how many nodes each task class gets; this
    model decides {e where} the work lands. An instance carves the
    torus into node groups and asks for an assignment of tasks to
    groups minimizing

    {v total = makespan + comm_cost
       makespan  = max_g  sum over tasks t on g of duration_s.(t).(g)
       comm_cost = sum over task pairs i<j of
                     comm_mb.(i).(j) * hops(group i, group j)
                       * hop_cost_s_per_mb v}

    subject to per-group memory-capacity knapsack constraints: the
    tasks on group [g] must fit in [|groups.(g)| * mem_per_node_gb].
    [hops] is the minimum torus hop distance between the two groups'
    node sets (zero for tasks sharing a group — co-location is how the
    optimizer buys communication down).

    Memory-infeasible instances are rejected by {!make} with a precise
    [Invalid_argument] before any solver work (the
    {!Hslb.Fitting.recommended_sizes} per-case message convention). *)

type instance = private {
  topology : Topology.t;
  groups : int array array;  (** node ids per group, disjoint *)
  names : string array;  (** task names, for diagnostics *)
  duration_s : float array array;  (** [duration_s.(t).(g)] — compute seconds *)
  mem_gb : float array;  (** per-task working set *)
  mem_per_node_gb : float;
  comm_mb : float array array;  (** symmetric, zero diagonal *)
  hop_cost_s_per_mb : float;
}

(** Validates every shape and the two memory-feasibility necessary
    conditions (any single task must fit the largest group; the total
    must fit the machine), raising [Invalid_argument] with an exact
    per-case message naming the class and the capacities involved. *)
val make :
  topology:Topology.t ->
  groups:int array array ->
  names:string array ->
  duration_s:float array array ->
  mem_gb:float array ->
  mem_per_node_gb:float ->
  comm_mb:float array array ->
  hop_cost_s_per_mb:float ->
  unit ->
  instance

val num_tasks : instance -> int
val num_groups : instance -> int

(** [capacity_gb inst g] — [|groups.(g)| * mem_per_node_gb]. *)
val capacity_gb : instance -> int -> float

(** [hop_matrix inst] — minimum pairwise torus distance between every
    pair of groups; zero on the diagonal. *)
val hop_matrix : instance -> int array array

type eval = { makespan_s : float; comm_cost_s : float; total_s : float }

(** [eval inst assignment] — score a task→group assignment. Raises
    [Invalid_argument] on a malformed assignment (wrong length or a
    group index out of range). *)
val eval : instance -> int array -> eval

(** {!eval} against a precomputed {!hop_matrix} and without the
    assignment validation — the local search's inner loop. *)
val eval_with : hop:int array array -> instance -> int array -> eval

(** Does the assignment respect every group's memory capacity? *)
val feasible_memory : instance -> int array -> bool

(** Cache / dedupe key. Injective over topology shape, group carve,
    durations, memory (per task and per node), the comm matrix and the
    hop cost — two instances differing only in topology never share a
    key. [base] (e.g. an {!Hslb.Alloc_model.fingerprint}) is prefixed
    verbatim, so a placed solve never collides with an unplaced one. *)
val fingerprint : ?base:string -> instance -> string

(** The exact path: the placement MILP (binaries [x_tg], epigraph
    makespan, linearized products pricing every comm pair against the
    hop matrix) plus the witness embedding lifting a task→group
    assignment into the model's variable space (for warm starts and
    audit). *)
val build_milp : instance -> Minlp.Problem.t * (int array -> float array)

type solved = {
  assignment : int array;
  evaluation : eval;
  status : Minlp.Solution.status;
  stats : Minlp.Solution.stats;
  certificate : Engine.Certificate.t option;
}

(** [solve_minlp ?solver ?budget ?cancel ?warm_start ?trace inst] — the
    full MINLP path under the unified solve convention: Bnb/Oa/Oa_multi
    via [solver] (default Oa), engine budgets and cooperative
    cancellation, [warm_start] a task→group assignment priming the
    incumbent (the heuristic's answer, typically), [trace] accumulating
    solver counters. Returns the audited-checkable certificate alongside
    the decoded assignment; [Error status] when no usable incumbent was
    found. *)
val solve_minlp :
  ?solver:Engine.Solver_choice.t ->
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:int array ->
  ?trace:Engine.Telemetry.t ->
  instance ->
  (solved, Minlp.Solution.status) result
