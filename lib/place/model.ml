type instance = {
  topology : Topology.t;
  groups : int array array;
  names : string array;
  duration_s : float array array;
  mem_gb : float array;
  mem_per_node_gb : float;
  comm_mb : float array array;
  hop_cost_s_per_mb : float;
}

let num_tasks inst = Array.length inst.names
let num_groups inst = Array.length inst.groups

let capacity_gb inst g = float_of_int (Array.length inst.groups.(g)) *. inst.mem_per_node_gb

(* ---------- construction: every malformed or memory-infeasible
   instance is rejected here, before any solver sees it ---------- *)

let check_shapes ~topology ~groups ~names ~duration_s ~mem_gb ~mem_per_node_gb ~comm_mb
    ~hop_cost_s_per_mb =
  let nt = Array.length names and ng = Array.length groups in
  if nt = 0 then invalid_arg "Place.Model.make: no tasks";
  if ng = 0 then invalid_arg "Place.Model.make: no groups";
  if mem_per_node_gb <= 0. then
    invalid_arg
      (Printf.sprintf "Place.Model.make: mem_per_node_gb must be positive, got %g"
         mem_per_node_gb);
  if hop_cost_s_per_mb < 0. || not (Float.is_finite hop_cost_s_per_mb) then
    invalid_arg
      (Printf.sprintf "Place.Model.make: hop_cost_s_per_mb must be finite and non-negative, got %g"
         hop_cost_s_per_mb);
  let nodes = Topology.num_nodes topology in
  let seen = Array.make nodes false in
  Array.iteri
    (fun g ids ->
      if Array.length ids = 0 then
        invalid_arg (Printf.sprintf "Place.Model.make: group %d is empty" g);
      Array.iter
        (fun id ->
          if id < 0 || id >= nodes then
            invalid_arg
              (Printf.sprintf "Place.Model.make: group %d holds node %d, outside the %d-node torus"
                 g id nodes);
          if seen.(id) then
            invalid_arg
              (Printf.sprintf "Place.Model.make: node %d appears in two groups" id);
          seen.(id) <- true)
        ids)
    groups;
  if Array.length duration_s <> nt then
    invalid_arg
      (Printf.sprintf "Place.Model.make: duration_s has %d rows, expected %d (one per task)"
         (Array.length duration_s) nt);
  Array.iteri
    (fun t row ->
      if Array.length row <> ng then
        invalid_arg
          (Printf.sprintf
             "Place.Model.make: duration_s row %d has %d entries, expected %d (one per group)" t
             (Array.length row) ng);
      Array.iter
        (fun d ->
          if not (Float.is_finite d) || d < 0. then
            invalid_arg
              (Printf.sprintf "Place.Model.make: duration of task %S must be finite and non-negative"
                 names.(t)))
        row)
    duration_s;
  if Array.length mem_gb <> nt then
    invalid_arg
      (Printf.sprintf "Place.Model.make: mem_gb has %d entries, expected %d (one per task)"
         (Array.length mem_gb) nt);
  Array.iteri
    (fun t m ->
      if not (Float.is_finite m) || m < 0. then
        invalid_arg
          (Printf.sprintf "Place.Model.make: memory of task %S must be finite and non-negative"
             names.(t)))
    mem_gb;
  if Array.length comm_mb <> nt then
    invalid_arg
      (Printf.sprintf "Place.Model.make: comm_mb has %d rows, expected %d (one per task)"
         (Array.length comm_mb) nt);
  Array.iteri
    (fun i row ->
      if Array.length row <> nt then
        invalid_arg
          (Printf.sprintf "Place.Model.make: comm_mb row %d has %d entries, expected %d" i
             (Array.length row) nt);
      if comm_mb.(i).(i) <> 0. then
        invalid_arg (Printf.sprintf "Place.Model.make: comm_mb has a nonzero diagonal at %d" i);
      Array.iteri
        (fun j v ->
          if not (Float.is_finite v) || v < 0. then
            invalid_arg
              (Printf.sprintf "Place.Model.make: comm_mb (%d,%d) must be finite and non-negative"
                 i j);
          if v <> comm_mb.(j).(i) then
            invalid_arg (Printf.sprintf "Place.Model.make: comm_mb is not symmetric at (%d,%d)" i j))
        row)
    comm_mb

(* the two necessary conditions checkable without solving a bin
   packing: every class alone must fit the roomiest group, and the
   total must fit the machine. Messages follow the
   Fitting.recommended_sizes convention: one precise sentence per case,
   naming the offending value. *)
let check_memory ~groups ~names ~mem_gb ~mem_per_node_gb =
  let cap g = float_of_int (Array.length groups.(g)) *. mem_per_node_gb in
  let biggest = ref 0 in
  Array.iteri (fun g _ -> if cap g > cap !biggest then biggest := g) groups;
  Array.iteri
    (fun t m ->
      if m > cap !biggest then
        invalid_arg
          (Printf.sprintf
             "Place.Model.make: class %S needs %.3f GB but group %d (%d nodes at %.3f GB/node) \
              holds only %.3f GB"
             names.(t) m !biggest
             (Array.length groups.(!biggest))
             mem_per_node_gb (cap !biggest)))
    mem_gb;
  let total = Array.fold_left ( +. ) 0. mem_gb in
  let capacity = Array.fold_left (fun acc ids -> acc +. (float_of_int (Array.length ids) *. mem_per_node_gb)) 0. groups in
  if total > capacity then
    invalid_arg
      (Printf.sprintf
         "Place.Model.make: classes need %.3f GB in total but the %d groups hold only %.3f GB"
         total (Array.length groups) capacity)

let make ~topology ~groups ~names ~duration_s ~mem_gb ~mem_per_node_gb ~comm_mb
    ~hop_cost_s_per_mb () =
  check_shapes ~topology ~groups ~names ~duration_s ~mem_gb ~mem_per_node_gb ~comm_mb
    ~hop_cost_s_per_mb;
  check_memory ~groups ~names ~mem_gb ~mem_per_node_gb;
  {
    topology;
    groups = Array.map Array.copy groups;
    names = Array.copy names;
    duration_s = Array.map Array.copy duration_s;
    mem_gb = Array.copy mem_gb;
    mem_per_node_gb;
    comm_mb = Array.map Array.copy comm_mb;
    hop_cost_s_per_mb;
  }

(* ---------- evaluation ---------- *)

let hop_matrix inst =
  let ng = num_groups inst in
  let h = Array.make_matrix ng ng 0 in
  for g = 0 to ng - 1 do
    for g' = g + 1 to ng - 1 do
      let d = ref max_int in
      Array.iter
        (fun a ->
          Array.iter
            (fun b -> d := Stdlib.min !d (Topology.distance inst.topology a b))
            inst.groups.(g'))
        inst.groups.(g);
      h.(g).(g') <- !d;
      h.(g').(g) <- !d
    done
  done;
  h

let check_assignment inst assignment =
  let nt = num_tasks inst and ng = num_groups inst in
  if Array.length assignment <> nt then
    invalid_arg
      (Printf.sprintf "Place.Model.eval: assignment has %d entries, expected %d (one per task)"
         (Array.length assignment) nt);
  Array.iteri
    (fun t g ->
      if g < 0 || g >= ng then
        invalid_arg
          (Printf.sprintf "Place.Model.eval: task %S assigned to group %d, outside 0..%d"
             inst.names.(t) g (ng - 1)))
    assignment

type eval = { makespan_s : float; comm_cost_s : float; total_s : float }

let eval_with ~hop inst assignment =
  let nt = num_tasks inst and ng = num_groups inst in
  let load = Array.make ng 0. in
  for t = 0 to nt - 1 do
    let g = assignment.(t) in
    load.(g) <- load.(g) +. inst.duration_s.(t).(g)
  done;
  let makespan_s = Array.fold_left Float.max 0. load in
  let comm = ref 0. in
  for i = 0 to nt - 1 do
    for j = i + 1 to nt - 1 do
      let v = inst.comm_mb.(i).(j) in
      if v > 0. then
        comm :=
          !comm
          +. (v
             *. float_of_int hop.(assignment.(i)).(assignment.(j))
             *. inst.hop_cost_s_per_mb)
    done
  done;
  { makespan_s; comm_cost_s = !comm; total_s = makespan_s +. !comm }

let eval inst assignment =
  check_assignment inst assignment;
  eval_with ~hop:(hop_matrix inst) inst assignment

let feasible_memory inst assignment =
  check_assignment inst assignment;
  let used = Array.make (num_groups inst) 0. in
  Array.iteri (fun t g -> used.(g) <- used.(g) +. inst.mem_gb.(t)) assignment;
  let ok = ref true in
  Array.iteri (fun g u -> if u > capacity_gb inst g +. 1e-9 then ok := false) used;
  !ok

(* ---------- fingerprint ----------
   Same construction discipline as Alloc_model.fingerprint: a version
   tag, every dimension, length-prefixed names, and %.17g floats so
   distinct instances cannot collide. The topology shape and the group
   carve are part of the key — two instances differing only in where
   their nodes sit must never share a cached answer. *)

let fingerprint ?(base = "") inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "place-v1|";
  Buffer.add_string buf (Printf.sprintf "%d:%s|" (String.length base) base);
  let (t : Topology.t) = inst.topology in
  Buffer.add_string buf (Printf.sprintf "%dx%dx%d|" t.Topology.dim_x t.Topology.dim_y t.Topology.dim_z);
  Array.iter
    (fun ids ->
      Buffer.add_char buf 'g';
      Array.iter (fun id -> Buffer.add_string buf (Printf.sprintf "%d," id)) ids;
      Buffer.add_char buf ';')
    inst.groups;
  Array.iteri
    (fun t name ->
      Buffer.add_string buf (Printf.sprintf "|%d:%s," (String.length name) name);
      Buffer.add_string buf (Printf.sprintf "%.17g," inst.mem_gb.(t));
      Array.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%.17g," d)) inst.duration_s.(t))
    inst.names;
  Buffer.add_string buf (Printf.sprintf "|m%.17g|h%.17g|c" inst.mem_per_node_gb inst.hop_cost_s_per_mb);
  let nt = num_tasks inst in
  for i = 0 to nt - 1 do
    for j = i + 1 to nt - 1 do
      Buffer.add_string buf (Printf.sprintf "%.17g," inst.comm_mb.(i).(j))
    done
  done;
  Buffer.contents buf

(* ---------- the exact path: placement MILP ----------

   min  T + sum c_ijgh * w_ijgh
   s.t. sum_g x_tg = 1                      (every task lands somewhere)
        sum_t dur_tg x_tg <= T              (epigraph makespan per group)
        sum_t mem_t x_tg <= cap_g           (memory knapsack per group)
        w_ijgh >= x_ig + x_jh - 1           (comm pricing, both orientations
        w_ijgh >= x_ih + x_jg - 1            of the unordered group pair)

   with x binary and w continuous in [0,1]. The w rows are the standard
   exact linearization of the product x_ig*x_jh under a minimization
   with non-negative prices: at any integral x the cheapest feasible w
   is exactly the product, so the MILP optimum is the true QAP-style
   optimum and Bnb/Oa certificates transfer unchanged. *)

let build_milp inst =
  let nt = num_tasks inst and ng = num_groups inst in
  let hop = hop_matrix inst in
  let b = Minlp.Problem.Builder.create () in
  let t_var = Minlp.Problem.Builder.add_var b ~name:"T" ~lo:0. ~hi:1e12 Minlp.Problem.Continuous in
  let x = Array.make_matrix nt ng 0 in
  for t = 0 to nt - 1 do
    for g = 0 to ng - 1 do
      x.(t).(g) <-
        Minlp.Problem.Builder.add_var b ~name:(Printf.sprintf "x_%d_%d" t g) Minlp.Problem.Binary
    done
  done;
  (* one w per comm pair per unordered group pair with a nonzero price *)
  let w = ref [] in
  for i = 0 to nt - 1 do
    for j = i + 1 to nt - 1 do
      if inst.comm_mb.(i).(j) > 0. then
        for g = 0 to ng - 1 do
          for h = g + 1 to ng - 1 do
            let price =
              inst.comm_mb.(i).(j) *. float_of_int hop.(g).(h) *. inst.hop_cost_s_per_mb
            in
            if price > 0. then begin
              let v =
                Minlp.Problem.Builder.add_var b
                  ~name:(Printf.sprintf "w_%d_%d_%d_%d" i j g h)
                  ~lo:0. ~hi:1. Minlp.Problem.Continuous
              in
              w := (i, j, g, h, v, price) :: !w
            end
          done
        done
    done
  done;
  let w = List.rev !w in
  Minlp.Problem.Builder.set_objective b
    (Minlp.Expr.add
       (Minlp.Expr.var t_var
       :: List.map (fun (_, _, _, _, v, price) -> Minlp.Expr.scale price (Minlp.Expr.var v)) w));
  for t = 0 to nt - 1 do
    Minlp.Problem.Builder.add_constr b
      ~name:(Printf.sprintf "assign_%d" t)
      (Minlp.Expr.linear (List.init ng (fun g -> (x.(t).(g), 1.))))
      Lp.Lp_problem.Eq 1.
  done;
  for g = 0 to ng - 1 do
    Minlp.Problem.Builder.add_constr b
      ~name:(Printf.sprintf "load_%d" g)
      (Minlp.Expr.add
         (Minlp.Expr.neg (Minlp.Expr.var t_var)
         :: List.init nt (fun t ->
                Minlp.Expr.scale inst.duration_s.(t).(g) (Minlp.Expr.var x.(t).(g)))))
      Lp.Lp_problem.Le 0.;
    Minlp.Problem.Builder.add_constr b
      ~name:(Printf.sprintf "mem_%d" g)
      (Minlp.Expr.linear (List.init nt (fun t -> (x.(t).(g), inst.mem_gb.(t)))))
      Lp.Lp_problem.Le (capacity_gb inst g)
  done;
  List.iter
    (fun (i, j, g, h, v, _) ->
      Minlp.Problem.Builder.add_constr b
        ~name:(Printf.sprintf "comm_%d_%d_%d_%d" i j g h)
        (Minlp.Expr.linear [ (x.(i).(g), 1.); (x.(j).(h), 1.); (v, -1.) ])
        Lp.Lp_problem.Le 1.;
      Minlp.Problem.Builder.add_constr b
        ~name:(Printf.sprintf "comm_%d_%d_%d_%d'" i j g h)
        (Minlp.Expr.linear [ (x.(i).(h), 1.); (x.(j).(g), 1.); (v, -1.) ])
        Lp.Lp_problem.Le 1.)
    w;
  let problem = Minlp.Problem.Builder.build b in
  let n_vars = 1 + (nt * ng) + List.length w in
  let lift assignment =
    check_assignment inst assignment;
    let point = Array.make n_vars 0. in
    Array.iteri (fun t g -> point.(x.(t).(g)) <- 1.) assignment;
    let load = Array.make ng 0. in
    Array.iteri (fun t g -> load.(g) <- load.(g) +. inst.duration_s.(t).(g)) assignment;
    point.(t_var) <- Array.fold_left Float.max 0. load;
    List.iter
      (fun (i, j, g, h, v, _) ->
        if
          (assignment.(i) = g && assignment.(j) = h)
          || (assignment.(i) = h && assignment.(j) = g)
        then point.(v) <- 1.)
      w;
    point
  in
  (problem, lift)

(* ---------- the unified solve path ---------- *)

type solved = {
  assignment : int array;
  evaluation : eval;
  status : Minlp.Solution.status;
  stats : Minlp.Solution.stats;
  certificate : Engine.Certificate.t option;
}

(* same gap discipline as Alloc_model: 1e-4 relative is far below
   benchmark noise, tighter makes the tree crawl *)
let run_solver solver ?budget ?tally ?warm problem =
  match solver with
  | Engine.Solver_choice.Oa ->
    Minlp.Oa.run
      ~options:{ Minlp.Oa.default_options with rel_gap = 1e-4 }
      ?budget ?tally ?warm_start:warm problem
  | Engine.Solver_choice.Bnb ->
    Minlp.Bnb.run
      ~options:{ Minlp.Bnb.default_options with rel_gap = 1e-4 }
      ?budget ?tally ?warm_start:warm problem
  | Engine.Solver_choice.Oa_multi ->
    (Minlp.Oa_multi.run
       ~options:{ Minlp.Oa_multi.default_options with rel_gap = 1e-4 }
       ?budget ?tally problem)
      .Minlp.Oa_multi.solution

let solve_minlp ?(solver = Engine.Solver_choice.Oa) ?budget ?cancel ?warm_start ?trace inst =
  let budget = Engine.Solver_intf.join_budget ?budget ?cancel () in
  let problem, lift = build_milp inst in
  let warm = Option.map lift warm_start in
  let sol = run_solver solver ?budget ?tally:trace ?warm problem in
  match sol.Minlp.Solution.status with
  | (Minlp.Solution.Optimal | Minlp.Solution.Feasible _ | Minlp.Solution.Budget_exhausted _)
    when Array.length sol.Minlp.Solution.x > 0 ->
    let nt = num_tasks inst and ng = num_groups inst in
    let assignment = Array.make nt 0 in
    for t = 0 to nt - 1 do
      let best = ref 0 in
      for g = 1 to ng - 1 do
        (* x variables start at index 1, row-major by task *)
        if sol.Minlp.Solution.x.(1 + (t * ng) + g) > sol.Minlp.Solution.x.(1 + (t * ng) + !best)
        then best := g
      done;
      assignment.(t) <- !best
    done;
    let cert =
      Minlp.Solution.certify
        ~producer:("place." ^ Engine.Solver_choice.to_string solver)
        ?budget ~minimize:true ~tol:1e-4 sol
    in
    Ok
      {
        assignment;
        evaluation = eval inst assignment;
        status = sol.Minlp.Solution.status;
        stats = sol.Minlp.Solution.stats;
        certificate = Some cert;
      }
  | st -> Error st
