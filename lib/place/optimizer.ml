exception No_feasible of string

(* lexicographic search objective: wire cost strictly first, makespan
   as the tie-breaker, with a whisker of tolerance so float noise never
   counts as an improvement *)
let better (c1, m1) (c2, m2) = c1 < c2 -. 1e-12 || (c1 <= c2 +. 1e-12 && m1 < m2 -. 1e-12)

let mem_used inst assignment =
  let used = Array.make (Model.num_groups inst) 0. in
  Array.iteri (fun t g -> used.(g) <- used.(g) +. inst.Model.mem_gb.(t)) assignment;
  used

let fits inst used g extra = used.(g) +. extra <= Model.capacity_gb inst g +. 1e-9

(* LPT with memory awareness: the assignment a compute-only balancer
   would produce. Durations drive the order and the greedy choice; the
   comm matrix is never consulted. *)
let comm_blind inst =
  let nt = Model.num_tasks inst and ng = Model.num_groups inst in
  let order = Array.init nt Fun.id in
  let weight t = Array.fold_left Float.max 0. inst.Model.duration_s.(t) in
  Array.sort (fun a b -> compare (weight b) (weight a)) order;
  let attempt order_key =
    let order = Array.copy order in
    Array.sort (fun a b -> compare (order_key b) (order_key a)) order;
    let load = Array.make ng 0. and used = Array.make ng 0. in
    let assignment = Array.make nt (-1) in
    let ok = ref true in
    Array.iter
      (fun t ->
        let best = ref (-1) and best_f = ref infinity in
        for g = 0 to ng - 1 do
          let f = load.(g) +. inst.Model.duration_s.(t).(g) in
          if fits inst used g inst.Model.mem_gb.(t) && f < !best_f then begin
            best_f := f;
            best := g
          end
        done;
        match !best with
        | -1 -> ok := false
        | g ->
          load.(g) <- !best_f;
          used.(g) <- used.(g) +. inst.Model.mem_gb.(t);
          assignment.(t) <- g)
      order;
    if !ok then Some assignment else None
  in
  match attempt weight with
  | Some a -> a
  | None -> (
    (* the load-greedy order wedged on memory: repack first-fit
       decreasing by working set, the classic bin-packing order *)
    match attempt (fun t -> inst.Model.mem_gb.(t)) with
    | Some a -> a
    | None ->
      raise
        (No_feasible
           (Printf.sprintf "Place.Optimizer: no memory-feasible assignment found for %d tasks on %d groups"
              nt ng)))

(* greedy compact seed: tasks in decreasing total-comm order, each
   landing where its hop-priced cost against the already-placed tasks
   is lowest, under the memory and makespan caps *)
let greedy_seed ~hop ~cap inst =
  let nt = Model.num_tasks inst and ng = Model.num_groups inst in
  let order = Array.init nt Fun.id in
  let total_comm t = Array.fold_left ( +. ) 0. inst.Model.comm_mb.(t) in
  Array.sort (fun a b -> compare (total_comm b) (total_comm a)) order;
  let load = Array.make ng 0. and used = Array.make ng 0. in
  let assignment = Array.make nt (-1) in
  let ok = ref true in
  Array.iter
    (fun t ->
      let best = ref (-1) and best_cost = ref infinity in
      for g = 0 to ng - 1 do
        if
          fits inst used g inst.Model.mem_gb.(t)
          && load.(g) +. inst.Model.duration_s.(t).(g) <= cap
        then begin
          let comm = ref 0. in
          Array.iteri
            (fun u gu ->
              if gu >= 0 && u <> t then
                comm :=
                  !comm
                  +. (inst.Model.comm_mb.(t).(u)
                     *. float_of_int hop.(g).(gu)
                     *. inst.Model.hop_cost_s_per_mb))
            assignment;
          (* the load term only tie-breaks: wire cost dominates *)
          let cost = !comm +. (1e-9 *. (load.(g) +. inst.Model.duration_s.(t).(g))) in
          if cost < !best_cost then begin
            best_cost := cost;
            best := g
          end
        end
      done;
      match !best with
      | -1 -> ok := false
      | g ->
        load.(g) <- load.(g) +. inst.Model.duration_s.(t).(g);
        used.(g) <- used.(g) +. inst.Model.mem_gb.(t);
        assignment.(t) <- g)
    order;
  if !ok then Some assignment else None

(* first-improvement local search over single-task moves and pairwise
   swaps, under the memory knapsacks and the makespan cap *)
let local_search ~trace ~hop ~cap ~max_rounds inst assignment =
  let nt = Model.num_tasks inst and ng = Model.num_groups inst in
  let a = Array.copy assignment in
  let used = mem_used inst a in
  let score x =
    let e = Model.eval_with ~hop inst x in
    (e.Model.comm_cost_s, e.Model.makespan_s)
  in
  let current = ref (score a) in
  let mem_ok () =
    let ok = ref true in
    Array.iteri (fun g u -> if u > Model.capacity_gb inst g +. 1e-9 then ok := false) used;
    !ok
  in
  let try_candidate mutate restore =
    mutate ();
    let sc = score a in
    let _, mk = sc in
    let feasible = mk <= cap && mem_ok () in
    if feasible && better sc !current then begin
      current := sc;
      Engine.Telemetry.bump trace Engine.Telemetry.add_incumbent_updates 1;
      true
    end
    else begin
      restore ();
      false
    end
  in
  let improved = ref true and rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    (* single-task moves *)
    for t = 0 to nt - 1 do
      for g = 0 to ng - 1 do
        if g <> a.(t) then begin
          let from = a.(t) in
          let moved =
            try_candidate
              (fun () ->
                a.(t) <- g;
                used.(from) <- used.(from) -. inst.Model.mem_gb.(t);
                used.(g) <- used.(g) +. inst.Model.mem_gb.(t))
              (fun () ->
                a.(t) <- from;
                used.(from) <- used.(from) +. inst.Model.mem_gb.(t);
                used.(g) <- used.(g) -. inst.Model.mem_gb.(t))
          in
          if moved then improved := true
        end
      done
    done;
    (* pairwise swaps *)
    for t = 0 to nt - 1 do
      for u = t + 1 to nt - 1 do
        if a.(t) <> a.(u) then begin
          let gt = a.(t) and gu = a.(u) in
          let dm = inst.Model.mem_gb.(t) -. inst.Model.mem_gb.(u) in
          let swapped =
            try_candidate
              (fun () ->
                a.(t) <- gu;
                a.(u) <- gt;
                used.(gt) <- used.(gt) -. dm;
                used.(gu) <- used.(gu) +. dm)
              (fun () ->
                a.(t) <- gt;
                a.(u) <- gu;
                used.(gt) <- used.(gt) +. dm;
                used.(gu) <- used.(gu) -. dm)
          in
          if swapped then improved := true
        end
      done
    done
  done;
  a

let optimize ?trace ?(makespan_slack = 0.05) ?(max_rounds = 64) inst =
  if makespan_slack < 0. then
    invalid_arg
      (Printf.sprintf "Place.Optimizer.optimize: makespan_slack must be non-negative, got %g"
         makespan_slack);
  Engine.Telemetry.time trace "place.local_search" (fun () ->
      let hop = Model.hop_matrix inst in
      let blind = comm_blind inst in
      let blind_eval = Model.eval_with ~hop inst blind in
      let cap = (1. +. makespan_slack) *. blind_eval.Model.makespan_s in
      let refined_blind = local_search ~trace ~hop ~cap ~max_rounds inst blind in
      let candidates =
        match greedy_seed ~hop ~cap inst with
        | Some seed -> [ local_search ~trace ~hop ~cap ~max_rounds inst seed; refined_blind ]
        | None -> [ refined_blind ]
      in
      let key x =
        let e = Model.eval_with ~hop inst x in
        (e.Model.comm_cost_s, e.Model.makespan_s)
      in
      List.fold_left
        (fun best c -> if better (key c) (key best) then c else best)
        (List.hd candidates) (List.tl candidates))
