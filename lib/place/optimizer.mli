(** The fast placement heuristics.

    {!comm_blind} is the baseline a compute-only balancer produces:
    longest-processing-time list scheduling with memory-aware fitting,
    never looking at the comm matrix. {!optimize} is the comm-aware
    path: a greedy compact seed (tasks in decreasing total-comm order,
    each landing where its marginal hop-priced cost is lowest) plus
    pairwise-swap/move local search. The search minimizes communication
    cost lexicographically before makespan under two hard constraints —
    every group's memory knapsack, and makespan within [makespan_slack]
    (default 5%) of the comm-blind baseline — so the result never
    trades more than the allowed makespan for wire locality. Starting
    points include the comm-blind assignment itself, so the returned
    communication cost is never worse than the baseline's. *)

(** Raised when no memory-feasible assignment is found (the heuristic's
    first-fit-decreasing packing is incomplete; {!Model.make} has
    already guaranteed the necessary conditions hold). *)
exception No_feasible of string

(** [comm_blind inst] — LPT by duration onto the least-loaded group
    that still has the memory headroom; falls back to
    first-fit-decreasing by memory when the load-greedy order wedges.
    @raise No_feasible when even FFD cannot pack the tasks. *)
val comm_blind : Model.instance -> int array

(** [optimize ?trace ?makespan_slack ?max_rounds inst] — the comm-aware
    heuristic described above. [trace] accumulates the search time
    under the ["place.local_search"] phase and incumbent-update
    counters. @raise No_feasible when no memory-feasible start exists. *)
val optimize :
  ?trace:Engine.Telemetry.t ->
  ?makespan_slack:float ->
  ?max_rounds:int ->
  Model.instance ->
  int array
