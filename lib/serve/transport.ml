(* The transport interface the serve core is written against. A
   transport owns connections; the core owns request semantics. The
   two meet at exactly two points: [handler.submit] (a raw line plus
   the reply sink of the connection it arrived on) and [conn]
   (read-line/write-line/close). Everything else — admission, dedupe,
   deadlines, drain — lives behind the handler and never learns what
   fd, pipe or buffer the bytes crossed. *)

type conn = {
  peer : string;  (* human-readable endpoint, for logs and hooks *)
  read_line : unit -> string option;
      (* Blocking. [Some line] is the next complete frame (no
         terminator). [None] is final: the peer closed, or the
         transport's stop condition fired. Implementations must poll
         their stop condition while blocked so a drain unwedges every
         reader. *)
  write_line : string -> unit;
      (* One frame out (terminator added by the transport). Must be a
         no-op — never an exception — once the peer is gone: replies
         can race a disconnecting client. *)
  close : unit -> unit;  (* idempotent *)
}

module type S = sig
  type t

  val name : t -> string

  (* Block until the next connection, or [None] once the listener is
     shut down or its stop condition fired. [None] is final. *)
  val accept : t -> conn option

  (* Stop producing connections and unblock a blocked [accept].
     Idempotent. Existing connections are not touched — the drain
     machinery finishes them. *)
  val shutdown : t -> unit
end

type listener = Listener : (module S with type t = 'a) * 'a -> listener

let listener_name (Listener ((module T), l)) = T.name l
let accept (Listener ((module T), l)) = T.accept l
let shutdown (Listener ((module T), l)) = T.shutdown l

(* ---------- the service side ---------- *)

(* what a transport pumps lines into: the server core ({!Server}) and
   the fleet router ({!Router}) both provide one *)
type handler = {
  submit : reply:(string -> unit) -> string -> unit;
  draining : unit -> bool;
}

(* lifecycle hooks, fired from the accept loop ([on_connect]) and the
   connection's own domain ([on_disconnect]) *)
type hooks = { on_connect : conn -> unit; on_disconnect : conn -> unit }

let no_hooks = { on_connect = (fun _ -> ()); on_disconnect = (fun _ -> ()) }

(* serve one connection to completion on the calling domain *)
let serve_conn handler conn =
  let rec loop () =
    match conn.read_line () with
    | None -> ()
    | Some line ->
      if String.trim line <> "" then handler.submit ~reply:conn.write_line line;
      loop ()
  in
  Fun.protect ~finally:conn.close loop

(* Accept loop: one domain per connection, joined before returning so
   a completed drive leaves no orphaned readers. Returns when [accept]
   answers [None] — the transport was shut down (the runner does that
   once the handler starts draining) or ran out of connections. *)
let drive ?(hooks = no_hooks) listener handler =
  let readers = ref [] in
  let rec accept_loop () =
    match accept listener with
    | None -> ()
    | Some conn ->
      hooks.on_connect conn;
      let d =
        Domain.spawn (fun () ->
            serve_conn handler conn;
            hooks.on_disconnect conn)
      in
      readers := d :: !readers;
      accept_loop ()
  in
  accept_loop ();
  List.iter Domain.join !readers
