(** The protocol's JSON codec, re-exported from {!Obs.Json} (it moved
    there so the observability exporters below [serve] in the
    dependency graph can share it). [Serve.Json.t] remains equal to
    [Obs.Json.t]; see {!Obs.Json} for the format contract. *)

type t = Obs.Json.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val to_string : t -> string
val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val int_ : t -> int option
val bool_ : t -> bool option
val arr : t -> t list option
val type_name : t -> string
