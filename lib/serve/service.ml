(* The lifecycle runner shared by every serving process. [Server.t]
   (one solve backend) and [Router.t] (a fleet front-end) both reduce
   to a [core]; [run] wraps one core with the machinery every
   deployment shape needs — SIGTERM → drain, the periodic Prometheus
   flusher, the final run report and the terminal drained event — and
   pumps requests through whatever transport [make_listener] builds. *)

type core = {
  handler : Transport.handler;
  initiate_drain : unit -> unit;
  draining : unit -> bool;
  await_drain : unit -> Engine.Run_report.t;
  stats_json : unit -> string;
  metrics : unit -> (string * Obs.Metrics.metric) list;
}

let core_of_server s =
  {
    handler =
      {
        Transport.submit = (fun ~reply line -> Server.submit ~reply s line);
        draining = (fun () -> Server.draining s);
      };
    initiate_drain = (fun () -> Server.initiate_drain s);
    draining = (fun () -> Server.draining s);
    await_drain = (fun () -> Server.await_drain s);
    stats_json = (fun () -> Server.stats_json s);
    metrics = (fun () -> Server.metrics s);
  }

let stdout_events line =
  print_string line;
  print_newline ();
  flush stdout

let run ?report_path ?metrics_out ?(metrics_interval_s = 1.0) ?events
    ?(eof_drains = false) core ~make_listener =
  if metrics_interval_s <= 0. then
    invalid_arg "Service.run: metrics_interval_s must be > 0";
  let events = Option.value events ~default:stdout_events in
  (* periodic Prometheus flush: write-then-rename so scrapers never see
     a half-written exposition *)
  let flush_metrics path =
    let tmp = path ^ ".tmp" in
    try
      Obs.Export.write_prometheus tmp (core.metrics ());
      Sys.rename tmp path
    with Sys_error _ -> ()
  in
  let metrics_stop = Atomic.make false in
  let flusher =
    Option.map
      (fun path ->
        Domain.spawn (fun () ->
            let rec loop () =
              if Atomic.get metrics_stop then ()
              else begin
                (* nap in small steps so shutdown is prompt even with a
                   long flush interval *)
                let slept = ref 0. in
                while !slept < metrics_interval_s && not (Atomic.get metrics_stop) do
                  let step = Float.min 0.02 (metrics_interval_s -. !slept) in
                  Unix.sleepf step;
                  slept := !slept +. step
                done;
                flush_metrics path;
                loop ()
              end
            in
            loop ()))
      metrics_out
  in
  let sigterm = Atomic.make false in
  let previous =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set sigterm true))
  in
  (* the handler only sets a flag: [initiate_drain] takes mutexes, so
     it must never run inside a signal handler. Transports poll [stop],
     notice the flag, unwind, and the drain proper happens below. *)
  let stop () = Atomic.get sigterm || core.draining () in
  let listener = make_listener ~stop in
  let hooks =
    if eof_drains then
      { Transport.no_hooks with on_disconnect = (fun _ -> core.initiate_drain ()) }
    else Transport.no_hooks
  in
  Transport.drive ~hooks listener core.handler;
  Transport.shutdown listener;
  core.initiate_drain ();
  let report = core.await_drain () in
  Atomic.set metrics_stop true;
  Option.iter Domain.join flusher;
  (* final flush covers everything served, including the tail between
     the last periodic write and the drain *)
  Option.iter flush_metrics metrics_out;
  (match report_path with
  | Some path -> Engine.Run_report.write_json path report
  | None -> ());
  events
    (Printf.sprintf "{\"event\":\"drained\",\"stats\":%s,\"report\":%s}"
       (core.stats_json ())
       (Engine.Run_report.to_json report));
  Sys.set_signal Sys.sigterm previous;
  report
