(** Consistent-hash ring over backend names — how the router shards
    solve requests by {!Hslb.Alloc_model.fingerprint}.

    Each backend contributes [vnodes] points on an unsigned 64-bit
    circle (MD5-derived); a key belongs to the owner of the first
    point clockwise of its hash. The structure is immutable: {!add}
    and {!remove} return new rings, so lookups need no lock, and a
    membership change remaps only ~1/N of the key space (the slices
    whose nearest point belonged to the changed backend) — the cache
    and dedupe locality of every other shard survives. *)

type t

(** [make ?vnodes names] — duplicates dropped, order preserved.
    [vnodes] (default 64) trades balance for ring size.
    @raise Invalid_argument if [vnodes < 1]. *)
val make : ?vnodes:int -> string list -> t

val backends : t -> string list
val is_empty : t -> bool

(** [shard t key] — the owning backend; deterministic: equal keys on
    equal rings always answer the same name, whatever the insertion
    order was. @raise Invalid_argument on an empty ring. *)
val shard : t -> string -> string

val add : t -> string -> t
val remove : t -> string -> t
