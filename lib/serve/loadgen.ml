(* Trace replay against a serving endpoint — the measurement half of
   the fleet work. A deterministic trace (seeded LCG; no wall-clock or
   global RNG state) cycles [distinct] solve instances with optional
   sleep, tiny-deadline (expiry-provoking) and burst elements; [run]
   replays it over a socket or straight into an in-process handler,
   tracking per-request latency and outcome; [fleet_bench] replays the
   same trace against a 1-backend and an N-backend fleet and reports
   the throughput ratio. On a single core the fleet's edge is cache
   locality, not parallelism: [distinct] keys cycled through one
   backend whose LRU holds fewer than [distinct] entries thrash (the
   LRU evicts each key just before it comes round again), while the
   same keys sharded across N backends fit each shard's cache and
   stay hot. *)

type trace_spec = {
  requests : int;
  distinct : int;  (* distinct solve instances, cycled *)
  classes : int;  (* fragment classes per instance *)
  nodes : int;  (* total node budget per instance *)
  sleep_every : int;  (* every k-th request is a sleep; 0 = never *)
  sleep_ms : float;
  expire_every : int;  (* every k-th solve carries a tiny deadline; 0 = never *)
  tiny_deadline_ms : float;
  deadline_ms : float option;  (* deadline on ordinary solves *)
  seed : int;
}

let default_spec () =
  {
    requests = 200;
    distinct = 48;
    classes = 3;
    nodes = 16;
    sleep_every = 0;
    sleep_ms = 5.;
    expire_every = 0;
    tiny_deadline_ms = 0.01;
    deadline_ms = None;
    seed = 1;
  }

(* deterministic, cheap; quality is irrelevant — only spread is *)
let lcg state =
  let s = Int64.add (Int64.mul 6364136223846793005L !state) 1442695040888963407L in
  state := s;
  Int64.to_int (Int64.shift_right_logical s 33)

let instance_csv spec k =
  let state = ref (Int64.of_int ((spec.seed * 1_000_003) + k)) in
  String.concat "\n"
    (List.init spec.classes (fun c ->
         let count = 1 + (lcg state mod 4) in
         let a = float_of_int (50 + (lcg state mod 100)) in
         let b = 0.001 +. (float_of_int (lcg state mod 100) /. 10_000.) in
         let c_ = 1. +. (float_of_int (lcg state mod 30) /. 10.) in
         let d = float_of_int (lcg state mod 10) /. 10. in
         Printf.sprintf "class%d-%d,%d,%g,%g,%g,%g" k c count a b c_ d))

(* the request lines, ids left to [run] *)
let make_trace spec =
  if spec.requests < 1 then invalid_arg "Loadgen.make_trace: requests must be >= 1";
  if spec.distinct < 1 then invalid_arg "Loadgen.make_trace: distinct must be >= 1";
  let csvs = Array.init spec.distinct (instance_csv spec) in
  List.init spec.requests (fun i ->
      if spec.sleep_every > 0 && i mod spec.sleep_every = spec.sleep_every - 1 then
        Json.Obj [ ("op", Json.Str "sleep"); ("ms", Json.Num spec.sleep_ms) ]
      else begin
        let k = i mod spec.distinct in
        let deadline =
          if spec.expire_every > 0 && i mod spec.expire_every = spec.expire_every - 1
          then Some spec.tiny_deadline_ms
          else spec.deadline_ms
        in
        Json.Obj
          ([
             ("op", Json.Str "solve");
             ("model_csv", Json.Str csvs.(k));
             ("nodes", Json.Num (float_of_int spec.nodes));
           ]
          @ match deadline with Some d -> [ ("deadline_ms", Json.Num d) ] | None -> []
          )
      end)

(* ---------- arena scenario replay ---------- *)

(* a task cost becomes a solve instance by bucketing the cost to the
   nearest power of two: a scenario's hundreds of tasks then cycle a
   bounded set of distinct fingerprints, so server-side dedupe and the
   optimum cache see the same reuse pattern real traffic would *)
let scenario_instance_csv cost =
  let b = int_of_float (Float.round (Float.log2 (Float.max 1e-3 cost))) in
  let scale = Float.pow 2. (float_of_int b) in
  Printf.sprintf "frag-p%+03d,2,%g,0.001,1.2,0.2" b (50. *. scale)

let trace_of_scenario (sc : Arena.Scenario.t) =
  let nodes = sc.Arena.Scenario.groups * sc.Arena.Scenario.nodes_per_group in
  let policy = Arena.Scenario.class_to_string sc.Arena.Scenario.cls in
  List.concat_map
    (fun (p : Arena.Scenario.phase) ->
      let gap =
        if p.Arena.Scenario.gap_s > 0. then
          [
            Json.Obj
              [
                ("op", Json.Str "sleep");
                ("ms", Json.Num (p.Arena.Scenario.gap_s *. 1000.));
              ];
          ]
        else []
      in
      gap
      @ List.map
          (fun cost ->
            Json.Obj
              [
                ("op", Json.Str "solve");
                ("model_csv", Json.Str (scenario_instance_csv cost));
                ("nodes", Json.Num (float_of_int nodes));
                ("policy", Json.Str policy);
              ])
          (Array.to_list p.Arena.Scenario.costs))
    (Array.to_list sc.Arena.Scenario.phases)

(* ---------- replay ---------- *)

type endpoint =
  | Net of Transport_socket.addr
  | Inproc of (reply:(string -> unit) -> string -> unit)

type run_result = {
  label : string;
  requests : int;
  answered : int;
  wall_s : float;
  throughput_rps : float;
  outcomes : (string * int) list;  (* outcome -> count, sorted *)
  cache_hits : int;
  dedups : int;
  latency : Obs.Metrics.Histogram.summary;  (* ms, send to answer *)
  server_stats : Json.t;  (* final stats op answer, Null if unavailable *)
}

let with_endpoint endpoint f =
  match endpoint with
  | Inproc submit ->
    (* replies land synchronously-ish via the sink; no reader needed *)
    let send ~on_line line =
      submit ~reply:on_line line;
      true
    in
    f ~send ~finish:(fun () -> ())
  | Net addr ->
    let client = Transport_socket.Client.connect addr in
    let on_line_cell = ref (fun (_ : string) -> ()) in
    let stop = Atomic.make false in
    let reader =
      Domain.spawn (fun () ->
          let rec loop () =
            match Transport_socket.Client.recv client with
            | `Line l ->
              !on_line_cell l;
              loop ()
            | `Timeout -> if Atomic.get stop then () else loop ()
            | `Eof -> ()
          in
          loop ())
    in
    let send ~on_line line =
      on_line_cell := on_line;
      Transport_socket.Client.send client line
    in
    let finish () =
      Atomic.set stop true;
      Domain.join reader;
      Transport_socket.Client.close client
    in
    Fun.protect ~finally:finish (fun () -> f ~send ~finish:(fun () -> ()))

let run ?(label = "run") ?rate_rps ?(window = 16) ?(timeout_s = 120.)
    ?(drain_at_end = false) endpoint trace =
  let n = List.length trace in
  let send_t = Array.make (n + 2) 0. in
  let lat_h = Obs.Metrics.Histogram.create ~lo:1e-3 ~hi:1e7 "loadgen_latency_ms" in
  let lock = Mutex.create () in
  let outcomes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let cache_hits = ref 0 in
  let dedups = ref 0 in
  let n_done = Atomic.make 0 in
  let server_stats = ref Json.Null in
  let record line =
    match Json.parse line with
    | Error _ -> ()
    | Ok v -> (
      match Option.bind (Json.member "id" v) Json.int_ with
      | None -> ()  (* event line (e.g. drained) *)
      | Some i when i >= 0 && i < n ->
        (* only the trace itself is measured; the stats/drain probes
           ride after the window and must not skew the quantiles *)
        Obs.Metrics.Histogram.observe lat_h
          ((Unix.gettimeofday () -. send_t.(i)) *. 1000.);
        Mutex.lock lock;
        (match Json.member "outcome" v with
        | Some (Json.Str o) ->
          Hashtbl.replace outcomes o
            (1 + Option.value (Hashtbl.find_opt outcomes o) ~default:0)
        | Some _ | None -> ());
        (match Json.member "telemetry" v with
        | Some tele ->
          (match Json.member "cache_hit" tele with
          | Some (Json.Bool true) -> incr cache_hits
          | _ -> ());
          (match Json.member "dedup" tele with
          | Some (Json.Bool true) -> incr dedups
          | _ -> ())
        | None -> ());
        Mutex.unlock lock;
        Atomic.incr n_done
      | Some i when i = n ->
        Mutex.lock lock;
        server_stats := Option.value (Json.member "stats" v) ~default:Json.Null;
        Mutex.unlock lock;
        Atomic.incr n_done
      | Some i when i = n + 1 -> Atomic.incr n_done
      | Some _ -> ())
  in
  with_endpoint endpoint (fun ~send ~finish:_ ->
      let started = Unix.gettimeofday () in
      let interval = match rate_rps with Some r when r > 0. -> 1. /. r | _ -> 0. in
      let await_done target deadline =
        while Atomic.get n_done < target && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.0005
        done
      in
      List.iteri
        (fun i fields ->
          (* pace to the target rate, and cap the in-flight window *)
          let due = started +. (interval *. float_of_int i) in
          let rec hold () =
            let now = Unix.gettimeofday () in
            if now < due then Unix.sleepf (Float.min 0.001 (due -. now))
            else if i - Atomic.get n_done >= window then Unix.sleepf 0.0005
            else ();
            if Unix.gettimeofday () < due || i - Atomic.get n_done >= window then
              hold ()
          in
          hold ();
          let line =
            match fields with
            | Json.Obj fs -> Json.to_string (Json.Obj (("id", Json.Num (float_of_int i)) :: fs))
            | other -> Json.to_string other
          in
          send_t.(i) <- Unix.gettimeofday ();
          ignore (send ~on_line:record line : bool))
        trace;
      await_done n (started +. timeout_s);
      let wall = Unix.gettimeofday () -. started in
      let answered = Int.min (Atomic.get n_done) n in
      (* the measured window ends here; stats and drain ride after *)
      send_t.(n) <- Unix.gettimeofday ();
      ignore
        (send ~on_line:record
           (Json.to_string
              (Json.Obj [ ("id", Json.Num (float_of_int n)); ("op", Json.Str "stats") ]))
          : bool);
      await_done (n + 1) (Unix.gettimeofday () +. 10.);
      if drain_at_end then begin
        send_t.(n + 1) <- Unix.gettimeofday ();
        ignore
          (send ~on_line:record
             (Json.to_string
                (Json.Obj
                   [ ("id", Json.Num (float_of_int (n + 1))); ("op", Json.Str "drain") ]))
            : bool);
        await_done (n + 2) (Unix.gettimeofday () +. 15.)
      end;
      {
        label;
        requests = n;
        answered;
        wall_s = wall;
        throughput_rps = (if wall > 0. then float_of_int answered /. wall else 0.);
        outcomes =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcomes []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        cache_hits = !cache_hits;
        dedups = !dedups;
        latency = Obs.Metrics.Histogram.summary lat_h;
        server_stats = !server_stats;
      })

(* ---------- JSON ---------- *)

let num_or_null v = if Float.is_nan v then Json.Null else Json.Num v

let summary_json (s : Obs.Metrics.Histogram.summary) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.count));
      ("p50", num_or_null s.p50);
      ("p90", num_or_null s.p90);
      ("p99", num_or_null s.p99);
      ("max", num_or_null s.max);
    ]

let result_json r =
  Json.Obj
    [
      ("label", Json.Str r.label);
      ("requests", Json.Num (float_of_int r.requests));
      ("answered", Json.Num (float_of_int r.answered));
      ("wall_s", Json.Num r.wall_s);
      ("throughput_rps", Json.Num r.throughput_rps);
      ( "outcomes",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) r.outcomes)
      );
      ("cache_hits", Json.Num (float_of_int r.cache_hits));
      ("dedups", Json.Num (float_of_int r.dedups));
      ("latency_ms", summary_json r.latency);
      ("server_stats", r.server_stats);
    ]

let spec_json (s : trace_spec) =
  Json.Obj
    [
      ("requests", Json.Num (float_of_int s.requests));
      ("distinct", Json.Num (float_of_int s.distinct));
      ("classes", Json.Num (float_of_int s.classes));
      ("nodes", Json.Num (float_of_int s.nodes));
      ("sleep_every", Json.Num (float_of_int s.sleep_every));
      ("expire_every", Json.Num (float_of_int s.expire_every));
      ("seed", Json.Num (float_of_int s.seed));
    ]

(* ---------- the 1-vs-N fleet benchmark ---------- *)

type bench = {
  spec : trace_spec;
  backends : int;
  single : run_result;
  fleet : run_result;
  speedup : float;  (* fleet throughput over single-backend throughput *)
}

(* one run against an in-process router owning [count] spawned
   backends; the router↔backend hop is the real socket transport *)
let routed_run ~label ~prog ~backend_args ~dir ~count ?rate_rps ?window ?timeout_s trace =
  let subdir = Filename.concat dir label in
  (match Unix.mkdir subdir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let router =
    (* many ring points: with few distinct trace keys, a coarse ring's
       shard-size variance can push one shard past its cache capacity
       and mask the locality the benchmark exists to measure *)
    Router.create
      ~cfg:{ (Router.default_config ()) with Router.vnodes = 512 }
      ~events:(fun _ -> ())
      (Router.spawn_targets ~prog ~args:backend_args ~dir:subdir ~count)
  in
  Fun.protect
    ~finally:(fun () -> ignore (Router.await_drain router : Engine.Run_report.t))
    (fun () ->
      run ~label ?rate_rps ?window ?timeout_s
        (Inproc (fun ~reply line -> Router.submit router ~reply line))
        trace)

let fleet_bench ?(spec = default_spec ()) ?rate_rps ?window ?timeout_s ~prog
    ~backend_args ~dir ~backends () =
  if backends < 2 then invalid_arg "Loadgen.fleet_bench: backends must be >= 2";
  let trace = make_trace spec in
  let single =
    routed_run ~label:"single" ~prog ~backend_args ~dir ~count:1 ?rate_rps ?window
      ?timeout_s trace
  in
  let fleet =
    routed_run
      ~label:(Printf.sprintf "fleet-%d" backends)
      ~prog ~backend_args ~dir ~count:backends ?rate_rps ?window ?timeout_s trace
  in
  let speedup =
    if single.throughput_rps > 0. then fleet.throughput_rps /. single.throughput_rps
    else Float.nan
  in
  { spec; backends; single; fleet; speedup }

let bench_json b =
  Json.Obj
    [
      ("bench", Json.Str "fleet");
      ("backends", Json.Num (float_of_int b.backends));
      ("trace", spec_json b.spec);
      ("single", result_json b.single);
      ("fleet", result_json b.fleet);
      ("speedup", num_or_null b.speedup);
    ]

let write_bench path b =
  let oc = open_out path in
  output_string oc (Json.to_string (bench_json b));
  output_char oc '\n';
  close_out oc
