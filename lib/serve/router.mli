(** The fleet front-end behind [hslb route].

    One router owns N backend [hslb serve] processes and shards
    [solve] requests across them by {!Hslb.Alloc_model.fingerprint} on
    a consistent-hash {!Ring}: equal instances always reach the same
    backend, so each backend's in-flight dedupe table and
    proven-optimal LRU cache stay shard-local and hot. [ping], [stats]
    and [drain] fan out to every live backend and aggregate; [sleep]
    round-robins.

    Client ids are never forwarded — each forwarded request gets a
    fresh internal integer id, mapped back (with a ["backend"] field
    added to the envelope) when the answer returns. If a backend dies,
    its in-flight requests are answered [outcome "error"] and a
    router-spawned backend is re-spawned in place under the same name,
    leaving the ring — and every other shard's cache locality —
    untouched. Fleet drain reuses the serve drain design: admission
    stops, a [drain] fans out, every backend's ack (or death) is
    awaited, the client is acked, and only then does the router itself
    unwind. *)

type target =
  | Spawn of { name : string; prog : string; args : string list; sock : string }
      (** exec [prog args... --listen unix:sock]; supervised (respawn) *)
  | Attach of { name : string; addr : Transport_socket.addr }
      (** pre-started backend: connect only, no supervision (tests,
          externally-managed fleets); removed from the ring on death *)

(** [spawn_targets ~prog ~args ~dir ~count] — [backend-0..count-1]
    with sockets under [dir]. *)
val spawn_targets :
  prog:string -> args:string list -> dir:string -> count:int -> target list

type config = {
  vnodes : int;  (** ring points per backend *)
  drain_grace_s : float;
      (** {!await_drain}: how long owed answers may linger before
          being errored out *)
  spawn_timeout_s : float;  (** a spawned backend's socket must appear *)
  respawn_limit : int;  (** per backend; exceeded, it stays dead *)
}

(** vnodes 64, drain grace 5 s, spawn timeout 10 s, respawn limit 3. *)
val default_config : unit -> config

type t

(** Bring every backend up (spawn and/or connect), then start one
    reader domain per backend. [events] (default stdout) receives
    router event lines: [fleet_drain], [backend_death],
    [backend_respawn], [backend_respawn_failed].
    @raise Invalid_argument on empty or name-colliding targets.
    @raise Failure when a backend fails to come up (already-started
    backends are torn down first). *)
val create : ?cfg:config -> ?events:(string -> unit) -> target list -> t

(** Feed one raw client request line; answers arrive through [reply].
    See {!Server.submit} for the sink contract. *)
val submit : t -> reply:(string -> unit) -> string -> unit

val draining : t -> bool

(** Stop admission and fan a [drain] out to every backend. Idempotent. *)
val initiate_drain : t -> unit

(** Drain, wait for every owed answer (bounded by [drain_grace_s]),
    join the reader domains, reap the children. Final report: solver
    ["route"], status ["drained"], the forward round-trip histogram. *)
val await_drain : t -> Engine.Run_report.t

val stats_json : t -> string
val metrics : t -> (string * Obs.Metrics.metric) list

(** Reduce to a {!Service.core} — [hslb route] is [Service.run] over
    this, exactly as [hslb serve] is over {!Service.core_of_server}. *)
val core : t -> Service.core
