(* Consistent-hash ring over backend names, the router's sharding
   structure. Each backend contributes [vnodes] points on an unsigned
   64-bit circle (MD5 of "name#i"); a key routes to the owner of the
   first point clockwise of its own hash. Immutable — add/remove build
   a new ring — so [shard] is lock-free for concurrent readers, and
   membership changes move only the ~1/N of keys whose nearest point
   belonged to the changed backend. *)

type t = {
  vnodes : int;
  backends : string list;  (* unique, insertion order preserved *)
  points : (int64 * string) array;  (* sorted by unsigned point *)
}

let hash_key s =
  (* MD5's first 8 bytes, read as an unsigned 64-bit position *)
  String.get_int64_be (Digest.string s) 0

let ucmp = Int64.unsigned_compare

let build vnodes backends =
  let points =
    List.concat_map
      (fun b -> List.init vnodes (fun i -> (hash_key (Printf.sprintf "%s#%d" b i), b)))
      backends
    |> Array.of_list
  in
  (* ties broken by name so equal points are deterministic across
     insertion orders *)
  Array.sort
    (fun (h1, b1) (h2, b2) ->
      match ucmp h1 h2 with 0 -> String.compare b1 b2 | c -> c)
    points;
  { vnodes; backends; points }

let make ?(vnodes = 64) backends =
  if vnodes < 1 then invalid_arg "Ring.make: vnodes must be >= 1";
  let seen = Hashtbl.create 8 in
  let backends =
    List.filter
      (fun b ->
        if Hashtbl.mem seen b then false
        else begin
          Hashtbl.add seen b ();
          true
        end)
      backends
  in
  build vnodes backends

let backends t = t.backends
let is_empty t = t.backends = []

let shard t key =
  match Array.length t.points with
  | 0 -> invalid_arg "Ring.shard: empty ring"
  | n ->
    let h = hash_key key in
    (* first point >= h, clockwise; wrap to the smallest point *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if ucmp (fst t.points.(mid)) h < 0 then search (mid + 1) hi
        else search lo mid
    in
    let i = search 0 n in
    snd t.points.(if i = n then 0 else i)

let add t b =
  if List.mem b t.backends then t else build t.vnodes (t.backends @ [ b ])

let remove t b = build t.vnodes (List.filter (fun x -> x <> b) t.backends)
