(* The original transport, now a thin adapter: stdin is a single
   pre-accepted connection, stdout is its reply sink. Byte-compatible
   with the pre-split server — same select cadence, same buffered line
   splitting, same final-partial-line handling, same flush-per-line
   writes — so the PR 4/5 fixtures drive the refactored core
   unchanged. *)

type t = {
  stop : unit -> bool;
  mutable handed_out : bool;
  shut : bool Atomic.t;
}

let name _ = "stdio"

let make_conn t =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let lines = Queue.create () in
  let eof = ref false in
  let split_complete_lines () =
    let s = Buffer.contents buf in
    let rec go start =
      match String.index_from_opt s start '\n' with
      | Some j ->
        Queue.push (String.sub s start (j - start)) lines;
        go (j + 1)
      | None -> start
    in
    let consumed = go 0 in
    if consumed > 0 then begin
      Buffer.clear buf;
      Buffer.add_substring buf s consumed (String.length s - consumed)
    end
  in
  let rec read_line () =
    if not (Queue.is_empty lines) then Some (Queue.pop lines)
    else if !eof then None
    else if t.stop () then
      (* drain/SIGTERM: stop reading; an unterminated partial stays
         unprocessed, exactly as before the split *)
      None
    else
      match Unix.select [ Unix.stdin ] [] [] 0.05 with
      | [], _, _ -> read_line ()
      | _ :: _, _, _ -> (
        match Unix.read Unix.stdin chunk 0 (Bytes.length chunk) with
        | 0 ->
          eof := true;
          (* a final line without trailing newline still counts *)
          let rest = String.trim (Buffer.contents buf) in
          Buffer.clear buf;
          if rest <> "" then Some rest else None
        | k ->
          Buffer.add_subbytes buf chunk 0 k;
          split_complete_lines ();
          read_line ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
  in
  let write_line line =
    print_string line;
    print_newline ();
    flush stdout
  in
  { Transport.peer = "stdio"; read_line; write_line; close = (fun () -> ()) }

let accept t =
  if t.shut |> Atomic.get then None
  else if not t.handed_out then begin
    t.handed_out <- true;
    Some (make_conn t)
  end
  else begin
    (* the one connection is out: block until drain/shutdown *)
    let rec wait () =
      if Atomic.get t.shut || t.stop () then None
      else begin
        Unix.sleepf 0.05;
        wait ()
      end
    in
    wait ()
  end

let shutdown t = Atomic.set t.shut true

let listener ~stop () =
  Transport.Listener
    ( (module struct
        type nonrec t = t

        let name = name
        let accept = accept
        let shutdown = shutdown
      end),
      { stop; handed_out = false; shut = Atomic.make false } )

(* the [hslb serve] stdio entry point: NDJSON requests on stdin,
   responses and the final drained event on stdout *)
let run ?telemetry_path ?report_path ?metrics_out ?metrics_interval_s cfg =
  let telemetry_oc =
    Option.map
      (fun p -> open_out_gen [ Open_append; Open_creat ] 0o644 p)
      telemetry_path
  in
  let telemetry =
    Option.map
      (fun oc line ->
        output_string oc line;
        output_char oc '\n';
        flush oc)
      telemetry_oc
  in
  let events line =
    print_string line;
    print_newline ();
    flush stdout
  in
  let server = Server.create ?telemetry cfg ~emit:events in
  let report =
    Service.run ?report_path ?metrics_out ?metrics_interval_s ~events
      ~eof_drains:true
      (Service.core_of_server server)
      ~make_listener:(fun ~stop -> listener ~stop ())
  in
  Option.iter close_out telemetry_oc;
  ignore (report : Engine.Run_report.t)
