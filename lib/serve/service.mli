(** The serving lifecycle, shared by one-backend ([hslb serve]) and
    fleet ([hslb route]) processes.

    Both {!Server.t} and {!Router.t} reduce to a {!core} — the handler
    a transport pumps lines into, plus drain/stats/metrics hooks —
    and {!run} wraps any core with the machinery every deployment
    shape needs: SIGTERM handling, the periodic [--metrics-out]
    Prometheus flusher, the final {!Engine.Run_report} and the
    terminal [{"event":"drained",...}] line. *)

type core = {
  handler : Transport.handler;  (** where the transport pumps request lines *)
  initiate_drain : unit -> unit;  (** idempotent; stops admission *)
  draining : unit -> bool;
  await_drain : unit -> Engine.Run_report.t;
      (** block until every admitted request is answered; final report *)
  stats_json : unit -> string;  (** one-line JSON counters *)
  metrics : unit -> (string * Obs.Metrics.metric) list;
      (** the exposition set behind [--metrics-out] *)
}

val core_of_server : Server.t -> core

(** [run core ~make_listener] — serve until shutdown, then return the
    final drain report. The listener is built with a [stop] predicate
    that transports must poll while blocked: it fires on SIGTERM and
    once the core starts draining (a [drain] op, or — with
    [~eof_drains:true], the single-connection stdio shape — the
    connection ending). Shutdown sequence: transports unwind, the
    listener is shut down, the core drains (grace timer, then
    budget-cancel), [report_path]/[metrics_out] are written, and the
    [{"event":"drained","stats":...,"report":...}] line goes to
    [events] (default: stdout).

    @raise Invalid_argument if [metrics_interval_s <= 0]. *)
val run :
  ?report_path:string ->
  ?metrics_out:string ->
  ?metrics_interval_s:float ->
  ?events:(string -> unit) ->
  ?eof_drains:bool ->
  core ->
  make_listener:(stop:(unit -> bool) -> Transport.listener) ->
  Engine.Run_report.t
