(** The serve wire protocol: newline-delimited JSON, one request per
    line in, one response per line out (plus standalone event lines for
    drain and telemetry). See docs/SERVE.md for the field-by-field
    contract.

    A request is an object with an optional ["id"] (echoed verbatim in
    the response — any JSON scalar), an ["op"] (default ["solve"]), and
    op-specific fields. Responses always carry ["id"] and an
    ["outcome"]: ["ok"], ["error"] (malformed request or failed solve),
    ["overloaded"] (queue high-water rejection), ["expired"] (the
    deadline was consumed before the solve started) or ["draining"]
    (rejected because shutdown began). *)

type solve_params = {
  model : [ `Inline of string | `Path of string ];
      (** [model_csv] (inline [name,count,a,b,c,d] text, [\n]-separated)
          or [model_path] (a {!Hslb.Model_store} file) *)
  n_total : int;  (** ["nodes"] — total node budget, >= 1 *)
  objective : Hslb.Objective.t;  (** ["objective"], default min-max *)
  solver : Engine.Solver_choice.t option;  (** ["solver"], server default otherwise *)
  strategy : Runtime.Portfolio.strategy option;  (** ["strategy"] *)
  deadline_ms : float option;
      (** ["deadline_ms"] — end-to-end (queue wait included), mapped to
          an {!Engine.Budget} wall-clock deadline for the solve *)
  allowed : int list option;  (** ["allowed"] — sweet-spot restriction *)
  policy : Arena.Scenario.cls option;
      (** ["policy"] — the workload class the client believes this
          traffic belongs to; the server answers with the scheduler the
          arena's regret matrix crowned for that class (see
          docs/ARENA.md). Advisory: it never changes the solve. *)
}

type request =
  | Solve of solve_params
  | Sleep of float  (** ["op":"sleep"], ["ms"]: occupy a worker — testing/ops aid *)
  | Ping  (** liveness check, answered inline *)
  | Stats  (** server counters, answered inline *)
  | Drain  (** initiate graceful drain, as SIGTERM does *)

(** A parsed request line: the echoed [id] (Null when the line was not
    parseable JSON) and the request or a protocol error message. *)
type parsed = { id : Json.t; req : (request, string) result }

val parse_line : string -> parsed

(** [resolve_specs p] — load the request's model ([`Inline] text or the
    [`Path] file) and build the solver-ready spec list, applying the
    [allowed] restriction. [Error] is a protocol-grade message (bad
    path, malformed CSV, empty model). Used by the server before
    queueing and by the router before sharding, so both report model
    problems identically. *)
val resolve_specs : solve_params -> (Hslb.Alloc_model.spec list, string) result

(** [fingerprint p] — the canonical {!Hslb.Alloc_model.fingerprint} of
    the request's solve instance: the dedupe/cache key, and the key the
    router's hash ring shards on. *)
val fingerprint : solve_params -> (string, string) result

(** [response ~id fields] — one NDJSON response line: an object opening
    with the echoed ["id"] followed by [fields]. *)
val response : id:Json.t -> (string * Json.t) list -> string

(** [error_response ~id ~outcome msg] — [response] with
    [outcome] and an ["error"] message. *)
val error_response : id:Json.t -> outcome:string -> string -> string
