(** The serve wire protocol: newline-delimited JSON, one request per
    line in, one response per line out (plus standalone event lines for
    drain and telemetry). See docs/SERVE.md for the field-by-field
    contract.

    A request is an object with an optional ["id"] (echoed verbatim in
    the response — any JSON scalar), an optional protocol version ["v"]
    (absent means v1, the pre-versioning dialect; current is
    {!current_version}), an ["op"] (default ["solve"]), and op-specific
    fields. Responses always carry ["id"] and an ["outcome"]: ["ok"],
    ["error"] (malformed request or failed solve), ["overloaded"]
    (queue high-water rejection), ["expired"] (the deadline was
    consumed before the solve started) or ["draining"] (rejected
    because shutdown began). Responses to v2+ requests additionally
    echo ["v"]; v1 responses are byte-identical to the pre-versioning
    wire. *)

(** Oldest dialect the server speaks (the implicit version of requests
    with no ["v"] field). *)
val min_version : int

(** Newest dialect the server speaks. The ["resolve"] op requires
    [>= 2]. *)
val current_version : int

(** The optional ["place"] section of a solve (v2+): where the classes
    should land once the allocator has sized them. The torus is carved
    into [place_groups] even compact node groups and each model class
    becomes one placement task; the server answers with a
    topology-aware task→group assignment minimizing hop-priced
    communication under per-group memory knapsacks (see
    docs/PLACEMENT.md). *)
type place_params = {
  torus : int * int * int;  (** ["place.topology"] — [\[x, y, z\]], all >= 1 *)
  place_groups : int;  (** ["place.groups"] — must divide the torus evenly *)
  mem_per_node_gb : float;  (** ["place.mem_per_node_gb"] — > 0 *)
  mem_gb : float array;  (** ["place.mem_gb"] — one entry per model class *)
  comm_mb : float array array;
      (** ["place.comm_mb"] — class-pair traffic, symmetric, zero
          diagonal (checked by {!place_instance}) *)
  hop_cost_s_per_mb : float;  (** ["place.hop_cost_s_per_mb"], default 1.0 *)
}

type solve_params = {
  model : [ `Inline of string | `Path of string ];
      (** [model_csv] (inline [name,count,a,b,c,d] text, [\n]-separated)
          or [model_path] (a {!Hslb.Model_store} file) *)
  n_total : int;  (** ["nodes"] — total node budget, >= 1 *)
  objective : Hslb.Objective.t;  (** ["objective"], default min-max *)
  solver : Engine.Solver_choice.t option;  (** ["solver"], server default otherwise *)
  strategy : Runtime.Portfolio.strategy option;  (** ["strategy"] *)
  deadline_ms : float option;
      (** ["deadline_ms"] — end-to-end (queue wait included), mapped to
          an {!Engine.Budget} wall-clock deadline for the solve *)
  allowed : int list option;  (** ["allowed"] — sweet-spot restriction *)
  policy : Arena.Scenario.cls option;
      (** ["policy"] — the workload class the client believes this
          traffic belongs to; the server answers with the scheduler the
          arena's regret matrix crowned for that class (see
          docs/ARENA.md). Advisory: it never changes the solve. *)
  place : place_params option;
      (** ["place"] (v2+) — ask for a topology-aware placement of the
          classes alongside the allocation *)
}

(** The ["resolve"] op (v2+): re-solve an instance the client solved
    before, folding fresh benchmark observations into the model online
    and skipping the MINLP when an ε-reoptimality certificate
    ({!Audit.Sensitivity}) proves the previous allocation still
    near-optimal. *)
type resolve_params = {
  base : solve_params;  (** same model/budget fields as ["solve"] *)
  prev : int array;
      (** ["prev"] — the incumbent allocation (nodes per task, one entry
          per model class, in model order); mandatory warm start *)
  observe : (string * (float * float) array) list;
      (** ["observe"] — fresh benchmark points per class:
          [\[{"class": name, "samples": \[\[nodes, seconds\], ...\]}\]] *)
  epsilon : float option;
      (** ["epsilon"] — certificate threshold, server default otherwise *)
}

type request =
  | Solve of solve_params
  | Resolve of resolve_params  (** v2+ only *)
  | Sleep of float  (** ["op":"sleep"], ["ms"]: occupy a worker — testing/ops aid *)
  | Ping  (** liveness check, answered inline *)
  | Stats  (** server counters, answered inline *)
  | Drain  (** initiate graceful drain, as SIGTERM does *)

(** A parsed request line: the echoed [id] (Null when the line was not
    parseable JSON), the negotiated protocol version [v] ([min_version]
    when absent or invalid — an invalid ["v"] also puts its exact
    diagnostic in [req]), and the request or a protocol error
    message. *)
type parsed = { id : Json.t; v : int; req : (request, string) result }

val parse_line : string -> parsed

(** [resolve_specs p] — load the request's model ([`Inline] text or the
    [`Path] file) and build the solver-ready spec list, applying the
    [allowed] restriction. [Error] is a protocol-grade message (bad
    path, malformed CSV, empty model). Used by the server before
    queueing and by the router before sharding, so both report model
    problems identically. *)
val resolve_specs : solve_params -> (Hslb.Alloc_model.spec list, string) result

(** [place_instance ?duration_s ~names pl] — lower a place section into
    a {!Place.Model} instance for the named classes: the torus carved
    into even compact groups, one placement task per class.
    [duration_s] defaults to all-zero (the request-level shape used for
    fingerprints; the server substitutes solved predicted times before
    optimizing). [Error] is protocol-grade: exact field paths for shape
    mismatches, {!Place.Model.make}'s own messages for semantic
    rejections (asymmetry, memory infeasibility). *)
val place_instance :
  ?duration_s:float array array ->
  names:string array ->
  place_params ->
  (Place.Model.instance, string) result

(** Class names of already-resolved specs, in model order. *)
val spec_names : Hslb.Alloc_model.spec list -> string array

(** [solve_key p specs] — the dedupe/cache key for a solve whose specs
    are already resolved: the pure {!Hslb.Alloc_model.fingerprint},
    wrapped by {!Place.Model.fingerprint} when a place section rides
    along, so requests differing only in topology, memory or traffic
    never share a cached allocation. *)
val solve_key : solve_params -> Hslb.Alloc_model.spec list -> (string, string) result

(** [fingerprint p] — {!solve_key} after {!resolve_specs}: the
    dedupe/cache key, and the key the router's hash ring shards on. *)
val fingerprint : solve_params -> (string, string) result

(** [response ?v ~id fields] — one NDJSON response line: an object
    opening with the echoed ["id"], then (for [v >= 2]) the ["v"] echo,
    then [fields]. Default [v] is {!min_version}, which emits no ["v"]
    — the pre-versioning byte layout. *)
val response : ?v:int -> id:Json.t -> (string * Json.t) list -> string

(** [error_response ?v ~id ~outcome msg] — [response] with
    [outcome] and an ["error"] message. *)
val error_response : ?v:int -> id:Json.t -> outcome:string -> string -> string
