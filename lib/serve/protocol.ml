type solve_params = {
  model : [ `Inline of string | `Path of string ];
  n_total : int;
  objective : Hslb.Objective.t;
  solver : Engine.Solver_choice.t option;
  strategy : Runtime.Portfolio.strategy option;
  deadline_ms : float option;
  allowed : int list option;
  policy : Arena.Scenario.cls option;
}

type request =
  | Solve of solve_params
  | Sleep of float
  | Ping
  | Stats
  | Drain

type parsed = { id : Json.t; req : (request, string) result }

let ( let* ) = Result.bind

let objective_of_string = function
  | "min-max" -> Ok Hslb.Objective.Min_max
  | "max-min" -> Ok Hslb.Objective.Max_min
  | "min-sum" -> Ok Hslb.Objective.Min_sum
  | s -> Error (Printf.sprintf "unknown objective %S (expected min-max | max-min | min-sum)" s)

(* an absent field is fine; a present field of the wrong type is a
   protocol error, never silently ignored *)
let opt_field v key decode what =
  match Json.member key v with
  | None | Some Json.Null -> Ok None
  | Some f -> (
    match decode f with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S: expected %s" key what))

let opt_str_field v key conv =
  let* s = opt_field v key Json.str "a string" in
  match s with
  | None -> Ok None
  | Some s -> (
    match conv s with
    | Ok x -> Ok (Some x)
    | Error msg -> Error (Printf.sprintf "field %S: %s" key msg))

let parse_solve v =
  let* model =
    match (Json.member "model_csv" v, Json.member "model_path" v) with
    | Some (Json.Str csv), None -> Ok (`Inline csv)
    | None, Some (Json.Str path) -> Ok (`Path path)
    | Some _, Some _ -> Error "give model_csv or model_path, not both"
    | Some _, None -> Error "field \"model_csv\": expected a string"
    | None, Some _ -> Error "field \"model_path\": expected a string"
    | None, None -> Error "missing model: give model_csv (inline) or model_path (file)"
  in
  let* n_total =
    match Json.member "nodes" v with
    | None -> Error "missing field \"nodes\" (total node budget)"
    | Some f -> (
      match Json.int_ f with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (Printf.sprintf "field \"nodes\": must be >= 1, got %d" n)
      | None -> Error "field \"nodes\": expected a positive integer")
  in
  let* objective = opt_str_field v "objective" objective_of_string in
  let objective = Option.value objective ~default:Hslb.Objective.Min_max in
  let* solver = opt_str_field v "solver" Engine.Solver_choice.of_string in
  let* strategy = opt_str_field v "strategy" Runtime.Portfolio.strategy_of_string in
  let* deadline_ms =
    let* d = opt_field v "deadline_ms" Json.num "a number" in
    match d with
    | Some d when d <= 0. -> Error "field \"deadline_ms\": must be > 0"
    | (Some _ | None) as d -> Ok d
  in
  let* allowed =
    match Json.member "allowed" v with
    | None | Some Json.Null -> Ok None
    | Some f -> (
      match Json.arr f with
      | None -> Error "field \"allowed\": expected an array of integers"
      | Some vs -> (
        let ints = List.filter_map Json.int_ vs in
        if List.length ints = List.length vs then Ok (Some ints)
        else Error "field \"allowed\": expected an array of integers"))
  in
  let* policy = opt_str_field v "policy" Arena.Scenario.class_of_string in
  Ok (Solve { model; n_total; objective; solver; strategy; deadline_ms; allowed; policy })

let parse_request v =
  let* op =
    match Json.member "op" v with
    | None -> Ok "solve"
    | Some f -> (
      match Json.str f with
      | Some s -> Ok s
      | None ->
        (* a non-string op (e.g. a numeric 7) must be a type error, not
           fall through to the unknown-op branch via some coercion *)
        Error (Printf.sprintf "field \"op\": expected a string, got %s" (Json.type_name f)))
  in
  match op with
  | "solve" -> parse_solve v
  | "sleep" -> (
    match Json.member "ms" v with
    | Some f -> (
      match Json.num f with
      | Some ms when ms >= 0. -> Ok (Sleep (ms /. 1000.))
      | Some _ | None -> Error "field \"ms\": expected a non-negative number")
    | None -> Error "op sleep: missing field \"ms\"")
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "drain" -> Ok Drain
  | op ->
    Error (Printf.sprintf "unknown op %S (expected solve | sleep | ping | stats | drain)" op)

let parse_line line =
  match Json.parse line with
  | Error msg -> { id = Json.Null; req = Error ("bad JSON: " ^ msg) }
  | Ok (Json.Obj _ as v) ->
    let id = Option.value (Json.member "id" v) ~default:Json.Null in
    { id; req = parse_request v }
  | Ok _ -> { id = Json.Null; req = Error "request must be a JSON object" }

(* shared by the server (to solve) and the router (to shard): turn a
   solve request's model reference into concrete specs. Kept here, next
   to the wire format, so both sides resolve — and report errors on —
   the model identically. *)
let resolve_specs (p : solve_params) =
  let* text =
    match p.model with
    | `Inline csv -> Ok csv
    | `Path path -> (
      match
        let ic = open_in path in
        let n = in_channel_length ic in
        let text = really_input_string ic n in
        close_in ic;
        text
      with
      | text -> Ok text
      | exception Sys_error msg -> Error ("model_path: " ^ msg))
  in
  let* fits = Hslb.Model_store.of_csv_result text in
  if fits = [] then Error "model has no classes"
  else
    Ok
      (List.map
         (fun fc ->
           match p.allowed with
           | Some values -> Hslb.Alloc_model.spec_of ~allowed:values fc
           | None -> Hslb.Alloc_model.spec_of fc)
         fits)

let fingerprint p =
  let* specs = resolve_specs p in
  Ok (Hslb.Alloc_model.fingerprint ~objective:p.objective ~n_total:p.n_total specs)

let response ~id fields = Json.to_string (Json.Obj (("id", id) :: fields))

let error_response ~id ~outcome msg =
  response ~id [ ("outcome", Json.Str outcome); ("error", Json.Str msg) ]
