let min_version = 1
let current_version = 2

type place_params = {
  torus : int * int * int;
  place_groups : int;
  mem_per_node_gb : float;
  mem_gb : float array;
  comm_mb : float array array;
  hop_cost_s_per_mb : float;
}

type solve_params = {
  model : [ `Inline of string | `Path of string ];
  n_total : int;
  objective : Hslb.Objective.t;
  solver : Engine.Solver_choice.t option;
  strategy : Runtime.Portfolio.strategy option;
  deadline_ms : float option;
  allowed : int list option;
  policy : Arena.Scenario.cls option;
  place : place_params option;
}

type resolve_params = {
  base : solve_params;
  prev : int array;
  observe : (string * (float * float) array) list;
  epsilon : float option;
}

type request =
  | Solve of solve_params
  | Resolve of resolve_params
  | Sleep of float
  | Ping
  | Stats
  | Drain

type parsed = { id : Json.t; v : int; req : (request, string) result }

let ( let* ) = Result.bind

let objective_of_string = function
  | "min-max" -> Ok Hslb.Objective.Min_max
  | "max-min" -> Ok Hslb.Objective.Max_min
  | "min-sum" -> Ok Hslb.Objective.Min_sum
  | s -> Error (Printf.sprintf "unknown objective %S (expected min-max | max-min | min-sum)" s)

(* an absent field is fine; a present field of the wrong type is a
   protocol error, never silently ignored *)
let opt_field v key decode what =
  match Json.member key v with
  | None | Some Json.Null -> Ok None
  | Some f -> (
    match decode f with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S: expected %s" key what))

let opt_str_field v key conv =
  let* s = opt_field v key Json.str "a string" in
  match s with
  | None -> Ok None
  | Some s -> (
    match conv s with
    | Ok x -> Ok (Some x)
    | Error msg -> Error (Printf.sprintf "field %S: %s" key msg))

(* the "v" field: absent means v1 (every pre-versioning client), an
   integer in [min_version, current_version] selects that dialect,
   anything else is a protocol error with an exact diagnostic *)
let parse_version v =
  match Json.member "v" v with
  | None | Some Json.Null -> Ok min_version
  | Some f -> (
    match Json.int_ f with
    | Some n when n >= min_version && n <= current_version -> Ok n
    | Some n ->
      Error
        (Printf.sprintf "field \"v\": unsupported protocol version %d (server speaks %d..%d)" n
           min_version current_version)
    | None -> Error "field \"v\": expected an integer")

(* the optional v2 "place" section: a torus, an even group carve, and
   the class-level memory/communication data the placement model needs.
   Shape errors are protocol errors with exact field paths; the deeper
   semantic checks (symmetry, zero diagonal, memory feasibility) belong
   to Place.Model and are surfaced by [place_instance]. *)
let parse_place ~v:version v =
  match Json.member "place" v with
  | None | Some Json.Null -> Ok None
  | Some _ when version < 2 -> Error "field \"place\" requires protocol v2 (send \"v\": 2)"
  | Some (Json.Obj _ as pv) ->
    let bad_topology = "field \"place.topology\": expected an array of 3 positive integers" in
    let* torus =
      match Json.member "topology" pv with
      | None | Some Json.Null -> Error "missing field \"place.topology\" (the [x, y, z] torus)"
      | Some f -> (
        match Json.arr f with
        | Some [ a; b; c ] -> (
          match (Json.int_ a, Json.int_ b, Json.int_ c) with
          | Some x, Some y, Some z when x >= 1 && y >= 1 && z >= 1 -> Ok (x, y, z)
          | _ -> Error bad_topology)
        | Some _ | None -> Error bad_topology)
    in
    let* place_groups =
      match Json.member "groups" pv with
      | None | Some Json.Null -> Error "missing field \"place.groups\" (how many node groups)"
      | Some f -> (
        match Json.int_ f with
        | Some g when g >= 1 -> Ok g
        | Some _ | None -> Error "field \"place.groups\": expected a positive integer")
    in
    let* mem_per_node_gb =
      match Json.member "mem_per_node_gb" pv with
      | None | Some Json.Null -> Error "missing field \"place.mem_per_node_gb\""
      | Some f -> (
        match Json.num f with
        | Some m when m > 0. -> Ok m
        | Some _ | None -> Error "field \"place.mem_per_node_gb\": expected a positive number")
    in
    let* mem_gb =
      let bad = "field \"place.mem_gb\": expected an array of non-negative numbers" in
      match Json.member "mem_gb" pv with
      | None | Some Json.Null -> Error "missing field \"place.mem_gb\" (one entry per class)"
      | Some f -> (
        match Json.arr f with
        | None -> Error bad
        | Some vs ->
          let nums = List.filter_map Json.num vs in
          if List.length nums <> List.length vs || List.exists (fun m -> m < 0.) nums then
            Error bad
          else Ok (Array.of_list nums))
    in
    let* comm_mb =
      let bad = "field \"place.comm_mb\": expected a square matrix of numbers" in
      match Json.member "comm_mb" pv with
      | None | Some Json.Null ->
        Error "missing field \"place.comm_mb\" (the class-pair communication matrix)"
      | Some f -> (
        match Json.arr f with
        | None -> Error bad
        | Some rows ->
          let parsed =
            List.filter_map
              (fun r ->
                match Json.arr r with
                | None -> None
                | Some cells ->
                  let nums = List.filter_map Json.num cells in
                  if List.length nums = List.length cells then Some (Array.of_list nums)
                  else None)
              rows
          in
          if List.length parsed <> List.length rows then Error bad
          else Ok (Array.of_list parsed))
    in
    let* hop_cost_s_per_mb =
      let* h = opt_field pv "hop_cost_s_per_mb" Json.num "a number" in
      match h with
      | Some h when h < 0. || not (Float.is_finite h) ->
        Error "field \"place.hop_cost_s_per_mb\": must be finite and non-negative"
      | Some h -> Ok h
      | None -> Ok 1.0
    in
    Ok (Some { torus; place_groups; mem_per_node_gb; mem_gb; comm_mb; hop_cost_s_per_mb })
  | Some f ->
    Error (Printf.sprintf "field \"place\": expected an object, got %s" (Json.type_name f))

let parse_solve_params ~v:version v =
  let* model =
    match (Json.member "model_csv" v, Json.member "model_path" v) with
    | Some (Json.Str csv), None -> Ok (`Inline csv)
    | None, Some (Json.Str path) -> Ok (`Path path)
    | Some _, Some _ -> Error "give model_csv or model_path, not both"
    | Some _, None -> Error "field \"model_csv\": expected a string"
    | None, Some _ -> Error "field \"model_path\": expected a string"
    | None, None -> Error "missing model: give model_csv (inline) or model_path (file)"
  in
  let* n_total =
    match Json.member "nodes" v with
    | None -> Error "missing field \"nodes\" (total node budget)"
    | Some f -> (
      match Json.int_ f with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (Printf.sprintf "field \"nodes\": must be >= 1, got %d" n)
      | None -> Error "field \"nodes\": expected a positive integer")
  in
  let* objective = opt_str_field v "objective" objective_of_string in
  let objective = Option.value objective ~default:Hslb.Objective.Min_max in
  let* solver = opt_str_field v "solver" Engine.Solver_choice.of_string in
  let* strategy = opt_str_field v "strategy" Runtime.Portfolio.strategy_of_string in
  let* deadline_ms =
    let* d = opt_field v "deadline_ms" Json.num "a number" in
    match d with
    | Some d when d <= 0. -> Error "field \"deadline_ms\": must be > 0"
    | (Some _ | None) as d -> Ok d
  in
  let* allowed =
    match Json.member "allowed" v with
    | None | Some Json.Null -> Ok None
    | Some f -> (
      match Json.arr f with
      | None -> Error "field \"allowed\": expected an array of integers"
      | Some vs -> (
        let ints = List.filter_map Json.int_ vs in
        if List.length ints = List.length vs then Ok (Some ints)
        else Error "field \"allowed\": expected an array of integers"))
  in
  let* policy = opt_str_field v "policy" Arena.Scenario.class_of_string in
  let* place = parse_place ~v:version v in
  Ok { model; n_total; objective; solver; strategy; deadline_ms; allowed; policy; place }

let parse_solve ~v obj =
  let* p = parse_solve_params ~v obj in
  Ok (Solve p)

let parse_prev v =
  match Json.member "prev" v with
  | None | Some Json.Null -> Error "op resolve: missing field \"prev\" (previous allocation)"
  | Some f -> (
    match Json.arr f with
    | None -> Error "field \"prev\": expected an array of positive integers"
    | Some vs -> (
      let ints = List.filter_map Json.int_ vs in
      if List.length ints <> List.length vs || List.exists (fun n -> n < 1) ints then
        Error "field \"prev\": expected an array of positive integers"
      else
        match ints with
        | [] -> Error "field \"prev\": must not be empty"
        | _ -> Ok (Array.of_list ints)))

let parse_sample = function
  | Json.Arr [ n; t ] -> (
    match (Json.num n, Json.num t) with
    | Some n, Some t when n >= 1. && t >= 0. -> Some (n, t)
    | _ -> None)
  | _ -> None

let parse_observe v =
  let bad = "field \"observe\": expected an array of {class, samples} objects" in
  match Json.member "observe" v with
  | None | Some Json.Null -> Ok []
  | Some f -> (
    match Json.arr f with
    | None -> Error bad
    | Some entries ->
      let rec walk acc = function
        | [] -> Ok (List.rev acc)
        | e :: tl -> (
          match (Json.member "class" e, Json.member "samples" e) with
          | Some (Json.Str name), Some samples -> (
            match Json.arr samples with
            | None ->
              Error
                (Printf.sprintf
                   "field \"observe\": class %S: samples must be an array of [nodes, seconds] \
                    pairs (nodes >= 1, seconds >= 0)"
                   name)
            | Some pairs ->
              let parsed = List.filter_map parse_sample pairs in
              if List.length parsed <> List.length pairs then
                Error
                  (Printf.sprintf
                     "field \"observe\": class %S: samples must be an array of [nodes, \
                      seconds] pairs (nodes >= 1, seconds >= 0)"
                     name)
              else walk ((name, Array.of_list parsed) :: acc) tl)
          | _ -> Error bad)
      in
      walk [] entries)

let parse_resolve ~v:version v =
  let* base = parse_solve_params ~v:version v in
  let* prev = parse_prev v in
  let* observe = parse_observe v in
  let* epsilon =
    let* e = opt_field v "epsilon" Json.num "a number" in
    match e with
    | Some e when e <= 0. -> Error "field \"epsilon\": must be > 0"
    | (Some _ | None) as e -> Ok e
  in
  Ok (Resolve { base; prev; observe; epsilon })

let parse_request ~v:version v =
  let* op =
    match Json.member "op" v with
    | None -> Ok "solve"
    | Some f -> (
      match Json.str f with
      | Some s -> Ok s
      | None ->
        (* a non-string op (e.g. a numeric 7) must be a type error, not
           fall through to the unknown-op branch via some coercion *)
        Error (Printf.sprintf "field \"op\": expected a string, got %s" (Json.type_name f)))
  in
  match op with
  | "solve" -> parse_solve ~v:version v
  | "resolve" ->
    if version < 2 then Error "op \"resolve\" requires protocol v2 (send \"v\": 2)"
    else parse_resolve ~v:version v
  | "sleep" -> (
    match Json.member "ms" v with
    | Some f -> (
      match Json.num f with
      | Some ms when ms >= 0. -> Ok (Sleep (ms /. 1000.))
      | Some _ | None -> Error "field \"ms\": expected a non-negative number")
    | None -> Error "op sleep: missing field \"ms\"")
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "drain" -> Ok Drain
  | op ->
    Error
      (Printf.sprintf "unknown op %S (expected solve | resolve | sleep | ping | stats | drain)"
         op)

let parse_line line =
  match Json.parse line with
  | Error msg -> { id = Json.Null; v = min_version; req = Error ("bad JSON: " ^ msg) }
  | Ok (Json.Obj _ as obj) -> (
    let id = Option.value (Json.member "id" obj) ~default:Json.Null in
    match parse_version obj with
    | Error msg -> { id; v = min_version; req = Error msg }
    | Ok v -> { id; v; req = parse_request ~v obj })
  | Ok _ -> { id = Json.Null; v = min_version; req = Error "request must be a JSON object" }

(* shared by the server (to solve) and the router (to shard): turn a
   solve request's model reference into concrete specs. Kept here, next
   to the wire format, so both sides resolve — and report errors on —
   the model identically. *)
let resolve_specs (p : solve_params) =
  let* text =
    match p.model with
    | `Inline csv -> Ok csv
    | `Path path -> (
      match
        let ic = open_in path in
        let n = in_channel_length ic in
        let text = really_input_string ic n in
        close_in ic;
        text
      with
      | text -> Ok text
      | exception Sys_error msg -> Error ("model_path: " ^ msg))
  in
  let* fits = Hslb.Model_store.of_csv_result text in
  if fits = [] then Error "model has no classes"
  else
    Ok
      (List.map
         (fun fc ->
           match p.allowed with
           | Some values -> Hslb.Alloc_model.spec_of ~allowed:values fc
           | None -> Hslb.Alloc_model.spec_of fc)
         fits)

(* lower a solve's place section into a Place.Model instance for its
   classes: the torus carved into even compact groups, one placement
   task per class. [duration_s] defaults to all-zero — the
   request-level shape used for fingerprints; the server substitutes
   the solved predicted times before optimizing. Semantic rejections
   (ragged matrices, asymmetry, memory infeasibility) surface here
   with Place.Model's exact messages. *)
let place_instance ?duration_s ~names (pl : place_params) =
  let x, y, z = pl.torus in
  let k = Array.length names in
  let nodes = x * y * z in
  if nodes mod pl.place_groups <> 0 then
    Error
      (Printf.sprintf "field \"place.groups\": %d groups do not divide the %dx%dx%d torus evenly"
         pl.place_groups x y z)
  else if Array.length pl.mem_gb <> k then
    Error
      (Printf.sprintf "field \"place.mem_gb\": expected %d entries (one per model class), got %d"
         k (Array.length pl.mem_gb))
  else if Array.length pl.comm_mb <> k then
    Error
      (Printf.sprintf
         "field \"place.comm_mb\": expected a %dx%d matrix (one row per model class), got %d rows"
         k k (Array.length pl.comm_mb))
  else
    let topology = Topology.make ~x ~y ~z in
    let size = nodes / pl.place_groups in
    let groups =
      Array.of_list
        (Topology.place topology ~placement:Topology.Compact
           ~sizes:(List.init pl.place_groups (fun _ -> size)))
    in
    let duration_s =
      match duration_s with Some d -> d | None -> Array.make_matrix k pl.place_groups 0.
    in
    match
      Place.Model.make ~topology ~groups ~names ~duration_s ~mem_gb:pl.mem_gb
        ~mem_per_node_gb:pl.mem_per_node_gb ~comm_mb:pl.comm_mb
        ~hop_cost_s_per_mb:pl.hop_cost_s_per_mb ()
    with
    | inst -> Ok inst
    | exception Invalid_argument msg -> Error msg

let spec_names specs =
  Array.of_list
    (List.map
       (fun (s : Hslb.Alloc_model.spec) -> s.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.name)
       specs)

(* the dedupe/cache key for a solve whose specs are already resolved:
   the pure allocation fingerprint, wrapped by the placement
   fingerprint when a place section rides along — two requests
   differing only in topology (or memory, or traffic) must never share
   a cached allocation *)
let solve_key (p : solve_params) specs =
  let base = Hslb.Alloc_model.fingerprint ~objective:p.objective ~n_total:p.n_total specs in
  match p.place with
  | None -> Ok base
  | Some pl ->
    let* inst = place_instance ~names:(spec_names specs) pl in
    Ok (Place.Model.fingerprint ~base inst)

let fingerprint p =
  let* specs = resolve_specs p in
  solve_key p specs

(* v1 responses must stay byte-identical to the pre-versioning wire, so
   the "v" echo appears only in v2+ dialects *)
let response ?(v = min_version) ~id fields =
  let fields = if v >= 2 then ("v", Json.Num (float_of_int v)) :: fields else fields in
  Json.to_string (Json.Obj (("id", id) :: fields))

let error_response ?v ~id ~outcome msg =
  response ?v ~id [ ("outcome", Json.Str outcome); ("error", Json.Str msg) ]
