(** The stdin/stdout NDJSON transport — the original [hslb serve]
    shape, now a {!Transport} implementation.

    One pre-accepted connection: stdin is the request stream, stdout
    the reply sink. Byte-compatible with the pre-split server: same
    0.05 s select cadence, same buffered line splitting (lines already
    buffered when a drain lands are still submitted), a final
    unterminated line at EOF is processed, every reply line is written
    and flushed atomically. *)

(** [listener ~stop ()] — hands out the stdin/stdout connection once;
    further accepts block until [stop] fires or {!Transport.shutdown}. *)
val listener : stop:(unit -> bool) -> unit -> Transport.listener

(** [run cfg] — the [hslb serve] stdio entry point: create a
    {!Server} with [cfg], serve stdin until EOF / SIGTERM / a [drain]
    op, drain, then emit the final
    [{"event":"drained","stats":...,"report":...}] line on stdout.
    [telemetry_path] appends one JSON line per finished request;
    [report_path] writes the final {!Engine.Run_report};
    [metrics_out] enables the periodic Prometheus flusher
    (every [metrics_interval_s], default 1 s, write-then-rename). *)
val run :
  ?telemetry_path:string ->
  ?report_path:string ->
  ?metrics_out:string ->
  ?metrics_interval_s:float ->
  Server.config ->
  unit
