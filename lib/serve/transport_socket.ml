(* Unix-domain / TCP socket transport: the same newline framing as
   stdio, but many concurrent connections. One listener fd accepted on
   the drive domain (polling the stop condition), one reader domain per
   connection (spawned by [Transport.drive]); replies are written
   straight to the connection's fd — atomicity across worker domains
   comes from the server core's emit lock, not from here. A [Client]
   half lives here too: the router's backend links and [hslb loadgen]
   both speak it. *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let addr_of_string s =
  match String.index_opt s ':' with
  | None ->
    Error
      (Printf.sprintf "bad address %S: expected unix:PATH or tcp:HOST:PORT" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" ->
      if rest = "" then Error "bad address: unix: needs a socket path"
      else Ok (Unix_path rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "bad address %S: tcp needs HOST:PORT" s)
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | Some _ | None ->
          Error (Printf.sprintf "bad address %S: port must be 0..65535" s)))
    | other ->
      Error
        (Printf.sprintf "bad address scheme %S: expected unix:PATH or tcp:HOST:PORT"
           other))

(* writes can race a dying peer from worker domains; never let a reply
   kill the server *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
        | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (ip, port)

let write_all fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length payload in
  let rec go off =
    if off < n then
      match Unix.write fd payload off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* a reply sink must be a no-op once the peer is gone *)
let write_line_quiet fd line =
  try write_all fd line
  with
  | Unix.Unix_error
      ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN | Unix.ESHUTDOWN), _, _)
    ->
    ()

(* ---------- buffered line reading with a stop poll ---------- *)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  lines : string Queue.t;
  mutable eof : bool;
}

let make_reader fd =
  { fd; buf = Buffer.create 4096; chunk = Bytes.create 4096; lines = Queue.create (); eof = false }

let split_lines r =
  let s = Buffer.contents r.buf in
  let rec go start =
    match String.index_from_opt s start '\n' with
    | Some j ->
      let line = String.sub s start (j - start) in
      (* tolerate CRLF peers *)
      let line =
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
      in
      Queue.push line r.lines;
      go (j + 1)
    | None -> start
  in
  let consumed = go 0 in
  if consumed > 0 then begin
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s consumed (String.length s - consumed)
  end

let flush_final r =
  let rest = String.trim (Buffer.contents r.buf) in
  Buffer.clear r.buf;
  if rest <> "" then Some rest else None

(* One poll step: [`Line] if a complete frame is buffered, [`Eof] when
   the stream ended (the final unterminated line is returned first),
   [`Nothing] after an idle [timeout_s]. *)
let read_step r ~timeout_s =
  if not (Queue.is_empty r.lines) then `Line (Queue.pop r.lines)
  else if r.eof then `Eof
  else
    match Unix.select [ r.fd ] [] [] timeout_s with
    | [], _, _ -> `Nothing
    | _ :: _, _, _ -> (
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> (
        r.eof <- true;
        match flush_final r with Some l -> `Line l | None -> `Eof)
      | k ->
        Buffer.add_subbytes r.buf r.chunk 0 k;
        split_lines r;
        if Queue.is_empty r.lines then `Nothing else `Line (Queue.pop r.lines)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Nothing
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> (
        r.eof <- true;
        match flush_final r with Some l -> `Line l | None -> `Eof))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Nothing
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> `Eof

(* ---------- the listener ---------- *)

type t = {
  addr : addr;
  lfd : Unix.file_descr;
  stop : unit -> bool;
  shut : bool Atomic.t;
  mutable n_conns : int;  (* monotone; names peers *)
}

let listen ?(backlog = 16) ~stop addr =
  Lazy.force ignore_sigpipe;
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let lfd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix_path p -> (
    (* a stale socket file from a crashed predecessor blocks bind *)
    match Unix.unlink p with
    | () -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ())
  | Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true);
  (try
     Unix.bind lfd (sockaddr_of addr);
     Unix.listen lfd backlog
   with e ->
     Unix.close lfd;
     raise e);
  { addr; lfd; stop; shut = Atomic.make false; n_conns = 0 }

(* the actual bound address — resolves a [tcp:HOST:0] wildcard port *)
let bound_addr t =
  match t.addr with
  | Unix_path _ as a -> a
  | Tcp (host, _) -> (
    match Unix.getsockname t.lfd with
    | Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | Unix.ADDR_UNIX p -> Unix_path p)

(* [stop] polled while idle: a drain must unwedge every reader even
   when its peer stays connected, or joining the reader domains would
   hang. Buffered complete lines are still delivered first. *)
let conn_of_fd ~peer ~stop fd =
  let r = make_reader fd in
  let closed = Atomic.make false in
  let rec read_line () =
    match read_step r ~timeout_s:0.05 with
    | `Line l -> Some l
    | `Eof -> None
    | `Nothing -> if Atomic.get closed || stop () then None else read_line ()
  in
  {
    Transport.peer;
    read_line;
    write_line = (fun line -> write_line_quiet fd line);
    close =
      (fun () ->
        if not (Atomic.exchange closed true) then
          try Unix.close fd with Unix.Unix_error _ -> ());
  }

let name t = addr_to_string t.addr

let rec accept t =
  if Atomic.get t.shut || t.stop () then None
  else
    match Unix.select [ t.lfd ] [] [] 0.05 with
    | [], _, _ -> accept t
    | _ :: _, _, _ -> (
      match Unix.accept t.lfd with
      | fd, _ ->
        t.n_conns <- t.n_conns + 1;
        Some
          (conn_of_fd
             ~peer:(Printf.sprintf "%s#%d" (name t) t.n_conns)
             ~stop:(fun () -> Atomic.get t.shut || t.stop ())
             fd)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> accept t
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> None)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept t
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> None

let shutdown t =
  if not (Atomic.exchange t.shut true) then begin
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    match t.addr with
    | Unix_path p -> (
      match Unix.unlink p with
      | () -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ())
    | Tcp _ -> ()
  end

let listener t =
  Transport.Listener
    ( (module struct
        type nonrec t = t

        let name = name
        let accept = accept
        let shutdown = shutdown
      end),
      t )

(* ---------- the client half ---------- *)

module Client = struct
  type nonrec t = {
    addr : addr;
    fd : Unix.file_descr;
    r : reader;
    send_lock : Mutex.t;
    closed : bool Atomic.t;
  }

  let connect addr =
    Lazy.force ignore_sigpipe;
    let domain =
      match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (sockaddr_of addr)
     with e ->
       Unix.close fd;
       raise e);
    { addr; fd; r = make_reader fd; send_lock = Mutex.create (); closed = Atomic.make false }

  let peer t = addr_to_string t.addr

  (* false once the peer is gone — callers decide whether that is a
     backend death (router) or the end of a run (loadgen) *)
  let send t line =
    if Atomic.get t.closed then false
    else begin
      Mutex.lock t.send_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.send_lock)
        (fun () ->
          match write_all t.fd line with
          | () -> true
          | exception
              Unix.Unix_error
                ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
                  | Unix.ESHUTDOWN ),
                  _,
                  _ ) ->
            false)
    end

  let recv ?(timeout_s = 0.05) t =
    if Atomic.get t.closed && Queue.is_empty t.r.lines then `Eof
    else
      match read_step t.r ~timeout_s with
      | `Line l -> `Line l
      | `Eof -> `Eof
      | `Nothing -> `Timeout

  let close t =
    if not (Atomic.exchange t.closed true) then
      try Unix.close t.fd with Unix.Unix_error _ -> ()
end
