(* The fleet front-end behind [hslb route]: one Service.core that owns
   N backend serve processes and shards solve requests across them by
   instance fingerprint on a consistent-hash ring. Equal instances
   always land on the same backend, so each backend's dedupe table and
   proven-optimal cache stay shard-local and hot; ping/stats/drain fan
   out to every backend and aggregate.

   Multiplexing: client ids are arbitrary JSON scalars and two
   connections may reuse one, so the router never forwards them. Each
   forwarded request gets a fresh internal integer id; the inflight
   table maps it back to the original id and the reply sink of the
   connection it came from. A backend death errors out that backend's
   inflight entries and (for router-spawned backends) re-spawns the
   process in place — the ring is untouched, so the shard map is
   stable across restarts. *)

type target =
  | Spawn of { name : string; prog : string; args : string list; sock : string }
      (* exec [prog args... --listen unix:sock], then connect *)
  | Attach of { name : string; addr : Transport_socket.addr }
      (* pre-started backend (tests, external fleets): connect only *)

let target_name = function Spawn { name; _ } -> name | Attach { name; _ } -> name

let spawn_targets ~prog ~args ~dir ~count =
  List.init count (fun i ->
      Spawn
        {
          name = Printf.sprintf "backend-%d" i;
          prog;
          args;
          sock = Filename.concat dir (Printf.sprintf "backend-%d.sock" i);
        })

type config = {
  vnodes : int;
  drain_grace_s : float;  (* await_drain: how long inflight may linger *)
  spawn_timeout_s : float;  (* a spawned backend's socket must appear *)
  respawn_limit : int;  (* per backend; exceeded -> stays dead *)
}

let default_config () =
  { vnodes = 64; drain_grace_s = 5.0; spawn_timeout_s = 10.0; respawn_limit = 3 }

type backend = {
  bname : string;
  btarget : target;
  mutable client : Transport_socket.Client.t option;
  mutable pid : int option;
  mutable alive : bool;
  mutable forwarded : int;
  mutable deaths : int;
  mutable respawns : int;
  mutable reader : unit Domain.t option;
}

(* one fan-out in flight: every live backend owes one answer *)
type agg = {
  aorig : Json.t;
  areply : (string -> unit) option;  (* None: internal drain fan-out *)
  akind : [ `Ping | `Stats | `Drain ];
  mutable waiting : int;
  mutable oks : int;
  mutable payloads : (string * Json.t) list;  (* backend -> extracted stats *)
}

type pending =
  | Single of { orig : Json.t; reply : string -> unit; sent_at : float }
  | Member of agg

type t = {
  cfg : config;
  events : string -> unit;
  emit_lock : Mutex.t;
  lock : Mutex.t;
  mutable ring : Ring.t;  (* shrinks only when an attached backend dies *)
  backends : backend list;
  inflight : (int, string * pending) Hashtbl.t;  (* internal id -> owner, owed answer *)
  mutable next_id : int;
  mutable rr : int;  (* round-robin cursor for sleeps *)
  mutable refusing : bool;  (* admission stopped (drain requested) *)
  mutable is_draining : bool;  (* terminal: transports unwind *)
  stopped : bool Atomic.t;  (* reader domains exit *)
  rtt_h : Obs.Metrics.Histogram.t;
  started : float;
  mutable n_requests : int;
  mutable n_forwarded : int;
  mutable n_errors : int;
  mutable n_deaths : int;
  mutable n_respawns : int;
  mutable n_protocol_errors : int;
}

let now () = Unix.gettimeofday ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* all reply sinks and the events sink share one lock: lines from the
   reader domains and the transport domains never interleave *)
let reply_line t sink line =
  Mutex.lock t.emit_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.emit_lock) (fun () -> sink line)

let event t fields = reply_line t t.events (Json.to_string (Json.Obj fields))

(* ---------- child process management ---------- *)

let exec_backend ~prog ~args ~sock =
  let argv = Array.of_list ((prog :: args) @ [ "--listen"; "unix:" ^ sock ]) in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process prog argv devnull devnull Unix.stderr)

let reap ~grace_s pid =
  let deadline = now () +. grace_s in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if now () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        match Unix.waitpid [] pid with
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      end
      else begin
        Unix.sleepf 0.02;
        wait ()
      end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  wait ()

let wait_for_socket ~timeout_s ~pid path =
  let deadline = now () +. timeout_s in
  let rec wait () =
    match Transport_socket.Client.connect (Transport_socket.Unix_path path) with
    | c -> Ok c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      let died =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
      in
      if died then Error (Printf.sprintf "backend exited before opening %s" path)
      else if now () > deadline then
        Error
          (Printf.sprintf "backend socket %s did not appear in %.1fs" path timeout_s)
      else begin
        Unix.sleepf 0.02;
        wait ()
      end
  in
  wait ()

let connect_target ~timeout_s (target : target) =
  match target with
  | Attach { addr; _ } -> (
    match Transport_socket.Client.connect addr with
    | c -> Ok (c, None)
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot attach %s: %s"
           (Transport_socket.addr_to_string addr)
           (Unix.error_message e)))
  | Spawn { prog; args; sock; _ } -> (
    let pid = exec_backend ~prog ~args ~sock in
    match wait_for_socket ~timeout_s ~pid sock with
    | Ok c -> Ok (c, Some pid)
    | Error msg ->
      reap ~grace_s:0.5 pid;
      Error msg)

(* ---------- stats ---------- *)

let summary_json (s : Obs.Metrics.Histogram.summary) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.count));
      ("p50", Json.Num s.p50);
      ("p90", Json.Num s.p90);
      ("p99", Json.Num s.p99);
      ("max", Json.Num s.max);
    ]

let stats_obj t =
  locked t (fun () ->
      Json.Obj
        [
          ("uptime_s", Json.Num (now () -. t.started));
          ("draining", Json.Bool t.refusing);
          ("requests", Json.Num (float_of_int t.n_requests));
          ("forwarded", Json.Num (float_of_int t.n_forwarded));
          ("errors", Json.Num (float_of_int t.n_errors));
          ("backend_deaths", Json.Num (float_of_int t.n_deaths));
          ("respawns", Json.Num (float_of_int t.n_respawns));
          ("protocol_errors", Json.Num (float_of_int t.n_protocol_errors));
          ("inflight", Json.Num (float_of_int (Hashtbl.length t.inflight)));
          ("rtt_ms", summary_json (Obs.Metrics.Histogram.summary t.rtt_h));
          ( "backends",
            Json.Arr
              (List.map
                 (fun b ->
                   Json.Obj
                     [
                       ("name", Json.Str b.bname);
                       ("alive", Json.Bool b.alive);
                       ("forwarded", Json.Num (float_of_int b.forwarded));
                       ("deaths", Json.Num (float_of_int b.deaths));
                       ("respawns", Json.Num (float_of_int b.respawns));
                     ])
                 t.backends) );
        ])

let stats_json t = Json.to_string (stats_obj t)

(* ---------- answering ---------- *)

let answer_error ?v t ~id ~reply msg =
  locked t (fun () -> t.n_errors <- t.n_errors + 1);
  reply_line t reply (Protocol.error_response ?v ~id ~outcome:"error" msg)

let finish_agg t (a : agg) =
  match a.areply with
  | None -> ()  (* internal drain fan-out: nobody to answer *)
  | Some reply -> (
    let total = List.length t.backends in
    match a.akind with
    | `Ping ->
      reply_line t reply
        (Protocol.response ~id:a.aorig
           [
             ("outcome", Json.Str "ok");
             ("pong", Json.Bool true);
             ( "backends",
               Json.Obj
                 [
                   ("total", Json.Num (float_of_int total));
                   ("ok", Json.Num (float_of_int a.oks));
                 ] );
           ])
    | `Stats ->
      reply_line t reply
        (Protocol.response ~id:a.aorig
           [
             ("outcome", Json.Str "ok");
             ( "stats",
               Json.Obj
                 [
                   ("router", stats_obj t);
                   ("backends", Json.Obj (List.rev a.payloads));
                 ] );
           ])
    | `Drain ->
      reply_line t reply
        (Protocol.response ~id:a.aorig
           [
             ("outcome", Json.Str "ok");
             ("draining", Json.Bool true);
             ("backends", Json.Num (float_of_int total));
           ]);
      (* the ack is out; now the router itself may unwind *)
      locked t (fun () -> t.is_draining <- true))

(* ---------- backend responses ---------- *)

let rewrite_response ~orig ~backend fields =
  let fields = List.filter (fun (k, _) -> k <> "id") fields in
  Protocol.response ~id:orig (fields @ [ ("backend", Json.Str backend) ])

let take_inflight t iid =
  locked t (fun () ->
      match Hashtbl.find_opt t.inflight iid with
      | None -> None
      | Some e ->
        Hashtbl.remove t.inflight iid;
        Some e)

let handle_backend_line t (b : backend) line =
  match Json.parse line with
  | Error _ ->
    locked t (fun () -> t.n_protocol_errors <- t.n_protocol_errors + 1);
    event t
      [
        ("event", Json.Str "backend_garbage");
        ("backend", Json.Str b.bname);
      ]
  | Ok (Json.Obj fields as v) -> (
    match Option.bind (Json.member "id" v) Json.int_ with
    | None -> ()  (* not an answer to anything we sent *)
    | Some iid -> (
      match take_inflight t iid with
      | None -> ()  (* already errored out (death race): drop the late answer *)
      | Some (_, Single { orig; reply; sent_at }) ->
        Obs.Metrics.Histogram.observe t.rtt_h ((now () -. sent_at) *. 1000.);
        reply_line t reply (rewrite_response ~orig ~backend:b.bname fields)
      | Some (_, Member a) ->
        let finished =
          locked t (fun () ->
              a.waiting <- a.waiting - 1;
              (match Json.member "outcome" v with
              | Some (Json.Str "ok") -> a.oks <- a.oks + 1
              | Some _ | None -> ());
              (match a.akind with
              | `Stats ->
                let payload =
                  Option.value (Json.member "stats" v) ~default:Json.Null
                in
                a.payloads <- (b.bname, payload) :: a.payloads
              | `Ping | `Drain -> ());
              a.waiting = 0)
        in
        if finished then finish_agg t a))
  | Ok _ -> ()

(* A backend's link dropped. [graceful] when it was told to drain —
   counters and events stay quiet; the inflight sweep still runs in
   case it died mid-drain owing answers. *)
let on_backend_down t (b : backend) ~graceful =
  let orphans =
    locked t (fun () ->
        b.alive <- false;
        b.client <- None;
        if not graceful then begin
          b.deaths <- b.deaths + 1;
          t.n_deaths <- t.n_deaths + 1;
          (* spawned backends come back under the same name, so the
             ring — and every other shard's locality — is untouched;
             an attached backend is gone for good *)
          match b.btarget with
          | Attach _ -> t.ring <- Ring.remove t.ring b.bname
          | Spawn _ -> ()
        end;
        let mine =
          Hashtbl.fold
            (fun iid (owner, p) acc ->
              if owner = b.bname then (iid, p) :: acc else acc)
            t.inflight []
        in
        List.iter (fun (iid, _) -> Hashtbl.remove t.inflight iid) mine;
        mine)
  in
  if not graceful then
    event t [ ("event", Json.Str "backend_death"); ("backend", Json.Str b.bname) ];
  let finished = ref [] in
  List.iter
    (fun (_, p) ->
      match p with
      | Single { orig; reply; _ } ->
        answer_error t ~id:orig ~reply
          (Printf.sprintf "backend %s died before answering" b.bname)
      | Member a ->
        let f =
          locked t (fun () ->
              a.waiting <- a.waiting - 1;
              a.waiting = 0)
        in
        if f then finished := a :: !finished)
    orphans;
  List.iter (finish_agg t) !finished

let rec reader_loop t (b : backend) =
  match b.client with
  | None -> ()
  | Some c -> (
    match Transport_socket.Client.recv c with
    | `Line l ->
      handle_backend_line t b l;
      reader_loop t b
    | `Timeout -> if Atomic.get t.stopped then () else reader_loop t b
    | `Eof ->
      Transport_socket.Client.close c;
      (match b.pid with
      | Some pid ->
        reap ~grace_s:2.0 pid;
        b.pid <- None
      | None -> ());
      if Atomic.get t.stopped then ()
      else begin
        let graceful = locked t (fun () -> t.refusing) in
        on_backend_down t b ~graceful;
        let can_respawn =
          (match b.btarget with Spawn _ -> true | Attach _ -> false)
          && (not graceful)
          && (not (Atomic.get t.stopped))
          && b.respawns < t.cfg.respawn_limit
        in
        if can_respawn then begin
          match connect_target ~timeout_s:t.cfg.spawn_timeout_s b.btarget with
          | Ok (c, pid) ->
            locked t (fun () ->
                b.client <- Some c;
                b.pid <- pid;
                b.alive <- true;
                b.respawns <- b.respawns + 1;
                t.n_respawns <- t.n_respawns + 1);
            event t
              [
                ("event", Json.Str "backend_respawn");
                ("backend", Json.Str b.bname);
              ];
            reader_loop t b
          | Error msg ->
            event t
              [
                ("event", Json.Str "backend_respawn_failed");
                ("backend", Json.Str b.bname);
                ("error", Json.Str msg);
              ]
        end
      end)

(* ---------- forwarding ---------- *)

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let rewrite_request ~iid fields =
  Json.to_string
    (Json.Obj
       (("id", Json.Num (float_of_int iid))
       :: List.filter (fun (k, _) -> k <> "id") fields))

let forward_single t (b : backend) ~orig ~reply fields =
  let slot =
    locked t (fun () ->
        match b.client with
        | Some c when b.alive ->
          let iid = fresh_id t in
          Hashtbl.replace t.inflight iid
            (b.bname, Single { orig; reply; sent_at = now () });
          b.forwarded <- b.forwarded + 1;
          t.n_forwarded <- t.n_forwarded + 1;
          Some (c, iid)
        | Some _ | None -> None)
  in
  match slot with
  | None ->
    answer_error t ~id:orig ~reply (Printf.sprintf "backend %s unavailable" b.bname)
  | Some (c, iid) ->
    if not (Transport_socket.Client.send c (rewrite_request ~iid fields)) then begin
      (* the reader's death sweep may have answered already *)
      let owed =
        locked t (fun () ->
            if Hashtbl.mem t.inflight iid then begin
              Hashtbl.remove t.inflight iid;
              true
            end
            else false)
      in
      if owed then
        answer_error t ~id:orig ~reply (Printf.sprintf "backend %s died" b.bname)
    end

let fan_out t ~orig ~reply akind fields =
  let a, sends =
    locked t (fun () ->
        let live = List.filter (fun b -> b.alive && b.client <> None) t.backends in
        let a =
          {
            aorig = orig;
            areply = reply;
            akind;
            waiting = List.length live;
            oks = 0;
            payloads = [];
          }
        in
        let sends =
          List.map
            (fun b ->
              let iid = fresh_id t in
              Hashtbl.replace t.inflight iid (b.bname, Member a);
              b.forwarded <- b.forwarded + 1;
              t.n_forwarded <- t.n_forwarded + 1;
              (b, Option.get b.client, iid))
            live
        in
        (a, sends))
  in
  if sends = [] then finish_agg t a
  else
    List.iter
      (fun ((b : backend), c, iid) ->
        if not (Transport_socket.Client.send c (rewrite_request ~iid fields)) then begin
          ignore (b : backend);
          let finished =
            locked t (fun () ->
                if Hashtbl.mem t.inflight iid then begin
                  Hashtbl.remove t.inflight iid;
                  a.waiting <- a.waiting - 1;
                  a.waiting = 0
                end
                else false)
          in
          if finished then finish_agg t a
        end)
      sends

(* ---------- the request path ---------- *)

let pick_round_robin t =
  locked t (fun () ->
      let live = List.filter (fun b -> b.alive && b.client <> None) t.backends in
      match live with
      | [] -> None
      | _ ->
        let n = List.length live in
        t.rr <- (t.rr + 1) mod n;
        Some (List.nth live t.rr))

let backend_named t name = List.find_opt (fun b -> b.bname = name) t.backends

let submit t ~reply line =
  locked t (fun () -> t.n_requests <- t.n_requests + 1);
  let { Protocol.id; v; req } = Protocol.parse_line line in
  (* the raw object, for forwarding with only the id rewritten — the
     "v" field rides along untouched, so each backend answers in the
     client's own dialect *)
  let fields =
    match Json.parse line with Ok (Json.Obj fs) -> fs | Ok _ | Error _ -> []
  in
  let refusing = locked t (fun () -> t.refusing) in
  match req with
  | Error msg ->
    locked t (fun () -> t.n_protocol_errors <- t.n_protocol_errors + 1);
    reply_line t reply (Protocol.error_response ~v ~id ~outcome:"error" msg)
  | Ok Protocol.Drain ->
    let first =
      locked t (fun () ->
          let f = not t.refusing in
          t.refusing <- true;
          f)
    in
    if first then begin
      event t [ ("event", Json.Str "fleet_drain") ];
      fan_out t ~orig:id ~reply:(Some reply) `Drain [ ("op", Json.Str "drain") ]
    end
    else begin
      (* idempotent: ack again without a second fan-out *)
      reply_line t reply
        (Protocol.response ~id
           [ ("outcome", Json.Str "ok"); ("draining", Json.Bool true) ]);
      locked t (fun () -> t.is_draining <- true)
    end
  | Ok Protocol.Ping -> fan_out t ~orig:id ~reply:(Some reply) `Ping [ ("op", Json.Str "ping") ]
  | Ok Protocol.Stats ->
    fan_out t ~orig:id ~reply:(Some reply) `Stats [ ("op", Json.Str "stats") ]
  | Ok (Protocol.Sleep _ | Protocol.Solve _ | Protocol.Resolve _) when refusing ->
    reply_line t reply
      (Protocol.error_response ~v ~id ~outcome:"draining"
         "router is draining; not accepting work")
  | Ok (Protocol.Sleep _) -> (
    match pick_round_robin t with
    | None -> answer_error ~v t ~id ~reply "no live backends"
    | Some b -> forward_single t b ~orig:id ~reply fields)
  | Ok (Protocol.Solve _ | Protocol.Resolve _) -> (
    (* solve and resolve shard identically: a resolve must land on the
       backend whose cache holds that instance's history, so both hash
       the same solve fingerprint onto the ring *)
    let p =
      match req with
      | Ok (Protocol.Solve p) -> p
      | Ok (Protocol.Resolve rp) -> rp.Protocol.base
      | Ok _ | Error _ -> assert false
    in
    match Protocol.fingerprint p with
    | Error msg ->
      locked t (fun () -> t.n_protocol_errors <- t.n_protocol_errors + 1);
      reply_line t reply (Protocol.error_response ~v ~id ~outcome:"error" msg)
    | Ok key -> (
      let shard = locked t (fun () -> if Ring.is_empty t.ring then None else Some (Ring.shard t.ring key)) in
      match shard with
      | None -> answer_error ~v t ~id ~reply "no live backends"
      | Some name -> (
        match backend_named t name with
        | None -> answer_error ~v t ~id ~reply (Printf.sprintf "backend %s unavailable" name)
        | Some b -> forward_single t b ~orig:id ~reply fields)))

(* ---------- lifecycle ---------- *)

let draining t = locked t (fun () -> t.is_draining)

let initiate_drain t =
  let first =
    locked t (fun () ->
        let f = not t.refusing in
        t.refusing <- true;
        t.is_draining <- true;
        f)
  in
  if first then begin
    event t [ ("event", Json.Str "fleet_drain") ];
    fan_out t ~orig:Json.Null ~reply:None `Drain [ ("op", Json.Str "drain") ]
  end

let await_drain t =
  initiate_drain t;
  (* every owed answer lands (backends drain and answer), or the grace
     runs out and the stragglers are errored *)
  let deadline = now () +. t.cfg.drain_grace_s in
  let rec wait () =
    let n = locked t (fun () -> Hashtbl.length t.inflight) in
    if n = 0 then ()
    else if now () > deadline then begin
      let leftovers =
        locked t (fun () ->
            let l =
              Hashtbl.fold (fun _ (owner, p) acc -> (owner, p) :: acc) t.inflight []
            in
            Hashtbl.reset t.inflight;
            l)
      in
      let finished = ref [] in
      List.iter
        (fun (owner, p) ->
          match p with
          | Single { orig; reply; _ } ->
            answer_error t ~id:orig ~reply
              (Printf.sprintf "backend %s did not answer before the drain deadline"
                 owner)
          | Member a ->
            let f =
              locked t (fun () ->
                  a.waiting <- a.waiting - 1;
                  a.waiting = 0)
            in
            if f then finished := a :: !finished)
        leftovers;
      List.iter (finish_agg t) !finished
    end
    else begin
      Unix.sleepf 0.02;
      wait ()
    end
  in
  wait ();
  Atomic.set t.stopped true;
  (* drop the links so blocked readers see EOF promptly *)
  List.iter
    (fun b ->
      match b.client with
      | Some c -> Transport_socket.Client.close c
      | None -> ())
    t.backends;
  List.iter
    (fun b ->
      match b.reader with
      | Some d ->
        Domain.join d;
        b.reader <- None
      | None -> ())
    t.backends;
  List.iter
    (fun b ->
      match b.pid with
      | Some pid ->
        reap ~grace_s:2.0 pid;
        b.pid <- None
      | None -> ())
    t.backends;
  let hists =
    let s = Obs.Metrics.Histogram.summary t.rtt_h in
    if s.Obs.Metrics.Histogram.count > 0 then [ ("route_rtt_ms", s) ] else []
  in
  Engine.Run_report.make ~solver:"route" ~status:"drained" ~hists
    ~wall_s:(now () -. t.started)
    (Engine.Telemetry.create ())

let metrics t =
  Obs.Metrics.snapshot ()
  @ [ (Obs.Metrics.Histogram.name t.rtt_h, Obs.Metrics.Histogram t.rtt_h) ]

(* ---------- construction ---------- *)

let stdout_events line =
  print_string line;
  print_newline ();
  flush stdout

let create ?(cfg = default_config ()) ?(events = stdout_events) targets =
  if targets = [] then invalid_arg "Router.create: need at least one backend";
  let names = List.map target_name targets in
  let distinct = List.sort_uniq String.compare names in
  if List.length distinct <> List.length names then
    invalid_arg "Router.create: backend names must be distinct";
  let backends =
    List.map
      (fun target ->
        {
          bname = target_name target;
          btarget = target;
          client = None;
          pid = None;
          alive = false;
          forwarded = 0;
          deaths = 0;
          respawns = 0;
          reader = None;
        })
      targets
  in
  let t =
    {
      cfg;
      events;
      emit_lock = Mutex.create ();
      lock = Mutex.create ();
      ring = Ring.make ~vnodes:cfg.vnodes names;
      backends;
      inflight = Hashtbl.create 64;
      next_id = 0;
      rr = 0;
      refusing = false;
      is_draining = false;
      stopped = Atomic.make false;
      rtt_h = Obs.Metrics.Histogram.create ~lo:1e-3 ~hi:1e7 "route_rtt_ms";
      started = now ();
      n_requests = 0;
      n_forwarded = 0;
      n_errors = 0;
      n_deaths = 0;
      n_respawns = 0;
      n_protocol_errors = 0;
    }
  in
  (* bring every backend up before accepting traffic; a failure tears
     down whatever already started *)
  let rec boot = function
    | [] -> ()
    | b :: rest -> (
      match connect_target ~timeout_s:cfg.spawn_timeout_s b.btarget with
      | Ok (c, pid) ->
        b.client <- Some c;
        b.pid <- pid;
        b.alive <- true;
        b.reader <- Some (Domain.spawn (fun () -> reader_loop t b));
        boot rest
      | Error msg ->
        Atomic.set t.stopped true;
        List.iter
          (fun b ->
            (match b.client with
            | Some c -> Transport_socket.Client.close c
            | None -> ());
            (match b.reader with
            | Some d ->
              Domain.join d;
              b.reader <- None
            | None -> ());
            match b.pid with
            | Some pid ->
              reap ~grace_s:0.5 pid;
              b.pid <- None
            | None -> ())
          t.backends;
        failwith (Printf.sprintf "Router.create: %s: %s" b.bname msg))
  in
  boot backends;
  t

let core t =
  {
    Service.handler =
      {
        Transport.submit = (fun ~reply line -> submit t ~reply line);
        draining = (fun () -> draining t);
      };
    initiate_drain = (fun () -> initiate_drain t);
    draining = (fun () -> draining t);
    await_drain = (fun () -> await_drain t);
    stats_json = (fun () -> stats_json t);
    metrics = (fun () -> metrics t);
  }
