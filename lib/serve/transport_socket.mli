(** Unix-domain / TCP socket transport — many concurrent connections,
    same newline framing as {!Transport_stdio} (one UTF-8 JSON value
    per [\n]-terminated line; CR trimmed; a final unterminated line at
    EOF is processed).

    The listener half plugs into {!Service.run}; the {!Client} half is
    what the router's backend links and [hslb loadgen] speak. SIGPIPE
    is ignored process-wide on first use — a reply racing a
    disconnecting peer must be a no-op, not a crash. *)

type addr =
  | Unix_path of string  (** [unix:PATH] *)
  | Tcp of string * int  (** [tcp:HOST:PORT]; empty host means 127.0.0.1 *)

(** Parse [unix:PATH] or [tcp:HOST:PORT]. *)
val addr_of_string : string -> (addr, string) result

val addr_to_string : addr -> string

type t

(** [listen ~stop addr] — bind and listen. A stale Unix socket file is
    unlinked first; TCP listeners set [SO_REUSEADDR]. [stop] is polled
    by [accept] (0.05 s cadence) so drain unblocks it.
    @raise Unix.Unix_error when binding fails. *)
val listen : ?backlog:int -> stop:(unit -> bool) -> addr -> t

(** The actually-bound address — resolves a [tcp:HOST:0] wildcard port
    to the kernel-assigned one. *)
val bound_addr : t -> addr

(** Pack for {!Service.run} / {!Transport.drive}. *)
val listener : t -> Transport.listener

(** Close the listening fd and unlink a Unix socket path. Idempotent;
    live connections are untouched. *)
val shutdown : t -> unit

(** A connecting peer: framed sends and timeout-bounded receives. *)
module Client : sig
  type t

  (** @raise Unix.Unix_error when the endpoint refuses. *)
  val connect : addr -> t

  val peer : t -> string

  (** One frame out (atomic under an internal lock, so multiple
      domains may share a client). [false] once the peer is gone. *)
  val send : t -> string -> bool

  (** Next complete frame, waiting at most [timeout_s] (default
      0.05 s). [`Eof] is final. *)
  val recv : ?timeout_s:float -> t -> [ `Line of string | `Eof | `Timeout ]

  val close : t -> unit
end
