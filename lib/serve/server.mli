(** The long-lived solve service behind [hslb serve].

    One {!t} owns a bounded request queue, a {!Runtime.Pool} worker set
    of solver domains, a {!Runtime.Cache} of proven-optimal allocations
    keyed by {!Hslb.Alloc_model.fingerprint}, and an in-flight dedupe
    table over the same key. The core is transport-agnostic: a
    transport ({!Transport_stdio}, {!Transport_socket}, or a test
    harness) feeds raw request lines to {!submit} together with the
    reply sink of the connection each line arrived on; every response
    goes out through that sink, one JSON line per admitted or rejected
    request, in completion order (responses carry the request [id], so
    ordering is not part of the contract). Sinks from different
    connections may be called concurrently from worker domains but
    never interleave mid-line — all of them are serialized under one
    internal emit lock.

    {2 Admission control}

    [submit] answers inline — without occupying a worker — for
    malformed requests ([outcome "error"]), for requests arriving past
    the queue high-water mark ([outcome "overloaded"]; the queue never
    grows unboundedly), and for requests arriving after drain started
    ([outcome "draining"]). Identical solves (equal fingerprints) still
    waiting in the queue are deduped: followers attach to the queued
    leader and receive its result when it completes, marked
    [dedup true]. Once a solve has {e started} an identical request
    queues its own — the running solve may be cut short by the original
    request's deadline, so its answer is only shared with followers
    attached before it began (proven optima reach later requests
    through the cache instead).

    {2 Deadlines}

    A request's [deadline_ms] is end-to-end: queue wait counts against
    it. At the moment a worker picks the request up, the remaining time
    is mapped onto an {!Engine.Budget} wall-clock deadline (so the
    existing cooperative-cancellation machinery enforces it); a request
    whose deadline was fully consumed while queued is answered
    [outcome "expired"] without solving.

    {2 Drain}

    {!initiate_drain} (what the SIGTERM handler calls) stops admission,
    wakes idle workers, and starts a grace timer; when the grace
    elapses, the server-wide drain {!Engine.Cancel} token — linked into
    every in-flight budget — is cancelled, so long solves unwind with
    their best incumbent instead of being lost. {!await_drain} blocks
    until the queue is empty and every worker domain has been joined
    (no orphaned domains), then returns the final {!Engine.Run_report}
    with the server's merged telemetry counters. Every admitted
    request is answered before [await_drain] returns. *)

type config = {
  jobs : int;  (** worker domains (the transport domain is extra) *)
  queue_limit : int;  (** admission high-water mark, >= 1 *)
  cache_capacity : int;
  drain_grace_s : float;
      (** how long after drain starts in-flight/queued solves may keep
          running before the drain token budget-cancels them *)
  default_solver : Engine.Solver_choice.t;
  default_strategy : Runtime.Portfolio.strategy;
  audit : bool;
      (** re-verify each solve's certificate with the independent
          auditor and include the verdict in the response envelope *)
  policy : Arena.Policy.t;
      (** scenario-class → scheduler table consulted when a solve
          carries a ["policy"] hint: the ok response then includes a
          [policy] object naming the declared scenario class and the
          recommended scheduler. Advisory only — it never changes the
          solve or the dedupe/cache key, and every deduped follower
          gets the recommendation for {e its own} hint. *)
}

(** jobs from {!Runtime.Config.jobs}, queue limit 64, cache capacity
    128, grace 2 s, solver oa, strategy auto, audit on, policy
    {!Arena.Policy.builtin}. *)
val default_config : unit -> config

type t

(** [create ?telemetry config ~emit] — start the worker domains.
    [emit] is the {e default} reply sink (used when {!submit} is called
    without [?reply] — the single-connection transports) and the sink
    for server-level event lines; it receives lines without a trailing
    newline and is called from worker domains and from [submit]'s
    caller under an internal lock, so it needs no locking of its own.
    [telemetry], when given, receives one JSON line per finished
    request (queue wait, solve wall, cache hit, dedup, lane winner) —
    the replayable trace.
    @raise Invalid_argument on a non-positive [jobs]/[queue_limit]. *)
val create : ?telemetry:(string -> unit) -> config -> emit:(string -> unit) -> t

(** [submit ?reply t line] — feed one raw request line. Responses for
    this request arrive through [reply] (default: the server-wide
    [emit]) — inline for rejections, ping, stats and drain
    acknowledgements; from a worker domain for solves and sleeps. A
    multi-connection transport passes each connection's writer here;
    the sink must stay callable after the connection dies (write to a
    dead peer should be a no-op, not an exception). *)
val submit : ?reply:(string -> unit) -> t -> string -> unit

val draining : t -> bool

(** Stop admission and start the drain-grace timer. Idempotent. This is
    what the SIGTERM path ultimately calls ({!Service.run}'s handler
    only sets a flag; the transport loop notices it and calls this — it
    takes the server mutex, so it must not run {e inside} a signal
    handler). *)
val initiate_drain : t -> unit

(** [await_drain t] — {!initiate_drain} (idempotent), then block until
    all queued work is answered and every worker domain is joined.
    Returns the final run report (solver ["serve"], merged counters,
    wall time = server uptime). *)
val await_drain : t -> Engine.Run_report.t

(** Server counters as a one-line JSON object (also what the [stats]
    op answers). Includes a [latency] object with queue-wait and
    solve-latency quantile summaries (p50/p90/p99, milliseconds) from
    the server's always-on histograms. *)
val stats_json : t -> string

(** The process-wide {!Obs.Metrics} registry snapshot plus this
    server's own latency histograms ([serve_queue_wait_ms],
    [serve_solve_ms]) — the exposition set behind [--metrics-out],
    ready for {!Obs.Export.prometheus}. *)
val metrics : t -> (string * Obs.Metrics.metric) list
