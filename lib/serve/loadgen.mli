(** Trace replay and the 1-vs-N fleet benchmark behind
    [hslb loadgen].

    A {!trace_spec} generates a deterministic request mix (seeded;
    replays are reproducible): [distinct] solve instances cycled over
    [requests] lines, with optional sleeps, tiny-deadline solves that
    provoke [expired], and a per-solve [deadline_ms]. {!run} replays a
    trace against an {!endpoint} — a socket address or an in-process
    handler — pacing to [rate_rps], capping the in-flight [window],
    and recording per-request latency, outcomes, and the cache-hit /
    dedup telemetry of each answer. A [stats] request is appended
    after the measured window closes, so [server_stats] carries the
    endpoint's own final counters (for a router: per-backend stats).

    {!fleet_bench} replays one trace twice through an in-process
    {!Router} over spawned backends — once with a single backend, once
    with [backends] — and reports the throughput ratio. On one core
    the fleet's edge is cache locality, not parallelism: pick
    [distinct] larger than a backend's cache capacity and the single
    backend thrashes its LRU while each shard of the fleet stays
    resident. *)

type trace_spec = {
  requests : int;
  distinct : int;  (** distinct solve instances, cycled *)
  classes : int;  (** fragment classes per instance *)
  nodes : int;  (** total node budget per instance *)
  sleep_every : int;  (** every k-th request is a sleep; 0 = never *)
  sleep_ms : float;
  expire_every : int;  (** every k-th solve gets a tiny deadline; 0 = never *)
  tiny_deadline_ms : float;
  deadline_ms : float option;  (** deadline on ordinary solves *)
  seed : int;
}

(** 200 requests, 48 distinct instances, 3 classes, 16 nodes, no
    sleeps, no expiries, seed 1. *)
val default_spec : unit -> trace_spec

(** The request objects, in order, without ids ({!run} assigns
    positions). @raise Invalid_argument on non-positive counts. *)
val make_trace : trace_spec -> Json.t list

(** [trace_of_scenario sc] — turn an arena workload scenario into a
    replayable request trace (the [hslb loadgen --scenario] path):
    each phase gap becomes a [sleep] op, each task a [solve] whose
    model is bucketed by task cost (nearest power of two, so dedupe
    and the cache see bounded reuse) and which carries the scenario
    class as its [policy] hint. *)
val trace_of_scenario : Arena.Scenario.t -> Json.t list

type endpoint =
  | Net of Transport_socket.addr
  | Inproc of (reply:(string -> unit) -> string -> unit)

type run_result = {
  label : string;
  requests : int;
  answered : int;
  wall_s : float;  (** measured window: first send to last answer *)
  throughput_rps : float;
  outcomes : (string * int) list;  (** outcome -> count, sorted *)
  cache_hits : int;
  dedups : int;
  latency : Obs.Metrics.Histogram.summary;  (** ms, send to answer *)
  server_stats : Json.t;  (** the post-run [stats] answer; [Null] if lost *)
}

(** [run endpoint trace] — replay. [drain_at_end] sends a [drain] op
    after the stats probe and waits for its ack (the endpoint shuts
    down). [timeout_s] (default 120) bounds the wait for answers;
    unanswered requests are missing from [answered]. *)
val run :
  ?label:string ->
  ?rate_rps:float ->
  ?window:int ->
  ?timeout_s:float ->
  ?drain_at_end:bool ->
  endpoint ->
  Json.t list ->
  run_result

val result_json : run_result -> Json.t

type bench = {
  spec : trace_spec;
  backends : int;
  single : run_result;
  fleet : run_result;
  speedup : float;  (** fleet throughput / single-backend throughput *)
}

(** Replay one trace against a 1-backend and an [backends]-backend
    in-process router, each over freshly spawned [prog] serve
    processes ([backend_args] are the CLI args before [--listen];
    sockets live under [dir]). @raise Invalid_argument if
    [backends < 2]. *)
val fleet_bench :
  ?spec:trace_spec ->
  ?rate_rps:float ->
  ?window:int ->
  ?timeout_s:float ->
  prog:string ->
  backend_args:string list ->
  dir:string ->
  backends:int ->
  unit ->
  bench

val bench_json : bench -> Json.t

(** Write [bench_json] (one line) to [path] — BENCH_fleet.json. *)
val write_bench : string -> bench -> unit
