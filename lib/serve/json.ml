include Obs.Json
