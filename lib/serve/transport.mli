(** The transport abstraction behind every [hslb] serving process.

    The serve core ({!Server}) and the fleet router ({!Router}) are
    written against exactly two types here: {!conn} — a framed,
    line-oriented connection (read-line / write-line / close) — and
    {!handler} — where a transport pumps incoming lines, each paired
    with the reply sink of the connection it arrived on. Two
    implementations ship: {!Transport_stdio} (the original stdin/stdout
    NDJSON path, byte-compatible with the pre-split server) and
    {!Transport_socket} (Unix-domain and TCP listeners with the same
    newline framing). New transports implement {!S} and plug into
    {!Service.run} without touching the core.

    {2 Framing contract}

    One UTF-8 JSON value per line, terminated by a single [\n]
    (carriage returns are tolerated and trimmed). Blank lines are
    ignored. A final unterminated line at EOF is processed as if
    terminated. Responses use the same framing, written atomically —
    the core serializes every sink under one lock, so concurrent
    worker domains never interleave bytes mid-line. *)

type conn = {
  peer : string;  (** human-readable endpoint, for logs and hooks *)
  read_line : unit -> string option;
      (** blocking; [None] is final: peer EOF or the transport's stop
          condition (drain) fired. Implementations poll their stop
          condition while blocked so drain unwedges every reader. *)
  write_line : string -> unit;
      (** one frame out; must be a no-op (never an exception) once the
          peer is gone — replies can race a disconnecting client *)
  close : unit -> unit;  (** idempotent *)
}

module type S = sig
  type t

  val name : t -> string

  (** Block until the next connection; [None] (final) once the
      listener was {!shutdown} or its stop condition fired. *)
  val accept : t -> conn option

  (** Stop producing connections, unblock a blocked {!accept}.
      Idempotent; existing connections are left to drain. *)
  val shutdown : t -> unit
end

(** A listener packed with its implementation — what {!Service.run}
    and {!drive} consume. *)
type listener = Listener : (module S with type t = 'a) * 'a -> listener

val listener_name : listener -> string
val accept : listener -> conn option
val shutdown : listener -> unit

(** The service side of the interface: {!Server.t} and {!Router.t}
    both reduce to one of these (see {!Service.core}), which is all a
    transport knows about them. *)
type handler = {
  submit : reply:(string -> unit) -> string -> unit;
      (** one raw request line from [reply]'s connection *)
  draining : unit -> bool;  (** true once the service stops accepting *)
}

(** Connection lifecycle hooks: [on_connect] fires on the accept loop's
    domain before the first read, [on_disconnect] on the connection's
    domain after its last. *)
type hooks = { on_connect : conn -> unit; on_disconnect : conn -> unit }

val no_hooks : hooks

(** [serve_conn handler conn] — pump one connection to completion on
    the calling domain: read lines, submit each with [conn.write_line]
    as the reply sink, close when the stream ends. *)
val serve_conn : handler -> conn -> unit

(** [drive ?hooks listener handler] — the generic accept loop: one
    spawned domain per connection, every domain joined before
    returning. Returns once [accept] answers [None]; the runner
    triggers that by {!shutdown} when the handler starts draining. *)
val drive : ?hooks:hooks -> listener -> handler -> unit
