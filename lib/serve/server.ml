(* The long-lived solve service, transport-agnostic: every request
   carries its own reply sink (the connection it arrived on), so one
   server core can sit behind stdio, a socket listener, or an
   in-process test harness unchanged. One mutex guards the queue, the
   dedupe table and the counters; workers never hold it while solving
   or emitting. All reply sinks share [emit_lock] so lines from
   different domains cannot interleave even on the same fd. *)

type config = {
  jobs : int;
  queue_limit : int;
  cache_capacity : int;
  drain_grace_s : float;
  default_solver : Engine.Solver_choice.t;
  default_strategy : Runtime.Portfolio.strategy;
  audit : bool;
  policy : Arena.Policy.t;
}

let default_config () =
  {
    jobs = Runtime.Config.jobs ();
    queue_limit = 64;
    cache_capacity = 128;
    drain_grace_s = 2.0;
    default_solver = Engine.Solver_choice.Oa;
    default_strategy = `Auto;
    audit = true;
    policy = Arena.Policy.builtin;
  }

(* a solve admitted to the queue; [followers] are later identical
   requests (same fingerprint) that attached instead of queueing their
   own solve — they get the leader's result when it lands *)
type solve_job = {
  params : Protocol.solve_params;
  specs : Hslb.Alloc_model.spec list;
  key : string;
  (* (request id, arrival time, that request's reply sink, that
     request's own policy hint, that request's protocol version). The
     dedupe key is the pure solve fingerprint — the policy hint is
     advisory and must not fragment the cache — so each follower keeps
     its own hint and gets its own recommendation back, not the
     leader's; likewise each follower is answered in its own protocol
     dialect. *)
  mutable followers : (Json.t * float * (string -> unit) * Arena.Scenario.cls option * int) list;
}

(* a resolve admitted to the queue: the incumbent allocation plus
   fresh observations, against the specs as the model file/text gave
   them (the online update is applied by the worker). Resolve requests
   are never deduped: two resolves with identical models may carry
   different observations, and the whole point is that their effect on
   the answer is decided per-request by the certificate. *)
type resolve_job = { rparams : Protocol.resolve_params; rspecs : Hslb.Alloc_model.spec list }

type work = W_solve of solve_job | W_resolve of resolve_job | W_sleep of float

type job = { jid : Json.t; v : int; arrival : float; reply : string -> unit; work : work }

type t = {
  cfg : config;
  emit : string -> unit;  (* event lines + default reply sink; see [reply_line] *)
  emit_lock : Mutex.t;
  telemetry : (string -> unit) option;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  pending : (string, solve_job) Hashtbl.t;
  cache : Hslb.Alloc_model.allocation Runtime.Cache.t;
  tally : Engine.Telemetry.t;  (* merged under [lock] *)
  (* per-server latency distributions (standalone, not in the global
     registry, so concurrent servers in one process — e.g. tests —
     do not share state). Lock-free updates; always on, because the
     stats op reports quantiles whether or not tracing is enabled. *)
  qwait_h : Obs.Metrics.Histogram.t;
  solve_h : Obs.Metrics.Histogram.t;
  drain_tok : Engine.Cancel.t;
  mutable is_draining : bool;
  mutable workers : Runtime.Pool.worker_set option;
  mutable watchdog : unit Domain.t option;
  workers_done : bool Atomic.t;
  started : float;
  (* counters, all under [lock] *)
  mutable n_accepted : int;
  mutable n_served : int;
  mutable n_overloaded : int;
  mutable n_drain_rejected : int;
  mutable n_deduped : int;
  mutable n_expired : int;
  mutable n_protocol_errors : int;
  mutable n_policy_hints : int;
  mutable n_resolved : int;
  mutable n_resolve_skipped : int;
  mutable n_placed : int;
}

(* resolve: certificate threshold when the request names none *)
let default_epsilon = 0.05

let now () = Unix.gettimeofday ()

(* every line out — whatever connection it belongs to — goes through
   the one emit lock, so responses from different worker domains never
   interleave mid-line even when they share a fd *)
let reply_line t sink line =
  Mutex.lock t.emit_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.emit_lock) (fun () -> sink line)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---------- response + telemetry envelopes ---------- *)

type request_tele = {
  queue_wait_ms : float;
  solve_wall_ms : float;
  cache_hit : bool;
  dedup : bool;
  lane_winner : string option;
}

let tele_fields r =
  [
    ("queue_wait_ms", Json.Num (r.queue_wait_ms));
    ("solve_wall_ms", Json.Num (r.solve_wall_ms));
    ("cache_hit", Json.Bool r.cache_hit);
    ("dedup", Json.Bool r.dedup);
    ( "lane_winner",
      match r.lane_winner with Some w -> Json.Str w | None -> Json.Null );
  ]

let telemetry_line t ~id ~op ~outcome ~status r =
  match t.telemetry with
  | None -> ()
  | Some sink ->
    (* monotonized emit timestamp + instantaneous queue depth, so the
       traffic can be replayed in order against the metrics; safe to
       take [lock] here — no caller holds it while emitting *)
    let depth = locked t (fun () -> Queue.length t.queue) in
    sink
      (Json.to_string
         (Json.Obj
            ([
               ("event", Json.Str "request");
               ("ts_mono_s", Json.Num (Obs.Clock.now_s ()));
               ("id", id);
               ("op", Json.Str op);
               ("outcome", Json.Str outcome);
               ( "status",
                 match status with Some s -> Json.Str s | None -> Json.Null );
               ("queue_depth", Json.Num (float_of_int depth));
             ]
            @ tele_fields r)))

let zero_tele ~queue_wait_ms =
  { queue_wait_ms; solve_wall_ms = 0.; cache_hit = false; dedup = false; lane_winner = None }

(* ---------- the certified envelope ---------- *)

(* same verdict the CLI's --audit prints: Min_max allocations carry a
   MINLP certificate re-checkable against the rebuilt model; the exact
   customized paths certify in the nodes-per-class space, so there is
   no raw model to re-check *)
let audit_verdict (p : Protocol.solve_params) specs
    (alloc : Hslb.Alloc_model.allocation) =
  match alloc.Hslb.Alloc_model.certificate with
  | None -> "no certificate emitted"
  | Some cert -> (
    match p.Protocol.objective with
    | Hslb.Objective.Min_max -> (
      let problem, _, _ =
        Hslb.Alloc_model.build_minlp ~objective:p.Protocol.objective
          ~n_total:p.Protocol.n_total specs
      in
      match Audit.check_minlp problem cert with
      | Ok () ->
        Printf.sprintf "verified (%s)" cert.Engine.Certificate.producer
      | Error _ as verdict ->
        Printf.sprintf "REJECTED: %s" (Audit.summary verdict))
    | Hslb.Objective.Max_min | Hslb.Objective.Min_sum ->
      Printf.sprintf "exact-method (%s)" cert.Engine.Certificate.producer)

(* the policy annotation on an ok response: the scenario class the
   client declared, and the scheduler the arena's regret matrix crowned
   for it. Absent when the request carried no hint. *)
let policy_fields t = function
  | None -> []
  | Some cls ->
    [
      ( "policy",
        Json.Obj
          [
            ("scenario", Json.Str (Arena.Scenario.class_to_string cls));
            ("scheduler", Json.Str (Arena.Policy.recommend t.cfg.policy cls));
          ] );
    ]

let ok_response ~v ~id ?(extra = []) (alloc : Hslb.Alloc_model.allocation) ~audit ~policy r =
  Protocol.response ~v ~id
    ([
      ("outcome", Json.Str "ok");
      ( "status",
        Json.Str (Minlp.Solution.status_to_string alloc.Hslb.Alloc_model.status) );
      ("makespan", Json.Num alloc.Hslb.Alloc_model.predicted_makespan);
      ( "nodes_per_task",
        Json.Arr
          (Array.to_list
             (Array.map (fun n -> Json.Num (float_of_int n))
                alloc.Hslb.Alloc_model.nodes_per_task)) );
      ( "predicted_times",
        Json.Arr
          (Array.to_list
             (Array.map (fun v -> Json.Num v) alloc.Hslb.Alloc_model.predicted_times)) );
      ("audit", match audit with Some s -> Json.Str s | None -> Json.Null);
    ]
    @ extra @ policy
    @ [ ("telemetry", Json.Obj (tele_fields r)) ])

let failed_response ~v ~id status r =
  Protocol.response ~v ~id
    [
      ("outcome", Json.Str "error");
      ( "error",
        Json.Str ("no allocation: " ^ Minlp.Solution.status_to_string status) );
      ("status", Json.Str (Minlp.Solution.status_to_string status));
      ("telemetry", Json.Obj (tele_fields r));
    ]

(* ---------- workers ---------- *)

let respond_solve t ~v ~id ~reply ~op ?extra result ~audit ~policy r =
  (match result with
  | Ok alloc -> reply_line t reply (ok_response ~v ~id ?extra alloc ~audit ~policy r)
  | Error st -> reply_line t reply (failed_response ~v ~id st r));
  let outcome, status =
    match result with
    | Ok (alloc : Hslb.Alloc_model.allocation) ->
      ("ok", Some (Minlp.Solution.status_to_string alloc.Hslb.Alloc_model.status))
    | Error st -> ("error", Some (Minlp.Solution.status_to_string st))
  in
  telemetry_line t ~id ~op ~outcome ~status r

let process_solve t (job : job) (sj : solve_job) =
  let start = now () in
  let queue_wait = start -. job.arrival in
  let p = sj.params in
  (* detach from the dedupe table first: once the solve begins, a new
     identical request queues its own rather than waiting behind a
     result that may already reflect an older deadline *)
  let followers =
    locked t (fun () ->
        Hashtbl.remove t.pending sj.key;
        let fs = sj.followers in
        sj.followers <- [];
        fs)
  in
  let follower_tele (arr : float) tele =
    { tele with dedup = true; queue_wait_ms = Float.max 0. ((start -. arr) *. 1000.) }
  in
  let expired =
    match p.Protocol.deadline_ms with
    | Some ms -> queue_wait *. 1000. >= ms
    | None -> false
  in
  if expired then begin
    let answer ~v id reply tele =
      Obs.Metrics.Histogram.observe t.qwait_h tele.queue_wait_ms;
      reply_line t reply
        (Protocol.error_response ~v ~id ~outcome:"expired"
           (Printf.sprintf "deadline (%.0f ms) consumed by %.0f ms of queue wait"
              (Option.get p.Protocol.deadline_ms)
              tele.queue_wait_ms));
      telemetry_line t ~id ~op:"solve" ~outcome:"expired" ~status:None tele
    in
    answer ~v:job.v job.jid job.reply (zero_tele ~queue_wait_ms:(queue_wait *. 1000.));
    List.iter
      (fun (fid, arr, freply, _, fv) ->
        answer ~v:fv fid freply (follower_tele arr (zero_tele ~queue_wait_ms:0.)))
      followers;
    locked t (fun () ->
        t.n_expired <- t.n_expired + 1 + List.length followers;
        t.n_served <- t.n_served + 1 + List.length followers)
  end
  else begin
    let deadline_s = Option.map (fun ms -> (ms /. 1000.) -. queue_wait) p.Protocol.deadline_ms in
    let budget = Engine.Budget.arm (Engine.Budget.make ?deadline_s ~cancel:t.drain_tok ()) in
    let solver = Option.value p.Protocol.solver ~default:t.cfg.default_solver in
    let strategy = Option.value p.Protocol.strategy ~default:t.cfg.default_strategy in
    let race_report = ref None in
    let req_tally = Engine.Telemetry.create () in
    (* the server owns the memoization (one find, one put) so its
       hit/miss counters stay exact; the rule matches Alloc_model's
       internal one — only proven optima are replayable *)
    let outcome =
      match Runtime.Cache.find t.cache sj.key with
      | Some alloc -> `Solved (Ok alloc, true)
      | None -> (
        match
          Hslb.Alloc_model.solve ~strategy ~solver ~objective:p.Protocol.objective
            ~budget ~trace:req_tally ~race_report ~n_total:p.Protocol.n_total sj.specs
        with
        | r ->
          (match r with
          | Ok alloc when alloc.Hslb.Alloc_model.status = Minlp.Solution.Optimal ->
            Runtime.Cache.put t.cache sj.key alloc
          | Ok _ | Error _ -> ());
          `Solved (r, false)
        | exception e ->
          (* a solver crash must still answer the leader AND every
             attached follower, or admitted requests would be lost *)
          `Crashed (Printexc.to_string e))
    in
    let solve_wall = Engine.Budget.elapsed_s budget in
    Obs.Metrics.Histogram.observe t.solve_h (solve_wall *. 1000.);
    Obs.Metrics.Histogram.observe t.qwait_h (queue_wait *. 1000.);
    List.iter
      (fun (_, arr, _, _, _) ->
        Obs.Metrics.Histogram.observe t.qwait_h
          (Float.max 0. ((start -. arr) *. 1000.)))
      followers;
    let tele_of cache_hit =
      {
        queue_wait_ms = queue_wait *. 1000.;
        solve_wall_ms = solve_wall *. 1000.;
        cache_hit;
        dedup = false;
        lane_winner = Option.map (fun r -> r.Engine.Run_report.winner) !race_report;
      }
    in
    (match outcome with
    | `Solved (result, cache_hit) ->
      let audit =
        match result with
        | Ok alloc when t.cfg.audit -> Some (audit_verdict p sj.specs alloc)
        | Ok _ | Error _ -> None
      in
      (* the placement annotation: rebuild the instance with the solved
         predicted times as durations (the request-level zero-duration
         shape was already validated at submit) and run the comm-aware
         search. Computed once; followers carry the same section. *)
      let place_extra =
        match (result, p.Protocol.place) with
        | Ok alloc, Some pl -> (
          let names = Protocol.spec_names sj.specs in
          let duration_s =
            Array.init (Array.length names) (fun c ->
                Array.make pl.Protocol.place_groups
                  alloc.Hslb.Alloc_model.predicted_times.(c))
          in
          match Protocol.place_instance ~duration_s ~names pl with
          | Error msg -> [ ("place", Json.Obj [ ("error", Json.Str msg) ]) ]
          | Ok inst -> (
            match Place.Optimizer.optimize inst with
            | assignment ->
              let e = Place.Model.eval inst assignment in
              locked t (fun () -> t.n_placed <- t.n_placed + 1);
              [
                ( "place",
                  Json.Obj
                    [
                      ( "assignment",
                        Json.Arr
                          (Array.to_list
                             (Array.map (fun g -> Json.Num (float_of_int g)) assignment)) );
                      ("groups", Json.Num (float_of_int (Place.Model.num_groups inst)));
                      ("makespan_s", Json.Num e.Place.Model.makespan_s);
                      ("comm_cost_s", Json.Num e.Place.Model.comm_cost_s);
                      ("total_s", Json.Num e.Place.Model.total_s);
                    ] );
              ]
            | exception Place.Optimizer.No_feasible msg ->
              [ ("place", Json.Obj [ ("error", Json.Str msg) ]) ]))
        | (Ok _ | Error _), _ -> []
      in
      let tele = tele_of cache_hit in
      respond_solve t ~v:job.v ~id:job.jid ~reply:job.reply ~op:"solve" ~extra:place_extra
        result ~audit ~policy:(policy_fields t p.Protocol.policy) tele;
      List.iter
        (fun (fid, arr, freply, fpolicy, fv) ->
          respond_solve t ~v:fv ~id:fid ~reply:freply ~op:"solve" ~extra:place_extra result
            ~audit ~policy:(policy_fields t fpolicy) (follower_tele arr tele))
        followers
    | `Crashed msg ->
      let answer ~v id reply tele =
        reply_line t reply
          (Protocol.error_response ~v ~id ~outcome:"error" ("internal error: " ^ msg));
        telemetry_line t ~id ~op:"solve" ~outcome:"error" ~status:None tele
      in
      let tele = tele_of false in
      answer ~v:job.v job.jid job.reply tele;
      List.iter
        (fun (fid, arr, freply, _, fv) -> answer ~v:fv fid freply (follower_tele arr tele))
        followers);
    locked t (fun () ->
        Engine.Telemetry.merge_into t.tally req_tally;
        t.n_served <- t.n_served + 1 + List.length followers)
  end

(* ---------- resolve: online update, certificate, warm re-solve ---------- *)

(* fold the request's fresh observations into each class's law with
   rank-one online updates; classes the request says nothing about keep
   their coefficients. Deterministically seeded: the rng only matters
   if the online state decides a full multi-start refit is needed. *)
let updated_specs (rj : resolve_job) =
  List.map
    (fun (spec : Hslb.Alloc_model.spec) ->
      let fc = spec.Hslb.Alloc_model.fc in
      let name = fc.Hslb.Classes.cls.Hslb.Classes.name in
      match List.assoc_opt name rj.rparams.Protocol.observe with
      | None | Some [||] -> spec
      | Some samples ->
        let fit0 = fc.Hslb.Classes.fit in
        let ol =
          Hslb.Fitting.Online.of_law ~rng:(Numerics.Rng.create 42) fit0.Hslb.Fitting.law
        in
        Hslb.Fitting.Online.observe_all ol samples;
        let fit = { fit0 with Hslb.Fitting.law = Hslb.Fitting.Online.law ol } in
        { spec with Hslb.Alloc_model.fc = { fc with Hslb.Classes.fit } })
    rj.rspecs

let sensitivity_classes ~n_total specs =
  List.map
    (fun (s : Hslb.Alloc_model.spec) ->
      {
        Audit.Sensitivity.law = s.Hslb.Alloc_model.fc.Hslb.Classes.fit.Hslb.Fitting.law;
        count = s.Hslb.Alloc_model.fc.Hslb.Classes.cls.Hslb.Classes.count;
        n_min = s.Hslb.Alloc_model.n_min;
        (* clamp the open-ended default box to the budget: no class can
           be allocated more than n_total, so this stays a relaxation *)
        n_max = min s.Hslb.Alloc_model.n_max n_total;
        allowed = s.Hslb.Alloc_model.allowed;
      })
    specs

let certificate_fields = function
  | None -> []
  | Some (c : Audit.Sensitivity.certificate) ->
    [
      ( "certificate",
        Json.Obj
          [
            ("incumbent", Json.Num c.Audit.Sensitivity.incumbent_obj);
            ("bound", Json.Num c.Audit.Sensitivity.relaxation_bound);
            ("gap_rel", Json.Num c.Audit.Sensitivity.gap_rel);
            ("eps", Json.Num c.Audit.Sensitivity.eps);
          ] );
    ]

let process_resolve t (job : job) (rj : resolve_job) =
  let start = now () in
  let queue_wait = start -. job.arrival in
  let rp = rj.rparams in
  let p = rp.Protocol.base in
  let v = job.v in
  let expired =
    match p.Protocol.deadline_ms with
    | Some ms -> queue_wait *. 1000. >= ms
    | None -> false
  in
  let finish_tele tele = Obs.Metrics.Histogram.observe t.qwait_h tele.queue_wait_ms in
  if expired then begin
    let tele = zero_tele ~queue_wait_ms:(queue_wait *. 1000.) in
    finish_tele tele;
    reply_line t job.reply
      (Protocol.error_response ~v ~id:job.jid ~outcome:"expired"
         (Printf.sprintf "deadline (%.0f ms) consumed by %.0f ms of queue wait"
            (Option.get p.Protocol.deadline_ms)
            tele.queue_wait_ms));
    telemetry_line t ~id:job.jid ~op:"resolve" ~outcome:"expired" ~status:None tele;
    locked t (fun () ->
        t.n_expired <- t.n_expired + 1;
        t.n_served <- t.n_served + 1)
  end
  else begin
    let specs = updated_specs rj in
    let k = List.length specs in
    if Array.length rp.Protocol.prev <> k then begin
      let tele = zero_tele ~queue_wait_ms:(queue_wait *. 1000.) in
      finish_tele tele;
      reply_line t job.reply
        (Protocol.error_response ~v ~id:job.jid ~outcome:"error"
           (Printf.sprintf
              "field \"prev\": expected %d entries (one per model class), got %d" k
              (Array.length rp.Protocol.prev)));
      telemetry_line t ~id:job.jid ~op:"resolve" ~outcome:"error" ~status:None tele;
      locked t (fun () -> t.n_served <- t.n_served + 1)
    end
    else begin
      let eps = Option.value rp.Protocol.epsilon ~default:default_epsilon in
      let verdict =
        match p.Protocol.objective with
        | Hslb.Objective.Min_max ->
          Audit.Sensitivity.check ~eps ~n_total:p.Protocol.n_total
            ~incumbent:rp.Protocol.prev
            (sensitivity_classes ~n_total:p.Protocol.n_total specs)
        | Hslb.Objective.Max_min | Hslb.Objective.Min_sum ->
          (* the relaxation bound is a min-max construction; other
             objectives always pay for the re-solve *)
          Audit.Sensitivity.Rejected
            { certificate = None; reason = "certificate requires the min-max objective" }
      in
      match verdict with
      | Audit.Sensitivity.Certified cert ->
        (* the incumbent is provably within eps of the best any
           allocation can do under the updated coefficients: answer
           from it without entering the solver *)
        let predicted_times =
          List.map2
            (fun (s : Hslb.Alloc_model.spec) n ->
              Json.Num (Hslb.Fitting.predict s.Hslb.Alloc_model.fc.Hslb.Classes.fit n))
            specs
            (Array.to_list rp.Protocol.prev)
        in
        let tele =
          {
            (zero_tele ~queue_wait_ms:(queue_wait *. 1000.)) with
            solve_wall_ms = (now () -. start) *. 1000.;
          }
        in
        finish_tele tele;
        reply_line t job.reply
          (Protocol.response ~v ~id:job.jid
             ([
                ("outcome", Json.Str "ok");
                ("resolve", Json.Str "unchanged");
                ("makespan", Json.Num cert.Audit.Sensitivity.incumbent_obj);
                ( "nodes_per_task",
                  Json.Arr
                    (Array.to_list
                       (Array.map (fun n -> Json.Num (float_of_int n)) rp.Protocol.prev)) );
                ("predicted_times", Json.Arr predicted_times);
              ]
             @ certificate_fields (Some cert)
             @ policy_fields t p.Protocol.policy
             @ [ ("telemetry", Json.Obj (tele_fields tele)) ]));
        telemetry_line t ~id:job.jid ~op:"resolve" ~outcome:"ok" ~status:(Some "unchanged") tele;
        locked t (fun () ->
            t.n_resolve_skipped <- t.n_resolve_skipped + 1;
            t.n_served <- t.n_served + 1)
      | Audit.Sensitivity.Rejected { certificate; reason = _ } ->
        let deadline_s =
          Option.map (fun ms -> (ms /. 1000.) -. queue_wait) p.Protocol.deadline_ms
        in
        let budget = Engine.Budget.arm (Engine.Budget.make ?deadline_s ~cancel:t.drain_tok ()) in
        let solver = Option.value p.Protocol.solver ~default:t.cfg.default_solver in
        let strategy = Option.value p.Protocol.strategy ~default:t.cfg.default_strategy in
        let race_report = ref None in
        let req_tally = Engine.Telemetry.create () in
        (* memoized under the UPDATED model's fingerprint — a later
           solve (or resolve) of the drifted model replays it *)
        let key =
          Hslb.Alloc_model.fingerprint ~objective:p.Protocol.objective
            ~n_total:p.Protocol.n_total specs
        in
        (* warm-start from the incumbent only when it is feasible under
           the new model (a certificate record was computed at all) *)
        let warm_start = if certificate <> None then Some rp.Protocol.prev else None in
        let outcome =
          match Runtime.Cache.find t.cache key with
          | Some alloc -> `Solved (Ok alloc, true)
          | None -> (
            match
              Hslb.Alloc_model.solve ~strategy ~solver ~objective:p.Protocol.objective
                ?warm_start ~budget ~trace:req_tally ~race_report
                ~n_total:p.Protocol.n_total specs
            with
            | r ->
              (match r with
              | Ok alloc when alloc.Hslb.Alloc_model.status = Minlp.Solution.Optimal ->
                Runtime.Cache.put t.cache key alloc
              | Ok _ | Error _ -> ());
              `Solved (r, false)
            | exception e -> `Crashed (Printexc.to_string e))
        in
        let solve_wall = Engine.Budget.elapsed_s budget in
        Obs.Metrics.Histogram.observe t.solve_h (solve_wall *. 1000.);
        finish_tele (zero_tele ~queue_wait_ms:(queue_wait *. 1000.));
        let tele =
          {
            queue_wait_ms = queue_wait *. 1000.;
            solve_wall_ms = solve_wall *. 1000.;
            cache_hit = (match outcome with `Solved (_, hit) -> hit | `Crashed _ -> false);
            dedup = false;
            lane_winner = Option.map (fun r -> r.Engine.Run_report.winner) !race_report;
          }
        in
        (match outcome with
        | `Solved (result, _) ->
          let audit =
            match result with
            | Ok alloc when t.cfg.audit -> Some (audit_verdict p specs alloc)
            | Ok _ | Error _ -> None
          in
          respond_solve t ~v ~id:job.jid ~reply:job.reply ~op:"resolve"
            ~extra:(("resolve", Json.Str "resolved") :: certificate_fields certificate)
            result ~audit
            ~policy:(policy_fields t p.Protocol.policy)
            tele
        | `Crashed msg ->
          reply_line t job.reply
            (Protocol.error_response ~v ~id:job.jid ~outcome:"error"
               ("internal error: " ^ msg));
          telemetry_line t ~id:job.jid ~op:"resolve" ~outcome:"error" ~status:None tele);
        locked t (fun () ->
            Engine.Telemetry.merge_into t.tally req_tally;
            t.n_resolved <- t.n_resolved + 1;
            t.n_served <- t.n_served + 1)
    end
  end

let process_sleep t (job : job) dur =
  let start = now () in
  let queue_wait = start -. job.arrival in
  Obs.Metrics.Histogram.observe t.qwait_h (queue_wait *. 1000.);
  (* cooperative nap: polls the drain token so a graceful shutdown can
     budget-cancel it like any solve *)
  let rec nap () =
    let left = dur -. (now () -. start) in
    if left > 0. && not (Engine.Cancel.cancelled t.drain_tok) then begin
      Unix.sleepf (Float.min 0.005 left);
      nap ()
    end
  in
  nap ();
  let tele =
    {
      (zero_tele ~queue_wait_ms:(queue_wait *. 1000.)) with
      solve_wall_ms = (now () -. start) *. 1000.;
    }
  in
  reply_line t job.reply
    (Protocol.response ~id:job.jid
       [
         ("outcome", Json.Str "ok");
         ("slept_ms", Json.Num tele.solve_wall_ms);
         ("cancelled", Json.Bool (Engine.Cancel.cancelled t.drain_tok));
         ("telemetry", Json.Obj (tele_fields tele));
       ]);
  telemetry_line t ~id:job.jid ~op:"sleep" ~outcome:"ok" ~status:None tele;
  locked t (fun () -> t.n_served <- t.n_served + 1)

let process t job =
  let body () =
    match job.work with
    | W_solve sj -> process_solve t job sj
    | W_resolve rj -> process_resolve t job rj
    | W_sleep dur -> process_sleep t job dur
  in
  if not (Obs.Control.enabled ()) then body ()
  else
    let op =
      match job.work with W_solve _ -> "solve" | W_resolve _ -> "resolve" | W_sleep _ -> "sleep"
    in
    Obs.Span.with_span ~cat:"serve" ~args:[ ("op", op) ] "serve.request" body

let worker_body t _i =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.is_draining do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.lock (* draining + drained: exit *)
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.lock;
      (match process t job with
      | () -> ()
      | exception e ->
        (* a worker must survive anything a request throws at it *)
        reply_line t job.reply
          (Protocol.error_response ~id:job.jid ~outcome:"error"
             ("internal error: " ^ Printexc.to_string e)));
      loop ()
    end
  in
  loop ()

(* ---------- construction ---------- *)

let create ?telemetry cfg ~emit =
  if cfg.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if cfg.queue_limit < 1 then invalid_arg "Server.create: queue_limit must be >= 1";
  if cfg.drain_grace_s < 0. then invalid_arg "Server.create: drain_grace_s must be >= 0";
  let t =
    {
      cfg;
      emit;
      emit_lock = Mutex.create ();
      telemetry;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      pending = Hashtbl.create 64;
      cache = Runtime.Cache.create ~capacity:cfg.cache_capacity ();
      tally = Engine.Telemetry.create ();
      qwait_h = Obs.Metrics.Histogram.create ~lo:1e-3 ~hi:1e7 "serve_queue_wait_ms";
      solve_h = Obs.Metrics.Histogram.create ~lo:1e-3 ~hi:1e7 "serve_solve_ms";
      drain_tok = Engine.Cancel.create ();
      is_draining = false;
      workers = None;
      watchdog = None;
      workers_done = Atomic.make false;
      started = now ();
      n_accepted = 0;
      n_served = 0;
      n_overloaded = 0;
      n_drain_rejected = 0;
      n_deduped = 0;
      n_expired = 0;
      n_protocol_errors = 0;
      n_policy_hints = 0;
      n_resolved = 0;
      n_resolve_skipped = 0;
      n_placed = 0;
    }
  in
  t.workers <- Some (Runtime.Pool.spawn_workers ~jobs:cfg.jobs (worker_body t));
  t

let draining t = locked t (fun () -> t.is_draining)

let summary_json (s : Obs.Metrics.Histogram.summary) =
  (* NaN quantiles of an empty histogram render as JSON null *)
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.count));
      ("p50", Json.Num s.p50);
      ("p90", Json.Num s.p90);
      ("p99", Json.Num s.p99);
      ("max", Json.Num s.max);
    ]

let latency_obj t =
  Json.Obj
    [
      ("queue_wait_ms", summary_json (Obs.Metrics.Histogram.summary t.qwait_h));
      ("solve_ms", summary_json (Obs.Metrics.Histogram.summary t.solve_h));
    ]

let metrics t =
  Obs.Metrics.snapshot ()
  @ [
      (Obs.Metrics.Histogram.name t.qwait_h, Obs.Metrics.Histogram t.qwait_h);
      (Obs.Metrics.Histogram.name t.solve_h, Obs.Metrics.Histogram t.solve_h);
    ]

let stats_obj t =
  locked t (fun () ->
      (Json.Obj
           [
             ("uptime_s", Json.Num (now () -. t.started));
             ("jobs", Json.Num (float_of_int t.cfg.jobs));
             ("queue_depth", Json.Num (float_of_int (Queue.length t.queue)));
             ("queue_limit", Json.Num (float_of_int t.cfg.queue_limit));
             ("draining", Json.Bool t.is_draining);
             ("accepted", Json.Num (float_of_int t.n_accepted));
             ("served", Json.Num (float_of_int t.n_served));
             ("overloaded", Json.Num (float_of_int t.n_overloaded));
             ("drain_rejected", Json.Num (float_of_int t.n_drain_rejected));
             ("deduped", Json.Num (float_of_int t.n_deduped));
             ("expired", Json.Num (float_of_int t.n_expired));
             ("protocol_errors", Json.Num (float_of_int t.n_protocol_errors));
             ("policy_hints", Json.Num (float_of_int t.n_policy_hints));
             ("resolved", Json.Num (float_of_int t.n_resolved));
             ("resolve_skipped", Json.Num (float_of_int t.n_resolve_skipped));
             ("placed", Json.Num (float_of_int t.n_placed));
             ( "protocol",
               Json.Obj
                 [
                   ("min", Json.Num (float_of_int Protocol.min_version));
                   ("max", Json.Num (float_of_int Protocol.current_version));
                 ] );
             ("latency", latency_obj t);
             ( "cache",
               Json.Obj
                 [
                   ("hits", Json.Num (float_of_int (Runtime.Cache.hits t.cache)));
                   ("misses", Json.Num (float_of_int (Runtime.Cache.misses t.cache)));
                   ("length", Json.Num (float_of_int (Runtime.Cache.length t.cache)));
                 ] );
           ]))

let stats_json t = Json.to_string (stats_obj t)

(* ---------- drain ---------- *)

let initiate_drain t =
  let started_now =
    locked t (fun () ->
        if t.is_draining then false
        else begin
          t.is_draining <- true;
          Condition.broadcast t.nonempty;
          true
        end)
  in
  if started_now then begin
    (* grace watchdog: give in-flight and queued work [drain_grace_s] to
       finish naturally, then budget-cancel the rest through the shared
       token. Polls so a fast drain is not held up by a long grace. *)
    let deadline = now () +. t.cfg.drain_grace_s in
    let watchdog =
      Domain.spawn (fun () ->
          let rec watch () =
            if Atomic.get t.workers_done then ()
            else if now () >= deadline then Engine.Cancel.cancel t.drain_tok
            else begin
              Unix.sleepf 0.01;
              watch ()
            end
          in
          watch ())
    in
    locked t (fun () -> t.watchdog <- Some watchdog)
  end

let await_drain t =
  initiate_drain t;
  (match t.workers with
  | Some ws ->
    Runtime.Pool.join_workers ws;
    t.workers <- None
  | None -> ());
  Atomic.set t.workers_done true;
  (match locked t (fun () -> t.watchdog) with
  | Some d ->
    Domain.join d;
    locked t (fun () -> t.watchdog <- None)
  | None -> ());
  let hists =
    List.filter
      (fun (_, s) -> s.Obs.Metrics.Histogram.count > 0)
      [
        ("serve_queue_wait_ms", Obs.Metrics.Histogram.summary t.qwait_h);
        ("serve_solve_ms", Obs.Metrics.Histogram.summary t.solve_h);
      ]
  in
  locked t (fun () ->
      Engine.Run_report.make ~solver:"serve" ~status:"drained" ~hists
        ~wall_s:(now () -. t.started) t.tally)

(* ---------- admission ---------- *)

let admit t ~id ~v ~reply work =
  let job = { jid = id; v; arrival = now (); reply; work } in
  let op =
    match work with W_solve _ -> "solve" | W_resolve _ -> "resolve" | W_sleep _ -> "sleep"
  in
  let verdict =
    locked t (fun () ->
        if t.is_draining then begin
          t.n_drain_rejected <- t.n_drain_rejected + 1;
          `Draining
        end
        else if Queue.length t.queue >= t.cfg.queue_limit then begin
          t.n_overloaded <- t.n_overloaded + 1;
          `Overloaded
        end
        else begin
          match work with
          | W_solve sj -> (
            if sj.params.Protocol.policy <> None then
              t.n_policy_hints <- t.n_policy_hints + 1;
            match Hashtbl.find_opt t.pending sj.key with
            | Some leader ->
              (* identical instance already queued or solving: attach,
                 carrying this request's own policy hint *)
              leader.followers <-
                (id, job.arrival, reply, sj.params.Protocol.policy, v) :: leader.followers;
              t.n_accepted <- t.n_accepted + 1;
              t.n_deduped <- t.n_deduped + 1;
              `Attached
            | None ->
              Hashtbl.replace t.pending sj.key sj;
              Queue.push job t.queue;
              t.n_accepted <- t.n_accepted + 1;
              Condition.signal t.nonempty;
              `Queued)
          | W_resolve rj ->
            (* never deduped: the observations ride with the request,
               and the certificate decides per-request what they mean *)
            if rj.rparams.Protocol.base.Protocol.policy <> None then
              t.n_policy_hints <- t.n_policy_hints + 1;
            Queue.push job t.queue;
            t.n_accepted <- t.n_accepted + 1;
            Condition.signal t.nonempty;
            `Queued
          | W_sleep _ ->
            Queue.push job t.queue;
            t.n_accepted <- t.n_accepted + 1;
            Condition.signal t.nonempty;
            `Queued
        end)
  in
  match verdict with
  | `Queued | `Attached -> ()
  | `Overloaded ->
    reply_line t reply
      (Protocol.error_response ~v ~id ~outcome:"overloaded"
         (Printf.sprintf "queue at high-water mark (%d); retry later" t.cfg.queue_limit));
    telemetry_line t ~id ~op ~outcome:"overloaded" ~status:None (zero_tele ~queue_wait_ms:0.)
  | `Draining ->
    reply_line t reply
      (Protocol.error_response ~v ~id ~outcome:"draining"
         "server is draining; not accepting work")

let protocol_obj =
  Json.Obj
    [
      ("min", Json.Num (float_of_int Protocol.min_version));
      ("max", Json.Num (float_of_int Protocol.current_version));
    ]

let submit ?reply t line =
  let reply = Option.value reply ~default:t.emit in
  let { Protocol.id; v; req } = Protocol.parse_line line in
  match req with
  | Error msg ->
    locked t (fun () -> t.n_protocol_errors <- t.n_protocol_errors + 1);
    reply_line t reply (Protocol.error_response ~v ~id ~outcome:"error" msg)
  | Ok Protocol.Ping ->
    (* the v1 ping reply is pinned byte-for-byte by tests; the v2
       dialect adds the protocol advertisement *)
    let extra = if v >= 2 then [ ("protocol", protocol_obj) ] else [] in
    reply_line t reply
      (Protocol.response ~v ~id
         ([ ("outcome", Json.Str "ok"); ("pong", Json.Bool true) ] @ extra))
  | Ok Protocol.Stats ->
    let extra = if v >= 2 then [ ("protocol", protocol_obj) ] else [] in
    reply_line t reply
      (Protocol.response ~v ~id
         ([ ("outcome", Json.Str "ok"); ("stats", stats_obj t) ] @ extra))
  | Ok Protocol.Drain ->
    initiate_drain t;
    reply_line t reply
      (Protocol.response ~v ~id [ ("outcome", Json.Str "ok"); ("draining", Json.Bool true) ])
  | Ok (Protocol.Sleep dur) -> admit t ~id ~v ~reply (W_sleep dur)
  | Ok (Protocol.Solve p) -> (
    match Protocol.resolve_specs p with
    | Error msg ->
      locked t (fun () -> t.n_protocol_errors <- t.n_protocol_errors + 1);
      reply_line t reply (Protocol.error_response ~v ~id ~outcome:"error" msg)
    | Ok specs -> (
      (* the key wraps the allocation fingerprint with the placement
         fingerprint when a place section rides along; a malformed
         place section (wrong arity, asymmetric traffic, memory
         infeasibility) is rejected here, before any solver work *)
      match Protocol.solve_key p specs with
      | Error msg ->
        locked t (fun () -> t.n_protocol_errors <- t.n_protocol_errors + 1);
        reply_line t reply (Protocol.error_response ~v ~id ~outcome:"error" msg)
      | Ok key -> admit t ~id ~v ~reply (W_solve { params = p; specs; key; followers = [] })))
  | Ok (Protocol.Resolve rp) -> (
    match Protocol.resolve_specs rp.Protocol.base with
    | Error msg ->
      locked t (fun () -> t.n_protocol_errors <- t.n_protocol_errors + 1);
      reply_line t reply (Protocol.error_response ~v ~id ~outcome:"error" msg)
    | Ok specs -> admit t ~id ~v ~reply (W_resolve { rparams = rp; rspecs = specs }))
