module Json = Obs.Json

type t = { volume_mb : float array array }

let format_version = "hslb-comm-v1"
let size t = Array.length t.volume_mb

let volume t i j =
  let n = size t in
  if i < 0 || i >= n || j < 0 || j >= n then invalid_arg "Comm.volume: index out of range";
  t.volume_mb.(i).(j)

let total_mb t =
  let n = size t in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc +. t.volume_mb.(i).(j)
    done
  done;
  !acc

(* the jitter stream for one unordered fragment-id pair: keyed on the
   ids, not the array positions, so reordering the input permutes the
   matrix instead of reshuffling the noise *)
let pair_jitter ~seed idl idh =
  let mix = (((idh * 0x9E3779B9) lxor (idl * 0x85EBCA6B)) lxor (seed * 0xC2B2AE35)) land max_int in
  let rng = Numerics.Rng.create mix in
  Numerics.Rng.uniform rng ~lo:0.9 ~hi:1.1

let generate ?(scf_cutoff = 7.0) ?(seed = 0) frags =
  let n = Array.length frags in
  if n = 0 then invalid_arg "Comm.generate: no fragments";
  if scf_cutoff <= 0. then invalid_arg "Comm.generate: scf_cutoff must be positive";
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let fi = frags.(i) and fj = frags.(j) in
      let d = Fragment.distance fi fj in
      (* one pair density block at 8 bytes per basis-function product *)
      let block_mb = 8e-6 *. float_of_int (fi.Fragment.nbf * fj.Fragment.nbf) in
      let idl = Stdlib.min fi.Fragment.id fj.Fragment.id
      and idh = Stdlib.max fi.Fragment.id fj.Fragment.id in
      let jitter = pair_jitter ~seed idl idh in
      let v =
        if d <= scf_cutoff then block_mb *. jitter
        else
          (* ES pair: multipoles, decaying with the cube of separation *)
          block_mb *. jitter /. ((d /. scf_cutoff) ** 3.)
      in
      m.(i).(j) <- v;
      m.(j).(i) <- v
    done
  done;
  { volume_mb = m }

let of_matrix m =
  let n = Array.length m in
  if n = 0 then invalid_arg "Comm.of_matrix: empty matrix";
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg
          (Printf.sprintf "Comm.of_matrix: row %d has %d entries, expected %d" i
             (Array.length row) n))
    m;
  for i = 0 to n - 1 do
    if m.(i).(i) <> 0. then
      invalid_arg (Printf.sprintf "Comm.of_matrix: nonzero diagonal at %d" i);
    for j = 0 to n - 1 do
      if not (Float.is_finite m.(i).(j)) || m.(i).(j) < 0. then
        invalid_arg
          (Printf.sprintf "Comm.of_matrix: volume (%d,%d) must be finite and non-negative" i j);
      if m.(i).(j) <> m.(j).(i) then
        invalid_arg (Printf.sprintf "Comm.of_matrix: not symmetric at (%d,%d)" i j)
    done
  done;
  { volume_mb = Array.map Array.copy m }

let to_matrix t = Array.map Array.copy t.volume_mb

(* ---------- NDJSON ----------
   Same shape and diagnostics as Arena.Scenario: a header line, one
   data line per row, and parse errors as "FILE:LINE: message" so a
   hand-edited trace points at the offending line. *)

let json_num v = Json.to_string (Json.Num v)

let to_ndjson t =
  let n = size t in
  let buf = Buffer.create (n * n * 12) in
  Buffer.add_string buf (Printf.sprintf "{\"comm\":%S,\"n\":%d}\n" format_version n);
  Array.iteri
    (fun i row ->
      Buffer.add_string buf (Printf.sprintf "{\"row\":%d,\"mb\":[" i);
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (json_num v))
        row;
      Buffer.add_string buf "]}\n")
    t.volume_mb;
  Buffer.contents buf

exception Bad of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Bad (line, msg))) fmt

let field line obj key =
  match Json.member key obj with
  | Some v -> v
  | None -> fail line "missing field %S" key

let int_field line obj key =
  match Json.int_ (field line obj key) with
  | Some v -> v
  | None -> fail line "field %S: expected an integer" key

let str_field line obj key =
  match Json.str (field line obj key) with
  | Some v -> v
  | None ->
    fail line "field %S: expected a string, got %s" key (Json.type_name (field line obj key))

let of_ndjson ?(file = "comm") text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  try
    match lines with
    | [] -> Error (Printf.sprintf "%s:1: empty comm file" file)
    | (hline, htext) :: rest ->
      let parse_obj line text =
        match Json.parse text with
        | Error e -> fail line "%s" e
        | Ok (Json.Obj _ as o) -> o
        | Ok v -> fail line "expected an object, got %s" (Json.type_name v)
      in
      let h = parse_obj hline htext in
      let version = str_field hline h "comm" in
      if version <> format_version then
        fail hline "unsupported comm format %S (expected %S)" version format_version;
      let n = int_field hline h "n" in
      if n <= 0 then fail hline "field \"n\": must be positive";
      if List.length rest <> n then
        fail hline "header declares %d rows but the file has %d row lines" n
          (List.length rest);
      let parse_row idx (line, text) =
        let o = parse_obj line text in
        let i = int_field line o "row" in
        if i <> idx then fail line "expected row %d, got row %d" idx i;
        match Json.arr (field line o "mb") with
        | None ->
          fail line "field \"mb\": expected an array, got %s"
            (Json.type_name (field line o "mb"))
        | Some items ->
          if List.length items <> n then
            fail line "field \"mb\": expected %d entries (one per fragment), got %d" n
              (List.length items);
          Array.of_list
            (List.mapi
               (fun j v ->
                 match Json.num v with
                 | Some x when Float.is_finite x && x >= 0. -> x
                 | Some _ -> fail line "field \"mb\": element %d must be finite and non-negative" j
                 | None -> fail line "field \"mb\": element %d is not a number" j)
               items)
      in
      let m = Array.of_list (List.mapi parse_row rest) in
      List.iteri
        (fun idx (line, _) ->
          if m.(idx).(idx) <> 0. then fail line "field \"mb\": nonzero diagonal at %d" idx;
          for j = 0 to n - 1 do
            if m.(idx).(j) <> m.(j).(idx) then
              fail line "field \"mb\": volume (%d,%d) breaks symmetry" idx j
          done)
        rest;
      Ok { volume_mb = m }
  with Bad (line, msg) -> Error (Printf.sprintf "%s:%d: %s" file line msg)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_ndjson ~file:path text
  | exception Sys_error e -> Error e

let write_file path t =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_ndjson t))
