(** Fragment-pair communication volumes.

    The FMO2 electrostatic embedding makes every fragment pair talk:
    SCF dimers (centroids within the cutoff) exchange pair-block
    densities every SCC sweep, far pairs exchange the much smaller
    multipole expansions of the ES approximation. This module turns a
    fragment set into the symmetric, zero-diagonal volume matrix that
    the placement layer ({!Place} and experiment E11/E14) prices
    against torus hop distances.

    Volumes are deterministic for a given [seed]: the run-to-run
    variation of real traffic (retransmits, convergence differences) is
    modeled as a small multiplicative jitter drawn per {e unordered
    fragment-id pair}, so permuting the input array permutes the matrix
    consistently and equal seeds give equal matrices. *)

type t

(** Number of fragments (matrix dimension). *)
val size : t -> int

(** [volume t i j] — MB exchanged between fragments [i] and [j] per SCC
    sweep. Symmetric; [volume t i i = 0]. Raises [Invalid_argument] out
    of range. *)
val volume : t -> int -> int -> float

(** Sum over unordered pairs, MB. *)
val total_mb : t -> float

(** [generate ?scf_cutoff ?seed frags] — the volume matrix of the
    fragment set: near pairs (centroid distance within [scf_cutoff],
    default 7.0 Å, matching {!Task.fmo2_plan}) exchange their pair
    density block (~8 bytes per basis-function product), far pairs the
    multipole remainder decaying with the cube of separation. Raises
    [Invalid_argument] on an empty array. *)
val generate : ?scf_cutoff:float -> ?seed:int -> Fragment.t array -> t

(** [of_matrix m] — wrap an externally supplied matrix (the serve wire
    path). Raises [Invalid_argument] naming the offending entry when
    [m] is ragged, asymmetric, has a nonzero diagonal, or holds a
    negative or non-finite volume. *)
val of_matrix : float array array -> t

(** The raw matrix (a defensive copy). *)
val to_matrix : t -> float array array

(** NDJSON export: a header line [{"comm":"hslb-comm-v1","n":N}]
    followed by one ["row"] line per fragment. Ends with a newline. *)
val to_ndjson : t -> string

(** [of_ndjson ?file text] — parse {!to_ndjson} output (or a
    hand-edited trace). Errors are ["FILE:LINE: message"], pointing at
    the offending line. *)
val of_ndjson : ?file:string -> string -> (t, string) result

(** [read_file path] — {!of_ndjson} with [~file:path]; [Error] also on
    I/O failure. *)
val read_file : string -> (t, string) result

(** Write {!to_ndjson} to [path]. *)
val write_file : string -> t -> unit
