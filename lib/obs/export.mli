(** Exporters: Chrome [trace_event] JSON, Prometheus text exposition,
    NDJSON streaming — plus the validators CI uses to check that the
    artifacts actually parse. *)

(** One span as a Chrome complete event ([ph:"X"]; [ts]/[dur] in
    microseconds, [tid] = OCaml domain, [pid] = OS process). The span
    id and parent id ride in [args] as [span_id]/[parent_id] so the
    hierarchy survives machine-readably. *)
val span_event : Span.t -> Json.t

(** A full [{"traceEvents":[...]}] document loadable in
    [chrome://tracing] or Perfetto. *)
val chrome_trace : Span.t list -> Json.t

val write_chrome_trace : string -> Span.t list -> unit

(** [span_event] rendered as one NDJSON line (no trailing newline);
    compose with {!Span.set_stream} for live streaming. *)
val span_ndjson_line : Span.t -> string

(** Prometheus text exposition for a metric snapshot
    ({!Metrics.snapshot} or any named list): counters and gauges as
    single samples, histograms as summaries with
    [quantile="0.5"/"0.9"/"0.99"] labels plus [_sum]/[_count]. *)
val prometheus : (string * Metrics.metric) list -> string

val write_prometheus : string -> (string * Metrics.metric) list -> unit

(** Validate a parsed Chrome trace: [traceEvents] must be an array
    whose every event carries [name]/[ph] strings and [ts]/[pid]/[tid]
    numbers. Returns the event count. *)
val check_chrome_trace : Json.t -> (int, string) result

(** Validate Prometheus text exposition line-by-line: comments and
    blanks skipped, every sample line must be
    [name[{labels}] value] with a legal metric name and a float (or
    [+Inf]/[-Inf]/[NaN]) value. Returns the sample-line count. *)
val check_prometheus : string -> (int, string) result
