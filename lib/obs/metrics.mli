(** Process-wide metrics: counters, gauges and log-linear histograms.

    Every update path is lock-free (atomic increments; CAS retry loops
    for float sums), so pool workers, portfolio lanes and serve
    domains can update the same metric concurrently without
    coordination. Reads ([value], [summary], [snapshot]) are
    approximate under concurrent writes — each component is atomically
    read, the tuple is not — which is the standard metrics trade-off.

    Metrics can be used standalone ([Counter.create] etc.) or through
    the registry ([counter name] get-or-create), which {!Export} turns
    into Prometheus text exposition. Registry names should follow
    Prometheus conventions ([snake_case], unit suffix, e.g.
    [engine_budget_polls_total], [serve_solve_ms]). *)

module Counter : sig
  type t

  val create : string -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  (** Quantiles are upper bucket bounds clamped to the observed
      [min]/[max]; with the default 10 buckets per decade the relative
      error is below ~26%. All fields are [nan] (and [count]/[sum]
      zero) for an empty histogram. *)
  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  (** [create name] builds a histogram with [per_decade] (default 10)
      geometrically spaced bucket bounds per decade covering
      [\[lo, hi\]] (defaults [1e-6].. [1e4]) plus an overflow bucket.
      Raises [Invalid_argument] unless [0 < lo < hi] and
      [per_decade ≥ 1]. *)
  val create : ?lo:float -> ?hi:float -> ?per_decade:int -> string -> t

  (** Record one observation. NaN observations are dropped. *)
  val observe : t -> float -> unit

  val count : t -> int
  val name : t -> string
  val summary : t -> summary
end

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

(** {2 Registry} — get-or-create by name; raises [Invalid_argument] if
    the name is already registered as a different metric type. *)

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : ?lo:float -> ?hi:float -> ?per_decade:int -> string -> Histogram.t

(** All registered metrics, sorted by name. *)
val snapshot : unit -> (string * metric) list
