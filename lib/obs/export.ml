(* ---------- Chrome trace_event ---------- *)

(* One complete event (ph:"X") per span. chrome://tracing and Perfetto
   want ts/dur in microseconds; pid is the OS process, tid the OCaml
   domain the span closed on. Span ids ride along in args so the
   parent/child structure survives the round trip machine-readably. *)
let span_event (sp : Span.t) : Json.t =
  let args =
    ("span_id", Json.Num (float_of_int sp.id))
    :: (match sp.parent with
       | Some p -> [ ("parent_id", Json.Num (float_of_int p)) ]
       | None -> [])
    @ List.map (fun (k, v) -> (k, Json.Str v)) sp.args
  in
  Json.Obj
    [
      ("name", Json.Str sp.name);
      ("cat", Json.Str (if sp.cat = "" then "default" else sp.cat));
      ("ph", Json.Str "X");
      ("ts", Json.Num (sp.start_s *. 1e6));
      ("dur", Json.Num (sp.dur_s *. 1e6));
      ("pid", Json.Num (float_of_int (Unix.getpid ())));
      ("tid", Json.Num (float_of_int sp.domain));
      ("args", Json.Obj args);
    ]

let chrome_trace spans : Json.t =
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map span_event spans));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_trace path spans =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (chrome_trace spans));
      Out_channel.output_char oc '\n')

(* NDJSON streaming: one complete event per line, same schema as the
   trace_event entries, suitable for [Span.set_stream]. *)
let span_ndjson_line sp = Json.to_string (span_event sp)

(* ---------- Prometheus text exposition ---------- *)

let prom_num f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus metrics =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, m) ->
      match m with
      | Metrics.Counter c ->
        line "# TYPE %s counter" name;
        line "%s %d" name (Metrics.Counter.value c)
      | Metrics.Gauge g ->
        line "# TYPE %s gauge" name;
        line "%s %s" name (prom_num (Metrics.Gauge.value g))
      | Metrics.Histogram h ->
        let s = Metrics.Histogram.summary h in
        line "# TYPE %s summary" name;
        line "%s{quantile=\"0.5\"} %s" name (prom_num s.p50);
        line "%s{quantile=\"0.9\"} %s" name (prom_num s.p90);
        line "%s{quantile=\"0.99\"} %s" name (prom_num s.p99);
        line "%s_sum %s" name (prom_num s.sum);
        line "%s_count %d" name s.count)
    metrics;
  Buffer.contents b

let write_prometheus path metrics =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (prometheus metrics))

(* ---------- artifact validators (CI) ---------- *)

let check_chrome_trace json =
  let ( let* ) = Result.bind in
  let* events =
    match Json.member "traceEvents" json with
    | Some (Json.Arr evs) -> Ok evs
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents"
  in
  let check_event i ev =
    let field k f =
      match Json.member k ev with
      | Some v when f v -> Ok ()
      | Some _ -> Error (Printf.sprintf "event %d: field %S has wrong type" i k)
      | None -> Error (Printf.sprintf "event %d: missing field %S" i k)
    in
    let is_str v = Json.str v <> None and is_num v = Json.num v <> None in
    let* () = field "name" is_str in
    let* () = field "ph" is_str in
    let* () = field "ts" is_num in
    let* () = field "pid" is_num in
    let* () = field "tid" is_num in
    Ok ()
  in
  let rec all i = function
    | [] -> Ok (List.length events)
    | ev :: rest ->
      let* () = check_event i ev in
      all (i + 1) rest
  in
  all 0 events

let metric_name_ok name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let check_prometheus text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno samples = function
    | [] -> Ok samples
    | line :: rest ->
      let line = String.trim line in
      if line = "" || (String.length line > 0 && line.[0] = '#') then
        go (lineno + 1) samples rest
      else begin
        (* sample line: name[{labels}] value *)
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some i, Some j -> min i j
          | Some i, None -> i
          | None, Some j -> j
          | None, None -> String.length line
        in
        let name = String.sub line 0 name_end in
        let after_labels =
          if name_end < String.length line && line.[name_end] = '{' then
            match String.index_from_opt line name_end '}' with
            | Some close -> Some (close + 1)
            | None -> None
          else Some name_end
        in
        match after_labels with
        | None -> Error (Printf.sprintf "line %d: unterminated label set" lineno)
        | Some rest_at ->
          if not (metric_name_ok name) then
            Error (Printf.sprintf "line %d: bad metric name %S" lineno name)
          else
            let value = String.trim (String.sub line rest_at (String.length line - rest_at)) in
            let ok =
              match value with
              | "+Inf" | "-Inf" | "NaN" -> true
              | v -> float_of_string_opt v <> None
            in
            if ok then go (lineno + 1) (samples + 1) rest
            else Error (Printf.sprintf "line %d: bad sample value %S" lineno value)
      end
  in
  go 1 0 lines
