(** Minimal JSON shared by the observability exporters and the serving
    layer's newline-delimited protocol (re-exported as [Serve.Json]).

    The toolchain deliberately has no JSON dependency, and the engine's
    {!Engine.Run_report} only {e emits} JSON — the serve protocol and
    the trace-artifact validators also have to {e parse}, so this
    module provides both directions
    for the small value set the protocol needs. It is not a general
    JSON library: numbers are [float]s (integral values print without a
    decimal point), object member order is preserved, duplicate keys
    keep the first occurrence. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse s] — parse one complete JSON value ([s] may carry
    surrounding whitespace; trailing garbage is an error). String
    escapes including [\uXXXX] (and surrogate pairs) are decoded to
    UTF-8. Errors carry a character offset. *)
val parse : string -> (t, string) result

(** Compact single-line rendering (never contains a raw newline, so a
    value is always a valid NDJSON line). Control characters, quotes
    and backslashes in strings are escaped; non-finite numbers render
    as [null]; integral numbers print as integers. *)
val to_string : t -> string

(** {2 Accessors} — [None] on a type or shape mismatch. *)

(** Object member lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val str : t -> string option
val num : t -> float option

(** Integral {!Num} within [int] range. *)
val int_ : t -> int option

val bool_ : t -> bool option
val arr : t -> t list option

(** The value's JSON type with an article (["a string"], ["null"], …) —
    for protocol error messages that name what was actually sent. *)
val type_name : t -> string
