(* Lock-free primitives: every update path is a handful of atomic
   operations so pool workers and serve domains can hammer the same
   metric concurrently. Floats go through CAS retry loops. *)

let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

let rec atomic_min_float a x =
  let cur = Atomic.get a in
  if x < cur && not (Atomic.compare_and_set a cur x) then atomic_min_float a x

let rec atomic_max_float a x =
  let cur = Atomic.get a in
  if x > cur && not (Atomic.compare_and_set a cur x) then atomic_max_float a x

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let create name = { name; v = Atomic.make 0 }
  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.v by)
  let value c = Atomic.get c.v
  let name c = c.name
end

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let create name = { name; v = Atomic.make 0. }
  let set g x = Atomic.set g.v x
  let add g x = atomic_add_float g.v x
  let value g = Atomic.get g.v
  let name g = g.name
end

module Histogram = struct
  type t = {
    name : string;
    bounds : float array;
        (* ascending bucket upper bounds; one extra overflow bucket
           follows the last bound *)
    buckets : int Atomic.t array;
    total : int Atomic.t;
    sum : float Atomic.t;
    min_v : float Atomic.t;
    max_v : float Atomic.t;
  }

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  (* Log-linear bucketing: [per_decade] geometrically spaced bounds per
     decade from [lo] to at least [hi]. Relative quantile error is
     bounded by one bucket width (~10^(1/per_decade)). *)
  let create ?(lo = 1e-6) ?(hi = 1e4) ?(per_decade = 10) name =
    if not (lo > 0. && hi > lo) then
      invalid_arg "Histogram.create: need 0 < lo < hi";
    if per_decade < 1 then invalid_arg "Histogram.create: per_decade < 1";
    let step = 10. ** (1. /. float_of_int per_decade) in
    let rec build acc b = if b >= hi then List.rev (b :: acc) else build (b :: acc) (b *. step) in
    let bounds = Array.of_list (build [] lo) in
    {
      name;
      bounds;
      buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum = Atomic.make 0.;
      min_v = Atomic.make infinity;
      max_v = Atomic.make neg_infinity;
    }

  (* first bucket whose upper bound admits [x]; the overflow bucket
     when [x] exceeds every bound *)
  let bucket_index h x =
    let n = Array.length h.bounds in
    if x > h.bounds.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if x <= h.bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

  let observe h x =
    if Float.is_nan x then ()
    else begin
      ignore (Atomic.fetch_and_add h.buckets.(bucket_index h x) 1);
      ignore (Atomic.fetch_and_add h.total 1);
      atomic_add_float h.sum x;
      atomic_min_float h.min_v x;
      atomic_max_float h.max_v x
    end

  let count h = Atomic.get h.total
  let name h = h.name

  let summary h =
    let count = Atomic.get h.total in
    if count = 0 then
      { count = 0; sum = 0.; min = nan; max = nan; p50 = nan; p90 = nan; p99 = nan }
    else begin
      let min_v = Atomic.get h.min_v and max_v = Atomic.get h.max_v in
      (* quantile = upper bound of the first bucket whose cumulative
         count reaches ceil(q·n), clamped to the observed range *)
      let quantile q =
        let target = max 1 (int_of_float (ceil (q *. float_of_int count))) in
        let n = Array.length h.buckets in
        let rec walk i cum =
          if i >= n then max_v
          else
            let cum = cum + Atomic.get h.buckets.(i) in
            if cum >= target then
              if i < Array.length h.bounds then h.bounds.(i) else max_v
            else walk (i + 1) cum
        in
        Float.max min_v (Float.min max_v (walk 0 0))
      in
      {
        count;
        sum = Atomic.get h.sum;
        min = min_v;
        max = max_v;
        p50 = quantile 0.5;
        p90 = quantile 0.9;
        p99 = quantile 0.99;
      }
    end
end

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

(* ---------- process-wide registry ---------- *)

let reg_lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let get_or_create name mk classify =
  Mutex.lock reg_lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some m -> classify m
    | None ->
      let m = mk () in
      Hashtbl.add registry name m;
      classify m
  in
  Mutex.unlock reg_lock;
  match r with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S already registered with another type" name)

let counter name =
  get_or_create name
    (fun () -> Counter (Counter.create name))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  get_or_create name
    (fun () -> Gauge (Gauge.create name))
    (function Gauge g -> Some g | _ -> None)

let histogram ?lo ?hi ?per_decade name =
  get_or_create name
    (fun () -> Histogram (Histogram.create ?lo ?hi ?per_decade name))
    (function Histogram h -> Some h | _ -> None)

let snapshot () =
  Mutex.lock reg_lock;
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock reg_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all
