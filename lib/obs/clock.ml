(* The unix binding shipped with the compiler exposes no
   clock_gettime(CLOCK_MONOTONIC), so we monotonize the wall clock: a
   process-wide atomic high-water mark clamps gettimeofday to be
   non-decreasing across every domain. NTP steps can stall the clock
   briefly but can never make a span duration negative. *)

let high_water = Atomic.make 0.

let rec clamp t =
  let cur = Atomic.get high_water in
  if t <= cur then cur
  else if Atomic.compare_and_set high_water cur t then t
  else clamp t

let now_s () = clamp (Unix.gettimeofday ())
