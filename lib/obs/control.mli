(** Global observability switch.

    Every instrumentation site in the stack (engine phases, portfolio
    lanes, pool tasks, serve requests) checks this single atomic flag
    before doing any work, so a disabled process pays one atomic load
    per site and nothing else — no allocation, no clock read, no lock.
    The flag is process-wide and safe to flip from any domain; spans
    already open when the flag flips still complete normally. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** [with_enabled f] runs [f] with observability on and restores the
    disabled state afterwards (also on exception). Intended for tests
    and for scoped capture such as [bench --trace]. *)
val with_enabled : (unit -> 'a) -> 'a
