type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b f =
  if Float.is_nan f || Float.is_integer f = false || Float.abs f >= 1e16 then
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
    else Buffer.add_string b "null"
  else Buffer.add_string b (Printf.sprintf "%.0f" f)

let to_string v =
  let b = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> add_num b f
    | Str s -> escape_string b s
    | Arr vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        vs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let fail i what = raise (Parse_error (i, what)) in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r') then
      skip_ws (i + 1)
    else i
  in
  let expect i c =
    if i < n && s.[i] = c then i + 1 else fail i (Printf.sprintf "expected '%c'" c)
  in
  let literal i word v =
    let m = String.length word in
    if i + m <= n && String.sub s i m = word then (v, i + m) else fail i ("expected " ^ word)
  in
  let hex4 i =
    if i + 4 > n then fail i "truncated \\u escape";
    match int_of_string_opt ("0x" ^ String.sub s i 4) with
    | Some v -> v
    | None -> fail i "bad \\u escape"
  in
  let add_utf8 b cp =
    (* UTF-8 encode one code point *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string i =
    (* i points just after the opening quote *)
    let b = Buffer.create 16 in
    let rec go i =
      if i >= n then fail i "unterminated string"
      else
        match s.[i] with
        | '"' -> (Buffer.contents b, i + 1)
        | '\\' ->
          if i + 1 >= n then fail i "truncated escape"
          else (
            match s.[i + 1] with
            | '"' ->
              Buffer.add_char b '"';
              go (i + 2)
            | '\\' ->
              Buffer.add_char b '\\';
              go (i + 2)
            | '/' ->
              Buffer.add_char b '/';
              go (i + 2)
            | 'n' ->
              Buffer.add_char b '\n';
              go (i + 2)
            | 't' ->
              Buffer.add_char b '\t';
              go (i + 2)
            | 'r' ->
              Buffer.add_char b '\r';
              go (i + 2)
            | 'b' ->
              Buffer.add_char b '\b';
              go (i + 2)
            | 'f' ->
              Buffer.add_char b '\012';
              go (i + 2)
            | 'u' ->
              let cp = hex4 (i + 2) in
              if cp >= 0xD800 && cp <= 0xDBFF then
                (* high surrogate: require the low half *)
                if
                  i + 11 < n
                  && s.[i + 6] = '\\'
                  && s.[i + 7] = 'u'
                then begin
                  let lo = hex4 (i + 8) in
                  if lo >= 0xDC00 && lo <= 0xDFFF then begin
                    add_utf8 b (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00));
                    go (i + 12)
                  end
                  else fail (i + 8) "invalid low surrogate"
                end
                else fail i "lone high surrogate"
              else begin
                add_utf8 b cp;
                go (i + 6)
              end
            | c -> fail i (Printf.sprintf "bad escape '\\%c'" c))
        | c when Char.code c < 0x20 -> fail i "raw control character in string"
        | c ->
          Buffer.add_char b c;
          go (i + 1)
    in
    go i
  in
  let parse_number i =
    let j = ref i in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !j < n && numchar s.[!j] do
      incr j
    done;
    match float_of_string_opt (String.sub s i (!j - i)) with
    | Some f -> (Num f, !j)
    | None -> fail i "malformed number"
  in
  let rec parse_value i =
    let i = skip_ws i in
    if i >= n then fail i "unexpected end of input"
    else
      match s.[i] with
      | 'n' -> literal i "null" Null
      | 't' -> literal i "true" (Bool true)
      | 'f' -> literal i "false" (Bool false)
      | '"' ->
        let str, j = parse_string (i + 1) in
        (Str str, j)
      | '[' -> parse_array (skip_ws (i + 1)) []
      | '{' -> parse_object (skip_ws (i + 1)) []
      | '-' | '0' .. '9' -> parse_number i
      | c -> fail i (Printf.sprintf "unexpected character '%c'" c)
  and parse_array i acc =
    (* the early close is only the empty array: a close after a comma
       would otherwise admit trailing commas *)
    if i < n && s.[i] = ']' && acc = [] then (Arr [], i + 1)
    else
      let v, j = parse_value i in
      let j = skip_ws j in
      if j < n && s.[j] = ',' then parse_array (skip_ws (j + 1)) (v :: acc)
      else
        let j = expect j ']' in
        (Arr (List.rev (v :: acc)), j)
  and parse_object i acc =
    if i < n && s.[i] = '}' && acc = [] then (Obj [], i + 1)
    else
      let i = skip_ws i in
      let i = expect i '"' in
      let k, j = parse_string i in
      let j = expect (skip_ws j) ':' in
      let v, j = parse_value j in
      let j = skip_ws j in
      if j < n && s.[j] = ',' then parse_object (skip_ws (j + 1)) ((k, v) :: acc)
      else
        let j = expect j '}' in
        (Obj (List.rev ((k, v) :: acc)), j)
  in
  match
    let v, j = parse_value 0 in
    let j = skip_ws j in
    if j < n then fail j "trailing characters after value" else v
  with
  | v -> Ok v
  | exception Parse_error (i, what) -> Error (Printf.sprintf "at offset %d: %s" i what)

(* ---------- accessors ---------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_ = function
  | Num f when Float.is_integer f && Float.abs f <= 1e9 -> Some (int_of_float f)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let arr = function Arr vs -> Some vs | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "a boolean"
  | Num _ -> "a number"
  | Str _ -> "a string"
  | Arr _ -> "an array"
  | Obj _ -> "an object"
