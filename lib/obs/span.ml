type id = int

type t = {
  id : id;
  parent : id option;
  name : string;
  cat : string;
  args : (string * string) list;
  start_s : float;
  dur_s : float;
  domain : int;
}

let next_id = Atomic.make 1

(* Completed spans accumulate under a mutex; an optional streaming sink
   additionally sees each span as it closes (NDJSON export). Spans are
   few and long-lived relative to the work they measure (a solver
   phase, a racing lane, a request), so a plain mutex is fine here —
   the hot counters live in Metrics, not in the span sink. *)
let sink_lock = Mutex.create ()
let sink : t list ref = ref []
let stream : (t -> unit) option ref = ref None

(* The "current span" is domain-local: nesting on one domain builds the
   parent chain implicitly, and [context]/[in_context] carry it across
   Domain.spawn so a lane running on a worker domain still parents to
   the race span that launched it. *)
let current : id option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let context () = Domain.DLS.get current

let in_context ctx f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

let record sp =
  Mutex.lock sink_lock;
  sink := sp :: !sink;
  let emit = !stream in
  Mutex.unlock sink_lock;
  match emit with
  | Some f -> ( try f sp with _ -> ())
  | None -> ()

let with_span ?(cat = "") ?parent ?(args = []) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let parent =
      match parent with Some _ as p -> p | None -> Domain.DLS.get current
    in
    let saved = Domain.DLS.get current in
    Domain.DLS.set current (Some id);
    let start_s = Clock.now_s () in
    let finish () =
      let dur_s = Clock.now_s () -. start_s in
      Domain.DLS.set current saved;
      record
        {
          id;
          parent;
          name;
          cat;
          args;
          start_s;
          dur_s;
          domain = (Domain.self () :> int);
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

let drain () =
  Mutex.lock sink_lock;
  let sps = List.rev !sink in
  sink := [];
  Mutex.unlock sink_lock;
  sps

let clear () = ignore (drain ())

let set_stream f =
  Mutex.lock sink_lock;
  stream := f;
  Mutex.unlock sink_lock
