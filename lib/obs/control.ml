let flag = Atomic.make false
let enabled () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false

let with_enabled f =
  enable ();
  Fun.protect ~finally:disable f
