(** Monotonized timestamps for spans and telemetry.

    [now_s ()] is [Unix.gettimeofday] clamped through a process-wide
    atomic high-water mark: successive reads never decrease, across
    all domains, even if the system wall clock steps backwards. Values
    stay on the Unix epoch scale, so they remain meaningful next to
    wall-clock timestamps in logs. *)

val now_s : unit -> float
