(** Hierarchical span tracing on a monotonized clock.

    A span is one timed scope — a solver phase, a racing lane, a pool
    task, a serve request. Spans nest: within {!with_span} the current
    span is the implicit parent of any span opened below it on the
    same domain, and {!context}/{!in_context} carry that parentage
    across [Domain.spawn], so a portfolio race shows one root span
    with per-lane children even though lanes run on worker domains.

    When {!Control.enabled} is off, {!with_span} is a single atomic
    load plus a direct call of the body — no allocation, no clock
    read. Completed spans go to a process-wide sink; {!drain} collects
    them for export (see {!Export}). *)

type id = int

type t = {
  id : id;
  parent : id option;
  name : string;
  cat : string;  (** coarse grouping, e.g. ["engine.phase"], ["runtime"] *)
  args : (string * string) list;  (** free-form annotations *)
  start_s : float;  (** {!Clock.now_s} at open *)
  dur_s : float;
  domain : int;  (** domain the span closed on *)
}

(** [with_span name f] times [f] as a span named [name], parented to
    the current span (or [?parent] when given), and records it when
    [f] returns or raises. Returns [f ()]'s value; exceptions pass
    through with their backtrace. A no-op call of [f] when
    observability is disabled. *)
val with_span :
  ?cat:string ->
  ?parent:id ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a

(** Current span id on this domain, for carrying across a domain
    boundary: capture with [context ()] before [Domain.spawn], then
    wrap the spawned body in {!in_context}. *)
val context : unit -> id option

(** [in_context ctx f] runs [f] with the current-span context set to
    [ctx], restoring the previous context afterwards (also on
    exception). *)
val in_context : id option -> (unit -> 'a) -> 'a

(** Collect (and remove) all completed spans, oldest first. *)
val drain : unit -> t list

(** Discard all completed spans. *)
val clear : unit -> unit

(** Install (or with [None] remove) a streaming sink that sees each
    span as it completes, in addition to the {!drain} buffer. The sink
    runs outside the internal lock; exceptions it raises are
    swallowed. *)
val set_stream : (t -> unit) option -> unit
