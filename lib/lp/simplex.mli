(** Two-phase dense primal simplex.

    Plays the role of CLP in the paper's stack: it solves the LP
    relaxations inside the MILP branch-and-bound and the master problems
    of the LP/NLP-based MINLP algorithm. General bounds and free
    variables are handled by substitution; degeneracy is handled by
    switching from Dantzig to Bland's rule, which guarantees
    termination. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit  (** gave up; [x]/[obj] hold the last iterate *)

type solution = {
  status : status;
  x : float array;  (** length [num_vars]; meaningful when [Optimal] *)
  obj : float;  (** objective value in the problem's own sense *)
}

(** [run ?max_iter ?budget ?tally p] — solve [p], returning the raw
    solver record. The result's [x] is in the original variable space
    (bound offsets undone).

    The tableau is a flat row-major [float array] (stride = columns +
    rhs); pivoting and the ratio test are allocation-free.  The kernel
    is bit-for-bit equivalent to the retained {!Simplex_reference}
    implementation: identical pivot sequence (observable through
    [pivot_log], which receives [(row, entering column)] pairs, most
    recent first), statuses, solutions and objectives.

    [budget] is an armed {!Engine.Budget}: each pivot bumps its
    iteration counter and the deadline/cancel token is polled every 64
    pivots; on exhaustion the status is [Iteration_limit] (interpret the
    cause via [Engine.Budget.inspect]). [tally] accumulates [lp_solves]
    and [simplex_pivots]. *)
val run :
  ?max_iter:int ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ?pivot_log:(int * int) list ref ->
  Lp_problem.t ->
  solution

(** The unified entry point ({!Engine.Solver_intf.S} convention): [Ok]
    carries the proven-optimal solution plus its certificate
    ([Exact_method] evidence — the simplex terminates only at an optimal
    basis), [Error] the {!Engine.Status.t} explaining why there is no
    usable point. [warm_start] is accepted for signature uniformity and
    ignored (the two-phase simplex builds its own starting basis). *)
val solve :
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:float array ->
  ?trace:Engine.Telemetry.t ->
  Lp_problem.t ->
  (solution Engine.Solver_intf.certified, Engine.Status.t) result

