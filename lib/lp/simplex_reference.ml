(* The pre-flat-tableau simplex, kept verbatim as a differential-testing
   oracle: test/test_lp.ml qchecks that the flat kernel in Simplex
   reproduces this implementation's pivot sequence, status, solution and
   objective bit-for-bit on seeded random LPs.  Keep the arithmetic in
   this file byte-stable; it is the semantic definition of the solver. *)

let eps = 1e-9

(* How each original variable maps into standard-form columns. *)
type var_map =
  | Shifted of int * float  (* column, offset: x = offset + x' *)
  | Flipped of int * float  (* column, offset: x = offset - x' *)
  | Split of int * int      (* x = x⁺ - x⁻ *)

type std_row = { coeffs : float array; rhs : float; sense : Lp_problem.sense }

let run ?(max_iter = 200_000) ?budget ?tally ?pivot_log (p : Lp_problem.t) =
  Engine.Telemetry.bump tally Engine.Telemetry.add_lp_solves 1;
  let n = p.num_vars in
  (* --- 1. map variables to non-negative standard columns --- *)
  let next_col = ref 0 in
  let fresh () =
    let c = !next_col in
    incr next_col;
    c
  in
  let vmap =
    Array.init n (fun j ->
        let lo = p.lower.(j) and hi = p.upper.(j) in
        if lo > neg_infinity then Shifted (fresh (), lo)
        else if hi < infinity then Flipped (fresh (), hi)
        else Split (fresh (), fresh ()))
  in
  let n_struct = !next_col in
  (* translate a sparse user row into a dense standard row + rhs shift *)
  let translate coeffs rhs sense =
    let dense = Array.make n_struct 0. in
    let rhs = ref rhs in
    List.iter
      (fun (j, a) ->
        match vmap.(j) with
        | Shifted (c, off) ->
          dense.(c) <- dense.(c) +. a;
          rhs := !rhs -. (a *. off)
        | Flipped (c, off) ->
          dense.(c) <- dense.(c) -. a;
          rhs := !rhs -. (a *. off)
        | Split (cp, cm) ->
          dense.(cp) <- dense.(cp) +. a;
          dense.(cm) <- dense.(cm) -. a)
      coeffs;
    { coeffs = dense; rhs = !rhs; sense }
  in
  (* user rows plus residual upper bounds as explicit rows *)
  let rows = ref [] in
  Array.iter
    (fun (row : Lp_problem.constr) ->
      rows := translate row.coeffs row.rhs row.sense :: !rows)
    p.constraints;
  for j = 0 to n - 1 do
    match vmap.(j) with
    | Shifted (_, _) when p.upper.(j) < infinity ->
      rows := translate [ (j, 1.) ] p.upper.(j) Lp_problem.Le :: !rows
    | Flipped (_, _) when p.lower.(j) > neg_infinity ->
      rows := translate [ (j, 1.) ] p.lower.(j) Lp_problem.Ge :: !rows
    | Split _ when p.upper.(j) < infinity ->
      rows := translate [ (j, 1.) ] p.upper.(j) Lp_problem.Le :: !rows
    | Shifted _ | Flipped _ | Split _ -> ()
  done;
  let flip_sense = function
    | Lp_problem.Le -> Lp_problem.Ge
    | Lp_problem.Ge -> Lp_problem.Le
    | Lp_problem.Eq -> Lp_problem.Eq
  in
  (* normalize so every rhs is non-negative (negation flips the sense) *)
  let rows =
    Array.of_list
      (List.rev_map
         (fun r ->
           if r.rhs < 0. then
             { coeffs = Array.map (fun a -> -.a) r.coeffs; rhs = -.r.rhs; sense = flip_sense r.sense }
           else r)
         !rows)
  in
  let m = Array.length rows in
  (* --- 2. column layout: structural | slack/surplus | artificial --- *)
  let n_slack =
    Array.fold_left
      (fun acc r -> match r.sense with Lp_problem.Le | Lp_problem.Ge -> acc + 1 | Lp_problem.Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc r -> match r.sense with Lp_problem.Ge | Lp_problem.Eq -> acc + 1 | Lp_problem.Le -> acc)
      0 rows
  in
  let ncols = n_struct + n_slack + n_art in
  let tab = Array.make_matrix m (ncols + 1) 0. in
  let basis = Array.make m (-1) in
  let art_cols = Array.make n_art (-1) in
  let slack_idx = ref 0 and art_idx = ref 0 in
  Array.iteri
    (fun i r ->
      Array.blit r.coeffs 0 tab.(i) 0 n_struct;
      tab.(i).(ncols) <- r.rhs;
      (match r.sense with
      | Lp_problem.Le ->
        let c = n_struct + !slack_idx in
        incr slack_idx;
        tab.(i).(c) <- 1.;
        basis.(i) <- c
      | Lp_problem.Ge ->
        let c = n_struct + !slack_idx in
        incr slack_idx;
        tab.(i).(c) <- -1.;
        let a = n_struct + n_slack + !art_idx in
        art_cols.(!art_idx) <- a;
        incr art_idx;
        tab.(i).(a) <- 1.;
        basis.(i) <- a
      | Lp_problem.Eq ->
        let a = n_struct + n_slack + !art_idx in
        art_cols.(!art_idx) <- a;
        incr art_idx;
        tab.(i).(a) <- 1.;
        basis.(i) <- a))
    rows;
  let is_artificial c = c >= n_struct + n_slack in
  (* --- 3. simplex core on (cost row z, tableau) --- *)
  let z = Array.make (ncols + 1) 0. in
  let iterations = ref 0 in
  let pivot r c =
    (match pivot_log with Some log -> log := (r, c) :: !log | None -> ());
    let pr = tab.(r) in
    let piv = pr.(c) in
    for j = 0 to ncols do
      pr.(j) <- pr.(j) /. piv
    done;
    for i = 0 to m - 1 do
      if i <> r then begin
        let f = tab.(i).(c) in
        if f <> 0. then
          for j = 0 to ncols do
            tab.(i).(j) <- tab.(i).(j) -. (f *. pr.(j))
          done
      end
    done;
    let f = z.(c) in
    if f <> 0. then
      for j = 0 to ncols do
        z.(j) <- z.(j) -. (f *. pr.(j))
      done;
    basis.(r) <- c
  in
  (* returns `Optimal | `Unbounded | `Limit *)
  let bland_threshold = 1_000 + (5 * (m + ncols)) in
  (* Poll the shared budget only every 64 pivots: the deadline check
     costs a gettimeofday, which would otherwise dominate small LPs. *)
  let budget_stop () =
    match budget with
    | None -> false
    | Some b ->
      Engine.Budget.add_iters b 1;
      !iterations land 63 = 0 && Engine.Budget.check b <> None
  in
  let run_phase allow_col =
    let result = ref None in
    let phase_start = !iterations in
    while !result = None do
      if !iterations > max_iter || budget_stop () then result := Some `Limit
      else begin
        incr iterations;
        (* entering column: Dantzig; Bland past a threshold to kill
           degenerate cycling (Dantzig can stall for thousands of
           pivots on degenerate vertices) *)
        let bland = !iterations - phase_start > bland_threshold in
        let enter = ref (-1) in
        let best = ref (-.eps) in
        (try
           for c = 0 to ncols - 1 do
             if allow_col c && z.(c) < -.eps then
               if bland then begin
                 enter := c;
                 raise Exit
               end
               else if z.(c) < !best then begin
                 best := z.(c);
                 enter := c
               end
           done
         with Exit -> ());
        if !enter < 0 then result := Some `Optimal
        else begin
          let c = !enter in
          (* ratio test; Bland tie-break on smallest basis index *)
          let leave = ref (-1) in
          let best_ratio = ref infinity in
          for i = 0 to m - 1 do
            if tab.(i).(c) > eps then begin
              let ratio = tab.(i).(ncols) /. tab.(i).(c) in
              if
                ratio < !best_ratio -. eps
                || (Float.abs (ratio -. !best_ratio) <= eps
                   && !leave >= 0
                   && basis.(i) < basis.(!leave))
              then begin
                best_ratio := ratio;
                leave := i
              end
            end
          done;
          if !leave < 0 then result := Some `Unbounded else pivot !leave c
        end
      end
    done;
    match !result with Some r -> r | None -> assert false
  in
  let finish (s : Simplex.solution) =
    Engine.Telemetry.bump tally Engine.Telemetry.add_simplex_pivots !iterations;
    s
  in
  let infeasible_result () =
    finish { Simplex.status = Simplex.Infeasible; x = Array.make n 0.; obj = nan }
  in
  (* --- 4. phase 1 --- *)
  let need_phase1 = n_art > 0 in
  let phase1_ok =
    if not need_phase1 then `Optimal
    else begin
      Array.fill z 0 (ncols + 1) 0.;
      Array.iter (fun a -> z.(a) <- 1.) art_cols;
      (* price out basic artificials *)
      for i = 0 to m - 1 do
        if is_artificial basis.(i) then
          for j = 0 to ncols do
            z.(j) <- z.(j) -. tab.(i).(j)
          done
      done;
      run_phase (fun _ -> true)
    end
  in
  match phase1_ok with
  | `Limit ->
    finish { Simplex.status = Simplex.Iteration_limit; x = Array.make n 0.; obj = nan }
  | `Unbounded -> infeasible_result () (* phase 1 cannot be unbounded; defensive *)
  | `Optimal ->
    let phase1_obj = if need_phase1 then -.z.(ncols) else 0. in
    if need_phase1 && phase1_obj > 1e-7 then infeasible_result ()
    else begin
      (* drive artificials out of the basis when possible *)
      if need_phase1 then
        for i = 0 to m - 1 do
          if is_artificial basis.(i) then begin
            let found = ref (-1) in
            (try
               for c = 0 to n_struct + n_slack - 1 do
                 if Float.abs tab.(i).(c) > 1e-7 then begin
                   found := c;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !found >= 0 then pivot i !found
            (* else: redundant row, leave the zero-valued artificial basic *)
          end
        done;
      (* --- 5. phase 2 --- *)
      let sign = if p.minimize then 1. else -1. in
      Array.fill z 0 (ncols + 1) 0.;
      for j = 0 to n - 1 do
        let c = sign *. p.objective.(j) in
        match vmap.(j) with
        | Shifted (col, _) -> z.(col) <- z.(col) +. c
        | Flipped (col, _) -> z.(col) <- z.(col) -. c
        | Split (cp, cm) ->
          z.(cp) <- z.(cp) +. c;
          z.(cm) <- z.(cm) -. c
      done;
      (* price out current basis *)
      for i = 0 to m - 1 do
        let b = basis.(i) in
        let f = z.(b) in
        if f <> 0. then
          for j = 0 to ncols do
            z.(j) <- z.(j) -. (f *. tab.(i).(j))
          done
      done;
      let allow c = not (is_artificial c) in
      match run_phase allow with
      | `Limit ->
        finish { Simplex.status = Simplex.Iteration_limit; x = Array.make n 0.; obj = nan }
      | `Unbounded ->
        finish { Simplex.status = Simplex.Unbounded; x = Array.make n 0.; obj = nan }
      | `Optimal ->
        (* recover structural values *)
        let xs = Array.make n_struct 0. in
        for i = 0 to m - 1 do
          if basis.(i) < n_struct then xs.(basis.(i)) <- tab.(i).(ncols)
        done;
        let x =
          Array.init n (fun j ->
              match vmap.(j) with
              | Shifted (c, off) -> off +. xs.(c)
              | Flipped (c, off) -> off -. xs.(c)
              | Split (cp, cm) -> xs.(cp) -. xs.(cm))
        in
        finish { Simplex.status = Simplex.Optimal; x; obj = Lp_problem.objective_value p x }
    end
