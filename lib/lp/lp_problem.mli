(** Linear-program description consumed by {!Simplex}.

    A problem is: minimize (or maximize) [c·x] subject to row constraints
    [a·x {<=,=,>=} b] and per-variable bounds [lower <= x <= upper]
    ([neg_infinity]/[infinity] allowed). This is the form the MILP and
    outer-approximation layers of the MINLP toolkit emit. *)

type sense = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse row: (variable index, coefficient) *)
  sense : sense;
  rhs : float;
}

type t = private {
  num_vars : int;
  minimize : bool;
  objective : float array;  (** dense cost vector, length [num_vars] *)
  constraints : constr array;
  lower : float array;
  upper : float array;
  names : string array;  (** variable names, for diagnostics *)
}

(** [make ~num_vars ()] — fresh problem with zero objective, no
    constraints, bounds [0, +inf), minimization sense. *)
val make :
  ?minimize:bool ->
  ?names:string array ->
  num_vars:int ->
  unit ->
  t

(** [set_objective p c] — replace the cost vector (length-checked). *)
val set_objective : t -> float array -> t

(** [set_bounds p j ~lo ~hi] — bound variable [j]. Raises if [lo > hi]. *)
val set_bounds : t -> int -> lo:float -> hi:float -> t

(** [with_bounds p ~lo ~hi] — replace both bound vectors in one copy.
    The node loops of {!Minlp} re-bound an otherwise identical problem
    thousands of times; this avoids the O(n²) per-node cost of calling
    {!set_bounds} per variable. Raises if lengths mismatch or any
    [lo.(j) > hi.(j)]. *)
val with_bounds : t -> lo:float array -> hi:float array -> t

(** [add_constraint p row] — append a row; indices are range-checked. *)
val add_constraint : t -> constr -> t

(** [add_constraints p rows] — append several rows. *)
val add_constraints : t -> constr list -> t

(** [eval_constraint row x] — the left-hand value [a·x]. *)
val eval_constraint : constr -> float array -> float

(** [constraint_satisfied ?tol row x] — feasibility of one row. *)
val constraint_satisfied : ?tol:float -> constr -> float array -> bool

(** [feasible ?tol p x] — all rows and bounds hold at [x]. *)
val feasible : ?tol:float -> t -> float array -> bool

(** [objective_value p x] — [c·x] (sign as stored, i.e. the value of the
    user's objective regardless of sense). *)
val objective_value : t -> float array -> float

val pp : Format.formatter -> t -> unit
