(** Cheap LP presolve shared by the MINLP relaxation layer.

    [reduce] applies, to a fixpoint: fixed-variable substitution
    (variables whose bounds coincide — branching pins many), empty-row
    feasibility checks, singleton-row elimination by bound tightening;
    then a power-of-two row equilibration (exponent shifts only, exact
    in binary floating point).  The reduced problem has the fixed
    columns removed; [recover] maps a reduced solution back to the full
    variable space.

    Note the reduced problem's objective omits the constant contributed
    by fixed variables — evaluate the original objective on the
    recovered point when the value matters. *)

type reduction

(** [reduce p] — [`Infeasible] when presolve proves the LP empty
    (crossed bounds, unsatisfiable constant row), [`Solved x] when
    every variable is pinned by its bounds and all rows hold at [x],
    otherwise [`Reduced r]. *)
val reduce : Lp_problem.t -> [ `Infeasible | `Solved of float array | `Reduced of reduction ]

(** The reduced LP to hand to {!Simplex.run}. *)
val reduced : reduction -> Lp_problem.t

(** [recover r xr] — lift a reduced-space solution to the original
    variable space (fixed variables at their pinned values). *)
val recover : reduction -> float array -> float array

(** Diagnostics: columns eliminated / rows dropped by the reduction. *)
val vars_fixed : reduction -> int

val rows_dropped : reduction -> int
