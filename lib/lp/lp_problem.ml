type sense = Le | Ge | Eq
type constr = { coeffs : (int * float) list; sense : sense; rhs : float }

type t = {
  num_vars : int;
  minimize : bool;
  objective : float array;
  constraints : constr array;
  lower : float array;
  upper : float array;
  names : string array;
}

let make ?(minimize = true) ?names ~num_vars () =
  if num_vars <= 0 then invalid_arg "Lp_problem.make: num_vars must be positive";
  let names =
    match names with
    | Some ns ->
      if Array.length ns <> num_vars then invalid_arg "Lp_problem.make: names length mismatch";
      ns
    | None -> Array.init num_vars (fun j -> Printf.sprintf "x%d" j)
  in
  {
    num_vars;
    minimize;
    objective = Array.make num_vars 0.;
    constraints = [||];
    lower = Array.make num_vars 0.;
    upper = Array.make num_vars infinity;
    names;
  }

let set_objective p c =
  if Array.length c <> p.num_vars then invalid_arg "Lp_problem.set_objective: length mismatch";
  { p with objective = Array.copy c }

let set_bounds p j ~lo ~hi =
  if j < 0 || j >= p.num_vars then invalid_arg "Lp_problem.set_bounds: index out of range";
  if lo > hi then invalid_arg "Lp_problem.set_bounds: lo > hi";
  let lower = Array.copy p.lower and upper = Array.copy p.upper in
  lower.(j) <- lo;
  upper.(j) <- hi;
  { p with lower; upper }

let with_bounds p ~lo ~hi =
  if Array.length lo <> p.num_vars || Array.length hi <> p.num_vars then
    invalid_arg "Lp_problem.with_bounds: bound length mismatch";
  for j = 0 to p.num_vars - 1 do
    if lo.(j) > hi.(j) then invalid_arg "Lp_problem.with_bounds: lo > hi"
  done;
  { p with lower = Array.copy lo; upper = Array.copy hi }

let check_row p row =
  List.iter
    (fun (j, _) ->
      if j < 0 || j >= p.num_vars then invalid_arg "Lp_problem.add_constraint: index out of range")
    row.coeffs

let add_constraint p row =
  check_row p row;
  { p with constraints = Array.append p.constraints [| row |] }

let add_constraints p rows =
  List.iter (check_row p) rows;
  { p with constraints = Array.append p.constraints (Array.of_list rows) }

let eval_constraint row x =
  List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0. row.coeffs

let constraint_satisfied ?(tol = 1e-7) row x =
  let v = eval_constraint row x in
  match row.sense with
  | Le -> v <= row.rhs +. tol
  | Ge -> v >= row.rhs -. tol
  | Eq -> Float.abs (v -. row.rhs) <= tol

let feasible ?(tol = 1e-7) p x =
  Array.length x = p.num_vars
  && Array.for_all (fun row -> constraint_satisfied ~tol row x) p.constraints
  &&
  let ok = ref true in
  for j = 0 to p.num_vars - 1 do
    if x.(j) < p.lower.(j) -. tol || x.(j) > p.upper.(j) +. tol then ok := false
  done;
  !ok

let objective_value p x =
  let acc = ref 0. in
  for j = 0 to p.num_vars - 1 do
    acc := !acc +. (p.objective.(j) *. x.(j))
  done;
  !acc

let pp_sense fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp fmt p =
  Format.fprintf fmt "@[<v>%s %d vars, %d rows@,"
    (if p.minimize then "minimize" else "maximize")
    p.num_vars (Array.length p.constraints);
  Format.fprintf fmt "obj:";
  Array.iteri
    (fun j c -> if c <> 0. then Format.fprintf fmt " %+g %s" c p.names.(j))
    p.objective;
  Format.fprintf fmt "@,";
  Array.iter
    (fun row ->
      List.iter (fun (j, a) -> Format.fprintf fmt " %+g %s" a p.names.(j)) row.coeffs;
      Format.fprintf fmt " %a %g@," pp_sense row.sense row.rhs)
    p.constraints;
  for j = 0 to p.num_vars - 1 do
    if p.lower.(j) <> 0. || p.upper.(j) <> infinity then
      Format.fprintf fmt "%g <= %s <= %g@," p.lower.(j) p.names.(j) p.upper.(j)
  done;
  Format.fprintf fmt "@]"
