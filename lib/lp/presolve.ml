(* Cheap LP presolve: fixed-variable substitution, empty/singleton row
   elimination (as bound tightening) to a fixpoint, then power-of-two
   row equilibration.  The node loops of the MINLP layer emit thousands
   of small LPs whose boxes fix many variables (branching pins
   integers); eliminating them before the simplex shrinks the tableau
   the flat kernel has to sweep.

   Scaling uses powers of two only, so row coefficients change exponent
   bits exclusively — every scaled coefficient, pivot and recovered
   solution value is exact in binary floating point. *)

let tol = 1e-9

type work_row = { coeffs : (int * float) list; sense : Lp_problem.sense; rhs : float }

type reduction = {
  original : Lp_problem.t;
  red : Lp_problem.t;
  kept : int array; (* reduced column -> original column *)
  pos : int array; (* original column -> reduced column, or -1 when fixed *)
  value : float array; (* fixed value per original column (when pos = -1) *)
  vars_fixed : int;
  rows_dropped : int;
}

let reduced r = r.red

let recover r xr =
  Array.init r.original.Lp_problem.num_vars (fun j ->
      let p = r.pos.(j) in
      if p >= 0 then xr.(p) else r.value.(j))

let vars_fixed r = r.vars_fixed
let rows_dropped r = r.rows_dropped

let row_trivially_feasible (row : work_row) =
  match row.sense with
  | Lp_problem.Le -> row.rhs >= -.tol
  | Lp_problem.Ge -> row.rhs <= tol
  | Lp_problem.Eq -> Float.abs row.rhs <= tol

let reduce (p : Lp_problem.t) =
  let n = p.Lp_problem.num_vars in
  let lo = Array.copy p.Lp_problem.lower and hi = Array.copy p.Lp_problem.upper in
  let fixed = Array.make n false in
  let value = Array.make n 0. in
  let infeasible = ref false in
  let rows_dropped = ref 0 in
  let fix j v =
    fixed.(j) <- true;
    value.(j) <- v
  in
  (* a bound pair collapses a variable when exactly equal; tightening
     below may also cross bounds, which is infeasibility *)
  let scan_bounds () =
    let fresh = ref false in
    for j = 0 to n - 1 do
      if not fixed.(j) then begin
        if lo.(j) > hi.(j) +. tol then infeasible := true
        else if lo.(j) > hi.(j) then hi.(j) <- lo.(j) (* sub-tol crossing: collapse *)
        else ();
        if (not !infeasible) && lo.(j) = hi.(j) then begin
          fix j lo.(j);
          fresh := true
        end
      end
    done;
    !fresh
  in
  let rows =
    ref
      (Array.to_list
         (Array.map
            (fun (c : Lp_problem.constr) ->
              { coeffs = c.Lp_problem.coeffs; sense = c.Lp_problem.sense; rhs = c.Lp_problem.rhs })
            p.Lp_problem.constraints))
  in
  (* substitute fixed variables into a row *)
  let substitute row =
    if List.exists (fun (j, _) -> fixed.(j)) row.coeffs then begin
      let rhs = ref row.rhs in
      let coeffs =
        List.filter
          (fun (j, a) ->
            if fixed.(j) then begin
              rhs := !rhs -. (a *. value.(j));
              false
            end
            else true)
          row.coeffs
      in
      { row with coeffs; rhs = !rhs }
    end
    else row
  in
  let tighten j a rhs sense =
    (* a·x {<=,>=,=} rhs over a single variable: fold into the box *)
    let v = rhs /. a in
    let upper () = if v < hi.(j) then hi.(j) <- v in
    let lower () = if v > lo.(j) then lo.(j) <- v in
    match (sense, a > 0.) with
    | Lp_problem.Le, true | Lp_problem.Ge, false -> upper ()
    | Lp_problem.Ge, true | Lp_problem.Le, false -> lower ()
    | Lp_problem.Eq, _ ->
      upper ();
      lower ()
  in
  ignore (scan_bounds ());
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && (not !infeasible) && !rounds < 8 do
    incr rounds;
    progress := false;
    rows :=
      List.filter
        (fun row0 ->
          if !infeasible then true
          else begin
            let row = substitute row0 in
            match row.coeffs with
            | [] ->
              if not (row_trivially_feasible row) then infeasible := true;
              incr rows_dropped;
              false
            | [ (j, a) ] when a <> 0. ->
              tighten j a row.rhs row.sense;
              progress := true;
              incr rows_dropped;
              false
            | _ -> true
          end)
        !rows;
    if scan_bounds () then progress := true
  done;
  if !infeasible then `Infeasible
  else begin
    (* final substitution pass so surviving rows reference only free
       variables *)
    let rows = List.map substitute !rows in
    List.iter
      (fun row -> if row.coeffs = [] && not (row_trivially_feasible row) then infeasible := true)
      rows;
    let rows = List.filter (fun row -> row.coeffs <> []) rows in
    if !infeasible then `Infeasible
    else begin
      let kept = ref [] in
      for j = n - 1 downto 0 do
        if not fixed.(j) then kept := j :: !kept
      done;
      let kept = Array.of_list !kept in
      let nk = Array.length kept in
      if nk = 0 then
        (* everything pinned by bounds: the point is the whole problem *)
        if List.for_all row_trivially_feasible rows then `Solved (Array.copy value)
        else `Infeasible
      else begin
        let pos = Array.make n (-1) in
        Array.iteri (fun r j -> pos.(j) <- r) kept;
        (* power-of-two row equilibration: bring max |a| into [0.5, 1)
           shifting exponents only — exact, so the solved vertex is the
           same point in exact arithmetic AND in floating point *)
        let scale_row row =
          let maxabs =
            List.fold_left (fun acc (_, a) -> Float.max acc (Float.abs a)) 0. row.coeffs
          in
          if maxabs = 0. || not (Float.is_finite maxabs) then row
          else begin
            let _, e = Float.frexp maxabs in
            if e = 0 then row
            else
              {
                row with
                coeffs = List.map (fun (j, a) -> (j, Float.ldexp a (-e))) row.coeffs;
                rhs = Float.ldexp row.rhs (-e);
              }
          end
        in
        let remap row =
          let row = scale_row row in
          {
            Lp_problem.coeffs = List.map (fun (j, a) -> (pos.(j), a)) row.coeffs;
            sense = row.sense;
            rhs = row.rhs;
          }
        in
        let red = Lp_problem.make ~minimize:p.Lp_problem.minimize ~num_vars:nk () in
        let obj = Array.make nk 0. in
        let rlo = Array.make nk 0. and rhi = Array.make nk 0. in
        Array.iteri
          (fun r j ->
            obj.(r) <- p.Lp_problem.objective.(j);
            rlo.(r) <- lo.(j);
            rhi.(r) <- hi.(j))
          kept;
        let red = Lp_problem.set_objective red obj in
        let red = Lp_problem.with_bounds red ~lo:rlo ~hi:rhi in
        let red = Lp_problem.add_constraints red (List.map remap rows) in
        `Reduced
          {
            original = p;
            red;
            kept;
            pos;
            value;
            vars_fixed = n - nk;
            rows_dropped = !rows_dropped;
          }
      end
    end
  end
