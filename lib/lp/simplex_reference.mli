(** The pre-flat-tableau two-phase simplex, kept verbatim as a
    differential-testing oracle for {!Simplex}.

    The flat-array kernel in {!Simplex} must reproduce this
    implementation bit-for-bit: same pivot sequence (observable via
    [pivot_log]), same status, same solution vector and objective.
    test/test_lp.ml pins that property with qcheck over seeded random
    LPs. Not used on any production path. *)

(** Same contract as {!Simplex.run}. [pivot_log] (when given) receives
    each pivot as [(row, entering column)], most recent first. *)
val run :
  ?max_iter:int ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ?pivot_log:(int * int) list ref ->
  Lp_problem.t ->
  Simplex.solution
