(** Structured per-run solver telemetry.

    One mutable record is threaded (as [?tally]) through the whole
    solver stack; each layer bumps the counters it owns:

    - [Lp.Simplex]: [lp_solves], [simplex_pivots]
    - [Nlp.Bounded]: [nlp_iterations], [line_search_steps]
    - [Minlp.Relax]: [nlp_solves]
    - [Minlp.Milp] / [Minlp.Bnb]: [nodes_expanded], [nodes_pruned],
      [incumbent_updates], [warm_start_used]
    - [Minlp.Oa] / [Minlp.Oa_multi]: [oa_cuts]

    Phase timers accumulate wall-clock seconds under string labels
    ("presolve", "root-nlp", "master", ...). All entry points are
    [option]-tolerant so instrumentation is free when no tally is
    attached. *)

type t = {
  mutable nodes_expanded : int;
  mutable nodes_pruned : int;
  mutable lp_solves : int;
  mutable simplex_pivots : int;
  mutable nlp_solves : int;
  mutable nlp_iterations : int;
  mutable line_search_steps : int;
  mutable oa_cuts : int;
  mutable incumbent_updates : int;
  mutable warm_start_used : bool;
  phase_s : (string, float) Hashtbl.t;  (** label -> accumulated seconds *)
}

val create : unit -> t
val reset : t -> unit

(** Add every counter of the second tally into the first. *)
val merge_into : t -> t -> unit

(** [bump tally f n] adds [n] via setter [f] when [tally] is [Some _]. *)
val bump : t option -> (t -> int -> unit) -> int -> unit

val add_nodes_expanded : t -> int -> unit
val add_nodes_pruned : t -> int -> unit
val add_lp_solves : t -> int -> unit
val add_simplex_pivots : t -> int -> unit
val add_nlp_solves : t -> int -> unit
val add_nlp_iterations : t -> int -> unit
val add_line_search_steps : t -> int -> unit
val add_oa_cuts : t -> int -> unit
val add_incumbent_updates : t -> int -> unit
val set_warm_start_used : t option -> unit

(** [time tally label f] runs [f ()], accumulating its wall-clock time
    under [label] when a tally is attached. Re-entrant labels just
    accumulate. *)
val time : t option -> string -> (unit -> 'a) -> 'a

(** Accumulated phase timers, sorted by label. *)
val phases : t -> (string * float) list

val pp : Format.formatter -> t -> unit
