type t = {
  mutable nodes_expanded : int;
  mutable nodes_pruned : int;
  mutable lp_solves : int;
  mutable simplex_pivots : int;
  mutable nlp_solves : int;
  mutable nlp_iterations : int;
  mutable line_search_steps : int;
  mutable oa_cuts : int;
  mutable incumbent_updates : int;
  mutable warm_start_used : bool;
  phase_s : (string, float) Hashtbl.t;
}

let create () =
  {
    nodes_expanded = 0;
    nodes_pruned = 0;
    lp_solves = 0;
    simplex_pivots = 0;
    nlp_solves = 0;
    nlp_iterations = 0;
    line_search_steps = 0;
    oa_cuts = 0;
    incumbent_updates = 0;
    warm_start_used = false;
    phase_s = Hashtbl.create 8;
  }

let reset t =
  t.nodes_expanded <- 0;
  t.nodes_pruned <- 0;
  t.lp_solves <- 0;
  t.simplex_pivots <- 0;
  t.nlp_solves <- 0;
  t.nlp_iterations <- 0;
  t.line_search_steps <- 0;
  t.oa_cuts <- 0;
  t.incumbent_updates <- 0;
  t.warm_start_used <- false;
  Hashtbl.reset t.phase_s

let merge_into dst src =
  dst.nodes_expanded <- dst.nodes_expanded + src.nodes_expanded;
  dst.nodes_pruned <- dst.nodes_pruned + src.nodes_pruned;
  dst.lp_solves <- dst.lp_solves + src.lp_solves;
  dst.simplex_pivots <- dst.simplex_pivots + src.simplex_pivots;
  dst.nlp_solves <- dst.nlp_solves + src.nlp_solves;
  dst.nlp_iterations <- dst.nlp_iterations + src.nlp_iterations;
  dst.line_search_steps <- dst.line_search_steps + src.line_search_steps;
  dst.oa_cuts <- dst.oa_cuts + src.oa_cuts;
  dst.incumbent_updates <- dst.incumbent_updates + src.incumbent_updates;
  dst.warm_start_used <- dst.warm_start_used || src.warm_start_used;
  Hashtbl.iter
    (fun label s ->
      let prior = try Hashtbl.find dst.phase_s label with Not_found -> 0. in
      Hashtbl.replace dst.phase_s label (prior +. s))
    src.phase_s

let bump tally f n = match tally with Some t -> f t n | None -> ()
let add_nodes_expanded t n = t.nodes_expanded <- t.nodes_expanded + n
let add_nodes_pruned t n = t.nodes_pruned <- t.nodes_pruned + n
let add_lp_solves t n = t.lp_solves <- t.lp_solves + n
let add_simplex_pivots t n = t.simplex_pivots <- t.simplex_pivots + n
let add_nlp_solves t n = t.nlp_solves <- t.nlp_solves + n
let add_nlp_iterations t n = t.nlp_iterations <- t.nlp_iterations + n
let add_line_search_steps t n = t.line_search_steps <- t.line_search_steps + n
let add_oa_cuts t n = t.oa_cuts <- t.oa_cuts + n
let add_incumbent_updates t n = t.incumbent_updates <- t.incumbent_updates + n

let set_warm_start_used = function
  | Some t -> t.warm_start_used <- true
  | None -> ()

(* registered eagerly at module init (single-domain), so the hot path
   never touches the registry lock *)
let phase_hist = Obs.Metrics.histogram ~lo:1e-6 ~hi:1e5 "engine_phase_seconds"

let time tally label f =
  let observing = Obs.Control.enabled () in
  if tally = None && not observing then f ()
  else begin
    let body () =
      let t0 = Unix.gettimeofday () in
      let finish () =
        let dt = Unix.gettimeofday () -. t0 in
        (match tally with
        | None -> ()
        | Some t ->
          let prior = try Hashtbl.find t.phase_s label with Not_found -> 0. in
          Hashtbl.replace t.phase_s label (prior +. dt));
        if observing then Obs.Metrics.Histogram.observe phase_hist dt
      in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e
    in
    if observing then Obs.Span.with_span ~cat:"engine.phase" label body
    else body ()
  end

let phases t =
  Hashtbl.fold (fun label s acc -> (label, s) :: acc) t.phase_s []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  Format.fprintf fmt
    "@[<h>nodes=%d/%d lp=%d pivots=%d nlp=%d nlp_iters=%d ls=%d cuts=%d incumbents=%d warm=%b@]"
    t.nodes_expanded t.nodes_pruned t.lp_solves t.simplex_pivots t.nlp_solves
    t.nlp_iterations t.line_search_steps t.oa_cuts t.incumbent_updates
    t.warm_start_used
