type reason = Node_limit | Iter_limit | Round_limit | Deadline | Cancelled | Audit_failed

type t =
  | Optimal
  | Feasible of reason
  | Infeasible
  | Unbounded
  | Budget_exhausted of reason

let reason_to_string = function
  | Node_limit -> "node-limit"
  | Iter_limit -> "iteration-limit"
  | Round_limit -> "round-limit"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Audit_failed -> "audit-failed"

let to_string = function
  | Optimal -> "optimal"
  | Feasible r -> Printf.sprintf "feasible (%s)" (reason_to_string r)
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Budget_exhausted r -> Printf.sprintf "budget-exhausted (%s)" (reason_to_string r)

let reason_of_string = function
  | "node-limit" -> Some Node_limit
  | "iteration-limit" -> Some Iter_limit
  | "round-limit" -> Some Round_limit
  | "deadline" -> Some Deadline
  | "cancelled" -> Some Cancelled
  | "audit-failed" -> Some Audit_failed
  | _ -> None

let of_string s =
  let reason_of prefix =
    let n = String.length prefix and l = String.length s in
    if l > n + 2 && String.sub s 0 n = prefix && s.[n] = ' ' && s.[n + 1] = '('
       && s.[l - 1] = ')'
    then reason_of_string (String.sub s (n + 2) (l - n - 3))
    else None
  in
  match s with
  | "optimal" -> Some Optimal
  | "infeasible" -> Some Infeasible
  | "unbounded" -> Some Unbounded
  | _ -> (
    match reason_of "feasible" with
    | Some r -> Some (Feasible r)
    | None -> (
      match reason_of "budget-exhausted" with
      | Some r -> Some (Budget_exhausted r)
      | None -> None))

let is_final = function
  | Optimal | Infeasible | Unbounded -> true
  | Feasible _ | Budget_exhausted _ -> false

let reason_of_budget = function
  | Budget.Deadline -> Deadline
  | Budget.Node_limit -> Node_limit
  | Budget.Iter_limit -> Iter_limit
  | Budget.Cancelled -> Cancelled

let pp fmt t = Format.pp_print_string fmt (to_string t)
