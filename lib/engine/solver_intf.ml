(** The one [solve] signature convention shared by every solver layer.

    Before this module the stack had seven divergent [val solve]
    signatures (LP simplex, the two NLP solvers, the three MINLP
    solvers, and the model-layer solves in lib/hslb and lib/layouts):
    different label names for the same thing ([?tally] vs [?trace]),
    different stopping authorities ([?budget] with or without a
    separate cancel token), raising vs result-returning error paths,
    and four per-module status variants. Every public [solve] now
    follows the convention below; solver-specific knobs ([?options],
    extra rows, callbacks) stay on each module's [run] workhorse.

    Convention:
    - labelled arguments, in order: [?budget ?cancel ?warm_start ?trace]
      (then solver-specific labels, then the problem, positionally last)
    - [?cancel] is merged into the budget view ({!join_budget}) so
      solvers still poll exactly one stopping authority
    - statuses are {!Status.t}
    - returns [(certified result, Status.t) result]: [Ok] carries a
      usable (feasible) point plus the {!Certificate.t} backing its
      status claim; [Error] is the status explaining why no usable
      point exists ([Infeasible], [Unbounded], or an empty-handed
      [Budget_exhausted]). *)

(** A solver result paired with the machine-checkable certificate
    backing its status claim. *)
type 'a certified = { value : 'a; cert : Certificate.t }

module type S = sig
  type problem
  type value

  val solve :
    ?budget:Budget.armed ->
    ?cancel:Cancel.t ->
    ?warm_start:float array ->
    ?trace:Telemetry.t ->
    problem ->
    (value certified, Status.t) result
end

(** [join_budget ?budget ?cancel ()] — the single stopping authority a
    solver polls: the caller's armed budget, additionally stopped by
    [cancel] when one is given. [None] only when neither is given.
    Shared clock and counters with [budget] (see
    {!Budget.with_extra_cancel}). *)
let join_budget ?budget ?cancel () =
  match (budget, cancel) with
  | None, None -> None
  | Some b, None -> Some b
  | Some b, Some c -> Some (Budget.with_extra_cancel b c)
  | None, Some c -> Some (Budget.arm (Budget.make ~cancel:c ()))
