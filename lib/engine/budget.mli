(** Solver run budgets: wall-clock deadlines, node / iteration limits
    and cooperative cancellation.

    A {!t} is an immutable specification. Arming it ({!arm}) starts the
    wall clock and creates the mutable counters that every solver layer
    shares: the MINLP branch-and-bound bumps the node counter, the LP
    simplex and the NLP line searches bump the iteration counter, and
    all inner loops poll {!check}. Because one armed budget is threaded
    through the whole solver stack (OA master -> MILP -> simplex;
    B&B -> augmented Lagrangian -> SPG), a deadline covers the entire
    run, not each sub-solve separately. *)

type reason =
  | Deadline  (** wall-clock limit elapsed *)
  | Node_limit  (** branch-and-bound node limit reached *)
  | Iter_limit  (** pivot / NLP-iteration limit reached *)
  | Cancelled  (** the {!Cancel.t} token was triggered *)

val reason_to_string : reason -> string

type t

(** [make ()] with no arguments is an unlimited budget. [deadline_s] is
    in seconds, measured from the moment the budget is armed.

    [poll_fuse (k, r)] is the fault-injection hook used by the audit
    stress harness ([Audit.Stress]): the [k]-th call to {!check} (and
    every later one) reports [Some r], deterministically and without
    any wall-clock dependence. Because the fuse trips {e at} a poll, a
    solver that stopped polling before the fuse fired was never stopped
    — so "fuse tripped and the solver still claimed a proven status" is
    an exact, false-positive-free soundness violation.
    @raise Invalid_argument when [k < 1]. *)
val make :
  ?deadline_s:float ->
  ?max_nodes:int ->
  ?max_iters:int ->
  ?cancel:Cancel.t ->
  ?poll_fuse:int * reason ->
  unit ->
  t

val unlimited : t

(** A running budget: wall clock started, counters at zero. *)
type armed

(** Start the clock. Each [arm] is independent; arming the same spec
    twice gives two independent runs. Counters are atomic, so one armed
    budget may be polled and charged from several domains at once. *)
val arm : t -> armed

(** [with_extra_cancel a tok] — a view of the same run: shared clock and
    shared (atomic) counters, but additionally stopped once [tok] is
    cancelled. Cancelling [tok] does not affect [a] itself or the
    caller's own token. This is the portfolio-racing primitive: every
    lane polls such a view, and the first final answer cancels the
    rest through [tok] while deadlines and node/iteration pools stay
    race-wide. *)
val with_extra_cancel : armed -> Cancel.t -> armed

(** [with_poll_hook a hook] — the same run, with [hook] fired at the top
    of every [check] made through {e this} view (views derived earlier,
    or with [with_extra_cancel] from [a], keep their own hook, if any).
    The hook runs on the polling domain and must be cheap and
    non-raising; the portfolio uses one to start laggard lanes once the
    leader has run for the stagger window. *)
val with_poll_hook : armed -> (unit -> unit) -> armed

val add_nodes : armed -> int -> unit
val add_iters : armed -> int -> unit
val nodes : armed -> int
val iters : armed -> int

(** Seconds since [arm]. *)
val elapsed_s : armed -> float

(** Polls charged so far ({!check} calls, across all views of the
    run). *)
val polls : armed -> int

(** [None] while the run may continue; [Some reason] once any limit has
    been hit. Cheap enough to call in inner loops (one [gettimeofday]
    when a deadline is set). Each call charges the poll counter (and
    may trip a [poll_fuse]). *)
val check : armed -> reason option

(** Like {!check} but without charging the poll counter: the stop
    verdict as the solver last saw it. This is what certificate
    emission and the auditor use, so observing a run never perturbs
    the fault-injection schedule. *)
val inspect : armed -> reason option

(** Whether an armed [poll_fuse] has fired. Always [false] when the
    budget has no fuse. *)
val fuse_tripped : armed -> bool

(** [None]-tolerant variant for optional budgets threaded through
    solver APIs: [stopped None = None]. *)
val stopped : armed option -> reason option

(** [None]-tolerant {!inspect}. *)
val inspected : armed option -> reason option
