(** Solver run budgets: wall-clock deadlines, node / iteration limits
    and cooperative cancellation.

    A {!t} is an immutable specification. Arming it ({!arm}) starts the
    wall clock and creates the mutable counters that every solver layer
    shares: the MINLP branch-and-bound bumps the node counter, the LP
    simplex and the NLP line searches bump the iteration counter, and
    all inner loops poll {!check}. Because one armed budget is threaded
    through the whole solver stack (OA master -> MILP -> simplex;
    B&B -> augmented Lagrangian -> SPG), a deadline covers the entire
    run, not each sub-solve separately. *)

type reason =
  | Deadline  (** wall-clock limit elapsed *)
  | Node_limit  (** branch-and-bound node limit reached *)
  | Iter_limit  (** pivot / NLP-iteration limit reached *)
  | Cancelled  (** the {!Cancel.t} token was triggered *)

val reason_to_string : reason -> string

type t

(** [make ()] with no arguments is an unlimited budget. [deadline_s] is
    in seconds, measured from the moment the budget is armed. *)
val make :
  ?deadline_s:float -> ?max_nodes:int -> ?max_iters:int -> ?cancel:Cancel.t -> unit -> t

val unlimited : t

(** A running budget: wall clock started, counters at zero. *)
type armed

(** Start the clock. Each [arm] is independent; arming the same spec
    twice gives two independent runs. Counters are atomic, so one armed
    budget may be polled and charged from several domains at once. *)
val arm : t -> armed

(** [with_extra_cancel a tok] — a view of the same run: shared clock and
    shared (atomic) counters, but additionally stopped once [tok] is
    cancelled. Cancelling [tok] does not affect [a] itself or the
    caller's own token. This is the portfolio-racing primitive: every
    lane polls such a view, and the first final answer cancels the
    rest through [tok] while deadlines and node/iteration pools stay
    race-wide. *)
val with_extra_cancel : armed -> Cancel.t -> armed

val add_nodes : armed -> int -> unit
val add_iters : armed -> int -> unit
val nodes : armed -> int
val iters : armed -> int

(** Seconds since [arm]. *)
val elapsed_s : armed -> float

(** [None] while the run may continue; [Some reason] once any limit has
    been hit. Cheap enough to call in inner loops (one [gettimeofday]
    when a deadline is set). *)
val check : armed -> reason option

(** [None]-tolerant variant for optional budgets threaded through
    solver APIs: [stopped None = None]. *)
val stopped : armed option -> reason option
