type lane = {
  lane_solver : string;
  lane_status : string;
  lane_objective : float;
  lane_wall_s : float;
  lane_nodes_expanded : int;
  lane_lp_solves : int;
}

type race = { winner : string; race_wall_s : float; lanes : lane list }

type t = {
  solver : string;
  status : string;
  objective : float;
  bound : float;
  wall_s : float;
  nodes_expanded : int;
  nodes_pruned : int;
  lp_solves : int;
  simplex_pivots : int;
  nlp_solves : int;
  nlp_iterations : int;
  line_search_steps : int;
  oa_cuts : int;
  incumbent_updates : int;
  warm_start_used : bool;
  cache_hit : bool;
  race : race option;
  certificate : Certificate.t option;
  audit : string option;
  phases : (string * float) list;
  hists : (string * Obs.Metrics.Histogram.summary) list;
}

let make ~solver ~status ?(objective = nan) ?(bound = nan) ?(cache_hit = false)
    ?race ?certificate ?audit ?(hists = []) ~wall_s (tally : Telemetry.t) =
  {
    solver;
    status;
    objective;
    bound;
    wall_s;
    cache_hit;
    race;
    certificate;
    audit;
    hists;
    nodes_expanded = tally.Telemetry.nodes_expanded;
    nodes_pruned = tally.Telemetry.nodes_pruned;
    lp_solves = tally.Telemetry.lp_solves;
    simplex_pivots = tally.Telemetry.simplex_pivots;
    nlp_solves = tally.Telemetry.nlp_solves;
    nlp_iterations = tally.Telemetry.nlp_iterations;
    line_search_steps = tally.Telemetry.line_search_steps;
    oa_cuts = tally.Telemetry.oa_cuts;
    incumbent_updates = tally.Telemetry.incumbent_updates;
    warm_start_used = tally.Telemetry.warm_start_used;
    phases = Telemetry.phases tally;
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let to_json r =
  let b = Buffer.create 512 in
  let str k v = Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" k (json_escape v)) in
  let num k v = Buffer.add_string b (Printf.sprintf "\"%s\":%s" k (json_float v)) in
  let int k v = Buffer.add_string b (Printf.sprintf "\"%s\":%d" k v) in
  let sep () = Buffer.add_char b ',' in
  Buffer.add_char b '{';
  str "solver" r.solver;
  sep ();
  str "status" r.status;
  sep ();
  num "objective" r.objective;
  sep ();
  num "bound" r.bound;
  sep ();
  num "wall_s" r.wall_s;
  sep ();
  int "nodes_expanded" r.nodes_expanded;
  sep ();
  int "nodes_pruned" r.nodes_pruned;
  sep ();
  int "lp_solves" r.lp_solves;
  sep ();
  int "simplex_pivots" r.simplex_pivots;
  sep ();
  int "nlp_solves" r.nlp_solves;
  sep ();
  int "nlp_iterations" r.nlp_iterations;
  sep ();
  int "line_search_steps" r.line_search_steps;
  sep ();
  int "oa_cuts" r.oa_cuts;
  sep ();
  int "incumbent_updates" r.incumbent_updates;
  sep ();
  Buffer.add_string b
    (Printf.sprintf "\"warm_start_used\":%b" r.warm_start_used);
  sep ();
  Buffer.add_string b (Printf.sprintf "\"cache_hit\":%b" r.cache_hit);
  sep ();
  (match r.race with
  | None -> Buffer.add_string b "\"race\":null"
  | Some race ->
    Buffer.add_string b
      (Printf.sprintf "\"race\":{\"winner\":\"%s\",\"race_wall_s\":%s,\"lanes\":["
         (json_escape race.winner) (json_float race.race_wall_s));
    List.iteri
      (fun i l ->
        if i > 0 then sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"solver\":\"%s\",\"status\":\"%s\",\"objective\":%s,\"wall_s\":%s,\
              \"nodes_expanded\":%d,\"lp_solves\":%d}"
             (json_escape l.lane_solver) (json_escape l.lane_status)
             (json_float l.lane_objective) (json_float l.lane_wall_s)
             l.lane_nodes_expanded l.lane_lp_solves))
      race.lanes;
    Buffer.add_string b "]}");
  sep ();
  (match r.certificate with
  | None -> Buffer.add_string b "\"certificate\":null"
  | Some c ->
    Buffer.add_string b "\"certificate\":";
    Buffer.add_string b (Certificate.to_json c));
  sep ();
  (match r.audit with
  | None -> Buffer.add_string b "\"audit\":null"
  | Some v -> str "audit" v);
  sep ();
  Buffer.add_string b "\"phases\":{";
  List.iteri
    (fun i (label, s) ->
      if i > 0 then sep ();
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%s" (json_escape label) (json_float s)))
    r.phases;
  Buffer.add_string b "}";
  (* optional: absent entirely when no histogram summaries were
     attached, so pre-observability consumers see an unchanged object *)
  if r.hists <> [] then begin
    sep ();
    Buffer.add_string b "\"hists\":{";
    List.iteri
      (fun i (name, (s : Obs.Metrics.Histogram.summary)) ->
        if i > 0 then sep ();
        Buffer.add_string b
          (Printf.sprintf
             "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\
              \"p50\":%s,\"p90\":%s,\"p99\":%s}"
             (json_escape name) s.count (json_float s.sum) (json_float s.min)
             (json_float s.max) (json_float s.p50) (json_float s.p90)
             (json_float s.p99)))
      r.hists;
    Buffer.add_string b "}"
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let to_json_list rs = "[" ^ String.concat "," (List.map to_json rs) ^ "]"

let csv_header =
  "solver,status,objective,bound,wall_s,nodes_expanded,nodes_pruned,lp_solves,\
   simplex_pivots,nlp_solves,nlp_iterations,line_search_steps,oa_cuts,\
   incumbent_updates,warm_start_used,cache_hit,evidence,audit"

let to_csv_row r =
  Printf.sprintf "%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%b,%b,%s,%s"
    r.solver r.status (json_float r.objective) (json_float r.bound)
    (json_float r.wall_s) r.nodes_expanded r.nodes_pruned r.lp_solves
    r.simplex_pivots r.nlp_solves r.nlp_iterations r.line_search_steps
    r.oa_cuts r.incumbent_updates r.warm_start_used r.cache_hit
    (match r.certificate with
    | None -> ""
    | Some c -> (
      (* keep CSV fields comma-free *)
      match c.Certificate.evidence with
      | Certificate.Gap_closed -> "gap-closed"
      | Certificate.Cover_exhausted _ -> "cover-exhausted"
      | Certificate.Exact_method _ -> "exact"
      | Certificate.Incumbent_only -> "incumbent-only"
      | Certificate.No_witness -> "no-witness"))
    (match r.audit with None -> "" | Some v -> v)

let pp fmt r =
  Format.fprintf fmt
    "@[<v>%s: %s obj=%g bound=%g wall=%.3fs@,\
     nodes %d expanded / %d pruned, %d LPs (%d pivots), %d NLPs (%d iters, \
     %d line-search steps), %d cuts, %d incumbents%s@]"
    r.solver r.status r.objective r.bound r.wall_s r.nodes_expanded
    r.nodes_pruned r.lp_solves r.simplex_pivots r.nlp_solves r.nlp_iterations
    r.line_search_steps r.oa_cuts r.incumbent_updates
    (String.concat ""
       [
         (if r.warm_start_used then ", warm-started" else "");
         (if r.cache_hit then ", cache hit" else "");
         (match r.race with
         | Some race -> Printf.sprintf ", race won by %s" race.winner
         | None -> "");
       ])

let write_string path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      output_char oc '\n')

let write_json path r = write_string path (to_json r)
let write_json_list path rs = write_string path (to_json_list rs)
