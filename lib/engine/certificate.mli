(** Machine-checkable solver claims.

    Every solver in the stack emits a certificate alongside its result:
    the incumbent it found (the {e feasibility witness}), the objective
    it claims for it, the best relaxation bound it proved, and — for
    proven-[Optimal] claims — the gap evidence. The certificate is pure
    data: it never references solver internals, so an independent
    checker ([Audit.check] in lib/audit) can re-verify the claim from
    the raw model alone. Certificates ride in {!Run_report} and are what
    the runtime portfolio audits before a racing lane's answer is
    returned.

    All objective-like fields are in the {e problem's own sense} except
    [claimed_bound], which is min-sense (smaller = better), matching the
    convention of the branch-and-bound layers; [minimize] records the
    sense so the checker can convert. *)

(** Branch-cover summary for tree searches: an [Optimal] claim is only
    as good as its assertion that no branch remains open. *)
type cover = { explored : int; pruned : int; open_branches : int }

type evidence =
  | Gap_closed  (** [claimed_bound >= key claimed_obj - tol·scale] *)
  | Cover_exhausted of cover
      (** the branch-and-bound cover was fully explored
          ([open_branches] must be 0 for the claim to stand) *)
  | Exact_method of string
      (** a customized exact path (greedy marginal allocation,
          bisection, closed form) whose optimality is structural *)
  | Incumbent_only  (** no optimality claim: best point found so far *)
  | No_witness  (** no usable point (infeasible / nothing found) *)

type t = {
  producer : string;  (** solver name, e.g. "minlp.oa" *)
  claimed_status : Status.t;
  witness : float array option;  (** incumbent in the original variable space *)
  claimed_obj : float;  (** objective the producer claims at the witness *)
  claimed_bound : float;  (** best proven relaxation bound, min-sense *)
  minimize : bool;
  tol : float;  (** relative gap tolerance the claim was made under *)
  evidence : evidence;
  budget_stop : string option;
      (** the engine budget's own stop verdict observed (without
          charging the budget) at emission time; a proven-[Optimal]
          claim recorded together with an injected stop is the
          PR-2 soundness bug class the stress harness hunts *)
}

val make :
  producer:string ->
  claimed_status:Status.t ->
  ?witness:float array ->
  ?claimed_obj:float ->
  ?claimed_bound:float ->
  ?minimize:bool ->
  ?tol:float ->
  evidence:evidence ->
  ?budget_stop:string ->
  unit ->
  t

val evidence_to_string : evidence -> string

(** [key t v] — [v] converted to min-sense under the certificate's
    recorded objective sense. *)
val key : t -> float -> float

(** [gap t] — [key claimed_obj - claimed_bound]; [nan] without a
    witness. Non-negative for a consistent certificate. *)
val gap : t -> float

(** Compact single-object JSON (no trailing newline); non-finite floats
    are emitted as [null]. *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
