(** The single source of truth for "which MINLP solver?".

    Replaces the polymorphic-variant copies that used to live in
    [Hslb.Alloc_model], [Layouts.Layout_model] and the CLI. *)

type t =
  | Oa  (** LP/NLP-based single-tree outer approximation *)
  | Bnb  (** NLP-based branch and bound *)
  | Oa_multi  (** multi-tree outer approximation *)

val all : t list
val to_string : t -> string

(** Accepts the [to_string] names plus the historical CLI alias
    ["multi"] for [Oa_multi]. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
