(* The flag is atomic so a token can be triggered from one domain and
   observed from another (the portfolio racer cancels losing lanes from
   whichever domain finishes first). A linked token also reports
   cancelled when any of its parents is, letting a race combine its own
   first-winner token with a caller-supplied one without mutating
   either. *)

type t = { flag : bool Atomic.t; parents : t list }

let create () = { flag = Atomic.make false; parents = [] }
let cancel t = Atomic.set t.flag true
let rec cancelled t = Atomic.get t.flag || List.exists cancelled t.parents
let link parents = { flag = Atomic.make false; parents }
