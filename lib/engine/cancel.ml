type t = { mutable flag : bool }

let create () = { flag = false }
let cancel t = t.flag <- true
let cancelled t = t.flag
