(** The one solver status vocabulary shared by every layer of the stack.

    Before this module each solver family kept its own variant
    ([Lp.Simplex.status], [Minlp.Solution.status], ad-hoc [converged]
    booleans in the NLP layer); {!t} replaces them all so results can
    flow through the engine, the runtime portfolio and the audit layer
    without lossy translation. [Minlp.Solution.status] is re-exported as
    an equation on this type, so existing pattern matches keep working.

    Constructor meaning:
    - [Optimal] — proven optimal within the solver's gap tolerance. Any
      [Optimal] claim is expected to carry a {!Certificate.t} that
      [Audit.check] can verify independently.
    - [Feasible r] — a usable incumbent exists but the search stopped on
      a solver-internal limit [r], so optimality is unproven.
    - [Infeasible] / [Unbounded] — proven properties of the model.
    - [Budget_exhausted r] — the {e engine} budget stopped the run. *)

type reason =
  | Node_limit  (** the solver's own node / outer-iteration cap *)
  | Iter_limit  (** an LP pivot / NLP iteration cap *)
  | Round_limit  (** OA alternation round cap *)
  | Deadline  (** engine budget: wall-clock deadline elapsed *)
  | Cancelled  (** engine budget: cancel token triggered *)
  | Audit_failed
      (** an optimality claim was demoted because its certificate failed
          the independent audit *)

type t =
  | Optimal
  | Feasible of reason
  | Infeasible
  | Unbounded
  | Budget_exhausted of reason

val reason_to_string : reason -> string
val to_string : t -> string

(** Inverses of [reason_to_string] / [to_string] (used when statuses
    round-trip through reports and certificates). *)
val reason_of_string : string -> reason option

val of_string : string -> t option

(** A status that proves something about the model: [Optimal],
    [Infeasible] or [Unbounded]. The portfolio racer cancels the other
    lanes when a lane reaches a final status. *)
val is_final : t -> bool

(** Map an engine budget-stop reason into a status reason. *)
val reason_of_budget : Budget.reason -> reason

val pp : Format.formatter -> t -> unit
