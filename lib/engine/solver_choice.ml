type t = Oa | Bnb | Oa_multi

let all = [ Oa; Bnb; Oa_multi ]

let to_string = function
  | Oa -> "oa"
  | Bnb -> "bnb"
  | Oa_multi -> "oa-multi"

let of_string s =
  match String.lowercase_ascii s with
  | "oa" -> Ok Oa
  | "bnb" -> Ok Bnb
  | "oa-multi" | "oa_multi" | "multi" -> Ok Oa_multi
  | s ->
    Error
      (Printf.sprintf "unknown solver %S (expected %s)" s
         (String.concat ", " (List.map to_string all)))

let pp fmt t = Format.pp_print_string fmt (to_string t)
