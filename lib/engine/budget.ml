type reason = Deadline | Node_limit | Iter_limit | Cancelled

let reason_to_string = function
  | Deadline -> "deadline"
  | Node_limit -> "node-limit"
  | Iter_limit -> "iter-limit"
  | Cancelled -> "cancelled"

type t = {
  deadline_s : float option;
  max_nodes : int option;
  max_iters : int option;
  cancel : Cancel.t option;
}

let make ?deadline_s ?max_nodes ?max_iters ?cancel () =
  { deadline_s; max_nodes; max_iters; cancel }

let unlimited = make ()

type armed = {
  spec : t;
  start : float;
  mutable nodes : int;
  mutable iters : int;
}

let arm spec = { spec; start = Unix.gettimeofday (); nodes = 0; iters = 0 }
let add_nodes a n = a.nodes <- a.nodes + n
let add_iters a n = a.iters <- a.iters + n
let nodes a = a.nodes
let iters a = a.iters
let elapsed_s a = Unix.gettimeofday () -. a.start

let check a =
  let cancelled =
    match a.spec.cancel with Some c -> Cancel.cancelled c | None -> false
  in
  if cancelled then Some Cancelled
  else
    match a.spec.deadline_s with
    | Some d when Unix.gettimeofday () -. a.start >= d -> Some Deadline
    | _ -> (
      match a.spec.max_nodes with
      | Some n when a.nodes >= n -> Some Node_limit
      | _ -> (
        match a.spec.max_iters with
        | Some n when a.iters >= n -> Some Iter_limit
        | _ -> None))

let stopped = function None -> None | Some a -> check a
