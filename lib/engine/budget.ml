type reason = Deadline | Node_limit | Iter_limit | Cancelled

let reason_to_string = function
  | Deadline -> "deadline"
  | Node_limit -> "node-limit"
  | Iter_limit -> "iter-limit"
  | Cancelled -> "cancelled"

type t = {
  deadline_s : float option;
  max_nodes : int option;
  max_iters : int option;
  cancel : Cancel.t option;
  poll_fuse : (int * reason) option;
}

let make ?deadline_s ?max_nodes ?max_iters ?cancel ?poll_fuse () =
  (match poll_fuse with
  | Some (k, _) when k < 1 -> invalid_arg "Budget.make: poll_fuse must trip after >= 1 polls"
  | Some _ | None -> ());
  { deadline_s; max_nodes; max_iters; cancel; poll_fuse }

let unlimited = make ()

(* counters are atomic so one armed budget can be shared by portfolio
   lanes running in separate domains: every lane charges the same node
   and iteration pools, and a deadline covers the whole race *)
type armed = {
  spec : t;
  start : float;
  counted_nodes : int Atomic.t;
  counted_iters : int Atomic.t;
  counted_polls : int Atomic.t;
  cancel : Cancel.t option;  (** effective token; see [with_extra_cancel] *)
  poll_hook : (unit -> unit) option;
      (** fired at the top of every [check]; see [with_poll_hook] *)
}

let arm spec =
  {
    spec;
    start = Unix.gettimeofday ();
    counted_nodes = Atomic.make 0;
    counted_iters = Atomic.make 0;
    counted_polls = Atomic.make 0;
    cancel = spec.cancel;
    poll_hook = None;
  }

let with_extra_cancel a tok =
  {
    a with
    cancel = Some (match a.cancel with None -> tok | Some c -> Cancel.link [ tok; c ]);
  }

let with_poll_hook a hook = { a with poll_hook = Some hook }

let add_nodes a n = ignore (Atomic.fetch_and_add a.counted_nodes n)
let add_iters a n = ignore (Atomic.fetch_and_add a.counted_iters n)
let nodes a = Atomic.get a.counted_nodes
let iters a = Atomic.get a.counted_iters
let polls a = Atomic.get a.counted_polls
let elapsed_s a = Unix.gettimeofday () -. a.start

(* the stop verdict at a given poll count; the fuse is checked first so
   fault injection is deterministic whatever other limits are set *)
let verdict a ~polls:np =
  let fused =
    match a.spec.poll_fuse with Some (k, r) when np >= k -> Some r | Some _ | None -> None
  in
  match fused with
  | Some _ as s -> s
  | None -> (
    let cancelled = match a.cancel with Some c -> Cancel.cancelled c | None -> false in
    if cancelled then Some Cancelled
    else
      match a.spec.deadline_s with
      | Some d when Unix.gettimeofday () -. a.start >= d -> Some Deadline
      | _ -> (
        match a.spec.max_nodes with
        | Some n when Atomic.get a.counted_nodes >= n -> Some Node_limit
        | _ -> (
          match a.spec.max_iters with
          | Some n when Atomic.get a.counted_iters >= n -> Some Iter_limit
          | _ -> None)))

(* registered at module init so the poll hot path never touches the
   registry lock; bumped only while observability is enabled *)
let polls_total = Obs.Metrics.counter "engine_budget_polls_total"

let check a =
  (match a.poll_hook with Some h -> h () | None -> ());
  if Obs.Control.enabled () then Obs.Metrics.Counter.incr polls_total;
  let np = Atomic.fetch_and_add a.counted_polls 1 + 1 in
  verdict a ~polls:np

let inspect a = verdict a ~polls:(Atomic.get a.counted_polls)

let fuse_tripped a =
  match a.spec.poll_fuse with
  | Some (k, _) -> Atomic.get a.counted_polls >= k
  | None -> false

let stopped = function None -> None | Some a -> check a
let inspected = function None -> None | Some a -> inspect a
