type cover = { explored : int; pruned : int; open_branches : int }

type evidence =
  | Gap_closed
  | Cover_exhausted of cover
  | Exact_method of string
  | Incumbent_only
  | No_witness

type t = {
  producer : string;
  claimed_status : Status.t;
  witness : float array option;
  claimed_obj : float;
  claimed_bound : float;
  minimize : bool;
  tol : float;
  evidence : evidence;
  budget_stop : string option;
}

let make ~producer ~claimed_status ?witness ?(claimed_obj = nan) ?(claimed_bound = nan)
    ?(minimize = true) ?(tol = 1e-6) ~evidence ?budget_stop () =
  { producer; claimed_status; witness; claimed_obj; claimed_bound; minimize; tol;
    evidence; budget_stop }

let evidence_to_string = function
  | Gap_closed -> "gap-closed"
  | Cover_exhausted c ->
    Printf.sprintf "cover-exhausted (%d explored, %d pruned, %d open)" c.explored c.pruned
      c.open_branches
  | Exact_method m -> Printf.sprintf "exact (%s)" m
  | Incumbent_only -> "incumbent-only"
  | No_witness -> "no-witness"

(* min-sense view of a problem-sense value, so gap arithmetic is
   uniform: smaller is always better *)
let key t v = if t.minimize then v else -.v

let gap t =
  match t.witness with
  | None -> nan
  | Some _ -> key t t.claimed_obj -. t.claimed_bound

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"producer\": %S, \"status\": %S, " t.producer
       (Status.to_string t.claimed_status));
  (match t.witness with
  | None -> Buffer.add_string b "\"witness\": null, "
  | Some w ->
    Buffer.add_string b "\"witness\": [";
    Array.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (json_float v))
      w;
    Buffer.add_string b "], ");
  Buffer.add_string b
    (Printf.sprintf
       "\"objective\": %s, \"bound\": %s, \"minimize\": %b, \"tol\": %s, \"evidence\": %S, \
        \"budget_stop\": %s}"
       (json_float t.claimed_obj) (json_float t.claimed_bound) t.minimize (json_float t.tol)
       (evidence_to_string t.evidence)
       (match t.budget_stop with None -> "null" | Some r -> Printf.sprintf "%S" r));
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "%s claims %s (obj %g, bound %g, tol %g; %s%s)" t.producer
    (Status.to_string t.claimed_status) t.claimed_obj t.claimed_bound t.tol
    (evidence_to_string t.evidence)
    (match t.budget_stop with None -> "" | Some r -> "; budget stop: " ^ r)
