(** Cooperative cancellation token.

    A token is shared between the caller (who may [cancel] it from a
    signal handler, another domain, or a timeout watchdog) and the
    solver inner loops (which poll [cancelled] between pivots /
    iterations / nodes and unwind gracefully, returning the best
    incumbent found so far). *)

type t

val create : unit -> t

(** Request cancellation. Idempotent; never raises. *)
val cancel : t -> unit

val cancelled : t -> bool
