(** Cooperative cancellation token.

    A token is shared between the caller (who may [cancel] it from a
    signal handler, another domain, or a timeout watchdog) and the
    solver inner loops (which poll [cancelled] between pivots /
    iterations / nodes and unwind gracefully, returning the best
    incumbent found so far).

    The flag is an atomic, so triggering from one domain is reliably
    observed by solver loops polling in another. *)

type t

val create : unit -> t

(** Request cancellation. Idempotent; never raises. May be called from
    any domain. *)
val cancel : t -> unit

val cancelled : t -> bool

(** [link parents] — a fresh token that reports cancelled when it
    itself or any of [parents] is cancelled. Cancelling the linked
    token does not propagate to the parents. Used by the portfolio
    racer to combine its first-winner token with the caller's. *)
val link : t list -> t
