(** A complete, serializable record of one solver run: which solver
    ran, how it stopped, the objective/bound it reached, wall time, and
    the full {!Telemetry} counter set with phase timers.

    This is the artifact the CLI ([hslb solve --report FILE]) and the
    bench harness emit so solver comparisons (E6 in docs/ALGORITHM.md)
    can be made from data rather than printf archaeology. *)

type t = {
  solver : string;
  status : string;
  objective : float;  (** [nan] when no incumbent *)
  bound : float;  (** best proven bound; [nan] when unknown *)
  wall_s : float;
  nodes_expanded : int;
  nodes_pruned : int;
  lp_solves : int;
  simplex_pivots : int;
  nlp_solves : int;
  nlp_iterations : int;
  line_search_steps : int;
  oa_cuts : int;
  incumbent_updates : int;
  warm_start_used : bool;
  phases : (string * float) list;  (** label, seconds *)
}

val make :
  solver:string ->
  status:string ->
  ?objective:float ->
  ?bound:float ->
  wall_s:float ->
  Telemetry.t ->
  t

(** Compact single-object JSON (no trailing newline). Non-finite floats
    are emitted as [null]. *)
val to_json : t -> string

(** [to_json_list reports] — a JSON array of {!to_json} objects. *)
val to_json_list : t list -> string

val csv_header : string
val to_csv_row : t -> string
val pp : Format.formatter -> t -> unit

(** Write one report (or several, as a JSON array) to [path]. *)
val write_json : string -> t -> unit

val write_json_list : string -> t list -> unit
