(** A complete, serializable record of one solver run: which solver
    ran, how it stopped, the objective/bound it reached, wall time, and
    the full {!Telemetry} counter set with phase timers.

    This is the artifact the CLI ([hslb solve --report FILE]) and the
    bench harness emit so solver comparisons (E6 in docs/ALGORITHM.md)
    can be made from data rather than printf archaeology. *)

(** One lane of a portfolio race: a solver strategy that ran in its own
    domain against the shared budget. For losing lanes the counters show
    the progress they had made when the winner cancelled them. *)
type lane = {
  lane_solver : string;
  lane_status : string;
  lane_objective : float;  (** lane incumbent; [nan] when none *)
  lane_wall_s : float;  (** lane wall time from race start to unwind *)
  lane_nodes_expanded : int;
  lane_lp_solves : int;
}

(** Portfolio-race telemetry: who won, how long the race took, and each
    lane's progress at the moment it stopped. *)
type race = { winner : string; race_wall_s : float; lanes : lane list }

type t = {
  solver : string;
  status : string;
  objective : float;  (** [nan] when no incumbent *)
  bound : float;  (** best proven bound; [nan] when unknown *)
  wall_s : float;
  nodes_expanded : int;
  nodes_pruned : int;
  lp_solves : int;
  simplex_pivots : int;
  nlp_solves : int;
  nlp_iterations : int;
  line_search_steps : int;
  oa_cuts : int;
  incumbent_updates : int;
  warm_start_used : bool;
  cache_hit : bool;  (** the result came from the memoized solve cache *)
  race : race option;  (** present when a portfolio race produced it *)
  certificate : Certificate.t option;
      (** machine-checkable claim backing [status]; see lib/audit *)
  audit : string option;
      (** independent checker's verdict on [certificate] ("ok" or a
          violation summary), when an audit was requested *)
  phases : (string * float) list;  (** label, seconds *)
  hists : (string * Obs.Metrics.Histogram.summary) list;
      (** optional latency-histogram summaries (e.g. the serve layer's
          queue-wait and solve-latency distributions); empty for plain
          solver runs, and omitted from the JSON when empty so
          pre-observability consumers see an unchanged object. CSV
          output never includes them. *)
}

val make :
  solver:string ->
  status:string ->
  ?objective:float ->
  ?bound:float ->
  ?cache_hit:bool ->
  ?race:race ->
  ?certificate:Certificate.t ->
  ?audit:string ->
  ?hists:(string * Obs.Metrics.Histogram.summary) list ->
  wall_s:float ->
  Telemetry.t ->
  t

(** Compact single-object JSON (no trailing newline). Non-finite floats
    are emitted as [null]. *)
val to_json : t -> string

(** [to_json_list reports] — a JSON array of {!to_json} objects. *)
val to_json_list : t list -> string

val csv_header : string
val to_csv_row : t -> string
val pp : Format.formatter -> t -> unit

(** Write one report (or several, as a JSON array) to [path]. *)
val write_json : string -> t -> unit

val write_json_list : string -> t list -> unit
