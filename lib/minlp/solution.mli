(** Solver result types shared by the MILP, NLP-based and LP/NLP-based
    branch-and-bound algorithms. *)

(** Why a solver stopped before proving optimality. *)
type reason =
  | Node_limit  (** the solver's own node / outer-iteration cap *)
  | Iter_limit  (** an LP pivot / NLP iteration cap *)
  | Round_limit  (** OA alternation round cap *)
  | Deadline  (** engine budget: wall-clock deadline elapsed *)
  | Cancelled  (** engine budget: cancel token triggered *)

type status =
  | Optimal  (** proven optimal within the gap tolerance *)
  | Feasible of reason
      (** a feasible incumbent is in [x], but the search stopped early
          on a solver-internal limit, so optimality is unproven *)
  | Infeasible
  | Unbounded
  | Budget_exhausted of reason
      (** the {!Engine.Budget} stopped the run — or it stopped early for
          [reason] before any incumbent was found. [x] holds the best
          incumbent found so far when there is one (check
          {!has_incumbent}), and is empty otherwise *)

type stats = {
  nodes : int;  (** branch-and-bound nodes processed *)
  lp_solves : int;
  nlp_solves : int;
  cuts : int;  (** outer-approximation cuts added *)
}

type t = {
  status : status;
  x : float array;
  obj : float;
  bound : float;  (** best proven bound on the optimum (min-sense value) *)
  stats : stats;
}

val empty_stats : stats
val reason_to_string : reason -> string
val status_to_string : status -> string

(** The solution carries a usable (feasible) point in [x]: status is
    [Optimal], [Feasible _], or [Budget_exhausted _] with a non-empty
    [x]. *)
val has_incumbent : t -> bool

(** Map an engine budget-stop reason into a status reason. *)
val reason_of_budget : Engine.Budget.reason -> reason

val pp : Format.formatter -> t -> unit
