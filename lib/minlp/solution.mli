(** Solver result types shared by the MILP, NLP-based and LP/NLP-based
    branch-and-bound algorithms.

    [reason] and [status] are re-exports (type equations) of
    {!Engine.Status.reason} and {!Engine.Status.t}: every solver layer
    in the stack reports the same status type, and existing pattern
    matches over [Solution.status] keep compiling unchanged. *)

(** Why a solver stopped before proving optimality. *)
type reason = Engine.Status.reason =
  | Node_limit  (** the solver's own node / outer-iteration cap *)
  | Iter_limit  (** an LP pivot / NLP iteration cap *)
  | Round_limit  (** OA alternation round cap *)
  | Deadline  (** engine budget: wall-clock deadline elapsed *)
  | Cancelled  (** engine budget: cancel token triggered *)
  | Audit_failed
      (** the independent auditor rejected the solver's certificate, so
          a proven claim was demoted (see lib/audit) *)

type status = Engine.Status.t =
  | Optimal  (** proven optimal within the gap tolerance *)
  | Feasible of reason
      (** a feasible incumbent is in [x], but the search stopped early
          on a solver-internal limit, so optimality is unproven *)
  | Infeasible
  | Unbounded
  | Budget_exhausted of reason
      (** the {!Engine.Budget} stopped the run — or it stopped early for
          [reason] before any incumbent was found. [x] holds the best
          incumbent found so far when there is one (check
          {!has_incumbent}), and is empty otherwise *)

type stats = {
  nodes : int;  (** branch-and-bound nodes processed *)
  lp_solves : int;
  nlp_solves : int;
  cuts : int;  (** outer-approximation cuts added *)
}

type t = {
  status : status;
  x : float array;
  obj : float;
  bound : float;  (** best proven bound on the optimum (min-sense value) *)
  stats : stats;
}

val empty_stats : stats
val reason_to_string : reason -> string
val status_to_string : status -> string

(** The solution carries a usable (feasible) point in [x]: status is
    [Optimal], [Feasible _], or [Budget_exhausted _] with a non-empty
    [x]. *)
val has_incumbent : t -> bool

(** Map an engine budget-stop reason into a status reason. *)
val reason_of_budget : Engine.Budget.reason -> reason

(** [certify ~producer ?budget ?minimize ?tol ?pruned s] — the
    machine-checkable certificate backing [s]'s status claim. An
    [Optimal] claim gets [Cover_exhausted] evidence built from the
    solution's node count (plus [pruned] when the caller tracked it);
    incumbents without a proof get [Incumbent_only]; empty-handed
    statuses get [No_witness]. When [budget] is given, its stop verdict
    is recorded (via the non-charging {!Engine.Budget.inspect}, so
    certifying never perturbs a fault-injection schedule). *)
val certify :
  producer:string ->
  ?budget:Engine.Budget.armed ->
  ?minimize:bool ->
  ?tol:float ->
  ?pruned:int ->
  t ->
  Engine.Certificate.t

(** [to_result ~producer ... s] — the {!Engine.Solver_intf.S}-shaped
    view of a solution: [Ok] with a {!certify}-built certificate when
    [s] carries a usable incumbent, [Error s.status] otherwise. *)
val to_result :
  producer:string ->
  ?budget:Engine.Budget.armed ->
  ?minimize:bool ->
  ?tol:float ->
  ?pruned:int ->
  t ->
  (t Engine.Solver_intf.certified, status) result

val pp : Format.formatter -> t -> unit
