(** Mixed-integer {e linear} branch-and-bound over {!Lp.Simplex}.

    Used standalone for MILP models and as the master-problem engine of
    the single-tree LP/NLP-based MINLP solver ({!Oa}): the [on_integral]
    callback fires whenever a node's LP optimum satisfies integrality
    and SOS1 conditions, and may reject the point by returning cuts that
    are added to a global pool — exactly how Quesada–Grossmann keeps a
    single tree while tightening the MILP relaxation.

    Branching follows the paper: violated SOS1 sets are branched as
    sets (split at the weighted average) before any single fractional
    variable is considered; the [branch_sos_first] toggle exists for the
    ablation experiment. *)

(** Variable-branching rule: [Most_fractional] picks the integer
    variable farthest from integrality; [Pseudocost] (default) learns
    each variable's objective degradation per branch direction and
    picks the best product score — fewer nodes once estimates warm
    up. *)
type branching = Most_fractional | Pseudocost

type options = {
  max_nodes : int;
  tol_int : float;  (** integrality tolerance *)
  rel_gap : float;  (** stop when (incumbent - bound)/|incumbent| below this *)
  branch_sos_first : bool;
  depth_first : bool;  (** false = best-bound node selection *)
  branching : branching;
}

val default_options : options

(** [on_integral x obj] — called on integer-feasible node solutions.
    [`Accept] takes the point as a new incumbent candidate; [`Reject
    cuts] refuses it and adds the rows to every remaining node;
    [`Reject_with_incumbent (cuts, x', obj')] additionally records an
    externally-constructed feasible point (the OA solver's fixed-integer
    NLP solution) as an incumbent so pruning stays sharp. *)
type callback =
  float array ->
  float ->
  [ `Accept
  | `Reject of Lp.Lp_problem.constr list
  | `Reject_with_incumbent of Lp.Lp_problem.constr list * float array * float ]

(** [sos_split members x] — partition an SOS1 set at the weighted
    average of the point [x] (both halves non-empty). Exposed for reuse
    by the nonlinear tree searches. *)
val sos_split :
  (int * float) list -> float array -> (int * float) list * (int * float) list

(** [run ?options ?extra_rows ?on_integral ?budget ?tally ?warm_start p]
    — [p] must have a linear objective and only linear constraints
    (raise otherwise). [extra_rows] are appended to the LP relaxation
    (the OA solver's initial cut set).

    The armed [budget] is polled at the top of the node loop and inside
    every LP solve; on exhaustion the best incumbent found so far is
    returned with status [Budget_exhausted] (empty [x] when none).
    [warm_start] primes the incumbent with a feasible point of [p] —
    infeasible points are ignored. [tally] accumulates node, LP, cut and
    incumbent counters. *)
val run :
  ?options:options ->
  ?extra_rows:Lp.Lp_problem.constr list ->
  ?on_integral:callback ->
  ?budget:Engine.Budget.armed ->
  ?tally:Engine.Telemetry.t ->
  ?warm_start:float array ->
  Problem.t ->
  Solution.t

(** The unified entry point ({!Engine.Solver_intf.S} convention):
    {!run} under default options with no extra rows or callback (those
    stay on {!run}, which the OA solvers drive). *)
val solve :
  ?budget:Engine.Budget.armed ->
  ?cancel:Engine.Cancel.t ->
  ?warm_start:float array ->
  ?trace:Engine.Telemetry.t ->
  Problem.t ->
  (Solution.t Engine.Solver_intf.certified, Engine.Status.t) result

